#pragma once

#include <benchmark/benchmark.h>

// Shared benchmark main with honest context stamping.
//
// The JSON context's "library_build_type" key describes how the *host
// libbenchmark* was compiled (debug, on this image's system package) —
// it says nothing about the code under test, but reads as if the whole
// measurement ran unoptimized. Every livenet bench binary therefore
// stamps two extra context keys: `livenet_build_type`, the CMake build
// type the measured code was actually compiled with (set by
// bench/CMakeLists.txt), and a note pointing readers at it.
#ifndef LIVENET_BUILD_TYPE
#define LIVENET_BUILD_TYPE "unknown"
#endif

#define LIVENET_BENCHMARK_MAIN()                                          \
  int main(int argc, char** argv) {                                       \
    benchmark::AddCustomContext("livenet_build_type", LIVENET_BUILD_TYPE); \
    benchmark::AddCustomContext(                                          \
        "library_build_type_note",                                        \
        "library_build_type describes the host libbenchmark package, "    \
        "not the livenet code under test; see livenet_build_type");       \
    benchmark::Initialize(&argc, argv);                                   \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    benchmark::RunSpecifiedBenchmarks();                                  \
    benchmark::Shutdown();                                                \
    return 0;                                                             \
  }
