// Microbenchmarks of the per-packet data plane: fast-path forwarding
// cost, pacer scheduling, GoP caches, GCC receiver updates, and the
// receive buffer — the pieces the paper's fast/slow-path split is
// built from.
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <memory>
#include <unordered_map>
#include <vector>

#include "livenet/sharded_scale.h"
#include "media/packetizer.h"
#include "overlay/packet_cache.h"
#include "overlay/stream_context.h"
#include "overlay/stream_fib.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "transport/gcc.h"
#include "transport/pacer.h"
#include "transport/receive_buffer.h"
#include "util/rng.h"

namespace {

using namespace livenet;

media::RtpPacketPtr make_packet(media::StreamId s, media::Seq seq,
                                media::FrameType t = media::FrameType::kP) {
  media::RtpBody body;
  body.stream_id = s;
  body.seq = seq;
  body.frame_type = t;
  body.frame_id = seq / 3 + 1;
  body.gop_id = seq / 150 + 1;
  body.frag_index = static_cast<std::uint32_t>(seq % 3);
  body.frag_count = 3;
  body.payload_bytes = 1200;
  return media::RtpPacket::make(std::move(body));
}

void BM_FibLookupAndForward(benchmark::State& state) {
  // The fast path's per-packet work: FIB lookup + a per-subscriber
  // trailer fork sharing one refcounted body (was: a full deep clone,
  // as BM_FibLookupAndClone).
  overlay::StreamFib fib;
  for (media::StreamId s = 1; s <= 200; ++s) {
    fib.add_node_subscriber(s, static_cast<sim::NodeId>(s % 20));
    fib.add_node_subscriber(s, static_cast<sim::NodeId>((s + 1) % 20));
  }
  const auto pkt = make_packet(77, 1);
  fib.add_node_subscriber(77, 5);
  for (auto _ : state) {
    const auto* e = fib.find(pkt->stream_id());
    benchmark::DoNotOptimize(e);
    for (const auto n : e->subscriber_nodes) {
      auto clone = pkt->fork();
      clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
      benchmark::DoNotOptimize(clone->seq + static_cast<media::Seq>(n));
    }
  }
  if (media::RtpBody::deep_copy_count() != 0) {
    state.SkipWithError("fast path performed a body deep copy");
  }
}
BENCHMARK(BM_FibLookupAndForward);

void BM_LayerFilterForward(benchmark::State& state) {
  // The masked variant of the per-packet fan-out: half the subscribers
  // carry an SVC layer mask that excludes this packet's layer. The
  // filter is decided at append time, before the fork, so a filtered
  // subscriber costs one mask AND — never a trailer allocation. The
  // all-layers subscribers pay the same fork as BM_FibLookupAndForward,
  // keeping the unmasked fast path at its baseline cost.
  overlay::StreamFib fib;
  for (media::StreamId s = 1; s <= 200; ++s) {
    fib.add_node_subscriber(s, static_cast<sim::NodeId>(s % 20));
    fib.add_node_subscriber(s, static_cast<sim::NodeId>((s + 1) % 20));
  }
  fib.add_node_subscriber(77, 5);
  fib.add_node_subscriber(77, 6);
  // Node 5 keeps everything; node 6 wants the base temporal layer only.
  fib.entry(77).set_node_mask(6, media::layer_bit(0, 0));
  media::RtpBody body;
  body.stream_id = 77;
  body.seq = 1;
  body.frame_type = media::FrameType::kP;
  body.frame_id = 1;
  body.gop_id = 1;
  body.frag_count = 1;
  body.payload_bytes = 1200;
  body.layer = media::LayerId{0, 2};  // top temporal enhancement
  body.temporal_layers = 3;
  body.discardable = true;
  const auto pkt = media::RtpPacket::make(std::move(body));
  const media::LayerMask bit = pkt->layer_mask_bit();
  std::uint64_t filtered = 0;
  for (auto _ : state) {
    const auto* e = fib.find(pkt->stream_id());
    benchmark::DoNotOptimize(e);
    const bool masked = e->any_layer_filter();
    for (const auto n : e->subscriber_nodes) {
      if (masked && (e->node_mask(n) & bit) == 0) {
        ++filtered;  // excluded before the fork: no copy, no allocation
        continue;
      }
      auto clone = pkt->fork();
      clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
      benchmark::DoNotOptimize(clone->seq + static_cast<media::Seq>(n));
    }
  }
  benchmark::DoNotOptimize(filtered);
  if (filtered != static_cast<std::uint64_t>(state.iterations())) {
    state.SkipWithError("masked subscriber was not filtered");
  }
  if (media::RtpBody::deep_copy_count() != 0) {
    state.SkipWithError("filtered fan-out performed a body deep copy");
  }
}
BENCHMARK(BM_LayerFilterForward);

// Before/after of the StreamContext unification. The old node resolved
// per-stream state through parallel hash maps: the RTP handler probed
// the FIB, and the per-stream state map (framer, caches, path state)
// was a second, separately-keyed probe. The unified StreamTable folds
// both into one context record, so the per-packet path pays exactly one
// hash probe and carries the pointer through fast and slow path.
void BM_SplitMapLookup(benchmark::State& state) {
  // "Before": FIB probe + per-stream state probe per packet.
  overlay::StreamFib fib;
  std::unordered_map<media::StreamId, overlay::StreamContext> streams;
  for (media::StreamId s = 1; s <= 200; ++s) {
    fib.add_node_subscriber(s, static_cast<sim::NodeId>(s % 20));
    streams[s].paths_fetched = static_cast<Time>(s);
  }
  const auto pkt = make_packet(77, 1);
  for (auto _ : state) {
    const auto* e = fib.find(pkt->stream_id());
    benchmark::DoNotOptimize(e);
    const auto it = streams.find(pkt->stream_id());
    benchmark::DoNotOptimize(it->second.paths_fetched);
    benchmark::DoNotOptimize(e->subscriber_nodes.size());
  }
}
BENCHMARK(BM_SplitMapLookup);

void BM_StreamContextLookup(benchmark::State& state) {
  // "After": one StreamTable probe yields FIB entry + stream state.
  overlay::StreamTable table;
  for (media::StreamId s = 1; s <= 200; ++s) {
    table.add_node_subscriber(s, static_cast<sim::NodeId>(s % 20));
    table.context(s).paths_fetched = static_cast<Time>(s);
  }
  const auto pkt = make_packet(77, 1);
  for (auto _ : state) {
    const auto* ctx = table.find_context(pkt->stream_id());
    benchmark::DoNotOptimize(ctx);
    benchmark::DoNotOptimize(ctx->paths_fetched);
    benchmark::DoNotOptimize(ctx->fib.subscriber_nodes.size());
  }
}
BENCHMARK(BM_StreamContextLookup);

void BM_PacerEnqueueSend(benchmark::State& state) {
  sim::EventLoop loop;
  std::uint64_t sunk = 0;
  transport::Pacer::Config cfg;
  cfg.rate_bps = 1e9;
  transport::Pacer pacer(
      &loop, [&sunk](const media::RtpPacketPtr& p) { sunk += p->seq; }, cfg);
  media::Seq seq = 1;
  for (auto _ : state) {
    pacer.enqueue(make_packet(1, seq++));
    loop.run();  // drain (high rate: one event per packet)
  }
  benchmark::DoNotOptimize(sunk);
}
BENCHMARK(BM_PacerEnqueueSend);

void BM_PacketGopCacheAdd(benchmark::State& state) {
  overlay::PacketGopCache cache(2);
  media::Seq seq = 0;
  for (auto _ : state) {
    const bool key = (seq % 150) == 0;
    cache.add(make_packet(1, seq,
                          key ? media::FrameType::kI : media::FrameType::kP));
    ++seq;
  }
  benchmark::DoNotOptimize(cache.cached_packets(1));
}
BENCHMARK(BM_PacketGopCacheAdd);

void BM_PacketGopCacheStartupBurst(benchmark::State& state) {
  overlay::PacketGopCache cache(2);
  for (media::Seq seq = 0; seq < 600; ++seq) {
    const bool key = (seq % 150) == 0;
    cache.add(make_packet(1, seq,
                          key ? media::FrameType::kI : media::FrameType::kP));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.startup_packets(1).size());
  }
}
BENCHMARK(BM_PacketGopCacheStartupBurst);

void BM_GccReceiverOnPacket(benchmark::State& state) {
  transport::GccReceiver rx(10e6);
  Time send = 0, arrival = 0;
  Rng rng(5);
  for (auto _ : state) {
    send += 1 * kMs;
    arrival = send + 20 * kMs +
              static_cast<Duration>(rng.uniform(0.0, 500.0));
    rx.on_packet(send, arrival, 1218);
  }
  benchmark::DoNotOptimize(rx.remb_bps());
}
BENCHMARK(BM_GccReceiverOnPacket);

void BM_ReceiveBufferInOrder(benchmark::State& state) {
  sim::EventLoop loop;
  std::uint64_t delivered = 0;
  transport::ReceiveBuffer buf(
      &loop, [&delivered](const media::RtpPacketPtr&) { ++delivered; },
      [](media::StreamId) {}, [](media::StreamId, bool,
                                 const std::vector<media::Seq>&) {});
  media::Seq seq = 1;
  for (auto _ : state) {
    buf.on_packet(make_packet(1, seq++));
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_ReceiveBufferInOrder);

void BM_Packetize1MbpsFrame(benchmark::State& state) {
  media::Packetizer packetizer(1);
  media::Frame f;
  f.stream_id = 1;
  f.type = media::FrameType::kP;
  f.size_bytes = 5000;
  for (auto _ : state) {
    f.frame_id++;
    benchmark::DoNotOptimize(packetizer.packetize(f).size());
  }
}
BENCHMARK(BM_Packetize1MbpsFrame);

void BM_EventLoopScheduleDispatch(benchmark::State& state) {
  sim::EventLoop loop;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    loop.schedule_after(10, [&fired] { ++fired; });
    loop.step();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventLoopScheduleDispatch);

// A relay hop for the end-to-end throughput bench: receive, fork,
// re-pace toward the next node in the chain.
class ChainRelay final : public sim::SimNode {
 public:
  void attach(sim::Network* net, sim::NodeId next,
              const transport::Pacer::Config& pc) {
    net_ = net;
    next_ = next;
    if (next_ != sim::kNoNode) {
      pacer_ = std::make_unique<transport::Pacer>(
          net->loop(), transport::Pacer::SendFn{}, pc);
      pacer_->set_wire(net_, node_id(), next_);
    }
  }

  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override {
    on_message_batch(from, &msg, 1);
  }

  void on_message_batch(sim::NodeId from, const sim::MessagePtr* msgs,
                        std::size_t n) override {
    (void)from;
    received_ += n;
    if (pacer_ == nullptr) return;
    for (std::size_t i = 0; i < n; ++i) {
      // Zero-copy relay: the immutable packet is shared down the chain.
      // Only RtpPackets flow in this bench, so the downcast is static.
      pacer_->enqueue(media::RtpPacketPtr(
          static_cast<const media::RtpPacket*>(msgs[i].get())));
    }
  }

  transport::Pacer* pacer() { return pacer_.get(); }
  std::uint64_t received() const { return received_; }

 private:
  sim::Network* net_ = nullptr;
  sim::NodeId next_ = sim::kNoNode;
  std::unique_ptr<transport::Pacer> pacer_;
  std::uint64_t received_ = 0;
};

void BM_EndToEndForward(benchmark::State& state) {
  // End-to-end data-plane throughput: a 600-node relay chain (the
  // repro_scale footprint), every hop re-pacing and forwarding frame
  // bursts. Arg(0) pins the pre-batching event chain — one delivery
  // upcall and one pacer event per packet. Arg(1) is the shipping
  // configuration: 1 ms delivery quantum with credit-bounded pacer
  // bursts, so a 24-packet frame costs one flush + one drain per hop.
  // Delivery times and order are identical in both modes (see the
  // quantum-sweep differential test); only the callback count differs.
  //
  // kFrames saturates the pipeline: injection (10 ms cadence) overlaps
  // the ~3 s end-to-end traversal, so ~kFrames frame clumps are in
  // flight at once and the event queue carries hundreds of pending
  // events — the regime repro_scale actually runs in. An idle pipeline
  // (few pending events) would understate the per-packet event cost the
  // batched path removes.
  constexpr int kNodes = 600;
  constexpr int kFrames = 100;
  constexpr int kPacketsPerFrame = 24;
  const bool batched = state.range(0) != 0;

  sim::EventLoop loop;
  sim::Network net(&loop, /*seed=*/7);
  net.set_delivery_batch(batched ? sim::DeliveryBatch{1 * kMs, 128}
                                 : sim::DeliveryBatch{0, 1});
  transport::Pacer::Config pc;
  pc.rate_bps = 1e9;
  pc.max_burst = batched ? 2 * kMs : 0;
  pc.max_burst_packets = batched ? 128 : 1;

  std::vector<std::unique_ptr<ChainRelay>> relays;
  relays.reserve(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    relays.push_back(std::make_unique<ChainRelay>());
    net.add_node(relays.back().get());
  }
  sim::LinkConfig lc;
  lc.bandwidth_bps = 8e13;  // sub-us serialization: bursts stay coincident
  lc.loss_rate = 0.0;
  lc.jitter_stddev = 0;
  for (int i = 0; i + 1 < kNodes; ++i) {
    // Staggered propagation keeps hop instants from colliding across
    // the pipeline, which would serialize unrelated relays' drains.
    lc.propagation_delay = 5 * kMs + (i % 97) * 11;
    net.add_link(i, i + 1, lc);
  }
  net.freeze_topology();
  for (int i = 0; i < kNodes; ++i) {
    relays[static_cast<std::size_t>(i)]->attach(
        &net, i + 1 < kNodes ? i + 1 : sim::kNoNode, pc);
  }

  std::uint64_t hops = 0;
  media::Seq seq = 1;
  for (auto _ : state) {
    const Time start = loop.now();
    for (int f = 0; f < kFrames; ++f) {
      loop.schedule_at(start + f * (10 * kMs), [&relays, &seq] {
        for (int k = 0; k < kPacketsPerFrame; ++k) {
          relays[0]->pacer()->enqueue(make_packet(1, seq++));
        }
      });
    }
    loop.run();
    hops += static_cast<std::uint64_t>(kFrames) * kPacketsPerFrame *
            (kNodes - 1);
  }
  const std::uint64_t expected =
      static_cast<std::uint64_t>(state.iterations()) * kFrames *
      kPacketsPerFrame;
  if (relays.back()->received() != expected) {
    state.SkipWithError("chain lost packets (loss-free links)");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(hops));
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(hops), benchmark::Counter::kIsRate);
  state.counters["batch_upcalls"] =
      benchmark::Counter(static_cast<double>(net.batch_upcalls()),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_EndToEndForward)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ShardedScale(benchmark::State& state) {
  // The million-viewer headline (ISSUE 7): the 595-infra-node cohort
  // tree — 504 leaves x 2000 modeled viewers = 1,008,000 — partitioned
  // onto `shards` parallel event loops, short virtual slice per
  // iteration. The world (and its QoE CSV) is shard-count-invariant;
  // only wall clock may change. NOTE: on a single-core host the shard
  // threads time-slice one CPU, so the parallel speedup this benchmark
  // exists to show reads as ~1x there (plus barrier overhead); the
  // counters still validate the conservative windowing at full scale.
  const auto shards = static_cast<std::size_t>(state.range(0));
  livenet::ShardedScaleConfig cfg =
      livenet::scale_acceptance_config(shards, 2000);
  // 3 s virtual: past the end of the join window (+ per-cohort seeded
  // perturbation), so the modeled_viewers counter reads the full
  // 1,008,000 rather than a mid-join snapshot.
  cfg.duration = 3 * livenet::kSec;
  std::uint64_t viewers = 0;
  std::uint64_t frames = 0;
  std::uint64_t cross = 0;
  double sim_seconds = 0.0;
  for (auto _ : state) {
    livenet::ShardedScaleSim sim(cfg);
    const livenet::ShardedScaleResult res = sim.run();
    viewers = res.modeled_viewers;
    frames += res.frames_displayed;
    cross += res.cross_messages;
    sim_seconds += static_cast<double>(cfg.duration) / livenet::kSec;
    if (res.cross_drops != 0 || res.route_misses != 0) {
      state.SkipWithError("sharded harness dropped or misrouted traffic");
      break;
    }
  }
  state.counters["modeled_viewers"] =
      benchmark::Counter(static_cast<double>(viewers));
  state.counters["sim_per_wall"] = benchmark::Counter(
      sim_seconds, benchmark::Counter::kIsRate);  // sim-sec per wall-sec
  state.counters["frames_weighted"] = benchmark::Counter(
      static_cast<double>(frames), benchmark::Counter::kAvgIterations);
  state.counters["cross_msgs"] = benchmark::Counter(
      static_cast<double>(cross), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ShardedScale)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

LIVENET_BENCHMARK_MAIN();
