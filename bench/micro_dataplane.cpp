// Microbenchmarks of the per-packet data plane: fast-path forwarding
// cost, pacer scheduling, GoP caches, GCC receiver updates, and the
// receive buffer — the pieces the paper's fast/slow-path split is
// built from.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "media/packetizer.h"
#include "overlay/packet_cache.h"
#include "overlay/stream_context.h"
#include "overlay/stream_fib.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "transport/gcc.h"
#include "transport/pacer.h"
#include "transport/receive_buffer.h"
#include "util/rng.h"

namespace {

using namespace livenet;

media::RtpPacketPtr make_packet(media::StreamId s, media::Seq seq,
                                media::FrameType t = media::FrameType::kP) {
  media::RtpBody body;
  body.stream_id = s;
  body.seq = seq;
  body.frame_type = t;
  body.frame_id = seq / 3 + 1;
  body.gop_id = seq / 150 + 1;
  body.frag_index = static_cast<std::uint32_t>(seq % 3);
  body.frag_count = 3;
  body.payload_bytes = 1200;
  return media::RtpPacket::make(std::move(body));
}

void BM_FibLookupAndForward(benchmark::State& state) {
  // The fast path's per-packet work: FIB lookup + a per-subscriber
  // trailer fork sharing one refcounted body (was: a full deep clone,
  // as BM_FibLookupAndClone).
  overlay::StreamFib fib;
  for (media::StreamId s = 1; s <= 200; ++s) {
    fib.add_node_subscriber(s, static_cast<sim::NodeId>(s % 20));
    fib.add_node_subscriber(s, static_cast<sim::NodeId>((s + 1) % 20));
  }
  const auto pkt = make_packet(77, 1);
  fib.add_node_subscriber(77, 5);
  for (auto _ : state) {
    const auto* e = fib.find(pkt->stream_id());
    benchmark::DoNotOptimize(e);
    for (const auto n : e->subscriber_nodes) {
      auto clone = pkt->fork();
      clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
      benchmark::DoNotOptimize(clone->seq + static_cast<media::Seq>(n));
    }
  }
  if (media::RtpBody::deep_copy_count() != 0) {
    state.SkipWithError("fast path performed a body deep copy");
  }
}
BENCHMARK(BM_FibLookupAndForward);

// Before/after of the StreamContext unification. The old node resolved
// per-stream state through parallel hash maps: the RTP handler probed
// the FIB, and the per-stream state map (framer, caches, path state)
// was a second, separately-keyed probe. The unified StreamTable folds
// both into one context record, so the per-packet path pays exactly one
// hash probe and carries the pointer through fast and slow path.
void BM_SplitMapLookup(benchmark::State& state) {
  // "Before": FIB probe + per-stream state probe per packet.
  overlay::StreamFib fib;
  std::unordered_map<media::StreamId, overlay::StreamContext> streams;
  for (media::StreamId s = 1; s <= 200; ++s) {
    fib.add_node_subscriber(s, static_cast<sim::NodeId>(s % 20));
    streams[s].paths_fetched = static_cast<Time>(s);
  }
  const auto pkt = make_packet(77, 1);
  for (auto _ : state) {
    const auto* e = fib.find(pkt->stream_id());
    benchmark::DoNotOptimize(e);
    const auto it = streams.find(pkt->stream_id());
    benchmark::DoNotOptimize(it->second.paths_fetched);
    benchmark::DoNotOptimize(e->subscriber_nodes.size());
  }
}
BENCHMARK(BM_SplitMapLookup);

void BM_StreamContextLookup(benchmark::State& state) {
  // "After": one StreamTable probe yields FIB entry + stream state.
  overlay::StreamTable table;
  for (media::StreamId s = 1; s <= 200; ++s) {
    table.add_node_subscriber(s, static_cast<sim::NodeId>(s % 20));
    table.context(s).paths_fetched = static_cast<Time>(s);
  }
  const auto pkt = make_packet(77, 1);
  for (auto _ : state) {
    const auto* ctx = table.find_context(pkt->stream_id());
    benchmark::DoNotOptimize(ctx);
    benchmark::DoNotOptimize(ctx->paths_fetched);
    benchmark::DoNotOptimize(ctx->fib.subscriber_nodes.size());
  }
}
BENCHMARK(BM_StreamContextLookup);

void BM_PacerEnqueueSend(benchmark::State& state) {
  sim::EventLoop loop;
  std::uint64_t sunk = 0;
  transport::Pacer::Config cfg;
  cfg.rate_bps = 1e9;
  transport::Pacer pacer(
      &loop, [&sunk](const media::RtpPacketPtr& p) { sunk += p->seq; }, cfg);
  media::Seq seq = 1;
  for (auto _ : state) {
    pacer.enqueue(make_packet(1, seq++));
    loop.run();  // drain (high rate: one event per packet)
  }
  benchmark::DoNotOptimize(sunk);
}
BENCHMARK(BM_PacerEnqueueSend);

void BM_PacketGopCacheAdd(benchmark::State& state) {
  overlay::PacketGopCache cache(2);
  media::Seq seq = 0;
  for (auto _ : state) {
    const bool key = (seq % 150) == 0;
    cache.add(make_packet(1, seq,
                          key ? media::FrameType::kI : media::FrameType::kP));
    ++seq;
  }
  benchmark::DoNotOptimize(cache.cached_packets(1));
}
BENCHMARK(BM_PacketGopCacheAdd);

void BM_PacketGopCacheStartupBurst(benchmark::State& state) {
  overlay::PacketGopCache cache(2);
  for (media::Seq seq = 0; seq < 600; ++seq) {
    const bool key = (seq % 150) == 0;
    cache.add(make_packet(1, seq,
                          key ? media::FrameType::kI : media::FrameType::kP));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.startup_packets(1).size());
  }
}
BENCHMARK(BM_PacketGopCacheStartupBurst);

void BM_GccReceiverOnPacket(benchmark::State& state) {
  transport::GccReceiver rx(10e6);
  Time send = 0, arrival = 0;
  Rng rng(5);
  for (auto _ : state) {
    send += 1 * kMs;
    arrival = send + 20 * kMs +
              static_cast<Duration>(rng.uniform(0.0, 500.0));
    rx.on_packet(send, arrival, 1218);
  }
  benchmark::DoNotOptimize(rx.remb_bps());
}
BENCHMARK(BM_GccReceiverOnPacket);

void BM_ReceiveBufferInOrder(benchmark::State& state) {
  sim::EventLoop loop;
  std::uint64_t delivered = 0;
  transport::ReceiveBuffer buf(
      &loop, [&delivered](const media::RtpPacketPtr&) { ++delivered; },
      [](media::StreamId) {}, [](media::StreamId, bool,
                                 const std::vector<media::Seq>&) {});
  media::Seq seq = 1;
  for (auto _ : state) {
    buf.on_packet(make_packet(1, seq++));
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_ReceiveBufferInOrder);

void BM_Packetize1MbpsFrame(benchmark::State& state) {
  media::Packetizer packetizer(1);
  media::Frame f;
  f.stream_id = 1;
  f.type = media::FrameType::kP;
  f.size_bytes = 5000;
  for (auto _ : state) {
    f.frame_id++;
    benchmark::DoNotOptimize(packetizer.packetize(f).size());
  }
}
BENCHMARK(BM_Packetize1MbpsFrame);

void BM_EventLoopScheduleDispatch(benchmark::State& state) {
  sim::EventLoop loop;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    loop.schedule_after(10, [&fired] { ++fired; });
    loop.step();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventLoopScheduleDispatch);

}  // namespace

BENCHMARK_MAIN();
