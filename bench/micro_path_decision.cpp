// Microbenchmark: Path Decision lookups — the paper claims "the path
// lookup takes only a few milliseconds" end to end, with the in-memory
// hash lookups themselves far cheaper. Also benches PIB invalidation
// and the stamp-invalidated lookup cache that serves the request path.
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "brain/path_decision.h"
#include "util/rng.h"

// TU-level allocation probe: replaceable global operator new/delete
// with a counter. The default operator new[] routes through operator
// new, so one pair covers both. Used to prove the warm-cache lookup
// is allocation-free (the cached Lookup is refilled in place).
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}

// GCC inlines the pair and flags free() as mismatched with the custom
// operator new above; they do match (new mallocs, delete frees).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace livenet;
using namespace livenet::brain;

struct Fixture {
  Pib pib;
  Sib sib;
  std::vector<media::StreamId> streams;
  std::vector<sim::NodeId> nodes;

  explicit Fixture(int n_nodes = 60, int n_streams = 5000) {
    Rng rng(3);
    for (int i = 0; i < n_nodes; ++i) nodes.push_back(i);
    for (int a = 0; a < n_nodes; ++a) {
      for (int b = 0; b < n_nodes; ++b) {
        if (a == b) continue;
        const sim::NodeId relay =
            static_cast<sim::NodeId>(rng.index(nodes.size()));
        pib.set_paths(a, b,
                      {{a, relay, b}, {a, (relay + 1) % n_nodes, b}, {a, b}});
        pib.set_last_resort(a, b, {a, relay, b});
      }
    }
    for (int s = 1; s <= n_streams; ++s) {
      streams.push_back(static_cast<media::StreamId>(s));
      sib.set_producer(static_cast<media::StreamId>(s),
                       static_cast<sim::NodeId>(rng.index(nodes.size())));
    }
  }
};

/// The request path as the Brain actually runs it: warm stamp-checked
/// cache hits. Reports allocations per lookup — must be zero.
void BM_PathLookup(benchmark::State& state) {
  Fixture fx;
  PathDecision pd(&fx.pib, &fx.sib);
  Rng rng(9);
  // Warm every (producer, consumer) pair the loop can touch.
  for (const auto s : fx.streams) {
    for (const auto n : fx.nodes) pd.get_path_cached(s, n);
  }
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const media::StreamId s = fx.streams[rng.index(fx.streams.size())];
    const sim::NodeId consumer =
        static_cast<sim::NodeId>(rng.index(fx.nodes.size()));
    benchmark::DoNotOptimize(pd.get_path_cached(s, consumer).paths.size());
  }
  const auto delta = static_cast<double>(
      g_allocs.load(std::memory_order_relaxed) - allocs_before);
  state.counters["allocs_per_iter"] =
      benchmark::Counter(delta, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PathLookup);

/// The pre-cache oracle: rebuilds the candidate list per request.
void BM_PathLookupUncached(benchmark::State& state) {
  Fixture fx;
  PathDecision pd(&fx.pib, &fx.sib);
  Rng rng(9);
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const media::StreamId s = fx.streams[rng.index(fx.streams.size())];
    const sim::NodeId consumer =
        static_cast<sim::NodeId>(rng.index(fx.nodes.size()));
    benchmark::DoNotOptimize(pd.get_path(s, consumer).paths.size());
  }
  const auto delta = static_cast<double>(
      g_allocs.load(std::memory_order_relaxed) - allocs_before);
  state.counters["allocs_per_iter"] =
      benchmark::Counter(delta, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PathLookupUncached);

/// Dirty-stamp churn: an overload mark/clear every 64 lookups bumps the
/// PIB version, forcing in-place refills of the touched entries.
void BM_PathLookupUnderChurn(benchmark::State& state) {
  Fixture fx;
  PathDecision pd(&fx.pib, &fx.sib);
  Rng rng(11);
  int i = 0;
  for (auto _ : state) {
    if ((i & 63) == 0) {
      fx.pib.mark_node_overloaded(i % 60);
      fx.pib.clear_node_overloaded((i + 30) % 60);
    }
    const media::StreamId s = fx.streams[rng.index(fx.streams.size())];
    const sim::NodeId consumer =
        static_cast<sim::NodeId>(rng.index(fx.nodes.size()));
    benchmark::DoNotOptimize(pd.get_path_cached(s, consumer).paths.size());
    ++i;
  }
}
BENCHMARK(BM_PathLookupUnderChurn);

void BM_PathLookupWithOverloads(benchmark::State& state) {
  Fixture fx;
  // A handful of real-time overload marks to filter against.
  for (int i = 0; i < 6; ++i) fx.pib.mark_node_overloaded(i * 7 % 60);
  PathDecision pd(&fx.pib, &fx.sib);
  Rng rng(10);
  for (auto _ : state) {
    const media::StreamId s = fx.streams[rng.index(fx.streams.size())];
    benchmark::DoNotOptimize(
        pd.get_path(s, static_cast<sim::NodeId>(rng.index(fx.nodes.size())))
            .paths.size());
  }
}
BENCHMARK(BM_PathLookupWithOverloads);

void BM_SibUpdate(benchmark::State& state) {
  Sib sib;
  media::StreamId s = 1;
  for (auto _ : state) {
    sib.set_producer(s, static_cast<sim::NodeId>(s % 60));
    if (s > 10000) sib.erase(s - 10000);
    ++s;
  }
}
BENCHMARK(BM_SibUpdate);

void BM_PibInvalidate(benchmark::State& state) {
  Fixture fx;
  int i = 0;
  for (auto _ : state) {
    fx.pib.mark_node_overloaded(i % 60);
    fx.pib.clear_node_overloaded((i + 30) % 60);
    ++i;
  }
}
BENCHMARK(BM_PibInvalidate);

}  // namespace

LIVENET_BENCHMARK_MAIN();
