// Microbenchmark: Path Decision lookups — the paper claims "the path
// lookup takes only a few milliseconds" end to end, with the in-memory
// hash lookups themselves far cheaper. Also benches PIB invalidation.
#include <benchmark/benchmark.h>

#include "brain/path_decision.h"
#include "util/rng.h"

namespace {

using namespace livenet;
using namespace livenet::brain;

struct Fixture {
  Pib pib;
  Sib sib;
  std::vector<media::StreamId> streams;
  std::vector<sim::NodeId> nodes;

  explicit Fixture(int n_nodes = 60, int n_streams = 5000) {
    Rng rng(3);
    for (int i = 0; i < n_nodes; ++i) nodes.push_back(i);
    for (int a = 0; a < n_nodes; ++a) {
      for (int b = 0; b < n_nodes; ++b) {
        if (a == b) continue;
        const sim::NodeId relay =
            static_cast<sim::NodeId>(rng.index(nodes.size()));
        pib.set_paths(a, b,
                      {{a, relay, b}, {a, (relay + 1) % n_nodes, b}, {a, b}});
        pib.set_last_resort(a, b, {a, relay, b});
      }
    }
    for (int s = 1; s <= n_streams; ++s) {
      streams.push_back(static_cast<media::StreamId>(s));
      sib.set_producer(static_cast<media::StreamId>(s),
                       static_cast<sim::NodeId>(rng.index(nodes.size())));
    }
  }
};

void BM_PathLookup(benchmark::State& state) {
  Fixture fx;
  PathDecision pd(&fx.pib, &fx.sib);
  Rng rng(9);
  for (auto _ : state) {
    const media::StreamId s = fx.streams[rng.index(fx.streams.size())];
    const sim::NodeId consumer =
        static_cast<sim::NodeId>(rng.index(fx.nodes.size()));
    benchmark::DoNotOptimize(pd.get_path(s, consumer).paths.size());
  }
}
BENCHMARK(BM_PathLookup);

void BM_PathLookupWithOverloads(benchmark::State& state) {
  Fixture fx;
  // A handful of real-time overload marks to filter against.
  for (int i = 0; i < 6; ++i) fx.pib.mark_node_overloaded(i * 7 % 60);
  PathDecision pd(&fx.pib, &fx.sib);
  Rng rng(10);
  for (auto _ : state) {
    const media::StreamId s = fx.streams[rng.index(fx.streams.size())];
    benchmark::DoNotOptimize(
        pd.get_path(s, static_cast<sim::NodeId>(rng.index(fx.nodes.size())))
            .paths.size());
  }
}
BENCHMARK(BM_PathLookupWithOverloads);

void BM_SibUpdate(benchmark::State& state) {
  Sib sib;
  media::StreamId s = 1;
  for (auto _ : state) {
    sib.set_producer(s, static_cast<sim::NodeId>(s % 60));
    if (s > 10000) sib.erase(s - 10000);
    ++s;
  }
}
BENCHMARK(BM_SibUpdate);

void BM_PibInvalidate(benchmark::State& state) {
  Fixture fx;
  int i = 0;
  for (auto _ : state) {
    fx.pib.mark_node_overloaded(i % 60);
    fx.pib.clear_node_overloaded((i + 30) % 60);
    ++i;
  }
}
BENCHMARK(BM_PibInvalidate);

}  // namespace

BENCHMARK_MAIN();
