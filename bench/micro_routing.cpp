// Microbenchmark: Global Routing recompute cost — Yen's KSP over all
// node pairs as a function of overlay size, for the paper's k = 3 and
// the tree-only k = 1, plus the preserved reference pipeline for
// like-for-like speedup numbers and the incremental (dirty-set) cycle.
// The 600-node arguments match the paper's deployment scale (§4.3).
// The main recompute sweep carries a threads axis (the Parallel Brain
// fan-out); output is byte-identical across thread counts, so the axis
// measures pure wall-clock scaling.
#include <benchmark/benchmark.h>

#include "bench_main.h"
#include "brain/global_routing.h"
#include "util/rng.h"

namespace {

using namespace livenet;
using namespace livenet::brain;

GlobalDiscovery make_view(int n, std::uint64_t seed) {
  Rng rng(seed);
  GlobalDiscovery view;
  for (int a = 0; a < n; ++a) {
    overlay::NodeStateReport rep;
    rep.node = a;
    rep.node_load = rng.uniform(0.05, 0.6);
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      overlay::LinkReport lr;
      lr.to = b;
      lr.rtt = static_cast<Duration>(rng.uniform(10.0, 300.0) *
                                     static_cast<double>(kMs));
      lr.loss_rate = rng.uniform(0.0, 0.002);
      lr.utilization = rng.uniform(0.0, 0.7);
      rep.links.push_back(lr);
    }
    view.on_report(rep, 0, nullptr);
  }
  return view;
}

std::vector<sim::NodeId> make_nodes(int n) {
  std::vector<sim::NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) nodes.push_back(i);
  return nodes;
}

// Steady-state routing cycle: the module persists across cycles (as in
// BrainNode), so one untimed seed cycle warms the version-keyed caches
// — every timed iteration then measures the recurring cycle cost, not
// the once-per-process cold build. The reference benchmark below has no
// persistent state, so its numbers are unaffected by this shape.
void BM_GlobalRoutingRecompute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const GlobalDiscovery view = make_view(n, 7);
  const auto nodes = make_nodes(n);
  GlobalRoutingConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(1));
  GlobalRouting routing(cfg);
  {
    Pib seed;
    routing.recompute(view, nodes, {}, &seed);
  }
  for (auto _ : state) {
    Pib pib;
    const auto res = routing.recompute(view, nodes, {}, &pib);
    benchmark::DoNotOptimize(res.paths_installed);
  }
  state.counters["pairs"] = static_cast<double>(n) * (n - 1);
}
BENCHMARK(BM_GlobalRoutingRecompute)
    ->ArgNames({"", "threads"})
    ->Args({10, 1})->Args({20, 1})->Args({40, 1})->Args({60, 1})
    ->Args({120, 1})->Args({240, 1})->Args({600, 1})
    ->Args({60, 4})
    ->Args({600, 2})->Args({600, 4})->Args({600, 8})
    ->Unit(benchmark::kMillisecond);

// The pre-optimization per-pair pipeline, kept as the differential
// oracle — benchmarked at the old sizes for like-for-like comparison.
void BM_GlobalRoutingRecomputeRef(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const GlobalDiscovery view = make_view(n, 7);
  const auto nodes = make_nodes(n);
  GlobalRouting routing;
  for (auto _ : state) {
    Pib pib;
    const auto res = routing.recompute_reference(view, nodes, {}, &pib);
    benchmark::DoNotOptimize(res.paths_installed);
  }
  state.counters["pairs"] = static_cast<double>(n) * (n - 1);
}
BENCHMARK(BM_GlobalRoutingRecomputeRef)
    ->Arg(10)->Arg(20)->Arg(40)->Arg(60)
    ->Unit(benchmark::kMillisecond);

// k = 1: one shortest-path tree per source, no spur searches — the
// configuration repro_scale runs at deployment scale.
void BM_GlobalRoutingRecomputeK1(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const GlobalDiscovery view = make_view(n, 7);
  const auto nodes = make_nodes(n);
  GlobalRoutingConfig cfg;
  cfg.k = 1;
  GlobalRouting routing(cfg);
  for (auto _ : state) {
    Pib pib;
    const auto res = routing.recompute(view, nodes, {}, &pib);
    benchmark::DoNotOptimize(res.paths_installed);
  }
  state.counters["pairs"] = static_cast<double>(n) * (n - 1);
}
BENCHMARK(BM_GlobalRoutingRecomputeK1)
    ->Arg(120)->Arg(240)->Arg(600)
    ->Unit(benchmark::kMillisecond);

// Steady-state incremental cycle: a handful of links move per cycle,
// everything else rides the dirty-set skip (with the periodic full
// refresh mixed in at its configured cadence).
void BM_GlobalRoutingIncremental(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GlobalDiscovery view = make_view(n, 7);
  const auto nodes = make_nodes(n);
  GlobalRoutingConfig cfg;
  cfg.incremental = true;
  GlobalRouting routing(cfg);
  Pib pib;
  routing.recompute(view, nodes, {}, &pib);  // seed cycle (full)
  Rng rng(13);
  int epoch = 0;
  for (auto _ : state) {
    // Move two links of one node far enough to trip the dirty bar
    // (load held steady so only the links go dirty, not the node).
    overlay::NodeStateReport rep;
    rep.node = epoch % n;
    rep.node_load = view.node_load(rep.node);
    for (int b = 1; b <= 2; ++b) {
      overlay::LinkReport lr;
      lr.to = (rep.node + b) % n;
      lr.rtt = static_cast<Duration>(rng.uniform(10.0, 300.0) *
                                     static_cast<double>(kMs));
      lr.loss_rate = 0.0005;
      lr.utilization = 0.3;
      rep.links.push_back(lr);
    }
    view.on_report(rep, 0, nullptr);
    ++epoch;
    const auto res = routing.recompute(view, nodes, {}, &pib);
    benchmark::DoNotOptimize(res.pairs_solved);
  }
}
BENCHMARK(BM_GlobalRoutingIncremental)
    ->Arg(60)->Arg(120)
    ->Unit(benchmark::kMillisecond);

void BM_YenKsp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const GlobalDiscovery view = make_view(n, 11);
  const auto nodes = make_nodes(n);
  GlobalRouting routing;
  const RoutingGraph g = routing.build_graph(view, nodes);
  for (auto _ : state) {
    const auto paths = k_shortest_paths(g, 0, static_cast<std::size_t>(n) - 1, 3);
    benchmark::DoNotOptimize(paths.size());
  }
}
BENCHMARK(BM_YenKsp)->Arg(20)->Arg(60)->Arg(120);

void BM_LinkWeight(benchmark::State& state) {
  LinkState ls;
  ls.rtt = 80 * livenet::kMs;
  ls.loss_rate = 0.001;
  ls.utilization = 0.42;
  const WeightParams params;
  double u = 0.3;
  for (auto _ : state) {
    u = u < 0.9 ? u + 1e-6 : 0.3;
    benchmark::DoNotOptimize(link_weight(ls, u, 0.2, params));
  }
}
BENCHMARK(BM_LinkWeight);

}  // namespace

LIVENET_BENCHMARK_MAIN();
