// Microbenchmark: Global Routing recompute cost — Yen's KSP (k=3) over
// all node pairs as a function of overlay size. Demonstrates the
// 10-minute recompute cycle is cheap even at multiples of our footprint.
#include <benchmark/benchmark.h>

#include "brain/global_routing.h"
#include "util/rng.h"

namespace {

using namespace livenet;
using namespace livenet::brain;

GlobalDiscovery make_view(int n, std::uint64_t seed) {
  Rng rng(seed);
  GlobalDiscovery view;
  for (int a = 0; a < n; ++a) {
    overlay::NodeStateReport rep;
    rep.node = a;
    rep.node_load = rng.uniform(0.05, 0.6);
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      overlay::LinkReport lr;
      lr.to = b;
      lr.rtt = static_cast<Duration>(rng.uniform(10.0, 300.0) *
                                     static_cast<double>(kMs));
      lr.loss_rate = rng.uniform(0.0, 0.002);
      lr.utilization = rng.uniform(0.0, 0.7);
      rep.links.push_back(lr);
    }
    view.on_report(rep, 0, nullptr);
  }
  return view;
}

void BM_GlobalRoutingRecompute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const GlobalDiscovery view = make_view(n, 7);
  std::vector<sim::NodeId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(i);
  GlobalRouting routing;
  for (auto _ : state) {
    Pib pib;
    const auto res = routing.recompute(view, nodes, {}, &pib);
    benchmark::DoNotOptimize(res.paths_installed);
  }
  state.counters["pairs"] = static_cast<double>(n) * (n - 1);
}
BENCHMARK(BM_GlobalRoutingRecompute)->Arg(10)->Arg(20)->Arg(40)->Arg(60)
    ->Unit(benchmark::kMillisecond);

void BM_YenKsp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const GlobalDiscovery view = make_view(n, 11);
  std::vector<sim::NodeId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(i);
  GlobalRouting routing;
  const RoutingGraph g = routing.build_graph(view, nodes);
  for (auto _ : state) {
    const auto paths = k_shortest_paths(g, 0, static_cast<std::size_t>(n) - 1, 3);
    benchmark::DoNotOptimize(paths.size());
  }
}
BENCHMARK(BM_YenKsp)->Arg(20)->Arg(60)->Arg(120);

void BM_LinkWeight(benchmark::State& state) {
  LinkState ls;
  ls.rtt = 80 * livenet::kMs;
  ls.loss_rate = 0.001;
  ls.utilization = 0.42;
  const WeightParams params;
  double u = 0.3;
  for (auto _ : state) {
    u = u < 0.9 ? u + 1e-6 : 0.3;
    benchmark::DoNotOptimize(link_weight(ls, u, 0.2, params));
  }
}
BENCHMARK(BM_LinkWeight);

}  // namespace

BENCHMARK_MAIN();
