// Microbenchmarks of the telemetry layer: registry handle updates,
// trace-ring appends, and — the number the ISSUE gates on — the
// fast-path fan-out loop at 0% / 1% / 100% trace sampling, so the
// cost of observation is measured against the same work the
// BM_FibLookupAndForward baseline does with telemetry compiled in but
// idle.
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "media/packetizer.h"
#include "overlay/stream_fib.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

using namespace livenet;

media::RtpPacketPtr make_packet(media::StreamId s, media::Seq seq,
                                std::uint64_t trace_id = 0) {
  media::RtpBody body;
  body.stream_id = s;
  body.seq = seq;
  body.frame_type = media::FrameType::kP;
  body.frame_id = seq / 3 + 1;
  body.gop_id = seq / 150 + 1;
  body.frag_index = static_cast<std::uint32_t>(seq % 3);
  body.frag_count = 3;
  body.payload_bytes = 1200;
  body.trace_id = trace_id;
  return media::RtpPacket::make(std::move(body));
}

void BM_CounterAdd(benchmark::State& state) {
  // One pre-registered handle bump: the whole hot-path metrics cost.
  telemetry::Counter* c =
      telemetry::MetricsRegistry::instance().counter("bench.counter");
  for (auto _ : state) {
    c->add();
    benchmark::ClobberMemory();  // the increment must reach the handle
  }
  benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_CounterAdd);

void BM_LatencyObserve(benchmark::State& state) {
  telemetry::LatencyStat* l = telemetry::MetricsRegistry::instance().latency(
      "bench.latency_ms", 0.0, 2000.0, 200);
  double v = 0.0;
  for (auto _ : state) {
    v += 0.37;
    if (v >= 2000.0) v = 0.0;
    l->observe(v);
  }
}
BENCHMARK(BM_LatencyObserve);

void BM_TracerRecord(benchmark::State& state) {
  // A raw ring append (the per-hop cost for a traced packet).
  telemetry::Tracer& tracer = telemetry::Tracer::instance();
  tracer.reset();
  std::uint64_t seq = 0;
  for (auto _ : state) {
    telemetry::record_hop(1, static_cast<Time>(seq), 7, seq, 3, 4,
                          telemetry::HopEvent::kForward);
    ++seq;
  }
  benchmark::DoNotOptimize(tracer.records_total());
  tracer.reset();
}
BENCHMARK(BM_TracerRecord);

void BM_FibForwardWithSampling(benchmark::State& state) {
  // The BM_FibLookupAndForward loop plus a sampler stamp and the
  // per-forward hop records traced packets take. Arg is the sampling
  // rate in 1/10000ths: 0 (off), 100 (1%), 10000 (100%).
  const double fraction = static_cast<double>(state.range(0)) / 10000.0;
  telemetry::Tracer::instance().reset();
  telemetry::TraceSampler sampler;
  sampler.set_fraction(fraction);

  overlay::StreamFib fib;
  for (media::StreamId s = 1; s <= 200; ++s) {
    fib.add_node_subscriber(s, static_cast<sim::NodeId>(s % 20));
    fib.add_node_subscriber(s, static_cast<sim::NodeId>((s + 1) % 20));
  }
  fib.add_node_subscriber(77, 5);
  media::Seq seq = 1;
  for (auto _ : state) {
    const auto pkt = make_packet(77, seq++, sampler.sample());
    const auto* e = fib.find(pkt->stream_id());
    benchmark::DoNotOptimize(e);
    for (const auto n : e->subscriber_nodes) {
      auto clone = pkt->fork();
      clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
      telemetry::record_hop(clone->trace_id(), static_cast<Time>(seq),
                            clone->stream_id(), clone->seq, 3,
                            static_cast<std::int32_t>(n),
                            telemetry::HopEvent::kForward);
      benchmark::DoNotOptimize(clone->seq + static_cast<media::Seq>(n));
    }
  }
  if (media::RtpBody::deep_copy_count() != 0) {
    state.SkipWithError("fast path performed a body deep copy");
  }
  telemetry::Tracer::instance().reset();
}
BENCHMARK(BM_FibForwardWithSampling)->Arg(0)->Arg(100)->Arg(10000);

}  // namespace

LIVENET_BENCHMARK_MAIN();
