// Ablation of LiveNet's data-plane design choices (DESIGN.md): the
// fast/slow path split, NACK-based per-hop recovery, and the NACK scan
// interval. Each variant runs the same workload; the table shows what
// each mechanism buys.
#include "repro_common.h"

using namespace livenet;

namespace {

ScenarioResult run_variant(const ScenarioConfig& scn,
                           const SystemConfig& sys_cfg) {
  LiveNetSystem system(sys_cfg);
  ScenarioRunner runner(system, scn);
  return runner.run();
}

void show(const char* label, const ScenarioResult& r) {
  const HeadlineMetrics m = headline_metrics(r);
  std::printf("%-28s %9.0f %10.0f %8.1f %8.1f\n", label,
              m.cdn_path_delay_ms_median, m.streaming_delay_ms_median,
              m.zero_stall_percent, m.fast_startup_percent);
}

}  // namespace

int main() {
  const int days = std::max(2, repro::repro_days(3));
  repro::header("Ablation — LiveNet data-plane design choices (" +
                std::to_string(days) + " days)");

  ScenarioConfig scn = repro::scenario_for_days(days);

  std::printf("%-28s %9s %10s %8s %8s\n", "variant", "cdn(ms)",
              "stream(ms)", "0stall%", "fast%");

  {
    const SystemConfig cfg = paper_system_config();
    show("fast+slow path (LiveNet)", run_variant(scn, cfg));
  }
  {
    SystemConfig cfg = paper_system_config();
    cfg.overlay_node.fast_path_enabled = false;
    show("slow path only (ordered)", run_variant(scn, cfg));
  }
  {
    SystemConfig cfg = paper_system_config();
    cfg.overlay_node.receiver.buffer.max_nacks_per_seq = 0;  // no recovery
    cfg.overlay_node.receiver.buffer.giveup_after = 60 * kMs;
    show("no NACK recovery", run_variant(scn, cfg));
  }
  for (const Duration interval : {20 * kMs, 100 * kMs, 200 * kMs}) {
    SystemConfig cfg = paper_system_config();
    cfg.overlay_node.receiver.buffer.nack_interval = interval;
    const std::string label =
        "NACK scan " + std::to_string(interval / kMs) + " ms";
    show(label.c_str(), run_variant(scn, cfg));
  }
  {
    SystemConfig cfg = paper_system_config();
    cfg.overlay_node.sender.pacer.i_frame_gain = 1.0;  // no I-frame gain
    show("pacing gain 1.0 (no boost)", run_variant(scn, cfg));
  }

  std::printf("\nexpected shape: disabling the fast path adds per-hop\n"
              "ordering/processing delay (CDN delay rises toward Hier);\n"
              "removing NACK recovery hurts the 0-stall ratio; the 50 ms\n"
              "scan is a good latency/overhead balance; the I-frame pacing\n"
              "gain mainly protects startup and keyframe delay.\n");
  return 0;
}
