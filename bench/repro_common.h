#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "livenet/defaults.h"
#include "livenet/report.h"
#include "livenet/scenario.h"
#include "livenet/system.h"

// Shared helpers for the reproduction benchmarks (one binary per paper
// table/figure). Each binary prints the same rows/series the paper
// reports, with the paper's numbers alongside for comparison. Absolute
// values are not expected to match (the substrate is a calibrated
// simulator); shapes are.
namespace livenet::repro {

/// Number of compressed "days" to simulate; REPRO_DAYS overrides (the
/// paper's headline experiments span 20 days; the default keeps the
/// whole bench suite fast).
inline int repro_days(int fallback = 6) {
  if (const char* env = std::getenv("REPRO_DAYS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

inline ScenarioConfig scenario_for_days(int days, std::uint64_t seed = 7) {
  ScenarioConfig cfg = paper_scenario_config(seed);
  cfg.duration = days * cfg.day_length;
  return cfg;
}

inline ScenarioResult run_livenet(const ScenarioConfig& scn,
                                  std::uint64_t sys_seed = 42) {
  LiveNetSystem system(paper_system_config(sys_seed));
  ScenarioRunner runner(system, scn);
  return runner.run();
}

inline ScenarioResult run_hier(const ScenarioConfig& scn,
                               std::uint64_t sys_seed = 42) {
  HierSystem system(paper_system_config(sys_seed));
  ScenarioRunner runner(system, scn);
  return runner.run();
}

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace livenet::repro
