// Failover demonstration: what happens to a live view when the relay it
// depends on crashes, and how the system behaves under a sustained
// seeded chaos schedule (link flaps, degradations, node crashes).
//
// Part 1 drives a single broadcast/viewer pair, kills the viewer's
// upstream relay with the fault injector, and reports the measured
// recovery: time from repair to the first packet flowing again, plus
// the viewer-visible effect (path switch, frames before/after).
//
// Part 2 runs a full scenario with a random FaultPlan and prints the
// per-kind fault counts and recovery-time statistics. Re-running with
// the same seeds reproduces the exact same schedule and numbers.
#include "repro_common.h"

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "sim/fault_injector.h"

using namespace livenet;

namespace {

void run_relay_crash_demo() {
  repro::header("Failover A — relay crash under a live view");

  SystemConfig cfg;
  cfg.countries = 3;
  cfg.nodes_per_country = 4;
  cfg.dns_candidates = 1;
  cfg.last_resort_nodes = 1;
  cfg.brain.routing_interval = 6 * kSec;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.seed = 99;
  LiveNetSystem sys(cfg);

  client::ClientMetrics qoe;
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1e6;
  bc.versions = {vc};
  client::Broadcaster bcast(&sys.network(), 1, bc);
  sys.build_once();
  sys.start();
  const auto producer = sys.attach_client(&bcast, sys.geo().sample_site(0));
  bcast.start(producer, {1});
  sys.loop().run_until(8 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  const auto consumer = sys.attach_client(&viewer, sys.geo().sample_site(1));
  viewer.start_view(consumer, 1);
  sys.loop().run_until(16 * kSec);

  const auto* entry = sys.node(consumer).fib().find(1);
  if (entry == nullptr) {
    std::printf("no path established; aborting demo\n");
    return;
  }
  const auto relay = entry->upstream;
  if (relay == sim::kNoNode || relay == producer) {
    std::printf("consumer is fed directly by the producer; nothing to kill\n");
    return;
  }
  const auto frames_before = qoe.records().front().frames_displayed;

  sim::FaultInjector inj(&sys.network());
  inj.set_node_handlers([&](sim::NodeId n) { sys.crash_node(n); },
                        [&](sim::NodeId n) { sys.restart_node(n); });
  sim::FaultSpec crash;
  crash.kind = sim::FaultKind::kNodeCrash;
  crash.at = sys.loop().now();
  crash.duration = 10 * kSec;
  crash.a = relay;
  inj.inject(crash);
  std::printf("t=%6.1fs  crash relay node %llu (viewer's upstream), "
              "down for %.1fs\n",
              to_sec(crash.at), static_cast<unsigned long long>(relay),
              to_sec(crash.duration));

  sys.loop().run_until(44 * kSec);

  const auto& rec = inj.records().front();
  const auto* after = sys.node(consumer).fib().find(1);
  const auto& view = qoe.records().front();
  const auto& session = sys.sessions().sessions().front();
  std::printf("t=%6.1fs  relay restarted (state wiped, re-registered)\n",
              to_sec(rec.repaired_at));
  if (rec.recovered()) {
    std::printf("recovery: first packet on a repaired link %.1f ms after "
                "restart\n",
                to_ms(rec.recovery_time()));
  } else {
    std::printf("recovery: no traffic returned to the repaired links "
                "(rerouted around the node)\n");
  }
  std::printf("viewer:   upstream %llu -> %llu, %d path switch(es)\n",
              static_cast<unsigned long long>(relay),
              static_cast<unsigned long long>(
                  after != nullptr ? after->upstream : sim::kNoNode),
              session.path_switches);
  std::printf("          frames displayed %llu before crash, %llu at end "
              "(%llu during/after failover)\n",
              static_cast<unsigned long long>(frames_before),
              static_cast<unsigned long long>(view.frames_displayed),
              static_cast<unsigned long long>(view.frames_displayed -
                                              frames_before));
  std::printf("          stalls=%d view_failed=%s\n", view.stalls,
              view.view_failed ? "yes" : "no");
}

void run_chaos_scenario() {
  repro::header("Failover B — seeded chaos schedule over a full scenario");

  SystemConfig sys_cfg = paper_system_config(42);
  sys_cfg.countries = 3;
  sys_cfg.nodes_per_country = 4;
  ScenarioConfig scn;
  scn.duration = 2 * kMin;
  scn.day_length = 1 * kMin;
  scn.broadcasts = 4;
  scn.viewer_rate_peak = 1.5;
  scn.mean_view_time = 15 * kSec;
  scn.seed = 7;
  scn.faults.seed = 11;
  scn.faults.link_flaps_per_min = 2.0;
  scn.faults.degrades_per_min = 1.5;
  scn.faults.node_crashes_per_min = 0.5;
  scn.faults.control_outages_per_min = 0.25;

  LiveNetSystem system(sys_cfg);
  ScenarioRunner runner(system, scn);
  const ScenarioResult r = runner.run();

  const FaultSummary sum = fault_summary(r);
  std::printf("fault plan seed %llu over %.0fs:\n",
              static_cast<unsigned long long>(scn.faults.seed),
              to_sec(scn.duration));
  for (const auto& [kind, n] : sum.by_kind) {
    std::printf("  %-16s %3zu injected\n", kind.c_str(), n);
  }
  std::printf("  repaired %zu/%zu, recovered %zu "
              "(mean recovery %.1f ms, max %.1f ms)\n",
              sum.repaired, sum.injected, sum.recovered,
              sum.mean_recovery_ms, sum.max_recovery_ms);

  const HeadlineMetrics m = headline_metrics(r);
  std::printf("\nservice under chaos: %zu sessions, %zu views, "
              "median streaming delay %.0f ms, zero-stall %.1f%%\n",
              m.sessions, m.views, m.streaming_delay_ms_median,
              m.zero_stall_percent);
  std::printf("\nsame scenario seed + same fault seed reproduces this "
              "output bit-for-bit.\n");
}

}  // namespace

int main() {
  run_relay_crash_demo();
  run_chaos_scenario();
  return 0;
}
