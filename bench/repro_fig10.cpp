// Reproduces Figure 10: the Path Decision module and its impact —
// (a) path-request response time by hour, (b) local path hit ratio over
// a week, (c) hourly first-packet delay.
#include "repro_common.h"

using namespace livenet;

int main() {
  const int days = repro::repro_days(7);
  const ScenarioConfig scn = repro::scenario_for_days(days);
  const ScenarioResult r = repro::run_livenet(scn);

  repro::header("Figure 10(a) — path-request response time by hour (Brain)");
  {
    std::map<int, Samples> by_h;
    for (const auto& q : r.brain.path_requests) {
      by_h[static_cast<int>(r.hour_of(q.arrival))].add(
          to_ms(q.response_time));
    }
    std::printf("%-6s %8s %8s %8s %6s\n", "hour", "p25", "median", "p75",
                "n");
    for (auto& [h, smp] : by_h) {
      std::printf("%-6d %8.1f %8.1f %8.1f %6zu\n", h, smp.quantile(0.25),
                  smp.median(), smp.quantile(0.75), smp.count());
    }
    Samples all;
    for (const auto& q : r.brain.path_requests) {
      all.add(to_ms(q.response_time));
    }
    std::printf("overall: p25=%.1f median=%.1f ms (paper: ~5 / ~30 ms —\n"
                "their replicas serve production-scale request queues; the\n"
                "shape claim is single-digit-to-tens of ms lookups)\n",
                all.quantile(0.25), all.median());
  }

  repro::header("Figure 10(b) — local path hit ratio by hour");
  {
    std::map<int, RatioCounter> by_h;
    for (const auto& s : r.overlay.sessions()) {
      by_h[static_cast<int>(r.hour_of(s.request_time))].add(s.local_hit);
    }
    std::printf("%-6s %8s %6s\n", "hour", "hit", "n");
    for (auto& [h, rc] : by_h) {
      std::printf("%-6d %7.1f%% %6zu\n", h, rc.percent(), rc.total());
    }
    std::printf("paper shape: diurnal swing peaking ~70%% in the evening\n"
                "(8-11 pm) and dipping overnight.\n");
  }

  repro::header("Figure 10(c) — first-packet delay by hour (mean)");
  {
    std::map<int, OnlineStats> by_h;
    for (const auto& s : r.overlay.sessions()) {
      if (s.first_packet_delay() == kNever) continue;
      by_h[static_cast<int>(r.hour_of(s.request_time))].add(
          to_ms(s.first_packet_delay()));
    }
    std::printf("%-6s %10s %6s\n", "hour", "mean(ms)", "n");
    for (auto& [h, st] : by_h) {
      std::printf("%-6d %10.1f %6zu\n", h, st.mean(), st.count());
    }
    std::printf("paper shape: below ~100 ms except in the low-hit-ratio\n"
                "overnight hours; lowest in the evening when hits peak.\n");
  }
  return 0;
}
