// Reproduces Figure 11 (CDN path delay vs path length, boxplots of
// p20/p25/p50/p75/p80) and Figure 12 (intra- vs inter-national path
// delay for both systems).
#include "repro_common.h"

using namespace livenet;

namespace {

void print_box(const char* label, const BoxStats& b) {
  std::printf("%-14s p20=%6.0f p25=%6.0f p50=%6.0f p75=%6.0f p80=%6.0f "
              "(n=%zu)\n",
              label, b.p20, b.p25, b.p50, b.p75, b.p80, b.count);
}

BoxStats box_of(const std::vector<const overlay::ViewSession*>& sessions) {
  Samples s;
  for (const auto* p : sessions) {
    if (session_healthy(*p)) s.add(p->cdn_delay_ms.mean());
  }
  return boxplot(s);
}

}  // namespace

int main() {
  const int days = repro::repro_days();
  const ScenarioConfig scn = repro::scenario_for_days(days);
  const ScenarioResult ln = repro::run_livenet(scn);
  const ScenarioResult hr = repro::run_hier(scn);

  repro::header("Figure 11 — CDN path delay vs path length");
  std::size_t total = 0;
  for (const auto& s : ln.overlay.sessions()) {
    if (session_healthy(s)) ++total;
  }
  for (const auto& [len, box] : delay_by_path_length(ln)) {
    const std::string label =
        (len >= 3 ? std::string("LiveNet len>=3") :
                    "LiveNet len=" + std::to_string(len)) + " " +
        std::to_string(100 * box.count / std::max<std::size_t>(total, 1)) +
        "%";
    print_box(label.c_str(), box);
  }
  for (const auto& [len, box] : delay_by_path_length(hr)) {
    if (len == 4 || len == 3) print_box("Hier len=4", box);
  }
  std::printf("paper shape: delay grows with hop count; len=0 is purely\n"
              "processing; Hier's fixed len=4 sits far above LiveNet's\n"
              "len=2 median; overlaps exist because load-aware routing\n"
              "sometimes prefers longer detours.\n");

  repro::header("Figure 12 — intra- vs inter-national CDN path delay");
  {
    std::vector<const overlay::ViewSession*> li, le, hi, he;
    split_by_locality(ln, ln.stream_country, ln.node_country, &li, &le);
    split_by_locality(hr, hr.stream_country, hr.node_country, &hi, &he);
    print_box("LiveNet intra", box_of(li));
    print_box("LiveNet inter", box_of(le));
    print_box("Hier intra", box_of(hi));
    print_box("Hier inter", box_of(he));
    std::printf("paper medians: LiveNet <200 / 330 ms; Hier 400 / 450 ms.\n");
  }
  return 0;
}
