// Reproduces Figure 13 (average link packet loss rate over a day) and
// Figure 14 (normalized daily peak throughput across the observation
// window, including the Double-12 spike).
#include "repro_common.h"

using namespace livenet;

int main() {
  const int days = repro::repro_days(8);
  ScenarioConfig scn = repro::scenario_for_days(days);
  // A Double-12-style flash window in the second half of the window
  // (the paper's spike doubles the regular peak).
  workload::FlashWindow flash;
  flash.start = (days / 2) * scn.day_length + scn.day_length * 20 / 24;
  flash.end = flash.start + scn.day_length;  // ~28 compressed hours
  flash.multiplier = 3.0;
  scn.flash.push_back(flash);
  scn.flash_capacity_factor = 1.25;

  const ScenarioResult r = repro::run_livenet(scn);

  repro::header("Figure 13 — avg CDN link loss rate (%) by hour");
  {
    std::map<int, OnlineStats> by_h;
    for (const auto& t : r.timeline) {
      by_h[static_cast<int>(t.hour)].add(100.0 * t.measured_loss);
    }
    std::printf("%-6s %10s\n", "hour", "loss(%)");
    double peak = 0.0;
    for (auto& [h, st] : by_h) {
      std::printf("%-6d %10.4f\n", h, st.mean());
      peak = std::max(peak, st.mean());
    }
    std::printf("peak hourly loss: %.4f%% (paper: rises toward ~9 pm but\n"
                "stays under 0.175%%; <0.1%% most of the day)\n", peak);
  }

  repro::header("Figure 14 — normalized daily peak throughput");
  {
    std::vector<double> day_peak(static_cast<std::size_t>(days), 0.0);
    for (const auto& t : r.timeline) {
      if (t.day >= 0 && t.day < days) {
        day_peak[static_cast<std::size_t>(t.day)] = std::max(
            day_peak[static_cast<std::size_t>(t.day)],
            static_cast<double>(t.bytes_delta));
      }
    }
    const double max_peak =
        *std::max_element(day_peak.begin(), day_peak.end());
    std::printf("%-6s %12s\n", "day", "norm. peak");
    for (int d = 0; d < days; ++d) {
      std::printf("%-6d %12.2f\n", d + 1,
                  max_peak > 0 ? day_peak[static_cast<std::size_t>(d)] /
                                     max_peak
                               : 0.0);
    }
    std::printf("paper shape: flat regular days with a ~2x spike on the\n"
                "festival days (Dec 11-12).\n");
  }
  return 0;
}
