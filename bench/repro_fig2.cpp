// Reproduces Figure 2: CDN path delay per day for Hier and LiveNet over
// a week of operation.
#include "repro_common.h"

using namespace livenet;

namespace {

std::vector<double> daily_median_delay(const ScenarioResult& r, int days) {
  std::vector<Samples> per_day(static_cast<std::size_t>(days));
  for (const auto& s : r.overlay.sessions()) {
    if (!session_healthy(s)) continue;
    const int d = r.day_of(s.request_time);
    if (d >= 0 && d < days) {
      per_day[static_cast<std::size_t>(d)].add(s.cdn_delay_ms.mean());
    }
  }
  std::vector<double> out;
  for (auto& smp : per_day) out.push_back(smp.median());
  return out;
}

}  // namespace

int main() {
  const int days = repro::repro_days(7);
  repro::header("Figure 2 — CDN path delay per day, Hier vs LiveNet");

  const ScenarioConfig scn = repro::scenario_for_days(days);
  const auto ln = daily_median_delay(repro::run_livenet(scn), days);
  const auto hr = daily_median_delay(repro::run_hier(scn), days);

  std::printf("%-6s %12s %12s\n", "day", "LiveNet(ms)", "Hier(ms)");
  for (int d = 0; d < days; ++d) {
    std::printf("%-6d %12.0f %12.0f\n", d + 1,
                ln[static_cast<std::size_t>(d)],
                hr[static_cast<std::size_t>(d)]);
  }
  std::printf("\npaper shape: LiveNet ~150-250 ms, Hier ~400 ms, stable\n"
              "across the week with LiveNet roughly half of Hier.\n");
  return 0;
}
