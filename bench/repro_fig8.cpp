// Reproduces Figure 8: QoE comparison between LiveNet and Hier —
// (a) CDF of streaming delay, (b) % of views experiencing x stalls,
// (c) fast-startup ratio per day.
#include "repro_common.h"

using namespace livenet;

namespace {

Samples streaming_delays(const ScenarioResult& r) {
  Samples out;
  for (const auto& v : r.clients.records()) {
    if (view_healthy(v)) out.add(v.streaming_delay_ms.mean());
  }
  return out;
}

}  // namespace

int main() {
  const int days = repro::repro_days();
  const ScenarioConfig scn = repro::scenario_for_days(days);
  const ScenarioResult ln = repro::run_livenet(scn);
  const ScenarioResult hr = repro::run_hier(scn);

  repro::header("Figure 8(a) — CDF of streaming delay");
  const Samples a = streaming_delays(ln);
  const Samples b = streaming_delays(hr);
  std::printf("%-12s %10s %10s\n", "delay(ms)", "LiveNet", "Hier");
  for (double x = 250; x <= 2000; x += 250) {
    std::printf("%-12.0f %9.1f%% %9.1f%%\n", x, 100.0 * a.cdf_at(x),
                100.0 * b.cdf_at(x));
  }
  std::printf("paper shape: the LiveNet CDF sits left of Hier by >=100 ms\n"
              "for ~80%% of views and >=200 ms for ~60%% of views.\n");
  std::printf("measured shift: median %.0f ms, p25 %.0f ms, p75 %.0f ms\n",
              b.median() - a.median(), b.quantile(0.25) - a.quantile(0.25),
              b.quantile(0.75) - a.quantile(0.75));

  repro::header("Figure 8(b) — %% of views with x stalls");
  auto stall_hist = [](const ScenarioResult& r) {
    std::array<double, 6> h{};
    std::size_t n = 0;
    for (const auto& v : r.clients.records()) {
      if (!view_healthy(v)) continue;
      ++n;
      h[std::min<std::size_t>(v.stalls, 5)] += 1.0;
    }
    if (n > 0) {
      for (auto& x : h) x = 100.0 * x / static_cast<double>(n);
    }
    return h;
  };
  const auto ha = stall_hist(ln);
  const auto hb = stall_hist(hr);
  std::printf("%-10s %10s %10s\n", "stalls", "LiveNet", "Hier");
  for (std::size_t i = 1; i <= 5; ++i) {
    std::printf("%-10s %9.2f%% %9.2f%%\n",
                (i < 5 ? std::to_string(i) : ">=5").c_str(), ha[i], hb[i]);
  }
  std::printf("any stall: LiveNet %.1f%%, Hier %.1f%% (paper: 2%% vs 5%%)\n",
              100.0 - ha[0], 100.0 - hb[0]);

  repro::header("Figure 8(c) — fast-startup ratio per day");
  auto per_day_fast = [days](const ScenarioResult& r) {
    std::vector<RatioCounter> per(static_cast<std::size_t>(days));
    for (const auto& v : r.clients.records()) {
      if (!view_healthy(v)) continue;
      const int d = r.day_of(v.view_start);
      if (d >= 0 && d < days) {
        per[static_cast<std::size_t>(d)].add(v.fast_startup());
      }
    }
    return per;
  };
  const auto fa = per_day_fast(ln);
  const auto fb = per_day_fast(hr);
  std::printf("%-6s %10s %10s\n", "day", "LiveNet", "Hier");
  for (int d = 0; d < days; ++d) {
    std::printf("%-6d %9.1f%% %9.1f%%\n", d + 1,
                fa[static_cast<std::size_t>(d)].percent(),
                fb[static_cast<std::size_t>(d)].percent());
  }
  std::printf("paper shape: LiveNet consistently above Hier (avg 95%% vs "
              "92%%).\n");
  return 0;
}
