// Reproduces Figure 9: fast-startup ratio of LiveNet across streaming-
// delay buckets — the effect of GoP caches (startup stays fast even for
// views whose steady-state streaming delay is high).
#include "repro_common.h"

using namespace livenet;

int main() {
  const int days = repro::repro_days();
  repro::header("Figure 9 — fast-startup ratio vs streaming delay (LiveNet)");

  const ScenarioConfig scn = repro::scenario_for_days(days);
  const ScenarioResult r = repro::run_livenet(scn);

  struct Bucket {
    const char* label;
    double lo, hi;
    RatioCounter fast;
  };
  std::vector<Bucket> buckets = {
      {"(0, 500]", 0, 500, {}},        {"(500, 700]", 500, 700, {}},
      {"(700, 1000]", 700, 1000, {}},  {"(1000, 1500]", 1000, 1500, {}},
      {"(1500, inf]", 1500, 1e18, {}},
  };
  for (const auto& v : r.clients.records()) {
    if (!view_healthy(v)) continue;
    const double d = v.streaming_delay_ms.mean();
    for (auto& b : buckets) {
      if (d > b.lo && d <= b.hi) {
        b.fast.add(v.fast_startup());
        break;
      }
    }
  }
  std::printf("%-16s %14s %8s\n", "delay bucket(ms)", "fast-startup",
              "views");
  for (const auto& b : buckets) {
    std::printf("%-16s %13.1f%% %8zu\n", b.label, b.fast.percent(),
                b.fast.total());
  }
  std::printf("\npaper shape: ratio stays ~95%% through (1000,1500] and is\n"
              "still ~87%% beyond 1.5 s — startup is decoupled from steady-\n"
              "state delay because views start from the consumer GoP cache.\n");
  return 0;
}
