// Loss-recovery tier comparison: recovery-time CDFs for the three rungs
// of the recovery ladder under bursty loss on the viewer's upstream
// overlay link.
//
//   nack-only      — the legacy tier: holes are NACKed to the single
//                    upstream; a lost RTX waits out the holdoff
//                    (upstream RTT + margin) before the next try.
//   fec            — link-local XOR parity (K=5, full probe rate): a
//                    single loss per group is reconstructed at the
//                    receiving node with no upstream round trip.
//   multi-supplier — standby RTX-only suppliers: NACKs race to the
//                    lowest-RTT established supplier and escalate
//                    surviving holes to the next one, so retransmissions
//                    can bypass the degraded link entirely.
//
// One broadcast/viewer pair on a relay topology; a FaultInjector applies
// a fixed schedule of kLinkDegrade bursts (loss-rate override + extra
// delay) to the node->node link feeding the viewer's edge. Recovery time
// is the hole-age-at-fill histogram the receive buffers publish
// (overlay.recovery_ms), split by the tier that filled the hole.
//
// Each mode writes its CDF as CSV (committed under bench/golden/); the
// binary exits non-zero unless FEC and multi-supplier each strictly
// improve p99 recovery time over NACK-only — this is the regression gate
// bench_smoke_recovery runs under ctest.
#include "repro_common.h"

#include <cinttypes>
#include <cstring>
#include <string>
#include <vector>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "sim/fault_injector.h"
#include "telemetry/metrics.h"
#include "util/stats.h"

using namespace livenet;

namespace {

// Degrade-burst schedule: settle, then a burst every kBurstPeriod for
// the remainder of the run. Loss well above the FEC single-loss sweet
// spot on average arrival order, but bursty enough that RTX round trips
// land inside follow-on bursts.
constexpr Time kSettle = 16 * kSec;
constexpr Duration kBurstPeriod = 6 * kSec;
constexpr Duration kBurstLen = 2500 * kMs;
constexpr int kBursts = 12;
constexpr Time kEnd = kSettle + kBursts * kBurstPeriod + 8 * kSec;

struct ModeResult {
  std::string name;
  std::size_t holes = 0;       ///< recovered holes (recovery_ms count)
  double p50 = 0, p90 = 0, p99 = 0;
  std::uint64_t fec_recovered = 0;
  std::uint64_t alt_rtx = 0;
  std::uint64_t rtx_sent = 0;
  std::uint64_t parity_sent = 0;
  std::uint64_t frames = 0;
  int stalls = 0;
  Histogram hist{0.0, 1000.0, 200};
};

SystemConfig base_config() {
  // 3 countries x 4 nodes with one DNS candidate: the producer and the
  // viewer land on different nodes with a relay between them, so the
  // measured link is a real node->node overlay hop (FEC + NACK tier).
  SystemConfig cfg = paper_system_config(99);
  cfg.countries = 3;
  cfg.nodes_per_country = 4;
  cfg.dns_candidates = 1;
  cfg.last_resort_nodes = 1;
  return cfg;
}

ModeResult run_mode(const std::string& name,
                    void (*tune)(SystemConfig&)) {
  reset_telemetry();  // per-mode isolation: handles stay valid, values zero

  SystemConfig cfg = base_config();
  tune(cfg);
  LiveNetSystem sys(cfg);

  client::ClientMetrics qoe;
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1e6;
  bc.versions = {vc};
  client::Broadcaster bcast(&sys.network(), 1, bc);
  sys.build_once();
  sys.start();
  const auto producer = sys.attach_client(&bcast, sys.geo().sample_site(0));
  bcast.start(producer, {1});
  sys.loop().run_until(8 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  const auto consumer = sys.attach_client(&viewer, sys.geo().sample_site(1));
  viewer.start_view(consumer, 1);
  sys.loop().run_until(kSettle);

  const auto* entry = sys.node(consumer).fib().find(1);
  if (entry == nullptr || entry->upstream == sim::kNoNode ||
      entry->upstream == producer) {
    std::printf("unexpected topology (no relay hop); aborting\n");
    std::exit(2);
  }
  const auto upstream = entry->upstream;

  sim::FaultInjector inj(&sys.network());
  for (int i = 0; i < kBursts; ++i) {
    sim::FaultSpec burst;
    burst.kind = sim::FaultKind::kLinkDegrade;
    burst.at = kSettle + i * kBurstPeriod;
    burst.duration = kBurstLen;
    burst.a = upstream;
    burst.b = consumer;
    burst.bidirectional = true;  // RTX + NACK directions both suffer
    burst.loss = 0.25;
    burst.extra_delay = 5 * kMs;
    inj.inject(burst);
  }
  sys.loop().run_until(kEnd);

  const auto& h = telemetry::handles();
  ModeResult r;
  r.name = name;
  r.hist = h.recovery_ms->histogram();
  r.holes = r.hist.count();
  r.p50 = r.hist.quantile(0.50);
  r.p90 = r.hist.quantile(0.90);
  r.p99 = r.hist.quantile(0.99);
  r.fec_recovered = h.fec_recovered->value();
  r.alt_rtx = h.alt_supplier_rtx->value();
  r.rtx_sent = h.rtx_sent->value();
  r.parity_sent = h.fec_parity_sent->value();
  r.frames = qoe.records().front().frames_displayed;
  r.stalls = qoe.records().front().stalls;
  return r;
}

void write_cdf_csv(const ModeResult& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "recovery_ms,cdf\n");
  const double total = static_cast<double>(r.hist.count());
  std::size_t cum = r.hist.underflow();
  for (std::size_t i = 0; i < r.hist.bucket_count(); ++i) {
    cum += r.hist.bucket(i);
    // Sparse output: only buckets that move the CDF (plus the last one),
    // so the golden stays small and diffable.
    if (r.hist.bucket(i) == 0 && i + 1 != r.hist.bucket_count()) continue;
    std::fprintf(f, "%.0f,%.6f\n", r.hist.bucket_hi(i),
                 total > 0 ? static_cast<double>(cum) / total : 0.0);
  }
  if (r.hist.overflow() > 0) std::fprintf(f, "inf,1.000000\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

void tune_nack(SystemConfig&) {}

void tune_fec(SystemConfig& cfg) {
  cfg.overlay_node.fec_rate = 1.0;
  cfg.overlay_node.fec_group_packets = 5;
}

void tune_multi(SystemConfig& cfg) {
  cfg.overlay_node.multi_supplier_rtx = true;
  cfg.overlay_node.standby_suppliers = 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--csv-dir=", 10) == 0) csv_dir = argv[i] + 10;
  }

  repro::header("Loss recovery tiers — bursty degrade on the viewer's "
                "upstream link");
  std::printf("%d bursts of %.1fs at %.0f%% loss (+%.0fms delay), "
              "one every %.0fs\n\n",
              kBursts, to_sec(kBurstLen), 25.0, 5.0, to_sec(kBurstPeriod));

  const std::vector<ModeResult> results = {
      run_mode("nack-only", tune_nack),
      run_mode("fec", tune_fec),
      run_mode("multi-supplier", tune_multi),
  };

  std::printf("%-15s %7s %8s %8s %8s %8s %8s %7s %7s\n", "mode", "holes",
              "p50 ms", "p90 ms", "p99 ms", "fec_rec", "alt_rtx", "rtx",
              "frames");
  for (const auto& r : results) {
    std::printf("%-15s %7zu %8.1f %8.1f %8.1f %8" PRIu64 " %8" PRIu64
                " %7" PRIu64 " %7" PRIu64 "\n",
                r.name.c_str(), r.holes, r.p50, r.p90, r.p99,
                r.fec_recovered, r.alt_rtx, r.rtx_sent, r.frames);
  }

  if (!csv_dir.empty()) {
    for (const auto& r : results) {
      write_cdf_csv(r, csv_dir + "/recovery_cdf_" + r.name + ".csv");
    }
  }

  const auto& nack = results[0];
  const auto& fec = results[1];
  const auto& multi = results[2];
  bool ok = true;
  if (fec.parity_sent == 0 || fec.fec_recovered == 0) {
    std::printf("\nFAIL: fec mode emitted no parity / recovered nothing\n");
    ok = false;
  }
  if (multi.alt_rtx == 0) {
    std::printf("\nFAIL: multi-supplier mode never raced an alt-supplier "
                "RTX\n");
    ok = false;
  }
  if (!(fec.p99 < nack.p99)) {
    std::printf("\nFAIL: fec p99 %.1f ms !< nack-only p99 %.1f ms\n", fec.p99,
                nack.p99);
    ok = false;
  }
  if (!(multi.p99 < nack.p99)) {
    std::printf("\nFAIL: multi-supplier p99 %.1f ms !< nack-only p99 "
                "%.1f ms\n",
                multi.p99, nack.p99);
    ok = false;
  }
  if (ok) {
    std::printf("\nboth recovery tiers strictly improve p99 hole-fill time "
                "over NACK-only.\nsame seeds reproduce this output "
                "bit-for-bit.\n");
  }
  return ok ? 0 : 1;
}
