#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "livenet/defaults.h"
#include "livenet/scenario.h"
#include "livenet/system.h"
#include "media/rtp.h"
#include "repro_common.h"

// Scale benchmark for the zero-copy fast path and the allocation-free
// event-loop core: runs the full LiveNet system (mesh, brain, viewers)
// at 200 and 600 overlay nodes and reports wall-clock time, events
// dispatched, dispatch throughput, and peak RSS. The run aborts if any
// packet body was deep-copied — fan-out at scale must be trailer-only.
namespace livenet::repro {
namespace {

struct ScaleResult {
  int overlay_nodes = 0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t viewers = 0;
  long peak_rss_kb = 0;
};

long peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

ScaleResult run_at_scale(int countries, int nodes_per_country) {
  SystemConfig sys = paper_system_config(42);
  sys.countries = countries;
  sys.nodes_per_country = nodes_per_country;
  sys.geo.countries = countries;
  // At this scale the all-pairs Global Routing cycle runs with k = 1
  // (one shortest-path tree per source); k = 3 Yen spur paths over a
  // dense 600-node mesh would dominate the run and measure the control
  // plane, not the forwarding fast path this benchmark targets.
  sys.brain.routing.k = 1;

  ScenarioConfig scn;
  scn.duration = 20 * kSec;
  scn.day_length = 60 * kSec;
  scn.warmup = 2 * kSec;
  scn.broadcasts = 4;
  scn.simulcast_versions = 1;
  scn.viewer_rate_peak = 1.0;
  scn.mean_view_time = 10 * kSec;
  scn.seed = 7;

  const std::uint64_t copies_before = media::RtpBody::deep_copy_count();
  const auto t0 = std::chrono::steady_clock::now();

  ScaleResult out;
  {
    LiveNetSystem system(sys);
    ScenarioRunner runner(system, scn);
    const ScenarioResult res = runner.run();
    out.events = system.loop().dispatched();
    out.viewers = res.total_viewers;
  }
  const auto t1 = std::chrono::steady_clock::now();

  const std::uint64_t body_copies =
      media::RtpBody::deep_copy_count() - copies_before;
  if (body_copies != 0) {
    std::fprintf(stderr,
                 "FATAL: %llu packet-body deep copies at %d nodes — the "
                 "fan-out fast path must share bodies\n",
                 static_cast<unsigned long long>(body_copies),
                 countries * nodes_per_country);
    std::exit(1);
  }

  out.overlay_nodes = countries * nodes_per_country;
  out.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  out.peak_rss_kb = peak_rss_kb();
  return out;
}

void print_row(const ScaleResult& r) {
  std::printf("%8d  %10.2f  %14llu  %12.0f  %9llu  %12ld\n", r.overlay_nodes,
              r.wall_seconds, static_cast<unsigned long long>(r.events),
              static_cast<double>(r.events) / r.wall_seconds,
              static_cast<unsigned long long>(r.viewers), r.peak_rss_kb);
}

}  // namespace
}  // namespace livenet::repro

int main() {
  using namespace livenet::repro;
  header("Scale: full system, 20 s virtual, zero-copy fan-out enforced");
  std::printf("%8s  %10s  %14s  %12s  %9s  %12s\n", "nodes", "wall [s]",
              "events", "events/s", "viewers", "peakRSS[KiB]");
  // Peak RSS is process-cumulative: the 200-node row is that run's own
  // peak; the 600-node row reflects the larger topology.
  print_row(run_at_scale(20, 10));   // 200 overlay nodes
  print_row(run_at_scale(20, 30));   // 600 overlay nodes
  std::printf("\nzero body deep-copies across both runs: OK\n");
  return 0;
}
