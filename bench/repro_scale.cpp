#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "livenet/defaults.h"
#include "livenet/scenario.h"
#include "livenet/sharded_scale.h"
#include "livenet/system.h"
#include "media/rtp.h"
#include "repro_common.h"

// Scale benchmark for the zero-copy fast path and the allocation-free
// event-loop core: runs the full LiveNet system (mesh, brain, viewers)
// at 200 and 600 overlay nodes and reports wall-clock time, events
// dispatched, dispatch throughput, and peak RSS. The run aborts if any
// packet body was deep-copied — fan-out at scale must be trailer-only.
//
// Sharded mode (--shards=N / --viewers-per-leaf=K): runs the
// ShardedScaleSim million-viewer harness instead — 595 infra nodes,
// 504 consumer leaves, K modeled viewers per leaf — partitioned onto N
// parallel event loops. Here the zero-copy FATAL does *not* apply:
// cross-shard packets are deep-copied by design (the shard boundary's
// counted clone), so the gate is instead that the QoE CSV is
// byte-identical for every shard count (run_benches.sh diffs
// --shards=1 against --shards=4) and that nothing was dropped or
// misrouted.
namespace livenet::repro {
namespace {

struct ScaleResult {
  int overlay_nodes = 0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t viewers = 0;
  long peak_rss_kb = 0;
};

long peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

ScaleResult run_at_scale(int countries, int nodes_per_country) {
  SystemConfig sys = paper_system_config(42);
  sys.countries = countries;
  sys.nodes_per_country = nodes_per_country;
  sys.geo.countries = countries;
  // At this scale the all-pairs Global Routing cycle runs with k = 1
  // (one shortest-path tree per source); k = 3 Yen spur paths over a
  // dense 600-node mesh would dominate the run and measure the control
  // plane, not the forwarding fast path this benchmark targets.
  sys.brain.routing.k = 1;

  ScenarioConfig scn;
  scn.duration = 20 * kSec;
  scn.day_length = 60 * kSec;
  scn.warmup = 2 * kSec;
  scn.broadcasts = 4;
  scn.simulcast_versions = 1;
  scn.viewer_rate_peak = 1.0;
  scn.mean_view_time = 10 * kSec;
  scn.seed = 7;

  const std::uint64_t copies_before = media::RtpBody::deep_copy_count();
  const auto t0 = std::chrono::steady_clock::now();

  ScaleResult out;
  {
    LiveNetSystem system(sys);
    ScenarioRunner runner(system, scn);
    const ScenarioResult res = runner.run();
    out.events = system.loop().dispatched();
    out.viewers = res.total_viewers;
  }
  const auto t1 = std::chrono::steady_clock::now();

  const std::uint64_t body_copies =
      media::RtpBody::deep_copy_count() - copies_before;
  if (body_copies != 0) {
    std::fprintf(stderr,
                 "FATAL: %llu packet-body deep copies at %d nodes — the "
                 "fan-out fast path must share bodies\n",
                 static_cast<unsigned long long>(body_copies),
                 countries * nodes_per_country);
    std::exit(1);
  }

  out.overlay_nodes = countries * nodes_per_country;
  out.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  out.peak_rss_kb = peak_rss_kb();
  return out;
}

void print_row(const ScaleResult& r) {
  std::printf("%8d  %10.2f  %14llu  %12.0f  %9llu  %12ld\n", r.overlay_nodes,
              r.wall_seconds, static_cast<unsigned long long>(r.events),
              static_cast<double>(r.events) / r.wall_seconds,
              static_cast<unsigned long long>(r.viewers), r.peak_rss_kb);
}

/// `--key=value` integer option; returns fallback when absent.
long long arg_int(int argc, char** argv, const char* key, long long fallback) {
  const std::size_t klen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, klen) == 0 && argv[i][klen] == '=') {
      return std::atoll(argv[i] + klen + 1);
    }
  }
  return fallback;
}

const char* arg_str(int argc, char** argv, const char* key) {
  const std::size_t klen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, klen) == 0 && argv[i][klen] == '=') {
      return argv[i] + klen + 1;
    }
  }
  return nullptr;
}

int run_sharded(int argc, char** argv) {
  const auto shards =
      static_cast<std::size_t>(arg_int(argc, argv, "--shards", 1));
  const auto per_leaf = static_cast<std::uint32_t>(
      arg_int(argc, argv, "--viewers-per-leaf", 2000));
  ShardedScaleConfig cfg = scale_acceptance_config(shards, per_leaf);
  const long long dur_ms = arg_int(argc, argv, "--duration-ms", 0);
  if (dur_ms > 0) cfg.duration = dur_ms * kMs;

  header("Scale (sharded): static tree + viewer cohorts, parallel loops");
  const auto t0 = std::chrono::steady_clock::now();
  ShardedScaleSim sim(cfg);
  const ShardedScaleResult res = sim.run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("%8s  %8s  %10s  %12s  %10s  %8s  %10s  %12s\n", "shards",
              "infra", "viewers", "events", "wall [s]", "sim/wall", "xmsgs",
              "peakRSS[KiB]");
  std::printf("%8zu  %8llu  %10llu  %12llu  %10.2f  %8.2f  %10llu  %12ld\n",
              shards, static_cast<unsigned long long>(res.infra_nodes),
              static_cast<unsigned long long>(res.modeled_viewers),
              static_cast<unsigned long long>(res.events), wall,
              static_cast<double>(cfg.duration) / kSec / wall,
              static_cast<unsigned long long>(res.cross_messages),
              peak_rss_kb());
  std::printf("frames displayed (weighted): %llu   stalls: %llu   "
              "cross clones: %llu   lookahead: %lld ms\n",
              static_cast<unsigned long long>(res.frames_displayed),
              static_cast<unsigned long long>(res.stalls),
              static_cast<unsigned long long>(res.cross_clones),
              static_cast<long long>(res.lookahead / kMs));

  if (const char* path = arg_str(argc, argv, "--qoe-csv")) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", path);
      return 1;
    }
    std::fwrite(res.qoe_csv.data(), 1, res.qoe_csv.size(), f);
    std::fclose(f);
    std::printf("QoE CSV (%zu bytes) -> %s\n", res.qoe_csv.size(), path);
  }

  if (res.cross_drops != 0 || res.route_misses != 0) {
    std::fprintf(stderr,
                 "FATAL: %llu boundary drops, %llu route misses — the "
                 "partition map must cover every (src, dst) pair\n",
                 static_cast<unsigned long long>(res.cross_drops),
                 static_cast<unsigned long long>(res.route_misses));
    return 1;
  }
  if (res.frames_displayed == 0) {
    std::fprintf(stderr, "FATAL: no frames displayed — harness is dead\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace livenet::repro

int main(int argc, char** argv) {
  using namespace livenet::repro;
  if (arg_str(argc, argv, "--shards") != nullptr ||
      arg_str(argc, argv, "--viewers-per-leaf") != nullptr) {
    return run_sharded(argc, argv);
  }
  header("Scale: full system, 20 s virtual, zero-copy fan-out enforced");
  std::printf("%8s  %10s  %14s  %12s  %9s  %12s\n", "nodes", "wall [s]",
              "events", "events/s", "viewers", "peakRSS[KiB]");
  // Peak RSS is process-cumulative: the 200-node row is that run's own
  // peak; the 600-node row reflects the larger topology.
  print_row(run_at_scale(20, 10));   // 200 overlay nodes
  print_row(run_at_scale(20, 30));   // 600 overlay nodes
  std::printf("\nzero body deep-copies across both runs: OK\n");
  return 0;
}
