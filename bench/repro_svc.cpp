// SVC mask-flip vs simulcast-ladder comparison: the same degraded
// workload served two ways.
//
//   ladder — the legacy quality control: every broadcast encodes a
//            2-version simulcast ladder and a struggling viewer is
//            switched to the lower-bitrate stream (keyframe wait,
//            startup seam, full stream teardown/establish).
//   svc    — the top ladder version carries an L1T3 temporal lattice;
//            quality control becomes a per-viewer layer-mask flip.
//            Shedding the enhancement layers keeps the stream and its
//            recovery state, takes effect on the very next packet, and
//            costs zero copies on the forwarding fast path (filtered
//            packets are never forked). The lower simulcast version
//            stays as the fallback rung below the base layer.
//
// Identical seeds, topology and chaos schedule (link degradations +
// flaps riding the diurnal loss peak) in both modes, so the only
// difference is the adaptation mechanism. Reported per mode: stall
// rate (stalls per view and the zero-stall ratio) and the per-view
// delivered-bitrate CDF — SVC viewers degrade smoothly through
// sub-lattice bitrates where ladder viewers sit on two rungs.
//
// Each mode writes its delivered-bitrate CDF as CSV (committed under
// bench/golden/); the binary exits non-zero unless SVC strictly beats
// the ladder on stall rate while actually flipping masks and filtering
// layers — this is the regression gate bench_smoke_svc runs under
// ctest.
#include "repro_common.h"

#include <cinttypes>
#include <cstring>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "util/stats.h"

using namespace livenet;

namespace {

struct ModeResult {
  std::string name;
  std::size_t views = 0;          ///< views that displayed anything
  double stalls_per_view = 0.0;
  double zero_stall_percent = 0.0;
  double bitrate_p50_kbps = 0.0;
  double bitrate_p90_kbps = 0.0;
  std::uint64_t mask_flips = 0;
  std::uint64_t layer_filtered = 0;
  std::uint64_t ladder_switches = 0;
  Histogram bitrate_kbps{0.0, 2000.0, 100};
};

ScenarioConfig workload(int days) {
  ScenarioConfig scn = paper_scenario_config(7);
  scn.day_length = 30 * kSec;
  scn.duration = days * scn.day_length;
  scn.broadcasts = 6;
  scn.simulcast_versions = 2;
  scn.viewer_rate_peak = 2.0;
  scn.mean_view_time = 20 * kSec;
  // Chaos riding the diurnal loss peak: last-mile and overlay links
  // degrade hard enough that adaptation is exercised constantly.
  scn.faults.seed = 11;
  scn.faults.degrades_per_min = 3.0;
  scn.faults.link_flaps_per_min = 0.5;
  return scn;
}

ModeResult run_mode(const std::string& name, int days, bool svc) {
  reset_telemetry();  // per-mode isolation: handles stay valid, values zero

  SystemConfig cfg = paper_system_config(99);
  cfg.countries = 3;
  cfg.nodes_per_country = 4;
  // Tight last miles: the top version (~1.2 Mbps + audio + recovery
  // overhead) barely fits, so the diurnal loss peak pushes GCC below
  // the stream rate and forces quality adaptation — the mechanism under
  // comparison. With roomy access links neither mode ever adapts.
  cfg.access_bandwidth_bps = 2.2e6;
  ScenarioConfig scn = workload(days);
  if (svc) {
    if (!apply_svc_mode(scn, "L1T3")) std::exit(2);
  }
  LiveNetSystem sys(cfg);
  ScenarioRunner runner(sys, scn);
  const ScenarioResult result = runner.run();

  ModeResult r;
  r.name = name;
  std::uint64_t stalls = 0;
  std::size_t zero_stall = 0;
  for (const auto& rec : result.clients.records()) {
    if (rec.frames_displayed == 0) continue;
    ++r.views;
    stalls += rec.stalls;
    if (rec.stalls == 0) ++zero_stall;
    // Bitrate of what was actually shown: average displayed bytes per
    // frame at the capture rate. Stall time does not dilute it; shed
    // SVC layers (and ladder down-switches) do.
    const double bps = static_cast<double>(rec.bytes_displayed) * 8.0 *
                       scn.fps / static_cast<double>(rec.frames_displayed);
    r.bitrate_kbps.add(bps / 1000.0);
  }
  if (r.views > 0) {
    r.stalls_per_view =
        static_cast<double>(stalls) / static_cast<double>(r.views);
    r.zero_stall_percent =
        100.0 * static_cast<double>(zero_stall) / static_cast<double>(r.views);
  }
  r.bitrate_p50_kbps = r.bitrate_kbps.quantile(0.50);
  r.bitrate_p90_kbps = r.bitrate_kbps.quantile(0.90);
  const auto& h = telemetry::handles();
  r.mask_flips = h.svc_mask_flips->value();
  r.layer_filtered = h.layer_filtered->value();
  for (const auto& s : result.overlay.sessions()) {
    r.ladder_switches += static_cast<std::uint64_t>(s.bitrate_downgrades);
  }
  return r;
}

void write_cdf_csv(const ModeResult& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "delivered_kbps,cdf\n");
  const double total = static_cast<double>(r.bitrate_kbps.count());
  std::size_t cum = r.bitrate_kbps.underflow();
  for (std::size_t i = 0; i < r.bitrate_kbps.bucket_count(); ++i) {
    cum += r.bitrate_kbps.bucket(i);
    // Sparse output: only buckets that move the CDF (plus the last one),
    // so the golden stays small and diffable.
    if (r.bitrate_kbps.bucket(i) == 0 &&
        i + 1 != r.bitrate_kbps.bucket_count()) {
      continue;
    }
    std::fprintf(f, "%.0f,%.6f\n", r.bitrate_kbps.bucket_hi(i),
                 total > 0 ? static_cast<double>(cum) / total : 0.0);
  }
  if (r.bitrate_kbps.overflow() > 0) std::fprintf(f, "inf,1.000000\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--csv-dir=", 10) == 0) csv_dir = argv[i] + 10;
  }
  const int days = repro::repro_days(4);

  repro::header("SVC layer-mask flips vs the simulcast ladder — same "
                "chaos-degraded workload");
  std::printf("%d compressed day(s), link degradations + flaps over the "
              "diurnal loss peak\n\n", days);

  const std::vector<ModeResult> results = {
      run_mode("ladder", days, /*svc=*/false),
      run_mode("svc", days, /*svc=*/true),
  };

  std::printf("%-8s %6s %11s %11s %9s %9s %10s %9s %9s\n", "mode", "views",
              "stalls/view", "0-stall %", "p50 kbps", "p90 kbps",
              "mask_flips", "filtered", "switches");
  for (const auto& r : results) {
    std::printf("%-8s %6zu %11.2f %11.1f %9.0f %9.0f %10" PRIu64
                " %9" PRIu64 " %9" PRIu64 "\n",
                r.name.c_str(), r.views, r.stalls_per_view,
                r.zero_stall_percent, r.bitrate_p50_kbps, r.bitrate_p90_kbps,
                r.mask_flips, r.layer_filtered, r.ladder_switches);
  }

  if (!csv_dir.empty()) {
    for (const auto& r : results) {
      write_cdf_csv(r, csv_dir + "/svc_bitrate_cdf_" + r.name + ".csv");
    }
  }

  const auto& ladder = results[0];
  const auto& svc = results[1];
  bool ok = true;
  if (ladder.mask_flips != 0 || ladder.layer_filtered != 0) {
    std::printf("\nFAIL: ladder mode touched SVC machinery (flips=%" PRIu64
                ", filtered=%" PRIu64 ")\n",
                ladder.mask_flips, ladder.layer_filtered);
    ok = false;
  }
  if (svc.mask_flips == 0) {
    std::printf("\nFAIL: svc mode never flipped a layer mask\n");
    ok = false;
  }
  if (svc.layer_filtered == 0) {
    std::printf("\nFAIL: svc mode never filtered a layer on the fast "
                "path\n");
    ok = false;
  }
  if (!(svc.stalls_per_view < ladder.stalls_per_view)) {
    std::printf("\nFAIL: svc stalls/view %.3f !< ladder stalls/view %.3f\n",
                svc.stalls_per_view, ladder.stalls_per_view);
    ok = false;
  }
  if (ok) {
    std::printf("\nmask flips strictly reduce the stall rate vs ladder "
                "switching, degrading\nthrough sub-lattice bitrates instead "
                "of rungs. same seeds reproduce this\noutput bit-for-bit.\n");
  }
  return ok ? 0 : 1;
}
