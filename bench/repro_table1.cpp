// Reproduces Table 1: performance comparison of LiveNet and Hier
// (medians of CDN path delay / path length / streaming delay; 0-stall
// and fast-startup ratios), plus the paper's significance check.
#include "repro_common.h"

using namespace livenet;

int main() {
  const int days = repro::repro_days();
  repro::header("Table 1 — LiveNet vs Hier (" + std::to_string(days) +
                " compressed days)");

  const ScenarioConfig scn = repro::scenario_for_days(days);
  const ScenarioResult ln = repro::run_livenet(scn);
  const ScenarioResult hr = repro::run_hier(scn);
  const HeadlineMetrics a = headline_metrics(ln);
  const HeadlineMetrics b = headline_metrics(hr);

  auto impr = [](double better, double worse) {
    return worse != 0.0 ? 100.0 * (worse - better) / worse : 0.0;
  };

  std::printf("%-26s %10s %10s %8s | %s\n", "", "LiveNet", "Hier", "impr.%",
              "paper (LiveNet / Hier / impr.%)");
  std::printf("%-26s %10.0f %10.0f %7.1f%% | 188 / 393 / 52.2%%\n",
              "CDN path delay (ms)", a.cdn_path_delay_ms_median,
              b.cdn_path_delay_ms_median,
              impr(a.cdn_path_delay_ms_median, b.cdn_path_delay_ms_median));
  std::printf("%-26s %10.0f %10.0f %7.1f%% | 2 / 4 / 50.0%%\n",
              "CDN path length", a.cdn_path_length_median,
              b.cdn_path_length_median,
              impr(a.cdn_path_length_median, b.cdn_path_length_median));
  std::printf("%-26s %10.0f %10.0f %7.1f%% | 948 / 1151 / 17.6%%\n",
              "Streaming delay (ms)", a.streaming_delay_ms_median,
              b.streaming_delay_ms_median,
              impr(a.streaming_delay_ms_median, b.streaming_delay_ms_median));
  std::printf("%-26s %10.1f %10.1f %7.1f%% | 98 / 95 / 3.1%%\n",
              "0-stall ratio (%)", a.zero_stall_percent,
              b.zero_stall_percent,
              100.0 * (a.zero_stall_percent - b.zero_stall_percent) /
                  std::max(1.0, b.zero_stall_percent));
  std::printf("%-26s %10.1f %10.1f %7.1f%% | 95 / 92 / 3.2%%\n",
              "Fast startup ratio (%)", a.fast_startup_percent,
              b.fast_startup_percent,
              100.0 * (a.fast_startup_percent - b.fast_startup_percent) /
                  std::max(1.0, b.fast_startup_percent));
  std::printf("\nsessions: LiveNet=%zu Hier=%zu | views: %zu / %zu\n",
              a.sessions, b.sessions, a.views, b.views);

  const double t = streaming_delay_t_statistic(ln, hr);
  std::printf("Welch t (streaming delay, LiveNet - Hier): %.2f "
              "(|t| > 3.3 ~ p < 0.001; paper reports p < 0.001)\n", t);
  return 0;
}
