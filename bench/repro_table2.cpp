// Reproduces Table 2: CDN path length distribution for LiveNet — all
// sessions plus the inter-/intra-national split.
#include "repro_common.h"

using namespace livenet;

namespace {

void print_row(const char* label, const PathLengthDist& d) {
  std::printf("%-16s %7.2f%% %7.2f%% %7.2f%% %7.2f%%  (n=%zu)\n", label,
              100.0 * d.len0, 100.0 * d.len1, 100.0 * d.len2,
              100.0 * d.len3_plus, d.count);
}

}  // namespace

int main() {
  const int days = repro::repro_days();
  repro::header("Table 2 — CDN path length distribution (LiveNet, " +
                std::to_string(days) + " days)");

  const ScenarioConfig scn = repro::scenario_for_days(days);
  const ScenarioResult r = repro::run_livenet(scn);

  std::vector<const overlay::ViewSession*> all, intra, inter;
  for (const auto& s : r.overlay.sessions()) all.push_back(&s);
  split_by_locality(r, r.stream_country, r.node_country, &intra, &inter);

  std::printf("%-16s %8s %8s %8s %8s\n", "", "len=0", "len=1", "len=2",
              "len>=3");
  print_row("All", path_length_distribution(all));
  print_row("Inter-nation.", path_length_distribution(inter));
  print_row("Intra-nation.", path_length_distribution(intra));

  std::printf("\npaper:           len=0    len=1    len=2    len>=3\n");
  std::printf("  All             0.13%%    7.00%%   92.06%%    0.81%%\n");
  std::printf("  Inter-nation.   ~0%%      ~0%%     73.83%%   26.16%%\n");
  std::printf("  Intra-nation.   0.13%%    7.16%%   92.48%%    0.23%%\n");
  std::printf("\nNote: with a %d-node footprint, viewer/producer co-location\n"
              "(len=0) is far likelier than on the paper's 600+ nodes; the\n"
              "shape claims are len=2 dominance and the larger len>=3 share\n"
              "on inter-national paths.\n",
              paper_system_config().countries *
                  paper_system_config().nodes_per_country);

  // Last-resort usage (paper: ~2% of viewing sessions).
  std::size_t lr = 0;
  for (const auto& s : r.overlay.sessions()) {
    if (s.last_resort) ++lr;
  }
  std::printf("last-resort sessions: %zu / %zu (%.2f%%; paper ~2%%)\n", lr,
              r.overlay.sessions().size(),
              r.overlay.sessions().empty()
                  ? 0.0
                  : 100.0 * static_cast<double>(lr) /
                        static_cast<double>(r.overlay.sessions().size()));
  return 0;
}
