// Reproduces Table 3: LiveNet's performance through the Double 12
// festival — the day before, the two festival days (2x demand, 20%
// capacity up-scale), and the day after, with no visible degradation.
#include "repro_common.h"

using namespace livenet;

namespace {

void print_window(const ScenarioResult& r, const char* label, Time from,
                  Time to) {
  const HeadlineMetrics m = headline_metrics(r, from, to);
  std::printf("%-14s %10.0f %8.0f %10.0f %8.1f %8.1f   (%zu views)\n",
              label, m.cdn_path_delay_ms_median, m.cdn_path_length_median,
              m.streaming_delay_ms_median, m.zero_stall_percent,
              m.fast_startup_percent, m.views);
}

}  // namespace

int main() {
  const int days = std::max(4, repro::repro_days(6));
  repro::header("Table 3 — Double 12 festival case study (LiveNet)");

  ScenarioConfig scn = repro::scenario_for_days(days, 11);
  // Festival: 20:00 on day F to 23:59 on day F+1, demand x2.2, with the
  // operational up-scaling the paper describes (§6.5).
  const int fday = days / 2;
  workload::FlashWindow flash;
  flash.start = fday * scn.day_length + scn.day_length * 20 / 24;
  flash.end = (fday + 2) * scn.day_length;
  flash.multiplier = 2.2;
  scn.flash.push_back(flash);
  scn.flash_capacity_factor = 1.25;

  const ScenarioResult r = repro::run_livenet(scn);

  std::printf("%-14s %10s %8s %10s %8s %8s\n", "", "cdn(ms)", "len",
              "stream(ms)", "0stall%", "fast%");
  print_window(r, "day before", (fday - 1) * scn.day_length,
               fday * scn.day_length);
  print_window(r, "festival", fday * scn.day_length,
               (fday + 2) * scn.day_length);
  print_window(r, "day after", (fday + 2) * scn.day_length,
               (fday + 3) * scn.day_length);

  std::printf("\npaper (Dec 10 / 11-12 / 13): cdn 188/192/180, len 2/2/2,\n"
              "stream 954/988/944, 0-stall 97/97/97, fast 94/94/95 — i.e.\n"
              "no noticeable degradation under the 2x spike.\n");

  // The paper also reports ~20%% more unique overlay paths during the
  // festival (up-scaling at work).
  std::map<std::string, bool> before_paths, during_paths;
  (void)before_paths;
  (void)during_paths;
  return 0;
}
