#!/usr/bin/env bash
# Runs the microbenchmark suite and writes the JSON artefacts the PR
# workflow tracks:
#   BENCH_dataplane.json  - micro_dataplane (packet fan-out fast path)
#   BENCH_brain.json      - micro_path_decision + micro_routing merged
#   BENCH_telemetry.json  - micro_telemetry (registry + trace ring +
#                           fan-out at 0% / 1% / 100% sampling)
# All land at the repository root (override with BENCH_OUT_DIR).
#
# Usage: bench/run_benches.sh [build-dir]   (default: ./build-bench)
#
# The bench build is configured here with CMAKE_BUILD_TYPE=Release so
# the numbers are optimized-build numbers regardless of how the default
# build tree was configured. (The "library_build_type": "debug" field
# google-benchmark emits reflects how the *system libbenchmark* package
# was compiled — Debian ships it without NDEBUG — not our code.)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-bench}"
out_dir="${BENCH_OUT_DIR:-${repo_root}}"
min_time="${BENCH_MIN_TIME:-0.2}"
asan_dir="${BENCH_ASAN_DIR:-${repo_root}/build-asan}"

# ------------------------------------------------------------- verify step
# Before trusting the numbers, prove the code they measure is sound:
# an AddressSanitizer smoke of the chaos tests (node crash mid-burst /
# mid-lookup, stream release with lookups in flight) plus the batched
# data-plane smoke (bench_smoke_dataplane_batched: BM_EndToEndForward/1,
# the fused inbox-slice + pacer multi-packet drain path). A dangling
# linger/report/retry event touching freed engine state — or a fused
# slice outliving its inbox storage — dies loudly here long before it
# would skew a benchmark. Skip with BENCH_SKIP_ASAN=1.
#
# repro_recovery rides along (bench_smoke_recovery): the loss-recovery
# tier exercises FEC group state, the GoP caches of standby suppliers,
# and NACK redirection across supplier pipelines under sustained link
# degradation — exactly the churny shared-state code ASan should walk.
#
# repro_svc rides along too (bench_smoke_svc): the SVC tier drives
# per-viewer mask flips under the same chaos, walking the append-time
# layer filter, the chained prev_link_seq vouchers, sparse FEC groups,
# and the NackVoid answer path — all of it bookkeeping over shared
# per-link state that ASan should see churn.
if [[ "${BENCH_SKIP_ASAN:-0}" != "1" ]]; then
  cmake -B "${asan_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address" >&2
  cmake --build "${asan_dir}" -j \
      --target test_node_failure test_stream_context micro_dataplane \
               repro_recovery repro_svc >&2
  (cd "${asan_dir}" && ctest --output-on-failure \
      -R 'test_node_failure|test_stream_context|bench_smoke_dataplane_batched|bench_smoke_recovery|bench_smoke_svc') >&2
  echo "verify: ASan chaos + recovery-tier + SVC-tier + batched data-plane smoke passed" >&2
fi

# ThreadSanitizer smoke of the sharded runtime (-DLIVENET_SANITIZE=thread):
# the shard-sweep differential + chaos-flap tests and the boundary
# move/clone units run with real worker threads, so a data race on the
# barrier handoff, the thread-local pools, or the telemetry merge dies
# here rather than silently corrupting a benchmark. The Parallel Brain
# rides along: the routing differential suite (thread-sweep recompute
# bit-identity) and the threads=4 recompute smoke run under TSan, so a
# race on the worker fan-out, the shared SolveCtx tables, or the lazily
# materialized CSR dies here too. Then the golden gate: repro_scale
# --shards=1 vs --shards=4 at the full acceptance topology must produce
# byte-identical QoE CSVs (TSan build, so the diff also runs under the
# race detector). Skip with BENCH_SKIP_TSAN=1.
tsan_dir="${BENCH_TSAN_DIR:-${repo_root}/build-tsan}"
if [[ "${BENCH_SKIP_TSAN:-0}" != "1" ]]; then
  cmake -B "${tsan_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DLIVENET_SANITIZE=thread >&2
  cmake --build "${tsan_dir}" -j \
      --target test_sharded_sim test_viewer_cohort repro_scale \
               test_routing_differential micro_routing >&2
  (cd "${tsan_dir}" && ctest --output-on-failure \
      -R 'test_sharded_sim|test_viewer_cohort|test_routing_differential|bench_smoke_brain_parallel') >&2
  "${tsan_dir}/bench/repro_scale" --shards=1 --qoe-csv="${tsan_dir}/qoe_s1.csv" >&2
  "${tsan_dir}/bench/repro_scale" --shards=4 --qoe-csv="${tsan_dir}/qoe_s4.csv" >&2
  if ! cmp -s "${tsan_dir}/qoe_s1.csv" "${tsan_dir}/qoe_s4.csv"; then
    echo "error: shard-sweep golden diverged (--shards=1 vs --shards=4 QoE CSV)" >&2
    diff "${tsan_dir}/qoe_s1.csv" "${tsan_dir}/qoe_s4.csv" | head -20 >&2
    exit 1
  fi
  echo "verify: TSan sharded + parallel-Brain differential smoke passed; shard-sweep goldens identical" >&2
fi

cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release >&2
cmake --build "${build_dir}" -j \
    --target micro_dataplane micro_path_decision micro_routing \
             micro_telemetry >&2

for b in micro_dataplane micro_path_decision micro_routing micro_telemetry; do
  if [[ ! -x "${build_dir}/bench/${b}" ]]; then
    echo "error: ${build_dir}/bench/${b} not built (cmake --build ${build_dir})" >&2
    exit 1
  fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT

run_bench() { # name -> writes ${tmp}/$1.json
  "${build_dir}/bench/$1" \
    --benchmark_format=json \
    --benchmark_min_time="${min_time}" \
    >"${tmp}/$1.json"
  echo "ran $1" >&2
}

run_bench micro_dataplane
run_bench micro_path_decision
run_bench micro_routing
run_bench micro_telemetry

cp "${tmp}/micro_dataplane.json" "${out_dir}/BENCH_dataplane.json"
cp "${tmp}/micro_telemetry.json" "${out_dir}/BENCH_telemetry.json"

# Merge the two brain-side suites into one artefact: keep the first
# run's context, concatenate the benchmark arrays.
python3 - "${tmp}/micro_path_decision.json" "${tmp}/micro_routing.json" \
    "${out_dir}/BENCH_brain.json" <<'PY'
import json
import sys

first, second, out = sys.argv[1], sys.argv[2], sys.argv[3]
with open(first) as f:
    merged = json.load(f)
with open(second) as f:
    extra = json.load(f)
merged["benchmarks"] += extra["benchmarks"]
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
PY

echo "wrote ${out_dir}/BENCH_dataplane.json" >&2
echo "wrote ${out_dir}/BENCH_brain.json" >&2
echo "wrote ${out_dir}/BENCH_telemetry.json" >&2

# Headline summary: end-to-end forwarding throughput (packets/sec), per
# packet vs batched, straight from the artefact just written. The pps
# counter is emitted by BM_EndToEndForward itself (kIsRate), so the
# column below is a projection of BENCH_dataplane.json, not a re-run.
python3 - "${out_dir}/BENCH_dataplane.json" <<'PY' >&2
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
pps = {}
for b in doc["benchmarks"]:
    if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
        continue
    name = b["name"].split("/")
    if name[0] == "BM_EndToEndForward" and "pps" in b:
        pps[name[1].split("_")[0]] = b["pps"]
if "0" in pps and "1" in pps:
    print("BM_EndToEndForward pps: per-packet %.3g  batched %.3g  (%.2fx)"
          % (pps["0"], pps["1"], pps["1"] / pps["0"]))
PY
