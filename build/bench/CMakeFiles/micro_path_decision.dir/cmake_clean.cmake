file(REMOVE_RECURSE
  "CMakeFiles/micro_path_decision.dir/micro_path_decision.cpp.o"
  "CMakeFiles/micro_path_decision.dir/micro_path_decision.cpp.o.d"
  "micro_path_decision"
  "micro_path_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_path_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
