# Empty dependencies file for micro_path_decision.
# This may be replaced when dependencies are built.
