file(REMOVE_RECURSE
  "CMakeFiles/repro_ablation.dir/repro_ablation.cpp.o"
  "CMakeFiles/repro_ablation.dir/repro_ablation.cpp.o.d"
  "repro_ablation"
  "repro_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
