# Empty compiler generated dependencies file for repro_ablation.
# This may be replaced when dependencies are built.
