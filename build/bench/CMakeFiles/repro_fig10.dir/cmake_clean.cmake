file(REMOVE_RECURSE
  "CMakeFiles/repro_fig10.dir/repro_fig10.cpp.o"
  "CMakeFiles/repro_fig10.dir/repro_fig10.cpp.o.d"
  "repro_fig10"
  "repro_fig10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
