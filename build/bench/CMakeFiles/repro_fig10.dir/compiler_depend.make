# Empty compiler generated dependencies file for repro_fig10.
# This may be replaced when dependencies are built.
