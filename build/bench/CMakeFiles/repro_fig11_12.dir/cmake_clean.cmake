file(REMOVE_RECURSE
  "CMakeFiles/repro_fig11_12.dir/repro_fig11_12.cpp.o"
  "CMakeFiles/repro_fig11_12.dir/repro_fig11_12.cpp.o.d"
  "repro_fig11_12"
  "repro_fig11_12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig11_12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
