# Empty dependencies file for repro_fig11_12.
# This may be replaced when dependencies are built.
