file(REMOVE_RECURSE
  "CMakeFiles/repro_fig13_14.dir/repro_fig13_14.cpp.o"
  "CMakeFiles/repro_fig13_14.dir/repro_fig13_14.cpp.o.d"
  "repro_fig13_14"
  "repro_fig13_14.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig13_14.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
