# Empty compiler generated dependencies file for repro_fig13_14.
# This may be replaced when dependencies are built.
