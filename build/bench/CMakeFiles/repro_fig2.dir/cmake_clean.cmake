file(REMOVE_RECURSE
  "CMakeFiles/repro_fig2.dir/repro_fig2.cpp.o"
  "CMakeFiles/repro_fig2.dir/repro_fig2.cpp.o.d"
  "repro_fig2"
  "repro_fig2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
