# Empty dependencies file for repro_fig2.
# This may be replaced when dependencies are built.
