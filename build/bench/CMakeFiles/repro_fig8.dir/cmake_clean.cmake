file(REMOVE_RECURSE
  "CMakeFiles/repro_fig8.dir/repro_fig8.cpp.o"
  "CMakeFiles/repro_fig8.dir/repro_fig8.cpp.o.d"
  "repro_fig8"
  "repro_fig8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
