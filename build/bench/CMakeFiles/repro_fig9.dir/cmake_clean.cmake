file(REMOVE_RECURSE
  "CMakeFiles/repro_fig9.dir/repro_fig9.cpp.o"
  "CMakeFiles/repro_fig9.dir/repro_fig9.cpp.o.d"
  "repro_fig9"
  "repro_fig9.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
