# Empty dependencies file for repro_fig9.
# This may be replaced when dependencies are built.
