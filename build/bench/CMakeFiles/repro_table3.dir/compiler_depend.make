# Empty compiler generated dependencies file for repro_table3.
# This may be replaced when dependencies are built.
