file(REMOVE_RECURSE
  "CMakeFiles/co_streaming.dir/co_streaming.cpp.o"
  "CMakeFiles/co_streaming.dir/co_streaming.cpp.o.d"
  "co_streaming"
  "co_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/co_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
