# Empty dependencies file for co_streaming.
# This may be replaced when dependencies are built.
