file(REMOVE_RECURSE
  "CMakeFiles/flash_sale.dir/flash_sale.cpp.o"
  "CMakeFiles/flash_sale.dir/flash_sale.cpp.o.d"
  "flash_sale"
  "flash_sale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_sale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
