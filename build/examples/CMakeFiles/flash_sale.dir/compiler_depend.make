# Empty compiler generated dependencies file for flash_sale.
# This may be replaced when dependencies are built.
