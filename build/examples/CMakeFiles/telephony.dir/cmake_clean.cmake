file(REMOVE_RECURSE
  "CMakeFiles/telephony.dir/telephony.cpp.o"
  "CMakeFiles/telephony.dir/telephony.cpp.o.d"
  "telephony"
  "telephony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telephony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
