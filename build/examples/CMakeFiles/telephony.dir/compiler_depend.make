# Empty compiler generated dependencies file for telephony.
# This may be replaced when dependencies are built.
