
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/brain/brain.cpp" "src/brain/CMakeFiles/livenet_brain.dir/brain.cpp.o" "gcc" "src/brain/CMakeFiles/livenet_brain.dir/brain.cpp.o.d"
  "/root/repo/src/brain/global_discovery.cpp" "src/brain/CMakeFiles/livenet_brain.dir/global_discovery.cpp.o" "gcc" "src/brain/CMakeFiles/livenet_brain.dir/global_discovery.cpp.o.d"
  "/root/repo/src/brain/global_routing.cpp" "src/brain/CMakeFiles/livenet_brain.dir/global_routing.cpp.o" "gcc" "src/brain/CMakeFiles/livenet_brain.dir/global_routing.cpp.o.d"
  "/root/repo/src/brain/ksp.cpp" "src/brain/CMakeFiles/livenet_brain.dir/ksp.cpp.o" "gcc" "src/brain/CMakeFiles/livenet_brain.dir/ksp.cpp.o.d"
  "/root/repo/src/brain/path_decision.cpp" "src/brain/CMakeFiles/livenet_brain.dir/path_decision.cpp.o" "gcc" "src/brain/CMakeFiles/livenet_brain.dir/path_decision.cpp.o.d"
  "/root/repo/src/brain/pib.cpp" "src/brain/CMakeFiles/livenet_brain.dir/pib.cpp.o" "gcc" "src/brain/CMakeFiles/livenet_brain.dir/pib.cpp.o.d"
  "/root/repo/src/brain/replica.cpp" "src/brain/CMakeFiles/livenet_brain.dir/replica.cpp.o" "gcc" "src/brain/CMakeFiles/livenet_brain.dir/replica.cpp.o.d"
  "/root/repo/src/brain/routing_graph.cpp" "src/brain/CMakeFiles/livenet_brain.dir/routing_graph.cpp.o" "gcc" "src/brain/CMakeFiles/livenet_brain.dir/routing_graph.cpp.o.d"
  "/root/repo/src/brain/stream_mgmt.cpp" "src/brain/CMakeFiles/livenet_brain.dir/stream_mgmt.cpp.o" "gcc" "src/brain/CMakeFiles/livenet_brain.dir/stream_mgmt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/livenet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/livenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/livenet_media.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/livenet_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/livenet_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
