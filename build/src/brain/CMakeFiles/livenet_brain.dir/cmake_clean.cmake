file(REMOVE_RECURSE
  "CMakeFiles/livenet_brain.dir/brain.cpp.o"
  "CMakeFiles/livenet_brain.dir/brain.cpp.o.d"
  "CMakeFiles/livenet_brain.dir/global_discovery.cpp.o"
  "CMakeFiles/livenet_brain.dir/global_discovery.cpp.o.d"
  "CMakeFiles/livenet_brain.dir/global_routing.cpp.o"
  "CMakeFiles/livenet_brain.dir/global_routing.cpp.o.d"
  "CMakeFiles/livenet_brain.dir/ksp.cpp.o"
  "CMakeFiles/livenet_brain.dir/ksp.cpp.o.d"
  "CMakeFiles/livenet_brain.dir/path_decision.cpp.o"
  "CMakeFiles/livenet_brain.dir/path_decision.cpp.o.d"
  "CMakeFiles/livenet_brain.dir/pib.cpp.o"
  "CMakeFiles/livenet_brain.dir/pib.cpp.o.d"
  "CMakeFiles/livenet_brain.dir/replica.cpp.o"
  "CMakeFiles/livenet_brain.dir/replica.cpp.o.d"
  "CMakeFiles/livenet_brain.dir/routing_graph.cpp.o"
  "CMakeFiles/livenet_brain.dir/routing_graph.cpp.o.d"
  "CMakeFiles/livenet_brain.dir/stream_mgmt.cpp.o"
  "CMakeFiles/livenet_brain.dir/stream_mgmt.cpp.o.d"
  "liblivenet_brain.a"
  "liblivenet_brain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livenet_brain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
