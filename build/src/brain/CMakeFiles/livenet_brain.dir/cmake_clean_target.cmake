file(REMOVE_RECURSE
  "liblivenet_brain.a"
)
