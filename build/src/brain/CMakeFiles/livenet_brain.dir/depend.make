# Empty dependencies file for livenet_brain.
# This may be replaced when dependencies are built.
