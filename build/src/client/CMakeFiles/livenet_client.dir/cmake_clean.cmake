file(REMOVE_RECURSE
  "CMakeFiles/livenet_client.dir/broadcaster.cpp.o"
  "CMakeFiles/livenet_client.dir/broadcaster.cpp.o.d"
  "CMakeFiles/livenet_client.dir/viewer.cpp.o"
  "CMakeFiles/livenet_client.dir/viewer.cpp.o.d"
  "liblivenet_client.a"
  "liblivenet_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livenet_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
