file(REMOVE_RECURSE
  "liblivenet_client.a"
)
