# Empty compiler generated dependencies file for livenet_client.
# This may be replaced when dependencies are built.
