
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hier/hier_control.cpp" "src/hier/CMakeFiles/livenet_hier.dir/hier_control.cpp.o" "gcc" "src/hier/CMakeFiles/livenet_hier.dir/hier_control.cpp.o.d"
  "/root/repo/src/hier/hier_node.cpp" "src/hier/CMakeFiles/livenet_hier.dir/hier_node.cpp.o" "gcc" "src/hier/CMakeFiles/livenet_hier.dir/hier_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/livenet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/livenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/livenet_media.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/livenet_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/livenet_overlay.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
