file(REMOVE_RECURSE
  "CMakeFiles/livenet_hier.dir/hier_control.cpp.o"
  "CMakeFiles/livenet_hier.dir/hier_control.cpp.o.d"
  "CMakeFiles/livenet_hier.dir/hier_node.cpp.o"
  "CMakeFiles/livenet_hier.dir/hier_node.cpp.o.d"
  "liblivenet_hier.a"
  "liblivenet_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livenet_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
