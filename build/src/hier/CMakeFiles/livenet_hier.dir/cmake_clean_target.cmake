file(REMOVE_RECURSE
  "liblivenet_hier.a"
)
