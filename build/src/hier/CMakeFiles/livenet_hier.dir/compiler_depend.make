# Empty compiler generated dependencies file for livenet_hier.
# This may be replaced when dependencies are built.
