
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/livenet/csv.cpp" "src/livenet/CMakeFiles/livenet_system.dir/csv.cpp.o" "gcc" "src/livenet/CMakeFiles/livenet_system.dir/csv.cpp.o.d"
  "/root/repo/src/livenet/report.cpp" "src/livenet/CMakeFiles/livenet_system.dir/report.cpp.o" "gcc" "src/livenet/CMakeFiles/livenet_system.dir/report.cpp.o.d"
  "/root/repo/src/livenet/scenario.cpp" "src/livenet/CMakeFiles/livenet_system.dir/scenario.cpp.o" "gcc" "src/livenet/CMakeFiles/livenet_system.dir/scenario.cpp.o.d"
  "/root/repo/src/livenet/system.cpp" "src/livenet/CMakeFiles/livenet_system.dir/system.cpp.o" "gcc" "src/livenet/CMakeFiles/livenet_system.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/livenet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/livenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/livenet_media.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/livenet_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/livenet_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/brain/CMakeFiles/livenet_brain.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/livenet_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/livenet_client.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/livenet_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
