file(REMOVE_RECURSE
  "CMakeFiles/livenet_system.dir/csv.cpp.o"
  "CMakeFiles/livenet_system.dir/csv.cpp.o.d"
  "CMakeFiles/livenet_system.dir/report.cpp.o"
  "CMakeFiles/livenet_system.dir/report.cpp.o.d"
  "CMakeFiles/livenet_system.dir/scenario.cpp.o"
  "CMakeFiles/livenet_system.dir/scenario.cpp.o.d"
  "CMakeFiles/livenet_system.dir/system.cpp.o"
  "CMakeFiles/livenet_system.dir/system.cpp.o.d"
  "liblivenet_system.a"
  "liblivenet_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livenet_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
