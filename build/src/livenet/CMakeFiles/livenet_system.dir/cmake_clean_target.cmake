file(REMOVE_RECURSE
  "liblivenet_system.a"
)
