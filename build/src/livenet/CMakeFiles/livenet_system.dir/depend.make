# Empty dependencies file for livenet_system.
# This may be replaced when dependencies are built.
