
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/frame.cpp" "src/media/CMakeFiles/livenet_media.dir/frame.cpp.o" "gcc" "src/media/CMakeFiles/livenet_media.dir/frame.cpp.o.d"
  "/root/repo/src/media/framer.cpp" "src/media/CMakeFiles/livenet_media.dir/framer.cpp.o" "gcc" "src/media/CMakeFiles/livenet_media.dir/framer.cpp.o.d"
  "/root/repo/src/media/gop_cache.cpp" "src/media/CMakeFiles/livenet_media.dir/gop_cache.cpp.o" "gcc" "src/media/CMakeFiles/livenet_media.dir/gop_cache.cpp.o.d"
  "/root/repo/src/media/jitter_framer.cpp" "src/media/CMakeFiles/livenet_media.dir/jitter_framer.cpp.o" "gcc" "src/media/CMakeFiles/livenet_media.dir/jitter_framer.cpp.o.d"
  "/root/repo/src/media/packetizer.cpp" "src/media/CMakeFiles/livenet_media.dir/packetizer.cpp.o" "gcc" "src/media/CMakeFiles/livenet_media.dir/packetizer.cpp.o.d"
  "/root/repo/src/media/rtp.cpp" "src/media/CMakeFiles/livenet_media.dir/rtp.cpp.o" "gcc" "src/media/CMakeFiles/livenet_media.dir/rtp.cpp.o.d"
  "/root/repo/src/media/video_source.cpp" "src/media/CMakeFiles/livenet_media.dir/video_source.cpp.o" "gcc" "src/media/CMakeFiles/livenet_media.dir/video_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/livenet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/livenet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
