file(REMOVE_RECURSE
  "CMakeFiles/livenet_media.dir/frame.cpp.o"
  "CMakeFiles/livenet_media.dir/frame.cpp.o.d"
  "CMakeFiles/livenet_media.dir/framer.cpp.o"
  "CMakeFiles/livenet_media.dir/framer.cpp.o.d"
  "CMakeFiles/livenet_media.dir/gop_cache.cpp.o"
  "CMakeFiles/livenet_media.dir/gop_cache.cpp.o.d"
  "CMakeFiles/livenet_media.dir/jitter_framer.cpp.o"
  "CMakeFiles/livenet_media.dir/jitter_framer.cpp.o.d"
  "CMakeFiles/livenet_media.dir/packetizer.cpp.o"
  "CMakeFiles/livenet_media.dir/packetizer.cpp.o.d"
  "CMakeFiles/livenet_media.dir/rtp.cpp.o"
  "CMakeFiles/livenet_media.dir/rtp.cpp.o.d"
  "CMakeFiles/livenet_media.dir/video_source.cpp.o"
  "CMakeFiles/livenet_media.dir/video_source.cpp.o.d"
  "liblivenet_media.a"
  "liblivenet_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livenet_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
