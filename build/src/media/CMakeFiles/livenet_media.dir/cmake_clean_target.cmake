file(REMOVE_RECURSE
  "liblivenet_media.a"
)
