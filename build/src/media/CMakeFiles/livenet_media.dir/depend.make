# Empty dependencies file for livenet_media.
# This may be replaced when dependencies are built.
