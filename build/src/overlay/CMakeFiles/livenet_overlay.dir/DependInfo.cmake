
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/frame_dropper.cpp" "src/overlay/CMakeFiles/livenet_overlay.dir/frame_dropper.cpp.o" "gcc" "src/overlay/CMakeFiles/livenet_overlay.dir/frame_dropper.cpp.o.d"
  "/root/repo/src/overlay/link_receiver.cpp" "src/overlay/CMakeFiles/livenet_overlay.dir/link_receiver.cpp.o" "gcc" "src/overlay/CMakeFiles/livenet_overlay.dir/link_receiver.cpp.o.d"
  "/root/repo/src/overlay/link_sender.cpp" "src/overlay/CMakeFiles/livenet_overlay.dir/link_sender.cpp.o" "gcc" "src/overlay/CMakeFiles/livenet_overlay.dir/link_sender.cpp.o.d"
  "/root/repo/src/overlay/messages.cpp" "src/overlay/CMakeFiles/livenet_overlay.dir/messages.cpp.o" "gcc" "src/overlay/CMakeFiles/livenet_overlay.dir/messages.cpp.o.d"
  "/root/repo/src/overlay/overlay_node.cpp" "src/overlay/CMakeFiles/livenet_overlay.dir/overlay_node.cpp.o" "gcc" "src/overlay/CMakeFiles/livenet_overlay.dir/overlay_node.cpp.o.d"
  "/root/repo/src/overlay/packet_cache.cpp" "src/overlay/CMakeFiles/livenet_overlay.dir/packet_cache.cpp.o" "gcc" "src/overlay/CMakeFiles/livenet_overlay.dir/packet_cache.cpp.o.d"
  "/root/repo/src/overlay/path.cpp" "src/overlay/CMakeFiles/livenet_overlay.dir/path.cpp.o" "gcc" "src/overlay/CMakeFiles/livenet_overlay.dir/path.cpp.o.d"
  "/root/repo/src/overlay/stream_fib.cpp" "src/overlay/CMakeFiles/livenet_overlay.dir/stream_fib.cpp.o" "gcc" "src/overlay/CMakeFiles/livenet_overlay.dir/stream_fib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/livenet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/livenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/livenet_media.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/livenet_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
