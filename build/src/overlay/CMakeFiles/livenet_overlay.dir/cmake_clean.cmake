file(REMOVE_RECURSE
  "CMakeFiles/livenet_overlay.dir/frame_dropper.cpp.o"
  "CMakeFiles/livenet_overlay.dir/frame_dropper.cpp.o.d"
  "CMakeFiles/livenet_overlay.dir/link_receiver.cpp.o"
  "CMakeFiles/livenet_overlay.dir/link_receiver.cpp.o.d"
  "CMakeFiles/livenet_overlay.dir/link_sender.cpp.o"
  "CMakeFiles/livenet_overlay.dir/link_sender.cpp.o.d"
  "CMakeFiles/livenet_overlay.dir/messages.cpp.o"
  "CMakeFiles/livenet_overlay.dir/messages.cpp.o.d"
  "CMakeFiles/livenet_overlay.dir/overlay_node.cpp.o"
  "CMakeFiles/livenet_overlay.dir/overlay_node.cpp.o.d"
  "CMakeFiles/livenet_overlay.dir/packet_cache.cpp.o"
  "CMakeFiles/livenet_overlay.dir/packet_cache.cpp.o.d"
  "CMakeFiles/livenet_overlay.dir/path.cpp.o"
  "CMakeFiles/livenet_overlay.dir/path.cpp.o.d"
  "CMakeFiles/livenet_overlay.dir/stream_fib.cpp.o"
  "CMakeFiles/livenet_overlay.dir/stream_fib.cpp.o.d"
  "liblivenet_overlay.a"
  "liblivenet_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livenet_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
