file(REMOVE_RECURSE
  "liblivenet_overlay.a"
)
