# Empty compiler generated dependencies file for livenet_overlay.
# This may be replaced when dependencies are built.
