file(REMOVE_RECURSE
  "CMakeFiles/livenet_sim.dir/event_loop.cpp.o"
  "CMakeFiles/livenet_sim.dir/event_loop.cpp.o.d"
  "CMakeFiles/livenet_sim.dir/link.cpp.o"
  "CMakeFiles/livenet_sim.dir/link.cpp.o.d"
  "CMakeFiles/livenet_sim.dir/network.cpp.o"
  "CMakeFiles/livenet_sim.dir/network.cpp.o.d"
  "liblivenet_sim.a"
  "liblivenet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livenet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
