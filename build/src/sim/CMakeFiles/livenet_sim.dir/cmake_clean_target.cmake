file(REMOVE_RECURSE
  "liblivenet_sim.a"
)
