# Empty dependencies file for livenet_sim.
# This may be replaced when dependencies are built.
