
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/gcc.cpp" "src/transport/CMakeFiles/livenet_transport.dir/gcc.cpp.o" "gcc" "src/transport/CMakeFiles/livenet_transport.dir/gcc.cpp.o.d"
  "/root/repo/src/transport/pacer.cpp" "src/transport/CMakeFiles/livenet_transport.dir/pacer.cpp.o" "gcc" "src/transport/CMakeFiles/livenet_transport.dir/pacer.cpp.o.d"
  "/root/repo/src/transport/receive_buffer.cpp" "src/transport/CMakeFiles/livenet_transport.dir/receive_buffer.cpp.o" "gcc" "src/transport/CMakeFiles/livenet_transport.dir/receive_buffer.cpp.o.d"
  "/root/repo/src/transport/send_history.cpp" "src/transport/CMakeFiles/livenet_transport.dir/send_history.cpp.o" "gcc" "src/transport/CMakeFiles/livenet_transport.dir/send_history.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/livenet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/livenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/livenet_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
