file(REMOVE_RECURSE
  "CMakeFiles/livenet_transport.dir/gcc.cpp.o"
  "CMakeFiles/livenet_transport.dir/gcc.cpp.o.d"
  "CMakeFiles/livenet_transport.dir/pacer.cpp.o"
  "CMakeFiles/livenet_transport.dir/pacer.cpp.o.d"
  "CMakeFiles/livenet_transport.dir/receive_buffer.cpp.o"
  "CMakeFiles/livenet_transport.dir/receive_buffer.cpp.o.d"
  "CMakeFiles/livenet_transport.dir/send_history.cpp.o"
  "CMakeFiles/livenet_transport.dir/send_history.cpp.o.d"
  "liblivenet_transport.a"
  "liblivenet_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livenet_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
