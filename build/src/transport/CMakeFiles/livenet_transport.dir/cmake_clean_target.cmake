file(REMOVE_RECURSE
  "liblivenet_transport.a"
)
