# Empty compiler generated dependencies file for livenet_transport.
# This may be replaced when dependencies are built.
