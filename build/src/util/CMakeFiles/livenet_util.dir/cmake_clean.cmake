file(REMOVE_RECURSE
  "CMakeFiles/livenet_util.dir/logging.cpp.o"
  "CMakeFiles/livenet_util.dir/logging.cpp.o.d"
  "CMakeFiles/livenet_util.dir/rng.cpp.o"
  "CMakeFiles/livenet_util.dir/rng.cpp.o.d"
  "CMakeFiles/livenet_util.dir/stats.cpp.o"
  "CMakeFiles/livenet_util.dir/stats.cpp.o.d"
  "liblivenet_util.a"
  "liblivenet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livenet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
