file(REMOVE_RECURSE
  "liblivenet_util.a"
)
