# Empty dependencies file for livenet_util.
# This may be replaced when dependencies are built.
