file(REMOVE_RECURSE
  "CMakeFiles/livenet_workload.dir/geo.cpp.o"
  "CMakeFiles/livenet_workload.dir/geo.cpp.o.d"
  "CMakeFiles/livenet_workload.dir/patterns.cpp.o"
  "CMakeFiles/livenet_workload.dir/patterns.cpp.o.d"
  "liblivenet_workload.a"
  "liblivenet_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livenet_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
