file(REMOVE_RECURSE
  "liblivenet_workload.a"
)
