# Empty compiler generated dependencies file for livenet_workload.
# This may be replaced when dependencies are built.
