file(REMOVE_RECURSE
  "CMakeFiles/test_brain_units.dir/test_brain_units.cpp.o"
  "CMakeFiles/test_brain_units.dir/test_brain_units.cpp.o.d"
  "test_brain_units"
  "test_brain_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_brain_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
