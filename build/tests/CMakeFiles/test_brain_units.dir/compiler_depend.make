# Empty compiler generated dependencies file for test_brain_units.
# This may be replaced when dependencies are built.
