file(REMOVE_RECURSE
  "CMakeFiles/test_csv_determinism.dir/test_csv_determinism.cpp.o"
  "CMakeFiles/test_csv_determinism.dir/test_csv_determinism.cpp.o.d"
  "test_csv_determinism"
  "test_csv_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csv_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
