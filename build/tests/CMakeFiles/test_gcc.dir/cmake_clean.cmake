file(REMOVE_RECURSE
  "CMakeFiles/test_gcc.dir/test_gcc.cpp.o"
  "CMakeFiles/test_gcc.dir/test_gcc.cpp.o.d"
  "test_gcc"
  "test_gcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
