# Empty dependencies file for test_gcc.
# This may be replaced when dependencies are built.
