file(REMOVE_RECURSE
  "CMakeFiles/test_integration_hier.dir/test_integration_hier.cpp.o"
  "CMakeFiles/test_integration_hier.dir/test_integration_hier.cpp.o.d"
  "test_integration_hier"
  "test_integration_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
