# Empty compiler generated dependencies file for test_integration_hier.
# This may be replaced when dependencies are built.
