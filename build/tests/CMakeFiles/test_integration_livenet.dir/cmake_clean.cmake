file(REMOVE_RECURSE
  "CMakeFiles/test_integration_livenet.dir/test_integration_livenet.cpp.o"
  "CMakeFiles/test_integration_livenet.dir/test_integration_livenet.cpp.o.d"
  "test_integration_livenet"
  "test_integration_livenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_livenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
