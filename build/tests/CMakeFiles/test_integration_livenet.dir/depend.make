# Empty dependencies file for test_integration_livenet.
# This may be replaced when dependencies are built.
