file(REMOVE_RECURSE
  "CMakeFiles/test_jitter_framer.dir/test_jitter_framer.cpp.o"
  "CMakeFiles/test_jitter_framer.dir/test_jitter_framer.cpp.o.d"
  "test_jitter_framer"
  "test_jitter_framer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jitter_framer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
