# Empty compiler generated dependencies file for test_jitter_framer.
# This may be replaced when dependencies are built.
