file(REMOVE_RECURSE
  "CMakeFiles/test_link_network.dir/test_link_network.cpp.o"
  "CMakeFiles/test_link_network.dir/test_link_network.cpp.o.d"
  "test_link_network"
  "test_link_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
