file(REMOVE_RECURSE
  "CMakeFiles/test_media.dir/test_media.cpp.o"
  "CMakeFiles/test_media.dir/test_media.cpp.o.d"
  "test_media"
  "test_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
