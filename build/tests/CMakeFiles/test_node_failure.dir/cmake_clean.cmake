file(REMOVE_RECURSE
  "CMakeFiles/test_node_failure.dir/test_node_failure.cpp.o"
  "CMakeFiles/test_node_failure.dir/test_node_failure.cpp.o.d"
  "test_node_failure"
  "test_node_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
