file(REMOVE_RECURSE
  "CMakeFiles/test_overlay_units.dir/test_overlay_units.cpp.o"
  "CMakeFiles/test_overlay_units.dir/test_overlay_units.cpp.o.d"
  "test_overlay_units"
  "test_overlay_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
