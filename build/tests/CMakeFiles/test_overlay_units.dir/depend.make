# Empty dependencies file for test_overlay_units.
# This may be replaced when dependencies are built.
