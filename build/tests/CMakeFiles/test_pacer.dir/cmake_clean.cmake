file(REMOVE_RECURSE
  "CMakeFiles/test_pacer.dir/test_pacer.cpp.o"
  "CMakeFiles/test_pacer.dir/test_pacer.cpp.o.d"
  "test_pacer"
  "test_pacer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pacer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
