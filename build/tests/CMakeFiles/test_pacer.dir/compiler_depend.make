# Empty compiler generated dependencies file for test_pacer.
# This may be replaced when dependencies are built.
