file(REMOVE_RECURSE
  "CMakeFiles/test_paper_scenarios.dir/test_paper_scenarios.cpp.o"
  "CMakeFiles/test_paper_scenarios.dir/test_paper_scenarios.cpp.o.d"
  "test_paper_scenarios"
  "test_paper_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
