file(REMOVE_RECURSE
  "CMakeFiles/test_property_routing.dir/test_property_routing.cpp.o"
  "CMakeFiles/test_property_routing.dir/test_property_routing.cpp.o.d"
  "test_property_routing"
  "test_property_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
