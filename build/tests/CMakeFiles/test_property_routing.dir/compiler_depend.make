# Empty compiler generated dependencies file for test_property_routing.
# This may be replaced when dependencies are built.
