file(REMOVE_RECURSE
  "CMakeFiles/test_property_transport.dir/test_property_transport.cpp.o"
  "CMakeFiles/test_property_transport.dir/test_property_transport.cpp.o.d"
  "test_property_transport"
  "test_property_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
