# Empty dependencies file for test_property_transport.
# This may be replaced when dependencies are built.
