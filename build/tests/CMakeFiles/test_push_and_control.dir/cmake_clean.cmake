file(REMOVE_RECURSE
  "CMakeFiles/test_push_and_control.dir/test_push_and_control.cpp.o"
  "CMakeFiles/test_push_and_control.dir/test_push_and_control.cpp.o.d"
  "test_push_and_control"
  "test_push_and_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_push_and_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
