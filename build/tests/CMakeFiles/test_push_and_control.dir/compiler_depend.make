# Empty compiler generated dependencies file for test_push_and_control.
# This may be replaced when dependencies are built.
