file(REMOVE_RECURSE
  "CMakeFiles/test_receive_buffer.dir/test_receive_buffer.cpp.o"
  "CMakeFiles/test_receive_buffer.dir/test_receive_buffer.cpp.o.d"
  "test_receive_buffer"
  "test_receive_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_receive_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
