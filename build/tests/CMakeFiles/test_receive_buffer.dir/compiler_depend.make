# Empty compiler generated dependencies file for test_receive_buffer.
# This may be replaced when dependencies are built.
