
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_stream_control.cpp" "tests/CMakeFiles/test_stream_control.dir/test_stream_control.cpp.o" "gcc" "tests/CMakeFiles/test_stream_control.dir/test_stream_control.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/livenet/CMakeFiles/livenet_system.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/livenet_client.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/livenet_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/brain/CMakeFiles/livenet_brain.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/livenet_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/livenet_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/livenet_media.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/livenet_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/livenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/livenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
