file(REMOVE_RECURSE
  "CMakeFiles/test_stream_control.dir/test_stream_control.cpp.o"
  "CMakeFiles/test_stream_control.dir/test_stream_control.cpp.o.d"
  "test_stream_control"
  "test_stream_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
