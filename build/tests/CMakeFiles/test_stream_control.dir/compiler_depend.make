# Empty compiler generated dependencies file for test_stream_control.
# This may be replaced when dependencies are built.
