file(REMOVE_RECURSE
  "CMakeFiles/test_system_build.dir/test_system_build.cpp.o"
  "CMakeFiles/test_system_build.dir/test_system_build.cpp.o.d"
  "test_system_build"
  "test_system_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
