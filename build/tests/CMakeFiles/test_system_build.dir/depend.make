# Empty dependencies file for test_system_build.
# This may be replaced when dependencies are built.
