file(REMOVE_RECURSE
  "CMakeFiles/livenet_run.dir/livenet_run.cpp.o"
  "CMakeFiles/livenet_run.dir/livenet_run.cpp.o.d"
  "livenet_run"
  "livenet_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livenet_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
