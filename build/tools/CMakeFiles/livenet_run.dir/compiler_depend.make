# Empty compiler generated dependencies file for livenet_run.
# This may be replaced when dependencies are built.
