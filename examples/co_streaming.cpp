// Co-streaming: two broadcasters start a joint stream; the consumer
// nodes resubscribe every viewer to the new stream on their behalf and
// flip them seamlessly once a complete GoP is cached (§5.2, "Seamless
// Stream Switching"). Viewers keep playing without resubscribing.
//
//   ./build/examples/co_streaming
#include <cstdio>
#include <memory>
#include <vector>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "livenet/defaults.h"

using namespace livenet;

int main() {
  SystemConfig cfg = paper_system_config();
  cfg.countries = 3;
  cfg.nodes_per_country = 3;
  cfg.brain.routing_interval = 10 * kSec;
  cfg.overlay_node.report_interval = 3 * kSec;
  LiveNetSystem system(cfg);
  system.build_once();
  system.start();

  // Solo broadcast (stream 10).
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.bitrate_bps = 1.0e6;
  vc.gop_frames = 25;  // 1-second GoPs: quick co-stream flips
  bc.versions = {vc};
  client::Broadcaster solo(&system.network(), 1, bc);
  const auto bsite = system.geo().sample_site(0);
  const auto producer = system.attach_client(&solo, bsite);
  solo.start(producer, {10});
  system.loop().run_until(12 * kSec);

  // Viewers across the footprint.
  client::ClientMetrics qoe;
  std::vector<std::unique_ptr<client::Viewer>> viewers;
  std::vector<sim::NodeId> consumers;
  for (int i = 0; i < 6; ++i) {
    auto v = std::make_unique<client::Viewer>(&system.network(), &qoe);
    const auto site = system.geo().sample_site(i % 3);
    consumers.push_back(system.attach_client(v.get(), site));
    v->start_view(consumers.back(), 10);
    viewers.push_back(std::move(v));
  }
  system.loop().run_until(24 * kSec);
  std::printf("6 viewers watching the solo stream (stream 10)\n");

  // The co-stream begins: a second party joins, the joint feed is a NEW
  // stream (20) from the same producer; consumers flip viewers to it.
  client::Broadcaster joint(&system.network(), 2, bc);
  system.attach_client(&joint, bsite);
  joint.start(producer, {20});
  system.loop().run_until(26 * kSec);  // let the joint GoP cache warm

  solo.announce_costream(/*old=*/10, /*new=*/20);
  std::printf("co-stream announced: consumers resubscribe viewers from "
              "stream 10 to stream 20 on their behalf\n");

  system.loop().run_until(40 * kSec);
  solo.stop();
  for (auto& v : viewers) v->stop_view();
  system.loop().run_until(41 * kSec);

  int flipped = 0;
  std::uint32_t total_stalls = 0;
  for (const auto& s : system.sessions().sessions()) {
    if (s.costream_switches > 0) ++flipped;
  }
  for (const auto& v : qoe.records()) total_stalls += v.stalls;
  std::printf("viewers flipped to the co-stream: %d / 6\n", flipped);
  std::printf("stalls across all viewers during the whole run: %u\n",
              total_stalls);
  for (const auto& v : qoe.records()) {
    std::printf("  viewer: %llu frames displayed, %u stalls, mean delay "
                "%.0f ms\n",
                static_cast<unsigned long long>(v.frames_displayed), v.stalls,
                v.streaming_delay_ms.mean());
  }
  return 0;
}
