// Failover & mobility: a relay on the active path degrades (loss
// spike); the client quality reports trigger the consumer to switch to
// a backup path (§4.4/§7.1). Then a viewer migrates to a different
// consumer node mid-view (mobility, §7.1) and playback continues.
//
//   ./build/examples/failover
#include <cstdio>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "livenet/defaults.h"

using namespace livenet;

int main() {
  SystemConfig cfg = paper_system_config();
  cfg.countries = 3;
  cfg.nodes_per_country = 4;
  cfg.brain.routing_interval = 8 * kSec;
  cfg.overlay_node.report_interval = 3 * kSec;
  LiveNetSystem system(cfg);
  system.build_once();
  system.start();

  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.bitrate_bps = 1.0e6;
  bc.versions = {vc};
  client::Broadcaster broadcaster(&system.network(), 5, bc);
  const auto bsite = system.geo().sample_site(0);
  const auto producer = system.attach_client(&broadcaster, bsite);
  broadcaster.start(producer, {7});
  system.loop().run_until(10 * kSec);

  client::ClientMetrics qoe;
  client::Viewer viewer(&system.network(), &qoe);
  const auto vsite = system.geo().sample_site(1);
  const auto consumer = system.attach_client(&viewer, vsite);
  viewer.start_view(consumer, 7);
  system.loop().run_until(20 * kSec);

  const auto& session = system.sessions().sessions().front();
  std::printf("established: path length %d, CDN delay %.0f ms\n",
              session.path_length, session.cdn_delay_ms.mean());

  // Degrade the current upstream hop: find the consumer's upstream via
  // the FIB and spike loss on that link pair heavily.
  const auto* entry = system.node(consumer).fib().find(7);
  if (entry != nullptr && entry->upstream != sim::kNoNode) {
    const auto upstream = entry->upstream;
    std::printf("degrading link %d -> %d (90%% loss)...\n", upstream,
                consumer);
    system.network().link(upstream, consumer)->set_loss_rate(0.90);
  }
  system.loop().run_until(35 * kSec);
  if (entry != nullptr && entry->upstream != sim::kNoNode) {
    const auto* l = system.network().link(entry->upstream, consumer);
    std::printf("  degraded link stats: sent=%llu lost=%llu\n",
      (unsigned long long)l->stats().packets_sent,
      (unsigned long long)l->stats().packets_lost);
    const auto* e2 = system.node(consumer).fib().find(7);
    std::printf("  consumer upstream now: %d (was %d)\n",
      e2 ? e2->upstream : -99, entry->upstream);
  }
  std::printf("after degradation: path switches=%d, viewer stalls=%u skips=%llu\n",
              session.path_switches, qoe.records().front().stalls,
              (unsigned long long)qoe.records().front().frames_skipped);

  // Mobility: the viewer moves; DNS maps it to a different consumer.
  sim::NodeId new_consumer = consumer;
  for (const auto n : system.edge_nodes()) {
    if (n != consumer && system.country_of_node(n) == 1) {
      new_consumer = n;
      break;
    }
  }
  // Wire an access link at the new location and resubscribe through it.
  sim::LinkConfig access;
  access.propagation_delay = 20 * kMs;
  access.bandwidth_bps = 20e6;
  system.network().add_bidi_link(viewer.node_id(), new_consumer, access);
  std::printf("viewer migrates: consumer %d -> %d\n", consumer, new_consumer);
  viewer.migrate(new_consumer);

  system.loop().run_until(50 * kSec);
  viewer.stop_view();
  broadcaster.stop();
  system.loop().run_until(51 * kSec);

  const auto& v = qoe.records().front();
  std::printf("final: %llu frames displayed, %u stalls total, mean "
              "streaming delay %.0f ms\n",
              static_cast<unsigned long long>(v.frames_displayed), v.stalls,
              v.streaming_delay_ms.mean());
  std::printf("sessions logged at consumers: %zu (original + post-"
              "migration)\n", system.sessions().sessions().size());
  return 0;
}
