// Flash sale: a Double-12-style demand spike against LiveNet, with the
// operational capacity up-scaling the paper describes (§6.5). Prints
// per-phase QoE so you can see the system ride through the spike.
//
//   ./build/examples/flash_sale
#include <cstdio>

#include "livenet/defaults.h"
#include "livenet/report.h"

using namespace livenet;

int main() {
  SystemConfig sys_cfg = paper_system_config(/*seed=*/2026);
  ScenarioConfig scn = paper_scenario_config(/*seed=*/1212);
  scn.duration = 3 * scn.day_length;

  // The sale: evening of day 2, demand x2.5, capacity scaled up 25%.
  workload::FlashWindow sale;
  sale.start = 1 * scn.day_length + scn.day_length * 20 / 24;
  sale.end = 2 * scn.day_length;
  sale.multiplier = 2.5;
  scn.flash.push_back(sale);
  scn.flash_capacity_factor = 1.25;

  std::printf("running 3 compressed days; flash sale on day 2 evening "
              "(demand x%.1f, capacity x%.2f)...\n", sale.multiplier,
              scn.flash_capacity_factor);

  LiveNetSystem system(sys_cfg);
  ScenarioRunner runner(system, scn);
  const ScenarioResult r = runner.run();

  struct Phase {
    const char* name;
    Time from, to;
  };
  const Phase phases[] = {
      {"day 1 (regular)", 0, scn.day_length},
      {"day 2 (flash sale)", scn.day_length, 2 * scn.day_length},
      {"day 3 (regular)", 2 * scn.day_length, 3 * scn.day_length},
  };
  std::printf("%-20s %9s %6s %10s %8s %7s\n", "phase", "cdn(ms)", "len",
              "stream(ms)", "0stall%", "fast%");
  for (const auto& p : phases) {
    const HeadlineMetrics m = headline_metrics(r, p.from, p.to);
    std::printf("%-20s %9.0f %6.0f %10.0f %8.1f %7.1f  (%zu views)\n",
                p.name, m.cdn_path_delay_ms_median, m.cdn_path_length_median,
                m.streaming_delay_ms_median, m.zero_stall_percent,
                m.fast_startup_percent, m.views);
  }

  // Peak concurrency tells the spike story.
  std::size_t peak_by_day[3] = {0, 0, 0};
  for (const auto& t : r.timeline) {
    if (t.day >= 0 && t.day < 3) {
      peak_by_day[t.day] = std::max(peak_by_day[t.day], t.concurrent_viewers);
    }
  }
  std::printf("peak concurrent viewers per day: %zu / %zu / %zu\n",
              peak_by_day[0], peak_by_day[1], peak_by_day[2]);
  std::printf("total viewers served: %llu\n",
              static_cast<unsigned long long>(r.total_viewers));
  return 0;
}
