// Quickstart: build a LiveNet deployment, publish one broadcast, serve
// two viewers (one local hit, one remote), and print what happened.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "livenet/defaults.h"

using namespace livenet;

int main() {
  // 1. A small flat-CDN deployment: 3 countries x 3 nodes (one backbone
  //    relay per country) + a last-resort relay + the Streaming Brain.
  SystemConfig cfg = paper_system_config();
  cfg.countries = 3;
  cfg.nodes_per_country = 3;
  cfg.last_resort_nodes = 1;
  cfg.brain.routing_interval = 10 * kSec;
  cfg.overlay_node.report_interval = 3 * kSec;

  LiveNetSystem system(cfg);
  system.build_once();
  system.start();
  std::printf("built %zu CDN nodes (%zu edges, %zu backbone relays, "
              "%zu last-resort) + Streaming Brain\n",
              system.overlay_node_ids().size() +
                  system.last_resort_ids().size(),
              system.edge_nodes().size(), system.backbone_ids().size(),
              system.last_resort_ids().size());

  // 2. A broadcaster in country 0 publishing a 2-version simulcast.
  client::BroadcasterConfig bc;
  media::VideoSourceConfig hi, lo;
  hi.bitrate_bps = 1.2e6;
  lo.bitrate_bps = 0.6e6;
  bc.versions = {hi, lo};
  client::Broadcaster broadcaster(&system.network(), /*seed=*/1, bc);
  const auto bsite = system.geo().sample_site(0);
  const auto producer = system.attach_client(&broadcaster, bsite);
  broadcaster.start(producer, /*stream ids=*/{100, 101});
  std::printf("broadcaster publishing streams {100, 101} via producer "
              "node %d\n", producer);

  system.loop().run_until(12 * kSec);  // routing cycle + GoP warmup

  // 3. Viewers: one in another country (path established through the
  //    Brain), then a neighbor (local hit on the consumer's GoP cache).
  client::ClientMetrics qoe;
  client::Viewer remote(&system.network(), &qoe);
  const auto rsite = system.geo().sample_site(2);
  const auto rconsumer = system.attach_client(&remote, rsite);
  remote.start_view(rconsumer, 100, /*fallback=*/{101});

  system.loop().run_until(18 * kSec);

  client::Viewer neighbor(&system.network(), &qoe);
  const auto nconsumer = system.attach_client(&neighbor, rsite);
  neighbor.start_view(nconsumer, 100, {101});

  system.loop().run_until(30 * kSec);
  remote.stop_view();
  neighbor.stop_view();
  system.loop().run_until(31 * kSec);

  // 4. What happened.
  for (std::size_t i = 0; i < qoe.records().size(); ++i) {
    const auto& v = qoe.records()[i];
    std::printf("viewer %zu: startup=%.0f ms, mean streaming delay=%.0f ms, "
                "stalls=%u, frames=%llu\n",
                i + 1, to_ms(v.startup_delay()), v.streaming_delay_ms.mean(),
                v.stalls, static_cast<unsigned long long>(v.frames_displayed));
  }
  for (const auto& s : system.sessions().sessions()) {
    std::printf("session (consumer %d): path length=%d, CDN delay=%.0f ms, "
                "local hit=%s, first packet after %.0f ms\n",
                s.consumer, s.path_length, s.cdn_delay_ms.mean(),
                s.local_hit ? "yes" : "no", to_ms(s.first_packet_delay()));
  }
  std::printf("Brain served %zu path lookups, %llu routing recomputes\n",
              system.brain().metrics().path_requests.size(),
              static_cast<unsigned long long>(
                  system.brain().metrics().recomputes));
  return 0;
}
