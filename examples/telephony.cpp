// Multi-service CDN (§4.3 "Supporting Other Applications" and §7.2 "A
// CDN for Multiple Services"): the same flat overlay serves a
// telephony-style application with a different routing policy — a
// tighter 2-hop bound, a lower overload target (calls are
// latency-critical), and Path Decision replicas near consumers (§7.1).
//
//   ./build/examples/telephony
#include <cstdio>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "livenet/defaults.h"

using namespace livenet;

int main() {
  // Start from the shared footprint; change only the control policy —
  // the paper's point: "the routing scheme or the associated
  // constraints can be arbitrarily updated without impacting the CDN
  // nodes".
  SystemConfig cfg = paper_system_config(/*seed=*/777);
  cfg.countries = 4;
  cfg.nodes_per_country = 4;
  cfg.path_decision_replicas = 2;          // §7.1: replicas near users
  cfg.brain.routing.max_hops = 2;          // calls: at most 2 overlay hops
  cfg.brain.routing.overload_threshold = 0.6;  // back off earlier
  cfg.brain.routing_interval = 10 * kSec;
  cfg.overlay_node.report_interval = 3 * kSec;

  LiveNetSystem system(cfg);
  system.build_once();
  system.start();
  std::printf("telephony profile: max 2 hops, overload target 60%%, "
              "%zu Path Decision replicas\n", system.replicas().size());

  // A "call": one low-latency stream, viewer on another continent.
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;          // 1-second GoPs: fast peer joins
  vc.bitrate_bps = 0.8e6;
  bc.versions = {vc};
  bc.encode_delay = 30 * kMs;  // telephony-grade encoder
  client::Broadcaster caller(&system.network(), 1, bc);
  const auto csite = system.geo().sample_site(0);
  caller.start(system.attach_client(&caller, csite), {500});
  system.loop().run_until(12 * kSec);

  client::ViewerConfig callee_cfg;
  callee_cfg.playback_buffer = 150 * kMs;  // interactive buffer
  client::ClientMetrics qoe;
  client::Viewer callee(&system.network(), &qoe, callee_cfg);
  const auto vsite = system.geo().sample_site(2);
  const auto consumer = system.attach_client(&callee, vsite);
  callee.start_view(consumer, 500);
  system.loop().run_until(40 * kSec);
  callee.stop_view();
  caller.stop();
  system.loop().run_until(41 * kSec);

  const auto& sess = system.sessions().sessions().front();
  const auto& rec = qoe.records().front();
  std::printf("call session: path length %d (bound 2), CDN delay %.0f ms, "
              "lookup RTT %.0f ms (via replica)\n",
              sess.path_length, sess.cdn_delay_ms.mean(),
              to_ms(sess.path_response_rtt));
  std::printf("callee: startup %.0f ms, mouth-to-ear-ish delay %.0f ms, "
              "stalls %u, frames %llu\n",
              to_ms(rec.startup_delay()), rec.streaming_delay_ms.mean(),
              rec.stalls,
              static_cast<unsigned long long>(rec.frames_displayed));

  std::size_t replica_lookups = 0;
  for (const auto& r : system.replicas()) {
    replica_lookups += r->metrics().path_requests.size();
  }
  std::printf("lookups answered by replicas: %zu (primary: %zu)\n",
              replica_lookups,
              system.brain().metrics().path_requests.size());
  return 0;
}
