#include "brain/brain.h"

#include "brain/replica.h"

#include <algorithm>
#include <chrono>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace livenet::brain {

using overlay::OverloadAlarm;
using overlay::NodeStateReport;
using overlay::PathRequest;
using overlay::PathResponse;
using overlay::PathPush;
using overlay::StreamRegister;

BrainNode::BrainNode(sim::Network* net, const BrainConfig& cfg)
    : net_(net), cfg_(cfg), discovery_(cfg.overload_threshold),
      routing_(cfg.routing), path_decision_(&pib_, &sib_) {}

BrainNode::~BrainNode() {
  if (routing_timer_ != sim::kInvalidEvent) {
    net_->loop()->cancel(routing_timer_);
  }
}

void BrainNode::set_overlay_nodes(std::vector<sim::NodeId> nodes) {
  overlay_nodes_ = std::move(nodes);
}

void BrainNode::set_last_resort_nodes(std::vector<sim::NodeId> nodes) {
  last_resort_nodes_ = std::move(nodes);
}

void BrainNode::set_replicas(std::vector<sim::NodeId> replicas) {
  replicas_ = std::move(replicas);
}

void BrainNode::sync_replicas_pib() {
  if (replicas_.empty()) return;
  ++pib_version_;
  auto update = sim::make_message<ReplicaPibUpdate>();
  update->version = pib_version_;
  for (const auto& [src, dst] : pib_.pairs()) {
    ReplicaPibUpdate::Entry e;
    e.src = src;
    e.dst = dst;
    if (const auto* paths = pib_.find(src, dst)) e.paths = *paths;
    e.last_resort = pib_.last_resort(src, dst);
    update->entries.push_back(std::move(e));
  }
  for (const auto r : replicas_) {
    net_->send(node_id(), r, update);
  }
}

void BrainNode::start() {
  recompute_routes();
  if (routing_timer_ == sim::kInvalidEvent) {
    routing_timer_ = net_->loop()->schedule_after(
        cfg_.routing_interval, [this] {
          routing_timer_ = sim::kInvalidEvent;
          start();
        });
  }
}

void BrainNode::recompute_routes() {
  const auto wall_start = std::chrono::steady_clock::now();
  metrics_.last_recompute = routing_.recompute(
      discovery_, overlay_nodes_, last_resort_nodes_, &pib_);
  const auto wall_end = std::chrono::steady_clock::now();
  ++metrics_.recomputes;
  const auto& tel = telemetry::handles();
  tel.brain_pairs_solved->add(metrics_.last_recompute.pairs_solved);
  tel.brain_pairs_skipped->add(metrics_.last_recompute.pairs_skipped);
  tel.brain_last_resort_pairs->add(
      metrics_.last_recompute.last_resort_pairs);
  tel.brain_recompute_ms->observe(
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count());
  tel.brain_graph_build_ms->observe(metrics_.last_recompute.graph_build_ms);
  tel.brain_solve_ms->observe(metrics_.last_recompute.solve_ms);
  tel.brain_install_ms->observe(metrics_.last_recompute.install_ms);
  tel.brain_threads->set_max(static_cast<double>(cfg_.routing.threads));
  push_popular_paths();
  sync_replicas_pib();
}

void BrainNode::push_popular_paths() {
  const auto popular = stream_mgmt_.popular_streams(cfg_.push_top_n, sib_);
  for (const media::StreamId s : popular) {
    const sim::NodeId producer = sib_.producer_of(s);
    if (producer == sim::kNoNode) continue;
    for (const sim::NodeId node : overlay_nodes_) {
      if (node == producer) continue;
      auto paths = pib_.valid_paths(producer, node);
      if (paths.empty()) continue;
      auto push = sim::make_message<PathPush>();
      push->stream_id = s;
      push->paths = std::move(paths);
      net_->send(node_id(), node, std::move(push));
    }
  }
}

void BrainNode::on_message(sim::NodeId from, const sim::MessagePtr& msg) {
  if (const auto req = sim::msg_cast<const PathRequest>(msg)) {
    handle_path_request(from, *req);
    return;
  }
  if (const auto reg = sim::msg_cast<const StreamRegister>(msg)) {
    stream_mgmt_.on_register(*reg, &sib_);
    for (const auto r : replicas_) {
      auto upd = sim::make_message<ReplicaSibUpdate>();
      upd->stream_id = reg->stream_id;
      upd->producer = reg->producer;
      upd->active = reg->active;
      net_->send(node_id(), r, std::move(upd));
    }
    return;
  }
  if (const auto rep = sim::msg_cast<const NodeStateReport>(msg)) {
    ++metrics_.reports_received;
    discovery_.on_report(*rep, net_->loop()->now(), &pib_);
    // Mirror the implied overload clears to the replicas.
    if (!replicas_.empty() && rep->node_load < cfg_.overload_threshold) {
      auto upd = sim::make_message<ReplicaOverloadUpdate>();
      upd->node = rep->node;
      upd->overloaded = false;
      for (const auto& lr : rep->links) {
        if (lr.utilization < cfg_.overload_threshold) {
          upd->hot_links.push_back(lr.to);
        }
      }
      for (const auto r : replicas_) net_->send(node_id(), r, upd);
    }
    return;
  }
  if (const auto alarm = sim::msg_cast<const OverloadAlarm>(msg)) {
    ++metrics_.alarms_received;
    discovery_.on_alarm(*alarm, &pib_);
    if (!replicas_.empty() && alarm->node_load >= cfg_.overload_threshold) {
      auto upd = sim::make_message<ReplicaOverloadUpdate>();
      upd->node = alarm->node;
      upd->overloaded = true;
      upd->hot_links = alarm->overloaded_links;
      for (const auto r : replicas_) net_->send(node_id(), r, upd);
    }
    return;
  }
  if (const auto mig =
          sim::msg_cast<const overlay::ProducerMigrate>(msg)) {
    // Broadcaster mobility (§7.1): instruct the old producer to relay
    // from the new one — which is the node that relayed this message
    // (`from`); its StreamRegister may still be in flight, so the SIB
    // is not consulted here. Fresh lookups route to the new producer as
    // soon as the registration lands; existing overlay paths keep
    // flowing through the old node unchanged.
    const sim::NodeId new_producer = from;
    for (const media::StreamId s : mig->streams) {
      if (mig->old_producer == sim::kNoNode ||
          new_producer == mig->old_producer) {
        continue;
      }
      auto instr = sim::make_message<overlay::ProducerRelayInstruction>();
      instr->stream_id = s;
      instr->new_producer = new_producer;
      net_->send(node_id(), mig->old_producer, std::move(instr));
    }
    return;
  }
  LIVENET_LOG(kWarn) << "brain: unhandled " << msg->describe();
}

void BrainNode::handle_path_request(sim::NodeId from,
                                    const PathRequest& req) {
  stream_mgmt_.note_request(req.stream_id);

  // Single-server queue: the request waits behind earlier ones, then
  // takes one service time. The response leaves when service completes.
  const Time now = net_->loop()->now();
  const Time start = std::max(now, busy_until_);
  busy_until_ = start + cfg_.request_service_time;
  const Duration response_time = busy_until_ - now;

  const PathDecision::Lookup& lookup =
      path_decision_.get_path_cached(req.stream_id, req.consumer);

  metrics_.path_requests.push_back(BrainMetrics::PathRequestLog{
      now, response_time, lookup.last_resort, lookup.stream_known});
  telemetry::handles().path_requests_served->add();

  auto resp = sim::make_message<PathResponse>();
  resp->request_id = req.request_id;
  resp->stream_id = req.stream_id;
  resp->paths = lookup.paths;
  resp->last_resort = lookup.last_resort;
  net_->loop()->schedule_at(busy_until_, [this, from, resp] {
    net_->send(node_id(), from, resp);
  });
}

}  // namespace livenet::brain
