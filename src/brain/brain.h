#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "brain/global_discovery.h"
#include "brain/global_routing.h"
#include "brain/path_decision.h"
#include "brain/pib.h"
#include "brain/stream_mgmt.h"
#include "overlay/messages.h"
#include "sim/network.h"
#include "sim/sim_node.h"
#include "util/time.h"

// The Streaming Brain (paper §4): the logically centralized controller,
// composed of Global Discovery, Global Routing, Path Decision and
// Stream Management. In production it is geo-replicated with Paxos;
// here it is one SimNode whose service model (a single queue with a
// per-request service time) reproduces the response-time behaviour of
// Figure 10(a): fast hash lookups plus load-dependent queueing.
namespace livenet::brain {

struct BrainConfig {
  Duration routing_interval = 10 * kMin;  ///< Global Routing cycle
  Duration request_service_time = 1500 * kUs;  ///< per path request
  std::size_t push_top_n = 3;  ///< popular streams to push proactively
  GlobalRoutingConfig routing;
  double overload_threshold = 0.8;
};

/// Brain-side measurement log (the paper's third data source: "logged
/// at the Path Decision module... each log corresponds to a path
/// request, and records the path request response time").
struct BrainMetrics {
  struct PathRequestLog {
    Time arrival = 0;
    Duration response_time = 0;
    bool last_resort = false;
    bool stream_known = true;
  };
  std::deque<PathRequestLog> path_requests;
  std::uint64_t reports_received = 0;
  std::uint64_t alarms_received = 0;
  std::uint64_t recomputes = 0;
  GlobalRouting::Result last_recompute;
};

class BrainNode final : public sim::SimNode {
 public:
  BrainNode(sim::Network* net) : BrainNode(net, BrainConfig()) {}
  BrainNode(sim::Network* net, const BrainConfig& cfg);
  ~BrainNode() override;

  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override;

  /// Regular overlay nodes (graph vertices for Global Routing).
  void set_overlay_nodes(std::vector<sim::NodeId> nodes);

  /// Reserved last-resort relays (excluded from regular routing).
  void set_last_resort_nodes(std::vector<sim::NodeId> nodes);

  /// Path Decision replicas to keep in sync (§7.1). They receive a full
  /// PIB snapshot after every routing cycle plus incremental SIB and
  /// overload updates.
  void set_replicas(std::vector<sim::NodeId> replicas);

  /// Starts the periodic Global Routing cycle (runs one cycle
  /// immediately so early lookups find paths).
  void start();

  /// Forces a routing recompute now (used by tests and by operational
  /// "scale-up" events).
  void recompute_routes();

  /// Marks a stream as popular (advance campaign notification).
  void mark_popular(media::StreamId s) { stream_mgmt_.mark_popular(s); }

  const Pib& pib() const { return pib_; }
  const Sib& sib() const { return sib_; }
  const GlobalDiscovery& discovery() const { return discovery_; }
  const BrainMetrics& metrics() const { return metrics_; }
  PathDecision& path_decision() { return path_decision_; }

 private:
  void handle_path_request(sim::NodeId from, const overlay::PathRequest& req);
  void push_popular_paths();
  void sync_replicas_pib();

  sim::Network* net_;
  BrainConfig cfg_;
  std::vector<sim::NodeId> overlay_nodes_;
  std::vector<sim::NodeId> last_resort_nodes_;
  std::vector<sim::NodeId> replicas_;
  std::uint64_t pib_version_ = 0;

  Pib pib_;
  Sib sib_;
  GlobalDiscovery discovery_;
  GlobalRouting routing_;
  PathDecision path_decision_;
  StreamMgmt stream_mgmt_;
  BrainMetrics metrics_;

  Time busy_until_ = 0;  ///< single-server queue model for Path Decision
  sim::EventId routing_timer_ = sim::kInvalidEvent;
};

}  // namespace livenet::brain
