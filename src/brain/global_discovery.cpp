#include "brain/global_discovery.h"

namespace livenet::brain {

void GlobalDiscovery::on_report(const overlay::NodeStateReport& report,
                                Time now, Pib* pib) {
  auto& view = nodes_[report.node];
  view.load = report.node_load;
  view.last_report = now;
  for (const auto& lr : report.links) {
    LinkState& ls = view.links[lr.to];
    ls.rtt = lr.rtt;
    ls.loss_rate = lr.loss_rate;
    ls.utilization = lr.utilization;
    ls.valid = true;
  }

  if (pib == nullptr) return;
  // A healthy report clears earlier real-time overload marks.
  if (report.node_load < threshold_) {
    pib->clear_node_overloaded(report.node);
  }
  for (const auto& lr : report.links) {
    if (lr.utilization < threshold_) {
      pib->clear_link_overloaded(report.node, lr.to);
    }
  }
}

void GlobalDiscovery::on_alarm(const overlay::OverloadAlarm& alarm,
                               Pib* pib) {
  auto& view = nodes_[alarm.node];
  view.load = alarm.node_load;
  if (pib == nullptr) return;
  if (alarm.node_load >= threshold_) {
    pib->mark_node_overloaded(alarm.node);
  }
  for (const sim::NodeId peer : alarm.overloaded_links) {
    pib->mark_link_overloaded(alarm.node, peer);
  }
}

double GlobalDiscovery::node_load(sim::NodeId n) const {
  const auto it = nodes_.find(n);
  return it != nodes_.end() ? it->second.load : 0.0;
}

const LinkState* GlobalDiscovery::link(sim::NodeId a, sim::NodeId b) const {
  const auto it = nodes_.find(a);
  if (it == nodes_.end()) return nullptr;
  const auto lit = it->second.links.find(b);
  return lit != it->second.links.end() ? &lit->second : nullptr;
}

}  // namespace livenet::brain
