#include "brain/global_discovery.h"

#include <cmath>

namespace livenet::brain {

namespace {

/// Proxy for the abstracted link weight with neutral node utilization;
/// used only for relative-change detection, so the exact WeightParams
/// do not matter as long as they are applied consistently.
double proxy_weight(const LinkState& ls) {
  return link_weight(ls, 0.0, 0.0, WeightParams{});
}

}  // namespace

void GlobalDiscovery::on_report(const overlay::NodeStateReport& report,
                                Time now, Pib* pib) {
  auto& view = nodes_[report.node];
  // Node dirtiness: first sighting, a meaningful load move, or an
  // overload-threshold crossing (which flips the routing constraints).
  const bool first_node = view.last_report == kNever;
  const bool load_moved =
      std::abs(report.node_load - view.load) >= dirty_cfg_.load_abs;
  const bool node_crossed = (view.load >= threshold_) !=
                            (report.node_load >= threshold_);
  if (first_node || load_moved || node_crossed) {
    mark_node_dirty(report.node);
  }
  view.load = report.node_load;
  view.last_report = now;
  for (const auto& lr : report.links) {
    LinkState& ls = view.links[lr.to];
    // Link dirtiness: new link, a relative proxy-weight move beyond the
    // threshold, or a utilization crossing of the overload bar.
    bool dirty = !ls.valid;
    if (!dirty) {
      const double before = proxy_weight(ls);
      LinkState next = ls;
      next.rtt = lr.rtt;
      next.loss_rate = lr.loss_rate;
      next.utilization = lr.utilization;
      const double after = proxy_weight(next);
      if (before > 0.0 &&
          std::abs(after - before) / before >= dirty_cfg_.weight_rel) {
        dirty = true;
      }
      if ((ls.utilization >= threshold_) != (lr.utilization >= threshold_)) {
        dirty = true;
      }
    }
    if (dirty) mark_link_dirty(report.node, lr.to);
    ls.rtt = lr.rtt;
    ls.loss_rate = lr.loss_rate;
    ls.utilization = lr.utilization;
    ls.valid = true;
  }

  if (pib == nullptr) return;
  // A healthy report clears earlier real-time overload marks.
  if (report.node_load < threshold_) {
    pib->clear_node_overloaded(report.node);
  }
  for (const auto& lr : report.links) {
    if (lr.utilization < threshold_) {
      pib->clear_link_overloaded(report.node, lr.to);
    }
  }
}

void GlobalDiscovery::on_alarm(const overlay::OverloadAlarm& alarm,
                               Pib* pib) {
  auto& view = nodes_[alarm.node];
  view.load = alarm.node_load;
  // Alarms always dirty the affected elements: the next routing cycle
  // must reconsider them no matter how small the numeric delta.
  mark_node_dirty(alarm.node);
  for (const sim::NodeId peer : alarm.overloaded_links) {
    mark_link_dirty(alarm.node, peer);
  }
  if (pib == nullptr) return;
  if (alarm.node_load >= threshold_) {
    pib->mark_node_overloaded(alarm.node);
  }
  for (const sim::NodeId peer : alarm.overloaded_links) {
    pib->mark_link_overloaded(alarm.node, peer);
  }
}

double GlobalDiscovery::node_load(sim::NodeId n) const {
  const auto it = nodes_.find(n);
  return it != nodes_.end() ? it->second.load : 0.0;
}

const GlobalDiscovery::NodeView* GlobalDiscovery::find_node(
    sim::NodeId n) const {
  const auto it = nodes_.find(n);
  return it != nodes_.end() ? &it->second : nullptr;
}

const LinkState* GlobalDiscovery::link(sim::NodeId a, sim::NodeId b) const {
  const auto it = nodes_.find(a);
  if (it == nodes_.end()) return nullptr;
  const auto lit = it->second.links.find(b);
  return lit != it->second.links.end() ? &lit->second : nullptr;
}

void GlobalDiscovery::dirty_since(
    std::uint64_t since,
    std::vector<std::pair<sim::NodeId, sim::NodeId>>* links,
    std::vector<sim::NodeId>* nodes) const {
  for (const auto& [key, seq] : dirty_links_) {
    if (seq > since) {
      links->emplace_back(static_cast<sim::NodeId>(key >> 32),
                          static_cast<sim::NodeId>(key & 0xFFFFFFFFu));
    }
  }
  for (const auto& [n, seq] : dirty_nodes_) {
    if (seq > since) nodes->push_back(n);
  }
}

}  // namespace livenet::brain
