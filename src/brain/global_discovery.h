#pragma once

#include <unordered_map>

#include "brain/pib.h"
#include "brain/routing_graph.h"
#include "overlay/messages.h"
#include "util/time.h"

// Global Discovery module (paper §4.2): collects the 1-minute state
// reports from overlay nodes into the global view used by Global
// Routing, and reacts to real-time overload alarms by invalidating the
// affected PIB entries immediately (without waiting for the 10-minute
// routing cycle).
namespace livenet::brain {

class GlobalDiscovery {
 public:
  struct NodeView {
    double load = 0.0;
    Time last_report = kNever;
    std::unordered_map<sim::NodeId, LinkState> links;
  };

  explicit GlobalDiscovery(double overload_threshold = 0.8)
      : threshold_(overload_threshold) {}

  /// Periodic report: refreshes the global view; clears overload marks
  /// for elements the report shows healthy again.
  void on_report(const overlay::NodeStateReport& report, Time now, Pib* pib);

  /// Real-time alarm: marks the node/links overloaded in the PIB.
  void on_alarm(const overlay::OverloadAlarm& alarm, Pib* pib);

  const std::unordered_map<sim::NodeId, NodeView>& nodes() const {
    return nodes_;
  }
  double node_load(sim::NodeId n) const;
  const LinkState* link(sim::NodeId a, sim::NodeId b) const;

 private:
  double threshold_;
  std::unordered_map<sim::NodeId, NodeView> nodes_;
};

}  // namespace livenet::brain
