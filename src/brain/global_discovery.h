#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "brain/pib.h"
#include "brain/routing_graph.h"
#include "overlay/messages.h"
#include "util/time.h"

// Global Discovery module (paper §4.2): collects the 1-minute state
// reports from overlay nodes into the global view used by Global
// Routing, and reacts to real-time overload alarms by invalidating the
// affected PIB entries immediately (without waiting for the 10-minute
// routing cycle).
//
// Discovery also keeps a *dirty set*: links whose abstracted weight
// moved beyond a relative threshold (and nodes whose load moved beyond
// an absolute one) since they were last consumed by a routing cycle.
// Every dirty mark gets a monotonic sequence number, so Global Routing
// can ask "what changed since sequence S" without Discovery having to
// know about routing cycles (or be mutated by them).
namespace livenet::brain {

/// Thresholds below which a state change is not worth re-routing for.
struct DirtyConfig {
  double weight_rel = 0.10;  ///< relative link proxy-weight change
  double load_abs = 0.05;    ///< absolute node-load change
};

class GlobalDiscovery {
 public:
  struct NodeView {
    double load = 0.0;
    Time last_report = kNever;
    std::unordered_map<sim::NodeId, LinkState> links;
  };

  explicit GlobalDiscovery(double overload_threshold = 0.8,
                           const DirtyConfig& dirty = DirtyConfig())
      : threshold_(overload_threshold), dirty_cfg_(dirty) {}

  /// Periodic report: refreshes the global view; clears overload marks
  /// for elements the report shows healthy again.
  void on_report(const overlay::NodeStateReport& report, Time now, Pib* pib);

  /// Real-time alarm: marks the node/links overloaded in the PIB.
  void on_alarm(const overlay::OverloadAlarm& alarm, Pib* pib);

  const std::unordered_map<sim::NodeId, NodeView>& nodes() const {
    return nodes_;
  }
  double node_load(sim::NodeId n) const;
  const LinkState* link(sim::NodeId a, sim::NodeId b) const;

  /// Whole per-node view (load + link table) in one probe, or nullptr
  /// for a node never reported. Graph construction iterates the link
  /// table directly through this instead of probing link(a, b) for
  /// every candidate pair — O(nodes + links) hash work per cycle
  /// rather than O(n^2).
  const NodeView* find_node(sim::NodeId n) const;

  /// Sequence number of the newest dirty mark (0 = nothing ever moved).
  std::uint64_t dirty_seq() const { return dirty_seq_; }

  /// Appends every link/node marked dirty *after* `since` (a value
  /// previously returned by dirty_seq()). Links are (from, to) node-id
  /// pairs.
  void dirty_since(std::uint64_t since,
                   std::vector<std::pair<sim::NodeId, sim::NodeId>>* links,
                   std::vector<sim::NodeId>* nodes) const;

 private:
  static std::uint64_t link_key(sim::NodeId a, sim::NodeId b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }
  void mark_link_dirty(sim::NodeId a, sim::NodeId b) {
    dirty_links_[link_key(a, b)] = ++dirty_seq_;
  }
  void mark_node_dirty(sim::NodeId n) { dirty_nodes_[n] = ++dirty_seq_; }

  double threshold_;
  DirtyConfig dirty_cfg_;
  std::unordered_map<sim::NodeId, NodeView> nodes_;

  std::uint64_t dirty_seq_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> dirty_links_;  ///< key->seq
  std::unordered_map<sim::NodeId, std::uint64_t> dirty_nodes_;
};

}  // namespace livenet::brain
