#include "brain/global_routing.h"

#include <chrono>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace livenet::brain {

namespace {

std::uint64_t link_key(sim::NodeId a, sim::NodeId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

constexpr double kMissingRtt = -1.0;

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Everything a per-source solve reads; shared read-only across every
/// worker during the fan-out (the Discovery view is only probed through
/// const lookups).
struct SolveCtx {
  const GlobalDiscovery* view = nullptr;
  const std::vector<sim::NodeId>* nodes = nullptr;
  const std::vector<sim::NodeId>* last_resort = nullptr;
  const GlobalRoutingConfig* cfg = nullptr;
  const std::vector<std::uint8_t>* node_over = nullptr;
  const std::vector<std::uint8_t>* link_over = nullptr;
  const std::vector<double>* lr_to = nullptr;
  std::size_t n = 0;
  std::size_t lr_count = 0;
};

struct SourceCounts {
  std::size_t paths_installed = 0;
  std::size_t last_resort_pairs = 0;
};

/// Buffered output of one source solve in parallel mode: everything the
/// ordered install phase needs to replay the source's Pib writes.
struct SourceOutput {
  std::vector<std::vector<overlay::Path>> kept_by_dst;  ///< size n
  std::vector<std::uint32_t> fallback;  ///< relay index; lr_count = none
  SourceCounts counts;
};

/// Solves every destination for source `a` and hands each destination's
/// kept paths plus fallback-relay choice (`best_l`, lr_count = none) to
/// `emit(b, kept, best_l)` in ascending destination order. The emit
/// callback is the only difference between the inline (threads == 1)
/// install and the buffered parallel path — which is the argument that
/// the two produce byte-identical Pib contents.
template <typename Emit>
SourceCounts solve_source(const SolveCtx& c, KspSolver& solver, std::size_t a,
                          std::vector<double>& lr_from,
                          std::vector<overlay::Path>& kept, Emit&& emit) {
  const std::vector<sim::NodeId>& nodes = *c.nodes;
  SourceCounts out;
  // src -> relay RTTs, hoisted per source.
  lr_from.resize(c.lr_count);
  for (std::size_t l = 0; l < c.lr_count; ++l) {
    const LinkState* ls = c.view->link(nodes[a], (*c.last_resort)[l]);
    lr_from[l] = ls != nullptr ? static_cast<double>(ls->rtt) : kMissingRtt;
  }
  // One forward tree for source `a` serves all destinations; spur trees
  // accumulate across sources (and, via rebind(), across cycles).
  solver.set_source(a);
  for (std::size_t b = 0; b < c.n; ++b) {
    if (a == b) continue;
    const std::size_t cnt = solver.k_shortest_scratch(b, c.cfg->k);

    kept.clear();
    for (std::size_t ci = 0; ci < cnt; ++ci) {
      const std::vector<std::size_t>& wp = solver.accepted_nodes(ci);
      // Constraint (iii): bounded path length.
      if (static_cast<int>(wp.size()) - 1 > c.cfg->max_hops) continue;
      // Constraints (i)/(ii): skip paths crossing overloaded elements
      // (relay nodes and links; the endpoints are fixed by the pair).
      bool bad = false;
      for (std::size_t i = 0; i < wp.size() && !bad; ++i) {
        const std::size_t u = wp[i];
        const bool endpoint = (i == 0 || i + 1 == wp.size());
        if (!endpoint && (*c.node_over)[u] != 0) bad = true;
        if (i + 1 < wp.size() && (*c.link_over)[u * c.n + wp[i + 1]] != 0) {
          bad = true;
        }
      }
      if (bad) continue;
      overlay::Path p;
      p.reserve(wp.size());
      for (const std::size_t idx : wp) p.push_back(nodes[idx]);
      kept.push_back(std::move(p));
    }
    out.paths_installed += kept.size();

    // Last-resort fallback: src -> reserved relay -> dst, choosing the
    // relay with the lowest total reported RTT.
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_l = c.lr_count;
    for (std::size_t l = 0; l < c.lr_count; ++l) {
      if (lr_from[l] < 0.0) continue;
      const double to = (*c.lr_to)[l * c.n + b];
      if (to < 0.0) continue;
      const double cost = lr_from[l] + to;
      if (cost < best) {
        best = cost;
        best_l = l;
      }
    }
    if (kept.empty() && best_l != c.lr_count) ++out.last_resort_pairs;
    emit(b, kept, best_l);
    kept.clear();
  }
  return out;
}

}  // namespace

void GlobalRouting::fill_graph_cells(
    const GlobalDiscovery& view, const std::vector<sim::NodeId>& nodes,
    const std::unordered_map<sim::NodeId, std::size_t>& idx_of,
    const std::vector<double>& loads, std::vector<double>* cells) const {
  const std::size_t n = nodes.size();
  cells->assign(n * n, RoutingGraph::kNoEdge);
  for (std::size_t a = 0; a < n; ++a) {
    const GlobalDiscovery::NodeView* nv = view.find_node(nodes[a]);
    if (nv == nullptr) continue;
    double* row = cells->data() + a * n;
    for (const auto& [idb, ls] : nv->links) {
      if (!ls.valid) continue;
      const auto ib = idx_of.find(idb);
      if (ib == idx_of.end() || ib->second == a) continue;
      row[ib->second] =
          link_weight(ls, loads[a], loads[ib->second], cfg_.weights);
    }
  }
}

RoutingGraph GlobalRouting::build_graph(
    const GlobalDiscovery& view, const std::vector<sim::NodeId>& nodes) const {
  const std::size_t n = nodes.size();
  RoutingGraph g(n);
  std::unordered_map<sim::NodeId, std::size_t> idx_of;
  idx_of.reserve(n);
  for (std::size_t a = 0; a < n; ++a) idx_of[nodes[a]] = a;
  std::vector<double> loads(n);
  for (std::size_t a = 0; a < n; ++a) loads[a] = view.node_load(nodes[a]);
  std::vector<double> cells;
  fill_graph_cells(view, nodes, idx_of, loads, &cells);
  g.rebuild_from(n, &cells);
  return g;
}

GlobalRouting::Result GlobalRouting::recompute(
    const GlobalDiscovery& view, const std::vector<sim::NodeId>& nodes,
    const std::vector<sim::NodeId>& last_resort_nodes, Pib* pib) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  Result res;
  const std::size_t n = nodes.size();
  const std::size_t lr_count = last_resort_nodes.size();

  // ---- Phase 1: graph build + cycle planning ------------------------
  idx_of_.clear();
  idx_of_.reserve(n);
  for (std::size_t a = 0; a < n; ++a) idx_of_[nodes[a]] = a;
  loads_.resize(n);
  for (std::size_t a = 0; a < n; ++a) loads_[a] = view.node_load(nodes[a]);
  fill_graph_cells(view, nodes, idx_of_, loads_, &cells_);
  graph_.rebuild_from(n, &cells_);
  // The CSR view is built lazily inside a const accessor; materialize
  // it here so no two workers race to build it during the fan-out.
  graph_.csr();

  // Full vs. incremental: a topology change (or the very first cycle)
  // forces a full solve, as does the periodic refresh cadence.
  const bool topo_changed = !has_state_ || nodes != prev_nodes_ ||
                            last_resort_nodes != prev_last_resort_;
  bool full = !cfg_.incremental || topo_changed;
  if (!full && cfg_.full_refresh_every > 0 &&
      cycles_since_full_ + 1 >= cfg_.full_refresh_every) {
    full = true;
  }
  res.full_refresh = full;

  // Snapshot the dirty set *before* solving; marks arriving mid-cycle
  // stay pending for the next one. A dirty *node* (load moved) changes
  // the weight of every incident edge, so any path visiting it is
  // stale; a dirty *link* only re-weights that one edge, so only paths
  // using it are. Weight improvements that could attract pairs not
  // currently routed over a dirty element are deferred to the periodic
  // full refresh — that is the documented approximation.
  const std::uint64_t dirty_now = view.dirty_seq();
  std::unordered_set<sim::NodeId> dirty_nodes;
  std::unordered_set<std::uint64_t> dirty_links;
  if (!full) {
    std::vector<std::pair<sim::NodeId, sim::NodeId>> dlinks;
    std::vector<sim::NodeId> dnodes;
    view.dirty_since(consumed_dirty_seq_, &dlinks, &dnodes);
    for (const auto& [u, v] : dlinks) dirty_links.insert(link_key(u, v));
    for (const sim::NodeId u : dnodes) dirty_nodes.insert(u);
  }
  const bool dirty_empty = dirty_nodes.empty() && dirty_links.empty();

  // Precomputed constraint tables: one hash lookup per element per
  // cycle instead of per candidate path.
  node_over_.assign(n, 0);
  for (std::size_t a = 0; a < n; ++a) {
    node_over_[a] = loads_[a] >= cfg_.overload_threshold ? 1 : 0;
  }
  link_over_.assign(n * n, 0);
  for (const auto& [ida, nv] : view.nodes()) {
    const auto ia = idx_of_.find(ida);
    if (ia == idx_of_.end()) continue;
    for (const auto& [idb, ls] : nv.links) {
      const auto ib = idx_of_.find(idb);
      if (ib == idx_of_.end()) continue;
      if (ls.utilization >= cfg_.overload_threshold) {
        link_over_[ia->second * n + ib->second] = 1;
      }
    }
  }

  // Last-resort relay->dst RTT table (per-cycle invariant; the
  // src->relay half is hoisted per source inside solve_source).
  lr_to_.assign(lr_count * n, kMissingRtt);
  for (std::size_t l = 0; l < lr_count; ++l) {
    for (std::size_t b = 0; b < n; ++b) {
      const LinkState* ls = view.link(last_resort_nodes[l], nodes[b]);
      if (ls != nullptr) lr_to_[l * n + b] = static_cast<double>(ls->rtt);
    }
  }

  // Incremental skip test: a source keeps last cycle's routes iff every
  // installed pair has candidates and none of its paths (candidate or
  // fallback) touches a dirty element.
  auto path_touches_dirty = [&](const overlay::Path& p) {
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!dirty_nodes.empty() && dirty_nodes.count(p[i]) != 0) return true;
      if (i + 1 < p.size() && !dirty_links.empty() &&
          dirty_links.count(link_key(p[i], p[i + 1])) != 0) {
        return true;
      }
    }
    return false;
  };
  auto source_needs_solve = [&](std::size_t a) {
    if (dirty_nodes.count(nodes[a]) != 0) return true;
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const auto* ps = pib->find(nodes[a], nodes[b]);
      if (ps == nullptr || ps->empty()) return true;  // unfilled pair
      for (const auto& p : *ps) {
        if (path_touches_dirty(p)) return true;
      }
      const auto* fb = pib->find_last_resort(nodes[a], nodes[b]);
      if (fb != nullptr && path_touches_dirty(*fb)) return true;
    }
    return false;
  };

  // Double buffer: full cycles rebuild the scratch from nothing (so
  // stale pairs age out); incremental cycles seed it with the live
  // routes and overwrite only the re-solved sources.
  scratch_.clear();
  if (!full) scratch_.copy_routes_from(*pib);

  // Plan the cycle's source list up front (skip accounting included),
  // so the solve phase is pure KSP work and partitions trivially.
  to_solve_.clear();
  for (std::size_t a = 0; a < n; ++a) {
    if (!full) {
      // Empty dirty set short-circuits the per-path scan entirely.
      const bool solve = !dirty_empty && source_needs_solve(a);
      if (!solve) {
        res.pairs += n - 1;
        res.pairs_skipped += n - 1;
        ++res.sources_skipped;
        continue;
      }
    }
    to_solve_.push_back(static_cast<std::uint32_t>(a));
  }

  // Worker pool + per-worker solvers: created once, warm-started every
  // cycle via rebind() (tree caches survive when the graph version did
  // not move, scratch capacity survives always).
  const std::size_t want = cfg_.threads > 0 ? cfg_.threads : 1;
  if (workers_.size() != want) {
    workers_.clear();
    workers_.resize(want);
  }
  if (want > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<util::ThreadPool>(want);
  }
  for (KspSolver& w : workers_) w.rebind(graph_);

  SolveCtx ctx;
  ctx.view = &view;
  ctx.nodes = &nodes;
  ctx.last_resort = &last_resort_nodes;
  ctx.cfg = &cfg_;
  ctx.node_over = &node_over_;
  ctx.link_over = &link_over_;
  ctx.lr_to = &lr_to_;
  ctx.n = n;
  ctx.lr_count = lr_count;

  const auto t1 = Clock::now();

  // ---- Phase 2: solve -----------------------------------------------
  std::vector<SourceOutput> outputs;
  if (want == 1) {
    // Inline fast path: install into the scratch Pib as each pair
    // resolves — no buffering, exactly the pre-parallel pipeline.
    KspSolver& solver = workers_[0];
    for (const std::uint32_t a : to_solve_) {
      const SourceCounts counts = solve_source(
          ctx, solver, a, lr_from_, kept_,
          [&](std::size_t b, std::vector<overlay::Path>& kept,
              std::size_t best_l) {
            scratch_.set_paths(nodes[a], nodes[b], std::move(kept));
            if (best_l != lr_count) {
              scratch_.set_last_resort(
                  nodes[a], nodes[b],
                  overlay::Path{nodes[a], last_resort_nodes[best_l],
                                nodes[b]});
            }
          });
      res.paths_installed += counts.paths_installed;
      res.last_resort_pairs += counts.last_resort_pairs;
    }
  } else {
    // Fan-out: worker w takes sources to_solve_[w], [w + T], ... Every
    // source is an independent subproblem over the shared read-only
    // cycle state; outputs are buffered per source and merged below.
    outputs.resize(to_solve_.size());
    const std::size_t num_workers = pool_->size();
    pool_->run([&](std::size_t w) {
      std::vector<double> lr_from;
      std::vector<overlay::Path> kept;
      for (std::size_t i = w; i < to_solve_.size(); i += num_workers) {
        SourceOutput& o = outputs[i];
        o.kept_by_dst.resize(n);
        o.fallback.assign(n, static_cast<std::uint32_t>(lr_count));
        o.counts = solve_source(
            ctx, workers_[w], to_solve_[i], lr_from, kept,
            [&o](std::size_t b, std::vector<overlay::Path>& kept_b,
                 std::size_t best_l) {
              o.kept_by_dst[b] = std::move(kept_b);
              o.fallback[b] = static_cast<std::uint32_t>(best_l);
            });
      }
    });
  }
  // Per-pair counters for the solved sources: plain sums, so the
  // totals are independent of worker partitioning.
  res.sources_solved = to_solve_.size();
  if (n > 0) {
    res.pairs += to_solve_.size() * (n - 1);
    res.pairs_solved += to_solve_.size() * (n - 1);
  }

  const auto t2 = Clock::now();

  // ---- Phase 3: install ---------------------------------------------
  if (want > 1) {
    // Ordered merge: replays the exact set_paths/set_last_resort call
    // sequence of the inline path (ascending source index, ascending
    // destination), hence byte-identical Pib contents for any T.
    for (std::size_t i = 0; i < to_solve_.size(); ++i) {
      const std::size_t a = to_solve_[i];
      SourceOutput& o = outputs[i];
      for (std::size_t b = 0; b < n; ++b) {
        if (a == b) continue;
        scratch_.set_paths(nodes[a], nodes[b], std::move(o.kept_by_dst[b]));
        if (o.fallback[b] != lr_count) {
          scratch_.set_last_resort(
              nodes[a], nodes[b],
              overlay::Path{nodes[a], last_resort_nodes[o.fallback[b]],
                            nodes[b]});
        }
      }
      res.paths_installed += o.counts.paths_installed;
      res.last_resort_pairs += o.counts.last_resort_pairs;
    }
  }

  pib->swap_routes(&scratch_);
  scratch_.clear();

  consumed_dirty_seq_ = dirty_now;
  cycles_since_full_ = full ? 0 : cycles_since_full_ + 1;
  prev_nodes_ = nodes;
  prev_last_resort_ = last_resort_nodes;
  has_state_ = true;

  const auto t3 = Clock::now();
  res.graph_build_ms = ms_between(t0, t1);
  res.solve_ms = ms_between(t1, t2);
  res.install_ms = ms_between(t2, t3);
  return res;
}

GlobalRouting::Result GlobalRouting::recompute_reference(
    const GlobalDiscovery& view, const std::vector<sim::NodeId>& nodes,
    const std::vector<sim::NodeId>& last_resort_nodes, Pib* pib) const {
  Result res;
  const RoutingGraph g = build_graph(view, nodes);

  auto overloaded_node = [&](sim::NodeId n) {
    return view.node_load(n) >= cfg_.overload_threshold;
  };
  auto overloaded_link = [&](sim::NodeId a, sim::NodeId b) {
    const LinkState* ls = view.link(a, b);
    return ls != nullptr && ls->utilization >= cfg_.overload_threshold;
  };

  for (std::size_t a = 0; a < nodes.size(); ++a) {
    // k = 1 needs no spur paths, so one shortest-path tree per source
    // replaces n per-pair Dijkstras (the tree reads off the identical
    // path).
    std::optional<ShortestPathTree> tree;
    if (cfg_.k == 1) tree = shortest_path_tree_reference(g, a);
    for (std::size_t b = 0; b < nodes.size(); ++b) {
      if (a == b) continue;
      ++res.pairs;
      ++res.pairs_solved;
      std::vector<WeightedPath> ksp;
      if (tree.has_value()) {
        if (auto p = tree->path_to(a, b)) ksp.push_back(std::move(*p));
      } else {
        ksp = k_shortest_paths_reference(g, a, b, cfg_.k);
      }

      std::vector<overlay::Path> kept;
      for (const auto& wp : ksp) {
        // Constraint (iii): bounded path length.
        if (static_cast<int>(wp.nodes.size()) - 1 > cfg_.max_hops) continue;
        // Constraints (i)/(ii): skip paths crossing overloaded elements
        // (relay nodes and links; the endpoints are fixed by the pair).
        bool bad = false;
        for (std::size_t i = 0; i < wp.nodes.size() && !bad; ++i) {
          const sim::NodeId n = nodes[wp.nodes[i]];
          const bool endpoint = (i == 0 || i + 1 == wp.nodes.size());
          if (!endpoint && overloaded_node(n)) bad = true;
          if (i + 1 < wp.nodes.size() &&
              overloaded_link(n, nodes[wp.nodes[i + 1]])) {
            bad = true;
          }
        }
        if (bad) continue;
        overlay::Path p;
        p.reserve(wp.nodes.size());
        for (const std::size_t idx : wp.nodes) p.push_back(nodes[idx]);
        kept.push_back(std::move(p));
      }
      res.paths_installed += kept.size();

      // Last-resort fallback: src -> reserved relay -> dst, choosing the
      // relay with the lowest total reported RTT.
      overlay::Path fallback;
      double best = std::numeric_limits<double>::infinity();
      for (const sim::NodeId lr : last_resort_nodes) {
        const LinkState* l1 = view.link(nodes[a], lr);
        const LinkState* l2 = view.link(lr, nodes[b]);
        if (l1 == nullptr || l2 == nullptr) continue;
        const double cost =
            static_cast<double>(l1->rtt) + static_cast<double>(l2->rtt);
        if (cost < best) {
          best = cost;
          fallback = overlay::Path{nodes[a], lr, nodes[b]};
        }
      }
      if (kept.empty() && !fallback.empty()) ++res.last_resort_pairs;
      pib->set_paths(nodes[a], nodes[b], std::move(kept));
      if (!fallback.empty()) {
        pib->set_last_resort(nodes[a], nodes[b], std::move(fallback));
      }
    }
  }
  return res;
}

}  // namespace livenet::brain
