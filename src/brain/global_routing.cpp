#include "brain/global_routing.h"

#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace livenet::brain {

namespace {

std::uint64_t link_key(sim::NodeId a, sim::NodeId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

constexpr double kMissingRtt = -1.0;

}  // namespace

RoutingGraph GlobalRouting::build_graph(
    const GlobalDiscovery& view, const std::vector<sim::NodeId>& nodes) const {
  RoutingGraph g(nodes.size());
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    for (std::size_t b = 0; b < nodes.size(); ++b) {
      if (a == b) continue;
      const LinkState* ls = view.link(nodes[a], nodes[b]);
      if (ls == nullptr || !ls->valid) continue;
      const double w = link_weight(*ls, view.node_load(nodes[a]),
                                   view.node_load(nodes[b]), cfg_.weights);
      g.set_weight(a, b, w);
    }
  }
  return g;
}

GlobalRouting::Result GlobalRouting::recompute(
    const GlobalDiscovery& view, const std::vector<sim::NodeId>& nodes,
    const std::vector<sim::NodeId>& last_resort_nodes, Pib* pib) {
  Result res;
  const std::size_t n = nodes.size();
  const std::size_t lr_count = last_resort_nodes.size();
  const RoutingGraph g = build_graph(view, nodes);

  // Full vs. incremental: a topology change (or the very first cycle)
  // forces a full solve, as does the periodic refresh cadence.
  const bool topo_changed = !has_state_ || nodes != prev_nodes_ ||
                            last_resort_nodes != prev_last_resort_;
  bool full = !cfg_.incremental || topo_changed;
  if (!full && cfg_.full_refresh_every > 0 &&
      cycles_since_full_ + 1 >= cfg_.full_refresh_every) {
    full = true;
  }
  res.full_refresh = full;

  // Snapshot the dirty set *before* solving; marks arriving mid-cycle
  // stay pending for the next one. A dirty *node* (load moved) changes
  // the weight of every incident edge, so any path visiting it is
  // stale; a dirty *link* only re-weights that one edge, so only paths
  // using it are. Weight improvements that could attract pairs not
  // currently routed over a dirty element are deferred to the periodic
  // full refresh — that is the documented approximation.
  const std::uint64_t dirty_now = view.dirty_seq();
  std::unordered_set<sim::NodeId> dirty_nodes;
  std::unordered_set<std::uint64_t> dirty_links;
  if (!full) {
    std::vector<std::pair<sim::NodeId, sim::NodeId>> dlinks;
    std::vector<sim::NodeId> dnodes;
    view.dirty_since(consumed_dirty_seq_, &dlinks, &dnodes);
    for (const auto& [u, v] : dlinks) dirty_links.insert(link_key(u, v));
    for (const sim::NodeId u : dnodes) dirty_nodes.insert(u);
  }
  const bool dirty_empty = dirty_nodes.empty() && dirty_links.empty();

  // Precomputed constraint tables: one hash lookup per element per
  // cycle instead of per candidate path.
  std::vector<std::uint8_t> node_over(n, 0);
  for (std::size_t a = 0; a < n; ++a) {
    node_over[a] =
        view.node_load(nodes[a]) >= cfg_.overload_threshold ? 1 : 0;
  }
  std::unordered_map<sim::NodeId, std::size_t> idx_of;
  idx_of.reserve(n);
  for (std::size_t a = 0; a < n; ++a) idx_of[nodes[a]] = a;
  std::vector<std::uint8_t> link_over(n * n, 0);
  for (const auto& [ida, nv] : view.nodes()) {
    const auto ia = idx_of.find(ida);
    if (ia == idx_of.end()) continue;
    for (const auto& [idb, ls] : nv.links) {
      const auto ib = idx_of.find(idb);
      if (ib == idx_of.end()) continue;
      if (ls.utilization >= cfg_.overload_threshold) {
        link_over[ia->second * n + ib->second] = 1;
      }
    }
  }

  // Last-resort RTT tables. The relay->dst half is per-cycle invariant;
  // the src->relay half is hoisted per source below (it used to be
  // re-queried for every destination).
  std::vector<double> lr_to(lr_count * n, kMissingRtt);
  for (std::size_t l = 0; l < lr_count; ++l) {
    for (std::size_t b = 0; b < n; ++b) {
      const LinkState* ls = view.link(last_resort_nodes[l], nodes[b]);
      if (ls != nullptr) lr_to[l * n + b] = static_cast<double>(ls->rtt);
    }
  }
  std::vector<double> lr_from(lr_count);

  // Incremental skip test: a source keeps last cycle's routes iff every
  // installed pair has candidates and none of its paths (candidate or
  // fallback) touches a dirty element.
  auto path_touches_dirty = [&](const overlay::Path& p) {
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!dirty_nodes.empty() && dirty_nodes.count(p[i]) != 0) return true;
      if (i + 1 < p.size() && !dirty_links.empty() &&
          dirty_links.count(link_key(p[i], p[i + 1])) != 0) {
        return true;
      }
    }
    return false;
  };
  auto source_needs_solve = [&](std::size_t a) {
    if (dirty_nodes.count(nodes[a]) != 0) return true;
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const auto* ps = pib->find(nodes[a], nodes[b]);
      if (ps == nullptr || ps->empty()) return true;  // unfilled pair
      for (const auto& p : *ps) {
        if (path_touches_dirty(p)) return true;
      }
      const auto* fb = pib->find_last_resort(nodes[a], nodes[b]);
      if (fb != nullptr && path_touches_dirty(*fb)) return true;
    }
    return false;
  };

  // Double buffer: full cycles rebuild the scratch from nothing (so
  // stale pairs age out); incremental cycles seed it with the live
  // routes and overwrite only the re-solved sources.
  scratch_.clear();
  if (!full) scratch_.copy_routes_from(*pib);

  KspSolver solver(g);
  std::vector<WeightedPath> ksp;
  std::vector<overlay::Path> kept;

  for (std::size_t a = 0; a < n; ++a) {
    if (!full) {
      // Empty dirty set short-circuits the per-path scan entirely.
      const bool solve = !dirty_empty && source_needs_solve(a);
      if (!solve) {
        res.pairs += n - 1;
        res.pairs_skipped += n - 1;
        ++res.sources_skipped;
        continue;
      }
    }
    ++res.sources_solved;
    for (std::size_t l = 0; l < lr_count; ++l) {
      const LinkState* ls = view.link(nodes[a], last_resort_nodes[l]);
      lr_from[l] = ls != nullptr ? static_cast<double>(ls->rtt) : kMissingRtt;
    }
    // One solver per cycle: the forward tree for source `a` serves all
    // destinations, and spur trees accumulate across sources.
    solver.set_source(a);
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      ++res.pairs;
      ++res.pairs_solved;
      ksp.clear();
      if (cfg_.k == 1) {
        // k = 1 needs no spur paths: read the pair off the source tree.
        if (auto p = solver.first_path(b)) ksp.push_back(std::move(*p));
      } else {
        solver.k_shortest(b, cfg_.k, &ksp);
      }

      kept.clear();
      for (const auto& wp : ksp) {
        // Constraint (iii): bounded path length.
        if (static_cast<int>(wp.nodes.size()) - 1 > cfg_.max_hops) continue;
        // Constraints (i)/(ii): skip paths crossing overloaded elements
        // (relay nodes and links; the endpoints are fixed by the pair).
        bool bad = false;
        for (std::size_t i = 0; i < wp.nodes.size() && !bad; ++i) {
          const std::size_t u = wp.nodes[i];
          const bool endpoint = (i == 0 || i + 1 == wp.nodes.size());
          if (!endpoint && node_over[u] != 0) bad = true;
          if (i + 1 < wp.nodes.size() &&
              link_over[u * n + wp.nodes[i + 1]] != 0) {
            bad = true;
          }
        }
        if (bad) continue;
        overlay::Path p;
        p.reserve(wp.nodes.size());
        for (const std::size_t idx : wp.nodes) p.push_back(nodes[idx]);
        kept.push_back(std::move(p));
      }
      res.paths_installed += kept.size();

      // Last-resort fallback: src -> reserved relay -> dst, choosing the
      // relay with the lowest total reported RTT.
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_l = lr_count;
      for (std::size_t l = 0; l < lr_count; ++l) {
        if (lr_from[l] < 0.0) continue;
        const double to = lr_to[l * n + b];
        if (to < 0.0) continue;
        const double cost = lr_from[l] + to;
        if (cost < best) {
          best = cost;
          best_l = l;
        }
      }
      if (kept.empty() && best_l != lr_count) ++res.last_resort_pairs;
      scratch_.set_paths(nodes[a], nodes[b], std::move(kept));
      kept.clear();
      if (best_l != lr_count) {
        scratch_.set_last_resort(
            nodes[a], nodes[b],
            overlay::Path{nodes[a], last_resort_nodes[best_l], nodes[b]});
      }
    }
  }

  pib->swap_routes(&scratch_);
  scratch_.clear();

  consumed_dirty_seq_ = dirty_now;
  cycles_since_full_ = full ? 0 : cycles_since_full_ + 1;
  prev_nodes_ = nodes;
  prev_last_resort_ = last_resort_nodes;
  has_state_ = true;
  return res;
}

GlobalRouting::Result GlobalRouting::recompute_reference(
    const GlobalDiscovery& view, const std::vector<sim::NodeId>& nodes,
    const std::vector<sim::NodeId>& last_resort_nodes, Pib* pib) const {
  Result res;
  const RoutingGraph g = build_graph(view, nodes);

  auto overloaded_node = [&](sim::NodeId n) {
    return view.node_load(n) >= cfg_.overload_threshold;
  };
  auto overloaded_link = [&](sim::NodeId a, sim::NodeId b) {
    const LinkState* ls = view.link(a, b);
    return ls != nullptr && ls->utilization >= cfg_.overload_threshold;
  };

  for (std::size_t a = 0; a < nodes.size(); ++a) {
    // k = 1 needs no spur paths, so one shortest-path tree per source
    // replaces n per-pair Dijkstras (the tree reads off the identical
    // path).
    std::optional<ShortestPathTree> tree;
    if (cfg_.k == 1) tree = shortest_path_tree_reference(g, a);
    for (std::size_t b = 0; b < nodes.size(); ++b) {
      if (a == b) continue;
      ++res.pairs;
      ++res.pairs_solved;
      std::vector<WeightedPath> ksp;
      if (tree.has_value()) {
        if (auto p = tree->path_to(a, b)) ksp.push_back(std::move(*p));
      } else {
        ksp = k_shortest_paths_reference(g, a, b, cfg_.k);
      }

      std::vector<overlay::Path> kept;
      for (const auto& wp : ksp) {
        // Constraint (iii): bounded path length.
        if (static_cast<int>(wp.nodes.size()) - 1 > cfg_.max_hops) continue;
        // Constraints (i)/(ii): skip paths crossing overloaded elements
        // (relay nodes and links; the endpoints are fixed by the pair).
        bool bad = false;
        for (std::size_t i = 0; i < wp.nodes.size() && !bad; ++i) {
          const sim::NodeId n = nodes[wp.nodes[i]];
          const bool endpoint = (i == 0 || i + 1 == wp.nodes.size());
          if (!endpoint && overloaded_node(n)) bad = true;
          if (i + 1 < wp.nodes.size() &&
              overloaded_link(n, nodes[wp.nodes[i + 1]])) {
            bad = true;
          }
        }
        if (bad) continue;
        overlay::Path p;
        p.reserve(wp.nodes.size());
        for (const std::size_t idx : wp.nodes) p.push_back(nodes[idx]);
        kept.push_back(std::move(p));
      }
      res.paths_installed += kept.size();

      // Last-resort fallback: src -> reserved relay -> dst, choosing the
      // relay with the lowest total reported RTT.
      overlay::Path fallback;
      double best = std::numeric_limits<double>::infinity();
      for (const sim::NodeId lr : last_resort_nodes) {
        const LinkState* l1 = view.link(nodes[a], lr);
        const LinkState* l2 = view.link(lr, nodes[b]);
        if (l1 == nullptr || l2 == nullptr) continue;
        const double cost =
            static_cast<double>(l1->rtt) + static_cast<double>(l2->rtt);
        if (cost < best) {
          best = cost;
          fallback = overlay::Path{nodes[a], lr, nodes[b]};
        }
      }
      if (kept.empty() && !fallback.empty()) ++res.last_resort_pairs;
      pib->set_paths(nodes[a], nodes[b], std::move(kept));
      if (!fallback.empty()) {
        pib->set_last_resort(nodes[a], nodes[b], std::move(fallback));
      }
    }
  }
  return res;
}

}  // namespace livenet::brain
