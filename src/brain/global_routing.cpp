#include "brain/global_routing.h"

#include <limits>

namespace livenet::brain {

RoutingGraph GlobalRouting::build_graph(
    const GlobalDiscovery& view, const std::vector<sim::NodeId>& nodes) const {
  RoutingGraph g(nodes.size());
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    for (std::size_t b = 0; b < nodes.size(); ++b) {
      if (a == b) continue;
      const LinkState* ls = view.link(nodes[a], nodes[b]);
      if (ls == nullptr || !ls->valid) continue;
      const double w = link_weight(*ls, view.node_load(nodes[a]),
                                   view.node_load(nodes[b]), cfg_.weights);
      g.set_weight(a, b, w);
    }
  }
  return g;
}

GlobalRouting::Result GlobalRouting::recompute(
    const GlobalDiscovery& view, const std::vector<sim::NodeId>& nodes,
    const std::vector<sim::NodeId>& last_resort_nodes, Pib* pib) const {
  Result res;
  const RoutingGraph g = build_graph(view, nodes);

  auto overloaded_node = [&](sim::NodeId n) {
    return view.node_load(n) >= cfg_.overload_threshold;
  };
  auto overloaded_link = [&](sim::NodeId a, sim::NodeId b) {
    const LinkState* ls = view.link(a, b);
    return ls != nullptr && ls->utilization >= cfg_.overload_threshold;
  };

  for (std::size_t a = 0; a < nodes.size(); ++a) {
    // k = 1 needs no spur paths, so one shortest-path tree per source
    // replaces n per-pair Dijkstras (the tree reads off the identical
    // path). This is what keeps the all-pairs cycle tractable on large
    // overlays.
    std::optional<ShortestPathTree> tree;
    if (cfg_.k == 1) tree = shortest_path_tree(g, a);
    for (std::size_t b = 0; b < nodes.size(); ++b) {
      if (a == b) continue;
      ++res.pairs;
      std::vector<WeightedPath> ksp;
      if (tree.has_value()) {
        if (auto p = tree->path_to(a, b)) ksp.push_back(std::move(*p));
      } else {
        ksp = k_shortest_paths(g, a, b, cfg_.k);
      }

      std::vector<overlay::Path> kept;
      for (const auto& wp : ksp) {
        // Constraint (iii): bounded path length.
        if (static_cast<int>(wp.nodes.size()) - 1 > cfg_.max_hops) continue;
        // Constraints (i)/(ii): skip paths crossing overloaded elements
        // (relay nodes and links; the endpoints are fixed by the pair).
        bool bad = false;
        for (std::size_t i = 0; i < wp.nodes.size() && !bad; ++i) {
          const sim::NodeId n = nodes[wp.nodes[i]];
          const bool endpoint = (i == 0 || i + 1 == wp.nodes.size());
          if (!endpoint && overloaded_node(n)) bad = true;
          if (i + 1 < wp.nodes.size() &&
              overloaded_link(n, nodes[wp.nodes[i + 1]])) {
            bad = true;
          }
        }
        if (bad) continue;
        overlay::Path p;
        p.reserve(wp.nodes.size());
        for (const std::size_t idx : wp.nodes) p.push_back(nodes[idx]);
        kept.push_back(std::move(p));
      }
      res.paths_installed += kept.size();

      // Last-resort fallback: src -> reserved relay -> dst, choosing the
      // relay with the lowest total reported RTT.
      overlay::Path fallback;
      double best = std::numeric_limits<double>::infinity();
      for (const sim::NodeId lr : last_resort_nodes) {
        const LinkState* l1 = view.link(nodes[a], lr);
        const LinkState* l2 = view.link(lr, nodes[b]);
        if (l1 == nullptr || l2 == nullptr) continue;
        const double cost =
            static_cast<double>(l1->rtt) + static_cast<double>(l2->rtt);
        if (cost < best) {
          best = cost;
          fallback = overlay::Path{nodes[a], lr, nodes[b]};
        }
      }
      if (kept.empty() && !fallback.empty()) ++res.last_resort_pairs;
      pib->set_paths(nodes[a], nodes[b], std::move(kept));
      if (!fallback.empty()) {
        pib->set_last_resort(nodes[a], nodes[b], std::move(fallback));
      }
    }
  }
  return res;
}

}  // namespace livenet::brain
