#pragma once

#include <vector>

#include "brain/global_discovery.h"
#include "brain/ksp.h"
#include "brain/pib.h"
#include "brain/routing_graph.h"

// Global Routing module (paper §4.3): every cycle (10 minutes in
// production), rebuild the abstracted graph from the Global Discovery
// view, run KSP (k = 3) for every node pair, filter paths violating the
// constraints (> 3 hops, overloaded links/nodes), and install the
// result in the PIB. Pairs left with no valid path get a last-resort
// path through one of the reserved, well-connected last-resort nodes.
namespace livenet::brain {

struct GlobalRoutingConfig {
  std::size_t k = 3;           ///< candidate paths per pair
  int max_hops = 3;            ///< constraint (iii)
  double overload_threshold = 0.8;  ///< constraints (i)/(ii) proxy
  WeightParams weights;
};

class GlobalRouting {
 public:
  struct Result {
    std::size_t pairs = 0;
    std::size_t paths_installed = 0;
    std::size_t last_resort_pairs = 0;
  };

  GlobalRouting() : GlobalRouting(GlobalRoutingConfig()) {}
  explicit GlobalRouting(const GlobalRoutingConfig& cfg) : cfg_(cfg) {}

  /// `nodes`: the regular overlay nodes; `last_resort_nodes`: the
  /// reserved relays (excluded from regular routing). Installs paths
  /// into `pib`.
  Result recompute(const GlobalDiscovery& view,
                   const std::vector<sim::NodeId>& nodes,
                   const std::vector<sim::NodeId>& last_resort_nodes,
                   Pib* pib) const;

  /// Builds the abstracted weight graph over `nodes` (exposed for tests
  /// and the routing microbenchmark).
  RoutingGraph build_graph(const GlobalDiscovery& view,
                           const std::vector<sim::NodeId>& nodes) const;

  const GlobalRoutingConfig& config() const { return cfg_; }

 private:
  GlobalRoutingConfig cfg_;
};

}  // namespace livenet::brain
