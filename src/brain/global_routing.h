#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "brain/global_discovery.h"
#include "brain/ksp.h"
#include "brain/pib.h"
#include "brain/routing_graph.h"
#include "util/thread_pool.h"

// Global Routing module (paper §4.3): every cycle (10 minutes in
// production), rebuild the abstracted graph from the Global Discovery
// view, run KSP (k = 3) for every node pair, filter paths violating the
// constraints (> 3 hops, overloaded links/nodes), and install the
// result in the PIB. Pairs left with no valid path get a last-resort
// path through one of the reserved, well-connected last-resort nodes.
//
// The solve pipeline is batched per source (one KspSolver amortizes
// shortest-path trees across every destination) and installs through a
// double-buffered scratch Pib that is swapped in atomically at the end
// of the cycle. With `incremental` enabled, cycles between periodic
// full refreshes re-solve only the sources whose installed paths touch
// the Discovery dirty set (see GlobalDiscovery::dirty_since); skipped
// sources keep their previous cycle's routes. Incremental results are
// an approximation by design — the full refresh bounds the staleness.
//
// Parallel Brain (DESIGN.md): with `threads > 1` the per-source solves
// fan out over a persistent worker pool. Every source is an independent
// subproblem, each worker owns its own solver (scratch, arenas, tree
// caches), and worker outputs are buffered and merged into the scratch
// Pib in source-index order — so the installed routes are byte-for-byte
// identical for ANY thread count, including 1. The module also
// warm-starts across cycles: the weight graph is rebuilt in place and
// keeps its version when nothing moved, which lets the per-worker
// solvers carry their forward-SPT caches (and all scratch capacity)
// from cycle to cycle.
namespace livenet::brain {

struct GlobalRoutingConfig {
  std::size_t k = 3;           ///< candidate paths per pair
  int max_hops = 3;            ///< constraint (iii)
  double overload_threshold = 0.8;  ///< constraints (i)/(ii) proxy
  WeightParams weights;
  bool incremental = false;    ///< dirty-set source skipping
  /// Every Nth incremental cycle becomes a full refresh (0 disables
  /// the cadence and trusts the dirty set alone).
  std::size_t full_refresh_every = 6;
  /// Worker threads for the per-source KSP fan-out. 1 (the default)
  /// solves inline on the caller with no pool and no buffering —
  /// exactly the pre-parallel behavior. Output is byte-identical for
  /// every value.
  std::size_t threads = 1;
};

class GlobalRouting {
 public:
  struct Result {
    std::size_t pairs = 0;            ///< all (src, dst) pairs this cycle
    std::size_t paths_installed = 0;  ///< kept candidate paths (solved pairs)
    std::size_t last_resort_pairs = 0;
    std::size_t pairs_solved = 0;   ///< pairs actually re-solved
    std::size_t pairs_skipped = 0;  ///< pairs kept from the previous cycle
    std::size_t sources_solved = 0;
    std::size_t sources_skipped = 0;
    bool full_refresh = true;  ///< false when the dirty set pruned sources
    // Wall-clock phase split (telemetry; zero for recompute_reference).
    // graph_build covers view -> weight graph plus cycle planning
    // (dirty scan, constraint tables); solve is the per-source KSP work
    // — fan-out wall time when threads > 1, the inline solve/install
    // loop when threads == 1; install is the ordered merge (threads >
    // 1) plus the double-buffer swap.
    double graph_build_ms = 0.0;
    double solve_ms = 0.0;
    double install_ms = 0.0;
  };

  GlobalRouting() : GlobalRouting(GlobalRoutingConfig()) {}
  explicit GlobalRouting(const GlobalRoutingConfig& cfg) : cfg_(cfg) {}

  /// `nodes`: the regular overlay nodes; `last_resort_nodes`: the
  /// reserved relays (excluded from regular routing). Installs paths
  /// into `pib`. Non-const: the module carries the double-buffer
  /// scratch, the warm-start graph/solver state and the incremental
  /// bookkeeping across cycles.
  Result recompute(const GlobalDiscovery& view,
                   const std::vector<sim::NodeId>& nodes,
                   const std::vector<sim::NodeId>& last_resort_nodes,
                   Pib* pib);

  /// The original per-pair implementation, preserved verbatim as the
  /// oracle for the differential ctests: recompute() on a fresh Pib
  /// must install byte-identical contents.
  Result recompute_reference(const GlobalDiscovery& view,
                             const std::vector<sim::NodeId>& nodes,
                             const std::vector<sim::NodeId>& last_resort_nodes,
                             Pib* pib) const;

  /// Builds the abstracted weight graph over `nodes` (exposed for tests
  /// and the routing microbenchmark).
  RoutingGraph build_graph(const GlobalDiscovery& view,
                           const std::vector<sim::NodeId>& nodes) const;

  const GlobalRoutingConfig& config() const { return cfg_; }

 private:
  /// Fills the dense n*n weight matrix for `nodes` by walking the
  /// Discovery link table once (O(nodes + links) hash probes instead
  /// of the old O(n^2) per-pair link() probing). `idx_of` maps node id
  /// -> dense index, `loads` the per-index node loads.
  void fill_graph_cells(
      const GlobalDiscovery& view, const std::vector<sim::NodeId>& nodes,
      const std::unordered_map<sim::NodeId, std::size_t>& idx_of,
      const std::vector<double>& loads, std::vector<double>* cells) const;

  GlobalRoutingConfig cfg_;

  // Double-buffer + incremental state (see recompute()).
  Pib scratch_;
  std::uint64_t consumed_dirty_seq_ = 0;
  std::size_t cycles_since_full_ = 0;
  bool has_state_ = false;
  std::vector<sim::NodeId> prev_nodes_;
  std::vector<sim::NodeId> prev_last_resort_;

  // Warm-start state: the weight graph persists and is rebuilt in
  // place (version moves only when a cell changed), so the per-worker
  // solvers' tree caches stay valid across quiet cycles. All scratch
  // below keeps its capacity for the lifetime of the module.
  RoutingGraph graph_{0};
  std::vector<double> cells_;  ///< rebuild fill buffer (swapped in/out)
  std::unordered_map<sim::NodeId, std::size_t> idx_of_;
  std::vector<double> loads_;
  std::vector<std::uint8_t> node_over_;
  std::vector<std::uint8_t> link_over_;
  std::vector<double> lr_to_;
  std::vector<double> lr_from_;
  std::vector<overlay::Path> kept_;
  std::vector<std::uint32_t> to_solve_;

  // Parallel fan-out: one solver per worker (index-aligned with the
  // pool's worker ids), created on first use, rebound every cycle.
  std::vector<KspSolver> workers_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace livenet::brain
