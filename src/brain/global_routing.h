#pragma once

#include <cstdint>
#include <vector>

#include "brain/global_discovery.h"
#include "brain/ksp.h"
#include "brain/pib.h"
#include "brain/routing_graph.h"

// Global Routing module (paper §4.3): every cycle (10 minutes in
// production), rebuild the abstracted graph from the Global Discovery
// view, run KSP (k = 3) for every node pair, filter paths violating the
// constraints (> 3 hops, overloaded links/nodes), and install the
// result in the PIB. Pairs left with no valid path get a last-resort
// path through one of the reserved, well-connected last-resort nodes.
//
// The solve pipeline is batched per source (one KspSolver amortizes
// shortest-path trees across every destination) and installs through a
// double-buffered scratch Pib that is swapped in atomically at the end
// of the cycle. With `incremental` enabled, cycles between periodic
// full refreshes re-solve only the sources whose installed paths touch
// the Discovery dirty set (see GlobalDiscovery::dirty_since); skipped
// sources keep their previous cycle's routes. Incremental results are
// an approximation by design — the full refresh bounds the staleness.
namespace livenet::brain {

struct GlobalRoutingConfig {
  std::size_t k = 3;           ///< candidate paths per pair
  int max_hops = 3;            ///< constraint (iii)
  double overload_threshold = 0.8;  ///< constraints (i)/(ii) proxy
  WeightParams weights;
  bool incremental = false;    ///< dirty-set source skipping
  /// Every Nth incremental cycle becomes a full refresh (0 disables
  /// the cadence and trusts the dirty set alone).
  std::size_t full_refresh_every = 6;
};

class GlobalRouting {
 public:
  struct Result {
    std::size_t pairs = 0;            ///< all (src, dst) pairs this cycle
    std::size_t paths_installed = 0;  ///< kept candidate paths (solved pairs)
    std::size_t last_resort_pairs = 0;
    std::size_t pairs_solved = 0;   ///< pairs actually re-solved
    std::size_t pairs_skipped = 0;  ///< pairs kept from the previous cycle
    std::size_t sources_solved = 0;
    std::size_t sources_skipped = 0;
    bool full_refresh = true;  ///< false when the dirty set pruned sources
  };

  GlobalRouting() : GlobalRouting(GlobalRoutingConfig()) {}
  explicit GlobalRouting(const GlobalRoutingConfig& cfg) : cfg_(cfg) {}

  /// `nodes`: the regular overlay nodes; `last_resort_nodes`: the
  /// reserved relays (excluded from regular routing). Installs paths
  /// into `pib`. Non-const: the module carries the double-buffer
  /// scratch and the incremental bookkeeping across cycles.
  Result recompute(const GlobalDiscovery& view,
                   const std::vector<sim::NodeId>& nodes,
                   const std::vector<sim::NodeId>& last_resort_nodes,
                   Pib* pib);

  /// The original per-pair implementation, preserved verbatim as the
  /// oracle for the differential ctests: recompute() on a fresh Pib
  /// must install byte-identical contents.
  Result recompute_reference(const GlobalDiscovery& view,
                             const std::vector<sim::NodeId>& nodes,
                             const std::vector<sim::NodeId>& last_resort_nodes,
                             Pib* pib) const;

  /// Builds the abstracted weight graph over `nodes` (exposed for tests
  /// and the routing microbenchmark).
  RoutingGraph build_graph(const GlobalDiscovery& view,
                           const std::vector<sim::NodeId>& nodes) const;

  const GlobalRoutingConfig& config() const { return cfg_; }

 private:
  GlobalRoutingConfig cfg_;

  // Double-buffer + incremental state (see recompute()).
  Pib scratch_;
  std::uint64_t consumed_dirty_seq_ = 0;
  std::size_t cycles_since_full_ = 0;
  bool has_state_ = false;
  std::vector<sim::NodeId> prev_nodes_;
  std::vector<sim::NodeId> prev_last_resort_;
};

}  // namespace livenet::brain
