#include "brain/ksp.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace livenet::brain {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Array-based Dijkstra core.
//
// Selection: the unsettled node with the smallest (dist, index) by
// linear scan. This settles nodes in *exactly* the order of the
// reference lazy-deletion heap: with non-negative weights every
// unsettled node with a finite distance has a live heap entry equal to
// its current distance, so the heap pop is the minimum (dist, index)
// pair — which is what the scan picks (strict `<` keeps the lowest
// index among ties). Relaxation visits CSR columns in ascending order,
// matching the reference's dense `for (v = 0; v < n; ++v)` scan, and
// only strict improvements write dist/prev. Identical settle order +
// identical relaxation order + identical update rule => bit-identical
// dist, prev, and extracted paths.
//
// Settled nodes need no guard in the relaxation loop: if v settled
// before u then dist[v] <= dist[u], so dist[u] + w >= dist[v] can never
// be a strict improvement.

struct CoreBans {
  const std::uint8_t* banned_node = nullptr;  ///< may be null
  /// Banned first hops out of the search source (Yen spur edges all
  /// originate at the spur node, so the general edge check collapses
  /// to a tiny membership test applied only while relaxing the source).
  const std::vector<std::uint32_t>* banned_next = nullptr;
  /// Arbitrary banned directed edges (public shortest_path API only).
  const std::vector<std::pair<std::size_t, std::size_t>>* banned_edges =
      nullptr;
  /// Bound pruning (Yen spur fallback): when `h_to_dst` is set, a write
  /// of nd into v is skipped if nd + h(v) > prune_bound, where
  /// h(v) = h_to_dst[v] (the cached unrestricted tree distance v..dst
  /// read from the solver's transposed matrix — one contiguous column,
  /// not a stride-n probe; a lower bound on any banned continuation;
  /// 0 when v's tree is not built yet) and prune_bound is the cost of a
  /// known valid path. Such writes can never participate in dst's final
  /// dist/prev chain — every chain write extends to dst within the
  /// bound — so dst's extracted path and cost bits are unchanged while
  /// hopeless nodes stay at infinity and are never settled.
  const double* h_to_dst = nullptr;
  const std::uint8_t* h_built = nullptr;
  double prune_bound = kInf;
};

/// Runs Dijkstra from `src`; stops after settling `stop` (pass n for a
/// full tree). `dist`/`prev`/`settled` must each hold n elements.
///
/// Initialization contract: with `touched == nullptr` the arrays are
/// fully (re)initialized here (one-shot callers). With a `touched`
/// list, the arrays must already be at baseline (+inf / n / 0) except
/// for the cells named by the list — the cells the *previous* call
/// wrote — which are reset here, and the list is rebuilt for the next
/// call. The pruned spur fallback writes a handful of cells, so this
/// turns three O(n) fills into O(cells written) resets.
///
/// Node selection scans the frontier (touched ∧ unsettled) for the
/// minimal (dist, index). The reference scans all n indices ascending
/// and keeps the first strict minimum — the same element, since nodes
/// outside the frontier all sit at +inf and can never be selected
/// before a finite one, and when only +inf remains both forms stop.
void dijkstra_core(const RoutingGraph::CsrView& csr, std::size_t n,
                   std::size_t src, std::size_t stop, const CoreBans& bans,
                   double* dist, std::uint32_t* prev, std::uint8_t* settled,
                   std::vector<std::uint32_t>* frontier,
                   std::vector<std::uint32_t>* touched) {
  if (touched != nullptr) {
    for (const std::uint32_t v : *touched) {
      dist[v] = kInf;
      prev[v] = static_cast<std::uint32_t>(n);
      settled[v] = 0;
    }
    touched->clear();
  } else {
    std::fill(dist, dist + n, kInf);
    std::fill(prev, prev + n, static_cast<std::uint32_t>(n));
    std::fill(settled, settled + n, std::uint8_t{0});
  }
  frontier->clear();
  dist[src] = 0.0;
  frontier->push_back(static_cast<std::uint32_t>(src));
  if (touched != nullptr) touched->push_back(static_cast<std::uint32_t>(src));
  for (;;) {
    double best = kInf;
    std::size_t u = n;
    std::size_t upos = 0;
    for (std::size_t i = 0; i < frontier->size(); ++i) {
      const std::uint32_t v = (*frontier)[i];
      const double dv = dist[v];
      if (dv < best || (dv == best && v < u)) {
        best = dv;
        u = v;
        upos = i;
      }
    }
    if (u == n) break;  // queue exhausted
    (*frontier)[upos] = frontier->back();
    frontier->pop_back();
    settled[u] = 1;
    if (u == stop) break;  // reference breaks before relaxing dst
    const std::uint32_t row_end = csr.row_start[u + 1];
    const bool at_src = (u == src);
    const double du = dist[u];
    for (std::uint32_t e = csr.row_start[u]; e < row_end; ++e) {
      const std::uint32_t v = csr.col[e];
      if (bans.banned_node != nullptr && bans.banned_node[v] != 0) continue;
      if (at_src && bans.banned_next != nullptr) {
        bool banned = false;
        for (const std::uint32_t b : *bans.banned_next) {
          if (b == v) {
            banned = true;
            break;
          }
        }
        if (banned) continue;
      }
      if (bans.banned_edges != nullptr && !bans.banned_edges->empty() &&
          std::find(bans.banned_edges->begin(), bans.banned_edges->end(),
                    std::make_pair(static_cast<std::size_t>(u),
                                   static_cast<std::size_t>(v))) !=
              bans.banned_edges->end()) {
        continue;
      }
      const double nd = du + csr.weight[e];
      if (nd < dist[v]) {
        if (bans.h_to_dst != nullptr) {
          const double hv = bans.h_built[v] != 0 ? bans.h_to_dst[v] : 0.0;
          if (nd + hv > bans.prune_bound) continue;
        }
        if (dist[v] == kInf) {  // first touch: enters frontier + undo list
          frontier->push_back(v);
          if (touched != nullptr) touched->push_back(v);
        }
        dist[v] = nd;
        prev[v] = u;
      }
    }
  }
}

/// dst..src backward walk over a prev row, reversed into `out`.
void extract_path(const std::uint32_t* prev, std::size_t src,
                  std::size_t dst, std::vector<std::size_t>* out) {
  out->clear();
  for (std::size_t cur = dst;;) {
    out->push_back(cur);
    if (cur == src) break;
    cur = prev[cur];
  }
  std::reverse(out->begin(), out->end());
}

}  // namespace

// ---------------------------------------------------------------------------
// Public single-pair / single-source entry points (new core).

std::optional<WeightedPath> shortest_path(
    const RoutingGraph& g, std::size_t src, std::size_t dst,
    const std::vector<bool>* banned_nodes,
    const std::vector<std::pair<std::size_t, std::size_t>>* banned_edges) {
  const std::size_t n = g.size();
  if (src >= n || dst >= n) return std::nullopt;
  if (banned_nodes != nullptr &&
      ((*banned_nodes)[src] || (*banned_nodes)[dst])) {
    return std::nullopt;
  }
  if (src == dst) return WeightedPath{{src}, 0.0};

  std::vector<std::uint8_t> banned;
  CoreBans bans;
  if (banned_nodes != nullptr) {
    banned.assign(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      banned[v] = (*banned_nodes)[v] ? 1 : 0;
    }
    bans.banned_node = banned.data();
  }
  bans.banned_edges = banned_edges;

  std::vector<double> dist(n);
  std::vector<std::uint32_t> prev(n);
  std::vector<std::uint8_t> settled(n);
  std::vector<std::uint32_t> frontier;
  dijkstra_core(g.csr(), n, src, dst, bans, dist.data(), prev.data(),
                settled.data(), &frontier, nullptr);
  if (dist[dst] == kInf) return std::nullopt;
  WeightedPath out;
  out.cost = dist[dst];
  extract_path(prev.data(), src, dst, &out.nodes);
  return out;
}

ShortestPathTree shortest_path_tree(const RoutingGraph& g, std::size_t src) {
  const std::size_t n = g.size();
  ShortestPathTree t;
  t.dist.assign(n, kInf);
  t.prev.assign(n, n);
  if (src >= n) return t;
  std::vector<std::uint32_t> prev(n);
  std::vector<std::uint8_t> settled(n);
  std::vector<std::uint32_t> frontier;
  dijkstra_core(g.csr(), n, src, n, CoreBans{}, t.dist.data(), prev.data(),
                settled.data(), &frontier, nullptr);
  for (std::size_t v = 0; v < n; ++v) t.prev[v] = prev[v];
  return t;
}

std::optional<WeightedPath> ShortestPathTree::path_to(std::size_t src,
                                                      std::size_t dst) const {
  const std::size_t n = dist.size();
  if (src >= n || dst >= n) return std::nullopt;
  if (src == dst) return WeightedPath{{src}, 0.0};
  if (dist[dst] == kInf) return std::nullopt;
  WeightedPath out;
  out.cost = dist[dst];
  for (std::size_t cur = dst; cur != n; cur = prev[cur]) {
    out.nodes.push_back(cur);
    if (cur == src) break;
  }
  std::reverse(out.nodes.begin(), out.nodes.end());
  return out;
}

std::vector<WeightedPath> k_shortest_paths(const RoutingGraph& g,
                                           std::size_t src, std::size_t dst,
                                           std::size_t k) {
  std::vector<WeightedPath> out;
  if (k == 0 || src >= g.size() || dst >= g.size()) return out;
  KspSolver solver(g);
  solver.set_source(src);
  solver.k_shortest(dst, k, &out);
  return out;
}

// ---------------------------------------------------------------------------
// KspSolver.

void KspSolver::rebind(const RoutingGraph& g) {
  const bool same_graph = (g_ == &g);
  const std::size_t n = g.size();
  g_ = &g;
  if (n != n_) {
    n_ = n;
    tree_dist_.resize(n_ * n_);
    tree_dist_t_.resize(n_ * n_);
    tree_prev_.resize(n_ * n_);
    tree_settled_.resize(n_);
    tree_built_.assign(n_, 0);
    built_count_ = 0;
    ws_.bind(n_);
    bound_version_ = g.version();
    src_set_ = false;
    return;
  }
  if (!same_graph || bound_version_ != g.version()) {
    // Graph moved: every cached tree is stale. Drop validity flags
    // only — the n*n tree rows and the workspace keep their storage.
    std::fill(tree_built_.begin(), tree_built_.end(), std::uint8_t{0});
    built_count_ = 0;
    bound_version_ = g.version();
    src_set_ = false;
  }
}

void KspSolver::ensure_tree(std::size_t root) {
  if (tree_built_[root] != 0) return;
  // Full-fill mode (touched = nullptr): the row holds stale data from a
  // previous cycle. tree_settled_ keeps the fill away from ws_.settled,
  // whose baseline the fallback's touched list maintains.
  dijkstra_core(g_->csr(), n_, root, n_, CoreBans{},
                tree_dist_.data() + root * n_, tree_prev_.data() + root * n_,
                tree_settled_.data(), &ws_.frontier, nullptr);
  // Mirror the fresh row into the transposed matrix (one O(n) scatter
  // per build, amortized over every stitch scan that reads the column).
  const double* row = tree_dist_.data() + root * n_;
  double* col = tree_dist_t_.data() + root;
  for (std::size_t d = 0; d < n_; ++d) col[d * n_] = row[d];
  tree_built_[root] = 1;
  ++built_count_;
}

void KspSolver::set_source(std::size_t src) {
  src_ = src;
  src_set_ = true;
  ensure_tree(src);
}

const double* KspSolver::source_dist() const {
  return tree_dist_.data() + src_ * n_;
}

std::optional<WeightedPath> KspSolver::first_path(std::size_t dst) const {
  if (!src_set_ || dst >= n_) return std::nullopt;
  if (dst == src_) return WeightedPath{{src_}, 0.0};
  const double* d = tree_dist_.data() + src_ * n_;
  if (d[dst] == kInf) return std::nullopt;
  WeightedPath out;
  out.cost = d[dst];
  extract_path(tree_prev_.data() + src_ * n_, src_, dst, &out.nodes);
  return out;
}

std::size_t KspSolver::acquire_slot() {
  if (arena_used_ == arena_.size()) arena_.emplace_back();
  arena_[arena_used_].clear();
  return arena_used_++;
}

bool KspSolver::seen_insert(std::size_t slot) {
  const std::vector<std::size_t>& nodes = arena_[slot];
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const std::size_t v : nodes) {
    h ^= static_cast<std::uint64_t>(v) + 0x9E3779B97F4A7C15ull + (h << 6) +
         (h >> 2);
  }
  for (const SeenSig& s : seen_) {  // exact compare on signature hit
    if (s.hash == h && arena_[s.slot] == nodes) return false;
  }
  seen_.push_back(
      SeenSig{h, static_cast<std::uint32_t>(slot)});
  return true;
}

bool KspSolver::spur_search(std::size_t spur, std::size_t dst,
                            WeightedPath* out) {
  ensure_tree(spur);
  const double* d = tree_dist_.data() + spur * n_;
  const std::uint32_t* p = tree_prev_.data() + spur * n_;
  if (d[dst] == kInf) return false;  // unreachable even without bans

  // Fast path: if the *unrestricted* tree path from the spur avoids
  // every banned element, the banned-graph Dijkstra would settle the
  // same chain with the same (dist, prev) bits, so the tree path IS the
  // spur result (the bans only remove strictly worse alternatives).
  // All banned edges originate at the spur, so only the first hop needs
  // the edge check, and tree paths are simple so later edges are safe.
  bool clean = true;
  std::size_t first_hop = n_;
  for (std::size_t cur = dst; cur != spur;) {
    if (ws_.banned_node[cur] != 0) {
      clean = false;
      break;
    }
    const std::size_t prv = p[cur];
    if (prv == spur) first_hop = cur;
    cur = prv;
  }
  if (clean) {
    for (const std::uint32_t b : ws_.banned_next) {
      if (b == first_hop) {
        clean = false;
        break;
      }
    }
  }
  if (clean) {
      out->cost = d[dst];
    extract_path(p, spur, dst, &out->nodes);
    return true;
  }

  // Stitch path: answer from the cached per-node trees when the best
  // first hop wins strictly and its tree continuation is clean.
  bool unreachable = false;
  double bound = kInf;
  if (stitch_search(spur, dst, out, &unreachable, &bound)) {
    return !unreachable;
  }

  // Slow path: banned Dijkstra with early exit at dst, pruned by the
  // stitch's best clean candidate when it found one.
  CoreBans bans;
  bans.banned_node = ws_.banned_node.data();
  bans.banned_next = &ws_.banned_next;
  if (bound < kInf) {
    bans.h_to_dst = tree_dist_t_.data() + dst * n_;
    bans.h_built = tree_built_.data();
    // Margin: nd + h(v) re-sums a path the final chain accumulates
    // left-to-right, so on the chain the two sums agree only to within
    // a few ulps of rounding — and the bound frequently *equals* the
    // final distance. Pruning less is always safe; pad the bound by
    // far more than the worst-case re-summation error so chain writes
    // are never pruned (with integer weights the sums are exact and
    // the pad merely relaxes the cut).
    bans.prune_bound = bound + 1e-12 * (bound + 1.0);
  }
  dijkstra_core(g_->csr(), n_, spur, dst, bans, ws_.dist.data(),
                ws_.prev.data(), ws_.settled.data(), &ws_.frontier,
                &ws_.touched);
  if (ws_.dist[dst] == kInf) return false;
  out->cost = ws_.dist[dst];
  extract_path(ws_.prev.data(), spur, dst, &out->nodes);
  return true;
}

bool KspSolver::stitch_search(std::size_t spur, std::size_t dst,
                              WeightedPath* out, bool* unreachable,
                              double* bound) {
  // A banned spur search is a multi-source Dijkstra over the allowed
  // first hops: relaxing the spur seeds every unbanned neighbor v with
  // d(v) = w(spur,v) and the search proceeds obliviously to which hop
  // seeded what. Since the solver caches the unrestricted tree of every
  // node, each hop's best *unrestricted* continuation is already known:
  //   stitch(v) = leftfold(w(spur,v), tree path v..dst)
  // re-accumulated left-to-right — the exact addition order Dijkstra
  // uses, so the bits match the reference when the path is usable.
  //
  // If the minimal stitch belongs to a hop whose tree path avoids every
  // banned node and the spur itself ("clean"), and it beats every other
  // hop's lower bound strictly (clean stitches are exact values, dirty
  // ones lower-bound the true banned cost via that hop), then the
  // banned Dijkstra provably returns that very path: any equal-cost
  // rival write into the winning chain would imply a rival path of cost
  // <= the winner, contradicting strictness — so every dist/prev write
  // along the chain comes from the winning hop's own relaxations, in
  // tree order. Exact ties and threatening dirty hops fall back to the
  // real banned Dijkstra (returns false). The argument is exact under
  // error-free arithmetic (the crafted tie tests use small integers,
  // where double arithmetic is exact); with rounding, cross-hop
  // comparisons could in principle mis-order sums within an ulp — the
  // random-weight case, where sums never land that close.
  *unreachable = false;
  *bound = kInf;
  const auto& csr = g_->csr();
  const std::uint32_t row_end = csr.row_start[spur + 1];
  // Cost gate (performance only — stitch and fallback return identical
  // results): every candidate hop needs its tree, and one tree build
  // costs a full Dijkstra, i.e. more than the fallback search itself.
  // The builds are cached, so a solver serving many destinations (the
  // recompute cycle) amortizes them to nothing — but a single-shot
  // query would build a cold cache for one answer, so it skips straight
  // to the fallback.
  if (pairs_served_ < 8) return false;
  double best = kInf;          // minimal clean stitch (exact value)
  std::size_t best_v = n_;
  bool tie = false;            // exact tie on the current best
  double dirty_lb = kInf;      // minimal lower bound among dirty hops
  // Classification of one surviving hop: walk its tree path for
  // cleanliness, then re-fold the exact cost. The final best/tie/
  // dirty_lb triple is visit-order independent (best is a min, tie
  // means >= 2 hops achieve it, and a dirty hop is recorded iff its
  // bound can threaten the final best), which is what licenses the two
  // scan shapes below to share it.
  const auto consider = [&](double w, std::uint32_t v, double quick) {
    const std::uint32_t* pv =
        tree_prev_.data() + static_cast<std::size_t>(v) * n_;
    bool clean = true;
    stitch_nodes_.clear();
    for (std::size_t cur = dst; cur != v;) {
      if (cur == spur || ws_.banned_node[cur] != 0) {
        clean = false;
        break;
      }
      stitch_nodes_.push_back(cur);
      cur = pv[cur];
    }
    if (!clean) {
      if (quick < dirty_lb) dirty_lb = quick;
      return;
    }
    double c = w;
    std::size_t from = v;
    for (std::size_t j = stitch_nodes_.size(); j-- > 0;) {
      c += g_->weight(from, stitch_nodes_[j]);
      from = stitch_nodes_[j];
    }
    if (c < best) {
      best = c;
      best_v = v;
      tie = false;
    } else if (c == best) {
      tie = true;
    }
  };
  if (built_count_ == n_) {
    // Steady state (every tree cached, the warm cycle shape): mask the
    // banned hops' transposed cells with +inf up front, so the hot loop
    // runs with no per-hop ban or cache checks — the dense weight row
    // and the transposed dist column stream sequentially (no CSR column
    // gather), leaving one add, one compare, one predictable branch per
    // hop. Banned hops never contribute to best/tie/dirty_lb, so
    // masking them is behavior-free; the undo log restores the cells
    // (in reverse, in case a hop was masked twice).
    double* dtm = tree_dist_t_.data() + dst * n_;
    mask_saved_.clear();
    const auto mask_hop = [&](std::uint32_t v) {
      mask_saved_.push_back(Cand{dtm[v], v});
      dtm[v] = kInf;
    };
    for (const std::uint32_t v : banned_roots_) mask_hop(v);
    for (const std::uint32_t v : ws_.banned_next) mask_hop(v);
    for (std::uint32_t e = csr.row_start[spur]; e < row_end; ++e) {
      const std::uint32_t v = csr.col[e];
      const double dvd = dtm[v];
      if (dvd == kInf) continue;  // masked, or cannot reach dst at all
      // Strictly-worse hops can't affect the outcome (their true banned
      // cost is bounded below by this sum); skip the walk.
      const double quick = csr.weight[e] + dvd;
      if (quick > best) continue;
      consider(csr.weight[e], v, quick);
    }
    for (std::size_t j = mask_saved_.size(); j-- > 0;) {
      dtm[mask_saved_[j].slot] = mask_saved_[j].cost;
    }
  } else {
    // Cold path: trees may still be missing; check bans per hop.
    const double* dt = tree_dist_t_.data() + dst * n_;
    for (std::uint32_t e = csr.row_start[spur]; e < row_end; ++e) {
      const std::uint32_t v = csr.col[e];
      if (ws_.banned_node[v] != 0) continue;
      if (tree_built_[v] == 0) ensure_tree(v);
      const double dvd = dt[v];
      if (dvd == kInf) continue;  // hop cannot reach dst at all
      const double quick = csr.weight[e] + dvd;
      if (quick > best) continue;
      bool banned = false;
      for (const std::uint32_t b : ws_.banned_next) {
        if (b == v) {
          banned = true;
          break;
        }
      }
      if (banned) continue;
      consider(csr.weight[e], v, quick);
    }
  }
  *bound = best;  // a valid banned-graph path cost (or +inf)
  if (best_v == n_) {
    if (dirty_lb == kInf) {
      // No first hop reaches dst even unrestricted => unreachable in
      // the (more constrained) banned graph too.
      *unreachable = true;
      return true;
    }
    return false;  // only dirty hops left; need the real search
  }
  if (tie || dirty_lb <= best) return false;
  // Re-walk the winner (the scratch walk above may have been
  // overwritten by later candidates).
  const std::uint32_t* pv =
      tree_prev_.data() + static_cast<std::size_t>(best_v) * n_;
  stitch_nodes_.clear();
  for (std::size_t cur = dst; cur != best_v; cur = pv[cur]) {
    stitch_nodes_.push_back(cur);
  }
  out->cost = best;
  out->nodes.clear();
  out->nodes.reserve(stitch_nodes_.size() + 2);
  out->nodes.push_back(spur);
  out->nodes.push_back(best_v);
  for (std::size_t j = stitch_nodes_.size(); j-- > 0;) {
    out->nodes.push_back(stitch_nodes_[j]);
  }
  return true;
}

void KspSolver::k_shortest(std::size_t dst, std::size_t k,
                           std::vector<WeightedPath>* out) {
  const std::size_t cnt = k_shortest_scratch(dst, k);
  out->clear();
  out->reserve(cnt);
  for (std::size_t i = 0; i < cnt; ++i) {
    out->push_back(WeightedPath{accepted_nodes(i), accepted_cost(i)});
  }
}

std::size_t KspSolver::k_shortest_scratch(std::size_t dst, std::size_t k) {
  arena_used_ = 0;
  accepted_.clear();
  heap_.clear();
  seen_.clear();
  if (k == 0) return 0;
  ++pairs_served_;

  // First (shortest) path, read off the source tree into an arena
  // slot (exactly first_path(), minus the per-call allocation).
  if (!src_set_ || dst >= n_) return 0;
  {
    const std::size_t slot = acquire_slot();
    std::vector<std::size_t>& nodes = arena_[slot];
    double cost = 0.0;
    if (dst == src_) {
      nodes.push_back(src_);
    } else {
      const double* d = tree_dist_.data() + src_ * n_;
      if (d[dst] == kInf) return 0;
      cost = d[dst];
      extract_path(tree_prev_.data() + src_ * n_, src_, dst, &nodes);
    }
    accepted_.push_back(Cand{cost, static_cast<std::uint32_t>(slot)});
    seen_insert(slot);
  }

  // Candidate pool: manual binary heap replicating
  // std::priority_queue's push/pop (push_back + push_heap, pop_heap +
  // pop_back with the same cost-only comparator), so equal-cost
  // candidates pop in the reference's order. The sift path of
  // push/pop_heap is decided by comparator outcomes alone, and the
  // comparator reads only the cost — moving slot handles instead of
  // whole WeightedPaths cannot reorder anything.
  const auto cost_greater = [](const Cand& a, const Cand& b) {
    return a.cost > b.cost;
  };

  while (accepted_.size() < k) {
    const std::vector<std::size_t>& last = arena_[accepted_.back().slot];
    double root_cost = 0.0;  // running prefix sum, same addition order
                             // as the reference's per-spur rescan
    for (std::size_t i = 0; i + 1 < last.size(); ++i) {
      const std::size_t spur = last[i];
      // Banned first hops: edges used by earlier accepted paths sharing
      // this root (they all start at the spur node).
      ws_.banned_next.clear();
      for (const Cand& acc : accepted_) {
        const std::vector<std::size_t>& pth = arena_[acc.slot];
        if (pth.size() > i + 1 &&
            std::equal(last.begin(),
                       last.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       pth.begin())) {
          ws_.banned_next.push_back(static_cast<std::uint32_t>(pth[i + 1]));
        }
      }
      // Ban root nodes (except the spur) to keep paths loopless. The
      // list mirror of the byte map feeds the stitch scan's masking.
      banned_roots_.clear();
      for (std::size_t j = 0; j < i; ++j) {
        ws_.banned_node[last[j]] = 1;
        banned_roots_.push_back(static_cast<std::uint32_t>(last[j]));
      }
      const bool found = spur_search(spur, dst, &spur_path_);
      for (std::size_t j = 0; j < i; ++j) ws_.banned_node[last[j]] = 0;

      if (found) {
        // Arena slots are deque elements: acquiring one never moves
        // `last` or any other live slot.
        const std::size_t slot = acquire_slot();
        std::vector<std::size_t>& total = arena_[slot];
        total.reserve(i + spur_path_.nodes.size());
        total.assign(last.begin(),
                     last.begin() + static_cast<std::ptrdiff_t>(i));
        total.insert(total.end(), spur_path_.nodes.begin(),
                     spur_path_.nodes.end());
        if (seen_insert(slot)) {
          heap_.push_back(
              Cand{root_cost + spur_path_.cost,
                   static_cast<std::uint32_t>(slot)});
          std::push_heap(heap_.begin(), heap_.end(), cost_greater);
        } else {
          --arena_used_;  // duplicate: hand the slot straight back
        }
      }
      root_cost += g_->weight(last[i], last[i + 1]);
    }
    if (heap_.empty()) break;
    std::pop_heap(heap_.begin(), heap_.end(), cost_greater);
    accepted_.push_back(heap_.back());
    heap_.pop_back();
  }
  return accepted_.size();
}

// ---------------------------------------------------------------------------
// Reference implementation: the original per-pair heap pipeline,
// preserved verbatim as the oracle for the differential ctests.

std::optional<WeightedPath> shortest_path_reference(
    const RoutingGraph& g, std::size_t src, std::size_t dst,
    const std::vector<bool>* banned_nodes,
    const std::vector<std::pair<std::size_t, std::size_t>>* banned_edges) {
  const std::size_t n = g.size();
  if (src >= n || dst >= n) return std::nullopt;
  if (banned_nodes != nullptr &&
      ((*banned_nodes)[src] || (*banned_nodes)[dst])) {
    return std::nullopt;
  }
  if (src == dst) return WeightedPath{{src}, 0.0};

  auto is_banned_edge = [banned_edges](std::size_t a, std::size_t b) {
    if (banned_edges == nullptr) return false;
    return std::find(banned_edges->begin(), banned_edges->end(),
                     std::make_pair(a, b)) != banned_edges->end();
  };

  std::vector<double> dist(n, kInf);
  std::vector<std::size_t> prev(n, n);
  using QItem = std::pair<double, std::size_t>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.emplace(0.0, src);

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (std::size_t v = 0; v < n; ++v) {
      if (!g.has_edge(u, v)) continue;
      if (banned_nodes != nullptr && (*banned_nodes)[v]) continue;
      if (is_banned_edge(u, v)) continue;
      const double nd = d + g.weight(u, v);
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
  if (dist[dst] == kInf) return std::nullopt;

  WeightedPath out;
  out.cost = dist[dst];
  for (std::size_t cur = dst; cur != n; cur = prev[cur]) {
    out.nodes.push_back(cur);
    if (cur == src) break;
  }
  std::reverse(out.nodes.begin(), out.nodes.end());
  return out;
}

ShortestPathTree shortest_path_tree_reference(const RoutingGraph& g,
                                              std::size_t src) {
  const std::size_t n = g.size();
  ShortestPathTree t;
  t.dist.assign(n, kInf);
  t.prev.assign(n, n);
  if (src >= n) return t;
  using QItem = std::pair<double, std::size_t>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  t.dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > t.dist[u]) continue;
    for (std::size_t v = 0; v < n; ++v) {
      if (!g.has_edge(u, v)) continue;
      const double nd = d + g.weight(u, v);
      if (nd < t.dist[v]) {
        t.dist[v] = nd;
        t.prev[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
  return t;
}

std::vector<WeightedPath> k_shortest_paths_reference(const RoutingGraph& g,
                                                     std::size_t src,
                                                     std::size_t dst,
                                                     std::size_t k) {
  std::vector<WeightedPath> result;
  if (k == 0) return result;
  auto first = shortest_path_reference(g, src, dst);
  if (!first.has_value()) return result;
  result.push_back(std::move(*first));

  // Candidate pool ordered by cost; dedup by node sequence.
  auto cmp = [](const WeightedPath& a, const WeightedPath& b) {
    return a.cost > b.cost;
  };
  std::priority_queue<WeightedPath, std::vector<WeightedPath>, decltype(cmp)>
      candidates(cmp);
  std::set<std::vector<std::size_t>> seen;
  seen.insert(result[0].nodes);

  std::vector<bool> banned_nodes(g.size(), false);

  while (result.size() < k) {
    const auto& last = result.back().nodes;
    // Spur from every node of the previous path except its tail.
    for (std::size_t i = 0; i + 1 < last.size(); ++i) {
      const std::size_t spur = last[i];
      std::vector<std::size_t> root(last.begin(),
                                    last.begin() +
                                        static_cast<std::ptrdiff_t>(i) + 1);

      // Ban edges used by earlier accepted paths sharing this root.
      std::vector<std::pair<std::size_t, std::size_t>> banned_edges;
      for (const auto& p : result) {
        if (p.nodes.size() > i + 1 &&
            std::equal(root.begin(), root.end(), p.nodes.begin())) {
          banned_edges.emplace_back(p.nodes[i], p.nodes[i + 1]);
        }
      }
      // Ban root nodes (except the spur) to keep paths loopless.
      std::fill(banned_nodes.begin(), banned_nodes.end(), false);
      for (std::size_t j = 0; j < i; ++j) banned_nodes[root[j]] = true;

      const auto spur_path =
          shortest_path_reference(g, spur, dst, &banned_nodes, &banned_edges);
      if (!spur_path.has_value()) continue;

      WeightedPath total;
      total.nodes = root;
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin() + 1,
                         spur_path->nodes.end());
      double root_cost = 0.0;
      for (std::size_t j = 0; j < i; ++j) {
        root_cost += g.weight(last[j], last[j + 1]);
      }
      total.cost = root_cost + spur_path->cost;
      if (seen.insert(total.nodes).second) {
        candidates.push(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(candidates.top());
    candidates.pop();
  }
  return result;
}

}  // namespace livenet::brain
