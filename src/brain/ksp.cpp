#include "brain/ksp.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace livenet::brain {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::optional<WeightedPath> shortest_path(
    const RoutingGraph& g, std::size_t src, std::size_t dst,
    const std::vector<bool>* banned_nodes,
    const std::vector<std::pair<std::size_t, std::size_t>>* banned_edges) {
  const std::size_t n = g.size();
  if (src >= n || dst >= n) return std::nullopt;
  if (banned_nodes != nullptr &&
      ((*banned_nodes)[src] || (*banned_nodes)[dst])) {
    return std::nullopt;
  }
  if (src == dst) return WeightedPath{{src}, 0.0};

  auto is_banned_edge = [banned_edges](std::size_t a, std::size_t b) {
    if (banned_edges == nullptr) return false;
    return std::find(banned_edges->begin(), banned_edges->end(),
                     std::make_pair(a, b)) != banned_edges->end();
  };

  std::vector<double> dist(n, kInf);
  std::vector<std::size_t> prev(n, n);
  using QItem = std::pair<double, std::size_t>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.emplace(0.0, src);

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (std::size_t v = 0; v < n; ++v) {
      if (!g.has_edge(u, v)) continue;
      if (banned_nodes != nullptr && (*banned_nodes)[v]) continue;
      if (is_banned_edge(u, v)) continue;
      const double nd = d + g.weight(u, v);
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
  if (dist[dst] == kInf) return std::nullopt;

  WeightedPath out;
  out.cost = dist[dst];
  for (std::size_t cur = dst; cur != n; cur = prev[cur]) {
    out.nodes.push_back(cur);
    if (cur == src) break;
  }
  std::reverse(out.nodes.begin(), out.nodes.end());
  return out;
}

ShortestPathTree shortest_path_tree(const RoutingGraph& g, std::size_t src) {
  const std::size_t n = g.size();
  ShortestPathTree t;
  t.dist.assign(n, kInf);
  t.prev.assign(n, n);
  if (src >= n) return t;
  using QItem = std::pair<double, std::size_t>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  t.dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > t.dist[u]) continue;
    for (std::size_t v = 0; v < n; ++v) {
      if (!g.has_edge(u, v)) continue;
      const double nd = d + g.weight(u, v);
      if (nd < t.dist[v]) {
        t.dist[v] = nd;
        t.prev[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
  return t;
}

std::optional<WeightedPath> ShortestPathTree::path_to(std::size_t src,
                                                      std::size_t dst) const {
  const std::size_t n = dist.size();
  if (src >= n || dst >= n) return std::nullopt;
  if (src == dst) return WeightedPath{{src}, 0.0};
  if (dist[dst] == kInf) return std::nullopt;
  WeightedPath out;
  out.cost = dist[dst];
  for (std::size_t cur = dst; cur != n; cur = prev[cur]) {
    out.nodes.push_back(cur);
    if (cur == src) break;
  }
  std::reverse(out.nodes.begin(), out.nodes.end());
  return out;
}

std::vector<WeightedPath> k_shortest_paths(const RoutingGraph& g,
                                           std::size_t src, std::size_t dst,
                                           std::size_t k) {
  std::vector<WeightedPath> result;
  if (k == 0) return result;
  auto first = shortest_path(g, src, dst);
  if (!first.has_value()) return result;
  result.push_back(std::move(*first));

  // Candidate pool ordered by cost; dedup by node sequence.
  auto cmp = [](const WeightedPath& a, const WeightedPath& b) {
    return a.cost > b.cost;
  };
  std::priority_queue<WeightedPath, std::vector<WeightedPath>, decltype(cmp)>
      candidates(cmp);
  std::set<std::vector<std::size_t>> seen;
  seen.insert(result[0].nodes);

  std::vector<bool> banned_nodes(g.size(), false);

  while (result.size() < k) {
    const auto& last = result.back().nodes;
    // Spur from every node of the previous path except its tail.
    for (std::size_t i = 0; i + 1 < last.size(); ++i) {
      const std::size_t spur = last[i];
      std::vector<std::size_t> root(last.begin(),
                                    last.begin() +
                                        static_cast<std::ptrdiff_t>(i) + 1);

      // Ban edges used by earlier accepted paths sharing this root.
      std::vector<std::pair<std::size_t, std::size_t>> banned_edges;
      for (const auto& p : result) {
        if (p.nodes.size() > i + 1 &&
            std::equal(root.begin(), root.end(), p.nodes.begin())) {
          banned_edges.emplace_back(p.nodes[i], p.nodes[i + 1]);
        }
      }
      // Ban root nodes (except the spur) to keep paths loopless.
      std::fill(banned_nodes.begin(), banned_nodes.end(), false);
      for (std::size_t j = 0; j < i; ++j) banned_nodes[root[j]] = true;

      const auto spur_path =
          shortest_path(g, spur, dst, &banned_nodes, &banned_edges);
      if (!spur_path.has_value()) continue;

      WeightedPath total;
      total.nodes = root;
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin() + 1,
                         spur_path->nodes.end());
      double root_cost = 0.0;
      for (std::size_t j = 0; j < i; ++j) {
        root_cost += g.weight(last[j], last[j + 1]);
      }
      total.cost = root_cost + spur_path->cost;
      if (seen.insert(total.nodes).second) {
        candidates.push(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(candidates.top());
    candidates.pop();
  }
  return result;
}

}  // namespace livenet::brain
