#pragma once

#include <optional>
#include <vector>

#include "brain/routing_graph.h"

// K-Shortest-Paths on the abstracted overlay graph (paper §4.3: "we
// find the k (k = 3) shortest paths between every pair of nodes using
// the K Shortest Paths (KSP) algorithm"). Yen's algorithm over a
// Dijkstra core, yielding loopless paths in non-decreasing cost order.
namespace livenet::brain {

struct WeightedPath {
  std::vector<std::size_t> nodes;  ///< src..dst inclusive
  double cost = 0.0;
};

/// Single-pair Dijkstra. `banned_nodes[i]` excludes node i entirely;
/// `banned_edges` excludes specific directed edges (pairs a->b).
std::optional<WeightedPath> shortest_path(
    const RoutingGraph& g, std::size_t src, std::size_t dst,
    const std::vector<bool>* banned_nodes = nullptr,
    const std::vector<std::pair<std::size_t, std::size_t>>* banned_edges =
        nullptr);

/// Single-source shortest-path tree (run to completion, no bans).
/// Relaxation order matches shortest_path() exactly, so the path read
/// off the tree for any dst is identical to a per-pair call — which is
/// what lets all-pairs k=1 routing amortize one Dijkstra per source.
struct ShortestPathTree {
  std::vector<double> dist;       ///< +infinity when unreachable
  std::vector<std::size_t> prev;  ///< g.size() for root/unreachable

  /// Reconstructs src..dst (empty when dst is unreachable).
  std::optional<WeightedPath> path_to(std::size_t src, std::size_t dst) const;
};
ShortestPathTree shortest_path_tree(const RoutingGraph& g, std::size_t src);

/// Yen's K shortest loopless paths. Returns up to k paths sorted by
/// cost (fewer if the graph does not admit k distinct paths).
std::vector<WeightedPath> k_shortest_paths(const RoutingGraph& g,
                                           std::size_t src, std::size_t dst,
                                           std::size_t k);

}  // namespace livenet::brain
