#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <vector>

#include "brain/routing_graph.h"

// K-Shortest-Paths on the abstracted overlay graph (paper §4.3: "we
// find the k (k = 3) shortest paths between every pair of nodes using
// the K Shortest Paths (KSP) algorithm"). Yen's algorithm over a
// Dijkstra core, yielding loopless paths in non-decreasing cost order.
//
// Two implementations live here:
//
//  * The production pipeline: an allocation-free array Dijkstra over
//    the graph's CSR view (DijkstraWorkspace) plus a per-source batched
//    Yen (KspSolver) that shares one forward shortest-path tree across
//    every destination and caches per-node trees for spur fast paths.
//  * The original per-pair heap implementation, preserved verbatim as
//    `*_reference` — the oracle for the differential tests. The
//    optimized pipeline is required to be *bit-identical* to it,
//    including equal-cost tie-breaking, which pins down the shared
//    discipline: nodes settle in ascending (dist, index) order,
//    neighbors relax in ascending index order, and only strict
//    improvements update dist/prev.
namespace livenet::brain {

struct WeightedPath {
  std::vector<std::size_t> nodes;  ///< src..dst inclusive
  double cost = 0.0;
};

/// Single-pair Dijkstra. `banned_nodes[i]` excludes node i entirely;
/// `banned_edges` excludes specific directed edges (pairs a->b).
std::optional<WeightedPath> shortest_path(
    const RoutingGraph& g, std::size_t src, std::size_t dst,
    const std::vector<bool>* banned_nodes = nullptr,
    const std::vector<std::pair<std::size_t, std::size_t>>* banned_edges =
        nullptr);

/// Single-source shortest-path tree (run to completion, no bans).
/// Relaxation order matches shortest_path() exactly, so the path read
/// off the tree for any dst is identical to a per-pair call — which is
/// what lets all-pairs k=1 routing amortize one Dijkstra per source.
struct ShortestPathTree {
  std::vector<double> dist;       ///< +infinity when unreachable
  std::vector<std::size_t> prev;  ///< g.size() for root/unreachable

  /// Reconstructs src..dst (empty when dst is unreachable).
  std::optional<WeightedPath> path_to(std::size_t src, std::size_t dst) const;
};
ShortestPathTree shortest_path_tree(const RoutingGraph& g, std::size_t src);

/// Yen's K shortest loopless paths. Returns up to k paths sorted by
/// cost (fewer if the graph does not admit k distinct paths).
std::vector<WeightedPath> k_shortest_paths(const RoutingGraph& g,
                                           std::size_t src, std::size_t dst,
                                           std::size_t k);

// ---------------------------------------------------------------------------
// Optimized pipeline internals (exposed for GlobalRouting and benchmarks).

/// Reusable buffers for the array-based Dijkstra core: per-pair and
/// per-spur calls stop allocating once the workspace has been sized to
/// the graph. The core selects the unsettled node with the smallest
/// (dist, index) by linear scan over the *frontier* — the list of
/// touched-but-unsettled nodes — which for the pruned spur fallback is
/// a handful of entries instead of all n, and provably settles nodes
/// in the same order as the reference lazy-deletion heap. The
/// dist/prev/settled arrays are kept at their baseline (+inf / n / 0)
/// between calls via the `touched` undo list, so a call resets O(work
/// done last time) cells instead of O(n).
struct DijkstraWorkspace {
  std::vector<double> dist;
  std::vector<std::uint32_t> prev;      ///< n = root/unreachable
  std::vector<std::uint8_t> settled;
  std::vector<std::uint8_t> banned_node;
  std::vector<std::uint32_t> banned_next;  ///< banned first hops (Yen spurs)
  std::vector<std::uint32_t> frontier;  ///< touched, not yet settled
  std::vector<std::uint32_t> touched;   ///< cells to reset next call

  void bind(std::size_t n) {
    dist.assign(n, std::numeric_limits<double>::infinity());
    prev.assign(n, static_cast<std::uint32_t>(n));
    settled.assign(n, 0);
    banned_node.assign(n, 0);
    banned_next.clear();
    frontier.clear();
    touched.clear();
  }
};

/// Per-source batched Yen KSP over a fixed graph. One forward
/// shortest-path tree per source yields the first path for every
/// destination. Spur searches resolve, in order, through: (1) the
/// spur's own unrestricted tree path when it avoids every banned
/// element; (2) first-hop stitching — the cached tree of each allowed
/// first hop gives its exact best continuation, and a strictly-winning
/// clean hop provably reproduces the banned Dijkstra's answer; (3) a
/// banned array Dijkstra with early exit at the destination, pruned by
/// the stitch's bound so hopeless nodes never settle. Output is
/// bit-identical to k_shortest_paths_reference() for every (dst, k).
class KspSolver {
 public:
  /// Unbound solver (warm-start pools construct these up front and
  /// rebind() them to the cycle's graph).
  KspSolver() = default;
  explicit KspSolver(const RoutingGraph& g) { rebind(g); }

  /// (Re)binds the solver to `g`, keyed on the graph's mutation
  /// version: when the same graph object comes back unchanged, every
  /// cached shortest-path tree stays valid and the next cycle starts
  /// warm; when it changed (or is a different/resized graph) the tree
  /// cache is invalidated *without releasing any allocation*, so a
  /// long-lived solver stops paying realloc churn after its first
  /// cycle. `g` must outlive the solver's next use.
  void rebind(const RoutingGraph& g);

  /// Computes (or reuses) the forward tree rooted at `src`.
  void set_source(std::size_t src);
  std::size_t source() const { return src_; }

  /// First (shortest) path to dst, read off the source tree. Identical
  /// to shortest_path(g, source(), dst).
  std::optional<WeightedPath> first_path(std::size_t dst) const;

  /// Up to k shortest loopless paths source()->dst, appended into
  /// `*out` (cleared first). Identical to
  /// k_shortest_paths_reference(g, source(), dst, k).
  void k_shortest(std::size_t dst, std::size_t k,
                  std::vector<WeightedPath>* out);

  /// Allocation-free variant: solves into solver-owned storage (path
  /// arena + accepted list, all reused across calls and cycles) and
  /// returns the number of paths found (<= k). Read path i through
  /// accepted_nodes(i)/accepted_cost(i); the storage is valid until
  /// the next k_shortest/k_shortest_scratch call. Result sequence is
  /// identical to k_shortest().
  std::size_t k_shortest_scratch(std::size_t dst, std::size_t k);
  const std::vector<std::size_t>& accepted_nodes(std::size_t i) const {
    return arena_[accepted_[i].slot];
  }
  double accepted_cost(std::size_t i) const { return accepted_[i].cost; }

  /// Distance row of the source tree (for diagnostics/tests).
  const double* source_dist() const;

 private:
  void ensure_tree(std::size_t root);
  bool spur_search(std::size_t spur, std::size_t dst, WeightedPath* out);
  /// First-hop stitching: answers a banned spur search from the cached
  /// per-node trees when the winner is provably unique; returns false
  /// when the exact Dijkstra must run (tie or threatening dirty hop),
  /// leaving the best clean candidate's cost in `*bound` (+inf when
  /// none) as a pruning bound for the fallback search.
  bool stitch_search(std::size_t spur, std::size_t dst, WeightedPath* out,
                     bool* unreachable, double* bound);

  const RoutingGraph* g_ = nullptr;
  std::size_t n_ = 0;
  std::uint64_t bound_version_ = ~0ull;  ///< graph version trees match
  std::size_t src_ = 0;
  bool src_set_ = false;
  std::size_t pairs_served_ = 0;  ///< k_shortest calls (stitch cost gate)

  // Lazily-built all-node tree cache: row `r` holds the full forward
  // tree rooted at r once tree_built_[r] is set. Survives rebind()
  // whenever the graph version did not move (warm-start).
  std::vector<double> tree_dist_;
  std::vector<std::uint32_t> tree_prev_;
  std::vector<std::uint8_t> tree_built_;
  /// Transpose of tree_dist_: `tree_dist_t_[d * n + r]` = dist r -> d.
  /// The stitch scan reads "distance to one fixed dst from every first
  /// hop"; in row layout those reads stride by n (a cache miss per hop
  /// once the matrix outgrows L2 — the profile's top cost at 600
  /// nodes), in column layout they are sequential.
  std::vector<double> tree_dist_t_;
  std::size_t built_count_ = 0;  ///< rows of the tree cache built
  /// Settled scratch for tree builds. Separate from ws_.settled: the
  /// workspace arrays hold their between-calls baseline via the touched
  /// list, which a full-fill tree build would silently violate.
  std::vector<std::uint8_t> tree_settled_;

  DijkstraWorkspace ws_;

  // Yen scratch, reused across destinations *and* cycles. Candidate
  // node sequences live in an arena of reusable slot vectors (deque:
  // acquiring a new slot never moves existing ones); the heap, the
  // accepted list and the dedup table refer to slots by index, so the
  // steady state allocates nothing per pair.
  std::size_t arena_used_ = 0;
  std::deque<std::vector<std::size_t>> arena_;
  std::size_t acquire_slot();  ///< cleared slot; index == arena_used_-1

  struct Cand {
    double cost = 0.0;
    std::uint32_t slot = 0;
  };
  /// Candidate pool as a manual binary min-heap on cost. push_heap /
  /// pop_heap sift by comparator outcomes alone, and the comparator
  /// reads only the cost — so the pop sequence is element-for-element
  /// the one the reference's priority_queue<WeightedPath> produces.
  std::vector<Cand> heap_;
  std::vector<Cand> accepted_;  ///< result list, in acceptance order

  /// Hashed path-signature dedup with exact compare against the arena.
  /// Flat vector + linear scan: per-pair candidate counts are tiny
  /// (O(k * path length)), so a scan beats a node-based hash map and
  /// never allocates once warm.
  struct SeenSig {
    std::uint64_t hash = 0;
    std::uint32_t slot = 0;
  };
  std::vector<SeenSig> seen_;
  bool seen_insert(std::size_t slot);  ///< false (and no insert) on dup

  WeightedPath spur_path_;  ///< per-spur result, buffer reused
  std::vector<std::size_t> stitch_nodes_;  ///< scratch: tree walk, reversed
  /// Root nodes banned for the current spur (the running prefix of the
  /// deviating path) — list form of the ws_.banned_node byte map, so
  /// the warm stitch scan can mask exactly those hops up front.
  std::vector<std::uint32_t> banned_roots_;
  std::vector<Cand> mask_saved_;  ///< (old value, index) undo log
};

// ---------------------------------------------------------------------------
// Reference implementation (the original per-pair heap pipeline),
// preserved as the oracle for the permanent differential ctests.

std::optional<WeightedPath> shortest_path_reference(
    const RoutingGraph& g, std::size_t src, std::size_t dst,
    const std::vector<bool>* banned_nodes = nullptr,
    const std::vector<std::pair<std::size_t, std::size_t>>* banned_edges =
        nullptr);

ShortestPathTree shortest_path_tree_reference(const RoutingGraph& g,
                                              std::size_t src);

std::vector<WeightedPath> k_shortest_paths_reference(const RoutingGraph& g,
                                                     std::size_t src,
                                                     std::size_t dst,
                                                     std::size_t k);

}  // namespace livenet::brain
