#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "brain/routing_graph.h"

// K-Shortest-Paths on the abstracted overlay graph (paper §4.3: "we
// find the k (k = 3) shortest paths between every pair of nodes using
// the K Shortest Paths (KSP) algorithm"). Yen's algorithm over a
// Dijkstra core, yielding loopless paths in non-decreasing cost order.
//
// Two implementations live here:
//
//  * The production pipeline: an allocation-free array Dijkstra over
//    the graph's CSR view (DijkstraWorkspace) plus a per-source batched
//    Yen (KspSolver) that shares one forward shortest-path tree across
//    every destination and caches per-node trees for spur fast paths.
//  * The original per-pair heap implementation, preserved verbatim as
//    `*_reference` — the oracle for the differential tests. The
//    optimized pipeline is required to be *bit-identical* to it,
//    including equal-cost tie-breaking, which pins down the shared
//    discipline: nodes settle in ascending (dist, index) order,
//    neighbors relax in ascending index order, and only strict
//    improvements update dist/prev.
namespace livenet::brain {

struct WeightedPath {
  std::vector<std::size_t> nodes;  ///< src..dst inclusive
  double cost = 0.0;
};

/// Single-pair Dijkstra. `banned_nodes[i]` excludes node i entirely;
/// `banned_edges` excludes specific directed edges (pairs a->b).
std::optional<WeightedPath> shortest_path(
    const RoutingGraph& g, std::size_t src, std::size_t dst,
    const std::vector<bool>* banned_nodes = nullptr,
    const std::vector<std::pair<std::size_t, std::size_t>>* banned_edges =
        nullptr);

/// Single-source shortest-path tree (run to completion, no bans).
/// Relaxation order matches shortest_path() exactly, so the path read
/// off the tree for any dst is identical to a per-pair call — which is
/// what lets all-pairs k=1 routing amortize one Dijkstra per source.
struct ShortestPathTree {
  std::vector<double> dist;       ///< +infinity when unreachable
  std::vector<std::size_t> prev;  ///< g.size() for root/unreachable

  /// Reconstructs src..dst (empty when dst is unreachable).
  std::optional<WeightedPath> path_to(std::size_t src, std::size_t dst) const;
};
ShortestPathTree shortest_path_tree(const RoutingGraph& g, std::size_t src);

/// Yen's K shortest loopless paths. Returns up to k paths sorted by
/// cost (fewer if the graph does not admit k distinct paths).
std::vector<WeightedPath> k_shortest_paths(const RoutingGraph& g,
                                           std::size_t src, std::size_t dst,
                                           std::size_t k);

// ---------------------------------------------------------------------------
// Optimized pipeline internals (exposed for GlobalRouting and benchmarks).

/// Reusable buffers for the array-based Dijkstra core: per-pair and
/// per-spur calls stop allocating once the workspace has been sized to
/// the graph. The core selects the unsettled node with the smallest
/// (dist, index) by linear scan — for the overlay's dense abstracted
/// graphs that is both faster than a binary heap and provably settles
/// nodes in the same order as the reference lazy-deletion heap.
struct DijkstraWorkspace {
  std::vector<double> dist;
  std::vector<std::uint32_t> prev;      ///< n = root/unreachable
  std::vector<std::uint8_t> settled;
  std::vector<std::uint8_t> banned_node;
  std::vector<std::uint32_t> banned_next;  ///< banned first hops (Yen spurs)

  void bind(std::size_t n) {
    dist.assign(n, 0.0);
    prev.assign(n, 0);
    settled.assign(n, 0);
    banned_node.assign(n, 0);
    banned_next.clear();
  }
};

/// Per-source batched Yen KSP over a fixed graph. One forward
/// shortest-path tree per source yields the first path for every
/// destination. Spur searches resolve, in order, through: (1) the
/// spur's own unrestricted tree path when it avoids every banned
/// element; (2) first-hop stitching — the cached tree of each allowed
/// first hop gives its exact best continuation, and a strictly-winning
/// clean hop provably reproduces the banned Dijkstra's answer; (3) a
/// banned array Dijkstra with early exit at the destination, pruned by
/// the stitch's bound so hopeless nodes never settle. Output is
/// bit-identical to k_shortest_paths_reference() for every (dst, k).
class KspSolver {
 public:
  explicit KspSolver(const RoutingGraph& g);

  /// Computes (or reuses) the forward tree rooted at `src`.
  void set_source(std::size_t src);
  std::size_t source() const { return src_; }

  /// First (shortest) path to dst, read off the source tree. Identical
  /// to shortest_path(g, source(), dst).
  std::optional<WeightedPath> first_path(std::size_t dst) const;

  /// Up to k shortest loopless paths source()->dst, appended into
  /// `*out` (cleared first). Identical to
  /// k_shortest_paths_reference(g, source(), dst, k).
  void k_shortest(std::size_t dst, std::size_t k,
                  std::vector<WeightedPath>* out);

  /// Distance row of the source tree (for diagnostics/tests).
  const double* source_dist() const;

 private:
  void ensure_tree(std::size_t root);
  bool spur_search(std::size_t spur, std::size_t dst, WeightedPath* out);
  /// First-hop stitching: answers a banned spur search from the cached
  /// per-node trees when the winner is provably unique; returns false
  /// when the exact Dijkstra must run (tie or threatening dirty hop),
  /// leaving the best clean candidate's cost in `*bound` (+inf when
  /// none) as a pruning bound for the fallback search.
  bool stitch_search(std::size_t spur, std::size_t dst, WeightedPath* out,
                     bool* unreachable, double* bound);

  const RoutingGraph* g_;
  std::size_t n_;
  std::size_t src_ = 0;
  bool src_set_ = false;
  std::size_t pairs_served_ = 0;  ///< k_shortest calls (stitch cost gate)

  // Lazily-built all-node tree cache: row `r` holds the full forward
  // tree rooted at r once tree_built_[r] is set.
  std::vector<double> tree_dist_;
  std::vector<std::uint32_t> tree_prev_;
  std::vector<std::uint8_t> tree_built_;

  DijkstraWorkspace ws_;

  // Yen scratch, reused across destinations.
  struct SeenPaths {  ///< hashed path-signature dedup with exact compare
    void clear();
    bool insert(const std::vector<std::size_t>& nodes);

   private:
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;
    std::vector<std::vector<std::size_t>> stored_;
  };
  SeenPaths seen_;
  std::vector<WeightedPath> heap_;  ///< candidate pool (binary min-heap)
  std::vector<std::size_t> stitch_nodes_;  ///< scratch: tree walk, reversed
};

// ---------------------------------------------------------------------------
// Reference implementation (the original per-pair heap pipeline),
// preserved as the oracle for the permanent differential ctests.

std::optional<WeightedPath> shortest_path_reference(
    const RoutingGraph& g, std::size_t src, std::size_t dst,
    const std::vector<bool>* banned_nodes = nullptr,
    const std::vector<std::pair<std::size_t, std::size_t>>* banned_edges =
        nullptr);

ShortestPathTree shortest_path_tree_reference(const RoutingGraph& g,
                                              std::size_t src);

std::vector<WeightedPath> k_shortest_paths_reference(const RoutingGraph& g,
                                                     std::size_t src,
                                                     std::size_t dst,
                                                     std::size_t k);

}  // namespace livenet::brain
