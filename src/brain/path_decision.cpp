#include "brain/path_decision.h"

namespace livenet::brain {

PathDecision::Lookup PathDecision::get_path(media::StreamId stream,
                                            sim::NodeId consumer) const {
  Lookup out;
  const sim::NodeId producer = sib_->producer_of(stream);
  if (producer == sim::kNoNode) return out;  // unknown stream
  out.stream_known = true;

  if (producer == consumer) {
    // 0-length path: the consumer is the producer.
    out.paths.push_back(overlay::Path{consumer});
    return out;
  }

  out.paths = pib_->valid_paths(producer, consumer);
  if (out.paths.empty()) {
    overlay::Path lr = pib_->last_resort(producer, consumer);
    if (!lr.empty()) {
      out.paths.push_back(std::move(lr));
      out.last_resort = true;
    }
  }
  return out;
}

}  // namespace livenet::brain
