#include "brain/path_decision.h"

namespace livenet::brain {

namespace {
std::uint64_t pair_key(sim::NodeId a, sim::NodeId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}
}  // namespace

void PathDecision::fill(sim::NodeId producer, sim::NodeId consumer,
                        Lookup* out) const {
  out->paths.clear();
  out->stream_known = true;
  out->last_resort = false;

  if (producer == consumer) {
    // 0-length path: the consumer is the producer.
    out->paths.push_back(overlay::Path{consumer});
    return;
  }

  pib_->append_valid(producer, consumer, &out->paths);
  if (out->paths.empty()) {
    overlay::Path lr = pib_->last_resort(producer, consumer);
    if (!lr.empty()) {
      out->paths.push_back(std::move(lr));
      out->last_resort = true;
    }
  }
}

PathDecision::Lookup PathDecision::get_path(media::StreamId stream,
                                            sim::NodeId consumer) const {
  Lookup out;
  const sim::NodeId producer = sib_->producer_of(stream);
  if (producer == sim::kNoNode) return out;  // unknown stream
  fill(producer, consumer, &out);
  return out;
}

const PathDecision::Lookup& PathDecision::get_path_cached(
    media::StreamId stream, sim::NodeId consumer) const {
  const sim::NodeId producer = sib_->producer_of(stream);
  if (producer == sim::kNoNode) {
    // Unknown streams do not occupy cache entries: they churn (every
    // not-yet-registered stream hits here) and their answer is constant.
    static const Lookup kUnknown;
    return kUnknown;
  }
  CacheEntry& e = cache_[pair_key(producer, consumer)];
  const std::uint64_t stamp = pib_->version();
  if (e.stamp != stamp) {
    fill(producer, consumer, &e.lookup);
    e.stamp = stamp;
  }
  return e.lookup;
}

}  // namespace livenet::brain
