#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "brain/pib.h"
#include "overlay/path.h"

// Path Decision module (paper §4.4): serves path lookups from consumer
// nodes. A lookup hashes the stream ID to the producer node via the
// SIB, then keys (producer, consumer) into the PIB; invalid (overload-
// marked) candidates are filtered; if nothing survives, the last-resort
// path is returned.
//
// Lookups are memoised per (producer, consumer) pair, stamped with the
// PIB's dirty version: a warm hit is one SIB probe, one cache probe and
// a stamp compare — no candidate filtering, no allocation. Any
// effective PIB mutation (route install/swap, overload mark or clear)
// bumps the stamp and lazily invalidates every entry at once. Keying on
// the producer rather than the stream means a producer migration simply
// shifts the request to a different (already-correct) entry, and the
// cache stays bounded by node pairs, not by stream count.
namespace livenet::brain {

class PathDecision {
 public:
  struct Lookup {
    std::vector<overlay::Path> paths;  ///< preference order (<= 3)
    bool stream_known = false;
    bool last_resort = false;
  };

  PathDecision(const Pib* pib, const Sib* sib) : pib_(pib), sib_(sib) {}

  /// Uncached reference lookup: always recomputes from the PIB. Kept as
  /// the oracle the cached path is differentially tested against.
  Lookup get_path(media::StreamId stream, sim::NodeId consumer) const;

  /// Memoised lookup. The reference stays valid until the next
  /// get_path_cached call (single-threaded request loop); callers that
  /// need the paths beyond that must copy.
  const Lookup& get_path_cached(media::StreamId stream,
                                sim::NodeId consumer) const;

  std::size_t cache_size() const { return cache_.size(); }

 private:
  struct CacheEntry {
    std::uint64_t stamp = 0;  ///< Pib::version() at fill; 0 = never
    Lookup lookup;
  };

  /// Recomputes `out` in place (reuses its vector storage).
  void fill(sim::NodeId producer, sim::NodeId consumer, Lookup* out) const;

  const Pib* pib_;
  const Sib* sib_;
  mutable std::unordered_map<std::uint64_t, CacheEntry> cache_;
};

}  // namespace livenet::brain
