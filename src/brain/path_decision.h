#pragma once

#include <vector>

#include "brain/pib.h"
#include "overlay/path.h"

// Path Decision module (paper §4.4): serves path lookups from consumer
// nodes. A lookup hashes the stream ID to the producer node via the
// SIB, then keys (producer, consumer) into the PIB; invalid (overload-
// marked) candidates are filtered; if nothing survives, the last-resort
// path is returned.
namespace livenet::brain {

class PathDecision {
 public:
  struct Lookup {
    std::vector<overlay::Path> paths;  ///< preference order (<= 3)
    bool stream_known = false;
    bool last_resort = false;
  };

  PathDecision(const Pib* pib, const Sib* sib) : pib_(pib), sib_(sib) {}

  Lookup get_path(media::StreamId stream, sim::NodeId consumer) const;

 private:
  const Pib* pib_;
  const Sib* sib_;
};

}  // namespace livenet::brain
