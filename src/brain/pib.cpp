#include "brain/pib.h"

namespace livenet::brain {

void Pib::set_paths(sim::NodeId src, sim::NodeId dst,
                    std::vector<overlay::Path> paths) {
  paths_[pair_key(src, dst)] = std::move(paths);
  bump();
}

void Pib::set_last_resort(sim::NodeId src, sim::NodeId dst,
                          overlay::Path path) {
  fallbacks_[pair_key(src, dst)] = std::move(path);
  bump();
}

const std::vector<overlay::Path>* Pib::find(sim::NodeId src,
                                            sim::NodeId dst) const {
  const auto it = paths_.find(pair_key(src, dst));
  return it != paths_.end() ? &it->second : nullptr;
}

bool Pib::is_invalid(const overlay::Path& p) const {
  for (std::size_t i = 0; i < p.size(); ++i) {
    const bool endpoint = (i == 0 || i + 1 == p.size());
    if (!endpoint && hot_nodes_.count(p[i]) != 0) return true;
    if (i + 1 < p.size() &&
        hot_links_.count(link_key(p[i], p[i + 1])) != 0) {
      return true;
    }
  }
  return false;
}

std::vector<overlay::Path> Pib::valid_paths(sim::NodeId src,
                                            sim::NodeId dst) const {
  std::vector<overlay::Path> out;
  append_valid(src, dst, &out);
  return out;
}

void Pib::append_valid(sim::NodeId src, sim::NodeId dst,
                       std::vector<overlay::Path>* out) const {
  const auto* all = find(src, dst);
  if (all == nullptr) return;
  if (hot_nodes_.empty() && hot_links_.empty()) {
    // Nothing marked: every candidate survives, skip the per-hop probes.
    out->insert(out->end(), all->begin(), all->end());
    return;
  }
  for (const auto& p : *all) {
    if (!is_invalid(p)) out->push_back(p);
  }
}

std::vector<std::pair<sim::NodeId, sim::NodeId>> Pib::pairs() const {
  std::vector<std::pair<sim::NodeId, sim::NodeId>> out;
  out.reserve(paths_.size());
  for (const auto& [key, v] : paths_) {
    out.emplace_back(static_cast<sim::NodeId>(key >> 32),
                     static_cast<sim::NodeId>(key & 0xFFFFFFFFu));
  }
  return out;
}

overlay::Path Pib::last_resort(sim::NodeId src, sim::NodeId dst) const {
  const auto it = fallbacks_.find(pair_key(src, dst));
  return it != fallbacks_.end() ? it->second : overlay::Path{};
}

const overlay::Path* Pib::find_last_resort(sim::NodeId src,
                                           sim::NodeId dst) const {
  const auto it = fallbacks_.find(pair_key(src, dst));
  return it != fallbacks_.end() ? &it->second : nullptr;
}

void Pib::swap_routes(Pib* other) {
  paths_.swap(other->paths_);
  fallbacks_.swap(other->fallbacks_);
  bump();
  other->bump();
}

void Pib::copy_routes_from(const Pib& other) {
  paths_ = other.paths_;
  fallbacks_ = other.fallbacks_;
  bump();
}

}  // namespace livenet::brain
