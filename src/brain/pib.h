#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "media/frame.h"
#include "overlay/path.h"

// Path Information Base (paper §4.4): for each (producer, consumer)
// node pair, the candidate overlay paths computed by Global Routing,
// ordered by preference. The PIB also tracks which nodes/links are
// currently overloaded (set by Global Discovery on real-time alarms) so
// that lookups can filter invalid paths — Algorithm 1's IsInvalid().
namespace livenet::brain {

class Pib {
 public:
  /// Replaces the candidate set for a pair (Global Routing output).
  void set_paths(sim::NodeId src, sim::NodeId dst,
                 std::vector<overlay::Path> paths);

  /// Replaces the last-resort fallback for a pair.
  void set_last_resort(sim::NodeId src, sim::NodeId dst,
                       overlay::Path path);

  /// Raw candidate list (may contain currently-invalid paths).
  const std::vector<overlay::Path>* find(sim::NodeId src,
                                         sim::NodeId dst) const;

  /// Candidates surviving the overload filter, in preference order.
  std::vector<overlay::Path> valid_paths(sim::NodeId src,
                                         sim::NodeId dst) const;

  /// Appends the surviving candidates for the pair to `out` (no clear).
  /// One pass over the installed set, with a copy-only fast path when
  /// no overload marks are live — the common case for Algorithm 1's
  /// filter, which otherwise pays per-hop hash probes per candidate.
  void append_valid(sim::NodeId src, sim::NodeId dst,
                    std::vector<overlay::Path>* out) const;

  /// Last-resort path for the pair (empty if none installed).
  overlay::Path last_resort(sim::NodeId src, sim::NodeId dst) const;

  /// Pointer form of last_resort() (nullptr if none installed); used by
  /// the incremental recompute's dirty-path scan to avoid copies.
  const overlay::Path* find_last_resort(sim::NodeId src,
                                        sim::NodeId dst) const;

  /// Swaps the *routes* (candidate sets + fallbacks) with `other`,
  /// leaving the real-time overload marks of both sides untouched.
  /// Global Routing double-buffers installs through this: it fills a
  /// scratch Pib off to the side and swaps it in atomically, so readers
  /// never observe a half-installed cycle and the live hot-node/link
  /// marks survive the swap.
  void swap_routes(Pib* other);

  /// Replaces this Pib's routes with a copy of `other`'s (overload
  /// marks untouched). Seeds the scratch buffer for incremental cycles.
  void copy_routes_from(const Pib& other);

  // Real-time overload marks (Global Discovery). Each effective change
  // bumps the version stamp (no-op marks do not churn lookup caches).
  void mark_node_overloaded(sim::NodeId n) {
    if (hot_nodes_.insert(n).second) bump();
  }
  void clear_node_overloaded(sim::NodeId n) {
    if (hot_nodes_.erase(n) != 0) bump();
  }
  void mark_link_overloaded(sim::NodeId a, sim::NodeId b) {
    if (hot_links_.insert(link_key(a, b)).second) bump();
  }
  void clear_link_overloaded(sim::NodeId a, sim::NodeId b) {
    if (hot_links_.erase(link_key(a, b)) != 0) bump();
  }
  bool node_overloaded(sim::NodeId n) const {
    return hot_nodes_.count(n) != 0;
  }

  /// Algorithm 1's IsInvalid(): true if the path crosses an overloaded
  /// node or link. Endpoints are exempt from the node check — the
  /// producer/consumer are fixed by the stream and the viewer.
  bool is_invalid(const overlay::Path& p) const;

  std::size_t pair_count() const { return paths_.size(); }

  /// All (src, dst) pairs with installed candidate sets (replication).
  std::vector<std::pair<sim::NodeId, sim::NodeId>> pairs() const;
  std::size_t overloaded_nodes() const { return hot_nodes_.size(); }
  void clear() {
    paths_.clear();
    fallbacks_.clear();
    bump();
  }

  /// Dirty stamp: bumped by every effective mutation of routes or
  /// overload marks. Lookup caches key their entries on this — a stale
  /// stamp means recompute, an equal stamp means the cached filter
  /// output is still exact. Starts at 1 so 0 can mean "never filled".
  std::uint64_t version() const { return version_; }

 private:
  static std::uint64_t pair_key(sim::NodeId a, sim::NodeId b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }
  static std::uint64_t link_key(sim::NodeId a, sim::NodeId b) {
    return pair_key(a, b);
  }

  void bump() { ++version_; }

  std::unordered_map<std::uint64_t, std::vector<overlay::Path>> paths_;
  std::unordered_map<std::uint64_t, overlay::Path> fallbacks_;
  std::unordered_set<sim::NodeId> hot_nodes_;
  std::unordered_set<std::uint64_t> hot_links_;
  std::uint64_t version_ = 1;
};

/// Stream Information Base: stream -> producer node (hash table keyed
/// by stream ID, updated on stream start/finish).
class Sib {
 public:
  void set_producer(media::StreamId s, sim::NodeId producer) {
    map_[s] = producer;
  }
  void erase(media::StreamId s) { map_.erase(s); }
  sim::NodeId producer_of(media::StreamId s) const {
    const auto it = map_.find(s);
    return it != map_.end() ? it->second : sim::kNoNode;
  }
  std::size_t stream_count() const { return map_.size(); }

 private:
  std::unordered_map<media::StreamId, sim::NodeId> map_;
};

}  // namespace livenet::brain
