#include "brain/replica.h"

#include <sstream>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace livenet::brain {

std::string ReplicaPibUpdate::describe() const {
  std::ostringstream ss;
  ss << "PIBUPD v" << version << " n=" << entries.size();
  return ss.str();
}

std::string ReplicaSibUpdate::describe() const {
  std::ostringstream ss;
  ss << "SIBUPD s" << stream_id << " prod=" << producer
     << (active ? " up" : " down");
  return ss.str();
}

std::string ReplicaOverloadUpdate::describe() const {
  std::ostringstream ss;
  ss << "OVLUPD n" << node << (overloaded ? " hot" : " cool");
  return ss.str();
}

void PathDecisionReplica::on_message(sim::NodeId from,
                                     const sim::MessagePtr& msg) {
  if (const auto req =
          sim::msg_cast<const overlay::PathRequest>(msg)) {
    handle_path_request(from, *req);
    return;
  }
  if (const auto upd = sim::msg_cast<const ReplicaPibUpdate>(msg)) {
    // Full refresh: consistency with the primary is eventual, bounded
    // by one propagation delay per routing cycle (Paxos-grade
    // replication in production; a reliable control link here).
    pib_.clear();
    for (const auto& e : upd->entries) {
      pib_.set_paths(e.src, e.dst, e.paths);
      if (!e.last_resort.empty()) {
        pib_.set_last_resort(e.src, e.dst, e.last_resort);
      }
    }
    pib_version_ = upd->version;
    return;
  }
  if (const auto sib = sim::msg_cast<const ReplicaSibUpdate>(msg)) {
    if (sib->active) {
      sib_.set_producer(sib->stream_id, sib->producer);
    } else {
      sib_.erase(sib->stream_id);
    }
    return;
  }
  if (const auto ovl =
          sim::msg_cast<const ReplicaOverloadUpdate>(msg)) {
    if (ovl->overloaded) {
      pib_.mark_node_overloaded(ovl->node);
      for (const auto peer : ovl->hot_links) {
        pib_.mark_link_overloaded(ovl->node, peer);
      }
    } else {
      pib_.clear_node_overloaded(ovl->node);
      for (const auto peer : ovl->hot_links) {
        pib_.clear_link_overloaded(ovl->node, peer);
      }
    }
    return;
  }
  LIVENET_LOG(kWarn) << "replica: unhandled " << msg->describe();
}

void PathDecisionReplica::handle_path_request(
    sim::NodeId from, const overlay::PathRequest& req) {
  const Time now = net_->loop()->now();
  const Time start = std::max(now, busy_until_);
  busy_until_ = start + cfg_.request_service_time;
  const Duration response_time = busy_until_ - now;

  const PathDecision::Lookup& lookup =
      path_decision_.get_path_cached(req.stream_id, req.consumer);
  metrics_.path_requests.push_back(BrainMetrics::PathRequestLog{
      now, response_time, lookup.last_resort, lookup.stream_known});
  telemetry::handles().path_requests_served->add();

  auto resp = sim::make_message<overlay::PathResponse>();
  resp->request_id = req.request_id;
  resp->stream_id = req.stream_id;
  resp->paths = lookup.paths;
  resp->last_resort = lookup.last_resort;
  net_->loop()->schedule_at(busy_until_, [this, from, resp] {
    net_->send(node_id(), from, resp);
  });
}

}  // namespace livenet::brain
