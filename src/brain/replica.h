#pragma once

#include <memory>
#include <vector>

#include "brain/brain.h"
#include "brain/path_decision.h"
#include "brain/pib.h"
#include "overlay/messages.h"
#include "sim/network.h"
#include "sim/sim_node.h"

// Replicated Path Decision (paper §7.1, "Streaming Brain Scalability"):
// "Because the Path Decision module may impact stream startup delays,
// we replicate it in more locations to shorten the distances to
// consumer nodes... replicas of the Path Decision module are updated by
// the Global Routing module."
//
// A PathDecisionReplica holds copies of the PIB and SIB, refreshed by
// the primary BrainNode after every Global Routing cycle and on every
// stream (de)registration and overload transition. Consumer nodes send
// their path lookups to the nearest replica; everything else (reports,
// alarms, registrations) still flows to the primary.
namespace livenet::brain {

/// Primary -> replica: full PIB snapshot after a routing recompute.
class ReplicaPibUpdate final : public sim::Message {
 public:
  struct Entry {
    sim::NodeId src = sim::kNoNode;
    sim::NodeId dst = sim::kNoNode;
    std::vector<overlay::Path> paths;
    overlay::Path last_resort;
  };
  std::vector<Entry> entries;
  std::uint64_t version = 0;

  std::size_t wire_size() const override {
    std::size_t n = 16;
    for (const auto& e : entries) {
      n += 16 + 4 * e.last_resort.size();
      for (const auto& p : e.paths) n += 4 + 4 * p.size();
    }
    return n;
  }
  std::string describe() const override;
};

/// Primary -> replica: incremental SIB change.
class ReplicaSibUpdate final : public sim::Message {
 public:
  media::StreamId stream_id = media::kNoStream;
  sim::NodeId producer = sim::kNoNode;
  bool active = true;

  std::size_t wire_size() const override { return 24; }
  std::string describe() const override;
};

/// Primary -> replica: real-time overload mark or clear.
class ReplicaOverloadUpdate final : public sim::Message {
 public:
  sim::NodeId node = sim::kNoNode;
  bool overloaded = false;
  std::vector<sim::NodeId> hot_links;  ///< peers of marked links

  std::size_t wire_size() const override {
    return 16 + 4 * hot_links.size();
  }
  std::string describe() const override;
};

class PathDecisionReplica final : public sim::SimNode {
 public:
  explicit PathDecisionReplica(sim::Network* net)
      : PathDecisionReplica(net, BrainConfig()) {}
  PathDecisionReplica(sim::Network* net, const BrainConfig& cfg)
      : net_(net), cfg_(cfg), path_decision_(&pib_, &sib_) {}

  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override;

  const Pib& pib() const { return pib_; }
  const Sib& sib() const { return sib_; }
  const BrainMetrics& metrics() const { return metrics_; }
  std::uint64_t pib_version() const { return pib_version_; }

 private:
  void handle_path_request(sim::NodeId from, const overlay::PathRequest& req);

  sim::Network* net_;
  BrainConfig cfg_;
  Pib pib_;
  Sib sib_;
  PathDecision path_decision_;
  BrainMetrics metrics_;
  Time busy_until_ = 0;
  std::uint64_t pib_version_ = 0;
};

}  // namespace livenet::brain
