#include "brain/routing_graph.h"

#include <algorithm>
#include <cmath>

namespace livenet::brain {

double utilization_penalty(double u, const WeightParams& params) {
  const double u_percent = std::clamp(u, 0.0, 1.0) * 100.0;
  return 1.0 / (1.0 + std::exp(params.alpha *
                               (params.beta_percent - u_percent))) +
         1.0;
}

double link_weight(const LinkState& link, double node_util_a,
                   double node_util_b, const WeightParams& params) {
  const double rho = std::clamp(link.loss_rate, 0.0, 1.0);
  const double rtt = static_cast<double>(link.rtt);
  // Expected RTT assuming one recovery round for lost packets.
  const double expected_rtt = rho * 2.0 * rtt + (1.0 - rho) * rtt;
  const double u =
      std::max({link.utilization, node_util_a, node_util_b});
  return expected_rtt * utilization_penalty(u, params);
}

bool RoutingGraph::rebuild_from(std::size_t n, std::vector<double>* cells) {
  if (n == n_ && *cells == weights_) {
    return false;  // bit-identical matrix: keep version (and caches)
  }
  n_ = n;
  weights_.swap(*cells);
  ++version_;
  return true;
}

const RoutingGraph::CsrView& RoutingGraph::csr() const {
  if (csr_version_ == version_) return csr_;
  csr_.row_start.assign(n_ + 1, 0);
  csr_.col.clear();
  csr_.weight.clear();
  std::size_t edges = 0;
  for (std::size_t a = 0; a < n_; ++a) {
    const double* row = weights_.data() + a * n_;
    for (std::size_t b = 0; b < n_; ++b) {
      if (row[b] >= 0.0) ++edges;
    }
  }
  csr_.col.reserve(edges);
  csr_.weight.reserve(edges);
  for (std::size_t a = 0; a < n_; ++a) {
    csr_.row_start[a] = static_cast<std::uint32_t>(csr_.col.size());
    const double* row = weights_.data() + a * n_;
    for (std::size_t b = 0; b < n_; ++b) {
      if (row[b] >= 0.0) {
        csr_.col.push_back(static_cast<std::uint32_t>(b));
        csr_.weight.push_back(row[b]);
      }
    }
  }
  csr_.row_start[n_] = static_cast<std::uint32_t>(csr_.col.size());
  csr_version_ = version_;
  return csr_;
}

}  // namespace livenet::brain
