#include "brain/routing_graph.h"

#include <algorithm>
#include <cmath>

namespace livenet::brain {

double utilization_penalty(double u, const WeightParams& params) {
  const double u_percent = std::clamp(u, 0.0, 1.0) * 100.0;
  return 1.0 / (1.0 + std::exp(params.alpha *
                               (params.beta_percent - u_percent))) +
         1.0;
}

double link_weight(const LinkState& link, double node_util_a,
                   double node_util_b, const WeightParams& params) {
  const double rho = std::clamp(link.loss_rate, 0.0, 1.0);
  const double rtt = static_cast<double>(link.rtt);
  // Expected RTT assuming one recovery round for lost packets.
  const double expected_rtt = rho * 2.0 * rtt + (1.0 - rho) * rtt;
  const double u =
      std::max({link.utilization, node_util_a, node_util_b});
  return expected_rtt * utilization_penalty(u, params);
}

}  // namespace livenet::brain
