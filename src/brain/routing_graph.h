#pragma once

#include <cstdint>
#include <vector>

#include "sim/message.h"
#include "util/time.h"

// The abstracted overlay graph the Global Routing module computes on
// (paper §4.3). Link weights follow Eq. 2/3:
//
//   W_AB = (rho * 2*RTT_AB + (1 - rho) * RTT_AB) * f(u_AB)
//   f(u) = 1 / (1 + e^{alpha * (beta - u)}) + 1
//
// where rho is the link loss rate, u_AB is the max of the link
// utilization and both endpoint node utilizations, and f is a
// sigmoid-like penalty ranging from 1 to 2. alpha/beta are expressed in
// percentage points (u = 80 means 80%), matching the paper's alpha=0.5,
// beta=80% — which yields a sharp penalty as utilization crosses 80%.
namespace livenet::brain {

struct LinkState {
  Duration rtt = 0;
  double loss_rate = 0.0;
  double utilization = 0.0;  ///< [0,1]
  bool valid = false;
};

struct WeightParams {
  double alpha = 0.5;
  double beta_percent = 80.0;
};

/// Eq. 3: sigmoid-like utilization penalty in [1, 2]. `u` in [0,1].
double utilization_penalty(double u, const WeightParams& params);

/// Eq. 2: abstracted link weight in microseconds of expected RTT.
double link_weight(const LinkState& link, double node_util_a,
                   double node_util_b, const WeightParams& params);

/// Dense directed graph over the overlay nodes.
class RoutingGraph {
 public:
  explicit RoutingGraph(std::size_t n)
      : n_(n), weights_(n * n, kNoEdge) {}

  static constexpr double kNoEdge = -1.0;

  std::size_t size() const { return n_; }

  void set_weight(std::size_t a, std::size_t b, double w) {
    weights_[a * n_ + b] = w;
  }
  double weight(std::size_t a, std::size_t b) const {
    return weights_[a * n_ + b];
  }
  bool has_edge(std::size_t a, std::size_t b) const {
    return weights_[a * n_ + b] >= 0.0;
  }

 private:
  std::size_t n_;
  std::vector<double> weights_;
};

}  // namespace livenet::brain
