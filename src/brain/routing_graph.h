#pragma once

#include <cstdint>
#include <vector>

#include "sim/message.h"
#include "util/time.h"

// The abstracted overlay graph the Global Routing module computes on
// (paper §4.3). Link weights follow Eq. 2/3:
//
//   W_AB = (rho * 2*RTT_AB + (1 - rho) * RTT_AB) * f(u_AB)
//   f(u) = 1 / (1 + e^{alpha * (beta - u)}) + 1
//
// where rho is the link loss rate, u_AB is the max of the link
// utilization and both endpoint node utilizations, and f is a
// sigmoid-like penalty ranging from 1 to 2. alpha/beta are expressed in
// percentage points (u = 80 means 80%), matching the paper's alpha=0.5,
// beta=80% — which yields a sharp penalty as utilization crosses 80%.
namespace livenet::brain {

struct LinkState {
  Duration rtt = 0;
  double loss_rate = 0.0;
  double utilization = 0.0;  ///< [0,1]
  bool valid = false;
};

struct WeightParams {
  double alpha = 0.5;
  double beta_percent = 80.0;
};

/// Eq. 3: sigmoid-like utilization penalty in [1, 2]. `u` in [0,1].
double utilization_penalty(double u, const WeightParams& params);

/// Eq. 2: abstracted link weight in microseconds of expected RTT.
double link_weight(const LinkState& link, double node_util_a,
                   double node_util_b, const WeightParams& params);

/// Dense directed graph over the overlay nodes, with a compressed
/// sparse row (CSR) adjacency view for the Dijkstra inner loops.
///
/// The dense matrix keeps O(1) random-access `weight(a, b)` for path
/// costing and constraint checks; the CSR view gives the shortest-path
/// cores an O(out-degree) neighbor walk instead of an O(n) row scan per
/// settled node. Columns within a CSR row are ascending, i.e. exactly
/// the order the dense scan visits neighbors — relaxation order (and
/// therefore equal-cost tie-breaking) is identical between the views.
class RoutingGraph {
 public:
  explicit RoutingGraph(std::size_t n)
      : n_(n), weights_(n * n, kNoEdge) {}

  static constexpr double kNoEdge = -1.0;

  std::size_t size() const { return n_; }

  void set_weight(std::size_t a, std::size_t b, double w) {
    weights_[a * n_ + b] = w;
    ++version_;
  }

  /// Wholesale in-place rebuild from a freshly-filled dense matrix
  /// (`cells` holds n*n weights, kNoEdge for absent edges; it is
  /// swapped in, and the previous matrix is handed back through the
  /// same pointer for the caller to reuse as next cycle's fill
  /// buffer). The version is bumped only when at least one cell
  /// actually changed, so per-graph caches (the CSR view, solver
  /// shortest-path trees) stay valid across cycles whose inputs did
  /// not move — the warm-start key of the Parallel Brain.
  /// Returns true when the graph changed.
  bool rebuild_from(std::size_t n, std::vector<double>* cells);
  double weight(std::size_t a, std::size_t b) const {
    return weights_[a * n_ + b];
  }
  /// Dense out-weight row of `a` (n cells, kNoEdge for absent edges) —
  /// lets scans stream a whole row without per-edge indexing.
  const double* row(std::size_t a) const { return weights_.data() + a * n_; }
  bool has_edge(std::size_t a, std::size_t b) const {
    return weights_[a * n_ + b] >= 0.0;
  }

  /// CSR adjacency. `col[row_start[u] .. row_start[u+1])` lists u's
  /// out-neighbors in ascending index order with matching `weight`.
  struct CsrView {
    std::vector<std::uint32_t> row_start;  ///< n + 1 offsets
    std::vector<std::uint32_t> col;
    std::vector<double> weight;
    std::size_t edge_count() const { return col.size(); }
  };

  /// Returns the CSR view, (re)building it if any edge changed since
  /// the last call. Cold path: O(n^2) per rebuild, amortized over every
  /// Dijkstra of a routing cycle.
  const CsrView& csr() const;

  /// Monotonic mutation counter; callers caching per-graph state
  /// (e.g. shortest-path trees) key their validity on it.
  std::uint64_t version() const { return version_; }

 private:
  std::size_t n_;
  std::vector<double> weights_;
  std::uint64_t version_ = 0;
  mutable CsrView csr_;
  mutable std::uint64_t csr_version_ = ~0ull;  ///< version csr_ was built at
};

}  // namespace livenet::brain
