#include "brain/stream_mgmt.h"

#include <algorithm>

namespace livenet::brain {

void StreamMgmt::on_register(const overlay::StreamRegister& reg, Sib* sib) {
  if (reg.active) {
    sib->set_producer(reg.stream_id, reg.producer);
  } else {
    sib->erase(reg.stream_id);
    popularity_.erase(reg.stream_id);
  }
}

std::vector<media::StreamId> StreamMgmt::popular_streams(
    std::size_t top_n, const Sib& sib) const {
  std::vector<media::StreamId> out;
  for (const media::StreamId s : pinned_) {
    if (sib.producer_of(s) != sim::kNoNode && out.size() < top_n) {
      out.push_back(s);
    }
  }
  std::vector<std::pair<std::uint64_t, media::StreamId>> ranked;
  ranked.reserve(popularity_.size());
  for (const auto& [s, n] : popularity_) {
    if (sib.producer_of(s) == sim::kNoNode) continue;
    if (std::find(out.begin(), out.end(), s) != out.end()) continue;
    ranked.emplace_back(n, s);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (const auto& [n, s] : ranked) {
    if (out.size() >= top_n) break;
    out.push_back(s);
  }
  return out;
}

}  // namespace livenet::brain
