#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "brain/pib.h"
#include "overlay/messages.h"

// Stream Management module (paper §4.1): maintains the SIB from
// producer registrations and tracks per-stream popularity (historical
// request counts) used to decide which streams get proactive path
// pushes (§4.4: "for popular broadcasters, up-to-date overlay paths are
// proactively pushed to all overlay nodes in advance of any viewers").
namespace livenet::brain {

class StreamMgmt {
 public:
  void on_register(const overlay::StreamRegister& reg, Sib* sib);

  /// Notes one path request for the stream (popularity signal).
  void note_request(media::StreamId s) { ++popularity_[s]; }

  /// Marks a stream popular regardless of history (campaigns that
  /// "notify us in advance").
  void mark_popular(media::StreamId s) { pinned_.push_back(s); }

  /// Active streams ordered by popularity, at most `top_n`, pinned
  /// streams first.
  std::vector<media::StreamId> popular_streams(std::size_t top_n,
                                               const Sib& sib) const;

  std::uint64_t request_count(media::StreamId s) const {
    const auto it = popularity_.find(s);
    return it != popularity_.end() ? it->second : 0;
  }

 private:
  std::unordered_map<media::StreamId, std::uint64_t> popularity_;
  std::vector<media::StreamId> pinned_;
};

}  // namespace livenet::brain
