#include "client/broadcaster.h"

#include "media/rtp.h"
#include "util/logging.h"

namespace livenet::client {

using media::Frame;
using media::RtpPacket;
using sim::NodeId;

Broadcaster::Broadcaster(sim::Network* net, std::uint64_t seed,
                         const BroadcasterConfig& cfg)
    : net_(net), seed_(seed), cfg_(cfg) {}

Broadcaster::~Broadcaster() { stop(); }

void Broadcaster::start(NodeId producer,
                        std::vector<media::StreamId> stream_ids) {
  if (broadcasting_) stop();
  producer_ = producer;
  stream_ids_ = std::move(stream_ids);
  broadcasting_ = true;
  uplink_ = std::make_unique<overlay::LinkSender>(net_, node_id(), producer_,
                                                  cfg_.uplink);

  Rng rng(seed_);
  versions_.clear();
  versions_.resize(stream_ids_.size());
  for (std::size_t v = 0; v < stream_ids_.size(); ++v) {
    const auto& vcfg =
        v < cfg_.versions.size() ? cfg_.versions[v] : cfg_.versions.back();
    auto& ver = versions_[v];
    ver.source = std::make_unique<media::VideoSource>(stream_ids_[v], vcfg,
                                                      rng.fork());
    if (cfg_.send_audio) {
      ver.audio =
          std::make_unique<media::AudioSource>(stream_ids_[v], cfg_.audio);
    }
    ver.packetizer = std::make_unique<media::Packetizer>(stream_ids_[v]);
    ver.packetizer->set_trace_sample(cfg_.trace_sample);

    auto pub = sim::make_message<overlay::PublishRequest>();
    pub->stream_id = stream_ids_[v];
    pub->client_id = static_cast<overlay::ClientId>(node_id());
    pub->bitrate_bps = vcfg.bitrate_bps;
    net_->send(node_id(), producer_, std::move(pub));

    ver.video_timer = net_->loop()->schedule_after(
        ver.source->frame_interval(), [this, v] { video_tick(v); });
    if (ver.audio) {
      ver.audio_timer = net_->loop()->schedule_after(
          ver.audio->frame_interval(), [this, v] { audio_tick(v); });
    }
  }
}

void Broadcaster::stop() {
  if (!broadcasting_) return;
  broadcasting_ = false;
  for (std::size_t v = 0; v < versions_.size(); ++v) {
    auto& ver = versions_[v];
    if (ver.video_timer != sim::kInvalidEvent) {
      net_->loop()->cancel(ver.video_timer);
      ver.video_timer = sim::kInvalidEvent;
    }
    if (ver.audio_timer != sim::kInvalidEvent) {
      net_->loop()->cancel(ver.audio_timer);
      ver.audio_timer = sim::kInvalidEvent;
    }
    auto stop_msg = sim::make_message<overlay::PublishStop>();
    stop_msg->stream_id = stream_ids_[v];
    stop_msg->client_id = static_cast<overlay::ClientId>(node_id());
    net_->send(node_id(), producer_, std::move(stop_msg));
  }
}

void Broadcaster::migrate(NodeId new_producer) {
  if (!broadcasting_ || new_producer == producer_) return;
  const NodeId old_producer = producer_;
  producer_ = new_producer;
  uplink_ = std::make_unique<overlay::LinkSender>(net_, node_id(), producer_,
                                                  cfg_.uplink);
  // Publish at the new producer (re-registers the SIB entries there).
  for (std::size_t v = 0; v < stream_ids_.size(); ++v) {
    auto pub = sim::make_message<overlay::PublishRequest>();
    pub->stream_id = stream_ids_[v];
    pub->client_id = static_cast<overlay::ClientId>(node_id());
    pub->bitrate_bps =
        v < cfg_.versions.size() ? cfg_.versions[v].bitrate_bps : 0.0;
    net_->send(node_id(), producer_, std::move(pub));
  }
  // Tell the control plane so the old producer becomes a relay.
  auto mig = sim::make_message<overlay::ProducerMigrate>();
  mig->streams = stream_ids_;
  mig->old_producer = old_producer;
  net_->send(node_id(), producer_, std::move(mig));
}

void Broadcaster::announce_costream(media::StreamId old_stream,
                                    media::StreamId new_stream) {
  auto notice = sim::make_message<overlay::StreamSwitchNotice>();
  notice->from_stream = old_stream;
  notice->to_stream = new_stream;
  net_->send(node_id(), producer_, std::move(notice));
}

void Broadcaster::video_tick(std::size_t v) {
  auto& ver = versions_[v];
  ver.video_timer = sim::kInvalidEvent;
  if (!broadcasting_) return;
  // One capture tick = one picture: the base-layer frame plus any SVC
  // spatial enhancement frames (a 1-wide lattice yields exactly one).
  // All become sendable together after the encoder latency.
  for (const Frame& frame : ver.source->next_picture(net_->loop()->now())) {
    net_->loop()->schedule_after(cfg_.encode_delay,
                                 [this, v, frame] { upload_frame(v, frame); });
  }
  ver.video_timer = net_->loop()->schedule_after(
      ver.source->frame_interval(), [this, v] { video_tick(v); });
}

void Broadcaster::audio_tick(std::size_t v) {
  auto& ver = versions_[v];
  ver.audio_timer = sim::kInvalidEvent;
  if (!broadcasting_) return;
  const Frame frame = ver.audio->next_frame(net_->loop()->now());
  upload_frame(v, frame);  // audio encoding latency is negligible
  ver.audio_timer = net_->loop()->schedule_after(
      ver.audio->frame_interval(), [this, v] { audio_tick(v); });
}

void Broadcaster::upload_frame(std::size_t v, const Frame& frame) {
  if (!broadcasting_) return;
  auto& ver = versions_[v];
  // Seed the delay header extension (§6.1): encode time + half the
  // first-mile RTT; the pacer queue component accrues implicitly.
  const sim::Link* l = net_->link(node_id(), producer_);
  const Duration half_rtt = l != nullptr ? l->base_rtt() / 2 : 0;
  const Duration initial_ext =
      (frame.is_audio() ? 0 : cfg_.encode_delay) + half_rtt;
  for (auto& pkt : ver.packetizer->packetize(frame, initial_ext)) {
    uplink_->send_media(std::move(pkt));
  }
}

void Broadcaster::on_message(NodeId from, const sim::MessagePtr& msg) {
  (void)from;
  if (const auto nack =
          sim::msg_cast<const media::NackMessage>(msg)) {
    if (uplink_) uplink_->on_nack(nack->stream_id, nack->audio, nack->missing);
    return;
  }
  if (const auto fb =
          sim::msg_cast<const media::CcFeedbackMessage>(msg)) {
    if (uplink_) uplink_->on_cc_feedback(fb->remb_bps, fb->loss_fraction);
    return;
  }
}

}  // namespace livenet::client
