#pragma once

#include <memory>
#include <vector>

#include "media/packetizer.h"
#include "media/video_source.h"
#include "overlay/link_sender.h"
#include "overlay/messages.h"
#include "sim/network.h"
#include "sim/sim_node.h"

// A broadcaster client: encodes (models) the camera feed in several
// simulcast bitrate versions (§5.2) and uploads all of them to its
// producer node over one uplink, WebRTC-style: paced sending with GCC
// driven by the producer's feedback, and NACK-based retransmission from
// the broadcaster's send history.
namespace livenet::client {

struct BroadcasterConfig {
  Duration encode_delay = 60 * kMs;  ///< capture-to-sendable latency
  std::vector<media::VideoSourceConfig> versions;  ///< simulcast ladder
  media::AudioSourceConfig audio;
  bool send_audio = true;  ///< audio attached to every version's stream
  overlay::LinkSender::Config uplink;
  /// Fraction of produced packets stamped with a telemetry trace_id
  /// (0 = tracing off). Applied to every simulcast version.
  double trace_sample = 0.0;
};

class Broadcaster final : public sim::SimNode {
 public:
  Broadcaster(sim::Network* net, std::uint64_t seed)
      : Broadcaster(net, seed, BroadcasterConfig()) {}
  Broadcaster(sim::Network* net, std::uint64_t seed,
              const BroadcasterConfig& cfg);
  ~Broadcaster() override;

  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override;

  /// Starts broadcasting: `stream_ids[i]` is the stream for
  /// `cfg.versions[i]` (highest bitrate first, by convention).
  void start(sim::NodeId producer, std::vector<media::StreamId> stream_ids);

  /// Stops broadcasting (sends PublishStop for every version).
  void stop();

  /// Broadcaster mobility (§7.1): re-homes the upload to a new producer
  /// node. The new producer registers the streams; the Brain instructs
  /// the old producer to relay from the new one so no downstream path
  /// changes. The caller must have wired an access link to the new
  /// producer beforehand.
  void migrate(sim::NodeId new_producer);

  /// Announces a co-stream switch: viewers of `old_stream` should be
  /// moved to `new_stream` by their consumer nodes. The notice goes to
  /// the producer node, which fans it out across the overlay (standing
  /// in for the application control plane).
  void announce_costream(media::StreamId old_stream,
                         media::StreamId new_stream);

  bool broadcasting() const { return broadcasting_; }
  const std::vector<media::StreamId>& stream_ids() const {
    return stream_ids_;
  }
  const overlay::LinkSender* uplink() const { return uplink_.get(); }

 private:
  struct Version {
    std::unique_ptr<media::VideoSource> source;
    std::unique_ptr<media::AudioSource> audio;
    std::unique_ptr<media::Packetizer> packetizer;
    sim::EventId video_timer = sim::kInvalidEvent;
    sim::EventId audio_timer = sim::kInvalidEvent;
  };

  void video_tick(std::size_t version);
  void audio_tick(std::size_t version);
  void upload_frame(std::size_t version, const media::Frame& frame);

  sim::Network* net_;
  std::uint64_t seed_;
  BroadcasterConfig cfg_;
  sim::NodeId producer_ = sim::kNoNode;
  std::vector<media::StreamId> stream_ids_;
  std::vector<Version> versions_;
  std::unique_ptr<overlay::LinkSender> uplink_;
  bool broadcasting_ = false;
};

}  // namespace livenet::client
