#pragma once

#include <deque>

#include "media/frame.h"
#include "sim/message.h"
#include "util/stats.h"
#include "util/time.h"

// Client-side QoE records, mirroring the paper's second data source
// (§6.1): per view, the average streaming delay (capture-to-display,
// measured both from the global virtual clock and from the RTP delay
// header extension), the number of stalls (playing-buffer underruns)
// and the fast-startup indicator (startup within 1 second).
namespace livenet::client {

struct QoeRecord {
  media::StreamId stream = media::kNoStream;
  sim::NodeId viewer = sim::kNoNode;
  sim::NodeId consumer = sim::kNoNode;
  /// How many real viewers this record stands for. 1 for an explicit
  /// Viewer; a ViewerCohort's representative record carries the cohort
  /// multiplier, so population-level aggregates weight by this.
  std::uint32_t weight = 1;

  Time view_start = kNever;       ///< when the view request was sent
  Time first_display = kNever;    ///< first frame shown
  std::uint32_t stalls = 0;
  std::uint32_t dead_air_stalls = 0;  ///< subset of stalls: starvation
  Duration total_stall_time = 0;
  OnlineStats streaming_delay_ms;  ///< per displayed frame
  OnlineStats header_ext_delay_ms; ///< delay-extension measurement (I frames)
  std::uint64_t frames_displayed = 0;
  std::uint64_t frames_skipped = 0;
  /// Video bytes actually shown — with SVC layer filtering, delivered
  /// bitrate varies per viewer even within one stream version.
  std::uint64_t bytes_displayed = 0;
  bool view_failed = false;
  bool completed = false;          ///< ViewStop sent (vs. cut off at sim end)

  Duration startup_delay() const {
    return (first_display == kNever || view_start == kNever)
               ? kNever
               : first_display - view_start;
  }
  bool fast_startup() const {
    const Duration d = startup_delay();
    return d != kNever && d <= 1 * kSec;
  }
};

class ClientMetrics {
 public:
  QoeRecord& new_record() { return records_.emplace_back(); }
  const std::deque<QoeRecord>& records() const { return records_; }
  std::deque<QoeRecord>& records() { return records_; }

  /// Modeled viewer-population size: records weighted by cohort
  /// multiplier (== records().size() when everything is explicit).
  std::uint64_t modeled_viewers() const {
    std::uint64_t total = 0;
    for (const auto& r : records_) total += r.weight;
    return total;
  }

 private:
  std::deque<QoeRecord> records_;
};

}  // namespace livenet::client
