#include "client/viewer.h"

#include <algorithm>

#include "media/rtp.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/logging.h"

namespace livenet::client {

using media::Frame;
using media::LayerMask;
using media::RtpPacket;
using sim::NodeId;

namespace {

/// The base layer can never be masked off; an empty mask means "all".
LayerMask sanitize_mask(LayerMask mask) {
  if (mask == 0) return media::kAllLayers;
  return static_cast<LayerMask>(mask | media::layer_bit(0, 0));
}

}  // namespace

Viewer::Viewer(sim::Network* net, ClientMetrics* metrics,
               const ViewerConfig& cfg)
    : net_(net), metrics_(metrics), cfg_(cfg) {}

Viewer::~Viewer() {
  if (report_timer_ != sim::kInvalidEvent) {
    net_->loop()->cancel(report_timer_);
  }
}

void Viewer::start_view(NodeId consumer, media::StreamId stream,
                        std::vector<media::StreamId> fallback_versions) {
  consumer_ = consumer;
  requested_stream_ = stream;
  stopped_ = false;
  playing_ = false;
  latest_capture_ = kNever;
  last_capture_seen_ = kNever;
  pipeline_peak_ = 0;
  prebuffer_.clear();
  stall_shift_ = 0;
  in_stall_ = false;
  stalls_since_report_ = 0;
  skips_since_report_ = 0;  // a fresh record must not inherit old skips
  mask_ = sanitize_mask(cfg_.initial_layer_mask);
  svc_s_ = 1;
  svc_t_ = 1;
  filtered_credit_ = 0.0;
  clean_windows_ = 0;

  record_ = &metrics_->new_record();
  record_->stream = stream;
  record_->viewer = node_id();
  record_->consumer = consumer;
  record_->view_start = net_->loop()->now();

  receiver_ = std::make_unique<overlay::LinkReceiver>(
      net_, node_id(), consumer,
      [this](const media::RtpPacketPtr& pkt) { assemble(pkt); },
      [this](media::StreamId) {
        // Transport-level unrecoverable hole on the last mile.
        if (record_ != nullptr) ++record_->frames_skipped;
        ++skips_since_report_;
      },
      cfg_.receiver);

  auto req = sim::make_message<overlay::ViewRequest>();
  req->stream_id = stream;
  req->client_id = static_cast<overlay::ClientId>(node_id());
  req->fallback_versions = std::move(fallback_versions);
  req->layer_mask = mask_;
  net_->send(node_id(), consumer_, std::move(req));

  if (report_timer_ == sim::kInvalidEvent) {
    report_timer_ = net_->loop()->schedule_after(
        cfg_.quality_report_interval, [this] { send_quality_report(); });
  }
}

void Viewer::stop_view() {
  if (stopped_) return;
  stopped_ = true;
  auto stop = sim::make_message<overlay::ViewStop>();
  stop->stream_id = requested_stream_;
  stop->client_id = static_cast<overlay::ClientId>(node_id());
  net_->send(node_id(), consumer_, std::move(stop));
  if (record_ != nullptr) record_->completed = true;
  if (report_timer_ != sim::kInvalidEvent) {
    net_->loop()->cancel(report_timer_);
    report_timer_ = sim::kInvalidEvent;
  }
}

void Viewer::migrate(NodeId new_consumer) {
  if (stopped_ || new_consumer == consumer_) return;
  auto stop = sim::make_message<overlay::ViewStop>();
  stop->stream_id = requested_stream_;
  stop->client_id = static_cast<overlay::ClientId>(node_id());
  net_->send(node_id(), consumer_, std::move(stop));

  consumer_ = new_consumer;
  if (record_ != nullptr) record_->consumer = new_consumer;
  // Fresh transport toward the new consumer; playback state persists.
  receiver_ = std::make_unique<overlay::LinkReceiver>(
      net_, node_id(), new_consumer,
      [this](const media::RtpPacketPtr& pkt) { assemble(pkt); },
      [this](media::StreamId) {
        if (record_ != nullptr) ++record_->frames_skipped;
        ++skips_since_report_;
      },
      cfg_.receiver);
  // The framers restart with the new consumer's client-facing seq
  // spaces, which zeroes their cumulative drop counters — fold the
  // drops that accrued since the last quality report into the interval
  // first, or the mid-interval tally silently loses them (and the next
  // report's delta computation would go backwards).
  std::uint64_t dropped_total = 0;
  for (auto& [stream, jf] : framers_) {
    jf->flush(net_->loop()->now());
    dropped_total += jf->frames_dropped();
  }
  if (dropped_total > jitter_drops_reported_) {
    const auto delta =
        static_cast<std::uint32_t>(dropped_total - jitter_drops_reported_);
    skips_since_report_ += delta;
    if (record_ != nullptr) record_->frames_skipped += delta;
  }
  jitter_drops_reported_ = 0;
  framers_.clear();

  auto req = sim::make_message<overlay::ViewRequest>();
  req->stream_id = requested_stream_;
  req->client_id = static_cast<overlay::ClientId>(node_id());
  req->layer_mask = mask_;  // the layer selection survives the migration
  filtered_credit_ = 0.0;
  net_->send(node_id(), consumer_, std::move(req));
}

void Viewer::on_message(NodeId from, const sim::MessagePtr& msg) {
  if (stopped_) return;
  if (const auto rtp = sim::msg_cast<const RtpPacket>(msg)) {
    // Only the current consumer's flow is valid: after a migration the
    // old consumer may still flush a few packets whose (rewritten)
    // sequence numbers would poison the fresh receive buffer.
    if (from == consumer_) receiver_->on_rtp(rtp);
    return;
  }
  if (const auto ack = sim::msg_cast<const overlay::ViewAck>(msg)) {
    // Acks only bind from the *current* consumer: after a migration the
    // old consumer's (possibly failing) ack for the torn-down view must
    // not kill the new view or strand its report timer.
    if (from != consumer_) return;
    if (!ack->ok && record_ != nullptr) {
      record_->view_failed = true;
      stopped_ = true;
      if (report_timer_ != sim::kInvalidEvent) {
        net_->loop()->cancel(report_timer_);
        report_timer_ = sim::kInvalidEvent;
      }
    }
    return;
  }
  if (const auto lmu = sim::msg_cast<const overlay::LayerMaskUpdate>(msg)) {
    // The consumer confirmed a committed mask (ours, or one it imposed
    // under last-mile pressure): this is exactly what it now filters,
    // so the skip expectation tracks it.
    if (from == consumer_ && lmu->stream_id != media::kNoStream) {
      mask_ = sanitize_mask(lmu->layer_mask);
    }
    return;
  }
  // NACK / CC feedback addressed to us never occur: the viewer only
  // receives; its LinkReceiver originates those messages itself.
}

void Viewer::assemble(const media::RtpPacketPtr& pkt) {
  auto it = framers_.find(pkt->stream_id());
  if (it == framers_.end()) {
    it = framers_
             .emplace(pkt->stream_id(),
                      std::make_unique<media::JitterFramer>(
                          [this](const Frame& f) { on_frame(f); }))
             .first;
  }
  const std::uint64_t completed_before = it->second->frames_completed();
  it->second->on_packet(*pkt, net_->loop()->now());
  const std::uint64_t completed = it->second->frames_completed();
  if (completed > completed_before) {
    telemetry::handles().jitter_frames_released->add(completed -
                                                     completed_before);
    // The packet that completed a frame marks the end of the traced
    // packet's journey: released from the client's jitter buffer.
    telemetry::record_hop(pkt->trace_id(), net_->loop()->now(),
                          pkt->stream_id(), pkt->producer_seq(), node_id(),
                          consumer_, telemetry::HopEvent::kJitterRelease);
  }
}

void Viewer::on_frame(const Frame& frame) {
  if (stopped_ || record_ == nullptr) return;
  if (frame.is_audio()) return;  // playback accounting is video-driven

  // SVC: latch the stream's lattice and accrue the filtered-frame
  // expectation — every delivered frame implies (1-keep)/keep frames
  // the committed mask excluded, which show up as frame-id gaps below
  // and must not be read as network damage. (The cap bounds drift
  // across mask flips.)
  if (frame.is_svc()) {
    svc_s_ = frame.spatial_layers;
    svc_t_ = frame.temporal_layers;
    const double keep = keep_fraction();
    if (keep > 0.0 && keep < 1.0) {
      filtered_credit_ =
          std::min(filtered_credit_ + (1.0 - keep) / keep, 64.0);
    }
  }

  // Whole frames that never arrived are invisible to the transport
  // (the consumer renumbers client-facing seqs); detect them from the
  // frame-id sequence instead.
  auto& last_id = last_frame_id_[frame.stream_id];
  if (last_id != 0 && frame.frame_id > last_id + 1) {
    auto missing = static_cast<std::uint32_t>(frame.frame_id - last_id - 1);
    // Spend the expectation credit first: gaps the mask explains are
    // intentional, not skips.
    const auto expected = static_cast<std::uint32_t>(filtered_credit_);
    const std::uint32_t voided = std::min(missing, expected);
    filtered_credit_ -= voided;
    missing -= voided;
    record_->frames_skipped += missing;
    skips_since_report_ += missing;
  }
  if (frame.frame_id > last_id) last_id = frame.frame_id;

  const Time now = net_->loop()->now();
  latest_capture_ = std::max(latest_capture_, frame.capture_time);

  if (!playing_) {
    // Buffer until the content span covers the playback buffer, then
    // join at (newest capture - buffer): everything older is
    // decode-only (it seeded the decoder from the cached I frame).
    prebuffer_.push_back(frame);
    const Time span_start = prebuffer_.front().capture_time;
    if (latest_capture_ - span_start < cfg_.playback_buffer) {
      return;  // keep buffering
    }
    playing_ = true;
    const Time join_target = latest_capture_ - cfg_.playback_buffer;
    const Time display = now + cfg_.decode_delay;
    bool first = true;
    for (const auto& f : prebuffer_) {
      if (f.capture_time < join_target) continue;  // decode-only
      if (first) {
        playout_offset_ = display - f.capture_time;
        record_->first_display = display;
        first = false;
      }
      // Buffered frames after the join point display at their deadline.
      const Time d = f.capture_time + playout_offset_;
      record_->streaming_delay_ms.add(to_ms(d - f.capture_time));
      if (delay_probe_) delay_probe_(to_ms(d - f.capture_time));
      if (f.is_keyframe() || f.frame_id == prebuffer_.front().frame_id) {
        record_->header_ext_delay_ms.add(
            to_ms(f.delay_ext_us + (d > now ? d - now : 0) +
                  cfg_.decode_delay));
      }
      ++record_->frames_displayed;
      record_->bytes_displayed += f.size_bytes;
    }
    prebuffer_.clear();
    return;
  }

  // Catch-up toward live: if this frame's pipeline delay shows we are
  // holding more than the target buffer, advance the playout point a
  // little (fast playback), like real live-streaming players do after
  // joining from an old cached GoP.
  const Duration pipeline = now - frame.capture_time;
  // Track a slowly-decaying peak of the pipeline delay: large frames
  // (I frames) ride several pacers and arrive much later than P frames,
  // and the playout point must respect the peak, not the typical frame.
  if (last_capture_seen_ != kNever) {
    const Duration gap = frame.capture_time - last_capture_seen_;
    pipeline_peak_ = std::max<Duration>(pipeline, pipeline_peak_ - gap / 16);
  } else {
    pipeline_peak_ = pipeline;
  }
  const Duration target_offset = pipeline_peak_ + cfg_.playback_buffer +
                                 cfg_.catchup_headroom + cfg_.decode_delay;
  const Duration effective = playout_offset_ + stall_shift_;
  if (cfg_.catchup_rate > 0.0 && effective > target_offset + 50 * kMs &&
      last_capture_seen_ != kNever) {
    const Duration frame_gap = frame.capture_time - last_capture_seen_;
    if (frame_gap > 0) {
      const auto step = static_cast<Duration>(
          cfg_.catchup_rate * static_cast<double>(frame_gap));
      playout_offset_ -= std::min(step, effective - target_offset);
    }
  }
  last_capture_seen_ = frame.capture_time;

  const Time deadline = frame.capture_time + playout_offset_ + stall_shift_;
  Time display = deadline;
  if (now > deadline) {
    // The playing buffer went vacant: a stall. Consecutive late frames
    // belong to the same stall event; every late frame shifts the
    // playout point by its lateness.
    const Duration lateness = now - deadline;
    if (!in_stall_) {
      ++record_->stalls;
      ++stalls_since_report_;
      in_stall_ = true;
    }
    record_->total_stall_time += lateness;
    stall_shift_ += lateness;
    display = now;
  } else {
    in_stall_ = false;
  }
  last_display_time_ = display;
  record_->streaming_delay_ms.add(to_ms(display - frame.capture_time));
  if (delay_probe_) delay_probe_(to_ms(display - frame.capture_time));
  if (frame.is_keyframe()) {
    // The delay header extension is carried in the first packet of each
    // I frame (§6.1); the client adds buffering and decode time.
    const Duration buffer_wait = display > now ? display - now : 0;
    record_->header_ext_delay_ms.add(
        to_ms(frame.delay_ext_us + buffer_wait + cfg_.decode_delay));
  }
  ++record_->frames_displayed;
  record_->bytes_displayed += frame.size_bytes;
}

void Viewer::send_quality_report() {
  report_timer_ = sim::kInvalidEvent;
  if (stopped_) return;
  // Let stalled jitter-buffer heads expire even when no packet arrives,
  // and fold assembly drops into the skip signal (they are frames the
  // network failed to deliver in time).
  std::uint64_t dropped_total = 0;
  for (auto& [stream, jf] : framers_) {
    jf->flush(net_->loop()->now());
    dropped_total += jf->frames_dropped();
  }
  if (dropped_total > jitter_drops_reported_) {
    const auto delta =
        static_cast<std::uint32_t>(dropped_total - jitter_drops_reported_);
    skips_since_report_ += delta;
    if (record_ != nullptr) record_->frames_skipped += delta;
    jitter_drops_reported_ = dropped_total;
  }
  // Dead air: the stream stopped entirely — no frame arrives, so the
  // late-frame stall detector never fires. The vacant playing buffer
  // still counts as a stall (one per report window while starved).
  const Time now = net_->loop()->now();
  if (playing_ && last_display_time_ != kNever &&
      now - last_display_time_ > 700 * kMs) {
    ++record_->stalls;
    ++record_->dead_air_stalls;
    ++stalls_since_report_;
    in_stall_ = true;
  }
  auto rep = sim::make_message<overlay::ClientQualityReport>();
  rep->stream_id = requested_stream_;
  rep->client_id = static_cast<overlay::ClientId>(node_id());
  rep->stalls_since_last = stalls_since_report_;
  rep->skips_since_last = skips_since_report_;
  rep->avg_delay_us = static_cast<Duration>(
      record_ != nullptr ? record_->streaming_delay_ms.mean() * kMs : 0);
  maybe_adapt_layers(stalls_since_report_, skips_since_report_);
  stalls_since_report_ = 0;
  skips_since_report_ = 0;
  net_->send(node_id(), consumer_, std::move(rep));
  ++reports_sent_;
  report_timer_ = net_->loop()->schedule_after(
      cfg_.quality_report_interval, [this] { send_quality_report(); });
}

void Viewer::maybe_adapt_layers(std::uint32_t stalls, std::uint32_t skips) {
  if (!cfg_.svc_adapt || (svc_s_ <= 1 && svc_t_ <= 1)) return;
  const LayerMask lattice = media::lattice_mask(svc_s_, svc_t_);
  const LayerMask base = media::layer_bit(0, 0);

  // A quality flip is a mask flip (§5.2 delegated selection, SVC form):
  // trouble sheds the highest enhancement layer; sustained clean
  // windows ask the lowest missing layer back. The consumer commits
  // (widens only at a decodable anchor) and confirms with its own
  // LayerMaskUpdate — mask_ changes there, never here.
  if (stalls > 0 || skips >= 4) {
    clean_windows_ = 0;
    const LayerMask candidates =
        static_cast<LayerMask>(mask_ & lattice & ~base);
    if (candidates == 0) return;  // base-only; worse goes to the ladder
    int hi = 15;
    while (((candidates >> hi) & 1u) == 0) --hi;
    request_mask(static_cast<LayerMask>(
        ((mask_ & lattice) & ~(LayerMask{1} << hi)) | base));
    return;
  }
  if (stalls == 0 && skips == 0) {
    if (++clean_windows_ >= cfg_.svc_upswitch_windows) {
      clean_windows_ = 0;
      const LayerMask have = static_cast<LayerMask>(mask_ & lattice);
      const LayerMask missing = static_cast<LayerMask>(lattice & ~have);
      if (missing != 0) {
        const auto lowest =
            static_cast<LayerMask>(missing & (~missing + 1u));
        request_mask(static_cast<LayerMask>(have | lowest));
      }
    }
  } else {
    clean_windows_ = 0;
  }
}

void Viewer::request_mask(LayerMask mask) {
  auto upd = sim::make_message<overlay::LayerMaskUpdate>();
  upd->stream_id = requested_stream_;
  upd->layer_mask = sanitize_mask(mask);
  net_->send(node_id(), consumer_, std::move(upd));
  ++mask_flips_requested_;
}

double Viewer::keep_fraction() const {
  if (svc_s_ <= 1 && svc_t_ <= 1) return 1.0;
  const LayerMask lattice = media::lattice_mask(svc_s_, svc_t_);
  const LayerMask kept_mask = static_cast<LayerMask>(mask_ & lattice);
  int total = 0;
  int kept = 0;
  for (std::uint8_t s = 0; s < svc_s_; ++s) {
    for (std::uint8_t t = 0; t < svc_t_; ++t) {
      const int w = t == 0 ? 1 : (1 << (t - 1));
      total += w;
      if ((kept_mask & media::layer_bit(s, t)) != 0) kept += w;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(kept) / total;
}

}  // namespace livenet::client
