#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "client/records.h"
#include "media/jitter_framer.h"
#include "overlay/link_receiver.h"
#include "overlay/messages.h"
#include "sim/network.h"
#include "sim/sim_node.h"

// A viewer client. Deliberately thin (§7.2, "Thin Clients"): it sends a
// view request, recovers last-mile losses via NACK toward its consumer
// node, reports quality periodically, and plays back whatever stream
// the consumer forwards (the consumer handles bitrate selection and
// co-stream switching on the client's behalf).
//
// Playback model: the client joins at (newest capture - playback
// buffer). Earlier burst frames are decode-only (they seed the decoder
// from the cached I frame). Each later frame has a playout deadline at
// capture + playout offset; a frame missing its deadline stalls
// playback and shifts all later deadlines — matching how the paper
// counts stalls (vacant playing buffer) and streaming delay
// (capture-to-display).
namespace livenet::client {

struct ViewerConfig {
  Duration playback_buffer = 300 * kMs;  ///< Taobao Live's client buffer
  Duration decode_delay = 30 * kMs;
  Duration quality_report_interval = 1 * kSec;
  /// Catch-up: when the buffer holds more than playback_buffer +
  /// catchup_headroom behind live (after joining from an old cached
  /// GoP), playback runs slightly fast until it is back within that
  /// band. 0.25 means 1.25x playback speed. The headroom keeps routine
  /// loss-recovery spikes inside the buffer.
  double catchup_rate = 0.25;
  Duration catchup_headroom = 120 * kMs;
  /// Initial SVC layer mask requested with the view (kAllLayers = take
  /// everything; meaningful only for SVC streams).
  media::LayerMask initial_layer_mask = media::kAllLayers;
  /// Drive SVC mask flips from the viewer's own stall/skip windows
  /// (quality flips become LayerMaskUpdate messages, not stream
  /// switches). Irrelevant for non-SVC streams.
  bool svc_adapt = true;
  /// Consecutive clean report windows before requesting a layer back.
  int svc_upswitch_windows = 3;
  overlay::LinkReceiver::Config receiver;
};

class Viewer final : public sim::SimNode {
 public:
  Viewer(sim::Network* net, ClientMetrics* metrics)
      : Viewer(net, metrics, ViewerConfig()) {}
  Viewer(sim::Network* net, ClientMetrics* metrics, const ViewerConfig& cfg);
  ~Viewer() override;

  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override;

  /// Starts a view through `consumer`. `fallback_versions`: lower
  /// simulcast bitrates of the same broadcast, best first.
  void start_view(sim::NodeId consumer, media::StreamId stream,
                  std::vector<media::StreamId> fallback_versions = {});

  /// Ends the view (sends ViewStop and finalizes the QoE record).
  void stop_view();

  /// Mobility (§7.1): resubscribes through a new consumer node while
  /// keeping playback state — the playback buffer bridges the switch.
  void migrate(sim::NodeId new_consumer);

  bool viewing() const { return record_ != nullptr && !stopped_; }
  const QoeRecord* record() const { return record_; }
  const overlay::LinkReceiver* receiver() const { return receiver_.get(); }
  /// Quality reports sent over this viewer's lifetime (all views).
  std::uint64_t reports_sent() const { return reports_sent_; }
  /// Committed SVC mask, as last confirmed by the consumer.
  media::LayerMask layer_mask() const { return mask_; }
  /// LayerMaskUpdate requests this viewer originated (tests/repro).
  std::uint64_t mask_flips_requested() const { return mask_flips_requested_; }

  /// Observation hook: called with every displayed frame's streaming
  /// delay (ms), exactly the values fed to the QoE record. A cohort
  /// (see viewer_cohort.h) uses it to build its weighted delay
  /// histogram; playback behaviour is unaffected.
  void set_delay_probe(std::function<void(double)> probe) {
    delay_probe_ = std::move(probe);
  }

 private:
  void assemble(const media::RtpPacketPtr& pkt);
  void on_frame(const media::Frame& frame);
  void send_quality_report();
  /// SVC: request a narrower/wider mask from the consumer based on this
  /// report window's stall/skip signal.
  void maybe_adapt_layers(std::uint32_t stalls, std::uint32_t skips);
  void request_mask(media::LayerMask mask);
  /// Fraction of the stream's frames the committed mask keeps, using
  /// the dyadic temporal weights (t=0 -> 1, t>0 -> 2^(t-1) per column).
  double keep_fraction() const;

  sim::Network* net_;
  ClientMetrics* metrics_;
  ViewerConfig cfg_;
  sim::NodeId consumer_ = sim::kNoNode;
  media::StreamId requested_stream_ = media::kNoStream;
  QoeRecord* record_ = nullptr;
  bool stopped_ = true;

  std::unique_ptr<overlay::LinkReceiver> receiver_;
  std::unordered_map<media::StreamId, std::unique_ptr<media::JitterFramer>>
      framers_;
  std::unordered_map<media::StreamId, std::uint64_t> last_frame_id_;

  // Playback state.
  bool playing_ = false;
  Time latest_capture_ = kNever;
  Time last_capture_seen_ = kNever;  ///< for catch-up pacing
  Duration pipeline_peak_ = 0;       ///< decaying max of capture->arrival
  Time last_display_time_ = kNever;  ///< dead-air (starvation) detection
  std::deque<media::Frame> prebuffer_;  ///< video frames before playback
  Duration playout_offset_ = 0;  ///< display = capture + offset (+ shifts)
  Duration stall_shift_ = 0;
  bool in_stall_ = false;
  std::uint32_t stalls_since_report_ = 0;
  std::uint32_t skips_since_report_ = 0;
  std::uint64_t jitter_drops_reported_ = 0;
  std::uint64_t reports_sent_ = 0;
  sim::EventId report_timer_ = sim::kInvalidEvent;
  std::function<void(double)> delay_probe_;

  // SVC state: the committed mask (confirmed by the consumer), the
  // stream's observed lattice, and the filtered-frame expectation
  // credit — frames the mask excludes appear as frame-id gaps, and the
  // credit keeps them out of the skip (damage) signal.
  media::LayerMask mask_ = media::kAllLayers;
  std::uint8_t svc_s_ = 1;
  std::uint8_t svc_t_ = 1;
  double filtered_credit_ = 0.0;
  int clean_windows_ = 0;
  std::uint64_t mask_flips_requested_ = 0;
};

}  // namespace livenet::client
