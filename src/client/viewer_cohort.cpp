#include "client/viewer_cohort.h"

#include <utility>

namespace livenet::client {

ViewerCohort::ViewerCohort(sim::Network* net, ClientMetrics* metrics,
                           std::uint64_t seed, const ViewerCohortConfig& cfg)
    : net_(net),
      metrics_(metrics),
      cfg_(cfg),
      rep_(net, metrics, cfg.viewer),
      acc_(&rep_, cfg.multiplier == 0 ? 1 : cfg.multiplier) {
  if (cfg_.multiplier == 0) cfg_.multiplier = 1;
  if (cfg_.join_spread > 0) {
    jitter_ = static_cast<Duration>(
        Rng(seed).next_u64() % static_cast<std::uint64_t>(cfg_.join_spread));
  }
  rep_.set_delay_probe([this](double ms) { acc_.observe_delay(ms); });
}

void ViewerCohort::schedule_view(sim::NodeId consumer, media::StreamId stream,
                                 Time nominal_join, Time nominal_leave,
                                 std::vector<media::StreamId> fallbacks) {
  const Time join = join_time(nominal_join);
  net_->loop()->schedule_at(
      join, [this, consumer, stream, fb = std::move(fallbacks)]() mutable {
        rep_.start_view(consumer, stream, std::move(fb));
        // The representative's fresh record stands for the whole
        // population; weighting it here is what makes
        // ClientMetrics::modeled_viewers() count cohorts correctly.
        metrics_->records().back().weight = cfg_.multiplier;
      });
  if (nominal_leave != kNever) {
    const Time leave = std::max(leave_time(nominal_leave), join + 1);
    net_->loop()->schedule_at(leave, [this] { rep_.stop_view(); });
  }
}

}  // namespace livenet::client
