#pragma once

#include <cstdint>
#include <vector>

#include "client/viewer.h"
#include "util/rng.h"
#include "util/stats.h"

// Aggregate viewer populations (ROADMAP open item 1, first half).
//
// Simulating millions of last-mile viewers one object each is pure
// redundancy: viewers behind the same consumer with the same access
// profile see statistically identical delivery. A ViewerCohort drives
// ONE representative Viewer pipeline (jitter framer, playback/stall
// model, NACK recovery) and weights its QoE by a fan-out `multiplier`,
// so a cohort of 10 000 costs exactly one viewer's events.
//
// What is exact vs. approximated (see DESIGN.md "Sharded simulation"):
// when the access link draws no randomness (zero jitter, zero loss —
// the differential test's setting), K explicit viewers behind one
// consumer run bit-identical pipelines, and every cohort counter
// equals the sum over K explicit viewers *exactly*. With lossy/jittery
// access links the cohort collapses K independent draws into one — a
// statistical model of the population mean, not K samples; the
// uplink-side load a real population would add (K view requests, K
// report flows) is likewise represented once.
//
// Churn smoothing: join/leave times are perturbed by a per-cohort
// seeded offset, so a wave of cohorts spreads over the join window
// instead of stepping the concurrent-viewer curve in multiplier-sized
// increments.
namespace livenet::client {

struct ViewerCohortConfig {
  std::uint32_t multiplier = 1;  ///< real viewers this cohort stands for
  /// Join/leave times are shifted by a seeded offset in [0, spread).
  Duration join_spread = 200 * kMs;
  ViewerConfig viewer;
};

/// Weighted QoE view over a cohort's representative pipeline: every
/// counter is the representative's times the multiplier (exact when the
/// last mile draws no randomness), plus a weighted streaming-delay
/// histogram fed per displayed frame through the Viewer's delay probe.
class CohortQoeAccumulator {
 public:
  CohortQoeAccumulator(const Viewer* rep, std::uint32_t multiplier)
      : rep_(rep),
        multiplier_(multiplier),
        delay_hist_(0.0, 2000.0, 200) {}

  std::uint32_t multiplier() const { return multiplier_; }
  /// Modeled viewers currently represented (0 before the view starts).
  std::uint64_t viewers() const {
    return rep_->record() != nullptr ? multiplier_ : 0;
  }

  std::uint64_t stalls() const { return scaled(rec() ? rec()->stalls : 0); }
  std::uint64_t dead_air_stalls() const {
    return scaled(rec() ? rec()->dead_air_stalls : 0);
  }
  std::uint64_t total_stall_time_us() const {
    return scaled(rec() ? static_cast<std::uint64_t>(rec()->total_stall_time)
                        : 0);
  }
  std::uint64_t frames_displayed() const {
    return scaled(rec() ? rec()->frames_displayed : 0);
  }
  /// Jitter drops + whole-frame gaps, weighted.
  std::uint64_t frames_skipped() const {
    return scaled(rec() ? rec()->frames_skipped : 0);
  }
  std::uint64_t reports() const { return scaled(rep_->reports_sent()); }

  /// Per-frame streaming delay, each frame binned with weight
  /// `multiplier` (integer-weighted adds, so the histogram is exactly
  /// what K identical explicit viewers would have produced).
  const Histogram& streaming_delay_ms() const { return delay_hist_; }
  void observe_delay(double ms) { delay_hist_.add_weighted(ms, multiplier_); }

 private:
  const QoeRecord* rec() const { return rep_->record(); }
  std::uint64_t scaled(std::uint64_t v) const {
    return v * static_cast<std::uint64_t>(multiplier_);
  }

  const Viewer* rep_;
  std::uint32_t multiplier_;
  Histogram delay_hist_;
};

class ViewerCohort {
 public:
  /// The representative must still be registered with the network
  /// (net->add_node(&cohort.viewer())) and given an access link, like
  /// a plain Viewer — a cohort occupies exactly one last-mile slot.
  ViewerCohort(sim::Network* net, ClientMetrics* metrics, std::uint64_t seed,
               const ViewerCohortConfig& cfg);

  Viewer& viewer() { return rep_; }
  const Viewer& viewer() const { return rep_; }
  std::uint32_t multiplier() const { return cfg_.multiplier; }
  const CohortQoeAccumulator& qoe() const { return acc_; }

  /// Schedules the view with the cohort's seeded join/leave
  /// perturbation; the leave is skipped when nominal_leave == kNever
  /// (view runs to the end of the simulation).
  void schedule_view(sim::NodeId consumer, media::StreamId stream,
                     Time nominal_join, Time nominal_leave,
                     std::vector<media::StreamId> fallback_versions = {});

  /// The perturbed times the cohort will actually use.
  Time join_time(Time nominal_join) const { return nominal_join + jitter_; }
  Time leave_time(Time nominal_leave) const {
    return nominal_leave == kNever ? kNever : nominal_leave + jitter_;
  }

 private:
  sim::Network* net_;
  ClientMetrics* metrics_;
  ViewerCohortConfig cfg_;
  Viewer rep_;
  CohortQoeAccumulator acc_;
  Duration jitter_ = 0;  ///< seeded, drawn once per cohort
};

}  // namespace livenet::client
