#include "hier/hier_control.h"

#include <algorithm>

#include "util/logging.h"

namespace livenet::hier {

using sim::NodeId;

void HierControl::on_message(NodeId from, const sim::MessagePtr& msg) {
  const auto req = sim::msg_cast<const MapRequest>(msg);
  if (!req) {
    LIVENET_LOG(kWarn) << "hier control: unhandled " << msg->describe();
    return;
  }
  ++requests_served_;
  const Time now = net_->loop()->now();
  const Time start = std::max(now, busy_until_);
  busy_until_ = start + cfg_.request_service_time;

  auto resp = sim::make_message<MapResponse>();
  resp->request_id = req->request_id;
  resp->stream_id = req->stream_id;
  resp->l2 = pick_l2(req->stream_id, req->l1);
  net_->loop()->schedule_at(busy_until_, [this, from, resp] {
    net_->send(node_id(), from, resp);
  });
}

NodeId HierControl::pick_l2(media::StreamId stream, NodeId l1) {
  if (l2s_.empty()) return sim::kNoNode;

  // Latency-aware mapping (VDN-style utility): L1s use their
  // geographically-affine L2 — the distribution tree fans out through
  // nearby infrastructure — unless that L2 is markedly hotter than the
  // least-loaded alternative.
  auto& carrying = stream_l2s_[stream];
  NodeId least = l2s_.front();
  for (const NodeId l2 : l2s_) {
    if (l2_assignments_[l2] < l2_assignments_[least]) least = l2;
  }
  NodeId chosen = least;
  const auto aff = affinity_.find(l1);
  if (aff != affinity_.end() &&
      l2_assignments_[aff->second] <= l2_assignments_[least] + 16) {
    chosen = aff->second;
  }
  ++l2_assignments_[chosen];
  if (std::find(carrying.begin(), carrying.end(), chosen) == carrying.end()) {
    carrying.push_back(chosen);
  }
  return chosen;
}

}  // namespace livenet::hier
