#pragma once

#include <unordered_map>
#include <vector>

#include "hier/messages.h"
#include "sim/network.h"
#include "sim/sim_node.h"
#include "util/time.h"

// The VDN-style centralized controller of the Hier baseline (§2.2): it
// maps L1 nodes to L2 nodes per stream, balancing assignment counts
// across L2s while preferring L2s that already carry the stream (to
// maximize fan-in sharing — the hierarchical analogue of a cache hit).
namespace livenet::hier {

struct HierControlConfig {
  Duration request_service_time = 2 * kMs;
};

class HierControl final : public sim::SimNode {
 public:
  explicit HierControl(sim::Network* net)
      : HierControl(net, HierControlConfig()) {}
  HierControl(sim::Network* net, const HierControlConfig& cfg)
      : net_(net), cfg_(cfg) {}

  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override;

  void set_l2_nodes(std::vector<sim::NodeId> l2s) { l2s_ = std::move(l2s); }

  /// Optional static affinity: preferred L2 per L1 (geographic
  /// closeness); the controller deviates from it under load skew.
  void set_affinity(sim::NodeId l1, sim::NodeId l2) { affinity_[l1] = l2; }

  std::uint64_t requests_served() const { return requests_served_; }

 private:
  sim::NodeId pick_l2(media::StreamId stream, sim::NodeId l1);

  sim::Network* net_;
  HierControlConfig cfg_;
  std::vector<sim::NodeId> l2s_;
  std::unordered_map<sim::NodeId, sim::NodeId> affinity_;
  std::unordered_map<media::StreamId, std::vector<sim::NodeId>>
      stream_l2s_;  ///< L2s already carrying each stream
  std::unordered_map<sim::NodeId, std::uint64_t> l2_assignments_;
  Time busy_until_ = 0;
  std::uint64_t requests_served_ = 0;
};

}  // namespace livenet::hier
