#include "hier/hier_node.h"

#include "util/logging.h"

namespace livenet::hier {

using media::RtpPacket;
using media::RtpPacketPtr;
using media::StreamId;
using overlay::ViewSession;
using sim::NodeId;

HierNode::HierNode(sim::Network* net, overlay::OverlayMetrics* metrics,
                   const HierNodeConfig& cfg)
    : net_(net), metrics_(metrics), cfg_(cfg),
      packet_cache_(cfg.packet_cache_gops) {}

HierNode::~HierNode() {
  for (auto& [s, timer] : linger_timers_) {
    if (timer != sim::kInvalidEvent) net_->loop()->cancel(timer);
  }
}

Duration HierNode::hop_processing_delay() const {
  Duration d = cfg_.full_stack_delay;
  if (cfg_.role == HierRole::kCenter) d += cfg_.center_extra_delay;
  return d;
}

void HierNode::on_message(NodeId from, const sim::MessagePtr& msg) {
  if (const auto rtp = sim::msg_cast<const RtpPacket>(msg)) {
    handle_rtp(from, rtp);
    return;
  }
  if (const auto nack =
          sim::msg_cast<const media::NackMessage>(msg)) {
    overlay::LinkSender& snd = sender_for(from);
    const auto unserved =
        snd.on_nack(nack->stream_id, nack->audio, nack->missing);
    if (!nack->audio) {
      for (const media::Seq seq : unserved) {
        const auto cached = packet_cache_.find_packet(nack->stream_id, seq);
        if (cached) snd.send_rtx(cached);
      }
    }
    return;
  }
  if (const auto fb =
          sim::msg_cast<const media::CcFeedbackMessage>(msg)) {
    sender_for(from).on_cc_feedback(fb->remb_bps, fb->loss_fraction);
    return;
  }
  if (const auto view =
          sim::msg_cast<const overlay::ViewRequest>(msg)) {
    handle_view_request(from, *view);
    return;
  }
  if (const auto stop = sim::msg_cast<const overlay::ViewStop>(msg)) {
    handle_view_stop(from, *stop);
    return;
  }
  if (const auto pub =
          sim::msg_cast<const overlay::PublishRequest>(msg)) {
    handle_publish(from, *pub);
    return;
  }
  if (const auto pstop =
          sim::msg_cast<const overlay::PublishStop>(msg)) {
    handle_publish_stop(from, *pstop);
    return;
  }
  if (const auto sub = sim::msg_cast<const HierSubscribe>(msg)) {
    handle_subscribe(from, *sub);
    return;
  }
  if (const auto unsub =
          sim::msg_cast<const HierUnsubscribe>(msg)) {
    handle_unsubscribe(from, *unsub);
    return;
  }
  if (const auto map = sim::msg_cast<const MapResponse>(msg)) {
    handle_map_response(*map);
    return;
  }
  if (sim::msg_cast<const overlay::ClientQualityReport>(msg)) {
    return;  // Hier has no quality-driven re-routing
  }
  LIVENET_LOG(kWarn) << "hier node " << node_id() << ": unhandled "
                     << msg->describe();
}

// --------------------------------------------------------------- data path

void HierNode::handle_rtp(NodeId from, const RtpPacketPtr& pkt_in) {
  RtpPacketPtr pkt = pkt_in;
  const overlay::StreamFib::Entry* entry = fib_.find(pkt->stream_id());
  if (pkt->cdn_ingress_time == kNever && entry != nullptr &&
      entry->locally_produced) {
    auto stamped = pkt_in->fork();
    stamped->cdn_ingress_time = net_->loop()->now();
    stamped->cdn_hops = 0;
    pkt = std::move(stamped);
  }
  // L2 and the center accept uploads for streams they never subscribed
  // to: in the hierarchical design every upload flows unconditionally
  // toward the center, so the passthrough FIB entry is created on
  // first contact.
  if (cfg_.role != HierRole::kL1 && entry == nullptr) {
    fib_.entry(pkt->stream_id());
  }

  // Full application stack: packets enter the reliable, ordered pipeline
  // and are only forwarded from its in-order output.
  receiver_for(from).on_rtp(pkt);
}

void HierNode::forward_ordered(const RtpPacketPtr& pkt) {
  // Invoked from the receive pipeline's ordered output; the `from` side
  // is encoded in which receiver delivered — recomputed here from roles.
  packet_cache_.add(pkt);
  const overlay::StreamFib::Entry* entry = fib_.find(pkt->stream_id());
  if (entry == nullptr) return;

  // The packet's position in the tree is recovered from its hop count:
  // 0 = produced at this L1; 1 = upload at L2; 2 = at the center;
  // 3 = distribution at L2; 4 = distribution at the viewer-side L1.
  net_->loop()->schedule_after(hop_processing_delay(), [this,
                                                        pkt] {
    const overlay::StreamFib::Entry* e = fib_.find(pkt->stream_id());
    if (e == nullptr) return;
    const Time now = net_->loop()->now();

    // Upload leg: push toward the streaming center.
    const auto upit = stream_upstream_.find(pkt->stream_id());
    const bool producing_here = e->locally_produced;
    if (cfg_.role == HierRole::kL1 && producing_here &&
        upit != stream_upstream_.end()) {
      auto clone = pkt->fork();
      clone->delay_ext_us +=
          hop_processing_delay() + (net_->link(node_id(), upit->second)
                                        ? net_->link(node_id(), upit->second)
                                                  ->base_rtt() /
                                              2
                                        : 0);
      clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
      sender_for(upit->second).send_media(std::move(clone));
    }
    if (cfg_.role == HierRole::kL2 && pkt->cdn_hops == 1 &&
        parent_ != sim::kNoNode) {
      // Upload passing through this L2 toward the center.
      auto clone = pkt->fork();
      clone->delay_ext_us += hop_processing_delay();
      clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
      sender_for(parent_).send_media(std::move(clone));
    }

    // Distribution leg: forward to subscribed downstream nodes.
    if (cfg_.role != HierRole::kL1) {
      const bool distributing =
          (cfg_.role == HierRole::kCenter && pkt->cdn_hops == 2) ||
          (cfg_.role == HierRole::kL2 && pkt->cdn_hops == 3);
      if (distributing) {
        for (const NodeId n : e->subscriber_nodes) {
          auto clone = pkt->fork();
          clone->delay_ext_us += hop_processing_delay();
          clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
          sender_for(n).send_media(std::move(clone));
        }
      }
    }

    // Edge serving: L1 delivers to attached viewers (either the
    // distribution copy after 4 hops, or locally produced content).
    if (cfg_.role == HierRole::kL1) {
      for (const overlay::ClientId c : e->subscriber_clients) {
        const auto cv = client_views_.find(static_cast<NodeId>(c));
        if (cv == client_views_.end()) continue;
        auto clone = pkt->fork();
        clone->delay_ext_us += hop_processing_delay();
        if (cv->second.session != nullptr) {
          if (pkt->cdn_ingress_time != kNever) {
            cv->second.session->cdn_delay_ms.add(
                to_ms(now - pkt->cdn_ingress_time));
            cv->second.session->path_length = pkt->cdn_hops;
          }
          if (cv->second.session->first_packet_time == kNever) {
            cv->second.session->first_packet_time = now;
          }
        }
        sender_for(static_cast<NodeId>(c), /*client=*/true)
            .send_media(std::move(clone));
      }
    }
  });
}

// ------------------------------------------------------------- client side

void HierNode::handle_view_request(NodeId client,
                                   const overlay::ViewRequest& req) {
  ViewSession& session = metrics_->new_session();
  session.stream = req.stream_id;
  session.consumer = node_id();
  session.client = client;
  session.request_time = net_->loop()->now();

  if (carries_stream(req.stream_id)) {
    session.local_hit = true;
    attach_client(client, req.stream_id, &session);
    return;
  }
  pending_views_[req.stream_id].push_back(PendingView{client, &session});
  subscribe_upstream(req.stream_id);
}

void HierNode::attach_client(NodeId client, StreamId stream,
                             ViewSession* session) {
  fib_.add_client_subscriber(stream, client);
  auto& view = client_views_[client];
  view.session = session;
  view.stream = stream;
  auto ack = sim::make_message<overlay::ViewAck>();
  ack->stream_id = stream;
  ack->ok = true;
  net_->send(node_id(), client, std::move(ack));

  const auto burst = packet_cache_.startup_packets(stream);
  if (!burst.empty()) {
    overlay::LinkSender& snd = sender_for(client, /*client=*/true);
    for (const auto& pkt : burst) {
      auto clone = pkt->fork();
      clone->cdn_ingress_time = kNever;
      snd.send_media(std::move(clone));
    }
    if (session != nullptr && session->first_packet_time == kNever) {
      session->first_packet_time = net_->loop()->now();
    }
  }
}

void HierNode::handle_view_stop(NodeId client, const overlay::ViewStop& msg) {
  const auto it = client_views_.find(client);
  if (it != client_views_.end()) {
    if (it->second.session != nullptr) {
      it->second.session->end_time = net_->loop()->now();
    }
    client_views_.erase(it);
  }
  fib_.remove_client_subscriber(msg.stream_id, client);
  maybe_release_stream(msg.stream_id);
}

void HierNode::handle_publish(NodeId client,
                              const overlay::PublishRequest& req) {
  (void)client;
  auto& entry = fib_.entry(req.stream_id);
  entry.locally_produced = true;
  // Ask the controller which L2 carries this upload.
  if (controller_ != sim::kNoNode) {
    const std::uint64_t id = next_request_id_++;
    pending_maps_[id] = req.stream_id;
    auto map = sim::make_message<MapRequest>();
    map->request_id = id;
    map->stream_id = req.stream_id;
    map->l1 = node_id();
    net_->send(node_id(), controller_, std::move(map));
  } else if (parent_ != sim::kNoNode) {
    stream_upstream_[req.stream_id] = parent_;
  }
}

void HierNode::handle_publish_stop(NodeId client,
                                   const overlay::PublishStop& msg) {
  (void)client;
  release_stream(msg.stream_id);
}

// ------------------------------------------------------------ tree control

void HierNode::subscribe_upstream(StreamId stream) {
  if (stream_upstream_.count(stream) != 0) return;  // already subscribing
  if (cfg_.role == HierRole::kL1 && controller_ != sim::kNoNode) {
    // VDN-style: ask the controller for the L2 to use.
    const std::uint64_t id = next_request_id_++;
    pending_maps_[id] = stream;
    auto map = sim::make_message<MapRequest>();
    map->request_id = id;
    map->stream_id = stream;
    map->l1 = node_id();
    net_->send(node_id(), controller_, std::move(map));
    return;
  }
  if (parent_ == sim::kNoNode) return;  // the center has no upstream
  stream_upstream_[stream] = parent_;
  auto sub = sim::make_message<HierSubscribe>();
  sub->stream_id = stream;
  net_->send(node_id(), parent_, std::move(sub));
}

void HierNode::handle_map_response(const MapResponse& resp) {
  const auto it = pending_maps_.find(resp.request_id);
  if (it == pending_maps_.end()) return;
  const StreamId stream = it->second;
  pending_maps_.erase(it);
  if (resp.l2 == sim::kNoNode) return;
  stream_upstream_[stream] = resp.l2;

  const overlay::StreamFib::Entry* entry = fib_.find(stream);
  if (entry != nullptr && entry->locally_produced) {
    // Upload mapping: data starts flowing on the next ordered packet.
    return;
  }
  auto sub = sim::make_message<HierSubscribe>();
  sub->stream_id = stream;
  net_->send(node_id(), resp.l2, std::move(sub));
}

void HierNode::handle_subscribe(NodeId from, const HierSubscribe& req) {
  fib_.add_node_subscriber(req.stream_id, from);
  sender_for(from);

  // Serve cached content immediately so the downstream node's GoP cache
  // warms up (hierarchical caching, §2.2).
  if (packet_cache_.has_content(req.stream_id)) {
    overlay::LinkSender& snd = sender_for(from);
    for (const auto& pkt : packet_cache_.startup_packets(req.stream_id)) {
      auto clone = pkt->fork();
      clone->cdn_ingress_time = kNever;
      clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
      snd.send_media(std::move(clone));
    }
  }
  if (cfg_.role != HierRole::kCenter) {
    subscribe_upstream(req.stream_id);
  }
}

void HierNode::handle_unsubscribe(NodeId from, const HierUnsubscribe& req) {
  fib_.remove_node_subscriber(req.stream_id, from);
  maybe_release_stream(req.stream_id);
}

void HierNode::maybe_release_stream(StreamId stream) {
  const overlay::StreamFib::Entry* entry = fib_.find(stream);
  if (entry == nullptr || entry->locally_produced) return;
  if (entry->has_subscribers()) return;
  if (cfg_.role == HierRole::kCenter) return;  // the center keeps streams
  if (linger_timers_.count(stream) != 0) return;
  linger_timers_[stream] = net_->loop()->schedule_after(
      cfg_.unsubscribe_linger, [this, stream] {
        linger_timers_.erase(stream);
        const overlay::StreamFib::Entry* e = fib_.find(stream);
        if (e == nullptr || e->locally_produced || e->has_subscribers()) {
          return;
        }
        release_stream(stream);
      });
}

void HierNode::release_stream(StreamId stream) {
  const auto upit = stream_upstream_.find(stream);
  if (upit != stream_upstream_.end()) {
    auto unsub = sim::make_message<HierUnsubscribe>();
    unsub->stream_id = stream;
    net_->send(node_id(), upit->second, std::move(unsub));
    const auto rit = receivers_.find(upit->second);
    if (rit != receivers_.end()) rit->second->forget_stream(stream);
    stream_upstream_.erase(upit);
  }
  for (auto& [peer, snd] : senders_) snd->forget_stream(stream);
  packet_cache_.forget_stream(stream);
  fib_.erase(stream);
  pending_views_.erase(stream);
  const auto lt = linger_timers_.find(stream);
  if (lt != linger_timers_.end()) {
    net_->loop()->cancel(lt->second);
    linger_timers_.erase(lt);
  }
}

// ---------------------------------------------------------------- plumbing

bool HierNode::carries_stream(StreamId s) const {
  const overlay::StreamFib::Entry* e = fib_.find(s);
  if (e != nullptr && e->locally_produced) return true;
  // A FIB entry only appears once the first subscriber attaches; what
  // matters here is the live upstream subscription plus cached content.
  return stream_upstream_.count(s) != 0 && packet_cache_.has_content(s);
}

overlay::LinkSender& HierNode::sender_for(NodeId peer, bool client) {
  auto it = senders_.find(peer);
  if (it == senders_.end()) {
    it = senders_
             .emplace(peer, std::make_unique<overlay::LinkSender>(
                                net_, node_id(), peer,
                                client ? cfg_.client_sender : cfg_.sender))
             .first;
  }
  return *it->second;
}

overlay::LinkReceiver& HierNode::receiver_for(NodeId peer) {
  auto it = receivers_.find(peer);
  if (it == receivers_.end()) {
    it = receivers_
             .emplace(peer,
                      std::make_unique<overlay::LinkReceiver>(
                          net_, node_id(), peer,
                          [this](const RtpPacketPtr& pkt) {
                            // Hier forwards only the ordered output and
                            // serves pending viewers once content lands.
                            forward_ordered(pkt);
                            auto pvit = pending_views_.find(pkt->stream_id());
                            if (pvit != pending_views_.end() &&
                                carries_stream(pkt->stream_id())) {
                              auto waiting = std::move(pvit->second);
                              pending_views_.erase(pvit);
                              for (auto& pv : waiting) {
                                attach_client(pv.client, pkt->stream_id(),
                                              pv.session);
                              }
                            }
                          },
                          [](StreamId) { /* gap: nothing to abandon */ },
                          cfg_.receiver))
             .first;
  }
  return *it->second;
}

}  // namespace livenet::hier
