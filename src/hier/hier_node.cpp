#include "hier/hier_node.h"

#include "util/logging.h"

namespace livenet::hier {

using media::RtpPacket;
using media::RtpPacketPtr;
using media::StreamId;
using overlay::StreamContext;
using sim::NodeId;

HierNode::HierNode(sim::Network* net, overlay::OverlayMetrics* metrics,
                   const HierNodeConfig& cfg)
    : net_(net), metrics_(metrics), cfg_(cfg),
      senders_(net, this, cfg_.sender),
      recovery_(net, this,
                overlay::RecoveryEngine::Config{cfg_.receiver,
                                                cfg_.packet_cache_gops,
                                                /*cache_max_packets=*/4096,
                                                /*telemetry=*/false}),
      session_(net, this, metrics,
               overlay::SessionConfig{
                   /*client_extra_delay=*/0,
                   /*switch_stall_threshold=*/2,
                   /*switch_skip_threshold=*/8,
                   /*downgrade_pressure_packets=*/150,
                   // Hier has no simulcast ladder to preserve across a
                   // deferred attach; the view state appears on attach.
                   /*eager_view_state=*/false},
               &streams_) {
  overlay::SessionLayer::Hooks hooks;
  hooks.carries_stream = [this](StreamId s) { return carries_stream(s); };
  hooks.maybe_release = [this](StreamId s) { maybe_release_stream(s); };
  hooks.want_stream = [this](StreamId s) { subscribe_upstream(s); };
  hooks.serve_burst = [this](NodeId client, overlay::ClientViewState& view) {
    serve_client_burst(client, view);
  };
  session_.set_hooks(std::move(hooks));

  recovery_.set_hooks(
      [this](const RtpPacketPtr& pkt) {
        // Hier forwards only the ordered output and serves pending
        // viewers once content lands.
        forward_ordered(pkt);
        session_.flush_pending_attach(pkt->stream_id());
      },
      [](StreamId) { /* gap: nothing to abandon */ });
}

HierNode::~HierNode() {
  auto* loop = net_->loop();
  streams_.for_each_context([loop](StreamId, StreamContext& ctx) {
    if (ctx.linger_timer != sim::kInvalidEvent) loop->cancel(ctx.linger_timer);
  });
}

Duration HierNode::hop_processing_delay() const {
  Duration d = cfg_.full_stack_delay;
  if (cfg_.role == HierRole::kCenter) d += cfg_.center_extra_delay;
  return d;
}

void HierNode::on_message(NodeId from, const sim::MessagePtr& msg) {
  if (const auto rtp = sim::msg_cast<const RtpPacket>(msg)) {
    handle_rtp(from, rtp);
    return;
  }
  if (const auto nack =
          sim::msg_cast<const media::NackMessage>(msg)) {
    overlay::LinkSender& snd = senders_.sender_for(from);
    const auto unserved =
        snd.on_nack(nack->stream_id, nack->audio, nack->missing);
    if (!nack->audio) {
      recovery_.serve_nack_fallback(snd, from, nack->stream_id, unserved);
    }
    return;
  }
  if (const auto fb =
          sim::msg_cast<const media::CcFeedbackMessage>(msg)) {
    senders_.sender_for(from).on_cc_feedback(fb->remb_bps, fb->loss_fraction);
    return;
  }
  if (const auto view =
          sim::msg_cast<const overlay::ViewRequest>(msg)) {
    session_.handle_view_request(from, *view);
    return;
  }
  if (const auto stop = sim::msg_cast<const overlay::ViewStop>(msg)) {
    session_.handle_view_stop(from, *stop);
    return;
  }
  if (const auto pub =
          sim::msg_cast<const overlay::PublishRequest>(msg)) {
    handle_publish(from, *pub);
    return;
  }
  if (const auto pstop =
          sim::msg_cast<const overlay::PublishStop>(msg)) {
    release_stream(pstop->stream_id);
    return;
  }
  if (const auto sub = sim::msg_cast<const HierSubscribe>(msg)) {
    handle_subscribe(from, *sub);
    return;
  }
  if (const auto unsub =
          sim::msg_cast<const HierUnsubscribe>(msg)) {
    handle_unsubscribe(from, *unsub);
    return;
  }
  if (const auto map = sim::msg_cast<const MapResponse>(msg)) {
    handle_map_response(*map);
    return;
  }
  if (sim::msg_cast<const overlay::ClientQualityReport>(msg)) {
    return;  // Hier has no quality-driven re-routing
  }
  LIVENET_LOG(kWarn) << "hier node " << node_id() << ": unhandled "
                     << msg->describe();
}

// --------------------------------------------------------------- data path

void HierNode::handle_rtp(NodeId from, const RtpPacketPtr& pkt_in) {
  RtpPacketPtr pkt = pkt_in;
  const overlay::StreamFib::Entry* entry = streams_.find(pkt->stream_id());
  if (pkt->cdn_ingress_time == kNever && entry != nullptr &&
      entry->locally_produced) {
    auto stamped = pkt_in->fork();
    stamped->cdn_ingress_time = net_->loop()->now();
    stamped->cdn_hops = 0;
    pkt = std::move(stamped);
  }
  // L2 and the center accept uploads for streams they never subscribed
  // to: in the hierarchical design every upload flows unconditionally
  // toward the center, so the passthrough FIB entry is created on
  // first contact.
  if (cfg_.role != HierRole::kL1 && entry == nullptr) {
    streams_.fib_entry(pkt->stream_id());
  }

  // Full application stack: packets enter the reliable, ordered pipeline
  // and are only forwarded from its in-order output.
  recovery_.ingest(from, pkt);
}

void HierNode::forward_ordered(const RtpPacketPtr& pkt) {
  // Invoked from the receive pipeline's ordered output; the `from` side
  // is encoded in which receiver delivered — recomputed here from roles.
  recovery_.cache().add(pkt);
  if (streams_.find(pkt->stream_id()) == nullptr) return;

  // The packet's position in the tree is recovered from its hop count:
  // 0 = produced at this L1; 1 = upload at L2; 2 = at the center;
  // 3 = distribution at L2; 4 = distribution at the viewer-side L1.
  net_->loop()->schedule_after(hop_processing_delay(), [this,
                                                        pkt] {
    const overlay::StreamFib::Entry* e = streams_.find(pkt->stream_id());
    if (e == nullptr) return;
    const Time now = net_->loop()->now();

    // Upload leg: push toward the streaming center.
    const StreamContext* ctx = streams_.find_context(pkt->stream_id());
    const NodeId upstream =
        ctx != nullptr ? ctx->upstream_sub : sim::kNoNode;
    const bool producing_here = e->locally_produced;
    if (cfg_.role == HierRole::kL1 && producing_here &&
        upstream != sim::kNoNode) {
      auto clone = pkt->fork();
      clone->delay_ext_us +=
          hop_processing_delay() +
          overlay::half_rtt_between(net_, node_id(), upstream);
      clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
      senders_.sender_for(upstream).send_media(std::move(clone));
    }
    if (cfg_.role == HierRole::kL2 && pkt->cdn_hops == 1 &&
        parent_ != sim::kNoNode) {
      // Upload passing through this L2 toward the center.
      auto clone = pkt->fork();
      clone->delay_ext_us += hop_processing_delay();
      clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
      senders_.sender_for(parent_).send_media(std::move(clone));
    }

    // Distribution leg: forward to subscribed downstream nodes.
    if (cfg_.role != HierRole::kL1) {
      const bool distributing =
          (cfg_.role == HierRole::kCenter && pkt->cdn_hops == 2) ||
          (cfg_.role == HierRole::kL2 && pkt->cdn_hops == 3);
      if (distributing) {
        for (const NodeId n : e->subscriber_nodes) {
          auto clone = pkt->fork();
          clone->delay_ext_us += hop_processing_delay();
          clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
          senders_.sender_for(n).send_media(std::move(clone));
        }
      }
    }

    // Edge serving: L1 delivers to attached viewers (either the
    // distribution copy after 4 hops, or locally produced content).
    if (cfg_.role == HierRole::kL1) {
      for (const overlay::ClientId c : e->subscriber_clients) {
        overlay::ClientViewState* cv =
            session_.find_view(static_cast<NodeId>(c));
        if (cv == nullptr) continue;
        auto clone = pkt->fork();
        clone->delay_ext_us += hop_processing_delay();
        if (cv->session != nullptr) {
          if (pkt->cdn_ingress_time != kNever) {
            cv->session->cdn_delay_ms.add(
                to_ms(now - pkt->cdn_ingress_time));
            cv->session->path_length = pkt->cdn_hops;
          }
          if (cv->session->first_packet_time == kNever) {
            cv->session->first_packet_time = now;
          }
        }
        senders_.sender_for(static_cast<NodeId>(c), cfg_.client_sender)
            .send_media(std::move(clone));
      }
    }
  });
}

// ------------------------------------------------------------- client side

void HierNode::serve_client_burst(NodeId client,
                                  overlay::ClientViewState& view) {
  const auto burst = recovery_.cache().startup_packets(view.stream);
  if (burst.empty()) return;
  overlay::LinkSender& snd = senders_.sender_for(client, cfg_.client_sender);
  for (const auto& pkt : burst) {
    auto clone = pkt->fork();
    clone->cdn_ingress_time = kNever;
    snd.send_media(std::move(clone));
  }
  if (view.session != nullptr && view.session->first_packet_time == kNever) {
    view.session->first_packet_time = net_->loop()->now();
  }
}

void HierNode::handle_publish(NodeId client,
                              const overlay::PublishRequest& req) {
  (void)client;
  auto& entry = streams_.fib_entry(req.stream_id);
  entry.locally_produced = true;
  // Ask the controller which L2 carries this upload.
  if (controller_ != sim::kNoNode) {
    const std::uint64_t id = next_request_id_++;
    pending_maps_[id] = req.stream_id;
    auto map = sim::make_message<MapRequest>();
    map->request_id = id;
    map->stream_id = req.stream_id;
    map->l1 = node_id();
    net_->send(node_id(), controller_, std::move(map));
  } else if (parent_ != sim::kNoNode) {
    streams_.context(req.stream_id).upstream_sub = parent_;
  }
}

// ------------------------------------------------------------ tree control

void HierNode::subscribe_upstream(StreamId stream) {
  if (has_upstream(stream)) return;  // already subscribing
  if (cfg_.role == HierRole::kL1 && controller_ != sim::kNoNode) {
    // VDN-style: ask the controller for the L2 to use.
    const std::uint64_t id = next_request_id_++;
    pending_maps_[id] = stream;
    auto map = sim::make_message<MapRequest>();
    map->request_id = id;
    map->stream_id = stream;
    map->l1 = node_id();
    net_->send(node_id(), controller_, std::move(map));
    return;
  }
  if (parent_ == sim::kNoNode) return;  // the center has no upstream
  streams_.context(stream).upstream_sub = parent_;
  auto sub = sim::make_message<HierSubscribe>();
  sub->stream_id = stream;
  net_->send(node_id(), parent_, std::move(sub));
}

void HierNode::handle_map_response(const MapResponse& resp) {
  const auto it = pending_maps_.find(resp.request_id);
  if (it == pending_maps_.end()) return;
  const StreamId stream = it->second;
  pending_maps_.erase(it);
  if (resp.l2 == sim::kNoNode) return;
  streams_.context(stream).upstream_sub = resp.l2;

  const overlay::StreamFib::Entry* entry = streams_.find(stream);
  if (entry != nullptr && entry->locally_produced) {
    // Upload mapping: data starts flowing on the next ordered packet.
    return;
  }
  auto sub = sim::make_message<HierSubscribe>();
  sub->stream_id = stream;
  net_->send(node_id(), resp.l2, std::move(sub));
}

void HierNode::handle_subscribe(NodeId from, const HierSubscribe& req) {
  streams_.add_node_subscriber(req.stream_id, from);
  senders_.sender_for(from);

  // Serve cached content immediately so the downstream node's GoP cache
  // warms up (hierarchical caching, §2.2).
  if (recovery_.cache().has_content(req.stream_id)) {
    overlay::LinkSender& snd = senders_.sender_for(from);
    for (const auto& pkt : recovery_.cache().startup_packets(req.stream_id)) {
      auto clone = pkt->fork();
      clone->cdn_ingress_time = kNever;
      clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
      snd.send_media(std::move(clone));
    }
  }
  if (cfg_.role != HierRole::kCenter) {
    subscribe_upstream(req.stream_id);
  }
}

void HierNode::handle_unsubscribe(NodeId from, const HierUnsubscribe& req) {
  streams_.remove_node_subscriber(req.stream_id, from);
  maybe_release_stream(req.stream_id);
}

void HierNode::maybe_release_stream(StreamId stream) {
  const overlay::StreamFib::Entry* entry = streams_.find(stream);
  if (entry == nullptr || entry->locally_produced) return;
  if (entry->has_subscribers()) return;
  if (cfg_.role == HierRole::kCenter) return;  // the center keeps streams
  StreamContext& ctx = streams_.context(stream);
  if (ctx.linger_timer != sim::kInvalidEvent) return;
  ctx.linger_timer = net_->loop()->schedule_after(
      cfg_.unsubscribe_linger, [this, stream] {
        StreamContext* c = streams_.find_context(stream);
        if (c != nullptr) c->linger_timer = sim::kInvalidEvent;
        const overlay::StreamFib::Entry* e = streams_.find(stream);
        if (e == nullptr || e->locally_produced || e->has_subscribers()) {
          return;
        }
        release_stream(stream);
      });
}

void HierNode::release_stream(StreamId stream) {
  StreamContext* ctx = streams_.find_context(stream);
  if (ctx != nullptr && ctx->upstream_sub != sim::kNoNode) {
    auto unsub = sim::make_message<HierUnsubscribe>();
    unsub->stream_id = stream;
    net_->send(node_id(), ctx->upstream_sub, std::move(unsub));
    recovery_.forget_upstream(ctx->upstream_sub, stream);
    ctx->upstream_sub = sim::kNoNode;
  }
  senders_.forget_stream(stream);
  recovery_.cache().forget_stream(stream);
  if (ctx != nullptr && ctx->linger_timer != sim::kInvalidEvent) {
    net_->loop()->cancel(ctx->linger_timer);
  }
  // Erasing the context drops the FIB entry, the upstream subscription
  // and any pending views in one stroke.
  streams_.erase(stream);
}

// ---------------------------------------------------------------- plumbing

bool HierNode::carries_stream(StreamId s) const {
  const overlay::StreamFib::Entry* e = streams_.find(s);
  if (e != nullptr && e->locally_produced) return true;
  // A FIB entry only appears once the first subscriber attaches; what
  // matters here is the live upstream subscription plus cached content.
  return has_upstream(s) && recovery_.cache().has_content(s);
}

}  // namespace livenet::hier
