#pragma once

#include <unordered_map>

#include "hier/messages.h"
#include "overlay/messages.h"
#include "overlay/node_env.h"
#include "overlay/peer_senders.h"
#include "overlay/records.h"
#include "overlay/recovery_engine.h"
#include "overlay/session_layer.h"
#include "overlay/stream_context.h"
#include "sim/network.h"
#include "sim/sim_node.h"

// A node of the Hier baseline (paper §2.2, Figure 1): Alibaba's
// first-generation hierarchical CDN. Streams flow broadcaster -> L1 ->
// L2 -> streaming center -> L2 -> L1 -> viewer (fixed 4-hop CDN paths).
//
// The decisive contrast with LiveNet's data plane: a Hier hop runs the
// whole application stack, so a packet is forwarded only after it has
// been received *in order* (RTMP-over-TCP semantics) and has paid the
// full-stack processing delay — giving head-of-line blocking under loss
// and a higher per-hop latency floor, which is exactly what the paper's
// fast path eliminates.
//
// Hier reuses the overlay node's shared layers rather than duplicating
// them: the unified StreamTable (FIB + per-stream state), PeerSenders,
// the RecoveryEngine slow path (telemetry off — its cache hits are not
// LiveNet data-plane metrics) and the SessionLayer for view admission,
// pending attaches and view teardown. Only the tree control protocol
// and the in-order hop forwarding are Hier-specific.
namespace livenet::hier {

enum class HierRole { kL1, kL2, kCenter };

struct HierNodeConfig {
  HierRole role = HierRole::kL1;
  Duration full_stack_delay = 20 * kMs;  ///< per-hop processing latency
  Duration center_extra_delay = 10 * kMs;  ///< media processing at center
  Duration unsubscribe_linger = 5 * kSec;
  std::size_t packet_cache_gops = 2;
  /// Node-to-node transport config. Hier runs RTMP over TCP between
  /// nodes: sending is not media-paced — TCP grabs the available link
  /// bandwidth — so the default floors the pacing rate high.
  overlay::LinkSender::Config sender;
  /// Client-facing (last mile) transport: bandwidth-adaptive.
  overlay::LinkSender::Config client_sender;
  overlay::LinkReceiver::Config receiver;
};

class HierNode final : public sim::SimNode {
 public:
  HierNode(sim::Network* net, overlay::OverlayMetrics* metrics)
      : HierNode(net, metrics, HierNodeConfig()) {}
  HierNode(sim::Network* net, overlay::OverlayMetrics* metrics,
           const HierNodeConfig& cfg);
  ~HierNode() override;

  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override;

  /// L1: the VDN-style controller used for L2 mapping. L2: the center.
  void set_controller(sim::NodeId controller) { controller_ = controller; }
  void set_parent(sim::NodeId parent) { parent_ = parent; }

  void set_location(int country) { country_ = country; }
  int location() const { return country_; }

  HierRole role() const { return cfg_.role; }
  const overlay::StreamTable& fib() const { return streams_; }
  bool carries_stream(media::StreamId s) const;
  const overlay::PacketGopCache& packet_cache() const {
    return recovery_.cache();
  }
  bool has_upstream(media::StreamId s) const {
    const overlay::StreamContext* ctx = streams_.find_context(s);
    return ctx != nullptr && ctx->upstream_sub != sim::kNoNode;
  }

 private:
  void handle_rtp(sim::NodeId from, const media::RtpPacketPtr& pkt);
  void forward_ordered(const media::RtpPacketPtr& pkt);
  void handle_publish(sim::NodeId client, const overlay::PublishRequest& req);
  void handle_subscribe(sim::NodeId from, const HierSubscribe& req);
  void handle_unsubscribe(sim::NodeId from, const HierUnsubscribe& req);
  void handle_map_response(const MapResponse& resp);

  void serve_client_burst(sim::NodeId client, overlay::ClientViewState& view);
  void subscribe_upstream(media::StreamId stream);
  void maybe_release_stream(media::StreamId stream);
  void release_stream(media::StreamId stream);

  Duration hop_processing_delay() const;

  sim::Network* net_;
  overlay::OverlayMetrics* metrics_;
  HierNodeConfig cfg_;
  sim::NodeId controller_ = sim::kNoNode;
  sim::NodeId parent_ = sim::kNoNode;  ///< L2 for L1 (default), center for L2
  int country_ = -1;

  overlay::StreamTable streams_;
  overlay::PeerSenders senders_;
  overlay::RecoveryEngine recovery_;
  overlay::SessionLayer session_;
  std::unordered_map<std::uint64_t, media::StreamId> pending_maps_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace livenet::hier
