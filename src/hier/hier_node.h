#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "hier/messages.h"
#include "media/framer.h"
#include "overlay/link_receiver.h"
#include "overlay/link_sender.h"
#include "overlay/messages.h"
#include "overlay/packet_cache.h"
#include "overlay/records.h"
#include "overlay/stream_fib.h"
#include "sim/network.h"
#include "sim/sim_node.h"

// A node of the Hier baseline (paper §2.2, Figure 1): Alibaba's
// first-generation hierarchical CDN. Streams flow broadcaster -> L1 ->
// L2 -> streaming center -> L2 -> L1 -> viewer (fixed 4-hop CDN paths).
//
// The decisive contrast with LiveNet's data plane: a Hier hop runs the
// whole application stack, so a packet is forwarded only after it has
// been received *in order* (RTMP-over-TCP semantics) and has paid the
// full-stack processing delay — giving head-of-line blocking under loss
// and a higher per-hop latency floor, which is exactly what the paper's
// fast path eliminates.
namespace livenet::hier {

enum class HierRole { kL1, kL2, kCenter };

struct HierNodeConfig {
  HierRole role = HierRole::kL1;
  Duration full_stack_delay = 20 * kMs;  ///< per-hop processing latency
  Duration center_extra_delay = 10 * kMs;  ///< media processing at center
  Duration unsubscribe_linger = 5 * kSec;
  std::size_t packet_cache_gops = 2;
  /// Node-to-node transport config. Hier runs RTMP over TCP between
  /// nodes: sending is not media-paced — TCP grabs the available link
  /// bandwidth — so the default floors the pacing rate high.
  overlay::LinkSender::Config sender;
  /// Client-facing (last mile) transport: bandwidth-adaptive.
  overlay::LinkSender::Config client_sender;
  overlay::LinkReceiver::Config receiver;
};

class HierNode final : public sim::SimNode {
 public:
  HierNode(sim::Network* net, overlay::OverlayMetrics* metrics)
      : HierNode(net, metrics, HierNodeConfig()) {}
  HierNode(sim::Network* net, overlay::OverlayMetrics* metrics,
           const HierNodeConfig& cfg);
  ~HierNode() override;

  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override;

  /// L1: the VDN-style controller used for L2 mapping. L2: the center.
  void set_controller(sim::NodeId controller) { controller_ = controller; }
  void set_parent(sim::NodeId parent) { parent_ = parent; }

  void set_location(int country) { country_ = country; }
  int location() const { return country_; }

  HierRole role() const { return cfg_.role; }
  const overlay::StreamFib& fib() const { return fib_; }
  bool carries_stream(media::StreamId s) const;
  const overlay::PacketGopCache& packet_cache() const { return packet_cache_; }
  bool has_upstream(media::StreamId s) const { return stream_upstream_.count(s) != 0; }

 private:
  struct PendingView {
    sim::NodeId client = sim::kNoNode;
    overlay::ViewSession* session = nullptr;
  };
  struct ClientViewState {
    overlay::ViewSession* session = nullptr;
    media::StreamId stream = media::kNoStream;
  };

  void handle_rtp(sim::NodeId from, const media::RtpPacketPtr& pkt);
  void forward_ordered(const media::RtpPacketPtr& pkt);
  void handle_view_request(sim::NodeId client,
                           const overlay::ViewRequest& req);
  void handle_view_stop(sim::NodeId client, const overlay::ViewStop& msg);
  void handle_publish(sim::NodeId client, const overlay::PublishRequest& req);
  void handle_publish_stop(sim::NodeId client,
                           const overlay::PublishStop& msg);
  void handle_subscribe(sim::NodeId from, const HierSubscribe& req);
  void handle_unsubscribe(sim::NodeId from, const HierUnsubscribe& req);
  void handle_map_response(const MapResponse& resp);

  void attach_client(sim::NodeId client, media::StreamId stream,
                     overlay::ViewSession* session);
  void subscribe_upstream(media::StreamId stream);
  void maybe_release_stream(media::StreamId stream);
  void release_stream(media::StreamId stream);

  overlay::LinkSender& sender_for(sim::NodeId peer, bool client = false);
  overlay::LinkReceiver& receiver_for(sim::NodeId peer);
  Duration hop_processing_delay() const;

  sim::Network* net_;
  overlay::OverlayMetrics* metrics_;
  HierNodeConfig cfg_;
  sim::NodeId controller_ = sim::kNoNode;
  sim::NodeId parent_ = sim::kNoNode;  ///< L2 for L1 (default), center for L2
  int country_ = -1;

  overlay::StreamFib fib_;
  overlay::PacketGopCache packet_cache_;
  std::unordered_map<sim::NodeId, std::unique_ptr<overlay::LinkSender>>
      senders_;
  std::unordered_map<sim::NodeId, std::unique_ptr<overlay::LinkReceiver>>
      receivers_;
  std::unordered_map<sim::NodeId, ClientViewState> client_views_;
  std::unordered_map<media::StreamId, std::vector<PendingView>>
      pending_views_;
  std::unordered_map<std::uint64_t, media::StreamId> pending_maps_;
  std::unordered_map<media::StreamId, sim::NodeId> stream_upstream_;
  std::unordered_map<media::StreamId, sim::EventId> linger_timers_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace livenet::hier
