#pragma once

#include <sstream>
#include <string>

#include "media/frame.h"
#include "sim/message.h"

// Control messages of the Hier baseline (paper §2.2): the VDN-style
// centralized controller maps L1 nodes to L2 nodes per stream; L1/L2
// nodes subscribe upward through the fixed tree.
namespace livenet::hier {

/// L1 -> controller: which L2 should this L1 use for `stream`?
class MapRequest final : public sim::CloneableMessage<MapRequest> {
 public:
  std::uint64_t request_id = 0;
  media::StreamId stream_id = media::kNoStream;
  sim::NodeId l1 = sim::kNoNode;

  std::size_t wire_size() const override { return 32; }
  std::string describe() const override {
    std::ostringstream ss;
    ss << "HIERMAP? s" << stream_id << " l1=" << l1;
    return ss.str();
  }
};

/// Controller -> L1: the assigned L2.
class MapResponse final : public sim::CloneableMessage<MapResponse> {
 public:
  std::uint64_t request_id = 0;
  media::StreamId stream_id = media::kNoStream;
  sim::NodeId l2 = sim::kNoNode;

  std::size_t wire_size() const override { return 32; }
  std::string describe() const override {
    std::ostringstream ss;
    ss << "HIERMAP s" << stream_id << " l2=" << l2;
    return ss.str();
  }
};

/// Downstream node -> upstream node: subscribe to a stream.
class HierSubscribe final : public sim::CloneableMessage<HierSubscribe> {
 public:
  media::StreamId stream_id = media::kNoStream;

  std::size_t wire_size() const override { return 16; }
  std::string describe() const override {
    std::ostringstream ss;
    ss << "HIERSUB s" << stream_id;
    return ss.str();
  }
};

/// Downstream node -> upstream node: no more subscribers here.
class HierUnsubscribe final : public sim::CloneableMessage<HierUnsubscribe> {
 public:
  media::StreamId stream_id = media::kNoStream;

  std::size_t wire_size() const override { return 16; }
  std::string describe() const override {
    std::ostringstream ss;
    ss << "HIERUNSUB s" << stream_id;
    return ss.str();
  }
};

}  // namespace livenet::hier
