#include "livenet/csv.h"

namespace livenet {

namespace {

int country_of(const std::map<sim::NodeId, int>& m, sim::NodeId n) {
  const auto it = m.find(n);
  return it != m.end() ? it->second : -1;
}

int stream_country(const std::map<media::StreamId, int>& m,
                   media::StreamId s) {
  const auto it = m.find(s);
  return it != m.end() ? it->second : -1;
}

}  // namespace

void write_sessions_csv(const ScenarioResult& r, std::ostream& os) {
  os << "request_time_s,stream,consumer,consumer_country,producer_country,"
        "local_hit,last_resort,path_length,cdn_delay_ms_mean,"
        "cdn_delay_samples,first_packet_delay_ms,path_response_rtt_ms,"
        "path_switches,bitrate_downgrades,costream_switches,failed,"
        "end_time_s\n";
  for (const auto& s : r.overlay.sessions()) {
    os << to_sec(s.request_time) << ',' << s.stream << ',' << s.consumer
       << ',' << country_of(r.node_country, s.consumer) << ','
       << stream_country(r.stream_country, s.stream) << ','
       << (s.local_hit ? 1 : 0) << ',' << (s.last_resort ? 1 : 0) << ','
       << s.path_length << ',' << s.cdn_delay_ms.mean() << ','
       << s.cdn_delay_ms.count() << ','
       << (s.first_packet_delay() == kNever
               ? -1.0
               : to_ms(s.first_packet_delay()))
       << ','
       << (s.path_response_rtt == kNever ? -1.0 : to_ms(s.path_response_rtt))
       << ',' << s.path_switches << ',' << s.bitrate_downgrades << ','
       << s.costream_switches << ',' << (s.failed ? 1 : 0) << ','
       << (s.end_time == kNever ? -1.0 : to_sec(s.end_time)) << '\n';
  }
}

void write_views_csv(const ScenarioResult& r, std::ostream& os) {
  os << "view_start_s,stream,viewer,consumer,startup_delay_ms,fast_startup,"
        "stalls,dead_air_stalls,total_stall_ms,streaming_delay_ms_mean,"
        "header_ext_delay_ms_mean,frames_displayed,frames_skipped,failed,"
        "completed\n";
  for (const auto& v : r.clients.records()) {
    os << to_sec(v.view_start) << ',' << v.stream << ',' << v.viewer << ','
       << v.consumer << ','
       << (v.startup_delay() == kNever ? -1.0 : to_ms(v.startup_delay()))
       << ',' << (v.fast_startup() ? 1 : 0) << ',' << v.stalls << ','
       << v.dead_air_stalls << ',' << to_ms(v.total_stall_time) << ','
       << v.streaming_delay_ms.mean() << ',' << v.header_ext_delay_ms.mean()
       << ',' << v.frames_displayed << ',' << v.frames_skipped << ','
       << (v.view_failed ? 1 : 0) << ',' << (v.completed ? 1 : 0) << '\n';
  }
}

void write_path_requests_csv(const ScenarioResult& r, std::ostream& os) {
  os << "arrival_s,hour,response_time_ms,last_resort,stream_known\n";
  for (const auto& q : r.brain.path_requests) {
    os << to_sec(q.arrival) << ',' << r.hour_of(q.arrival) << ','
       << to_ms(q.response_time) << ',' << (q.last_resort ? 1 : 0) << ','
       << (q.stream_known ? 1 : 0) << '\n';
  }
}

void write_faults_csv(const ScenarioResult& r, std::ostream& os) {
  os << "kind,injected_s,repaired_s,recovered_s,recovery_ms,a,b,"
        "duration_s,loss,extra_delay_ms\n";
  for (const auto& f : r.faults) {
    os << sim::to_string(f.spec.kind) << ','
       << (f.injected_at == kNever ? -1.0 : to_sec(f.injected_at)) << ','
       << (f.repaired() ? to_sec(f.repaired_at) : -1.0) << ','
       << (f.recovered() ? to_sec(f.recovered_at) : -1.0) << ','
       << (f.recovery_time() == kNever ? -1.0 : to_ms(f.recovery_time()))
       << ',' << f.spec.a << ',' << f.spec.b << ','
       << to_sec(f.spec.duration) << ',' << f.spec.loss << ','
       << to_ms(f.spec.extra_delay) << '\n';
  }
}

void write_timeline_csv(const ScenarioResult& r, std::ostream& os) {
  os << "t_s,day,hour,bytes_delta,measured_loss,arrival_rate,"
        "concurrent_viewers\n";
  for (const auto& t : r.timeline) {
    os << to_sec(t.t) << ',' << t.day << ',' << t.hour << ','
       << t.bytes_delta << ',' << t.measured_loss << ',' << t.arrival_rate
       << ',' << t.concurrent_viewers << '\n';
  }
}

}  // namespace livenet
