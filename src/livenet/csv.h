#pragma once

#include <ostream>

#include "livenet/scenario.h"

// CSV exporters for ScenarioResult: one row per consumer session, per
// view (client QoE), per brain path request, and per timeline sample.
// Meant for downstream analysis/plotting of experiment runs without
// touching the C++ aggregation helpers.
namespace livenet {

/// Consumer-node session log (the paper's first data source).
void write_sessions_csv(const ScenarioResult& r, std::ostream& os);

/// Client QoE log (the paper's second data source).
void write_views_csv(const ScenarioResult& r, std::ostream& os);

/// Path Decision log (the paper's third data source; LiveNet only).
void write_path_requests_csv(const ScenarioResult& r, std::ostream& os);

/// Hourly system counters (throughput, loss, concurrency).
void write_timeline_csv(const ScenarioResult& r, std::ostream& os);

/// Injected faults with repair and measured recovery times.
void write_faults_csv(const ScenarioResult& r, std::ostream& os);

}  // namespace livenet
