#pragma once

#include <string>

#include "livenet/scenario.h"
#include "livenet/system.h"

// Calibrated default configurations used by the examples and the
// reproduction benchmarks. Time is compressed (one "day" of the paper's
// evaluation = `day_length` of virtual time); geography is scaled so
// the *shapes* of the paper's results hold (see EXPERIMENTS.md for the
// paper-vs-measured comparison).
namespace livenet {

/// The shared CDN footprint: both LiveNet and Hier are built from this
/// (same geographic sites, same link pool — the paper's methodology).
inline SystemConfig paper_system_config(std::uint64_t seed = 42) {
  SystemConfig cfg;
  cfg.countries = 6;
  cfg.nodes_per_country = 6;
  cfg.last_resort_nodes = 2;

  cfg.geo.countries = cfg.countries;
  cfg.geo.country_spread = 80.0;  // inter-national one-way scale
  cfg.geo.country_radius = 50.0;  // intra-national one-way scale

  cfg.mesh_bandwidth_bps = 150e6;
  cfg.base_loss_rate = 0.0004;  // scaled diurnally up to ~0.17% at peak
  cfg.access_bandwidth_bps = 20e6;
  cfg.access_extra_delay = 90 * kMs;  // first/last-mile tail latency

  // Compressed control timescales (a "day" is minutes of virtual time):
  // routing every 30 s of virtual time stands in for the 10-minute
  // production cycle; reports every 10 s for the 1-minute cycle.
  cfg.brain.routing_interval = 30 * kSec;
  // Stream-count capacity: scaled to the compressed workload so that
  // the hottest relays brush the 80% overload target at peak hours
  // (the source of overload alarms and last-resort paths).
  cfg.overlay_node.max_streams = 12;
  cfg.brain.push_top_n = 3;
  cfg.overlay_node.report_interval = 10 * kSec;
  cfg.overlay_node.overload_check_interval = 2 * kSec;

  // Warm caches: production CDNs keep recently-viewed streams resident
  // well past the last viewer (hierarchical caching, §2.2).
  cfg.overlay_node.unsubscribe_linger = 25 * kSec;
  cfg.hier_l1.unsubscribe_linger = 25 * kSec;
  cfg.hier_l2.unsubscribe_linger = 25 * kSec;

  // Hier client-facing senders open with a fast startup burst window
  // (the cached-GoP burst rides it before GCC feedback settles in).
  cfg.hier_l1.client_sender.gcc.start_rate_bps = 16e6;

  cfg.hier_l1.full_stack_delay = 15 * kMs;
  cfg.hier_l2.full_stack_delay = 15 * kMs;
  cfg.hier_center.full_stack_delay = 15 * kMs;
  cfg.hier_center.center_extra_delay = 12 * kMs;
  // RTMP-over-TCP between Hier nodes: transfers run at link speed, not
  // media-paced; model by flooring the inter-node pacing rate.
  for (auto* h : {&cfg.hier_l1, &cfg.hier_l2, &cfg.hier_center}) {
    h->sender.gcc.min_rate_bps = 40e6;
    h->sender.gcc.start_rate_bps = 40e6;
  }

  cfg.seed = seed;
  return cfg;
}

/// Applies an SVC mode name to a scenario: "off" (default — plain
/// simulcast, bit-identical to the pre-SVC world), "L1T3" (1 spatial x
/// 3 temporal layers) or "L3T3" (3 x 3). Returns false on an unknown
/// name. The lattice rides the top simulcast version; the rest of the
/// ladder stays plain as the fallback.
inline bool apply_svc_mode(ScenarioConfig& cfg, const std::string& mode) {
  if (mode == "off") {
    cfg.svc_spatial_layers = 1;
    cfg.svc_temporal_layers = 1;
  } else if (mode == "L1T3") {
    cfg.svc_spatial_layers = 1;
    cfg.svc_temporal_layers = 3;
  } else if (mode == "L3T3") {
    cfg.svc_spatial_layers = 3;
    cfg.svc_temporal_layers = 3;
  } else {
    return false;
  }
  return true;
}

/// The Taobao-Live-like workload driving most experiments.
inline ScenarioConfig paper_scenario_config(std::uint64_t seed = 7) {
  ScenarioConfig cfg;
  cfg.day_length = 60 * kSec;    // one compressed "day"
  cfg.duration = 3 * cfg.day_length;
  cfg.broadcasts = 16;
  cfg.simulcast_versions = 2;
  cfg.top_bitrate_bps = 1.2e6;
  cfg.fps = 25;
  cfg.gop_frames = 50;           // 2-second GoPs
  cfg.viewer_rate_peak = 3.5;
  cfg.zipf_s = 1.3;
  cfg.mean_view_time = 30 * kSec;
  cfg.intl_fraction = 0.12;
  cfg.peak_loss_scale = 4.0;
  cfg.seed = seed;
  return cfg;
}

}  // namespace livenet
