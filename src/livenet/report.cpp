#include "livenet/report.h"

#include <algorithm>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace livenet {

bool session_healthy(const overlay::ViewSession& s) {
  return !s.failed && s.cdn_delay_ms.count() > 0 && s.path_length >= 0;
}

bool view_healthy(const client::QoeRecord& v) {
  return !v.view_failed && v.first_display != kNever &&
         v.frames_displayed > 0;
}

HeadlineMetrics headline_metrics(const ScenarioResult& r, Time from,
                                 Time to) {
  HeadlineMetrics out;
  const Time end = to == kNever ? std::numeric_limits<Time>::max() : to;

  Samples cdn_delay, path_len;
  for (const auto& s : r.overlay.sessions()) {
    if (s.request_time < from || s.request_time >= end) continue;
    if (!session_healthy(s)) continue;
    cdn_delay.add(s.cdn_delay_ms.mean());
    path_len.add(s.path_length);
    ++out.sessions;
  }
  Samples streaming;
  RatioCounter zero_stall, fast_start;
  for (const auto& v : r.clients.records()) {
    if (v.view_start < from || v.view_start >= end) continue;
    if (!view_healthy(v)) continue;
    streaming.add(v.streaming_delay_ms.mean());
    zero_stall.add(v.stalls == 0);
    fast_start.add(v.fast_startup());
    ++out.views;
  }
  out.cdn_path_delay_ms_median = cdn_delay.median();
  out.cdn_path_length_median = path_len.median();
  out.streaming_delay_ms_median = streaming.median();
  out.zero_stall_percent = zero_stall.percent();
  out.fast_startup_percent = fast_start.percent();
  return out;
}

PathLengthDist path_length_distribution(
    const std::vector<const overlay::ViewSession*>& sessions) {
  PathLengthDist d;
  for (const auto* s : sessions) {
    if (!session_healthy(*s)) continue;
    ++d.count;
    switch (s->path_length) {
      case 0: d.len0 += 1; break;
      case 1: d.len1 += 1; break;
      case 2: d.len2 += 1; break;
      default: d.len3_plus += 1; break;
    }
  }
  if (d.count > 0) {
    const auto n = static_cast<double>(d.count);
    d.len0 /= n;
    d.len1 /= n;
    d.len2 /= n;
    d.len3_plus /= n;
  }
  return d;
}

void split_by_locality(
    const ScenarioResult& r,
    const std::map<media::StreamId, int>& stream_country,
    const std::map<sim::NodeId, int>& node_country,
    std::vector<const overlay::ViewSession*>* intra,
    std::vector<const overlay::ViewSession*>* inter) {
  for (const auto& s : r.overlay.sessions()) {
    const auto pit = stream_country.find(s.stream);
    const auto cit = node_country.find(s.consumer);
    if (pit == stream_country.end() || cit == node_country.end()) continue;
    if (pit->second == cit->second) {
      intra->push_back(&s);
    } else {
      inter->push_back(&s);
    }
  }
}

std::map<int, BoxStats> delay_by_path_length(const ScenarioResult& r) {
  std::map<int, Samples> grouped;
  for (const auto& s : r.overlay.sessions()) {
    if (!session_healthy(s)) continue;
    grouped[std::min(s.path_length, 3)].add(s.cdn_delay_ms.mean());
  }
  std::map<int, BoxStats> out;
  for (const auto& [len, samples] : grouped) {
    out[len] = boxplot(samples);
  }
  return out;
}

std::vector<std::pair<int, Samples>> by_hour(
    const std::vector<std::pair<Time, double>>& samples,
    Duration day_length) {
  std::map<int, Samples> grouped;
  for (const auto& [t, v] : samples) {
    const int hour = static_cast<int>((t % day_length) * 24 / day_length);
    grouped[hour].add(v);
  }
  return {grouped.begin(), grouped.end()};
}

FaultSummary fault_summary(const ScenarioResult& r) {
  FaultSummary out;
  Samples recovery;
  for (const auto& f : r.faults) {
    if (f.injected_at == kNever) continue;  // scheduled past the horizon
    ++out.injected;
    ++out.by_kind[sim::to_string(f.spec.kind)];
    if (f.repaired()) ++out.repaired;
    if (f.recovered()) {
      ++out.recovered;
      recovery.add(to_ms(f.recovery_time()));
    }
  }
  out.mean_recovery_ms = recovery.mean();
  out.max_recovery_ms = recovery.max();
  return out;
}

double streaming_delay_t_statistic(const ScenarioResult& a,
                                   const ScenarioResult& b) {
  OnlineStats sa, sb;
  for (const auto& v : a.clients.records()) {
    if (view_healthy(v)) sa.add(v.streaming_delay_ms.mean());
  }
  for (const auto& v : b.clients.records()) {
    if (view_healthy(v)) sb.add(v.streaming_delay_ms.mean());
  }
  return welch_t_statistic(sa, sb);
}

void write_telemetry_csv(std::ostream& os) {
  telemetry::Tracer::instance().write_csv(os);
}

void write_metrics_json(std::ostream& os) {
  telemetry::MetricsRegistry::instance().write_json(os);
}

void reset_telemetry() {
  telemetry::Tracer::instance().reset();
  telemetry::MetricsRegistry::instance().reset();
}

}  // namespace livenet
