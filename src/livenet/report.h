#pragma once

#include <map>
#include <string>
#include <vector>

#include "livenet/scenario.h"
#include "util/stats.h"

// Aggregation helpers turning raw ScenarioResult measurements into the
// exact rows/series the paper's tables and figures report.
namespace livenet {

/// Table 1 row set: the five headline metrics.
struct HeadlineMetrics {
  double cdn_path_delay_ms_median = 0.0;
  double cdn_path_length_median = 0.0;
  double streaming_delay_ms_median = 0.0;
  double zero_stall_percent = 0.0;
  double fast_startup_percent = 0.0;
  std::size_t sessions = 0;
  std::size_t views = 0;
};

/// Computes the headline metrics over a time window ([0, end) of the
/// run when from/to are defaulted).
HeadlineMetrics headline_metrics(const ScenarioResult& r, Time from = 0,
                                 Time to = kNever);

/// Per-session convenience filters.
bool session_healthy(const overlay::ViewSession& s);
bool view_healthy(const client::QoeRecord& v);

/// Distribution of CDN path lengths (Table 2): fraction of sessions
/// with length 0, 1, 2, >= 3. `countries` of consumer/producer decide
/// the inter/intra split; sessions with unknown producers are skipped.
struct PathLengthDist {
  double len0 = 0, len1 = 0, len2 = 0, len3_plus = 0;
  std::size_t count = 0;
};
PathLengthDist path_length_distribution(
    const std::vector<const overlay::ViewSession*>& sessions);

/// Splits sessions into (intra, inter) national by producer/consumer
/// country. `stream_country` maps stream -> producer country.
void split_by_locality(
    const ScenarioResult& r,
    const std::map<media::StreamId, int>& stream_country,
    const std::map<sim::NodeId, int>& node_country,
    std::vector<const overlay::ViewSession*>* intra,
    std::vector<const overlay::ViewSession*>* inter);

/// Boxplot of CDN path delay grouped by observed path length (Fig 11).
std::map<int, BoxStats> delay_by_path_length(const ScenarioResult& r);

/// Hourly series helpers (Figs 10, 13): aggregates by compressed hour.
struct HourlyStat {
  double hour = 0.0;
  Samples values;
};
std::vector<std::pair<int, Samples>> by_hour(
    const std::vector<std::pair<Time, double>>& samples, Duration day_length);

/// Welch t-statistic between the per-view streaming delays of two runs
/// (the paper's significance check; |t| > 3.3 ~ p < 0.001).
double streaming_delay_t_statistic(const ScenarioResult& a,
                                   const ScenarioResult& b);

/// Chaos-run summary: per-kind fault counts and recovery-time stats
/// (repair -> first packet delivered on a repaired link).
struct FaultSummary {
  std::size_t injected = 0;
  std::size_t repaired = 0;
  std::size_t recovered = 0;
  double mean_recovery_ms = 0.0;
  double max_recovery_ms = 0.0;
  std::map<std::string, std::size_t> by_kind;
};
FaultSummary fault_summary(const ScenarioResult& r);

// Telemetry exporters, surfaced here so report consumers need no
// direct dependency on the telemetry singletons.

/// Per-hop trace records of the current run (telemetry.csv).
void write_telemetry_csv(std::ostream& os);

/// Metrics registry snapshot (metrics.json).
void write_metrics_json(std::ostream& os);

/// Zeroes the registry and clears the trace ring (call between runs
/// in one process to keep per-run exports isolated).
void reset_telemetry();

}  // namespace livenet
