#include "livenet/scenario.h"

#include <algorithm>
#include <cmath>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace livenet {

using sim::NodeId;
using workload::GeoSite;

ScenarioRunner::ScenarioRunner(CdnSystem& system, const ScenarioConfig& cfg)
    : system_(system), cfg_(cfg), rng_(cfg.seed),
      demand_(cfg.viewer_rate_peak,
              workload::DiurnalCurve(cfg.diurnal_trough, 1.0),
              cfg.day_length),
      zipf_(static_cast<std::size_t>(std::max(1, cfg.broadcasts)),
            cfg.zipf_s) {
  for (const auto& w : cfg_.flash) demand_.add_flash(w);
}

void ScenarioRunner::start_broadcasters() {
  auto& loop = system_.loop();
  for (int b = 0; b < cfg_.broadcasts; ++b) {
    // Simulcast ladder configuration.
    client::BroadcasterConfig bc;
    bc.encode_delay = 60 * kMs;
    bc.trace_sample = cfg_.trace_sample;
    double rate = cfg_.top_bitrate_bps;
    for (int v = 0; v < cfg_.simulcast_versions; ++v) {
      media::VideoSourceConfig vc;
      vc.fps = cfg_.fps;
      vc.gop_frames = cfg_.gop_frames;
      vc.bitrate_bps = rate;
      vc.b_per_p = cfg_.b_per_p;
      vc.i_frame_weight = cfg_.i_frame_weight;
      if (v == 0) {
        // Only the top version carries the SVC lattice; the lower
        // simulcast rungs stay plain (they are the fallback ladder).
        vc.svc_spatial_layers = cfg_.svc_spatial_layers;
        vc.svc_temporal_layers = cfg_.svc_temporal_layers;
      }
      bc.versions.push_back(vc);
      rate *= cfg_.ladder_step;
    }

    auto bcast = std::make_unique<client::Broadcaster>(
        &system_.network(), cfg_.seed * 1000 + static_cast<std::uint64_t>(b),
        bc);
    const GeoSite site = system_.geo().sample_site();
    broadcaster_sites_.push_back(site);
    const NodeId producer = system_.attach_client(bcast.get(), site);

    std::vector<media::StreamId> streams;
    for (int v = 0; v < cfg_.simulcast_versions; ++v) {
      streams.push_back(next_stream_id_++);
    }
    broadcast_streams_.push_back(streams);

    // Stagger starts across the first seconds so keyframes interleave.
    const Duration start_at =
        static_cast<Duration>(rng_.uniform(0.0, to_sec(cfg_.warmup)) *
                              static_cast<double>(kSec));
    client::Broadcaster* raw = bcast.get();
    loop.schedule_after(start_at, [raw, producer, streams] {
      raw->start(producer, streams);
    });
    broadcasters_.push_back(std::move(bcast));
    (void)producer;
  }
}

void ScenarioRunner::spawn_viewer() {
  const std::size_t b = zipf_.sample(rng_);
  const auto& streams = broadcast_streams_[b];
  if (streams.empty()) return;

  // Viewer location: usually the broadcaster's country (regional
  // audiences), sometimes international.
  GeoSite site;
  const GeoSite& bsite = broadcaster_sites_[b];
  if (rng_.chance(cfg_.intl_fraction)) {
    int other = bsite.country;
    if (system_.geo().countries() > 1) {
      while (other == bsite.country) {
        other = static_cast<int>(
            rng_.index(static_cast<std::size_t>(system_.geo().countries())));
      }
    }
    site = system_.geo().sample_site(other);
  } else if (rng_.chance(cfg_.colocate_popular_bias)) {
    site = system_.geo().sample_site(bsite.country);
  } else {
    site = system_.geo().sample_site();
  }

  client::ViewerConfig vcfg;
  vcfg.initial_layer_mask = cfg_.viewer_layer_mask;
  auto viewer = std::make_unique<client::Viewer>(&system_.network(),
                                                 &client_metrics_, vcfg);
  const NodeId consumer = system_.attach_client(viewer.get(), site);

  std::vector<media::StreamId> fallback(streams.begin() + 1, streams.end());
  viewer->start_view(consumer, streams.front(), std::move(fallback));
  ++total_viewers_;

  const double view_secs = rng_.lognormal(
      std::log(to_sec(cfg_.mean_view_time)) -
          0.5 * cfg_.view_time_sigma * cfg_.view_time_sigma,
      cfg_.view_time_sigma);
  const Time stop_at =
      system_.loop().now() +
      static_cast<Duration>(std::max(2.0, view_secs) *
                            static_cast<double>(kSec));
  client::Viewer* raw = viewer.get();
  system_.loop().schedule_at(stop_at, [raw] { raw->stop_view(); });
  views_.push_back(ActiveView{std::move(viewer), stop_at});
}

void ScenarioRunner::schedule_next_arrival() {
  const Time now = system_.loop().now();
  const double rate = std::max(0.01, demand_.rate_at(now));
  const Duration gap = static_cast<Duration>(
      rng_.exponential(1.0 / rate) * static_cast<double>(kSec));
  const Time next = now + std::max<Duration>(gap, 1 * kMs);
  if (next >= cfg_.duration) return;
  system_.loop().schedule_at(next, [this] {
    spawn_viewer();
    schedule_next_arrival();
  });
}

void ScenarioRunner::sample_timeline() {
  const Time now = system_.loop().now();

  // Diurnal loss scaling + flash capacity handling.
  const double level = (demand_.rate_at(now) / cfg_.viewer_rate_peak);
  system_.set_loss_scale(1.0 + (cfg_.peak_loss_scale - 1.0) *
                                   std::min(1.0, level));
  bool in_flash = false;
  for (const auto& w : cfg_.flash) {
    if (w.contains(now)) in_flash = true;
  }
  if (in_flash && !flash_scaled_ && cfg_.flash_capacity_factor != 1.0) {
    system_.scale_capacity(cfg_.flash_capacity_factor);
    flash_scaled_ = true;
  } else if (!in_flash && flash_scaled_) {
    system_.scale_capacity(1.0 / cfg_.flash_capacity_factor);
    flash_scaled_ = false;
  }

  // Counters.
  std::uint64_t sent = 0, lost = 0, bytes = 0;
  for (const sim::Link* l : system_.cdn_links()) {
    sent += l->stats().packets_sent;
    lost += l->stats().packets_lost + l->stats().packets_dropped;
    bytes += l->stats().bytes_sent;
  }
  TimelineSample s;
  s.t = now;
  s.hour = demand_.hour_of(now);
  s.day = static_cast<int>(now / cfg_.day_length);
  s.bytes_delta = bytes - prev_bytes_;
  const std::uint64_t dsent = sent - prev_sent_pkts_;
  const std::uint64_t dlost = lost - prev_lost_pkts_;
  s.measured_loss =
      dsent > 0 ? static_cast<double>(dlost) / static_cast<double>(dsent)
                : 0.0;
  s.arrival_rate = demand_.rate_at(now);
  std::size_t active = 0;
  for (const auto& v : views_) {
    if (v.stop_at > now) ++active;
  }
  s.concurrent_viewers = active;
  telemetry::handles().concurrent_viewers->set(static_cast<double>(active));
  telemetry::handles().peak_pending_events->set_max(
      static_cast<double>(system_.loop().peak_pending()));
  timeline_.push_back(s);
  prev_bytes_ = bytes;
  prev_sent_pkts_ = sent;
  prev_lost_pkts_ = lost;

  const Duration sample_every = cfg_.day_length / 24;
  if (now + sample_every <= cfg_.duration) {
    system_.loop().schedule_after(sample_every,
                                  [this] { sample_timeline(); });
  }
}

ScenarioResult ScenarioRunner::run() {
  system_.build_once();
  system_.start();

  std::unique_ptr<sim::FaultInjector> injector;
  if (cfg_.faults.enabled()) {
    injector = std::make_unique<sim::FaultInjector>(&system_.network());
    injector->set_node_handlers(
        [this](sim::NodeId n) { system_.crash_node(n); },
        [this](sim::NodeId n) { system_.restart_node(n); });
    std::vector<std::pair<sim::NodeId, sim::NodeId>> links;
    links.reserve(system_.cdn_links().size());
    for (const sim::Link* l : system_.cdn_links()) {
      links.emplace_back(l->src(), l->dst());
    }
    injector->load_plan(cfg_.faults, cfg_.duration, links,
                        system_.crashable_nodes(), system_.control_node());
  }

  start_broadcasters();
  schedule_next_arrival();
  system_.loop().schedule_after(cfg_.day_length / 24,
                                [this] { sample_timeline(); });

  system_.loop().run_until(cfg_.duration);

  // Graceful teardown: stop everything, drain in-flight work.
  for (auto& v : views_) v.viewer->stop_view();
  for (auto& b : broadcasters_) b->stop();
  system_.loop().run_until(cfg_.duration + 2 * kSec);

  ScenarioResult result;
  result.overlay = system_.sessions();
  result.clients = client_metrics_;
  if (auto* ln = dynamic_cast<LiveNetSystem*>(&system_)) {
    result.brain = ln->brain().metrics();
  }
  result.timeline = std::move(timeline_);
  if (injector) result.faults = injector->records();
  result.day_length = cfg_.day_length;
  result.total_viewers = total_viewers_;
  for (std::size_t b = 0; b < broadcast_streams_.size(); ++b) {
    for (const media::StreamId s : broadcast_streams_[b]) {
      result.stream_country[s] = broadcaster_sites_[b].country;
    }
  }
  for (const sim::NodeId n : system_.edge_nodes()) {
    result.node_country[n] = system_.country_of_node(n);
  }
  return result;
}

}  // namespace livenet
