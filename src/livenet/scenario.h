#pragma once

#include <map>
#include <memory>
#include <vector>

#include "client/broadcaster.h"
#include "client/records.h"
#include "client/viewer.h"
#include "livenet/system.h"
#include "sim/fault_injector.h"
#include "workload/patterns.h"

// Scenario runner: drives a synthetic Taobao-Live-like workload against
// a CdnSystem (LiveNet or Hier) and collects every measurement the
// paper's evaluation uses. Time is compressed: `day_length` virtual
// time represents 24 "hours" so multi-day experiments finish in
// minutes; all mechanisms (routing cycles, reports, NACK timers) run at
// their configured timescales within that compressed clock.
namespace livenet {

struct ScenarioConfig {
  Duration duration = 4 * kMin;      ///< total virtual run time
  Duration day_length = 2 * kMin;    ///< one compressed "day"
  Duration warmup = 5 * kSec;        ///< excluded from arrivals ramp only

  // Broadcasts.
  int broadcasts = 16;               ///< concurrent broadcasts
  int simulcast_versions = 2;        ///< bitrate ladder depth
  double top_bitrate_bps = 1.5e6;
  double ladder_step = 0.5;          ///< each version = step x previous
  double fps = 25.0;
  std::size_t gop_frames = 50;       ///< 2 s GoPs
  std::size_t b_per_p = 0;
  double i_frame_weight = 5.0;

  // SVC layered encoding (DESIGN.md "SVC layered forwarding"). 1x1 =
  // off: plain simulcast, bit-identical to the pre-SVC world. When on,
  // the *top* ladder version carries the SxT lattice (L1T3 = 1x3,
  // L3T3 = 3x3); quality adaptation becomes a per-viewer layer-mask
  // flip, with the lower simulcast versions kept as the fallback.
  std::uint8_t svc_spatial_layers = 1;
  std::uint8_t svc_temporal_layers = 1;
  /// Initial SVC layer mask viewers request (0xFFFF = everything).
  media::LayerMask viewer_layer_mask = media::kAllLayers;

  // Viewers.
  double viewer_rate_peak = 3.0;     ///< arrivals/sec at diurnal peak
  double diurnal_trough = 0.25;
  double zipf_s = 1.1;
  Duration mean_view_time = 30 * kSec;
  double view_time_sigma = 0.6;      ///< lognormal sigma
  double intl_fraction = 0.12;       ///< viewer in another country
  double colocate_popular_bias = 0.65;  ///< viewers cluster near popular
                                        ///< broadcasters' country

  // Diurnal loss model: cdn link loss = base x (1 + (scale-1) x level).
  double peak_loss_scale = 3.5;

  // Flash-crowd windows (Double 12).
  std::vector<workload::FlashWindow> flash;

  // Capacity up-scaling applied during flash windows (§6.5).
  double flash_capacity_factor = 1.0;

  // Chaos: faults injected into the running system (empty = none). The
  // schedule is a pure function of the plan's seed, independent of the
  // workload seed below.
  sim::FaultPlan faults;

  // Telemetry: fraction of broadcaster packets stamped with a per-hop
  // trace_id (0 = tracing off). Observation-only — the golden
  // bit-reproducibility test runs with this at 1.0 to prove it.
  double trace_sample = 0.0;

  std::uint64_t seed = 7;
};

/// Periodic sample of system-wide counters (one per compressed "hour").
struct TimelineSample {
  Time t = 0;
  double hour = 0.0;          ///< hour-of-day in compressed time
  int day = 0;
  std::uint64_t bytes_delta = 0;       ///< CDN bytes sent this sample
  double measured_loss = 0.0;          ///< lost+dropped / sent, CDN links
  double arrival_rate = 0.0;           ///< configured viewer arrival rate
  std::size_t concurrent_viewers = 0;
};

struct ScenarioResult {
  overlay::OverlayMetrics overlay;   ///< consumer-node session logs
  client::ClientMetrics clients;     ///< viewer QoE logs
  brain::BrainMetrics brain;         ///< path-request logs (LiveNet only)
  std::vector<TimelineSample> timeline;
  std::vector<sim::FaultRecord> faults;  ///< injected chaos + recovery times
  Duration day_length = 0;
  std::uint64_t total_viewers = 0;
  std::map<media::StreamId, int> stream_country;  ///< producer country
  std::map<sim::NodeId, int> node_country;        ///< CDN node country

  double hour_of(Time t) const {
    return static_cast<double>(t % day_length) /
           static_cast<double>(day_length) * 24.0;
  }
  int day_of(Time t) const { return static_cast<int>(t / day_length); }
};

class ScenarioRunner {
 public:
  ScenarioRunner(CdnSystem& system, const ScenarioConfig& cfg);

  /// Runs to completion and returns the collected measurements.
  ScenarioResult run();

  /// Streams of the b-th broadcast (populated by run()).
  const std::vector<media::StreamId>& broadcast_streams(int b) const {
    return broadcast_streams_[static_cast<std::size_t>(b)];
  }

 private:
  struct ActiveView {
    std::unique_ptr<client::Viewer> viewer;
    Time stop_at = 0;
  };

  void start_broadcasters();
  void schedule_next_arrival();
  void spawn_viewer();
  void sample_timeline();

  CdnSystem& system_;
  ScenarioConfig cfg_;
  Rng rng_;
  client::ClientMetrics client_metrics_;
  workload::DemandModel demand_;
  workload::ZipfSampler zipf_;
  std::vector<std::unique_ptr<client::Broadcaster>> broadcasters_;
  std::vector<workload::GeoSite> broadcaster_sites_;
  std::vector<std::vector<media::StreamId>> broadcast_streams_;
  std::vector<ActiveView> views_;
  std::vector<TimelineSample> timeline_;
  std::uint64_t prev_bytes_ = 0;
  std::uint64_t prev_sent_pkts_ = 0;
  std::uint64_t prev_lost_pkts_ = 0;
  std::uint64_t total_viewers_ = 0;
  media::StreamId next_stream_id_ = 1;
  bool flash_scaled_ = false;
};

}  // namespace livenet
