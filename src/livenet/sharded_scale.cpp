#include "livenet/sharded_scale.h"

#include <cassert>
#include <cstdio>
#include <deque>
#include <utility>
#include <vector>

#include "client/viewer_cohort.h"
#include "media/packetizer.h"
#include "media/rtp.h"
#include "overlay/messages.h"
#include "sim/sim_node.h"
#include "util/logging.h"

namespace livenet {
namespace {

using sim::MessagePtr;
using sim::NodeId;

/// Per-link RNG seed as a pure function of (run seed, src, dst): the
/// same link gets the same randomness no matter which shard builds it
/// or in what order links are added.
std::uint64_t link_seed(std::uint64_t base, NodeId src, NodeId dst) {
  std::uint64_t x = base ^ (static_cast<std::uint64_t>(src) << 32) ^
                    (static_cast<std::uint64_t>(dst) + 0x9E3779B97F4A7C15ull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// The broadcast origin: packetizes a synthetic video stream and pushes
/// every packet to each region head (one shared trailer per fan-out —
/// the cross-region boundary deep-copies on its own; see shard.h).
class SourceNode final : public sim::SimNode {
 public:
  SourceNode(sim::Network* net, media::StreamId stream,
             const media::VideoSourceConfig& vcfg, std::uint64_t seed)
      : net_(net), source_(stream, vcfg, Rng(seed)), packetizer_(stream) {}

  void add_child(NodeId child) { children_.push_back(child); }

  void start() { tick(); }

  void on_message(NodeId, const MessagePtr&) override {
    // Pure origin: relays never talk upstream in this harness.
  }

 private:
  void tick() {
    const Time now = net_->loop()->now();
    const media::Frame frame = source_.next_frame(now);
    for (auto& pkt : packetizer_.packetize(frame)) {
      const media::RtpPacketPtr shared = std::move(pkt);
      for (const NodeId child : children_) {
        net_->send(node_id(), child, shared);
      }
    }
    net_->loop()->schedule_after(source_.frame_interval(), [this] { tick(); });
  }

  sim::Network* net_;
  media::VideoSource source_;
  media::Packetizer packetizer_;
  std::vector<NodeId> children_;
};

/// Static-tree relay: forwards every RTP packet to its children,
/// sharing the trailer (zero-copy within a region).
class RelayNode final : public sim::SimNode {
 public:
  explicit RelayNode(sim::Network* net) : net_(net) {}

  void add_child(NodeId child) { children_.push_back(child); }

  void on_message(NodeId, const MessagePtr& msg) override {
    if (sim::msg_cast<const media::RtpPacket>(msg) == nullptr) return;
    for (const NodeId child : children_) {
      net_->send(node_id(), child, msg);
    }
  }

 private:
  sim::Network* net_;
  std::vector<NodeId> children_;
};

/// Leaf consumer: speaks the thin-client protocol (§7.2) — answers
/// ViewRequest with an ok ViewAck, fans the stream out to subscribed
/// viewers, absorbs their reports and CC feedback.
class ConsumerNode final : public sim::SimNode {
 public:
  explicit ConsumerNode(sim::Network* net) : net_(net) {}

  void on_message(NodeId from, const MessagePtr& msg) override {
    if (sim::msg_cast<const media::RtpPacket>(msg) != nullptr) {
      for (const NodeId v : subscribers_) {
        net_->send(node_id(), v, msg);
      }
      return;
    }
    if (const auto req = sim::msg_cast<const overlay::ViewRequest>(msg)) {
      subscribers_.push_back(from);
      auto ack = sim::make_message<overlay::ViewAck>();
      ack->stream_id = req->stream_id;
      ack->ok = true;
      net_->send(node_id(), from, std::move(ack));
      return;
    }
    if (sim::msg_cast<const overlay::ViewStop>(msg) != nullptr) {
      for (std::size_t i = 0; i < subscribers_.size(); ++i) {
        if (subscribers_[i] == from) {
          subscribers_.erase(subscribers_.begin() +
                             static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      return;
    }
    if (sim::msg_cast<const overlay::ClientQualityReport>(msg) != nullptr) {
      ++reports_;
      return;
    }
    // NACKs / CC feedback: the harness links are lossless, so NACKs
    // never fire; feedback is absorbed (no pacer to steer).
  }

  std::uint64_t reports_received() const { return reports_; }

 private:
  sim::Network* net_;
  std::vector<NodeId> subscribers_;
  std::uint64_t reports_ = 0;
};

}  // namespace

struct ShardedScaleSim::Impl {
  explicit Impl(const ShardedScaleConfig& c)
      : cfg(c),
        sharded(c.shards, static_cast<std::size_t>(c.regions)),
        metrics(sharded.shards()) {}

  ShardedScaleConfig cfg;
  sim::ShardedSim sharded;
  std::deque<client::ClientMetrics> metrics;  ///< one per shard (thread)

  std::unique_ptr<SourceNode> source;
  std::deque<RelayNode> relays;       ///< heads + mid relays
  std::deque<ConsumerNode> consumers;
  std::vector<NodeId> consumer_ids;
  std::vector<std::int32_t> consumer_region;

  struct Cohort {
    std::unique_ptr<client::ViewerCohort> cohort;
    NodeId viewer_id = sim::kNoNode;
    NodeId consumer = sim::kNoNode;
    std::int32_t region = 0;
    Time nominal_join = 0;
  };
  std::vector<Cohort> cohorts;

  std::uint64_t infra_nodes = 0;
  std::uint64_t total_nodes = 0;
  bool ran = false;

  std::size_t home_shard(std::int32_t region) const {
    return sharded.shard_of_region(region);
  }

  /// Registers `node` (owned by `region`) under the same global id in
  /// every shard's Network.
  NodeId register_node(sim::SimNode* node, std::int32_t region) {
    const std::size_t home = home_shard(region);
    NodeId id = sim::kNoNode;
    for (std::size_t s = 0; s < sharded.shards(); ++s) {
      const NodeId got = s == home ? sharded.net(s).add_node(node)
                                   : sharded.net(s).add_remote_node();
      if (s == 0) {
        id = got;
      } else {
        assert(got == id && "shard id spaces diverged");
        (void)got;
      }
    }
    sharded.set_node_region(id, region);
    return id;
  }

  /// Directed link, added only in the Network owning the source node,
  /// with (seed, src, dst)-pure randomness.
  void link(NodeId src, NodeId dst, Duration delay, double bw_bps) {
    sim::LinkConfig lc;
    lc.propagation_delay = delay;
    lc.bandwidth_bps = bw_bps;
    lc.loss_rate = 0.0;  // lossless: keeps cohort counters exact
    lc.queue_limit_bytes = static_cast<std::size_t>(bw_bps * 0.25 / 8.0);
    const auto region =
        sharded.node_region(src);
    sharded.net(home_shard(region))
        .add_link(src, dst, lc, link_seed(cfg.seed, src, dst));
  }

  void build();
  ShardedScaleResult run();
};

void ShardedScaleSim::Impl::build() {
  const media::StreamId stream = 1;

  // -- Nodes, in one global order every shard replays identically.
  const std::int32_t src_region = 0;
  source = std::make_unique<SourceNode>(&sharded.net(home_shard(src_region)),
                                        stream, cfg.video, cfg.seed ^ 0x51);
  const NodeId source_id = register_node(source.get(), src_region);

  std::vector<NodeId> head_ids;
  for (std::int32_t r = 0; r < cfg.regions; ++r) {
    relays.emplace_back(&sharded.net(home_shard(r)));
    head_ids.push_back(register_node(&relays.back(), r));
  }
  std::vector<std::vector<NodeId>> relay_ids(
      static_cast<std::size_t>(cfg.regions));
  for (std::int32_t r = 0; r < cfg.regions; ++r) {
    for (int i = 0; i < cfg.relays_per_region; ++i) {
      relays.emplace_back(&sharded.net(home_shard(r)));
      relay_ids[static_cast<std::size_t>(r)].push_back(
          register_node(&relays.back(), r));
    }
  }
  for (std::int32_t r = 0; r < cfg.regions; ++r) {
    for (int i = 0; i < cfg.relays_per_region; ++i) {
      for (int j = 0; j < cfg.consumers_per_relay; ++j) {
        consumers.emplace_back(&sharded.net(home_shard(r)));
        consumer_ids.push_back(register_node(&consumers.back(), r));
        consumer_region.push_back(r);
      }
    }
  }
  infra_nodes = 1 + head_ids.size() +
                static_cast<std::uint64_t>(cfg.regions) *
                    static_cast<std::uint64_t>(cfg.relays_per_region) *
                    (1 + static_cast<std::uint64_t>(cfg.consumers_per_relay));

  // -- Core links. Only source -> head crosses regions; the uniform
  // cross_region_delay is therefore the lookahead window.
  for (std::int32_t r = 0; r < cfg.regions; ++r) {
    link(source_id, head_ids[static_cast<std::size_t>(r)],
         cfg.cross_region_delay, cfg.core_bandwidth_bps);
    source->add_child(head_ids[static_cast<std::size_t>(r)]);
  }
  {
    std::size_t consumer_idx = 0;
    std::size_t relay_obj = static_cast<std::size_t>(cfg.regions);
    for (std::int32_t r = 0; r < cfg.regions; ++r) {
      RelayNode& head = relays[static_cast<std::size_t>(r)];
      for (int i = 0; i < cfg.relays_per_region; ++i, ++relay_obj) {
        const NodeId rid = relay_ids[static_cast<std::size_t>(r)]
                                    [static_cast<std::size_t>(i)];
        link(head_ids[static_cast<std::size_t>(r)], rid,
             cfg.intra_region_delay, cfg.core_bandwidth_bps);
        head.add_child(rid);
        RelayNode& relay = relays[relay_obj];
        for (int j = 0; j < cfg.consumers_per_relay; ++j, ++consumer_idx) {
          const NodeId cid = consumer_ids[consumer_idx];
          link(rid, cid, cfg.intra_region_delay, cfg.core_bandwidth_bps);
          relay.add_child(cid);
        }
      }
    }
  }
  // Static infra complete: freeze before viewers attach so the dense
  // matrix covers only the core (clients ride the sorted-row path).
  for (std::size_t s = 0; s < sharded.shards(); ++s) {
    sharded.net(s).freeze_topology();
  }

  // -- One cohort per consumer leaf.
  cohorts.reserve(consumer_ids.size());
  for (std::size_t c = 0; c < consumer_ids.size(); ++c) {
    const std::int32_t r = consumer_region[c];
    const std::size_t home = home_shard(r);
    client::ViewerCohortConfig ccfg;
    ccfg.multiplier = cfg.viewers_per_leaf;
    auto cohort = std::make_unique<client::ViewerCohort>(
        &sharded.net(home), &metrics[home], cfg.seed ^ (0xC0F00Dull + c),
        ccfg);
    const NodeId vid = register_node(&cohort->viewer(), r);
    link(consumer_ids[c], vid, cfg.access_delay, cfg.access_bandwidth_bps);
    link(vid, consumer_ids[c], cfg.access_delay, cfg.access_bandwidth_bps);
    Cohort entry;
    entry.cohort = std::move(cohort);
    entry.viewer_id = vid;
    entry.consumer = consumer_ids[c];
    entry.region = r;
    cohorts.push_back(std::move(entry));
  }
  total_nodes = infra_nodes + cohorts.size();

  // Regions are final: install the boundary intercept + lookahead.
  sharded.start();

  // Scripted chaos: flap one source->head link. Owned by the source's
  // shard, toggled on that shard's own loop.
  if (cfg.flap_at != kNever && cfg.flap_region >= 0 &&
      cfg.flap_region < cfg.regions) {
    sim::Network& src_net = sharded.net(home_shard(src_region));
    sim::Link* l = src_net.link(
        source_id, head_ids[static_cast<std::size_t>(cfg.flap_region)]);
    sim::EventLoop* src_loop = src_net.loop();
    src_loop->schedule_at(cfg.flap_at, [l] { l->set_down(true); });
    src_loop->schedule_at(cfg.flap_at + cfg.flap_duration,
                          [l] { l->set_down(false); });
  }

  // -- Schedule the run.
  sharded.net(home_shard(src_region))
      .loop()
      ->schedule_at(cfg.source_start, [src = source.get()] { src->start(); });
  const media::StreamId view_stream = stream;
  for (std::size_t c = 0; c < cohorts.size(); ++c) {
    Cohort& ch = cohorts[c];
    ch.nominal_join =
        cfg.join_start +
        static_cast<Time>(c) * cfg.join_window /
            static_cast<Time>(cohorts.size());
    const Time leave =
        cfg.view_time > 0 ? ch.nominal_join + cfg.view_time : kNever;
    ch.cohort->schedule_view(ch.consumer, view_stream, ch.nominal_join, leave);
  }
}

ShardedScaleResult ShardedScaleSim::Impl::run() {
  assert(!ran && "ShardedScaleSim::run() is single-shot");
  ran = true;
  build();
  sharded.run_until(cfg.duration);

  ShardedScaleResult out;
  out.infra_nodes = infra_nodes;
  out.total_nodes = total_nodes;
  out.lookahead = sharded.lookahead();
  out.cross_messages = sharded.cross_messages();
  out.cross_clones = sharded.cross_clones();
  out.cross_drops = sharded.cross_drops();
  for (std::size_t s = 0; s < sharded.shards(); ++s) {
    out.events += sharded.loop(s).dispatched();
    out.route_misses += sharded.net(s).route_miss_count();
    out.modeled_viewers += metrics[s].modeled_viewers();
  }

  // The shard-sweep golden: one row per cohort in global build order,
  // every field either integral or formatted at fixed precision from a
  // shard-count-invariant computation.
  std::string csv =
      "cohort,region,consumer,viewer,mult,join_ms,frames_displayed,"
      "frames_skipped,stalls,dead_air,stall_ms,reports,delay_mean_ms,"
      "delay_p95_ms,startup_ms\n";
  char row[512];
  for (std::size_t c = 0; c < cohorts.size(); ++c) {
    const Cohort& ch = cohorts[c];
    const auto& q = ch.cohort->qoe();
    const client::QoeRecord* rec = ch.cohort->viewer().record();
    const double delay_mean =
        rec != nullptr ? rec->streaming_delay_ms.mean() : 0.0;
    const Duration startup =
        rec != nullptr ? rec->startup_delay() : kNever;
    std::snprintf(
        row, sizeof(row),
        "%zu,%d,%d,%d,%u,%lld,%llu,%llu,%llu,%llu,%lld,%llu,%.3f,%.3f,%lld\n",
        c, ch.region, ch.consumer, ch.viewer_id, ch.cohort->multiplier(),
        static_cast<long long>(ch.cohort->join_time(ch.nominal_join) / kMs),
        static_cast<unsigned long long>(q.frames_displayed()),
        static_cast<unsigned long long>(q.frames_skipped()),
        static_cast<unsigned long long>(q.stalls()),
        static_cast<unsigned long long>(q.dead_air_stalls()),
        static_cast<long long>(q.total_stall_time_us() / kMs),
        static_cast<unsigned long long>(q.reports()),
        delay_mean, q.streaming_delay_ms().quantile(0.95),
        static_cast<long long>(startup == kNever ? -1 : startup / kMs));
    csv += row;
    out.frames_displayed += q.frames_displayed();
    out.stalls += q.stalls();
  }
  out.qoe_csv = std::move(csv);
  return out;
}

ShardedScaleSim::ShardedScaleSim(const ShardedScaleConfig& cfg)
    : impl_(std::make_unique<Impl>(cfg)) {}

ShardedScaleSim::~ShardedScaleSim() = default;

ShardedScaleResult ShardedScaleSim::run() { return impl_->run(); }

sim::ShardedSim& ShardedScaleSim::sharded() { return impl_->sharded; }

ShardedScaleConfig scale_acceptance_config(std::size_t shards,
                                           std::uint32_t viewers_per_leaf) {
  ShardedScaleConfig cfg;
  cfg.shards = shards;
  // 1 source + 6 x (1 head + 14 relays + 84 consumers) = 595 infra
  // nodes; 504 consumer leaves x viewers_per_leaf modeled viewers
  // (2000/leaf -> 1,008,000).
  cfg.regions = 6;
  cfg.relays_per_region = 14;
  cfg.consumers_per_relay = 6;
  cfg.viewers_per_leaf = viewers_per_leaf;
  cfg.duration = 10 * kSec;
  return cfg;
}

}  // namespace livenet
