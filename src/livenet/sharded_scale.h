#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "media/video_source.h"
#include "sim/shard.h"
#include "util/time.h"

// Million-viewer scale harness (ROADMAP open item 1): a static
// distribution tree — source -> per-region head -> relays -> consumer
// leaves — with a client::ViewerCohort on every leaf, partitioned by
// region onto a sim::ShardedSim. The full LiveNet control plane
// (Brain, path decision, overlay subscribe) is deliberately absent:
// this harness measures how far the *data plane + viewer pipelines*
// scale when regions run on parallel event loops, and its QoE CSV is
// the shard-sweep golden — byte-identical for every shard count by the
// ShardedSim determinism argument (see DESIGN.md "Sharded simulation").
//
// Node-id discipline: every shard's Network registers the same global
// id sequence (add_node for locally-owned nodes, add_remote_node for
// foreign ones) and a link lives only in the Network owning its source
// node, added through the seeded add_link overload so per-link
// randomness is a pure function of (seed, src, dst) rather than of
// which shard forked the Network RNG first.
namespace livenet {

struct ShardedScaleConfig {
  std::size_t shards = 1;  ///< clamped to [1, regions]
  int regions = 2;
  int relays_per_region = 2;
  int consumers_per_relay = 2;
  /// One ViewerCohort per consumer leaf, each standing for this many
  /// modeled viewers (the tentpole's aggregate-population knob).
  std::uint32_t viewers_per_leaf = 10;
  Time duration = 6 * kSec;
  std::uint64_t seed = 42;
  media::VideoSourceConfig video;  ///< one broadcast, video flow only

  // Underlay. Only source -> region-head links cross regions, so the
  // conservative lookahead window equals cross_region_delay.
  Duration cross_region_delay = 30 * kMs;
  Duration intra_region_delay = 4 * kMs;
  Duration access_delay = 10 * kMs;
  double core_bandwidth_bps = 1e9;
  double access_bandwidth_bps = 50e6;

  /// Optional scripted chaos: the source -> head-of-`flap_region` link
  /// goes down at flap_at and comes back after flap_duration (kNever
  /// disables). The toggle runs on the link owner's loop, so the fault
  /// — like everything else — is shard-count-invariant.
  Time flap_at = kNever;
  Duration flap_duration = 500 * kMs;
  int flap_region = 1;

  Time source_start = 100 * kMs;
  Time join_start = 500 * kMs;
  /// Nominal cohort joins spread evenly over this window (each then
  /// perturbed by the cohort's seeded offset).
  Duration join_window = 2 * kSec;
  /// 0 = view to the end of the run; otherwise leave after this long.
  Duration view_time = 0;
};

struct ShardedScaleResult {
  /// Per-cohort QoE rows in global cohort order — the shard-sweep
  /// golden artifact. Byte-identical across shard counts.
  std::string qoe_csv;
  std::uint64_t infra_nodes = 0;   ///< source + heads + relays + consumers
  std::uint64_t total_nodes = 0;   ///< infra + cohort representative viewers
  std::uint64_t modeled_viewers = 0;
  /// Events dispatched, summed over shard loops. NOT shard-count
  /// invariant: inbox fusion folds fewer packets per flush callback
  /// when more regions share a loop (dispatch *order* still is — see
  /// Network's batching contract), so this is a work gauge, not golden.
  std::uint64_t events = 0;
  std::uint64_t cross_messages = 0;
  std::uint64_t cross_clones = 0;
  std::uint64_t cross_drops = 0;
  std::uint64_t route_misses = 0;
  std::uint64_t frames_displayed = 0;  ///< weighted by cohort multiplier
  std::uint64_t stalls = 0;            ///< weighted by cohort multiplier
  Time lookahead = 0;
};

class ShardedScaleSim {
 public:
  explicit ShardedScaleSim(const ShardedScaleConfig& cfg);
  ~ShardedScaleSim();
  ShardedScaleSim(const ShardedScaleSim&) = delete;
  ShardedScaleSim& operator=(const ShardedScaleSim&) = delete;

  /// Builds, runs for cfg.duration, and reports. Call once.
  ShardedScaleResult run();

  /// The underlying sharded runtime (diagnostics, tests).
  sim::ShardedSim& sharded();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The 600-infra-node / >= 1M-modeled-viewer configuration the scale
/// acceptance runs use (identical topology regardless of `shards`).
ShardedScaleConfig scale_acceptance_config(std::size_t shards,
                                           std::uint32_t viewers_per_leaf);

}  // namespace livenet
