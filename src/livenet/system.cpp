#include "livenet/system.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace livenet {

using sim::NodeId;
using workload::GeoSite;

CdnSystem::CdnSystem(const SystemConfig& cfg)
    : cfg_(cfg), net_(&loop_, cfg.seed),
      geo_(cfg.geo, Rng(cfg.seed ^ 0x47656F6Dull)) {
  net_.set_delivery_batch(cfg.delivery_batch);
}

int CdnSystem::country_of_node(NodeId n) const {
  const auto idx = static_cast<std::size_t>(n);
  return idx < sites_.size() ? sites_[idx].country : -1;
}

void CdnSystem::set_node_peering(NodeId n, double factor) {
  const auto idx = static_cast<std::size_t>(n);
  if (node_peering_.size() <= idx) node_peering_.resize(idx + 1, 1.0);
  node_peering_[idx] = factor;
}

double CdnSystem::edge_peering_draw(NodeId n) const {
  // Deterministic per node so LiveNet and Hier (which share the first
  // node ids/sites) see the same underlay.
  Rng rng(cfg_.seed ^ (static_cast<std::uint64_t>(n) * 0x9E3779B97F4A7C15ull));
  return cfg_.edge_peering_median * rng.lognormal(0.0, cfg_.edge_peering_sigma);
}

Duration CdnSystem::pair_extra(NodeId a, NodeId b) const {
  auto extra = [this](NodeId n) {
    const auto idx = static_cast<std::size_t>(n);
    const double f = idx < node_peering_.size() && node_peering_[idx] > 0.0
                         ? node_peering_[idx]
                         : cfg_.edge_peering_median;
    // Backbone factors sit well below the edge median.
    return f <= cfg_.backbone_peering * 1.01 ? cfg_.backbone_peering_extra
                                             : cfg_.edge_peering_extra;
  };
  return extra(a) + extra(b);
}

double CdnSystem::pair_inflation(NodeId a, NodeId b) const {
  auto factor = [this](NodeId n) {
    const auto idx = static_cast<std::size_t>(n);
    return idx < node_peering_.size() && node_peering_[idx] > 0.0
               ? node_peering_[idx]
               : cfg_.edge_peering_median;
  };
  return factor(a) * factor(b);
}

sim::NodeId CdnSystem::pick_edge(const GeoSite& site,
                                 const std::vector<NodeId>& edges) const {
  if (edges.empty()) return sim::kNoNode;
  // k nearest candidates.
  std::vector<std::pair<double, NodeId>> dist;
  dist.reserve(edges.size());
  for (const NodeId n : edges) {
    const auto& s = sites_[static_cast<std::size_t>(n)];
    const double dx = s.x - site.x, dy = s.y - site.y;
    dist.emplace_back(dx * dx + dy * dy, n);
  }
  std::sort(dist.begin(), dist.end());
  const auto k = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, cfg_.dns_candidates)),
      dist.size());
  // Deterministic per-site draw, weighted toward the closest.
  const auto hx = static_cast<std::uint64_t>(site.x * 1024.0);
  const auto hy = static_cast<std::uint64_t>(site.y * 1024.0);
  Rng rng(cfg_.seed ^ (hx * 0xA24BAED4963EE407ull + hy));
  double u = rng.uniform();
  double w = 0.55;
  for (std::size_t i = 0; i < k; ++i) {
    if (u < w || i + 1 == k) return dist[i].second;
    u -= w;
    w *= 0.55;
  }
  return dist[0].second;
}

sim::Link* CdnSystem::add_cdn_link(NodeId a, NodeId b, Duration one_way,
                                   double inflation_override) {
  const double inflation =
      inflation_override > 0.0 ? inflation_override : pair_inflation(a, b);
  sim::LinkConfig lc;
  lc.propagation_delay =
      static_cast<Duration>(static_cast<double>(one_way) * inflation) +
      (inflation_override > 0.0 ? 0 : pair_extra(a, b));
  lc.bandwidth_bps = cfg_.mesh_bandwidth_bps;
  lc.loss_rate = cfg_.base_loss_rate;
  lc.queue_limit_bytes = cfg_.link_queue_bytes;
  sim::Link* l = net_.add_link(a, b, lc);
  cdn_links_.push_back(l);
  link_base_loss_.push_back(cfg_.base_loss_rate);
  return l;
}

NodeId CdnSystem::attach_client(sim::SimNode* client, const GeoSite& site) {
  const NodeId edge = map_client_to_edge(site);
  const NodeId cid = net_.add_node(client);
  while (sites_.size() < static_cast<std::size_t>(cid)) {
    sites_.push_back(GeoSite{});
  }
  sites_.push_back(site);

  sim::LinkConfig lc;
  lc.propagation_delay =
      geo_.one_way_delay(site, sites_[static_cast<std::size_t>(edge)]) +
      cfg_.access_extra_delay / 2;
  lc.bandwidth_bps = cfg_.access_bandwidth_bps;
  lc.loss_rate = cfg_.base_loss_rate * 2;  // last miles are lossier
  // ~250 ms of buffering at line rate: enough to absorb paced bursts,
  // small enough that sustained overload surfaces as loss quickly
  // (multi-second bufferbloat would hide congestion from GCC).
  lc.queue_limit_bytes = static_cast<std::size_t>(
      std::max(32.0 * 1024.0, cfg_.access_bandwidth_bps * 0.25 / 8.0));
  net_.add_bidi_link(cid, edge, lc);
  return edge;
}

void CdnSystem::set_loss_scale(double scale) {
  for (std::size_t i = 0; i < cdn_links_.size(); ++i) {
    cdn_links_[i]->set_loss_rate(link_base_loss_[i] * scale);
  }
}

void CdnSystem::scale_capacity(double factor) {
  for (sim::Link* l : cdn_links_) {
    l->set_bandwidth_bps(l->bandwidth_bps() * factor);
  }
}

// ------------------------------------------------------------------ LiveNet

void LiveNetSystem::build() {
  const int regular =
      cfg_.countries * cfg_.nodes_per_country;

  // Regular overlay nodes: spread across countries. The first node of
  // each country is its backbone (core PoP): centrally placed and well
  // peered; the rest are edge nodes.
  for (int i = 0; i < regular; ++i) {
    const int country = i % cfg_.countries;
    auto node = std::make_unique<overlay::OverlayNode>(&net_, &metrics_,
                                                       cfg_.overlay_node);
    const GeoSite site = i < cfg_.countries ? geo_.center_site(country)
                                            : geo_.sample_site(country);
    const NodeId id = net_.add_node(node.get());
    sites_.push_back(site);
    node->set_location(country);
    // One backbone (well-peered) node per country: the first round of
    // node creation; the rest are edge nodes with inflated transit.
    // Backbones are relay infrastructure — DNS never maps clients to
    // them, mirroring the paper's distinction between well-connected
    // relays and the edges serving users.
    if (i < cfg_.countries) {
      set_node_peering(id, cfg_.backbone_peering);
      backbone_ids_.push_back(id);
    } else {
      set_node_peering(id, edge_peering_draw(id));
      edge_ids_.push_back(id);
    }
    node_ids_.push_back(id);
    nodes_.push_back(std::move(node));
  }
  // Last-resort nodes: centrally located (well-peered, e.g. at IXPs).
  for (int i = 0; i < cfg_.last_resort_nodes; ++i) {
    auto node = std::make_unique<overlay::OverlayNode>(&net_, &metrics_,
                                                       cfg_.overlay_node);
    GeoSite site;  // plane origin: minimal distance to everyone
    site.country = -1;
    const NodeId id = net_.add_node(node.get());
    sites_.push_back(site);
    node->set_location(-1);
    set_node_peering(id, cfg_.backbone_peering);  // IXP-grade peering
    last_resort_ids_.push_back(id);
    nodes_.push_back(std::move(node));
  }

  // Full mesh among all CDN nodes (regular + last-resort).
  std::vector<NodeId> all = node_ids_;
  all.insert(all.end(), last_resort_ids_.begin(), last_resort_ids_.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = 0; j < all.size(); ++j) {
      if (i == j) continue;
      add_cdn_link(all[i], all[j],
                   geo_.one_way_delay(sites_[static_cast<std::size_t>(all[i])],
                                      sites_[static_cast<std::size_t>(all[j])]));
    }
  }

  // The Streaming Brain: central site, control links to every node.
  brain_ = std::make_unique<brain::BrainNode>(&net_, cfg_.brain);
  const NodeId brain_id = net_.add_node(brain_.get());
  brain_id_ = brain_id;
  GeoSite brain_site;
  sites_.push_back(brain_site);
  for (const NodeId n : all) {
    sim::LinkConfig lc;
    lc.propagation_delay = geo_.one_way_delay(
        brain_site, sites_[static_cast<std::size_t>(n)]);
    lc.bandwidth_bps = 1e9;
    lc.loss_rate = 0.0;
    net_.add_bidi_link(brain_id, n, lc);
  }
  brain_->set_overlay_nodes(node_ids_);
  brain_->set_last_resort_nodes(last_resort_ids_);

  // Path Decision replicas (§7.1): placed at country centers, one per
  // country round-robin, serving nearby consumers' lookups.
  std::vector<NodeId> replica_ids;
  for (int i = 0; i < cfg_.path_decision_replicas; ++i) {
    auto replica = std::make_unique<brain::PathDecisionReplica>(&net_,
                                                                cfg_.brain);
    const GeoSite site = geo_.center_site(i % cfg_.countries);
    const NodeId rid = net_.add_node(replica.get());
    sites_.push_back(site);
    replica_ids.push_back(rid);
    for (const NodeId n : all) {
      sim::LinkConfig lc;
      lc.propagation_delay =
          geo_.one_way_delay(site, sites_[static_cast<std::size_t>(n)]);
      lc.bandwidth_bps = 1e9;
      lc.loss_rate = 0.0;
      net_.add_bidi_link(rid, n, lc);
    }
    // Replica <-> primary control link (replication traffic).
    sim::LinkConfig lc;
    lc.propagation_delay =
        geo_.one_way_delay(site, sites_[static_cast<std::size_t>(brain_id)]);
    lc.bandwidth_bps = 1e9;
    lc.loss_rate = 0.0;
    net_.add_bidi_link(rid, brain_id, lc);
    replicas_.push_back(std::move(replica));
  }
  brain_->set_replicas(replica_ids);

  for (auto& node : nodes_) {
    node->set_brain(brain_id);
    node->set_overlay_peers(all);
    if (!replica_ids.empty()) {
      // Nearest replica serves this node's path lookups.
      const auto& s = sites_[static_cast<std::size_t>(node->node_id())];
      NodeId best = replica_ids.front();
      double best_d = std::numeric_limits<double>::infinity();
      for (const NodeId r : replica_ids) {
        const auto& t = sites_[static_cast<std::size_t>(r)];
        const double dx = s.x - t.x, dy = s.y - t.y;
        if (dx * dx + dy * dy < best_d) {
          best_d = dx * dx + dy * dy;
          best = r;
        }
      }
      node->set_path_service(best);
    }
  }

  // The static overlay topology is complete; clients attached later use
  // the dynamic fallback path.
  net_.freeze_topology();
}

void LiveNetSystem::start() {
  for (auto& node : nodes_) {
    node->start_reporting();
  }
  // Let the first round of state reports reach Global Discovery before
  // the first Global Routing cycle runs.
  loop_.schedule_after(300 * kMs, [this] { brain_->start(); });
}

overlay::OverlayNode& LiveNetSystem::node(NodeId id) {
  for (auto& n : nodes_) {
    if (n->node_id() == id) return *n;
  }
  throw std::out_of_range("no such overlay node");
}

NodeId LiveNetSystem::map_client_to_edge(const GeoSite& site) const {
  return pick_edge(site, edge_ids_);
}

std::vector<NodeId> LiveNetSystem::edge_nodes() const { return edge_ids_; }

void LiveNetSystem::scale_capacity(double factor) {
  CdnSystem::scale_capacity(factor);
  // Node-level capacity scales with the link upgrade.
  // (Config lives per node; reflected in the load metric.)
}

void LiveNetSystem::crash_node(NodeId n) {
  // The Brain is network-isolated by the injector (links down); its
  // in-memory state survives the partition, so there is nothing to
  // wipe — replicas keep answering lookups meanwhile (§7.1).
  if (n == brain_id_) return;
  for (auto& node : nodes_) {
    if (node->node_id() == n) {
      node->crash();
      return;
    }
  }
}

void LiveNetSystem::restart_node(NodeId n) {
  if (n == brain_id_) return;
  for (auto& node : nodes_) {
    if (node->node_id() == n) {
      node->restart();
      return;
    }
  }
}

std::vector<NodeId> LiveNetSystem::crashable_nodes() const {
  // Pure relays only: backbones and last-resort nodes never have
  // clients attached (DNS maps clients to edges), so crashing them
  // exercises re-routing without severing anyone's access link.
  std::vector<NodeId> out = backbone_ids_;
  out.insert(out.end(), last_resort_ids_.begin(), last_resort_ids_.end());
  return out;
}

// --------------------------------------------------------------------- Hier

void HierSystem::build() {
  const int l1_count = cfg_.countries * cfg_.nodes_per_country;

  // Role fields are fixed by position in the tree regardless of what
  // the caller put in the per-tier configs.
  hier::HierNodeConfig l1_cfg = cfg_.hier_l1;
  l1_cfg.role = hier::HierRole::kL1;
  hier::HierNodeConfig l2_cfg = cfg_.hier_l2;
  l2_cfg.role = hier::HierRole::kL2;
  hier::HierNodeConfig center_cfg = cfg_.hier_center;
  center_cfg.role = hier::HierRole::kCenter;

  for (int i = 0; i < l1_count; ++i) {
    const int country = i % cfg_.countries;
    auto node =
        std::make_unique<hier::HierNode>(&net_, &metrics_, l1_cfg);
    const GeoSite site = i < cfg_.countries ? geo_.center_site(country)
                                            : geo_.sample_site(country);
    const NodeId id = net_.add_node(node.get());
    sites_.push_back(site);
    node->set_location(country);
    set_node_peering(id, i < cfg_.countries ? cfg_.backbone_peering
                                            : edge_peering_draw(id));
    l1_ids_.push_back(id);
    nodes_.push_back(std::move(node));
  }
  // One L2 per country, at the country center (core PoP).
  for (int c = 0; c < cfg_.countries; ++c) {
    auto node =
        std::make_unique<hier::HierNode>(&net_, &metrics_, l2_cfg);
    const GeoSite site = geo_.center_site(c);
    const NodeId id = net_.add_node(node.get());
    sites_.push_back(site);
    node->set_location(c);
    // L2s ride the provider's private core (the paper's streaming
    // center interconnect), not public transit.
    set_node_peering(id, 1.05);
    l2_ids_.push_back(id);
    nodes_.push_back(std::move(node));
  }
  // The streaming center at the plane origin.
  {
    auto node =
        std::make_unique<hier::HierNode>(&net_, &metrics_, center_cfg);
    GeoSite site;
    site.country = -1;
    center_id_ = net_.add_node(node.get());
    sites_.push_back(site);
    node->set_location(-1);
    set_node_peering(center_id_, 1.05);  // private core
    nodes_.push_back(std::move(node));
  }

  // Links: L1 <-> every L2 (the controller may remap), L2 <-> center.
  for (const NodeId l1 : l1_ids_) {
    for (const NodeId l2 : l2_ids_) {
      const Duration d =
          geo_.one_way_delay(sites_[static_cast<std::size_t>(l1)],
                             sites_[static_cast<std::size_t>(l2)]);
      add_cdn_link(l1, l2, d);
      add_cdn_link(l2, l1, d);
    }
  }
  for (const NodeId l2 : l2_ids_) {
    const Duration d =
        geo_.one_way_delay(sites_[static_cast<std::size_t>(l2)],
                           sites_[static_cast<std::size_t>(center_id_)]);
    add_cdn_link(l2, center_id_, d);
    add_cdn_link(center_id_, l2, d);
  }

  // VDN-style controller, co-located with the center.
  control_ = std::make_unique<hier::HierControl>(&net_);
  const NodeId ctrl_id = net_.add_node(control_.get());
  sites_.push_back(sites_[static_cast<std::size_t>(center_id_)]);
  control_->set_l2_nodes(l2_ids_);
  for (const NodeId l1 : l1_ids_) {
    sim::LinkConfig lc;
    lc.propagation_delay = geo_.one_way_delay(
        sites_[static_cast<std::size_t>(l1)],
        sites_[static_cast<std::size_t>(ctrl_id)]);
    lc.bandwidth_bps = 1e9;
    lc.loss_rate = 0.0;
    net_.add_bidi_link(l1, ctrl_id, lc);
  }

  // Wire roles: L1s point at the controller; L2s at the center. The
  // geographic affinity is the nearest L2.
  std::size_t idx = 0;
  for (; idx < l1_ids_.size(); ++idx) {
    hier::HierNode* n = nodes_[idx].get();
    n->set_controller(ctrl_id);
    const auto& s = sites_[static_cast<std::size_t>(l1_ids_[idx])];
    NodeId best = l2_ids_.front();
    double best_d = std::numeric_limits<double>::infinity();
    for (const NodeId l2 : l2_ids_) {
      const auto& t = sites_[static_cast<std::size_t>(l2)];
      const double dx = s.x - t.x, dy = s.y - t.y;
      if (dx * dx + dy * dy < best_d) {
        best_d = dx * dx + dy * dy;
        best = l2;
      }
    }
    n->set_parent(best);
    control_->set_affinity(l1_ids_[idx], best);
  }
  for (std::size_t k = 0; k < l2_ids_.size(); ++k, ++idx) {
    nodes_[idx]->set_parent(center_id_);
  }

  net_.freeze_topology();
}

NodeId HierSystem::map_client_to_edge(const GeoSite& site) const {
  std::vector<NodeId> edges(l1_ids_.begin() +
                                std::min<std::ptrdiff_t>(cfg_.countries,
                                                         static_cast<std::ptrdiff_t>(l1_ids_.size())),
                            l1_ids_.end());
  return pick_edge(site, edges);
}

std::vector<NodeId> HierSystem::edge_nodes() const {
  return {l1_ids_.begin() +
              std::min<std::ptrdiff_t>(cfg_.countries,
                                       static_cast<std::ptrdiff_t>(l1_ids_.size())),
          l1_ids_.end()};
}

}  // namespace livenet
