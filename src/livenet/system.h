#pragma once

#include <memory>
#include <vector>

#include "brain/brain.h"
#include "brain/replica.h"
#include "hier/hier_control.h"
#include "hier/hier_node.h"
#include "overlay/overlay_node.h"
#include "overlay/records.h"
#include "sim/network.h"
#include "workload/geo.h"

// Top-level system façades: build a complete LiveNet (flat overlay +
// Streaming Brain) or Hier (two-layer tree + streaming center + VDN
// controller) deployment on the simulated network. Both are built from
// the same geographic site pool so that comparisons match the paper's
// methodology ("LiveNet and Hier share the same pool of CDN nodes...
// similar footprints in terms of node locations").
namespace livenet {

struct SystemConfig {
  // Footprint.
  int countries = 6;
  int nodes_per_country = 3;  ///< edge-capable nodes per country
  int last_resort_nodes = 2;  ///< LiveNet only: reserved relays
  int path_decision_replicas = 0;  ///< §7.1: replicas near consumers
  workload::GeoConfig geo;

  // Overlay links (node <-> node). Propagation comes from the geo
  // model times a per-pair Internet path inflation factor — real
  // Internet paths detour from great circles, which is exactly why
  // overlay relaying wins (the premise of flat-CDN routing). The factor
  // is deterministic per node pair so LiveNet and Hier see the same
  // underlay.
  double mesh_bandwidth_bps = 150e6;
  double base_loss_rate = 0.0004;
  std::size_t link_queue_bytes = 2 * 1024 * 1024;

  // Peering-tier model: a link's inflation is the product of its two
  // endpoints' peering factors. Backbone nodes (one per country, the
  // Hier L2/center sites, and the last-resort relays) are well peered;
  // edge nodes see inflated transit. This is what makes 2-hop overlay
  // paths via well-peered relays beat direct edge-to-edge Internet
  // paths — the premise of flat-CDN routing.
  double backbone_peering = 1.15;
  double edge_peering_median = 1.9;
  double edge_peering_sigma = 0.25;
  /// Additive per-endpoint transit detour: edge ISPs peer at distant
  /// exchange points, adding fixed latency per edge endpoint of a link.
  Duration edge_peering_extra = 18 * kMs;
  Duration backbone_peering_extra = 1 * kMs;

  /// DNS mapping randomization: clients map to one of the k nearest
  /// edges (load spreading), weighted toward the closest.
  int dns_candidates = 3;

  // Access links (client <-> edge).
  double access_bandwidth_bps = 20e6;
  Duration access_extra_delay = 12 * kMs;  ///< last-mile tail latency

  /// Delivery batching bounds for the simulated network (callback
  /// granularity only; behaviour is invariant across settings — see
  /// DESIGN.md "Batched delivery"). {0, 1} forces one upcall/packet.
  sim::DeliveryBatch delivery_batch;

  // Node / controller behaviour.
  overlay::OverlayNodeConfig overlay_node;
  brain::BrainConfig brain;
  hier::HierNodeConfig hier_l1;
  hier::HierNodeConfig hier_l2;
  hier::HierNodeConfig hier_center;

  std::uint64_t seed = 42;
};

/// Common interface the scenario runner drives.
class CdnSystem {
 public:
  explicit CdnSystem(const SystemConfig& cfg);
  virtual ~CdnSystem() = default;
  CdnSystem(const CdnSystem&) = delete;
  CdnSystem& operator=(const CdnSystem&) = delete;

  virtual void build() = 0;
  virtual void start() = 0;

  /// Idempotent build (scenario runners may share a pre-built system).
  void build_once() {
    if (!built_) {
      build();
      built_ = true;
    }
  }

  /// DNS-style mapping: the edge node serving a client at `site`.
  virtual sim::NodeId map_client_to_edge(const workload::GeoSite& site)
      const = 0;
  virtual std::vector<sim::NodeId> edge_nodes() const = 0;

  /// Registers a client SimNode at `site` and wires its access link to
  /// the mapped edge. Returns the edge node id.
  sim::NodeId attach_client(sim::SimNode* client,
                            const workload::GeoSite& site);

  /// Scales the random loss on every CDN link (diurnal congestion).
  void set_loss_scale(double scale);

  /// Multiplies CDN link bandwidth (operational up-scaling, §6.5).
  virtual void scale_capacity(double factor);

  /// All inter-node CDN links (for loss/throughput accounting).
  const std::vector<sim::Link*>& cdn_links() const { return cdn_links_; }

  // Fault-injection hooks (driven by sim::FaultInjector via the
  // scenario runner). The default system has no node-level soft state
  // to wipe, so the hooks are no-ops and nothing is crashable.
  virtual void crash_node(sim::NodeId n) { (void)n; }
  virtual void restart_node(sim::NodeId n) { (void)n; }
  /// Nodes safe to crash in random chaos runs (pure relays — crashing a
  /// node with attached clients would sever their only access link).
  virtual std::vector<sim::NodeId> crashable_nodes() const { return {}; }
  /// The control-plane node targeted by control-outage faults.
  virtual sim::NodeId control_node() const { return sim::kNoNode; }

  sim::EventLoop& loop() { return loop_; }
  sim::Network& network() { return net_; }
  overlay::OverlayMetrics& sessions() { return metrics_; }
  workload::GeoModel& geo() { return geo_; }
  const SystemConfig& config() const { return cfg_; }
  int country_of_node(sim::NodeId n) const;
  const std::vector<workload::GeoSite>& node_sites() const { return sites_; }

 protected:
  /// Creates a CDN link with propagation = one_way x inflation. The
  /// inflation is drawn deterministically from the unordered node pair
  /// unless `inflation_override` > 0.
  sim::Link* add_cdn_link(sim::NodeId a, sim::NodeId b, Duration one_way,
                          double inflation_override = -1.0);

  /// Deterministic per-pair Internet path inflation factor (product of
  /// the endpoints' peering factors).
  double pair_inflation(sim::NodeId a, sim::NodeId b) const;

  /// Registers a node's peering factor (indexed by NodeId).
  void set_node_peering(sim::NodeId n, double factor);

  /// Additive transit penalty for a link between the two nodes.
  Duration pair_extra(sim::NodeId a, sim::NodeId b) const;

  /// Deterministic edge-node peering factor draw.
  double edge_peering_draw(sim::NodeId n) const;

  /// DNS-style pick among the candidates nearest to `site` (weighted
  /// toward the closest, deterministic per site).
  sim::NodeId pick_edge(const workload::GeoSite& site,
                        const std::vector<sim::NodeId>& edges) const;

  SystemConfig cfg_;
  sim::EventLoop loop_;
  sim::Network net_;
  workload::GeoModel geo_;
  overlay::OverlayMetrics metrics_;
  std::vector<workload::GeoSite> sites_;  ///< indexed by NodeId
  std::vector<sim::Link*> cdn_links_;
  std::vector<double> link_base_loss_;
  std::vector<double> node_peering_;  ///< indexed by NodeId

 private:
  bool built_ = false;
};

/// The paper's system: flat overlay + Streaming Brain.
class LiveNetSystem final : public CdnSystem {
 public:
  explicit LiveNetSystem(const SystemConfig& cfg) : CdnSystem(cfg) {}

  void build() override;
  void start() override;
  sim::NodeId map_client_to_edge(const workload::GeoSite& site)
      const override;
  std::vector<sim::NodeId> edge_nodes() const override;
  void scale_capacity(double factor) override;

  void crash_node(sim::NodeId n) override;
  void restart_node(sim::NodeId n) override;
  std::vector<sim::NodeId> crashable_nodes() const override;
  sim::NodeId control_node() const override { return brain_id_; }

  brain::BrainNode& brain() { return *brain_; }
  const std::vector<std::unique_ptr<brain::PathDecisionReplica>>& replicas()
      const {
    return replicas_;
  }
  overlay::OverlayNode& node(sim::NodeId id);
  const std::vector<sim::NodeId>& overlay_node_ids() const {
    return node_ids_;
  }
  const std::vector<sim::NodeId>& last_resort_ids() const {
    return last_resort_ids_;
  }
  const std::vector<sim::NodeId>& backbone_ids() const {
    return backbone_ids_;
  }

 private:
  std::vector<std::unique_ptr<overlay::OverlayNode>> nodes_;
  std::vector<sim::NodeId> node_ids_;        ///< regular nodes
  std::vector<sim::NodeId> edge_ids_;        ///< DNS-mappable subset
  std::vector<sim::NodeId> backbone_ids_;    ///< relay-tier (no clients)
  std::vector<sim::NodeId> last_resort_ids_;
  std::unique_ptr<brain::BrainNode> brain_;
  sim::NodeId brain_id_ = sim::kNoNode;
  std::vector<std::unique_ptr<brain::PathDecisionReplica>> replicas_;
};

/// The baseline: two-layer tree + streaming center + VDN controller.
class HierSystem final : public CdnSystem {
 public:
  explicit HierSystem(const SystemConfig& cfg) : CdnSystem(cfg) {}

  void build() override;
  void start() override {}
  sim::NodeId map_client_to_edge(const workload::GeoSite& site)
      const override;
  std::vector<sim::NodeId> edge_nodes() const override;

  hier::HierControl& controller() { return *control_; }
  const std::vector<sim::NodeId>& l1_ids() const { return l1_ids_; }
  const std::vector<sim::NodeId>& l2_ids() const { return l2_ids_; }
  sim::NodeId center_id() const { return center_id_; }

 private:
  std::vector<std::unique_ptr<hier::HierNode>> nodes_;
  std::vector<sim::NodeId> l1_ids_;
  std::vector<sim::NodeId> l2_ids_;
  sim::NodeId center_id_ = sim::kNoNode;
  std::unique_ptr<hier::HierControl> control_;
};

}  // namespace livenet
