#include "media/fec.h"

#include <algorithm>

namespace livenet::media {

namespace {

/// Visit each member seq of a parity group. A zero bitmap is the legacy
/// dense encoding (base..base+k-1); otherwise bit i marks base+i.
template <typename Fn>
void for_each_member(Seq base, std::uint32_t k, std::uint64_t bitmap,
                     Fn&& fn) {
  if (bitmap == 0) {
    for (Seq s = base; s < base + k; ++s) fn(s);
    return;
  }
  for (std::uint32_t i = 0; i < 64; ++i) {
    if (bitmap & (std::uint64_t{1} << i)) fn(base + i);
  }
}

bool is_member(Seq base, std::uint32_t k, std::uint64_t bitmap, Seq seq) {
  if (seq < base) return false;
  if (bitmap == 0) return seq < base + k;
  const Seq off = seq - base;
  return off < 64 && (bitmap & (std::uint64_t{1} << off)) != 0;
}

}  // namespace

std::optional<RtpBody> FecGroupEncoder::add(const RtpBody& b) {
  if (count_ > 0 && b.seq != next_seq_) count_ = 0;  // hole: restart group
  // Skipped-layer gaps stretch the group's seq span; past the bitmap's
  // reach the membership can no longer be described, so start over.
  if (count_ > 0 && b.seq - base_seq_ > 63) count_ = 0;
  if (count_ == 0) {
    base_seq_ = b.seq;
    open_k_ = k_;
    acc_ = FecXor{};
    bitmap_ = 0;
    max_payload_ = 0;
  }
  acc_.accumulate(b);
  bitmap_ |= std::uint64_t{1} << (b.seq - base_seq_);
  max_payload_ = std::max<std::uint64_t>(max_payload_, b.payload_bytes);
  last_frame_id_ = b.frame_id;
  last_gop_id_ = b.gop_id;
  last_capture_ = b.capture_time;
  ++count_;
  next_seq_ = b.seq + 1;
  if (count_ < open_k_) return std::nullopt;

  RtpBody parity;
  parity.stream_id = b.stream_id;
  // Parity never enters the media seq space (it is gated out of the
  // receive buffer before loss accounting); base_seq doubles as its seq
  // so describe()/traces stay legible.
  parity.seq = base_seq_;
  parity.frame_id = last_frame_id_;
  parity.gop_id = last_gop_id_;
  parity.frame_type = FrameType::kP;
  parity.referenced = false;
  parity.frag_index = 0;
  parity.frag_count = 1;
  parity.payload_bytes = static_cast<std::size_t>(max_payload_);
  parity.capture_time = last_capture_;
  parity.fec_group_count = open_k_;
  parity.fec_base_seq = base_seq_;
  // Dense groups keep the legacy zero encoding, so a run with no layer
  // filtering emits byte-identical parity.
  const std::uint64_t dense =
      open_k_ >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << open_k_) - 1;
  parity.fec_seq_bitmap = bitmap_ == dense ? 0 : bitmap_;
  parity.fec = acc_;
  count_ = 0;
  return parity;
}

void FecGroupEncoder::skip(Seq seq) {
  if (count_ == 0) return;  // no open group: nothing to describe
  if (seq != next_seq_) {   // unexpected reordering: play safe, restart
    count_ = 0;
    return;
  }
  next_seq_ = seq + 1;
  // The next member would land past the bitmap's reach: give up early
  // rather than accumulating packets add() must discard anyway.
  if (next_seq_ - base_seq_ > 63) count_ = 0;
}

RtpPacketMut FecDecoder::on_media(const RtpPacket& pkt) {
  if (!active_ || pkt.is_audio() || pkt.is_fec_parity()) return nullptr;
  auto& sf = streams_[pkt.stream_id()];
  const Seq seq = pkt.producer_seq();
  FecXor contrib;
  // Reconstructed packets re-enter here via the delivery path; their
  // contribution is identical to the original's, so the map dedup below
  // keeps everything consistent either way.
  RtpBody shadow;
  shadow.frame_id = pkt.frame_id();
  shadow.gop_id = pkt.gop_id();
  shadow.payload_bytes = pkt.payload_bytes();
  shadow.capture_time = pkt.capture_time();
  shadow.trace_id = pkt.trace_id();
  shadow.frag_index = pkt.frag_index();
  shadow.frag_count = pkt.frag_count();
  shadow.frame_type = pkt.frame_type();
  shadow.referenced = pkt.referenced();
  shadow.layer = pkt.layer();
  shadow.spatial_layers = pkt.spatial_layers();
  shadow.temporal_layers = pkt.temporal_layers();
  shadow.discardable = pkt.discardable();
  contrib.accumulate(shadow);
  if (!sf.window.emplace(seq, contrib).second) return nullptr;  // duplicate
  prune(sf);

  // Did this arrival re-arm a held group down to one hole?
  for (auto it = sf.pending.begin(); it != sf.pending.end(); ++it) {
    const Seq base = it->first;
    const Group& g = it->second;
    if (!is_member(base, g.k, g.bitmap, seq)) continue;
    RtpPacketMut rec = try_resolve(pkt.stream_id(), base, g);
    if (rec != nullptr) {
      sf.pending.erase(it);
      return rec;
    }
    // Fully received now? Drop the held parity.
    std::size_t have = 0;
    for_each_member(base, g.k, g.bitmap,
                    [&](Seq s) { have += sf.window.count(s); });
    if (have == g.k) sf.pending.erase(it);
    return nullptr;
  }
  return nullptr;
}

RtpPacketMut FecDecoder::on_parity(const RtpPacket& pkt) {
  active_ = true;
  auto& sf = streams_[pkt.stream_id()];
  Group g;
  g.k = pkt.fec_group_count();
  g.bitmap = pkt.fec_seq_bitmap();
  g.parity = pkt.fec_xor();
  g.parity_payload = pkt.payload_bytes();
  g.delay_ext_us = pkt.delay_ext_us;
  g.cdn_ingress_time = pkt.cdn_ingress_time;
  g.cdn_hops = pkt.cdn_hops;
  const Seq base = pkt.fec_base_seq();
  if (g.k == 0) return nullptr;

  RtpPacketMut rec = try_resolve(pkt.stream_id(), base, g);
  if (rec != nullptr) return rec;

  // Zero holes (nothing to do) or >=2 holes (beyond correction power):
  // hold the group — an RTX may refill one hole and re-arm it — unless
  // it is already fully received.
  std::size_t have = 0;
  for_each_member(base, g.k, g.bitmap,
                  [&](Seq s) { have += sf.window.count(s); });
  if (have >= g.k) return nullptr;
  sf.pending.emplace(base, g);
  while (sf.pending.size() > cfg_.max_groups) {
    sf.pending.erase(sf.pending.begin());
    ++groups_abandoned_;
  }
  return nullptr;
}

RtpPacketMut FecDecoder::try_resolve(StreamId stream, Seq base,
                                     const Group& g) {
  auto& sf = streams_[stream];
  Seq missing = 0;
  std::size_t holes = 0;
  for_each_member(base, g.k, g.bitmap, [&](Seq s) {
    if (sf.window.count(s) == 0) {
      missing = s;
      ++holes;
    }
  });
  if (holes != 1) return nullptr;

  // Peel every received packet of the group off the parity aggregate;
  // what remains is exactly the missing body's contribution.
  FecXor x = g.parity;
  for_each_member(base, g.k, g.bitmap, [&](Seq s) {
    if (s != missing) x.merge(sf.window.at(s));
  });
  RtpBody body;
  body.stream_id = stream;
  body.seq = missing;
  body.frame_id = x.frame_id;
  body.gop_id = x.gop_id;
  body.frame_type = static_cast<FrameType>(x.frame_type);
  body.referenced = x.referenced != 0;
  body.frag_index = x.frag_index;
  body.frag_count = x.frag_count;
  body.payload_bytes = static_cast<std::size_t>(x.payload_bytes);
  body.capture_time = static_cast<Time>(x.capture_time);
  body.trace_id = x.trace_id;
  body.layer = media::LayerId{x.layer_spatial, x.layer_temporal};
  body.spatial_layers = x.spatial_layers == 0 ? 1 : x.spatial_layers;
  body.temporal_layers = x.temporal_layers == 0 ? 1 : x.temporal_layers;
  body.discardable = x.discardable != 0;
  RtpPacketMut pkt = RtpPacket::make(std::move(body));
  pkt->fec_recovered = true;
  // Never crossed the wire at this hop: no abs-send-time for GCC.
  pkt->hop_send_time = kNever;
  pkt->delay_ext_us = g.delay_ext_us;
  pkt->cdn_ingress_time = g.cdn_ingress_time;
  pkt->cdn_hops = g.cdn_hops;
  ++reconstructed_;
  return pkt;
}

void FecDecoder::prune(StreamFec& sf) {
  while (sf.window.size() > cfg_.max_window) sf.window.erase(sf.window.begin());
}

}  // namespace livenet::media
