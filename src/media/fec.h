#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "media/rtp.h"

// Link-local XOR/parity FEC (paper §5.2 loss-recovery tier; medooze-style
// one-dimensional parity groups).
//
// The sender side of an overlay link groups K consecutive media packets
// of a stream and emits one parity packet per group; the receiver can
// reconstruct any SINGLE missing packet of a group from the parity plus
// the K-1 packets it did receive — no upstream signaling, no RTT. Two or
// more losses in one group exceed the code's correction power: the group
// is held briefly (an RTX may refill one hole and re-arm it) and
// otherwise abandoned to the NACK tier.
//
// The simulator models packets as metadata, so "XOR of payloads" becomes
// a field-wise XOR of the body metadata (FecXor in rtp.h). Group
// geometry is carried in-band: fec_base_seq + fec_group_count on the
// parity body; the missing packet's seq is derived from the hole
// position, so it is never part of the aggregate.
namespace livenet::media {

/// Sender side: accumulates one parity group for one (stream, link).
/// Feed every media packet forwarded on the link in order; add()
/// returns a complete parity body every K packets. Non-contiguous input
/// (a hole in what we forwarded, e.g. after upstream loss) restarts the
/// group — parity over a broken range would mis-describe its coverage.
class FecGroupEncoder {
 public:
  explicit FecGroupEncoder(std::uint32_t k = 10) : k_(k < 2 ? 2 : k) {}

  /// New K takes effect when the next group starts.
  void set_k(std::uint32_t k) { k_ = k < 2 ? 2 : k; }
  std::uint32_t k() const { return k_; }

  /// Abandon the in-flight group (stream teardown / path switch).
  void reset() { count_ = 0; }

  /// Accumulate one forwarded media packet (caller skips audio + RTX).
  /// Returns the parity body when this packet completes a group.
  std::optional<RtpBody> add(const RtpBody& b);

  /// Declare `seq` intentionally absent on this link (a layer the
  /// subscriber filtered out). The group stays open and spends no
  /// parity on the skipped seq; its membership travels in the parity's
  /// fec_seq_bitmap so the decoder knows the gap is not a loss. A
  /// group whose seq span outgrows the 64-bit bitmap restarts.
  void skip(Seq seq);

 private:
  std::uint32_t k_;
  std::uint32_t count_ = 0;   ///< packets in the open group
  std::uint32_t open_k_ = 0;  ///< K latched at group start
  Seq base_seq_ = 0;
  Seq next_seq_ = 0;          ///< contiguity check
  std::uint64_t bitmap_ = 0;  ///< members relative to base_seq_
  FecXor acc_;
  std::uint64_t max_payload_ = 0;
  std::uint64_t last_frame_id_ = 0;
  std::uint64_t last_gop_id_ = 0;
  Time last_capture_ = 0;
};

/// Receiver side: one per upstream link. Tracks recent media arrivals
/// per stream and held parity groups; reconstructs the missing body
/// when a group has exactly one hole. Self-activates on the first
/// parity packet seen, so a FEC-off world pays nothing here beyond one
/// branch per packet.
class FecDecoder {
 public:
  struct Config {
    std::size_t max_window = 512;  ///< recent-media entries kept per stream
    std::size_t max_groups = 64;   ///< held (>=2-loss) groups per stream
  };

  FecDecoder() = default;
  explicit FecDecoder(const Config& cfg) : cfg_(cfg) {}

  bool active() const { return active_; }

  /// Record a received media packet (original, RTX, or a NACK-fallback
  /// serve — anything that fills the seq). If the arrival re-arms a held
  /// parity group down to one hole, returns the reconstructed packet.
  RtpPacketMut on_media(const RtpPacket& pkt);

  /// Handle a parity packet. Returns the reconstructed packet when the
  /// group has exactly one hole; holds the group when it has two or
  /// more (a later RTX may re-arm it via on_media).
  RtpPacketMut on_parity(const RtpPacket& pkt);

  std::uint64_t reconstructed() const { return reconstructed_; }
  std::uint64_t groups_abandoned() const { return groups_abandoned_; }

 private:
  struct Group {
    std::uint32_t k = 0;
    std::uint64_t bitmap = 0;  ///< sparse membership; 0 = dense legacy
    FecXor parity;
    std::size_t parity_payload = 0;
    // Trailer context copied from the parity packet so the
    // reconstruction carries plausible per-hop measurement fields.
    Duration delay_ext_us = 0;
    Time cdn_ingress_time = kNever;
    std::uint8_t cdn_hops = 0;
  };
  struct StreamFec {
    std::map<Seq, FecXor> window;  ///< seq -> that body's own contribution
    std::map<Seq, Group> pending;  ///< base_seq -> held parity
  };

  RtpPacketMut try_resolve(StreamId stream, Seq base, const Group& g);
  void prune(StreamFec& sf);

  Config cfg_;
  bool active_ = false;
  std::uint64_t reconstructed_ = 0;
  std::uint64_t groups_abandoned_ = 0;
  std::map<StreamId, StreamFec> streams_;
};

}  // namespace livenet::media
