#include "media/frame.h"

namespace livenet::media {

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kI: return "I";
    case FrameType::kP: return "P";
    case FrameType::kB: return "B";
    case FrameType::kAudio: return "A";
  }
  return "?";
}

}  // namespace livenet::media
