#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

// Video/audio frame model.
//
// LiveNet never decodes media; what the transport sees is the frame
// *structure*: types (I/P/B/audio), sizes, timestamps and GoP
// boundaries. That structure drives every mechanism the paper
// describes — GoP caching, proactive frame dropping (unreferenced B
// first, then P, then the whole GoP), and I-frame-aware pacing.
namespace livenet::media {

/// Stream identifier. Each simulcast bitrate version of a broadcast is
/// its own stream with a unique id (paper §5.2).
using StreamId = std::uint64_t;
inline constexpr StreamId kNoStream = 0;

enum class FrameType : std::uint8_t {
  kI,      ///< intra-coded; starts a GoP; largest
  kP,      ///< predicted; referenced by later frames
  kB,      ///< bi-predicted; may be unreferenced (droppable first)
  kAudio,  ///< audio frame; prioritized over video in the pacer
};

const char* to_string(FrameType t);

/// SVC layer coordinates (ROADMAP item 1). A scalable stream carries
/// one lattice of spatial x temporal layers inside a single StreamId;
/// subscribers select a sub-lattice with a 16-bit mask instead of
/// switching to a different simulcast stream.
struct LayerId {
  std::uint8_t spatial = 0;   ///< 0 = base resolution
  std::uint8_t temporal = 0;  ///< 0 = base frame rate
};

/// Per-subscriber layer selection: bit (spatial * 4 + temporal) set =
/// forward that layer. The default (all bits) is the non-SVC world —
/// every packet of a plain simulcast stream carries layer {0,0}, whose
/// bit is set in every sane mask, so masks are invisible until someone
/// narrows one. Lattices are capped at 4x4.
using LayerMask = std::uint16_t;
inline constexpr LayerMask kAllLayers = 0xFFFF;
inline constexpr std::uint8_t kMaxSpatialLayers = 4;
inline constexpr std::uint8_t kMaxTemporalLayers = 4;

constexpr LayerMask layer_bit(std::uint8_t spatial, std::uint8_t temporal) {
  return static_cast<LayerMask>(1u << (spatial * 4u + temporal));
}
constexpr LayerMask layer_bit(LayerId id) {
  return layer_bit(id.spatial, id.temporal);
}

/// Mask selecting the full S x T lattice (every spatial layer < S,
/// every temporal layer < T). lattice_mask(1, 1) = the base layer only.
constexpr LayerMask lattice_mask(std::uint8_t spatial_layers,
                                 std::uint8_t temporal_layers) {
  LayerMask m = 0;
  for (std::uint8_t s = 0; s < spatial_layers && s < kMaxSpatialLayers; ++s) {
    for (std::uint8_t t = 0; t < temporal_layers && t < kMaxTemporalLayers;
         ++t) {
      m |= layer_bit(s, t);
    }
  }
  return m;
}

struct Frame {
  StreamId stream_id = kNoStream;
  std::uint64_t frame_id = 0;  ///< monotonic per stream
  std::uint64_t gop_id = 0;    ///< monotonic per stream; I frame starts it
  FrameType type = FrameType::kP;
  bool referenced = true;      ///< false only for droppable B frames
  std::size_t size_bytes = 0;
  Time capture_time = 0;       ///< virtual time the broadcaster captured it
  Duration delay_ext_us = 0;   ///< accumulated delay header extension (from
                               ///< the frame's first packet, at reassembly)

  // SVC lattice coordinates. A plain simulcast frame is {0,0} of a 1x1
  // lattice, so every pre-SVC code path sees unchanged values.
  LayerId layer;                      ///< this frame's layer
  std::uint8_t spatial_layers = 1;    ///< lattice width the encoder emits
  std::uint8_t temporal_layers = 1;   ///< lattice height the encoder emits
  /// Dependency flag: no later frame references this one (the top
  /// temporal layer), so it can be dropped without poisoning anything.
  bool discardable = false;

  bool is_keyframe() const { return type == FrameType::kI; }
  bool is_audio() const { return type == FrameType::kAudio; }
  bool is_svc() const { return spatial_layers > 1 || temporal_layers > 1; }
  LayerMask layer_mask_bit() const {
    return is_audio() ? kAllLayers : layer_bit(layer);
  }
};

/// A group of pictures: one I frame plus dependent frames, the caching
/// unit of the whole system (§5.1: "packets are decoded into GoPs. The
/// most recent GoPs are cached to facilitate fast startup").
struct Gop {
  std::uint64_t gop_id = 0;
  std::vector<Frame> frames;

  std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& f : frames) n += f.size_bytes;
    return n;
  }
  bool starts_with_keyframe() const {
    return !frames.empty() && frames.front().is_keyframe();
  }
};

}  // namespace livenet::media
