#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

// Video/audio frame model.
//
// LiveNet never decodes media; what the transport sees is the frame
// *structure*: types (I/P/B/audio), sizes, timestamps and GoP
// boundaries. That structure drives every mechanism the paper
// describes — GoP caching, proactive frame dropping (unreferenced B
// first, then P, then the whole GoP), and I-frame-aware pacing.
namespace livenet::media {

/// Stream identifier. Each simulcast bitrate version of a broadcast is
/// its own stream with a unique id (paper §5.2).
using StreamId = std::uint64_t;
inline constexpr StreamId kNoStream = 0;

enum class FrameType : std::uint8_t {
  kI,      ///< intra-coded; starts a GoP; largest
  kP,      ///< predicted; referenced by later frames
  kB,      ///< bi-predicted; may be unreferenced (droppable first)
  kAudio,  ///< audio frame; prioritized over video in the pacer
};

const char* to_string(FrameType t);

struct Frame {
  StreamId stream_id = kNoStream;
  std::uint64_t frame_id = 0;  ///< monotonic per stream
  std::uint64_t gop_id = 0;    ///< monotonic per stream; I frame starts it
  FrameType type = FrameType::kP;
  bool referenced = true;      ///< false only for droppable B frames
  std::size_t size_bytes = 0;
  Time capture_time = 0;       ///< virtual time the broadcaster captured it
  Duration delay_ext_us = 0;   ///< accumulated delay header extension (from
                               ///< the frame's first packet, at reassembly)

  bool is_keyframe() const { return type == FrameType::kI; }
  bool is_audio() const { return type == FrameType::kAudio; }
};

/// A group of pictures: one I frame plus dependent frames, the caching
/// unit of the whole system (§5.1: "packets are decoded into GoPs. The
/// most recent GoPs are cached to facilitate fast startup").
struct Gop {
  std::uint64_t gop_id = 0;
  std::vector<Frame> frames;

  std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& f : frames) n += f.size_bytes;
    return n;
  }
  bool starts_with_keyframe() const {
    return !frames.empty() && frames.front().is_keyframe();
  }
};

}  // namespace livenet::media
