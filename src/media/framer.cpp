#include "media/framer.h"

namespace livenet::media {

void Framer::abandon_current() {
  if (assembling_) {
    ++frames_damaged_;
    assembling_ = false;
    frags_seen_ = 0;
  }
}

void Framer::on_gap() { abandon_current(); }

void Framer::on_packet(const RtpPacket& pkt) {
  if (pkt.is_audio()) {
    // Audio is a separate single-packet-per-frame flow; emit directly
    // without disturbing the video frame being assembled.
    Frame f;
    f.stream_id = pkt.stream_id();
    f.frame_id = pkt.frame_id();
    f.gop_id = pkt.gop_id();
    f.type = pkt.frame_type();
    f.referenced = pkt.referenced();
    f.capture_time = pkt.capture_time();
    f.delay_ext_us = pkt.delay_ext_us;
    f.size_bytes = pkt.payload_bytes();
    f.layer = pkt.layer();
    f.spatial_layers = pkt.spatial_layers();
    f.temporal_layers = pkt.temporal_layers();
    f.discardable = pkt.discardable();
    ++frames_completed_;
    on_frame_(f);
    return;
  }
  if (assembling_ && pkt.frame_id() != cur_frame_id_) {
    // Moved on without completing the previous frame.
    abandon_current();
  }
  if (!assembling_) {
    assembling_ = true;
    cur_frame_id_ = pkt.frame_id();
    frags_expected_ = pkt.frag_count();
    frags_seen_ = 0;
    cur_frame_ = Frame{};
    cur_frame_.stream_id = pkt.stream_id();
    cur_frame_.frame_id = pkt.frame_id();
    cur_frame_.gop_id = pkt.gop_id();
    cur_frame_.type = pkt.frame_type();
    cur_frame_.referenced = pkt.referenced();
    cur_frame_.capture_time = pkt.capture_time();
    cur_frame_.delay_ext_us = pkt.delay_ext_us;
    cur_frame_.size_bytes = 0;
    cur_frame_.layer = pkt.layer();
    cur_frame_.spatial_layers = pkt.spatial_layers();
    cur_frame_.temporal_layers = pkt.temporal_layers();
    cur_frame_.discardable = pkt.discardable();
  }
  cur_frame_.size_bytes += pkt.payload_bytes();
  ++frags_seen_;
  if (frags_seen_ >= frags_expected_ && pkt.marker()) {
    assembling_ = false;
    ++frames_completed_;
    on_frame_(cur_frame_);
  }
}

}  // namespace livenet::media
