#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "media/frame.h"
#include "media/rtp.h"

// Framing Control (paper Fig. 7): reassembles frames from the ordered
// RTP packet stream the slow path delivers, and reports frame-level
// damage when a hole could not be recovered.
namespace livenet::media {

class Framer {
 public:
  using FrameCallback = std::function<void(const Frame&)>;

  /// `on_frame` fires once per fully reassembled frame, in decode order.
  explicit Framer(FrameCallback on_frame) : on_frame_(std::move(on_frame)) {}

  /// Feeds the next packet. Packets must arrive in seq order (the
  /// receive buffer guarantees this); a packet belonging to a newer
  /// frame while an older frame is incomplete marks the older frame
  /// damaged (its packets were lost beyond recovery).
  void on_packet(const RtpPacket& pkt);

  /// Explicit notification that the stream skipped over a hole (the
  /// receive buffer gave up on recovery). Abandons the current frame.
  void on_gap();

  std::uint64_t frames_completed() const { return frames_completed_; }
  std::uint64_t frames_damaged() const { return frames_damaged_; }

 private:
  void abandon_current();

  FrameCallback on_frame_;
  bool assembling_ = false;
  std::uint64_t cur_frame_id_ = 0;
  Frame cur_frame_{};
  std::uint32_t frags_seen_ = 0;
  std::uint32_t frags_expected_ = 0;
  std::uint64_t frames_completed_ = 0;
  std::uint64_t frames_damaged_ = 0;
};

}  // namespace livenet::media
