#include "media/gop_cache.h"

namespace livenet::media {

void GopCache::add_frame(const Frame& frame) {
  if (frame.is_audio()) return;  // audio is not GoP-cached
  if (frame.is_keyframe()) {
    Gop g;
    g.gop_id = frame.gop_id;
    gops_.push_back(std::move(g));
    while (gops_.size() > max_gops_ + 1) gops_.pop_front();
  }
  if (gops_.empty()) return;  // waiting for the first I frame
  gops_.back().frames.push_back(frame);
}

std::size_t GopCache::total_bytes() const {
  std::size_t n = 0;
  for (const auto& g : gops_) n += g.total_bytes();
  return n;
}

std::vector<Frame> GopCache::startup_frames() const {
  if (gops_.empty()) return {};
  return gops_.back().frames;
}

std::uint64_t GopCache::latest_frame_id() const {
  if (gops_.empty() || gops_.back().frames.empty()) return 0;
  return gops_.back().frames.back().frame_id;
}

std::uint64_t GopCache::latest_gop_id() const {
  return gops_.empty() ? 0 : gops_.back().gop_id;
}

}  // namespace livenet::media
