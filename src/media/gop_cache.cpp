#include "media/gop_cache.h"

namespace livenet::media {

void GopCache::add_frame(const Frame& frame) {
  if (frame.is_audio()) return;  // audio is not GoP-cached
  // Only one GoP per gop_id: an SVC key picture's enhancement frames
  // ride as kP, but guard against any duplicate keyframe reopening the
  // GoP it already started (RTX races on the slow path).
  if (frame.is_keyframe() &&
      (gops_.empty() || gops_.back().gop_id != frame.gop_id)) {
    Gop g;
    g.gop_id = frame.gop_id;
    gops_.push_back(std::move(g));
    while (gops_.size() > max_gops_ + 1) gops_.pop_front();
  }
  if (gops_.empty()) return;  // waiting for the first I frame
  gops_.back().frames.push_back(frame);
}

std::size_t GopCache::total_bytes() const {
  std::size_t n = 0;
  for (const auto& g : gops_) n += g.total_bytes();
  return n;
}

std::vector<Frame> GopCache::startup_frames() const {
  if (gops_.empty()) return {};
  return gops_.back().frames;
}

std::vector<Frame> GopCache::startup_frames(LayerMask mask) const {
  if (mask == kAllLayers) return startup_frames();
  if (gops_.empty()) return {};
  std::vector<Frame> out;
  out.reserve(gops_.back().frames.size());
  for (const Frame& f : gops_.back().frames) {
    if ((mask & f.layer_mask_bit()) != 0) out.push_back(f);
  }
  return out;
}

std::uint64_t GopCache::latest_frame_id() const {
  if (gops_.empty() || gops_.back().frames.empty()) return 0;
  return gops_.back().frames.back().frame_id;
}

std::uint64_t GopCache::latest_gop_id() const {
  return gops_.empty() ? 0 : gops_.back().gop_id;
}

}  // namespace livenet::media
