#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "media/frame.h"

// Per-stream GoP cache (paper §5.1): every overlay node caches the most
// recent groups of pictures so that a newly arriving viewer can start
// playback immediately from the latest I frame instead of waiting for
// the next keyframe — the mechanism behind the paper's 95% fast-startup
// ratio and the Figure 9 analysis.
namespace livenet::media {

class GopCache {
 public:
  /// Keeps at most `max_gops` complete GoPs plus the one in progress.
  explicit GopCache(std::size_t max_gops = 3) : max_gops_(max_gops) {}

  /// Appends a reassembled frame. An I frame opens a new GoP; frames
  /// before the first I frame are discarded (a decoder could not use
  /// them).
  void add_frame(const Frame& frame);

  bool empty() const { return gops_.empty(); }
  std::size_t gop_count() const { return gops_.size(); }
  std::size_t total_bytes() const;

  /// Frames from the start (I frame) of the newest GoP through the most
  /// recent frame — exactly what is burst to a new subscriber for fast
  /// startup.
  std::vector<Frame> startup_frames() const;

  /// Layer-aware startup burst: the same window filtered to the frames
  /// whose layer bit the subscriber's mask selects (kAllLayers = the
  /// unfiltered burst above, audio always passes).
  std::vector<Frame> startup_frames(LayerMask mask) const;

  /// Most recent cached frame id (0 if empty).
  std::uint64_t latest_frame_id() const;

  /// Latest complete-or-partial GoP id (0 if empty).
  std::uint64_t latest_gop_id() const;

  void clear() { gops_.clear(); }

 private:
  std::size_t max_gops_;
  std::deque<Gop> gops_;  // oldest first; back() may be in progress
};

}  // namespace livenet::media
