#include "media/jitter_framer.h"

namespace livenet::media {

void JitterFramer::on_packet(const RtpPacket& pkt, Time now) {
  if (pkt.is_audio()) {
    // Audio: single-packet frames on an independent flow; emit directly.
    Frame f;
    f.stream_id = pkt.stream_id();
    f.frame_id = pkt.frame_id();
    f.gop_id = pkt.gop_id();
    f.type = pkt.frame_type();
    f.referenced = pkt.referenced();
    f.capture_time = pkt.capture_time();
    f.delay_ext_us = pkt.delay_ext_us;
    f.size_bytes = pkt.payload_bytes();
    f.layer = pkt.layer();
    f.spatial_layers = pkt.spatial_layers();
    f.temporal_layers = pkt.temporal_layers();
    f.discardable = pkt.discardable();
    ++frames_completed_;
    on_frame_(f);
    return;
  }
  if (pkt.frame_id() < next_emit_) return;  // frame already emitted/skipped

  auto it = pending_.find(pkt.frame_id());
  if (it == pending_.end()) {
    Pending p;
    p.frame.stream_id = pkt.stream_id();
    p.frame.frame_id = pkt.frame_id();
    p.frame.gop_id = pkt.gop_id();
    p.frame.type = pkt.frame_type();
    p.frame.referenced = pkt.referenced();
    p.frame.capture_time = pkt.capture_time();
    p.frame.delay_ext_us = pkt.delay_ext_us;
    p.frame.size_bytes = 0;
    p.frame.layer = pkt.layer();
    p.frame.spatial_layers = pkt.spatial_layers();
    p.frame.temporal_layers = pkt.temporal_layers();
    p.frame.discardable = pkt.discardable();
    p.frags_expected = pkt.frag_count();
    p.first_seen = now;
    it = pending_.emplace(pkt.frame_id(), std::move(p)).first;
  }
  Pending& p = it->second;
  // Duplicate fragments (RTX races) are tolerated: completion compares
  // the count against frag_count, and duplicates of a completed frame
  // fall into the `frame_id < next_emit_` guard above.
  ++p.frags_seen;
  p.frame.size_bytes += pkt.payload_bytes();

  emit_ready(now);

  // Memory bound: a runaway pending set drops its oldest entries.
  while (pending_.size() > cfg_.max_pending_frames) {
    pending_.erase(pending_.begin());
    ++frames_dropped_;
  }
}

void JitterFramer::flush(Time now) { emit_ready(now); }

void JitterFramer::emit_ready(Time now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    Pending& head = it->second;
    if (head.complete()) {
      ++frames_completed_;
      next_emit_ = head.frame.frame_id + 1;
      const Frame f = head.frame;
      it = pending_.erase(it);
      on_frame_(f);
      continue;
    }
    // Incomplete head: wait for its deadline, then skip it so newer
    // frames are not held hostage.
    if (now - head.first_seen >= cfg_.assembly_deadline) {
      ++frames_dropped_;
      next_emit_ = head.frame.frame_id + 1;
      it = pending_.erase(it);
      continue;
    }
    break;  // head still has time; nothing later may overtake it
  }
}

}  // namespace livenet::media
