#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "media/frame.h"
#include "media/rtp.h"
#include "util/time.h"

// Frame-level jitter buffer for clients (the WebRTC-style receiver-side
// frame assembler). Unlike the strictly-sequential Framer used on the
// slow path (whose input is already ordered), the client's inbound
// stream can be frame-interleaved: the consumer's fast path forwards
// packets in arrival order, and upstream retransmissions or
// subscription seams deliver older frames after newer ones. The jitter
// framer assembles any number of frames concurrently and emits them in
// frame order, skipping a frame only after a deadline.
namespace livenet::media {

class JitterFramer {
 public:
  struct Config {
    Duration assembly_deadline = 280 * kMs;  ///< give up on a frame after
    std::size_t max_pending_frames = 256;    ///< memory bound
  };

  using FrameCallback = std::function<void(const Frame&)>;

  JitterFramer(FrameCallback on_frame)
      : JitterFramer(std::move(on_frame), Config()) {}
  JitterFramer(FrameCallback on_frame, const Config& cfg)
      : cfg_(cfg), on_frame_(std::move(on_frame)) {}

  /// Feeds a packet (any order). `now` drives assembly deadlines.
  void on_packet(const RtpPacket& pkt, Time now);

  /// Emits everything emittable; call periodically so a stalled head
  /// frame is eventually skipped even if no new packets arrive.
  void flush(Time now);

  std::uint64_t frames_completed() const { return frames_completed_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

 private:
  struct Pending {
    Frame frame;
    std::uint32_t frags_seen = 0;
    std::uint32_t frags_expected = 0;
    Time first_seen = kNever;
    bool complete() const { return frags_seen >= frags_expected; }
  };

  void emit_ready(Time now);

  Config cfg_;
  FrameCallback on_frame_;
  std::map<std::uint64_t, Pending> pending_;  ///< by frame id
  std::uint64_t next_emit_ = 0;  ///< emit frames with id >= this
  std::uint64_t frames_completed_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace livenet::media
