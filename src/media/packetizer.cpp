#include "media/packetizer.h"

namespace livenet::media {

std::vector<RtpPacketMut> Packetizer::packetize(
    const Frame& frame, Duration initial_delay_ext) {
  std::vector<RtpPacketMut> out;
  const std::size_t size = std::max<std::size_t>(frame.size_bytes, 1);
  const auto frags =
      static_cast<std::uint32_t>((size + mtu_ - 1) / mtu_);
  out.reserve(frags);
  Seq& counter =
      frame.is_audio() ? next_audio_seq_ : next_video_seq_;
  std::size_t remaining = size;
  for (std::uint32_t i = 0; i < frags; ++i) {
    RtpBody body;
    body.stream_id = stream_id_;
    body.seq = counter++;
    body.frame_id = frame.frame_id;
    body.gop_id = frame.gop_id;
    body.frame_type = frame.type;
    body.referenced = frame.referenced;
    body.frag_index = i;
    body.frag_count = frags;
    body.payload_bytes = std::min(remaining, mtu_);
    body.capture_time = frame.capture_time;
    body.layer = frame.layer;
    body.spatial_layers = frame.spatial_layers;
    body.temporal_layers = frame.temporal_layers;
    body.discardable = frame.discardable;
    body.trace_id = sampler_.sample();
    remaining -= body.payload_bytes;
    auto pkt = RtpPacket::make(std::move(body));
    pkt->delay_ext_us = initial_delay_ext;
    out.push_back(std::move(pkt));
  }
  return out;
}

}  // namespace livenet::media
