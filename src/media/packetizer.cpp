#include "media/packetizer.h"

namespace livenet::media {

std::vector<std::shared_ptr<RtpPacket>> Packetizer::packetize(
    const Frame& frame, Duration initial_delay_ext) {
  std::vector<std::shared_ptr<RtpPacket>> out;
  const std::size_t size = std::max<std::size_t>(frame.size_bytes, 1);
  const auto frags =
      static_cast<std::uint32_t>((size + mtu_ - 1) / mtu_);
  out.reserve(frags);
  Seq& counter =
      frame.is_audio() ? next_audio_seq_ : next_video_seq_;
  std::size_t remaining = size;
  for (std::uint32_t i = 0; i < frags; ++i) {
    auto pkt = std::make_shared<RtpPacket>();
    pkt->stream_id = stream_id_;
    pkt->seq = counter++;
    pkt->frame_id = frame.frame_id;
    pkt->gop_id = frame.gop_id;
    pkt->frame_type = frame.type;
    pkt->referenced = frame.referenced;
    pkt->frag_index = i;
    pkt->frag_count = frags;
    pkt->payload_bytes = std::min(remaining, mtu_);
    pkt->capture_time = frame.capture_time;
    pkt->delay_ext_us = initial_delay_ext;
    remaining -= pkt->payload_bytes;
    out.push_back(std::move(pkt));
  }
  return out;
}

}  // namespace livenet::media
