#pragma once

#include <memory>
#include <vector>

#include "media/frame.h"
#include "media/rtp.h"
#include "telemetry/trace.h"

// Producer-side packetization: splits frames into MTU-sized RTP packets
// and assigns the per-stream sequence numbers that every downstream
// mechanism (loss detection, NACK, framing) keys on.
namespace livenet::media {

class Packetizer {
 public:
  explicit Packetizer(StreamId stream_id, std::size_t mtu = kMtuPayloadBytes)
      : stream_id_(stream_id), mtu_(mtu) {}

  /// Packetizes one frame; `now` stamps the first value of the delay
  /// header extension chain (encode + producer queueing is added by the
  /// caller via initial_delay_ext). Audio and video frames draw from
  /// independent sequence spaces (separate RTP flows, as in WebRTC —
  /// the pacer reorders audio ahead of video, which must not register
  /// as video loss).
  std::vector<RtpPacketMut> packetize(
      const Frame& frame, Duration initial_delay_ext = 0);

  Seq next_seq() const { return next_video_seq_; }
  Seq next_audio_seq() const { return next_audio_seq_; }

  /// Telemetry: stamp `fraction` of produced packets with a trace_id
  /// (the broadcaster is where a packet's life begins, so this is
  /// where per-hop tracing starts). Deterministic accumulator
  /// sampling — enabling it never touches the sim's random streams.
  void set_trace_sample(double fraction) { sampler_.set_fraction(fraction); }

 private:
  StreamId stream_id_;
  std::size_t mtu_;
  Seq next_video_seq_ = 1;  // 0 reserved as "before first packet"
  Seq next_audio_seq_ = 1;
  telemetry::TraceSampler sampler_;
};

}  // namespace livenet::media
