#include "media/rtp.h"

#include <sstream>

namespace livenet::media {

std::atomic<std::uint64_t> RtpBody::deep_copies_{0};

std::string RtpPacket::describe() const {
  std::ostringstream ss;
  if (is_fec_parity()) {
    ss << "FEC s" << stream_id() << " #" << seq << " base" << fec_base_seq()
       << " k" << fec_group_count();
    return ss.str();
  }
  ss << (is_rtx ? "RTX" : "RTP") << " s" << stream_id() << " #" << seq << " "
     << to_string(frame_type()) << " f" << frame_id() << " frag"
     << frag_index() << "/" << frag_count();
  return ss.str();
}

std::string NackMessage::describe() const {
  std::ostringstream ss;
  ss << "NACK s" << stream_id << " x" << missing.size();
  return ss.str();
}

std::string NackVoidMessage::describe() const {
  std::ostringstream ss;
  ss << "NACKVOID s" << stream_id << " x" << voided.size();
  return ss.str();
}

std::string CcFeedbackMessage::describe() const {
  std::ostringstream ss;
  ss << "CCFB remb=" << remb_bps << " loss=" << loss_fraction;
  return ss.str();
}

}  // namespace livenet::media
