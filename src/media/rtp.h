#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "media/frame.h"
#include "sim/message.h"
#include "util/time.h"

// RTP/RTCP packet model.
//
// RtpPacket mirrors the on-wire unit the paper's overlay forwards: an
// RTP packet carrying one fragment of a frame, extended with the delay
// header extension the paper uses to measure streaming delay (§6.1: the
// broadcaster seeds the field; every hop adds its processing time plus
// half the next hop's RTT; the client adds buffering and decode time).
namespace livenet::media {

inline constexpr std::size_t kRtpHeaderBytes = 12 + 8;  // header + delay ext
inline constexpr std::size_t kMtuPayloadBytes = 1200;

using Seq = std::uint64_t;  ///< per-stream RTP sequence number

class RtpPacket final : public sim::Message {
 public:
  StreamId stream_id = kNoStream;
  Seq seq = 0;             ///< per-stream, assigned by the producer
  std::uint64_t frame_id = 0;
  std::uint64_t gop_id = 0;
  FrameType frame_type = FrameType::kP;
  bool referenced = true;  ///< from the carried frame
  std::uint32_t frag_index = 0;
  std::uint32_t frag_count = 1;
  std::size_t payload_bytes = 0;
  Time capture_time = 0;   ///< broadcaster capture timestamp
  Duration delay_ext_us = 0;  ///< accumulated delay header extension
  bool is_rtx = false;     ///< retransmission of an earlier packet

  // Measurement fields (stand-ins for per-hop log correlation in the
  // production system; they do not influence forwarding decisions).
  Time cdn_ingress_time = kNever;  ///< producer stamped CDN entry time
  std::uint8_t cdn_hops = 0;       ///< overlay hops traversed so far

  /// Per-hop departure timestamp used by the receiver-side GCC delay
  /// estimator (the abs-send-time RTP extension in WebRTC). Mutable
  /// because the sending pacer stamps it at the instant of transmission;
  /// by then each hop's clone is owned by exactly one sender pipeline.
  mutable Time hop_send_time = kNever;

  bool marker() const { return frag_index + 1 == frag_count; }
  bool is_audio() const { return frame_type == FrameType::kAudio; }
  bool is_keyframe_packet() const { return frame_type == FrameType::kI; }

  std::size_t wire_size() const override {
    return kRtpHeaderBytes + payload_bytes;
  }
  std::string describe() const override;

  /// Copies this packet adjusting the delay extension; used by
  /// forwarding hops (the payload is conceptually shared — the struct
  /// copy stands in for the header rewrite a real node performs).
  std::shared_ptr<RtpPacket> clone_with_delay(Duration added_delay) const;
};

using RtpPacketPtr = std::shared_ptr<const RtpPacket>;

/// RTCP NACK: sequence numbers of detected holes, sent to the upstream
/// node which retransmits from its send history (§5.1, 50 ms scan).
/// Audio and video are separate RTP flows with independent sequence
/// spaces (as in WebRTC), so the NACK names the flow kind.
class NackMessage final : public sim::Message {
 public:
  StreamId stream_id = kNoStream;
  bool audio = false;
  std::vector<Seq> missing;

  std::size_t wire_size() const override { return 16 + 4 * missing.size(); }
  std::string describe() const override;
};

/// RTCP receiver feedback for congestion control, one per upstream
/// neighbor (not per stream): carries the delay-based rate estimate
/// computed on the receiver side of GCC (REMB-style) and the measured
/// loss fraction for the sender-side loss-based controller.
class CcFeedbackMessage final : public sim::Message {
 public:
  double remb_bps = 0.0;       ///< receiver-estimated max bitrate
  double loss_fraction = 0.0;  ///< loss observed since last feedback
  std::uint64_t packets_observed = 0;

  std::size_t wire_size() const override { return 24; }
  std::string describe() const override;
};

}  // namespace livenet::media
