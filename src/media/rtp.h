#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "media/frame.h"
#include "sim/message.h"
#include "util/pool.h"
#include "util/time.h"

// RTP/RTCP packet model.
//
// RtpPacket mirrors the on-wire unit the paper's overlay forwards: an
// RTP packet carrying one fragment of a frame, extended with the delay
// header extension the paper uses to measure streaming delay (§6.1: the
// broadcaster seeds the field; every hop adds its processing time plus
// half the next hop's RTT; the client adds buffering and decode time).
//
// Zero-copy layout (paper §5: nodes forward the *same* packet to many
// subscribers): the packet is split into
//   - RtpBody: everything the producer wrote — stream/frame identity,
//     fragment geometry, payload size, capture timestamp. Immutable
//     after packetization and shared across every hop and subscriber
//     via a non-atomic intrusive refcount.
//   - the per-hop trailer (the RtpPacket object itself): the fields a
//     forwarding hop rewrites — delay extension, hop count, RTX flag,
//     client-facing sequence number, pacer send timestamp. ~48 B,
//     pool-allocated, copied per subscriber in lieu of a header
//     rewrite on a real wire packet.
// fork() is the fan-out primitive: a new trailer sharing the same
// body. Copying an RtpPacket never copies its body; RtpBody's copy
// constructor counts invocations so tests can assert the fast path
// performs zero deep copies.
namespace livenet::media {

inline constexpr std::size_t kRtpHeaderBytes = 12 + 8;  // header + delay ext
inline constexpr std::size_t kMtuPayloadBytes = 1200;

using Seq = std::uint64_t;  ///< per-stream RTP sequence number

/// XOR aggregate of the covered bodies' fields, carried by a parity
/// packet. The simulator models packets as metadata, so "payload XOR"
/// becomes a field-wise XOR of the metadata a receiver must be able to
/// reconstruct. The missing packet's seq is NOT part of the aggregate:
/// the decoder derives it from group geometry (base_seq + hole index).
struct FecXor {
  std::uint64_t frame_id = 0;
  std::uint64_t gop_id = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t capture_time = 0;
  std::uint64_t trace_id = 0;
  std::uint32_t frag_index = 0;
  std::uint32_t frag_count = 0;
  std::uint8_t frame_type = 0;
  std::uint8_t referenced = 0;
  // SVC lattice coordinates, XOR-carried like every other body field so
  // a reconstructed enhancement packet still filters correctly.
  std::uint8_t layer_spatial = 0;
  std::uint8_t layer_temporal = 0;
  std::uint8_t spatial_layers = 0;
  std::uint8_t temporal_layers = 0;
  std::uint8_t discardable = 0;

  void accumulate(const struct RtpBody& b);
  /// XOR-merge another aggregate (peeling received packets off a
  /// parity: parity ^ received... leaves the missing packet).
  void merge(const FecXor& o) {
    frame_id ^= o.frame_id;
    gop_id ^= o.gop_id;
    payload_bytes ^= o.payload_bytes;
    capture_time ^= o.capture_time;
    trace_id ^= o.trace_id;
    frag_index ^= o.frag_index;
    frag_count ^= o.frag_count;
    frame_type ^= o.frame_type;
    referenced ^= o.referenced;
    layer_spatial ^= o.layer_spatial;
    layer_temporal ^= o.layer_temporal;
    spatial_layers ^= o.spatial_layers;
    temporal_layers ^= o.temporal_layers;
    discardable ^= o.discardable;
  }
  bool operator==(const FecXor&) const = default;
};

/// Immutable, refcount-shared packet body (identity + payload).
struct RtpBody {
  StreamId stream_id = kNoStream;
  Seq seq = 0;             ///< per-stream, assigned by the producer
  std::uint64_t frame_id = 0;
  std::uint64_t gop_id = 0;
  FrameType frame_type = FrameType::kP;
  bool referenced = true;  ///< from the carried frame
  std::uint32_t frag_index = 0;
  std::uint32_t frag_count = 1;
  std::size_t payload_bytes = 0;
  Time capture_time = 0;   ///< broadcaster capture timestamp
  /// Telemetry trace id stamped at packetization on a sampled fraction
  /// of packets; 0 = untraced. Shared by every fork of this body, so
  /// one stamp follows the packet across all hops. Observation-only:
  /// no forwarding decision reads it.
  std::uint64_t trace_id = 0;
  /// FEC parity marker: > 0 on link-local parity packets, covering
  /// fec_group_count media packets starting at fec_base_seq on the link
  /// that generated it. Media packets always carry 0. A parity body's
  /// own payload_bytes models its wire size (max payload in the group);
  /// the XOR aggregate of the covered bodies travels in fec.
  std::uint32_t fec_group_count = 0;
  Seq fec_base_seq = 0;
  FecXor fec;
  /// Group membership bitmap for parity over a layer-filtered link: bit
  /// i set = fec_base_seq + i belongs to the group. 0 = the legacy
  /// dense group [fec_base_seq, fec_base_seq + fec_group_count).
  std::uint64_t fec_seq_bitmap = 0;

  // SVC lattice coordinates of the carried frame (see media::Frame).
  LayerId layer;
  std::uint8_t spatial_layers = 1;
  std::uint8_t temporal_layers = 1;
  bool discardable = false;

  RtpBody() = default;
  /// Deep copy. Never taken on the forwarding fast path — counted so
  /// tests can assert exactly that.
  RtpBody(const RtpBody& o)
      : stream_id(o.stream_id), seq(o.seq), frame_id(o.frame_id),
        gop_id(o.gop_id), frame_type(o.frame_type), referenced(o.referenced),
        frag_index(o.frag_index), frag_count(o.frag_count),
        payload_bytes(o.payload_bytes), capture_time(o.capture_time),
        trace_id(o.trace_id), fec_group_count(o.fec_group_count),
        fec_base_seq(o.fec_base_seq), fec(o.fec),
        fec_seq_bitmap(o.fec_seq_bitmap), layer(o.layer),
        spatial_layers(o.spatial_layers), temporal_layers(o.temporal_layers),
        discardable(o.discardable) {
    ++deep_copies_;
  }
  /// Moves don't count: make() moves the caller's staging body into
  /// the pool exactly once per produced packet.
  RtpBody(RtpBody&& o) noexcept
      : stream_id(o.stream_id), seq(o.seq), frame_id(o.frame_id),
        gop_id(o.gop_id), frame_type(o.frame_type), referenced(o.referenced),
        frag_index(o.frag_index), frag_count(o.frag_count),
        payload_bytes(o.payload_bytes), capture_time(o.capture_time),
        trace_id(o.trace_id), fec_group_count(o.fec_group_count),
        fec_base_seq(o.fec_base_seq), fec(o.fec),
        fec_seq_bitmap(o.fec_seq_bitmap), layer(o.layer),
        spatial_layers(o.spatial_layers), temporal_layers(o.temporal_layers),
        discardable(o.discardable) {}
  RtpBody& operator=(const RtpBody&) = delete;

  /// Total body deep copies since process start (forward-path copies
  /// would show up here; the zero-copy invariant keeps this flat).
  /// Summed across all shard threads: the counter is atomic because
  /// shard-boundary clones run concurrently — never on the fast path,
  /// which shares bodies and thus never touches it.
  static std::uint64_t deep_copy_count() {
    return deep_copies_.load(std::memory_order_relaxed);
  }

  // Intrusive refcount (single-threaded, like sim::Message's).
  void body_add_ref() const noexcept { ++refs_; }
  void body_release() const noexcept {
    if (--refs_ == 0) util::pool_delete(const_cast<RtpBody*>(this));
  }

 private:
  mutable std::uint32_t refs_ = 0;
  static std::atomic<std::uint64_t> deep_copies_;
};

inline void FecXor::accumulate(const RtpBody& b) {
  frame_id ^= b.frame_id;
  gop_id ^= b.gop_id;
  payload_bytes ^= static_cast<std::uint64_t>(b.payload_bytes);
  capture_time ^= static_cast<std::uint64_t>(b.capture_time);
  trace_id ^= b.trace_id;
  frag_index ^= b.frag_index;
  frag_count ^= b.frag_count;
  frame_type ^= static_cast<std::uint8_t>(b.frame_type);
  referenced ^= static_cast<std::uint8_t>(b.referenced);
  layer_spatial ^= b.layer.spatial;
  layer_temporal ^= b.layer.temporal;
  spatial_layers ^= b.spatial_layers;
  temporal_layers ^= b.temporal_layers;
  discardable ^= static_cast<std::uint8_t>(b.discardable);
}

/// Refcounted handle to a shared immutable body.
class BodyRef {
 public:
  BodyRef() = default;
  /// Adopts a pool-allocated body (takes one reference).
  explicit BodyRef(const RtpBody* b) : p_(b) {
    if (p_ != nullptr) p_->body_add_ref();
  }
  BodyRef(const BodyRef& o) : p_(o.p_) {
    if (p_ != nullptr) p_->body_add_ref();
  }
  BodyRef(BodyRef&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  BodyRef& operator=(BodyRef o) noexcept {
    std::swap(p_, o.p_);
    return *this;
  }
  ~BodyRef() {
    if (p_ != nullptr) p_->body_release();
  }
  const RtpBody* operator->() const { return p_; }
  const RtpBody& operator*() const { return *p_; }
  explicit operator bool() const { return p_ != nullptr; }

 private:
  const RtpBody* p_ = nullptr;
};

class RtpPacket;
using RtpPacketMut = sim::IntrusivePtr<RtpPacket>;
using RtpPacketPtr = sim::IntrusivePtr<const RtpPacket>;

class RtpPacket final : public sim::Message {
 public:
  // ---- Per-hop trailer: owned (and rewritten) by each hop. ----
  Seq seq = 0;                ///< as sent on this hop (client-facing seq
                              ///< rewrite happens at the edge)
  Duration delay_ext_us = 0;  ///< accumulated delay header extension
  bool is_rtx = false;        ///< retransmission of an earlier packet
  bool fec_recovered = false; ///< reconstructed from a parity group at
                              ///< this hop (never crossed the wire)
  /// Layer-filtered links are sparse in producer-seq space: the sender
  /// stamps the previous producer seq it forwarded on this hop, so the
  /// receive buffer treats the gap (prev_link_seq, producer_seq) as
  /// intentionally absent (no NACKs for filtered layers). 0 = dense
  /// hop or unknown (RTX, parity, legacy sender) — plain hole logic.
  Seq prev_link_seq = 0;

  // Measurement fields (stand-ins for per-hop log correlation in the
  // production system; they do not influence forwarding decisions).
  Time cdn_ingress_time = kNever;  ///< producer stamped CDN entry time
  std::uint8_t cdn_hops = 0;       ///< overlay hops traversed so far

  /// Per-hop departure timestamp used by the receiver-side GCC delay
  /// estimator (the abs-send-time RTP extension in WebRTC). Mutable
  /// because the sending pacer stamps it at the instant of transmission;
  /// by then each hop's trailer is owned by exactly one sender pipeline.
  mutable Time hop_send_time = kNever;

  /// Builds a fresh producer packet: pools the body, seeds the trailer
  /// seq from the body seq.
  static RtpPacketMut make(RtpBody body) {
    BodyRef ref(util::pool_new<RtpBody>(std::move(body)));
    return sim::make_message<RtpPacket>(std::move(ref));
  }

  /// Fan-out primitive: new pool-allocated trailer sharing this body.
  /// prev_link_seq is a link-local annotation of the hop that stamped
  /// it — a fork is the start of a new hop, so it resets to dense (a
  /// stale value would make the next receiver void genuine losses).
  RtpPacketMut fork() const {
    RtpPacketMut copy = sim::make_message<RtpPacket>(*this);
    copy->prev_link_seq = 0;
    return copy;
  }

  /// Copies this packet adjusting the delay extension; used by
  /// forwarding hops (the body is shared — the trailer copy stands in
  /// for the header rewrite a real node performs).
  RtpPacketMut clone_with_delay(Duration added_delay) const {
    RtpPacketMut copy = fork();
    copy->delay_ext_us += added_delay;
    return copy;
  }

  // ---- Shared-body accessors. ----
  /// The shared immutable body (FEC encoders aggregate its fields).
  const RtpBody& body() const { return *body_; }
  StreamId stream_id() const { return body_->stream_id; }
  /// The producer-assigned sequence number (survives edge seq rewrite).
  Seq producer_seq() const { return body_->seq; }
  std::uint64_t frame_id() const { return body_->frame_id; }
  std::uint64_t gop_id() const { return body_->gop_id; }
  FrameType frame_type() const { return body_->frame_type; }
  bool referenced() const { return body_->referenced; }
  std::uint32_t frag_index() const { return body_->frag_index; }
  std::uint32_t frag_count() const { return body_->frag_count; }
  std::size_t payload_bytes() const { return body_->payload_bytes; }
  Time capture_time() const { return body_->capture_time; }
  std::uint64_t trace_id() const { return body_->trace_id; }
  LayerId layer() const { return body_->layer; }
  std::uint8_t spatial_layers() const { return body_->spatial_layers; }
  std::uint8_t temporal_layers() const { return body_->temporal_layers; }
  bool discardable() const { return body_->discardable; }
  bool is_svc() const {
    return body_->spatial_layers > 1 || body_->temporal_layers > 1;
  }
  /// The mask bit this packet needs to pass a subscriber's layer
  /// filter. Audio and parity ride every mask (parity coverage is
  /// decided at the encoder, not per packet).
  LayerMask layer_mask_bit() const {
    return is_audio() || is_fec_parity() ? kAllLayers
                                         : layer_bit(body_->layer);
  }

  bool marker() const { return frag_index() + 1 == frag_count(); }
  bool is_audio() const { return frame_type() == FrameType::kAudio; }
  bool is_keyframe_packet() const { return frame_type() == FrameType::kI; }

  // ---- FEC parity accessors (see RtpBody::fec_group_count). ----
  bool is_fec_parity() const { return body_->fec_group_count > 0; }
  std::uint32_t fec_group_count() const { return body_->fec_group_count; }
  Seq fec_base_seq() const { return body_->fec_base_seq; }
  const FecXor& fec_xor() const { return body_->fec; }
  std::uint64_t fec_seq_bitmap() const { return body_->fec_seq_bitmap; }

  std::size_t wire_size() const override {
    return kRtpHeaderBytes + payload_bytes();
  }
  std::string describe() const override;
  TraceTag trace_tag() const override {
    return TraceTag{body_->trace_id, body_->stream_id, body_->seq};
  }

  /// Shard-boundary clone: the shared body makes the trailer-only copy
  /// of fork() unsafe across threads (the body refcount is non-atomic),
  /// so crossing a shard deep-copies the body — the counted copy, so
  /// tests can assert how many packets paid it — and replicates the
  /// trailer. transfer_safe() stays false for the same reason: even a
  /// sole-reference trailer may share its body with the sending shard.
  sim::IntrusivePtr<const sim::Message> clone_message() const override {
    RtpPacketMut copy =
        sim::make_message<RtpPacket>(BodyRef(util::pool_new<RtpBody>(*body_)));
    copy->seq = seq;
    copy->delay_ext_us = delay_ext_us;
    copy->is_rtx = is_rtx;
    copy->fec_recovered = fec_recovered;
    copy->prev_link_seq = prev_link_seq;
    copy->cdn_ingress_time = cdn_ingress_time;
    copy->cdn_hops = cdn_hops;
    copy->hop_send_time = hop_send_time;
    return copy;
  }

  /// Trailer copy sharing the body (make_message / fork use this; a
  /// direct copy never duplicates the body).
  RtpPacket(const RtpPacket&) = default;

  explicit RtpPacket(BodyRef body) : body_(std::move(body)) {
    seq = body_->seq;
  }

 private:
  BodyRef body_;
};

/// RTCP NACK: sequence numbers of detected holes, sent to the upstream
/// node which retransmits from its send history (§5.1, 50 ms scan).
/// Audio and video are separate RTP flows with independent sequence
/// spaces (as in WebRTC), so the NACK names the flow kind.
class NackMessage final : public sim::CloneableMessage<NackMessage> {
 public:
  StreamId stream_id = kNoStream;
  bool audio = false;
  std::vector<Seq> missing;

  std::size_t wire_size() const override { return 16 + 4 * missing.size(); }
  std::string describe() const override;
};

/// NACK answer for holes that are voids, not losses: the supplier
/// vouches that these seqs were excluded by the requester's SVC layer
/// mask and will never be retransmitted. The receiver folds them into
/// its void set, unblocking the in-order drain immediately instead of
/// burning the NACK retry budget on an unfillable hole (which starves
/// every downstream viewer of the stream until the give-up timeout).
class NackVoidMessage final : public sim::CloneableMessage<NackVoidMessage> {
 public:
  StreamId stream_id = kNoStream;
  bool audio = false;
  std::vector<Seq> voided;

  std::size_t wire_size() const override { return 16 + 4 * voided.size(); }
  std::string describe() const override;
};

/// RTCP receiver feedback for congestion control, one per upstream
/// neighbor (not per stream): carries the delay-based rate estimate
/// computed on the receiver side of GCC (REMB-style) and the measured
/// loss fraction for the sender-side loss-based controller.
class CcFeedbackMessage final : public sim::CloneableMessage<CcFeedbackMessage> {
 public:
  double remb_bps = 0.0;       ///< receiver-estimated max bitrate
  double loss_fraction = 0.0;  ///< loss observed since last feedback
  std::uint64_t packets_observed = 0;

  std::size_t wire_size() const override { return 24; }
  std::string describe() const override;
};

}  // namespace livenet::media
