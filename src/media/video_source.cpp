#include "media/video_source.h"

#include <algorithm>
#include <cmath>

namespace livenet::media {

VideoSource::VideoSource(StreamId stream_id, const VideoSourceConfig& cfg,
                         Rng rng)
    : stream_id_(stream_id), cfg_(cfg), rng_(rng) {}

double VideoSource::mean_frame_size(FrameType t) const {
  // Distribute the per-GoP byte budget across frames by weight.
  const double gop_seconds =
      static_cast<double>(cfg_.gop_frames) / cfg_.fps;
  const double gop_bytes = cfg_.bitrate_bps * gop_seconds / 8.0;

  // Count frames of each type in one GoP under the configured pattern.
  double n_i = 1.0;
  double n_total_non_i = static_cast<double>(cfg_.gop_frames) - 1.0;
  double n_b = 0.0, n_p = n_total_non_i;
  if (cfg_.b_per_p > 0) {
    const double group = 1.0 + static_cast<double>(cfg_.b_per_p);
    n_p = std::floor(n_total_non_i / group);
    n_b = n_total_non_i - n_p;
  }
  const double total_weight =
      n_i * cfg_.i_frame_weight + n_p * 1.0 + n_b * cfg_.b_frame_weight;
  const double unit = gop_bytes / total_weight;
  switch (t) {
    case FrameType::kI: return unit * cfg_.i_frame_weight;
    case FrameType::kP: return unit;
    case FrameType::kB: return unit * cfg_.b_frame_weight;
    case FrameType::kAudio: return 0.0;
  }
  return 0.0;
}

FrameType VideoSource::next_type() {
  if (pos_in_gop_ == 0) return FrameType::kI;
  if (b_run_ > 0) {
    --b_run_;
    return FrameType::kB;
  }
  if (cfg_.b_per_p > 0) b_run_ = cfg_.b_per_p;
  return FrameType::kP;
}

std::uint8_t VideoSource::temporal_layer_of(std::size_t pos_in_gop) const {
  const std::uint8_t t_layers = cfg_.svc_temporal_layers;
  if (t_layers <= 1) return 0;
  // Dyadic hierarchy: period 2^(T-1); picture 0 of each period is the
  // base, and the layer falls by one per trailing zero of the offset
  // (T=3: 0 2 1 2 | 0 2 1 2 | ...).
  const std::size_t period = static_cast<std::size_t>(1)
                             << (std::min<std::uint8_t>(t_layers,
                                                        kMaxTemporalLayers) -
                                 1);
  std::size_t m = pos_in_gop % period;
  if (m == 0) return 0;
  std::uint8_t tz = 0;
  while ((m & 1) == 0) {
    m >>= 1;
    ++tz;
  }
  return static_cast<std::uint8_t>(t_layers - 1 - tz);
}

Frame VideoSource::next_frame(Time now) {
  const std::size_t pos = pos_in_gop_;
  const FrameType type = next_type();
  Frame f;
  f.stream_id = stream_id_;
  f.frame_id = next_frame_id_++;
  f.type = type;
  f.referenced = (type != FrameType::kB);
  f.capture_time = now;
  if (type == FrameType::kI) {
    ++gop_id_;
  }
  f.gop_id = gop_id_;
  if (cfg_.svc_spatial_layers > 1 || cfg_.svc_temporal_layers > 1) {
    f.spatial_layers =
        std::min<std::uint8_t>(cfg_.svc_spatial_layers, kMaxSpatialLayers);
    f.temporal_layers =
        std::min<std::uint8_t>(cfg_.svc_temporal_layers, kMaxTemporalLayers);
    f.layer.temporal = temporal_layer_of(pos);
    f.discardable = !f.referenced ||
                    (f.temporal_layers > 1 &&
                     f.layer.temporal + 1 == f.temporal_layers);
  }

  const double mean = mean_frame_size(type);
  // Lognormal multiplicative jitter with mean 1.
  const double sigma = cfg_.size_jitter_sigma;
  const double mult =
      sigma > 0.0 ? rng_.lognormal(-0.5 * sigma * sigma, sigma) : 1.0;
  f.size_bytes = static_cast<std::size_t>(std::max(64.0, mean * mult));

  ++pos_in_gop_;
  if (pos_in_gop_ >= cfg_.gop_frames) {
    pos_in_gop_ = 0;
    b_run_ = 0;
  }
  return f;
}

std::vector<Frame> VideoSource::next_picture(Time now) {
  std::vector<Frame> out;
  const Frame base = next_frame(now);
  out.reserve(base.spatial_layers);
  out.push_back(base);
  // Spatial enhancements: deterministic scale of the base draw (no
  // extra RNG), so a 1-wide lattice stays bit-identical to the legacy
  // stream. The key picture's base frame is the only kI — GoP caching
  // and keyframe gating key on the base layer; enhancements of the key
  // picture are intra-refreshed but ride as kP with the same gop_id.
  double scale = 1.0;
  for (std::uint8_t s = 1; s < base.spatial_layers; ++s) {
    scale *= cfg_.svc_spatial_gain;
    Frame e = base;
    e.frame_id = next_frame_id_++;
    e.type = base.type == FrameType::kI ? FrameType::kP : base.type;
    e.layer.spatial = s;
    e.size_bytes = static_cast<std::size_t>(
        std::max(64.0, static_cast<double>(base.size_bytes) * scale));
    out.push_back(e);
  }
  return out;
}

Frame AudioSource::next_frame(Time now) {
  Frame f;
  f.stream_id = stream_id_;
  f.frame_id = next_frame_id_++;
  f.gop_id = 0;
  f.type = FrameType::kAudio;
  f.referenced = true;
  f.capture_time = now;
  f.size_bytes = cfg_.frame_bytes;
  return f;
}

}  // namespace livenet::media
