#include "media/video_source.h"

#include <cmath>

namespace livenet::media {

VideoSource::VideoSource(StreamId stream_id, const VideoSourceConfig& cfg,
                         Rng rng)
    : stream_id_(stream_id), cfg_(cfg), rng_(rng) {}

double VideoSource::mean_frame_size(FrameType t) const {
  // Distribute the per-GoP byte budget across frames by weight.
  const double gop_seconds =
      static_cast<double>(cfg_.gop_frames) / cfg_.fps;
  const double gop_bytes = cfg_.bitrate_bps * gop_seconds / 8.0;

  // Count frames of each type in one GoP under the configured pattern.
  double n_i = 1.0;
  double n_total_non_i = static_cast<double>(cfg_.gop_frames) - 1.0;
  double n_b = 0.0, n_p = n_total_non_i;
  if (cfg_.b_per_p > 0) {
    const double group = 1.0 + static_cast<double>(cfg_.b_per_p);
    n_p = std::floor(n_total_non_i / group);
    n_b = n_total_non_i - n_p;
  }
  const double total_weight =
      n_i * cfg_.i_frame_weight + n_p * 1.0 + n_b * cfg_.b_frame_weight;
  const double unit = gop_bytes / total_weight;
  switch (t) {
    case FrameType::kI: return unit * cfg_.i_frame_weight;
    case FrameType::kP: return unit;
    case FrameType::kB: return unit * cfg_.b_frame_weight;
    case FrameType::kAudio: return 0.0;
  }
  return 0.0;
}

FrameType VideoSource::next_type() {
  if (pos_in_gop_ == 0) return FrameType::kI;
  if (b_run_ > 0) {
    --b_run_;
    return FrameType::kB;
  }
  if (cfg_.b_per_p > 0) b_run_ = cfg_.b_per_p;
  return FrameType::kP;
}

Frame VideoSource::next_frame(Time now) {
  const FrameType type = next_type();
  Frame f;
  f.stream_id = stream_id_;
  f.frame_id = next_frame_id_++;
  f.type = type;
  f.referenced = (type != FrameType::kB);
  f.capture_time = now;
  if (type == FrameType::kI) {
    ++gop_id_;
  }
  f.gop_id = gop_id_;

  const double mean = mean_frame_size(type);
  // Lognormal multiplicative jitter with mean 1.
  const double sigma = cfg_.size_jitter_sigma;
  const double mult =
      sigma > 0.0 ? rng_.lognormal(-0.5 * sigma * sigma, sigma) : 1.0;
  f.size_bytes = static_cast<std::size_t>(std::max(64.0, mean * mult));

  ++pos_in_gop_;
  if (pos_in_gop_ >= cfg_.gop_frames) {
    pos_in_gop_ = 0;
    b_run_ = 0;
  }
  return f;
}

Frame AudioSource::next_frame(Time now) {
  Frame f;
  f.stream_id = stream_id_;
  f.frame_id = next_frame_id_++;
  f.gop_id = 0;
  f.type = FrameType::kAudio;
  f.referenced = true;
  f.capture_time = now;
  f.size_bytes = cfg_.frame_bytes;
  return f;
}

}  // namespace livenet::media
