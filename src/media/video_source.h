#pragma once

#include <cstdint>
#include <vector>

#include "media/frame.h"
#include "util/rng.h"
#include "util/time.h"

// Synthetic encoder model. Substitutes for a real H.264/H.265 encoder:
// it produces the frame-size/timing structure (GoP pattern, I/P/B size
// ratios, size variation) that the transport reacts to, without
// encoding pixels. Simulcast (paper §5.2) is modelled as several
// VideoSource instances with distinct stream ids and bitrates fed from
// the same capture clock.
namespace livenet::media {

struct VideoSourceConfig {
  double fps = 30.0;
  std::size_t gop_frames = 60;      ///< frames per GoP (2 s at 30 fps)
  double bitrate_bps = 2e6;         ///< target video bitrate
  double i_frame_weight = 8.0;      ///< I size relative to P
  double b_frame_weight = 0.5;      ///< B size relative to P
  std::size_t b_per_p = 0;          ///< unreferenced B frames after each P
  double size_jitter_sigma = 0.15;  ///< lognormal sigma of frame sizes

  // SVC lattice (ROADMAP item 1). 1x1 = plain simulcast frame stream,
  // bit-identical to the pre-SVC source (no extra RNG draws, same
  // frame ids). L1T3 = {1, 3}; L3T3 = {3, 3}. Temporal layers follow
  // the dyadic pattern (T=3: 0 2 1 2 ...); spatial enhancement frames
  // ride the same capture tick with their own frame ids. bitrate_bps
  // describes the base spatial layer; each spatial enhancement scales
  // its picture's base-layer frame by svc_spatial_gain^s.
  std::uint8_t svc_spatial_layers = 1;
  std::uint8_t svc_temporal_layers = 1;
  double svc_spatial_gain = 1.7;
};

class VideoSource {
 public:
  VideoSource(StreamId stream_id, const VideoSourceConfig& cfg, Rng rng);

  /// Produces the next frame in capture order, stamped with `now`.
  /// Under SVC this is the base spatial layer of the next picture,
  /// carrying its lattice coordinates.
  Frame next_frame(Time now);

  /// Produces one full picture: the base-layer frame plus one frame
  /// per configured spatial enhancement layer (same capture tick and
  /// gop, consecutive frame ids). With a 1-wide lattice this is
  /// exactly {next_frame(now)}.
  std::vector<Frame> next_picture(Time now);

  /// Capture interval between consecutive frames.
  Duration frame_interval() const {
    return static_cast<Duration>(static_cast<double>(kSec) / cfg_.fps);
  }

  StreamId stream_id() const { return stream_id_; }
  const VideoSourceConfig& config() const { return cfg_; }

  /// Mean size of a frame of the given type under this configuration.
  double mean_frame_size(FrameType t) const;

 private:
  FrameType next_type();
  std::uint8_t temporal_layer_of(std::size_t pos_in_gop) const;

  StreamId stream_id_;
  VideoSourceConfig cfg_;
  Rng rng_;
  std::uint64_t next_frame_id_ = 1;
  std::uint64_t gop_id_ = 0;
  std::size_t pos_in_gop_ = 0;  ///< 0 -> next frame is I
  std::size_t b_run_ = 0;       ///< B frames still owed after last P
};

/// Constant-rate audio source (e.g. Opus at 50 packets/s).
struct AudioSourceConfig {
  double fps = 50.0;          ///< audio frames per second (20 ms)
  std::size_t frame_bytes = 160;
};

class AudioSource {
 public:
  AudioSource(StreamId stream_id, const AudioSourceConfig& cfg)
      : stream_id_(stream_id), cfg_(cfg) {}

  Frame next_frame(Time now);
  Duration frame_interval() const {
    return static_cast<Duration>(static_cast<double>(kSec) / cfg_.fps);
  }

 private:
  StreamId stream_id_;
  AudioSourceConfig cfg_;
  std::uint64_t next_frame_id_ = 1;
};

}  // namespace livenet::media
