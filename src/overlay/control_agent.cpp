#include "overlay/control_agent.h"

#include <algorithm>

#include "overlay/overlay_node.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/logging.h"

namespace livenet::overlay {

using media::LayerMask;
using media::StreamId;
using sim::NodeId;

namespace {

/// The base layer can never be masked off; an empty mask means "all".
LayerMask sanitize_mask(LayerMask mask) {
  if (mask == 0) return media::kAllLayers;
  return static_cast<LayerMask>(mask | media::layer_bit(0, 0));
}

}  // namespace

// ------------------------------------------------------------ stream state

StreamContext& ControlAgent::ensure_stream(StreamId s) {
  StreamContext& ctx = table_->context(s);
  if (!ctx.has_media()) {
    ctx.gop_cache = media::GopCache(cfg_->frame_cache_gops);
    ctx.framer = std::make_unique<media::Framer>(
        [table = table_, s](const media::Frame& f) {
          StreamContext* c = table->find_context(s);
          if (c != nullptr) c->gop_cache.add_frame(f);
        });
  }
  return ctx;
}

bool ControlAgent::paths_fresh(const StreamContext& ctx) const {
  return ctx.paths_fetched != kNever &&
         env_->net->loop()->now() - ctx.paths_fetched <= cfg_->path_cache_ttl;
}

bool ControlAgent::carries_stream(StreamId s) const {
  const StreamFib::Entry* e = table_->find(s);
  if (e == nullptr) return false;
  if (e->locally_produced) return true;
  return e->upstream != sim::kNoNode && recovery_->cache().has_content(s);
}

void ControlAgent::set_primary_supplier(StreamContext& st, NodeId n) {
  auto& v = st.suppliers;
  v.erase(std::remove(v.begin(), v.end(), n), v.end());
  v.insert(v.begin(), n);
}

void ControlAgent::remove_supplier(StreamContext& st, NodeId n) {
  auto& v = st.suppliers;
  v.erase(std::remove(v.begin(), v.end(), n), v.end());
  auto& p = st.pending_standbys;
  p.erase(std::remove(p.begin(), p.end(), n), p.end());
}

// ---------------------------------------------------- SVC mask aggregation

LayerMask ControlAgent::downstream_aggregate(const StreamFib::Entry& e) const {
  // Standby (RTX-only) downstreams are served from the local cache and
  // may NACK any layer; their presence pins the aggregate wide open.
  // So does an empty edge — release handles the no-subscriber case.
  if (!e.rtx_only_nodes.empty()) return media::kAllLayers;
  if (e.subscriber_nodes.empty() && e.subscriber_clients.empty()) {
    return media::kAllLayers;
  }
  LayerMask agg = 0;
  for (const NodeId n : e.subscriber_nodes) {
    agg = static_cast<LayerMask>(agg | e.node_mask(n));
    if (agg == media::kAllLayers) return agg;
  }
  for (const ClientId c : e.subscriber_clients) {
    agg = static_cast<LayerMask>(agg | e.client_mask(c));
    if (agg == media::kAllLayers) return agg;
  }
  return sanitize_mask(agg);
}

void ControlAgent::update_upstream_mask(StreamId stream) {
  const StreamFib::Entry* e = table_->find(stream);
  if (e == nullptr || e->locally_produced || e->upstream == sim::kNoNode) {
    return;
  }
  StreamContext* st = table_->find_context(stream);
  if (st == nullptr) return;
  const LayerMask agg = downstream_aggregate(*e);
  if (agg == st->upstream_mask_sent) return;
  st->upstream_mask_sent = agg;
  auto upd = sim::make_message<LayerMaskUpdate>();
  upd->stream_id = stream;
  upd->layer_mask = agg;
  env_->net->send(env_->self(), e->upstream, std::move(upd));
}

void ControlAgent::handle_layer_mask_update(NodeId from,
                                            const LayerMaskUpdate& msg) {
  StreamContext* ctx = table_->find_context(msg.stream_id);
  if (ctx == nullptr || !ctx->fib_active) return;
  if (ctx->fib.subscriber_nodes.count(from) == 0) return;
  ctx->fib.set_node_mask(from, sanitize_mask(msg.layer_mask));
  update_upstream_mask(msg.stream_id);
}

double ControlAgent::node_load() const {
  const double rate_load =
      forwarding_->egress_meter().rate_bps(env_->net->loop()->now()) /
      cfg_->node_capacity_bps;
  const double stream_load = static_cast<double>(table_->stream_count()) /
                             static_cast<double>(cfg_->max_streams);
  return std::min(1.0, std::max(rate_load, stream_load));
}

// ------------------------------------------------------------- publishing

void ControlAgent::handle_publish(NodeId client, const PublishRequest& req) {
  auto& entry = table_->fib_entry(req.stream_id);
  entry.locally_produced = true;
  entry.upstream = sim::kNoNode;
  ensure_stream(req.stream_id);  // sets up framer + GoP cache
  (void)client;

  if (env_->brain != sim::kNoNode) {
    auto reg = sim::make_message<StreamRegister>();
    reg->stream_id = req.stream_id;
    reg->producer = env_->self();
    reg->active = true;
    env_->net->send(env_->self(), env_->brain, std::move(reg));
  }
}

void ControlAgent::handle_publish_stop(NodeId client, const PublishStop& msg) {
  (void)client;
  const StreamFib::Entry* entry = table_->find(msg.stream_id);
  if (entry == nullptr || !entry->locally_produced) return;
  if (env_->brain != sim::kNoNode) {
    auto reg = sim::make_message<StreamRegister>();
    reg->stream_id = msg.stream_id;
    reg->producer = env_->self();
    reg->active = false;
    env_->net->send(env_->self(), env_->brain, std::move(reg));
  }
  release_stream(msg.stream_id);
}

void ControlAgent::handle_producer_relay(const ProducerRelayInstruction& msg) {
  // §7.1: the broadcaster moved to another producer. This node stops
  // being the producer and becomes a relay fed by the new one; its
  // existing downstream subscribers and viewers are untouched.
  auto& entry = table_->fib_entry(msg.stream_id);
  if (!entry.locally_produced) return;
  entry.locally_produced = false;
  entry.upstream = msg.new_producer;
  auto& st = ensure_stream(msg.stream_id);
  st.establishing = true;
  set_primary_supplier(st, msg.new_producer);
  auto sub = sim::make_message<SubscribeRequest>();
  sub->stream_id = msg.stream_id;
  env_->net->send(env_->self(), msg.new_producer, std::move(sub));
}

void ControlAgent::handle_switch_notice(NodeId from,
                                        const StreamSwitchNotice& msg) {
  // A notice arriving from a client (the broadcaster app) is fanned out
  // across the overlay: the producer relays it to every CDN node.
  if (env_->peer_set.count(from) == 0 && from != env_->brain) {
    for (const NodeId peer : env_->peers) {
      if (peer == env_->self()) continue;
      auto copy = sim::make_message<StreamSwitchNotice>(msg);
      env_->net->send(env_->self(), peer, std::move(copy));
    }
  }
  // Only consumers with viewers on the old stream act on it.
  const StreamFib::Entry* entry = table_->find(msg.from_stream);
  if (entry == nullptr || entry->subscriber_clients.empty()) return;
  table_->context(msg.to_stream).costream_from = msg.from_stream;

  // Subscribe to the new stream on the clients' behalf.
  if (!carries_stream(msg.to_stream)) {
    const StreamContext* ctx = table_->find_context(msg.to_stream);
    const bool can_establish = ctx != nullptr && paths_fresh(*ctx) &&
                               !ctx->cached_paths.empty();
    if (can_establish) {
      try_establish(msg.to_stream);
    } else {
      request_path(msg.to_stream);
    }
  } else {
    session_->maybe_flip_costream(msg.to_stream);
  }
}

// ------------------------------------------------------------ path lookup

bool ControlAgent::acquire_for_view(StreamId stream) {
  const StreamContext* ctx = table_->find_context(stream);
  if (ctx == nullptr) return false;
  if (!ctx->establishing &&
      !(paths_fresh(*ctx) && !ctx->cached_paths.empty())) {
    return false;
  }
  if (!ctx->establishing) try_establish(stream);
  return true;
}

void ControlAgent::fetch_for_switch(StreamId stream) {
  const StreamContext* ctx = table_->find_context(stream);
  const bool can_establish = ctx != nullptr && paths_fresh(*ctx) &&
                             !ctx->cached_paths.empty();
  if (can_establish) {
    if (!ctx->establishing) try_establish(stream);
  } else {
    request_path(stream);
  }
}

void ControlAgent::request_path(StreamId stream) {
  StreamContext& ctx = table_->context(stream);
  if (ctx.path_request_sent != kNever) return;  // lookup in flight
  const NodeId svc = env_->lookup_service();
  if (svc == sim::kNoNode) return;
  const std::uint64_t id = next_request_id_++;
  pending_path_reqs_[id] = stream;
  ctx.path_request_sent = env_->net->loop()->now();
  auto req = sim::make_message<PathRequest>();
  req->request_id = id;
  req->stream_id = stream;
  req->consumer = env_->self();
  env_->net->send(env_->self(), svc, std::move(req));

  // A request (or its response) lost on the wire — a controller outage,
  // a flapping link — would otherwise wedge the stream forever: the
  // in-flight guard above dedupes every later attempt against a lookup
  // that can no longer complete. Time the request out and retry while
  // anything still wants the stream.
  env_->net->loop()->schedule_after(
      cfg_->path_request_timeout, [this, id, stream] {
        const auto idit = pending_path_reqs_.find(id);
        if (idit == pending_path_reqs_.end() || idit->second != stream) {
          return;  // answered (or swept by release/crash) in the meantime
        }
        pending_path_reqs_.erase(idit);
        StreamContext* ctx2 = table_->find_context(stream);
        if (ctx2 != nullptr) ctx2->path_request_sent = kNever;
        if (!stream_still_wanted(stream)) return;
        request_path(stream);
      });
}

bool ControlAgent::stream_still_wanted(StreamId stream) const {
  const StreamContext* ctx = table_->find_context(stream);
  if (ctx != nullptr &&
      (!ctx->pending_views.empty() || ctx->switch_pending ||
       ctx->costream_from != media::kNoStream)) {
    return true;
  }
  const StreamFib::Entry* e = table_->find(stream);
  return e != nullptr && !e->locally_produced && e->has_subscribers() &&
         e->upstream == sim::kNoNode;
}

void ControlAgent::handle_path_response(const PathResponse& resp) {
  const auto idit = pending_path_reqs_.find(resp.request_id);
  if (idit == pending_path_reqs_.end()) return;
  const StreamId stream = idit->second;
  pending_path_reqs_.erase(idit);

  StreamContext& st = ensure_stream(stream);
  Duration rtt = kNever;
  if (st.path_request_sent != kNever) {
    rtt = env_->net->loop()->now() - st.path_request_sent;
    st.path_request_sent = kNever;
  }

  if (resp.paths.empty()) {
    // No viable path: fail all waiting views.
    session_->fail_pending(stream, rtt);
    maybe_release_stream(stream);
    return;
  }

  st.cached_paths = resp.paths;
  st.paths_fetched = env_->net->loop()->now();
  st.next_backup = 1;

  // A quality-triggered switch was waiting for fresh candidates; the
  // new best path (index 0) is considered too.
  if (st.switch_pending) {
    st.switch_pending = false;
    st.next_backup = 0;
    st.last_switch = kNever;  // the cooldown was consumed pre-lookup
    switch_path(stream);
    if (st.switch_pending && !st.cached_paths.empty()) {
      // Even the refreshed candidates all funnel through the current
      // upstream, so switch_path skipped every one of them. If the feed
      // died because that hop lost its state (crash + restart), only a
      // re-subscription through it can revive the stream — re-establish
      // over the best path; a healthy upstream treats it as a refresh.
      st.switch_pending = false;
      st.last_switch = env_->net->loop()->now();
      establish_via_path(stream, st.cached_paths.front());
    }
  }

  session_->attach_pending(stream, rtt, resp.last_resort);
  if (!carries_stream(stream) && !st.establishing) {
    try_establish(stream);
  }
}

void ControlAgent::handle_path_push(const PathPush& push) {
  auto& st = ensure_stream(push.stream_id);
  st.cached_paths = push.paths;
  st.paths_fetched = env_->net->loop()->now();
  st.next_backup = 1;
}

// --------------------------------------------------------- establishment

bool ControlAgent::try_establish(StreamId stream) {
  auto& st = ensure_stream(stream);
  if (!paths_fresh(st) || st.cached_paths.empty()) return false;
  establish_via_path(stream, st.cached_paths.front());
  return true;
}

void ControlAgent::establish_via_path(StreamId stream, const Path& path,
                                      bool keep_prev_supplier) {
  if (path.size() < 2) {
    // 0-length path: this node is the producer; nothing to establish.
    return;
  }
  if (path.back() != env_->self()) {
    LIVENET_LOG(kWarn) << "node " << env_->self()
                       << ": path does not end here: " << to_string(path);
    return;
  }
  auto& entry = table_->fib_entry(stream);
  auto& st = ensure_stream(stream);
  const NodeId upstream = path[path.size() - 2];
  if (!keep_prev_supplier && entry.upstream != sim::kNoNode &&
      entry.upstream != upstream) {
    // Re-establish over a different hop without make-before-break
    // grace: the old upstream is gone (dead feed / lost state) — sweep
    // it so multi-supplier NACKs stop racing toward a corpse.
    remove_supplier(st, entry.upstream);
  }
  entry.upstream = upstream;
  st.establishing = true;
  set_primary_supplier(st, upstream);

  auto req = sim::make_message<SubscribeRequest>();
  req->stream_id = stream;
  // Remaining reverse route for the upstream hop: next hops toward the
  // producer, nearest first.
  for (std::size_t i = path.size() - 2; i-- > 0;) {
    req->remaining_reverse_path.push_back(path[i]);
  }
  // Carry the current downstream SVC aggregate so the new upstream
  // filters from the first packet (no separate LayerMaskUpdate race).
  req->layer_mask = downstream_aggregate(entry);
  st.upstream_mask_sent = req->layer_mask;
  env_->net->send(env_->self(), upstream, std::move(req));
}

void ControlAgent::handle_subscribe(NodeId from, const SubscribeRequest& req) {
  if (req.rtx_only) {
    handle_standby_subscribe(from, req);
    return;
  }
  table_->add_node_subscriber(req.stream_id, from);
  senders_->sender_for(from);  // make sure the hop sender exists

  auto& entry = table_->fib_entry(req.stream_id);
  entry.set_node_mask(from, sanitize_mask(req.layer_mask));
  const bool anchored = entry.locally_produced ||
                        entry.upstream != sim::kNoNode;

  auto ack = sim::make_message<SubscribeAck>();
  ack->stream_id = req.stream_id;
  ack->ok = true;

  if (anchored) {
    // Cache hit (§4.4): stop backtracking; serve from here. This is the
    // source of the long-chain problem when our own upstream chain is
    // longer than the path the Brain returned to the requester.
    ack->cache_hit = !entry.locally_produced;
    env_->net->send(env_->self(), from, std::move(ack));

    // Burst cached content so the downstream node fills its GoP cache.
    if (recovery_->cache().has_content(req.stream_id)) {
      LinkSender& snd = senders_->sender_for(from);
      const Time now = env_->net->loop()->now();
      for (const auto& pkt :
           recovery_->cache().startup_packets(req.stream_id)) {
        auto clone = pkt->fork();
        clone->cdn_ingress_time = kNever;  // cached: not a path-delay sample
        clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
        forwarding_->egress_meter().add(now, clone->wire_size());
        telemetry::handles().cache_hits->add();
        telemetry::record_hop(pkt->trace_id(), now, pkt->stream_id(),
                              pkt->producer_seq(), env_->self(), from,
                              telemetry::HopEvent::kCacheHit);
        snd.send_media(std::move(clone));
      }
    }
    // The new subscriber may widen (or narrow) our downstream aggregate.
    update_upstream_mask(req.stream_id);
    return;
  }

  // Not carrying the stream: continue backtracking toward the producer.
  if (req.remaining_reverse_path.empty()) {
    ack->ok = false;
    env_->net->send(env_->self(), from, std::move(ack));
    table_->remove_node_subscriber(req.stream_id, from);
    maybe_release_stream(req.stream_id);
    return;
  }
  env_->net->send(env_->self(), from, std::move(ack));

  auto& st = ensure_stream(req.stream_id);
  const NodeId upstream = req.remaining_reverse_path.front();
  entry.upstream = upstream;
  st.establishing = true;
  set_primary_supplier(st, upstream);
  auto fwd = sim::make_message<SubscribeRequest>();
  fwd->stream_id = req.stream_id;
  fwd->remaining_reverse_path.assign(req.remaining_reverse_path.begin() + 1,
                                     req.remaining_reverse_path.end());
  fwd->layer_mask = downstream_aggregate(entry);
  st.upstream_mask_sent = fwd->layer_mask;
  env_->net->send(env_->self(), upstream, std::move(fwd));
}

void ControlAgent::handle_standby_subscribe(NodeId from,
                                            const SubscribeRequest& req) {
  // Standby (RTX-only) subscription: the requester wants NACK service,
  // not media. Register it outside subscriber_nodes so the fast path
  // never fans out to it, and skip the startup burst — a standby's
  // holes are filled one NACK at a time.
  auto& entry = table_->fib_entry(req.stream_id);
  entry.rtx_only_nodes.insert(from);
  senders_->sender_for(from);  // make sure the hop sender exists

  const bool anchored =
      entry.locally_produced || entry.upstream != sim::kNoNode;
  auto ack = sim::make_message<SubscribeAck>();
  ack->stream_id = req.stream_id;
  ack->ok = true;
  ack->rtx_only = true;
  ack->cache_hit = anchored && !entry.locally_produced;
  env_->net->send(env_->self(), from, std::move(ack));
  // A standby may NACK any layer: its arrival pins our upstream edge
  // wide open (and its departure re-narrows it, via unsubscribe).
  update_upstream_mask(req.stream_id);

  if (!anchored) {
    // Not carrying the stream yet: pull it with a normal subscription
    // of our own, so the cache can actually answer the standby's NACKs.
    auto& st = ensure_stream(req.stream_id);
    if (!st.establishing && !try_establish(req.stream_id)) {
      request_path(req.stream_id);
    }
  }
}

void ControlAgent::handle_subscribe_ack(NodeId from, const SubscribeAck& ack) {
  auto& st = ensure_stream(ack.stream_id);
  if (ack.rtx_only) {
    // A standby answered. It never touches establishing/upstream —
    // only the supplier set the NACK router races across.
    auto& pend = st.pending_standbys;
    pend.erase(std::remove(pend.begin(), pend.end(), from), pend.end());
    if (ack.ok &&
        std::find(st.suppliers.begin(), st.suppliers.end(), from) ==
            st.suppliers.end()) {
      st.suppliers.push_back(from);
    }
    return;
  }
  st.establishing = false;
  if (!ack.ok) {
    // Upstream could not anchor the subscription; retry via lookup.
    remove_supplier(st, from);
    auto& entry = table_->fib_entry(ack.stream_id);
    entry.upstream = sim::kNoNode;
    if (table_->find(ack.stream_id) != nullptr &&
        table_->find(ack.stream_id)->has_subscribers()) {
      request_path(ack.stream_id);
    }
    return;
  }
  if (cfg_->standby_suppliers > 0) establish_standbys(ack.stream_id);
}

void ControlAgent::establish_standbys(StreamId stream) {
  StreamContext* stp = table_->find_context(stream);
  const StreamFib::Entry* entry = table_->find(stream);
  if (stp == nullptr || entry == nullptr || entry->locally_produced) return;
  auto& st = *stp;

  // Standbys already live (suppliers beyond the primary) or in flight.
  std::size_t have =
      st.suppliers.empty() ? 0 : st.suppliers.size() - 1;
  have += st.pending_standbys.size();

  for (const Path& p : st.cached_paths) {
    if (have >= cfg_->standby_suppliers) break;
    if (p.size() < 2 || p.back() != env_->self()) continue;
    const NodeId cand = p[p.size() - 2];
    if (cand == entry->upstream) continue;
    if (std::find(st.suppliers.begin(), st.suppliers.end(), cand) !=
        st.suppliers.end()) {
      continue;
    }
    if (std::find(st.pending_standbys.begin(), st.pending_standbys.end(),
                  cand) != st.pending_standbys.end()) {
      continue;
    }
    st.pending_standbys.push_back(cand);
    auto req = sim::make_message<SubscribeRequest>();
    req->stream_id = stream;
    req->rtx_only = true;
    env_->net->send(env_->self(), cand, std::move(req));
    ++have;
  }
}

void ControlAgent::handle_unsubscribe(NodeId from,
                                      const UnsubscribeRequest& req) {
  table_->remove_node_subscriber(req.stream_id, from);
  StreamContext* ctx = table_->find_context(req.stream_id);
  if (ctx != nullptr) ctx->fib.rtx_only_nodes.erase(from);
  update_upstream_mask(req.stream_id);
  maybe_release_stream(req.stream_id);
}

// ---------------------------------------------------------- stream release

void ControlAgent::maybe_release_stream(StreamId stream) {
  const StreamFib::Entry* entry = table_->find(stream);
  if (entry == nullptr || entry->locally_produced) return;
  if (entry->has_subscribers()) return;

  auto& st = ensure_stream(stream);
  if (st.linger_timer != sim::kInvalidEvent) return;  // already scheduled
  st.linger_timer = env_->net->loop()->schedule_after(
      cfg_->unsubscribe_linger, [this, stream] {
        StreamContext* ctx = table_->find_context(stream);
        if (ctx != nullptr) ctx->linger_timer = sim::kInvalidEvent;
        const StreamFib::Entry* e = table_->find(stream);
        if (e == nullptr || e->locally_produced || e->has_subscribers()) {
          return;  // a subscriber came back during the linger window
        }
        release_stream(stream);
      });
}

void ControlAgent::release_stream(StreamId stream) {
  // Unsubscribe from every supplier: the primary upstream first, then
  // standby (RTX-only) upstreams and half-established standbys. With
  // multi-supplier off this is exactly the old single-upstream unsub.
  const StreamFib::Entry* entry = table_->find(stream);
  std::vector<NodeId> ups;
  if (entry != nullptr && entry->upstream != sim::kNoNode) {
    ups.push_back(entry->upstream);
  }
  if (const StreamContext* c = table_->find_context(stream)) {
    for (const NodeId n : c->suppliers) {
      if (std::find(ups.begin(), ups.end(), n) == ups.end()) ups.push_back(n);
    }
    for (const NodeId n : c->pending_standbys) {
      if (std::find(ups.begin(), ups.end(), n) == ups.end()) ups.push_back(n);
    }
  }
  for (const NodeId up : ups) {
    auto unsub = sim::make_message<UnsubscribeRequest>();
    unsub->stream_id = stream;
    env_->net->send(env_->self(), up, std::move(unsub));
    recovery_->forget_upstream(up, stream);
  }
  senders_->forget_stream(stream);
  recovery_->cache().forget_stream(stream);
  // Sweep the in-flight path lookup too: a released stream must not be
  // resurrected by a late response, and the lookup's retry timer has to
  // find nothing and die. (The old split-map code leaked both, keeping
  // a retry loop alive forever — see tests/test_stream_context.cpp.)
  for (auto it = pending_path_reqs_.begin();
       it != pending_path_reqs_.end();) {
    it = it->second == stream ? pending_path_reqs_.erase(it) : ++it;
  }
  StreamContext* ctx = table_->find_context(stream);
  if (ctx != nullptr && ctx->linger_timer != sim::kInvalidEvent) {
    env_->net->loop()->cancel(ctx->linger_timer);
  }
  // Erasing the context drops the FIB entry, the path cache, pending
  // views and the switch/costream flags in one stroke.
  table_->erase(stream);
}

// ----------------------------------------------------------- path switch

void ControlAgent::switch_path(StreamId stream) {
  StreamContext* stp = table_->find_context(stream);
  if (stp == nullptr) return;
  auto& st = *stp;
  const StreamFib::Entry* entry = table_->find(stream);
  if (entry == nullptr || entry->locally_produced) return;

  // Hysteresis: switching tears the stream down and back up; never flap
  // faster than the cooldown.
  const Time now = env_->net->loop()->now();
  if (st.last_switch != kNever &&
      now - st.last_switch < cfg_->switch_cooldown) {
    return;
  }

  // Find the next backup candidate that actually changes the upstream
  // hop (candidates sharing the bad upstream gain nothing).
  if (paths_fresh(st)) {
    const NodeId old_upstream = entry->upstream;
    while (st.next_backup < st.cached_paths.size()) {
      const Path next = st.cached_paths[st.next_backup++];
      if (next.size() >= 2 && next[next.size() - 2] == old_upstream) {
        continue;
      }
      st.last_switch = now;
      // Make-before-break (§7.1): establish the new path first; the old
      // subscription lingers for a grace period so content never gaps.
      // It stays a supplier for the same window — racing NACKs to it is
      // exactly what the grace period is for.
      establish_via_path(stream, next, /*keep_prev_supplier=*/true);
      if (old_upstream != sim::kNoNode) {
        env_->net->loop()->schedule_after(
            3 * kSec, [this, stream, old_upstream] {
              const StreamFib::Entry* e = table_->find(stream);
              if (e == nullptr || e->upstream == old_upstream) return;
              auto unsub = sim::make_message<UnsubscribeRequest>();
              unsub->stream_id = stream;
              env_->net->send(env_->self(), old_upstream, std::move(unsub));
              recovery_->forget_upstream(old_upstream, stream);
              StreamContext* c2 = table_->find_context(stream);
              if (c2 != nullptr) remove_supplier(*c2, old_upstream);
            });
      }
      session_->note_path_switch(stream);
      return;
    }
  }
  // Out of usable candidates: ask the Brain for the current best and
  // complete the switch when the response lands.
  st.switch_pending = true;
  request_path(stream);
}

// ------------------------------------------------------ discovery reports

void ControlAgent::start_reporting() {
  if (report_timer_ == sim::kInvalidEvent) {
    report_state();  // reports immediately, then self-rearms
  }
  if (overload_timer_ == sim::kInvalidEvent) {
    overload_timer_ = env_->net->loop()->schedule_after(
        cfg_->overload_check_interval, [this] { check_overload(); });
  }
}

void ControlAgent::report_state() {
  report_timer_ = env_->net->loop()->schedule_after(
      cfg_->report_interval, [this] { report_state(); });
  if (env_->brain == sim::kNoNode) return;
  if (!rng_seeded_) {
    rng_.reseed(0xD15C0 + static_cast<std::uint64_t>(env_->self()));
    rng_seeded_ = true;
  }
  auto report = sim::make_message<NodeStateReport>();
  report->node = env_->self();
  report->node_load = node_load();
  report->links.reserve(env_->peers.size());
  for (const NodeId peer : env_->peers) {
    if (peer == env_->self()) continue;
    const sim::Link* l = env_->net->link(env_->self(), peer);
    if (l == nullptr) continue;
    LinkReport lr;
    lr.to = peer;
    // §4.2: links that carried traffic recently report transport-layer
    // statistics (near ground truth); idle links are actively probed
    // with a few UDP-ping packets, a noisier estimate.
    lr.actively_measured = l->stats().packets_sent == 0;
    const double rtt_noise =
        lr.actively_measured ? rng_.uniform(0.95, 1.08) : 1.0;
    lr.rtt = static_cast<Duration>(
        static_cast<double>(l->base_rtt()) * rtt_noise);
    // A few-packet ping cannot observe sub-percent loss at all. Loaded
    // links report what the wire currently does to packets — including
    // any injected degradation — not the nominal configuration.
    lr.loss_rate = lr.actively_measured ? 0.0 : l->effective_loss_rate();
    lr.utilization = l->utilization();
    report->links.push_back(lr);
  }
  env_->net->send(env_->self(), env_->brain, std::move(report));
}

void ControlAgent::check_overload() {
  overload_timer_ = env_->net->loop()->schedule_after(
      cfg_->overload_check_interval, [this] { check_overload(); });
  if (env_->brain == sim::kNoNode) return;

  const double load = node_load();
  std::vector<NodeId> hot_links;
  for (const NodeId peer : env_->peers) {
    if (peer == env_->self()) continue;
    const sim::Link* l = env_->net->link(env_->self(), peer);
    if (l != nullptr && l->utilization() >= cfg_->overload_threshold) {
      hot_links.push_back(peer);
    }
  }
  const bool overloaded =
      load >= cfg_->overload_threshold || !hot_links.empty();
  if (overloaded && !overload_alarm_active_) {
    overload_alarm_active_ = true;
    auto alarm = sim::make_message<OverloadAlarm>();
    alarm->node = env_->self();
    alarm->node_load = load;
    alarm->overloaded_links = std::move(hot_links);
    env_->net->send(env_->self(), env_->brain, std::move(alarm));
  } else if (!overloaded && load < 0.9 * cfg_->overload_threshold) {
    overload_alarm_active_ = false;  // hysteresis re-arm
  }
}

// ------------------------------------------------------------ fault hooks

void ControlAgent::crash_reset() {
  cancel_timers();
  report_timer_ = sim::kInvalidEvent;
  overload_timer_ = sim::kInvalidEvent;
  pending_path_reqs_.clear();
  overload_alarm_active_ = false;
}

void ControlAgent::cancel_timers() {
  auto* loop = env_->net->loop();
  if (report_timer_ != sim::kInvalidEvent) loop->cancel(report_timer_);
  if (overload_timer_ != sim::kInvalidEvent) loop->cancel(overload_timer_);
}

}  // namespace livenet::overlay
