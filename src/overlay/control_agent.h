#pragma once

#include <cstdint>
#include <unordered_map>

#include "overlay/forwarding_engine.h"
#include "overlay/messages.h"
#include "overlay/node_env.h"
#include "overlay/peer_senders.h"
#include "overlay/recovery_engine.h"
#include "overlay/session_layer.h"
#include "overlay/stream_context.h"
#include "util/hash_seed.h"
#include "util/rng.h"

// Control-plane agent of a LiveNet node: everything that talks the
// Brain protocol (paper §4) or runs on timers. Path lookups with
// timeout retry, the local path cache, subscription establishment and
// backtracking (§4.4), quality-triggered make-before-break path
// switches (§7.1), producer migration, stream lifecycle (linger +
// release), Global Discovery state reports (§4.2) and overload alarms.
//
// The agent mutates only StreamContext state behind the shared
// StreamTable plus its own request/timer bookkeeping; data-plane work
// (bursts, forwarding) is delegated to the sibling engines.
namespace livenet::overlay {

struct OverlayNodeConfig;

class ControlAgent {
 public:
  ControlAgent(const OverlayNodeConfig* cfg, NodeEnv* env, StreamTable* table,
               PeerSenders* senders, RecoveryEngine* recovery,
               SessionLayer* session, ForwardingEngine* forwarding)
      : cfg_(cfg), env_(env), table_(table), senders_(senders),
        recovery_(recovery), session_(session), forwarding_(forwarding) {}

  // ----------------------------------------------------------- handlers
  void handle_publish(sim::NodeId client, const PublishRequest& req);
  void handle_publish_stop(sim::NodeId client, const PublishStop& msg);
  void handle_path_response(const PathResponse& resp);
  void handle_path_push(const PathPush& push);
  void handle_subscribe(sim::NodeId from, const SubscribeRequest& req);
  void handle_subscribe_ack(sim::NodeId from, const SubscribeAck& ack);
  void handle_unsubscribe(sim::NodeId from, const UnsubscribeRequest& req);
  void handle_switch_notice(sim::NodeId from, const StreamSwitchNotice& msg);
  void handle_producer_relay(const ProducerRelayInstruction& msg);
  /// A downstream node's SVC layer aggregate changed on our edge.
  void handle_layer_mask_update(sim::NodeId from, const LayerMaskUpdate& msg);

  /// Re-aggregates the downstream SVC masks (OR over subscriber nodes
  /// and clients; standby/absent entries pin the aggregate wide open)
  /// and propagates the result to the primary upstream when it moved.
  void update_upstream_mask(media::StreamId stream);

  // -------------------------------------------------- session-layer hooks
  /// Algorithm 1 line 1: producing the stream, or subscribed with
  /// cached content.
  bool carries_stream(media::StreamId s) const;

  /// View-request local hit: establish from locally cached path info if
  /// it is usable (fresh paths, or an establish already in flight).
  bool acquire_for_view(media::StreamId stream);

  /// Stream-switch fetch: establish from fresh cached paths or fall
  /// back to a lookup (stricter than the view-request variant — an
  /// in-flight establish without fresh paths still triggers a lookup).
  void fetch_for_switch(media::StreamId stream);

  void request_path(media::StreamId stream);
  void maybe_release_stream(media::StreamId stream);
  void release_stream(media::StreamId stream);
  void switch_path(media::StreamId stream);

  // ------------------------------------------------------------ plumbing
  /// Context with media state (framer + frame-level GoP cache) ensured,
  /// mirroring every call site of the old monolith's stream_state().
  StreamContext& ensure_stream(media::StreamId s);

  double node_load() const;

  /// Starts (or resumes after restart) the periodic reporting loops.
  void start_reporting();

  /// Crash: cancels the reporting timers and wipes the in-flight
  /// request bookkeeping. Stream-level timers die with the StreamTable
  /// sweep in the façade.
  void crash_reset();

  /// Destructor-time timer cancellation (no state reset).
  void cancel_timers();

 private:
  /// OR of the SVC layer masks the stream's downstream edge wants.
  media::LayerMask downstream_aggregate(const StreamFib::Entry& e) const;
  bool try_establish(media::StreamId stream);
  /// Subscribes over `path`. The previous (different) upstream is swept
  /// from the supplier set unless `keep_prev_supplier` — the
  /// make-before-break switch keeps it alive for its grace period; the
  /// dead-feed re-establish must not (a crashed upstream lingering as a
  /// "supplier" would keep attracting racing NACKs forever).
  void establish_via_path(media::StreamId stream, const Path& path,
                          bool keep_prev_supplier = false);
  void handle_standby_subscribe(sim::NodeId from, const SubscribeRequest& req);
  /// Subscribes standby (RTX-only) suppliers from the remaining cached
  /// path candidates, up to cfg->standby_suppliers beyond the primary.
  void establish_standbys(media::StreamId stream);
  /// Moves/inserts `n` at the front of the context's supplier set (the
  /// primary slot; standbys keep their relative order behind it).
  void set_primary_supplier(StreamContext& st, sim::NodeId n);
  static void remove_supplier(StreamContext& st, sim::NodeId n);
  bool stream_still_wanted(media::StreamId stream) const;
  bool paths_fresh(const StreamContext& ctx) const;
  void report_state();
  void check_overload();

  const OverlayNodeConfig* cfg_;
  NodeEnv* env_;
  StreamTable* table_;
  PeerSenders* senders_;
  RecoveryEngine* recovery_;
  SessionLayer* session_;
  ForwardingEngine* forwarding_;

  std::unordered_map<std::uint64_t, media::StreamId,
                     SeededHash<std::uint64_t>>
      pending_path_reqs_;
  Rng rng_{0xD15C0};  ///< reseeded per node id on first report
  bool rng_seeded_ = false;
  std::uint64_t next_request_id_ = 1;
  sim::EventId report_timer_ = sim::kInvalidEvent;
  sim::EventId overload_timer_ = sim::kInvalidEvent;
  bool overload_alarm_active_ = false;
};

}  // namespace livenet::overlay
