#include "overlay/forwarding_engine.h"

#include <limits>
#include <utility>

#include "overlay/overlay_node.h"
#include "overlay/session_layer.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace livenet::overlay {

using media::RtpPacketPtr;
using sim::NodeId;

void ForwardingEngine::fast_forward(NodeId from, const RtpPacketPtr& pkt,
                                    const StreamContext* ctx) {
  if (ctx == nullptr || !ctx->fib_active) return;
  const StreamFib::Entry& entry = ctx->fib;
  // During a make-before-break path switch both upstreams deliver for a
  // grace period; only the current upstream's copies are forwarded (the
  // other still feeds the slow path for caching and recovery).
  if (!entry.locally_produced && env_->peer_set.count(from) != 0 &&
      from != entry.upstream) {
    return;
  }
  if (entry.subscriber_nodes.empty() && entry.subscriber_clients.empty()) {
    return;
  }

  // Snapshot targets now; fan out after the fast-path processing delay.
  // A burst of packets landing at the same instant shares one deferred
  // event: appending to the open batch is exact iff the loop's seq
  // cursor has not moved since the batch event was scheduled — then the
  // per-packet events the old code would have created were guaranteed
  // to dispatch back to back anyway.
  sim::EventLoop* loop = env_->net->loop();
  std::uint32_t slot = open_batch_;
  if (slot == kNoBatch || open_time_ != loop->now() ||
      open_seq_ != loop->seq_cursor()) {
    slot = acquire_batch();
    loop->schedule_after(cfg_->fast_proc_delay,
                         [this, slot] { flush_batch(slot); });
    open_batch_ = slot;
    open_time_ = loop->now();
    open_seq_ = loop->seq_cursor();  // after scheduling: counts our event
  }
  Batch& b = *pool_[slot];
  std::uint32_t prev_begin = kNoBatch;
  if (entry.any_layer_filter()) {
    // SVC filter: decided here, at append time, so a filtered target is
    // never forked at all — the zero-copy fast path stays zero-copy.
    // Masked-link seq history also advances here because appends (not
    // flushes) see packets in arrival order.
    prev_begin = static_cast<std::uint32_t>(b.prevs.size());
    const media::LayerMask bit = pkt->layer_mask_bit();
    const media::Seq s = pkt->producer_seq();
    for (const NodeId n : entry.subscriber_nodes) {
      const media::LayerMask mask =
          n == from ? media::kAllLayers : entry.node_mask(n);
      if (mask == media::kAllLayers) {  // dense link (or echo: flush skips)
        b.nodes.push_back(n);
        b.prevs.push_back(0);
        continue;
      }
      LinkSeqState& ls = link_seq_[{pkt->stream_id(), n}];
      const bool in_order = s > ls.last_seen;
      // An arrival gap vouched by the packet's own prev_link_seq is an
      // upstream hop's filtering, not damage — without honoring it, the
      // voucher chain breaks at the second filtering hop and every
      // downstream receiver NACKs seqs nobody can retransmit.
      const bool gap_vouched =
          pkt->prev_link_seq != 0 && pkt->prev_link_seq <= ls.last_seen;
      if ((mask & bit) != 0) {
        media::Seq prev = 0;
        if (in_order) {
          if (ls.last_seen != 0 && s != ls.last_seen + 1 && !gap_vouched) {
            ls.clean = false;
          }
          if (ls.clean && ls.last_fwd != 0 && s != ls.last_fwd + 1) {
            prev = ls.last_fwd;
          }
          ls.last_fwd = s;
          ls.last_seen = s;
          ls.clean = true;
        }
        b.nodes.push_back(n);
        b.prevs.push_back(prev);
      } else {
        if (in_order) {
          if (ls.last_seen != 0 && s != ls.last_seen + 1 && !gap_vouched) {
            ls.clean = false;
          }
          ls.last_seen = s;
        }
        b.nodes.push_back(n);
        b.prevs.push_back(kSkipEntry);
        telemetry::handles().layer_filtered->add();
        telemetry::record_hop(pkt->trace_id(), loop->now(), pkt->stream_id(),
                              s, env_->self(), n, telemetry::HopEvent::kDrop,
                              telemetry::DropReason::kLayerFiltered);
      }
    }
  } else {
    for (const NodeId n : entry.subscriber_nodes) b.nodes.push_back(n);
  }
  for (const ClientId c : entry.subscriber_clients) b.clients.push_back(c);
  b.rows.push_back(Row{pkt, from, static_cast<std::uint32_t>(b.nodes.size()),
                       static_cast<std::uint32_t>(b.clients.size()),
                       prev_begin});
}

void ForwardingEngine::feed_fec(const RtpPacketPtr& pkt, NodeId n, Time now) {
  FecLinkState& st = fec_links_[{pkt->stream_id(), n}];
  st.enc.set_k(cfg_->fec_group_packets);
  std::optional<media::RtpBody> parity = st.enc.add(pkt->body());
  if (!parity) return;

  // Probe rate: fixed, or adapted to the loss the link's peer last
  // reported (heavy loss -> every group, light loss -> every other
  // group, clean link -> no parity at all).
  LinkSender& snd = senders_->sender_for(n);
  double rate = cfg_->fec_rate;
  if (cfg_->fec_adaptive) {
    const double loss = snd.last_loss_fraction();
    rate = loss >= 0.02 ? 1.0 : (loss > 0.0 ? 0.5 : 0.0);
  }
  st.err_accum += rate;
  if (st.err_accum < 1.0) return;
  st.err_accum -= 1.0;

  // Budget clamp: parity output on this link stays under the
  // configured fraction of the link's current pacing rate.
  const double budget = cfg_->fec_budget_fraction * snd.pacer().rate_bps();
  if (st.parity_meter.valid(now) && st.parity_meter.rate_bps(now) > budget) {
    return;
  }
  media::RtpPacketMut pp = media::RtpPacket::make(std::move(*parity));
  pp->delay_ext_us = pkt->delay_ext_us + cfg_->fast_proc_delay +
                     half_rtt_between(env_->net, env_->self(), n);
  pp->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
  st.parity_meter.add(now, pp->wire_size());
  egress_meter_.add(now, pp->wire_size());
  ++fec_parity_sent_;
  telemetry::handles().fec_parity_sent->add();
  snd.send_parity(std::move(pp));
}

void ForwardingEngine::feed_fec_skip(const RtpPacketPtr& pkt, NodeId n) {
  // Only an already-open group cares; never create state for a link the
  // packet was filtered off of.
  const auto it = fec_links_.find({pkt->stream_id(), n});
  if (it != fec_links_.end()) it->second.enc.skip(pkt->producer_seq());
}

void ForwardingEngine::forget_stream(media::StreamId stream) {
  auto it = fec_links_.lower_bound(
      {stream, std::numeric_limits<sim::NodeId>::min()});
  while (it != fec_links_.end() && it->first.first == stream) {
    it = fec_links_.erase(it);
  }
  auto ls = link_seq_.lower_bound(
      {stream, std::numeric_limits<sim::NodeId>::min()});
  while (ls != link_seq_.end() && ls->first.first == stream) {
    ls = link_seq_.erase(ls);
  }
}

std::uint32_t ForwardingEngine::acquire_batch() {
  if (free_slots_.empty()) {
    pool_.push_back(std::make_unique<Batch>());
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

void ForwardingEngine::flush_batch(std::uint32_t slot) {
  // With fast_proc_delay == 0 the flush runs at the same instant the
  // batch was opened; close it first so a packet arriving from our own
  // sends cannot append to a slot being drained.
  if (open_batch_ == slot) open_batch_ = kNoBatch;
  Batch& b = *pool_[slot];
  const Time now = env_->net->loop()->now();
  ++batch_flushes_;
  std::uint64_t forwards = 0;
  std::uint32_t node_begin = 0;
  std::uint32_t client_begin = 0;
  for (const Row& row : b.rows) {
    const RtpPacketPtr& pkt = row.pkt;
    for (std::uint32_t i = node_begin; i < row.node_end; ++i) {
      const NodeId n = b.nodes[i];
      media::Seq prev = 0;
      if (row.prev_begin != kNoBatch) {  // stream had a layer filter
        prev = b.prevs[row.prev_begin + (i - node_begin)];
        if (prev == kSkipEntry) {
          // Filtered at append time: no fork, no send — only the FEC
          // group on the link learns the seq is intentionally absent.
          if ((cfg_->fec_rate > 0.0 || cfg_->fec_adaptive) &&
              !pkt->is_audio()) {
            feed_fec_skip(pkt, n);
          }
          continue;
        }
      }
      if (n == row.from) continue;  // never echo upstream
      auto clone = pkt->fork();
      clone->prev_link_seq = prev;
      clone->delay_ext_us +=
          cfg_->fast_proc_delay + half_rtt_between(env_->net, env_->self(), n);
      clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
      egress_meter_.add(now, clone->wire_size());
      ++forwards;
      telemetry::record_hop(pkt->trace_id(), now, pkt->stream_id(),
                            pkt->producer_seq(), env_->self(), n,
                            telemetry::HopEvent::kForward);
      senders_->sender_for(n).send_media(std::move(clone));
      if ((cfg_->fec_rate > 0.0 || cfg_->fec_adaptive) && !pkt->is_audio()) {
        feed_fec(pkt, n, now);
      }
    }
    for (std::uint32_t i = client_begin; i < row.client_end; ++i) {
      session_->deliver_to_client(static_cast<NodeId>(b.clients[i]), pkt);
    }
    node_begin = row.node_end;
    client_begin = row.client_end;
  }
  // One registry update per burst, not per clone.
  fast_forwards_ += forwards;
  if (forwards != 0) telemetry::handles().fast_forwards->add(forwards);
  b.rows.clear();
  b.nodes.clear();
  b.clients.clear();
  b.prevs.clear();
  free_slots_.push_back(slot);
}

}  // namespace livenet::overlay
