#include "overlay/forwarding_engine.h"

#include <utility>
#include <vector>

#include "overlay/overlay_node.h"
#include "overlay/session_layer.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace livenet::overlay {

using media::RtpPacketPtr;
using sim::NodeId;

void ForwardingEngine::fast_forward(NodeId from, const RtpPacketPtr& pkt,
                                    const StreamContext* ctx) {
  if (ctx == nullptr || !ctx->fib_active) return;
  const StreamFib::Entry& entry = ctx->fib;
  // During a make-before-break path switch both upstreams deliver for a
  // grace period; only the current upstream's copies are forwarded (the
  // other still feeds the slow path for caching and recovery).
  if (!entry.locally_produced && env_->peer_set.count(from) != 0 &&
      from != entry.upstream) {
    return;
  }

  // Snapshot targets now; enqueue after the fast-path processing delay.
  std::vector<NodeId> nodes(entry.subscriber_nodes.begin(),
                            entry.subscriber_nodes.end());
  std::vector<ClientId> clients(entry.subscriber_clients.begin(),
                                entry.subscriber_clients.end());
  if (nodes.empty() && clients.empty()) return;

  env_->net->loop()->schedule_after(
      cfg_->fast_proc_delay,
      [this, from, pkt, nodes = std::move(nodes),
       clients = std::move(clients)] {
        const Time now = env_->net->loop()->now();
        for (const NodeId n : nodes) {
          if (n == from) continue;  // never echo upstream
          auto clone = pkt->fork();
          clone->delay_ext_us +=
              cfg_->fast_proc_delay +
              half_rtt_between(env_->net, env_->self(), n);
          clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
          egress_meter_.add(now, clone->wire_size());
          ++fast_forwards_;
          telemetry::handles().fast_forwards->add();
          telemetry::record_hop(pkt->trace_id(), now, pkt->stream_id(),
                                pkt->producer_seq(), env_->self(), n,
                                telemetry::HopEvent::kForward);
          senders_->sender_for(n).send_media(std::move(clone));
        }
        for (const ClientId c : clients) {
          session_->deliver_to_client(static_cast<NodeId>(c), pkt);
        }
      });
}

}  // namespace livenet::overlay
