#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "media/fec.h"
#include "media/rtp.h"
#include "overlay/node_env.h"
#include "overlay/peer_senders.h"
#include "overlay/stream_context.h"
#include "transport/gcc.h"

// The fast path of a LiveNet node (paper §3): RTP in -> per-subscriber
// clone -> pacer, after a fixed fast-path processing delay. No
// reliability work, no reordering, no caching — those are the
// RecoveryEngine's slow path, fed with a separate copy.
//
// The FIB probe happens *before* this engine runs: the façade resolves
// the packet's StreamContext once per packet and passes it in, so the
// whole per-packet path costs a single hash lookup (the old monolith
// paid a second one inside its forwarding step).
//
// Deferred fan-out is batched. Each fast_forward snapshots its targets
// into a reusable SoA scratch batch (flat NodeId/ClientId arrays plus
// per-packet row extents — no per-packet vector allocations) and the
// scheduled callback captures only {engine, slot}, small enough for the
// event loop's inline storage. Consecutive packets at the same instant
// share one deferred event when the loop's seq cursor proves nothing
// was scheduled in between (so per-packet events could not have
// interleaved with anything); the shared callback then flushes the
// batch's telemetry counters once.
namespace livenet::overlay {

struct OverlayNodeConfig;
class SessionLayer;

class ForwardingEngine {
 public:
  ForwardingEngine(const OverlayNodeConfig* cfg, const NodeEnv* env,
                   PeerSenders* senders)
      : cfg_(cfg), env_(env), senders_(senders) {}

  /// Client fan-out target (wired after construction: the session layer
  /// is built later in the façade's member order).
  void set_session(SessionLayer* session) { session_ = session; }

  /// Forwards to the context's subscribers. `ctx` may be null or not
  /// yet forwarding-active (released or still-establishing stream) —
  /// both mean drop, exactly like the old missing-FIB-entry check.
  void fast_forward(sim::NodeId from, const media::RtpPacketPtr& pkt,
                    const StreamContext* ctx);

  /// Node-wide egress accounting (fast path, client delivery, bursts).
  transport::RateMeter& egress_meter() { return egress_meter_; }
  const transport::RateMeter& egress_meter() const { return egress_meter_; }

  std::uint64_t fast_forwards() const { return fast_forwards_; }
  std::uint64_t fec_parity_sent() const { return fec_parity_sent_; }

  /// Stream teardown / crash: drop per-(stream, link) FEC group state.
  void forget_stream(media::StreamId stream);
  void reset_fec() { fec_links_.clear(); }

  /// Deferred fan-out callbacks actually scheduled (>= 1 packet each;
  /// the gap to the packet count is the event-fusion win).
  std::uint64_t batch_flushes() const { return batch_flushes_; }

 private:
  static constexpr std::uint32_t kNoBatch = 0xFFFFFFFFu;

  /// Marks a filtered node entry inside a masked row's prevs span: the
  /// packet is NOT forked for that link (only the FEC group advances).
  static constexpr media::Seq kSkipEntry = static_cast<media::Seq>(-1);

  /// One packet's snapshot: target extents into the batch's flat
  /// arrays. Subscriber sets are copied out at fast_forward time (they
  /// may mutate before the deferred callback runs), `from` rides along
  /// for the echo-suppression check at flush time.
  struct Row {
    media::RtpPacketPtr pkt;
    sim::NodeId from;
    std::uint32_t node_end;    ///< exclusive end in Batch::nodes
    std::uint32_t client_end;  ///< exclusive end in Batch::clients
    /// Start of this row's span in Batch::prevs when the stream had a
    /// layer filter at append time; kNoBatch for the common unmasked
    /// row (whose flush loop stays byte-for-byte the old one).
    std::uint32_t prev_begin = kNoBatch;
  };
  struct Batch {
    std::vector<Row> rows;
    std::vector<sim::NodeId> nodes;
    std::vector<ClientId> clients;
    /// Masked rows only, aligned with their node span: prev_link_seq
    /// to stamp on the fork (0 = dense) or kSkipEntry for a filtered
    /// target.
    std::vector<media::Seq> prevs;
  };

  /// Per-(stream, node) producer-seq history of a masked link, kept so
  /// the sender can stamp prev_link_seq void ranges. `clean` means
  /// every seq in (last_fwd, last_seen] was seen here and filtered on
  /// purpose — an upstream hole in the gap clears it, and the next
  /// forward then ships prev = 0 so the receiver NACKs normally.
  struct LinkSeqState {
    media::Seq last_fwd = 0;
    media::Seq last_seen = 0;
    bool clean = true;
  };

  std::uint32_t acquire_batch();
  void flush_batch(std::uint32_t slot);
  void feed_fec(const media::RtpPacketPtr& pkt, sim::NodeId n, Time now);
  void feed_fec_skip(const media::RtpPacketPtr& pkt, sim::NodeId n);

  /// Per-(stream, link) FEC sender state: the open parity group, the
  /// probe-rate error accumulator (rate < 1 emits every 1/rate groups),
  /// and the parity byte meter the budget clamp reads.
  struct FecLinkState {
    media::FecGroupEncoder enc;
    double err_accum = 0.0;
    transport::RateMeter parity_meter{1 * kSec};
  };

  const OverlayNodeConfig* cfg_;
  const NodeEnv* env_;
  PeerSenders* senders_;
  SessionLayer* session_ = nullptr;
  transport::RateMeter egress_meter_{1 * kSec};
  std::uint64_t fast_forwards_ = 0;
  std::uint64_t batch_flushes_ = 0;
  std::uint64_t fec_parity_sent_ = 0;
  std::map<std::pair<media::StreamId, sim::NodeId>, FecLinkState> fec_links_;
  /// Only populated for (stream, node) links with a layer mask — the
  /// unmasked world never probes it.
  std::map<std::pair<media::StreamId, sim::NodeId>, LinkSeqState> link_seq_;

  /// Batch slot arena (unique_ptr: slots must stay address-stable while
  /// pool_ grows; scratch vectors inside are reused across flushes).
  std::vector<std::unique_ptr<Batch>> pool_;
  std::vector<std::uint32_t> free_slots_;
  /// The still-appendable batch: valid while the loop is at open_time_
  /// and its seq cursor still reads open_seq_ (nothing scheduled since
  /// the batch's event — appending is provably order-exact).
  std::uint32_t open_batch_ = kNoBatch;
  Time open_time_ = 0;
  std::uint64_t open_seq_ = 0;
};

}  // namespace livenet::overlay
