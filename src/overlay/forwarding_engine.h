#pragma once

#include <cstdint>

#include "media/rtp.h"
#include "overlay/node_env.h"
#include "overlay/peer_senders.h"
#include "overlay/stream_context.h"
#include "transport/gcc.h"

// The fast path of a LiveNet node (paper §3): RTP in -> per-subscriber
// clone -> pacer, after a fixed fast-path processing delay. No
// reliability work, no reordering, no caching — those are the
// RecoveryEngine's slow path, fed with a separate copy.
//
// The FIB probe happens *before* this engine runs: the façade resolves
// the packet's StreamContext once per packet and passes it in, so the
// whole per-packet path costs a single hash lookup (the old monolith
// paid a second one inside its forwarding step).
namespace livenet::overlay {

struct OverlayNodeConfig;
class SessionLayer;

class ForwardingEngine {
 public:
  ForwardingEngine(const OverlayNodeConfig* cfg, const NodeEnv* env,
                   PeerSenders* senders)
      : cfg_(cfg), env_(env), senders_(senders) {}

  /// Client fan-out target (wired after construction: the session layer
  /// is built later in the façade's member order).
  void set_session(SessionLayer* session) { session_ = session; }

  /// Forwards to the context's subscribers. `ctx` may be null or not
  /// yet forwarding-active (released or still-establishing stream) —
  /// both mean drop, exactly like the old missing-FIB-entry check.
  void fast_forward(sim::NodeId from, const media::RtpPacketPtr& pkt,
                    const StreamContext* ctx);

  /// Node-wide egress accounting (fast path, client delivery, bursts).
  transport::RateMeter& egress_meter() { return egress_meter_; }
  const transport::RateMeter& egress_meter() const { return egress_meter_; }

  std::uint64_t fast_forwards() const { return fast_forwards_; }

 private:
  const OverlayNodeConfig* cfg_;
  const NodeEnv* env_;
  PeerSenders* senders_;
  SessionLayer* session_ = nullptr;
  transport::RateMeter egress_meter_{1 * kSec};
  std::uint64_t fast_forwards_ = 0;
};

}  // namespace livenet::overlay
