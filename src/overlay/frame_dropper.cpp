#include "overlay/frame_dropper.h"

#include "telemetry/metrics.h"

namespace livenet::overlay {

using telemetry::DropReason;

DropReason FrameDropper::drop(DropReason reason, bool is_rtx) {
  // Retransmissions share the original frame's fate but never count:
  // the first pass already accounted for the drop, and the totals feed
  // the consumer's net-skip discounting.
  if (!is_rtx) {
    ++by_reason_[static_cast<std::size_t>(reason)];
    auto& h = telemetry::handles();
    switch (reason) {
      case DropReason::kBFrame:
        h.drops_b->add();
        break;
      case DropReason::kPFrame:
      case DropReason::kPoisonedGop:
        h.drops_p->add();
        break;
      case DropReason::kTemporalLayer:
      case DropReason::kSpatialLayer:
        h.drops_layer->add();
        break;
      default:
        h.drops_gop->add();
        break;
    }
  }
  return reason;
}

DropReason FrameDropper::decide(const media::RtpPacket& pkt,
                                Duration queue_drain) {
  pressure_ = queue_drain > cfg_.drop_b_above;
  if (pkt.is_audio()) return DropReason::kNone;  // audio is never dropped

  // A fresh keyframe opens a new GoP: reconsider suppression AND clear
  // poison state, so stale state can never outlive a GoP-id reuse. An
  // rtx keyframe is old data and must not resurrect a suppressed GoP.
  if (pkt.is_keyframe_packet() && !pkt.is_rtx) {
    dropping_gop_id_ = 0;
    poisoned_gop_id_ = 0;
    poisoned_from_frame_ = 0;
  }

  // A GoP being suppressed stays suppressed until the next keyframe.
  if (dropping_gop_id_ != 0 && pkt.gop_id() == dropping_gop_id_) {
    return drop(DropReason::kGopSuppressed, pkt.is_rtx);
  }

  if (queue_drain > cfg_.drop_gop_above) {
    // Drop from here to the end of this GoP.
    dropping_gop_id_ = pkt.gop_id();
    return drop(DropReason::kGopThreshold, pkt.is_rtx);
  }

  // A dropped P frame invalidates every later frame in the same GoP.
  if (poisoned_gop_id_ != 0 && pkt.gop_id() == poisoned_gop_id_ &&
      pkt.frame_id() > poisoned_from_frame_) {
    return drop(DropReason::kPoisonedGop, pkt.is_rtx);
  }

  // SVC rungs before the P/B ladder: an enhancement frame is never a
  // GoP dependency for lower layers, so these drops don't poison.
  if (queue_drain > cfg_.drop_discardable_above && pkt.discardable()) {
    return drop(DropReason::kTemporalLayer, pkt.is_rtx);
  }
  if (queue_drain > cfg_.drop_temporal_above && pkt.layer().temporal > 0) {
    return drop(DropReason::kTemporalLayer, pkt.is_rtx);
  }
  if (queue_drain > cfg_.drop_spatial_above && pkt.layer().spatial > 0) {
    return drop(DropReason::kSpatialLayer, pkt.is_rtx);
  }

  if (queue_drain > cfg_.drop_p_above &&
      pkt.frame_type() == media::FrameType::kP &&
      pkt.layer().temporal == 0 && pkt.layer().spatial == 0) {
    poisoned_gop_id_ = pkt.gop_id();
    poisoned_from_frame_ = pkt.frame_id();
    return drop(DropReason::kPFrame, pkt.is_rtx);
  }

  if (queue_drain > cfg_.drop_b_above &&
      pkt.frame_type() == media::FrameType::kB && !pkt.referenced()) {
    return drop(DropReason::kBFrame, pkt.is_rtx);
  }
  return DropReason::kNone;
}

}  // namespace livenet::overlay
