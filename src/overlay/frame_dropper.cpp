#include "overlay/frame_dropper.h"

namespace livenet::overlay {

bool FrameDropper::should_forward(const media::RtpPacket& pkt,
                                  Duration queue_drain) {
  pressure_ = queue_drain > cfg_.drop_b_above;
  if (pkt.is_audio()) return true;  // audio is never dropped

  // A GoP being suppressed stays suppressed until the next keyframe.
  if (dropping_gop_id_ != 0 && pkt.gop_id() == dropping_gop_id_) {
    if (!pkt.is_rtx) ++gop_dropped_;
    return false;
  }
  if (pkt.is_keyframe_packet()) {
    dropping_gop_id_ = 0;  // new GoP: reconsider
  }

  if (queue_drain > cfg_.drop_gop_above) {
    // Drop from here to the end of this GoP.
    dropping_gop_id_ = pkt.gop_id();
    ++gop_dropped_;
    return false;
  }

  // A dropped P frame invalidates every later frame in the same GoP.
  if (poisoned_gop_id_ != 0 && pkt.gop_id() == poisoned_gop_id_ &&
      pkt.frame_id() > poisoned_from_frame_) {
    ++p_dropped_;
    return false;
  }

  if (queue_drain > cfg_.drop_p_above &&
      pkt.frame_type() == media::FrameType::kP) {
    poisoned_gop_id_ = pkt.gop_id();
    poisoned_from_frame_ = pkt.frame_id();
    ++p_dropped_;
    return false;
  }

  if (queue_drain > cfg_.drop_b_above &&
      pkt.frame_type() == media::FrameType::kB && !pkt.referenced()) {
    ++b_dropped_;
    return false;
  }
  return true;
}

}  // namespace livenet::overlay
