#pragma once

#include <cstdint>

#include "media/rtp.h"
#include "util/time.h"

// Proactive frame dropping (paper §5.2): when a per-client send queue
// builds up faster than it drains, the consumer node drops frames
// rather than letting the queue grow: first unreferenced B frames
// ("only causes short blurring"), then P frames, and finally the whole
// GoP. Used to combat bandwidth variation on mobile last miles.
namespace livenet::overlay {

class FrameDropper {
 public:
  struct Config {
    Duration drop_b_above = 300 * kMs;    ///< queue drain time thresholds
    Duration drop_p_above = 600 * kMs;
    Duration drop_gop_above = 1200 * kMs;
  };

  FrameDropper() : FrameDropper(Config()) {}
  explicit FrameDropper(const Config& cfg) : cfg_(cfg) {}

  /// Decides whether to forward `pkt` given the client queue's current
  /// drain time. Stateful: dropping a P frame poisons the rest of its
  /// GoP (later frames reference it), and a dropped GoP stays dropped
  /// until the next keyframe.
  bool should_forward(const media::RtpPacket& pkt, Duration queue_drain);

  std::uint64_t b_dropped() const { return b_dropped_; }
  std::uint64_t p_dropped() const { return p_dropped_; }
  std::uint64_t gop_dropped() const { return gop_dropped_; }
  std::uint64_t total_dropped() const {
    return b_dropped_ + p_dropped_ + gop_dropped_;
  }

  /// True while the dropper is consistently above the B threshold; the
  /// consumer uses this as the signal to switch the client to a lower
  /// simulcast bitrate.
  bool under_pressure() const { return pressure_; }

 private:
  Config cfg_;
  std::uint64_t dropping_gop_id_ = 0;   ///< GoP being suppressed entirely
  std::uint64_t poisoned_gop_id_ = 0;   ///< GoP with a dropped P frame
  std::uint64_t poisoned_from_frame_ = 0;
  std::uint64_t b_dropped_ = 0;
  std::uint64_t p_dropped_ = 0;
  std::uint64_t gop_dropped_ = 0;
  bool pressure_ = false;
};

}  // namespace livenet::overlay
