#pragma once

#include <array>
#include <cstdint>

#include "media/rtp.h"
#include "telemetry/trace.h"
#include "util/time.h"

// Proactive frame dropping (paper §5.2): when a per-client send queue
// builds up faster than it drains, the consumer node drops frames
// rather than letting the queue grow: first unreferenced B frames
// ("only causes short blurring"), then P frames, and finally the whole
// GoP. Used to combat bandwidth variation on mobile last miles.
namespace livenet::overlay {

class FrameDropper {
 public:
  struct Config {
    Duration drop_b_above = 300 * kMs;    ///< queue drain time thresholds
    Duration drop_p_above = 600 * kMs;
    Duration drop_gop_above = 1200 * kMs;
    // SVC rungs, interleaved below the paper's ladder (highest temporal
    // layer first, then remaining temporal enhancements, then spatial
    // enhancement — an enhancement drop blurs one layer and never
    // poisons a GoP). Non-SVC streams carry layer {0,0}/discardable
    // false and never match these rules.
    Duration drop_discardable_above = 250 * kMs;  ///< top temporal layer
    Duration drop_temporal_above = 400 * kMs;     ///< any temporal > 0
    Duration drop_spatial_above = 500 * kMs;      ///< any spatial > 0
  };

  FrameDropper() : FrameDropper(Config()) {}
  explicit FrameDropper(const Config& cfg) : cfg_(cfg) {}

  /// Decides the fate of `pkt` given the client queue's current drain
  /// time: kNone = forward, anything else names why it is dropped.
  /// Stateful: dropping a P frame poisons the rest of its GoP (later
  /// frames reference it), and a dropped GoP stays dropped until the
  /// next keyframe, which also clears any stale poison state (so a
  /// reused GoP id can never resurrect an old suppression).
  ///
  /// Retransmissions follow the same forward/drop decision but are
  /// excluded from every drop counter: an rtx of an already-counted
  /// frame is not a new proactive drop, and inflated totals would skew
  /// the consumer's skip-discounting when it interprets client quality
  /// reports.
  telemetry::DropReason decide(const media::RtpPacket& pkt,
                               Duration queue_drain);

  /// Convenience wrapper preserving the original boolean API.
  bool should_forward(const media::RtpPacket& pkt, Duration queue_drain) {
    return decide(pkt, queue_drain) == telemetry::DropReason::kNone;
  }

  /// Per-reason drop counts (rtx excluded) — the source of truth the
  /// aggregate accessors below are derived from.
  std::uint64_t dropped(telemetry::DropReason r) const {
    return by_reason_[static_cast<std::size_t>(r)];
  }

  std::uint64_t b_dropped() const {
    return dropped(telemetry::DropReason::kBFrame);
  }
  std::uint64_t p_dropped() const {
    return dropped(telemetry::DropReason::kPFrame) +
           dropped(telemetry::DropReason::kPoisonedGop);
  }
  std::uint64_t gop_dropped() const {
    return dropped(telemetry::DropReason::kGopThreshold) +
           dropped(telemetry::DropReason::kGopSuppressed);
  }
  std::uint64_t layer_dropped() const {
    return dropped(telemetry::DropReason::kTemporalLayer) +
           dropped(telemetry::DropReason::kSpatialLayer);
  }
  std::uint64_t total_dropped() const {
    return b_dropped() + p_dropped() + gop_dropped() + layer_dropped();
  }

  /// True while the dropper is consistently above the B threshold; the
  /// consumer uses this as the signal to switch the client to a lower
  /// simulcast bitrate.
  bool under_pressure() const { return pressure_; }

 private:
  telemetry::DropReason drop(telemetry::DropReason reason, bool is_rtx);

  Config cfg_;
  std::uint64_t dropping_gop_id_ = 0;   ///< GoP being suppressed entirely
  std::uint64_t poisoned_gop_id_ = 0;   ///< GoP with a dropped P frame
  std::uint64_t poisoned_from_frame_ = 0;
  std::array<std::uint64_t, 16> by_reason_{};  ///< indexed by DropReason
  bool pressure_ = false;
};

}  // namespace livenet::overlay
