#include "overlay/link_receiver.h"

namespace livenet::overlay {

LinkReceiver::LinkReceiver(sim::Network* net, sim::NodeId self,
                           sim::NodeId peer, DeliverFn deliver, GapFn gap,
                           const Config& cfg)
    : net_(net), self_(self), peer_(peer), cfg_(cfg),
      gcc_(cfg.gcc_start_rate_bps),
      buffer_(
          net->loop(), std::move(deliver), std::move(gap),
          [this](media::StreamId stream, bool audio,
                 const std::vector<media::Seq>& m) {
            auto nack = sim::make_message<media::NackMessage>();
            nack->stream_id = stream;
            nack->audio = audio;
            nack->missing = m;
            net_->send(self_, peer_, std::move(nack));
          },
          cfg.buffer) {}

LinkReceiver::~LinkReceiver() {
  if (feedback_timer_ != sim::kInvalidEvent) {
    net_->loop()->cancel(feedback_timer_);
  }
}

void LinkReceiver::on_rtp(const media::RtpPacketPtr& pkt) {
  const Time now = net_->loop()->now();
  if (pkt->hop_send_time != kNever) {
    gcc_.on_packet(pkt->hop_send_time, now, pkt->wire_size());
  }
  buffer_.on_packet(pkt);
  if (feedback_timer_ == sim::kInvalidEvent) {
    feedback_timer_ = net_->loop()->schedule_after(
        cfg_.feedback_interval, [this] { send_feedback(); });
  }
}

void LinkReceiver::send_feedback() {
  feedback_timer_ = sim::kInvalidEvent;
  auto fb = sim::make_message<media::CcFeedbackMessage>();
  fb->remb_bps = gcc_.remb_bps();
  fb->loss_fraction = buffer_.take_loss_fraction();
  net_->send(self_, peer_, std::move(fb));
  // Keep reporting while the link is active; the timer re-arms on the
  // next packet if we stop here after an idle interval.
  feedback_timer_ = net_->loop()->schedule_after(cfg_.feedback_interval,
                                                 [this] { send_feedback(); });
}

}  // namespace livenet::overlay
