#include "overlay/link_receiver.h"

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace livenet::overlay {

LinkReceiver::LinkReceiver(sim::Network* net, sim::NodeId self,
                           sim::NodeId peer, DeliverFn deliver, GapFn gap,
                           const Config& cfg)
    : net_(net), self_(self), peer_(peer), cfg_(cfg),
      gcc_(cfg.gcc_start_rate_bps),
      buffer_(
          net->loop(), std::move(deliver), std::move(gap),
          [this](media::StreamId stream, bool audio,
                 const std::vector<media::Seq>& m) {
            if (nack_route_) {
              nack_route_(stream, audio, m);
              return;
            }
            auto nack = sim::make_message<media::NackMessage>();
            nack->stream_id = stream;
            nack->audio = audio;
            nack->missing = m;
            net_->send(self_, peer_, std::move(nack));
          },
          cfg.buffer),
      fec_(cfg.fec) {
  // Re-NACK holdoff needs the upstream round trip; without a link
  // (unit tests wiring buffers directly) the hint stays 0 and the
  // holdoff degrades to the scan interval.
  if (const sim::Link* l = net->link(peer, self)) {
    buffer_.set_rtt_hint(l->base_rtt());
  }
}

LinkReceiver::~LinkReceiver() {
  if (feedback_timer_ != sim::kInvalidEvent) {
    net_->loop()->cancel(feedback_timer_);
  }
}

void LinkReceiver::on_rtp(const media::RtpPacketPtr& pkt) {
  const Time now = net_->loop()->now();
  if (pkt->is_fec_parity()) {
    // Parity stops here: no GCC sample, no seq-space entry. Either it
    // closes a one-hole group now or it is held for a later re-arm.
    inject_recovered(fec_.on_parity(*pkt));
    return;
  }
  if (pkt->hop_send_time != kNever) {
    gcc_.on_packet(pkt->hop_send_time, now, pkt->wire_size());
  }
  if (fec_.active()) {
    // Record this arrival's parity contribution; an RTX landing in a
    // held two-loss group can re-arm it down to one hole.
    inject_recovered(fec_.on_media(*pkt));
  }
  buffer_.on_packet(pkt);
  if (feedback_timer_ == sim::kInvalidEvent) {
    feedback_timer_ = net_->loop()->schedule_after(
        cfg_.feedback_interval, [this] { send_feedback(); });
  }
}

void LinkReceiver::inject_recovered(media::RtpPacketMut rec) {
  // A reconstruction can cascade: registering the recovered packet may
  // re-arm another held group down to one hole.
  while (rec != nullptr) {
    media::RtpPacketMut next = fec_.on_media(*rec);
    if (!buffer_.would_accept(rec->stream_id(), rec->is_audio(), rec->seq)) {
      rec = std::move(next);
      continue;  // RTX beat us to it; never inject a duplicate
    }
    if (cfg_.telemetry) {
      telemetry::handles().fec_recovered->add();
      telemetry::record_hop(rec->trace_id(), net_->loop()->now(),
                            rec->stream_id(), rec->producer_seq(), self_,
                            peer_, telemetry::HopEvent::kFecRecovered);
    }
    buffer_.on_packet(rec);
    rec = std::move(next);
  }
}

void LinkReceiver::send_feedback() {
  feedback_timer_ = sim::kInvalidEvent;
  auto fb = sim::make_message<media::CcFeedbackMessage>();
  fb->remb_bps = gcc_.remb_bps();
  fb->loss_fraction = buffer_.take_loss_fraction();
  net_->send(self_, peer_, std::move(fb));
  // Keep reporting while the link is active; the timer re-arms on the
  // next packet if we stop here after an idle interval.
  feedback_timer_ = net_->loop()->schedule_after(cfg_.feedback_interval,
                                                 [this] { send_feedback(); });
}

}  // namespace livenet::overlay
