#pragma once

#include <functional>
#include <memory>

#include "media/rtp.h"
#include "sim/network.h"
#include "transport/gcc.h"
#include "transport/receive_buffer.h"

// Receiver half of one overlay hop (one upstream peer -> this node):
// the slow path's receive buffer (ordering, hole detection, NACK
// emission) and the receiver side of GCC, which periodically feeds a
// REMB + loss feedback message back to the upstream sender.
namespace livenet::overlay {

class LinkReceiver {
 public:
  struct Config {
    transport::ReceiveBuffer::Config buffer;
    Duration feedback_interval = 100 * kMs;
    double gcc_start_rate_bps = 20e6;
  };

  /// `deliver` receives packets in seq order per stream (the slow-path
  /// output that feeds framing + GoP caching); `gap` signals an
  /// unrecoverable hole in a stream.
  using DeliverFn = std::function<void(const media::RtpPacketPtr&)>;
  using GapFn = std::function<void(media::StreamId)>;

  LinkReceiver(sim::Network* net, sim::NodeId self, sim::NodeId peer,
               DeliverFn deliver, GapFn gap)
      : LinkReceiver(net, self, peer, std::move(deliver), std::move(gap),
                     Config()) {}
  LinkReceiver(sim::Network* net, sim::NodeId self, sim::NodeId peer,
               DeliverFn deliver, GapFn gap, const Config& cfg);
  ~LinkReceiver();
  LinkReceiver(const LinkReceiver&) = delete;
  LinkReceiver& operator=(const LinkReceiver&) = delete;

  /// Slow-path entry: feeds GCC and the receive buffer.
  void on_rtp(const media::RtpPacketPtr& pkt);

  void forget_stream(media::StreamId stream) {
    buffer_.forget_stream(stream);
  }

  sim::NodeId peer() const { return peer_; }
  const transport::ReceiveBuffer& buffer() const { return buffer_; }
  std::vector<media::RtpPacketPtr> buffered_packets(
      media::StreamId stream) const {
    return buffer_.buffered_packets(stream);
  }
  double remb_bps() const { return gcc_.remb_bps(); }

 private:
  void send_feedback();

  sim::Network* net_;
  sim::NodeId self_;
  sim::NodeId peer_;
  Config cfg_;
  transport::GccReceiver gcc_;
  transport::ReceiveBuffer buffer_;
  sim::EventId feedback_timer_ = sim::kInvalidEvent;
};

}  // namespace livenet::overlay
