#pragma once

#include <functional>
#include <memory>

#include "media/fec.h"
#include "media/rtp.h"
#include "sim/network.h"
#include "transport/gcc.h"
#include "transport/receive_buffer.h"

// Receiver half of one overlay hop (one upstream peer -> this node):
// the slow path's receive buffer (ordering, hole detection, NACK
// emission), the link-local FEC decoder (parity-group reconstruction —
// the recovery tier that beats a NACK by a full RTT), and the receiver
// side of GCC, which periodically feeds a REMB + loss feedback message
// back to the upstream sender.
namespace livenet::overlay {

class LinkReceiver {
 public:
  struct Config {
    transport::ReceiveBuffer::Config buffer;
    Duration feedback_interval = 100 * kMs;
    double gcc_start_rate_bps = 20e6;
    media::FecDecoder::Config fec;
    bool telemetry = true;  ///< FEC-recovery counters + hop records
  };

  /// `deliver` receives packets in seq order per stream (the slow-path
  /// output that feeds framing + GoP caching); `gap` signals an
  /// unrecoverable hole in a stream.
  using DeliverFn = std::function<void(const media::RtpPacketPtr&)>;
  using GapFn = std::function<void(media::StreamId)>;
  /// NACK routing override: when installed (multi-supplier mode), hole
  /// lists go to the recovery engine's supplier router instead of
  /// straight to this link's upstream peer.
  using NackRouteFn = std::function<void(media::StreamId, bool,
                                         const std::vector<media::Seq>&)>;

  LinkReceiver(sim::Network* net, sim::NodeId self, sim::NodeId peer,
               DeliverFn deliver, GapFn gap)
      : LinkReceiver(net, self, peer, std::move(deliver), std::move(gap),
                     Config()) {}
  LinkReceiver(sim::Network* net, sim::NodeId self, sim::NodeId peer,
               DeliverFn deliver, GapFn gap, const Config& cfg);
  ~LinkReceiver();
  LinkReceiver(const LinkReceiver&) = delete;
  LinkReceiver& operator=(const LinkReceiver&) = delete;

  /// Slow-path entry: feeds GCC, the FEC decoder, and the receive
  /// buffer. Parity packets stop at the decoder — they never enter the
  /// media seq space (no GCC sample, no hole accounting).
  void on_rtp(const media::RtpPacketPtr& pkt);

  /// Install the multi-supplier NACK router (see NackRouteFn).
  void set_nack_route(NackRouteFn route) { nack_route_ = std::move(route); }

  void forget_stream(media::StreamId stream) {
    buffer_.forget_stream(stream);
  }

  /// Supplier-vouched voids (NackVoid answer): see
  /// ReceiveBuffer::void_seqs.
  void void_seqs(media::StreamId stream, bool audio,
                 const std::vector<media::Seq>& seqs) {
    buffer_.void_seqs(stream, audio, seqs);
  }

  sim::NodeId peer() const { return peer_; }
  const transport::ReceiveBuffer& buffer() const { return buffer_; }
  const media::FecDecoder& fec() const { return fec_; }
  std::vector<media::RtpPacketPtr> buffered_packets(
      media::StreamId stream) const {
    return buffer_.buffered_packets(stream);
  }
  double remb_bps() const { return gcc_.remb_bps(); }
  /// Still-missing subset probe for the staggered supplier fallback.
  std::vector<media::Seq> missing_subset(
      media::StreamId stream, bool audio,
      const std::vector<media::Seq>& seqs) const {
    return buffer_.missing_subset(stream, audio, seqs);
  }

 private:
  void send_feedback();
  void inject_recovered(media::RtpPacketMut rec);

  sim::Network* net_;
  sim::NodeId self_;
  sim::NodeId peer_;
  Config cfg_;
  transport::GccReceiver gcc_;
  transport::ReceiveBuffer buffer_;
  media::FecDecoder fec_;
  NackRouteFn nack_route_;
  sim::EventId feedback_timer_ = sim::kInvalidEvent;
};

}  // namespace livenet::overlay
