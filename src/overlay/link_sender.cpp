#include "overlay/link_sender.h"

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace livenet::overlay {

namespace {

// One retransmission observation: the registry counter plus, for
// traced packets, a kRtx hop record.
void note_rtx(const media::RtpPacket& pkt, Time now, sim::NodeId self,
              sim::NodeId peer) {
  telemetry::handles().rtx_sent->add();
  telemetry::record_hop(pkt.trace_id(), now, pkt.stream_id(),
                        pkt.producer_seq(), self, peer,
                        telemetry::HopEvent::kRtx);
}

}  // namespace

LinkSender::LinkSender(sim::Network* net, sim::NodeId self, sim::NodeId peer,
                       const Config& cfg)
    : net_(net), self_(self), peer_(peer), history_(cfg.history),
      gcc_(cfg.gcc),
      pacer_(net->loop(), transport::Pacer::SendFn{}, cfg.pacer) {
  // Direct wire sink: the pacer stamps the per-hop departure time for
  // the peer's GCC delay estimator and hands the packet to the network
  // without an indirection per packet.
  pacer_.set_wire(net_, self_, peer_);
  pacer_.set_rate_bps(gcc_.pacing_rate_bps());
}

void LinkSender::send_media(const media::RtpPacketPtr& pkt) {
  history_.record(pkt, net_->loop()->now());
  pacer_.enqueue(pkt);
}

std::vector<media::Seq> LinkSender::on_nack(
    media::StreamId stream, bool audio,
    const std::vector<media::Seq>& seqs) {
  std::vector<media::Seq> unserved;
  const Time now = net_->loop()->now();
  for (const media::Seq seq : seqs) {
    const media::RtpPacketPtr orig = history_.lookup(stream, audio, seq, now);
    if (!orig) {
      unserved.push_back(seq);
      continue;
    }
    auto rtx = orig->fork();
    rtx->is_rtx = true;
    ++rtx_sent_;
    note_rtx(*rtx, now, self_, peer_);
    pacer_.enqueue(std::move(rtx));
  }
  return unserved;
}

void LinkSender::send_rtx(const media::RtpPacketPtr& pkt) {
  auto rtx = pkt->fork();
  rtx->is_rtx = true;
  ++rtx_sent_;
  note_rtx(*rtx, net_->loop()->now(), self_, peer_);
  pacer_.enqueue(std::move(rtx));
}

void LinkSender::send_parity(media::RtpPacketPtr pkt) {
  pacer_.enqueue(std::move(pkt));
}

void LinkSender::on_cc_feedback(double remb_bps, double loss_fraction) {
  last_loss_fraction_ = loss_fraction;
  gcc_.on_feedback(remb_bps, loss_fraction);
  pacer_.set_rate_bps(gcc_.pacing_rate_bps());
}

}  // namespace livenet::overlay
