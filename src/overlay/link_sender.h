#pragma once

#include <memory>
#include <vector>

#include "media/rtp.h"
#include "sim/network.h"
#include "transport/gcc.h"
#include "transport/pacer.h"
#include "transport/send_history.h"

// Sender half of one overlay hop (this node -> one downstream peer,
// which may be another overlay node or a client): the fast path's send
// queue + pacer, the slow path's send-side loss recovery (answering
// NACKs from history) and the GCC sender that converts receiver
// feedback into the pacing rate.
namespace livenet::overlay {

class LinkSender {
 public:
  struct Config {
    transport::Pacer::Config pacer;
    transport::SendHistory::Config history;
    transport::GccSender::Config gcc;
  };

  LinkSender(sim::Network* net, sim::NodeId self, sim::NodeId peer)
      : LinkSender(net, self, peer, Config()) {}
  LinkSender(sim::Network* net, sim::NodeId self, sim::NodeId peer,
             const Config& cfg);

  /// Fast-path enqueue: records the packet for possible retransmission
  /// and hands it to the pacer.
  void send_media(const media::RtpPacketPtr& pkt);

  /// Slow-path loss recovery: answers a NACK by retransmitting from
  /// history with elevated priority. Returns the seqs NOT found in the
  /// send history — the caller may serve those from the node's
  /// slow-path GoP cache (paper §3: B answers C's NACK from the copy
  /// its own slow path recovered).
  std::vector<media::Seq> on_nack(media::StreamId stream, bool audio,
                                  const std::vector<media::Seq>& seqs);

  /// Retransmits an explicit packet (slow-path cache fallback).
  void send_rtx(const media::RtpPacketPtr& pkt);

  /// Enqueues an FEC parity packet. Parity is never recorded in the
  /// send history (it is not NACKable — losing redundancy costs
  /// nothing) and rides the pacer's lowest-priority queue.
  void send_parity(media::RtpPacketPtr pkt);

  /// GCC feedback from the peer; updates the pacing rate.
  void on_cc_feedback(double remb_bps, double loss_fraction);

  void forget_stream(media::StreamId stream) {
    history_.forget_stream(stream);
  }

  sim::NodeId peer() const { return peer_; }
  const transport::Pacer& pacer() const { return pacer_; }
  double pacing_rate_bps() const { return gcc_.pacing_rate_bps(); }
  const transport::GccSender& gcc() const { return gcc_; }
  Duration queue_drain_time() const { return pacer_.drain_time(); }
  std::uint64_t rtx_sent() const { return rtx_sent_; }
  /// Loss fraction the peer reported in its most recent CC feedback —
  /// the adaptive FEC probe rate keys off this.
  double last_loss_fraction() const { return last_loss_fraction_; }

 private:
  sim::Network* net_;
  sim::NodeId self_;
  sim::NodeId peer_;
  transport::SendHistory history_;
  transport::GccSender gcc_;
  transport::Pacer pacer_;  // wired straight to net_ (set_wire in ctor)
  std::uint64_t rtx_sent_ = 0;
  double last_loss_fraction_ = 0.0;
};

}  // namespace livenet::overlay
