#include "overlay/messages.h"

#include <sstream>

namespace livenet::overlay {

std::string SubscribeRequest::describe() const {
  std::ostringstream ss;
  ss << "SUB s" << stream_id << " rem=" << remaining_reverse_path.size()
     << (rtx_only ? " rtx-only" : "");
  return ss.str();
}

std::string SubscribeAck::describe() const {
  std::ostringstream ss;
  ss << "SUBACK s" << stream_id << (ok ? " ok" : " fail")
     << (cache_hit ? " hit" : "") << (rtx_only ? " rtx-only" : "");
  return ss.str();
}

std::string LayerMaskUpdate::describe() const {
  std::ostringstream ss;
  ss << "LAYERMASK s" << stream_id << " m=0x" << std::hex << layer_mask;
  return ss.str();
}

std::string UnsubscribeRequest::describe() const {
  std::ostringstream ss;
  ss << "UNSUB s" << stream_id;
  return ss.str();
}

std::string PublishRequest::describe() const {
  std::ostringstream ss;
  ss << "PUBLISH s" << stream_id << " c" << client_id;
  return ss.str();
}

std::string ViewRequest::describe() const {
  std::ostringstream ss;
  ss << "VIEW s" << stream_id << " c" << client_id;
  return ss.str();
}

std::string PublishStop::describe() const {
  std::ostringstream ss;
  ss << "PUBSTOP s" << stream_id << " c" << client_id;
  return ss.str();
}

std::string StreamSwitchNotice::describe() const {
  std::ostringstream ss;
  ss << "COSWITCH s" << from_stream << "->s" << to_stream;
  return ss.str();
}

std::string ViewStop::describe() const {
  std::ostringstream ss;
  ss << "VIEWSTOP s" << stream_id << " c" << client_id;
  return ss.str();
}

std::string ViewAck::describe() const {
  std::ostringstream ss;
  ss << "VIEWACK s" << stream_id << (ok ? " ok" : " fail");
  return ss.str();
}

std::string ClientQualityReport::describe() const {
  std::ostringstream ss;
  ss << "QREP s" << stream_id << " stalls=" << stalls_since_last;
  return ss.str();
}

std::string PathRequest::describe() const {
  std::ostringstream ss;
  ss << "PATHREQ s" << stream_id << " dst=" << consumer;
  return ss.str();
}

std::size_t PathResponse::wire_size() const {
  std::size_t n = 32;
  for (const auto& p : paths) n += 8 + 4 * p.size();
  return n;
}

std::string PathResponse::describe() const {
  std::ostringstream ss;
  ss << "PATHRESP s" << stream_id << " n=" << paths.size()
     << (last_resort ? " last-resort" : "");
  return ss.str();
}

std::size_t PathPush::wire_size() const {
  std::size_t n = 16;
  for (const auto& p : paths) n += 8 + 4 * p.size();
  return n;
}

std::string PathPush::describe() const {
  std::ostringstream ss;
  ss << "PATHPUSH s" << stream_id << " n=" << paths.size();
  return ss.str();
}

std::string ProducerMigrate::describe() const {
  std::ostringstream ss;
  ss << "PRODMIGRATE n=" << streams.size() << " old=" << old_producer;
  return ss.str();
}

std::string ProducerRelayInstruction::describe() const {
  std::ostringstream ss;
  ss << "PRODRELAY s" << stream_id << " new=" << new_producer;
  return ss.str();
}

std::string StreamRegister::describe() const {
  std::ostringstream ss;
  ss << "STREAMREG s" << stream_id << " prod=" << producer
     << (active ? " up" : " down");
  return ss.str();
}

std::string NodeStateReport::describe() const {
  std::ostringstream ss;
  ss << "REPORT n" << node << " links=" << links.size();
  return ss.str();
}

std::string OverloadAlarm::describe() const {
  std::ostringstream ss;
  ss << "OVERLOAD n" << node << " load=" << node_load;
  return ss.str();
}

}  // namespace livenet::overlay
