#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "media/frame.h"
#include "overlay/path.h"
#include "sim/message.h"
#include "util/time.h"

// Control-plane and overlay-internal messages: the subscription
// protocol used to establish paths hop by hop (paper §4.4, "Overlay
// Path Establishment"), client view/publish requests, and the messages
// exchanged with the Streaming Brain (path lookup, stream registration,
// state reports, overload alarms).
namespace livenet::overlay {

using ClientId = std::uint64_t;

// ------------------------------------------------------------- data plane

/// Hop-by-hop subscription: sent on the reverse route toward the
/// producer. `remaining_reverse_path` lists the nodes still to walk
/// (next hop first). A node that already carries the stream stops the
/// backtracking (cache hit) — the source of the long-chain problem.
class SubscribeRequest final : public sim::CloneableMessage<SubscribeRequest> {
 public:
  media::StreamId stream_id = media::kNoStream;
  std::vector<sim::NodeId> remaining_reverse_path;
  /// Standby-supplier subscription (multi-supplier RTX): the requester
  /// wants NACK service only — no media fan-out toward it.
  bool rtx_only = false;
  /// SVC layers the requester's subtree currently wants (OR over its
  /// own subscribers). kAllLayers = no filtering on this edge.
  media::LayerMask layer_mask = media::kAllLayers;

  std::size_t wire_size() const override {
    return 32 + 4 * remaining_reverse_path.size();
  }
  std::string describe() const override;
};

/// Downstream node or viewer -> its supplier: the SVC layer set wanted
/// on this edge changed (a quality flip is a mask flip, not a stream
/// switch). Nodes aggregate (OR) their subscribers' masks and forward
/// the update only when their own aggregate changes.
class LayerMaskUpdate final : public sim::CloneableMessage<LayerMaskUpdate> {
 public:
  media::StreamId stream_id = media::kNoStream;
  media::LayerMask layer_mask = media::kAllLayers;

  std::size_t wire_size() const override { return 18; }
  std::string describe() const override;
};

/// Flows back downstream once the subscription anchored (at the
/// producer or at a cache-hit relay). `cache_hit` is true if an
/// intermediate node already carried the stream.
class SubscribeAck final : public sim::CloneableMessage<SubscribeAck> {
 public:
  media::StreamId stream_id = media::kNoStream;
  bool ok = true;
  bool cache_hit = false;
  bool rtx_only = false;  ///< acks a standby (RTX-only) subscription
  int upstream_chain_hops = 0;  ///< hops from the anchor to this node

  std::size_t wire_size() const override { return 24; }
  std::string describe() const override;
};

/// Sent upstream when the last subscriber/viewer of a stream leaves.
class UnsubscribeRequest final : public sim::CloneableMessage<UnsubscribeRequest> {
 public:
  media::StreamId stream_id = media::kNoStream;

  std::size_t wire_size() const override { return 16; }
  std::string describe() const override;
};

// ------------------------------------------------------------ client side

/// Broadcaster -> producer node: announce a stream (one per simulcast
/// version).
class PublishRequest final : public sim::CloneableMessage<PublishRequest> {
 public:
  media::StreamId stream_id = media::kNoStream;
  ClientId client_id = 0;
  double bitrate_bps = 0.0;

  std::size_t wire_size() const override { return 32; }
  std::string describe() const override;
};

/// Viewer -> consumer node: start viewing a stream. The consumer runs
/// Algorithm 1 (local hit or path lookup + establishment).
/// `fallback_versions` lists lower-bitrate simulcast versions of the
/// same broadcast (from the app manifest), best first — the consumer
/// uses them for delegated bitrate selection (§5.2, "Thin Clients").
class ViewRequest final : public sim::CloneableMessage<ViewRequest> {
 public:
  media::StreamId stream_id = media::kNoStream;
  ClientId client_id = 0;
  std::vector<media::StreamId> fallback_versions;
  /// Initial SVC layer mask for the view (kAllLayers = everything; the
  /// viewer may flip it later with LayerMaskUpdate).
  media::LayerMask layer_mask = media::kAllLayers;

  std::size_t wire_size() const override {
    return 24 + 8 * fallback_versions.size();
  }
  std::string describe() const override;
};

/// Broadcaster -> producer node: the stream ended.
class PublishStop final : public sim::CloneableMessage<PublishStop> {
 public:
  media::StreamId stream_id = media::kNoStream;
  ClientId client_id = 0;

  std::size_t wire_size() const override { return 24; }
  std::string describe() const override;
};

/// App/producer -> consumer nodes: a broadcast switched to a co-stream
/// (§5.2, "Seamless Stream Switching"): consumers resubscribe viewers
/// of `from_stream` to `to_stream` on their behalf, flipping each
/// client once a complete GoP of the new stream is available.
class StreamSwitchNotice final : public sim::CloneableMessage<StreamSwitchNotice> {
 public:
  media::StreamId from_stream = media::kNoStream;
  media::StreamId to_stream = media::kNoStream;

  std::size_t wire_size() const override { return 24; }
  std::string describe() const override;
};

/// Viewer -> consumer node: stop viewing.
class ViewStop final : public sim::CloneableMessage<ViewStop> {
 public:
  media::StreamId stream_id = media::kNoStream;
  ClientId client_id = 0;

  std::size_t wire_size() const override { return 24; }
  std::string describe() const override;
};

/// Consumer node -> viewer: the view is active (first control response;
/// media follows on the same access link).
class ViewAck final : public sim::CloneableMessage<ViewAck> {
 public:
  media::StreamId stream_id = media::kNoStream;
  bool ok = true;

  std::size_t wire_size() const override { return 16; }
  std::string describe() const override;
};

/// Viewer -> consumer node: periodic QoE report (stall count since last
/// report); drives the quality-based path switching of §4.4.
class ClientQualityReport final : public sim::CloneableMessage<ClientQualityReport> {
 public:
  media::StreamId stream_id = media::kNoStream;
  ClientId client_id = 0;
  std::uint32_t stalls_since_last = 0;
  std::uint32_t skips_since_last = 0;  ///< unrecoverable frame gaps
  Duration avg_delay_us = 0;

  std::size_t wire_size() const override { return 32; }
  std::string describe() const override;
};

// ---------------------------------------------------------- brain traffic

/// Consumer -> Brain: path lookup for a stream (Algorithm 1, GetPath).
class PathRequest final : public sim::CloneableMessage<PathRequest> {
 public:
  std::uint64_t request_id = 0;
  media::StreamId stream_id = media::kNoStream;
  sim::NodeId consumer = sim::kNoNode;

  std::size_t wire_size() const override { return 32; }
  std::string describe() const override;
};

/// Brain -> consumer: candidate paths ordered by preference (3 in the
/// paper's implementation), or empty on failure (unknown stream).
class PathResponse final : public sim::CloneableMessage<PathResponse> {
 public:
  std::uint64_t request_id = 0;
  media::StreamId stream_id = media::kNoStream;
  std::vector<Path> paths;
  bool last_resort = false;  ///< served from the last-resort pool

  std::size_t wire_size() const override;
  std::string describe() const override;
};

/// Brain -> nodes: proactive push of paths for popular broadcasters
/// (§4.4: "for popular broadcasters, up-to-date overlay paths are
/// proactively pushed to all overlay nodes in advance").
class PathPush final : public sim::CloneableMessage<PathPush> {
 public:
  media::StreamId stream_id = media::kNoStream;
  std::vector<Path> paths;

  std::size_t wire_size() const override;
  std::string describe() const override;
};

/// New producer -> Brain (relayed from the broadcaster): the
/// broadcaster moved; the old producer should become a relay fed by the
/// new producer so existing downstream paths keep working (§7.1,
/// "Mobility Support").
class ProducerMigrate final : public sim::CloneableMessage<ProducerMigrate> {
 public:
  std::vector<media::StreamId> streams;
  sim::NodeId old_producer = sim::kNoNode;

  std::size_t wire_size() const override { return 16 + 8 * streams.size(); }
  std::string describe() const override;
};

/// Brain -> old producer: subscribe to the new producer for `stream`
/// and keep serving your existing subscribers.
class ProducerRelayInstruction final : public sim::CloneableMessage<ProducerRelayInstruction> {
 public:
  media::StreamId stream_id = media::kNoStream;
  sim::NodeId new_producer = sim::kNoNode;

  std::size_t wire_size() const override { return 24; }
  std::string describe() const override;
};

/// Producer -> Brain: stream (de)registration for the SIB.
class StreamRegister final : public sim::CloneableMessage<StreamRegister> {
 public:
  media::StreamId stream_id = media::kNoStream;
  sim::NodeId producer = sim::kNoNode;
  bool active = true;  ///< false: stream ended

  std::size_t wire_size() const override { return 24; }
  std::string describe() const override;
};

/// Measured state of one overlay link, as reported to Global Discovery.
struct LinkReport {
  sim::NodeId to = sim::kNoNode;
  Duration rtt = 0;
  double loss_rate = 0.0;
  double utilization = 0.0;
  bool actively_measured = false;  ///< true: UDP-ping, false: transport stats
};

/// Node -> Brain: periodic (1-minute) local view report.
class NodeStateReport final : public sim::CloneableMessage<NodeStateReport> {
 public:
  sim::NodeId node = sim::kNoNode;
  double node_load = 0.0;  ///< combined streams/CPU/memory metric, [0,1]
  std::vector<LinkReport> links;

  std::size_t wire_size() const override { return 32 + 24 * links.size(); }
  std::string describe() const override;
};

/// Node -> Brain: real-time overload alarm (utilization >= target).
class OverloadAlarm final : public sim::CloneableMessage<OverloadAlarm> {
 public:
  sim::NodeId node = sim::kNoNode;
  double node_load = 0.0;
  std::vector<sim::NodeId> overloaded_links;  ///< peers of hot links

  std::size_t wire_size() const override {
    return 24 + 4 * overloaded_links.size();
  }
  std::string describe() const override;
};

}  // namespace livenet::overlay
