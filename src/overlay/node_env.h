#pragma once

#include <unordered_set>
#include <vector>

#include "sim/link.h"
#include "sim/network.h"
#include "sim/sim_node.h"

// Shared wiring of one overlay node, owned by the OverlayNode façade
// and read by the engines: network handle, identity, control-plane
// endpoints and the overlay peer set. Engines hold a const pointer —
// the façade mutates it through its set_* wiring calls.
namespace livenet::overlay {

struct NodeEnv {
  sim::Network* net = nullptr;
  const sim::SimNode* owner = nullptr;  ///< node_id() source (set late)
  sim::NodeId brain = sim::kNoNode;
  sim::NodeId path_service = sim::kNoNode;  ///< defaults to brain
  std::vector<sim::NodeId> peers;           ///< the other overlay nodes
  std::unordered_set<sim::NodeId> peer_set;
  int country = -1;

  sim::NodeId self() const { return owner->node_id(); }
  sim::NodeId lookup_service() const {
    return path_service != sim::kNoNode ? path_service : brain;
  }
};

/// One-way propagation delay to a directly linked peer (0 if no link).
inline Duration half_rtt_between(const sim::Network* net, sim::NodeId self,
                                 sim::NodeId peer) {
  const sim::Link* l = net->link(self, peer);
  return l != nullptr ? l->base_rtt() / 2 : 0;
}

}  // namespace livenet::overlay
