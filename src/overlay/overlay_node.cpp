#include "overlay/overlay_node.h"

#include <algorithm>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/logging.h"

namespace livenet::overlay {

using media::RtpPacket;
using media::RtpPacketPtr;
using media::StreamId;
using sim::NodeId;

OverlayNode::OverlayNode(sim::Network* net, OverlayMetrics* metrics,
                         const OverlayNodeConfig& cfg)
    : net_(net),
      metrics_(metrics),
      cfg_(cfg),
      packet_cache_(cfg.packet_cache_gops, cfg.packet_cache_max_packets) {}

OverlayNode::~OverlayNode() {
  auto* loop = net_->loop();
  if (report_timer_ != sim::kInvalidEvent) loop->cancel(report_timer_);
  if (overload_timer_ != sim::kInvalidEvent) loop->cancel(overload_timer_);
  for (auto& [s, st] : streams_) {
    if (st.linger_timer != sim::kInvalidEvent) loop->cancel(st.linger_timer);
  }
}

void OverlayNode::set_overlay_peers(std::vector<NodeId> peers) {
  overlay_peers_ = std::move(peers);
  overlay_peer_set_.clear();
  overlay_peer_set_.insert(overlay_peers_.begin(), overlay_peers_.end());
}

void OverlayNode::start_reporting() {
  if (report_timer_ == sim::kInvalidEvent) {
    report_state();  // reports immediately, then self-rearms
  }
  if (overload_timer_ == sim::kInvalidEvent) {
    overload_timer_ = net_->loop()->schedule_after(
        cfg_.overload_check_interval, [this] { check_overload(); });
  }
}

// ----------------------------------------------------------- fault hooks

void OverlayNode::crash() {
  auto* loop = net_->loop();
  if (report_timer_ != sim::kInvalidEvent) {
    loop->cancel(report_timer_);
    report_timer_ = sim::kInvalidEvent;
  }
  if (overload_timer_ != sim::kInvalidEvent) {
    loop->cancel(overload_timer_);
    overload_timer_ = sim::kInvalidEvent;
  }
  for (auto& [s, st] : streams_) {
    if (st.linger_timer != sim::kInvalidEvent) loop->cancel(st.linger_timer);
  }
  // Everything below is in-memory process state and dies with the
  // process. Downstream nodes notice the silence through their own
  // quality loops and re-route; they are not notified explicitly.
  streams_.clear();
  fib_ = StreamFib{};
  packet_cache_ =
      PacketGopCache(cfg_.packet_cache_gops, cfg_.packet_cache_max_packets);
  senders_.clear();
  receivers_.clear();
  client_views_.clear();
  pending_views_.clear();
  pending_path_reqs_.clear();
  path_request_sent_.clear();
  pending_costream_.clear();
  pending_switch_.clear();
  overload_alarm_active_ = false;
}

void OverlayNode::restart() {
  // Rejoining the overlay is just the normal bring-up: an immediate
  // state report re-registers the node with Global Discovery, and paths
  // are pulled lazily as demand arrives.
  start_reporting();
}

// --------------------------------------------------------------- dispatch

void OverlayNode::on_message(NodeId from, const sim::MessagePtr& msg) {
  if (const auto rtp = sim::msg_cast<const RtpPacket>(msg)) {
    handle_rtp(from, rtp);
    return;
  }
  if (const auto nack =
          sim::msg_cast<const media::NackMessage>(msg)) {
    LinkSender& snd = sender_for(from);
    const auto unserved =
        snd.on_nack(nack->stream_id, nack->audio, nack->missing);
    // Paper §3: serve remaining holes from the slow path's cached copy
    // (covers packets this node recovered but never fast-forwarded).
    // Only for overlay peers: client-facing flows use rewritten seq
    // numbers that do not index the cache.
    if (!nack->audio && overlay_peer_set_.count(from) != 0) {
      for (const media::Seq seq : unserved) {
        const auto cached = packet_cache_.find_packet(nack->stream_id, seq);
        if (cached) {
          telemetry::handles().cache_hits->add();
          telemetry::record_hop(cached->trace_id(), net_->loop()->now(),
                                cached->stream_id(), cached->producer_seq(),
                                node_id(), from,
                                telemetry::HopEvent::kCacheHit);
          snd.send_rtx(cached);
        }
      }
    }
    return;
  }
  if (const auto fb =
          sim::msg_cast<const media::CcFeedbackMessage>(msg)) {
    sender_for(from).on_cc_feedback(fb->remb_bps, fb->loss_fraction);
    return;
  }
  if (const auto view = sim::msg_cast<const ViewRequest>(msg)) {
    handle_view_request(from, *view);
    return;
  }
  if (const auto stop = sim::msg_cast<const ViewStop>(msg)) {
    handle_view_stop(from, *stop);
    return;
  }
  if (const auto pub = sim::msg_cast<const PublishRequest>(msg)) {
    handle_publish(from, *pub);
    return;
  }
  if (const auto resp = sim::msg_cast<const PathResponse>(msg)) {
    handle_path_response(*resp);
    return;
  }
  if (const auto push = sim::msg_cast<const PathPush>(msg)) {
    handle_path_push(*push);
    return;
  }
  if (const auto sub = sim::msg_cast<const SubscribeRequest>(msg)) {
    handle_subscribe(from, *sub);
    return;
  }
  if (const auto ack = sim::msg_cast<const SubscribeAck>(msg)) {
    handle_subscribe_ack(from, *ack);
    return;
  }
  if (const auto unsub =
          sim::msg_cast<const UnsubscribeRequest>(msg)) {
    handle_unsubscribe(from, *unsub);
    return;
  }
  if (const auto qrep =
          sim::msg_cast<const ClientQualityReport>(msg)) {
    handle_quality_report(from, *qrep);
    return;
  }
  if (const auto pstop = sim::msg_cast<const PublishStop>(msg)) {
    handle_publish_stop(from, *pstop);
    return;
  }
  if (const auto notice =
          sim::msg_cast<const StreamSwitchNotice>(msg)) {
    handle_switch_notice(from, *notice);
    return;
  }
  if (const auto mig = sim::msg_cast<const ProducerMigrate>(msg)) {
    // Arrived from the (re-homed) broadcaster: relay to the Brain.
    if (brain_ != sim::kNoNode) net_->send(node_id(), brain_, mig);
    return;
  }
  if (const auto relay =
          sim::msg_cast<const ProducerRelayInstruction>(msg)) {
    handle_producer_relay(*relay);
    return;
  }
  LIVENET_LOG(kWarn) << "node " << node_id() << ": unhandled "
                     << msg->describe();
}

// -------------------------------------------------------------- data path

void OverlayNode::handle_rtp(NodeId from, const RtpPacketPtr& pkt_in) {
  const StreamFib::Entry* entry = fib_.find(pkt_in->stream_id());
  if (entry == nullptr) return;  // late packet for a released stream

  RtpPacketPtr pkt = pkt_in;
  if (pkt->cdn_ingress_time == kNever && entry->locally_produced) {
    // CDN ingress (producer role): stamp entry time and reset hop count.
    auto stamped = pkt_in->fork();
    stamped->cdn_ingress_time = net_->loop()->now();
    stamped->cdn_hops = 0;
    pkt = std::move(stamped);
    telemetry::record_hop(pkt->trace_id(), net_->loop()->now(),
                          pkt->stream_id(), pkt->producer_seq(), node_id(),
                          from, telemetry::HopEvent::kIngress);
  }

  if (cfg_.fast_path_enabled) {
    fast_path_forward(from, pkt);
  }
  slow_path_ingest(from, pkt);
}

void OverlayNode::fast_path_forward(NodeId from, const RtpPacketPtr& pkt) {
  const StreamFib::Entry* entry = fib_.find(pkt->stream_id());
  if (entry == nullptr) return;
  // During a make-before-break path switch both upstreams deliver for a
  // grace period; only the current upstream's copies are forwarded (the
  // other still feeds the slow path for caching and recovery).
  if (!entry->locally_produced && overlay_peer_set_.count(from) != 0 &&
      from != entry->upstream) {
    return;
  }

  // Snapshot targets now; enqueue after the fast-path processing delay.
  std::vector<NodeId> nodes(entry->subscriber_nodes.begin(),
                            entry->subscriber_nodes.end());
  std::vector<ClientId> clients(entry->subscriber_clients.begin(),
                                entry->subscriber_clients.end());
  if (nodes.empty() && clients.empty()) return;

  net_->loop()->schedule_after(cfg_.fast_proc_delay, [this, from, pkt,
                                                      nodes = std::move(nodes),
                                                      clients = std::move(
                                                          clients)] {
    const Time now = net_->loop()->now();
    for (const NodeId n : nodes) {
      if (n == from) continue;  // never echo upstream
      auto clone = pkt->fork();
      clone->delay_ext_us += cfg_.fast_proc_delay + half_rtt_to(n);
      clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
      egress_meter_.add(now, clone->wire_size());
      ++fast_forwards_;
      telemetry::handles().fast_forwards->add();
      telemetry::record_hop(pkt->trace_id(), now, pkt->stream_id(),
                            pkt->producer_seq(), node_id(), n,
                            telemetry::HopEvent::kForward);
      sender_for(n).send_media(std::move(clone));
    }
    for (const ClientId c : clients) {
      const auto cv = client_views_.find(static_cast<NodeId>(c));
      if (cv == client_views_.end()) continue;
      send_to_client(static_cast<NodeId>(c), cv->second, pkt);
    }
  });
}

void OverlayNode::send_to_client(NodeId client, ClientViewState& view,
                                 const RtpPacketPtr& pkt) {
  LinkSender& snd = sender_for(client);
  const telemetry::DropReason drop_reason =
      view.dropper.decide(*pkt, snd.queue_drain_time());
  const bool forward = drop_reason == telemetry::DropReason::kNone;

  // Delegated bitrate selection (§5.2): a consistently building queue
  // means the last mile cannot sustain this version; move the client to
  // the next lower simulcast bitrate. Pressure accrues on every packet
  // offered (dropped ones included — sustained dropping IS pressure).
  if (view.dropper.under_pressure()) {
    if (++view.pressure_count >
            static_cast<int>(downgrade_pressure_packets_) &&
        view.ladder_pos + 1 < view.ladder.size()) {
      ++view.ladder_pos;
      view.pressure_count = 0;
      if (view.session != nullptr) ++view.session->bitrate_downgrades;
      switch_client_stream(client, view.ladder[view.ladder_pos]);
      return;
    }
  } else {
    view.pressure_count = 0;
  }
  if (!forward) {
    // Proactively dropped (B -> P -> GoP escalation).
    telemetry::record_hop(pkt->trace_id(), net_->loop()->now(),
                          pkt->stream_id(), pkt->producer_seq(), node_id(),
                          client, telemetry::HopEvent::kDrop, drop_reason);
    return;
  }
  auto clone = pkt->fork();
  clone->delay_ext_us += cfg_.fast_proc_delay + half_rtt_to(client);
  clone->seq = view.take_seq(clone->is_audio());  // client-facing seq space
  telemetry::handles().client_forwards->add();
  telemetry::record_hop(pkt->trace_id(), net_->loop()->now(),
                        pkt->stream_id(), pkt->producer_seq(), node_id(),
                        client, telemetry::HopEvent::kClientForward);

  // Consumer-node log: per-packet CDN path delay + observed path length.
  if (view.session != nullptr) {
    if (pkt->cdn_ingress_time != kNever) {
      const double delay_ms = to_ms(net_->loop()->now() - pkt->cdn_ingress_time);
      view.session->cdn_delay_ms.add(delay_ms);
      telemetry::handles().cdn_path_delay_ms->observe(delay_ms);
      view.session->path_length = pkt->cdn_hops;
    }
    if (view.session->first_packet_time == kNever) {
      view.session->first_packet_time = net_->loop()->now();
    }
  }
  egress_meter_.add(net_->loop()->now(), clone->wire_size());
  snd.send_media(std::move(clone));
}

void OverlayNode::slow_path_ingest(NodeId from, const RtpPacketPtr& pkt) {
  receiver_for(from).on_rtp(pkt);
}

void OverlayNode::on_slow_path_delivery(const RtpPacketPtr& pkt) {
  packet_cache_.add(pkt);
  auto& st = stream_state(pkt->stream_id());
  if (st.framer) st.framer->on_packet(*pkt);
  if (!pending_costream_.empty()) maybe_flip_costream(pkt->stream_id());

  // Views that were queued while a locally-cached path was being
  // established attach as soon as content lands (the lookup-based path
  // attaches via handle_path_response instead).
  const auto pvit = pending_views_.find(pkt->stream_id());
  if (pvit != pending_views_.end() && carries_stream(pkt->stream_id())) {
    auto waiting = std::move(pvit->second);
    pending_views_.erase(pvit);
    for (auto& pv : waiting) {
      attach_client(pv.client, pkt->stream_id(), pv.session);
    }
  }
  if (!cfg_.fast_path_enabled) {
    // Ablation mode: forward from the ordered output only.
    const StreamFib::Entry* entry = fib_.find(pkt->stream_id());
    fast_path_forward(entry != nullptr ? entry->upstream : sim::kNoNode, pkt);
  }
}

// ------------------------------------------------------------ client side

void OverlayNode::handle_view_request(NodeId client, const ViewRequest& req) {
  ++view_requests_;
  ViewSession& session = metrics_->new_session();
  session.stream = req.stream_id;
  session.consumer = node_id();
  session.client = client;
  session.request_time = net_->loop()->now();

  // The per-client state is created up front so that the simulcast
  // ladder survives a deferred (pending) attach.
  auto& view = client_views_[client];
  view.stream = req.stream_id;
  view.ladder.clear();
  view.ladder.push_back(req.stream_id);
  view.ladder.insert(view.ladder.end(), req.fallback_versions.begin(),
                     req.fallback_versions.end());
  view.ladder_pos = 0;
  view.pressure_count = 0;

  // Algorithm 1, line 1: already serving or producing this stream (or a
  // valid path is already cached locally) -> local hit.
  if (carries_stream(req.stream_id)) {
    session.local_hit = true;
    attach_client(client, req.stream_id, &session);
    return;
  }
  const auto stit = streams_.find(req.stream_id);
  if (stit != streams_.end() &&
      (stit->second.establishing ||
       (paths_fresh(stit->second) && !stit->second.cached_paths.empty()))) {
    // Path info already on the node (pushed or previously fetched).
    session.local_hit = true;
    pending_views_[req.stream_id].push_back(PendingView{client, &session});
    if (!stit->second.establishing) try_establish(req.stream_id);
    return;
  }

  // Miss: queue the view and look the path up at the Streaming Brain.
  // Concurrent requests for the same stream share a single lookup.
  pending_views_[req.stream_id].push_back(PendingView{client, &session});
  request_path(req.stream_id);
}

void OverlayNode::attach_client(NodeId client, StreamId stream,
                                ViewSession* session) {
  auto& view = client_views_[client];
  // Seamless switch: the client stays on its previous stream until the
  // new one is actually being served; detach the old one only now.
  if (view.stream != media::kNoStream && view.stream != stream) {
    const StreamId old_stream = view.stream;
    fib_.remove_client_subscriber(old_stream, client);
    maybe_release_stream(old_stream);
  }
  fib_.add_client_subscriber(stream, client);
  if (session != nullptr) view.session = session;
  view.stream = stream;
  auto ack = sim::make_message<ViewAck>();
  ack->stream_id = stream;
  ack->ok = true;
  net_->send(node_id(), client, std::move(ack));
  serve_startup_burst(client, view);
}

void OverlayNode::serve_startup_burst(NodeId client, ClientViewState& view) {
  auto burst = packet_cache_.startup_packets(view.stream);
  // Shrink the seam between the cache head and the live stream: packets
  // already received but blocked behind a recovery hole join the burst
  // (the client's jitter buffer tolerates the remaining holes, which
  // upstream retransmission fills via the fast path).
  const StreamFib::Entry* entry = fib_.find(view.stream);
  if (entry != nullptr && entry->upstream != sim::kNoNode) {
    const auto rit = receivers_.find(entry->upstream);
    if (rit != receivers_.end()) {
      for (auto& pkt : rit->second->buffered_packets(view.stream)) {
        burst.push_back(std::move(pkt));
      }
    }
  }
  if (burst.empty()) return;
  LinkSender& snd = sender_for(client);
  const Time now = net_->loop()->now();
  for (const auto& pkt : burst) {
    auto clone = pkt->fork();
    // Cached content: exclude from CDN-path-delay sampling (its transit
    // time is dominated by cache residency, not path quality).
    clone->cdn_ingress_time = kNever;
    clone->seq = view.take_seq(clone->is_audio());  // client-facing seq
    egress_meter_.add(now, clone->wire_size());
    telemetry::handles().cache_hits->add();
    telemetry::record_hop(pkt->trace_id(), now, pkt->stream_id(),
                          pkt->producer_seq(), node_id(), client,
                          telemetry::HopEvent::kCacheHit);
    snd.send_media(std::move(clone));
  }
  if (view.session != nullptr && view.session->first_packet_time == kNever) {
    view.session->first_packet_time = now;
  }
}

void OverlayNode::handle_view_stop(NodeId client, const ViewStop& msg) {
  StreamId current = msg.stream_id;
  const auto it = client_views_.find(client);
  if (it != client_views_.end()) {
    if (it->second.session != nullptr) {
      it->second.session->end_time = net_->loop()->now();
    }
    // The consumer may have moved the client to another simulcast
    // version or co-stream; detach whatever is actually being served.
    if (it->second.stream != media::kNoStream) current = it->second.stream;
    client_views_.erase(it);
  }
  fib_.remove_client_subscriber(current, client);
  maybe_release_stream(current);
  if (current != msg.stream_id) {
    fib_.remove_client_subscriber(msg.stream_id, client);
    maybe_release_stream(msg.stream_id);
  }
}

void OverlayNode::handle_publish(NodeId client, const PublishRequest& req) {
  auto& entry = fib_.entry(req.stream_id);
  entry.locally_produced = true;
  entry.upstream = sim::kNoNode;
  stream_state(req.stream_id);  // sets up framer + GoP cache
  (void)client;

  if (brain_ != sim::kNoNode) {
    auto reg = sim::make_message<StreamRegister>();
    reg->stream_id = req.stream_id;
    reg->producer = node_id();
    reg->active = true;
    net_->send(node_id(), brain_, std::move(reg));
  }
}

void OverlayNode::handle_quality_report(NodeId client,
                                        const ClientQualityReport& rep) {
  const auto it = client_views_.find(client);
  if (it == client_views_.end()) return;
  auto& view = it->second;
  view.stalls_in_window = rep.stalls_since_last;

  // The client cannot tell intentional frame drops (this node's own
  // proactive dropper) from network damage; discount them before using
  // the skip count as a path-quality signal.
  const std::uint64_t dropper_total = view.dropper.total_dropped();
  const std::uint64_t dropped_window =
      dropper_total - view.dropper_total_at_report;
  view.dropper_total_at_report = dropper_total;
  const std::uint32_t net_skips =
      rep.skips_since_last > dropped_window
          ? rep.skips_since_last - static_cast<std::uint32_t>(dropped_window)
          : 0;

  // Poor quality — stalls or unrecoverable network gaps — triggers a
  // switch to an alternative path (§4.4): a burst immediately,
  // sustained degradation after consecutive bad windows.
  const bool bad = rep.stalls_since_last > 0 ||
                   net_skips >= cfg_.switch_skip_threshold;
  view.bad_quality_windows = bad ? view.bad_quality_windows + 1 : 0;
  if (rep.stalls_since_last >= cfg_.switch_stall_threshold ||
      net_skips >= cfg_.switch_skip_threshold ||
      view.bad_quality_windows >= 5) {
    view.bad_quality_windows = 0;
    switch_path(view.stream);
  }
}

void OverlayNode::handle_publish_stop(NodeId client, const PublishStop& msg) {
  (void)client;
  const StreamFib::Entry* entry = fib_.find(msg.stream_id);
  if (entry == nullptr || !entry->locally_produced) return;
  if (brain_ != sim::kNoNode) {
    auto reg = sim::make_message<StreamRegister>();
    reg->stream_id = msg.stream_id;
    reg->producer = node_id();
    reg->active = false;
    net_->send(node_id(), brain_, std::move(reg));
  }
  release_stream(msg.stream_id);
}

void OverlayNode::handle_switch_notice(NodeId from,
                                       const StreamSwitchNotice& msg) {
  // A notice arriving from a client (the broadcaster app) is fanned out
  // across the overlay: the producer relays it to every CDN node.
  if (overlay_peer_set_.count(from) == 0 && from != brain_) {
    for (const NodeId peer : overlay_peers_) {
      if (peer == node_id()) continue;
      auto copy = sim::make_message<StreamSwitchNotice>(msg);
      net_->send(node_id(), peer, std::move(copy));
    }
  }
  // Only consumers with viewers on the old stream act on it.
  const StreamFib::Entry* entry = fib_.find(msg.from_stream);
  if (entry == nullptr || entry->subscriber_clients.empty()) return;
  pending_costream_[msg.to_stream] = msg.from_stream;

  // Subscribe to the new stream on the clients' behalf.
  if (!carries_stream(msg.to_stream)) {
    auto stit = streams_.find(msg.to_stream);
    const bool can_establish = stit != streams_.end() &&
                               paths_fresh(stit->second) &&
                               !stit->second.cached_paths.empty();
    if (can_establish) {
      try_establish(msg.to_stream);
    } else {
      request_path(msg.to_stream);
    }
  } else {
    maybe_flip_costream(msg.to_stream);
  }
}

void OverlayNode::maybe_flip_costream(StreamId new_stream) {
  const auto pcit = pending_costream_.find(new_stream);
  if (pcit == pending_costream_.end()) return;
  if (!packet_cache_.has_content(new_stream)) return;  // wait for a GoP
  const StreamId old_stream = pcit->second;
  pending_costream_.erase(pcit);

  std::vector<NodeId> to_flip;
  const StreamFib::Entry* old_entry = fib_.find(old_stream);
  if (old_entry != nullptr) {
    to_flip.assign(old_entry->subscriber_clients.begin(),
                   old_entry->subscriber_clients.end());
  }
  for (const NodeId c : to_flip) {
    const auto cv = client_views_.find(c);
    if (cv != client_views_.end() && cv->second.session != nullptr) {
      ++cv->second.session->costream_switches;
    }
    switch_client_stream(c, new_stream);
  }
}

void OverlayNode::switch_client_stream(NodeId client, StreamId new_stream) {
  auto it = client_views_.find(client);
  if (it == client_views_.end()) return;
  const StreamId old_stream = it->second.stream;
  if (old_stream == new_stream) return;

  if (carries_stream(new_stream)) {
    // attach_client performs the seamless old->new handover.
    attach_client(client, new_stream, it->second.session);
    return;
  }
  // Fetch the new stream first; the client keeps receiving the old one
  // until content lands (the pending-view attach does the handover).
  pending_views_[new_stream].push_back(
      PendingView{client, it->second.session});
  auto stit = streams_.find(new_stream);
  const bool can_establish = stit != streams_.end() &&
                             paths_fresh(stit->second) &&
                             !stit->second.cached_paths.empty();
  if (can_establish) {
    if (!stit->second.establishing) try_establish(new_stream);
  } else {
    request_path(new_stream);
  }
}

void OverlayNode::handle_producer_relay(const ProducerRelayInstruction& msg) {
  // §7.1: the broadcaster moved to another producer. This node stops
  // being the producer and becomes a relay fed by the new one; its
  // existing downstream subscribers and viewers are untouched.
  auto& entry = fib_.entry(msg.stream_id);
  if (!entry.locally_produced) return;
  entry.locally_produced = false;
  entry.upstream = msg.new_producer;
  stream_state(msg.stream_id).establishing = true;
  auto sub = sim::make_message<SubscribeRequest>();
  sub->stream_id = msg.stream_id;
  net_->send(node_id(), msg.new_producer, std::move(sub));
}

// ------------------------------------------------------------ path lookup

void OverlayNode::request_path(StreamId stream) {
  if (path_request_sent_.count(stream) != 0) return;  // lookup in flight
  const sim::NodeId svc =
      path_service_ != sim::kNoNode ? path_service_ : brain_;
  if (svc == sim::kNoNode) return;
  const std::uint64_t id = next_request_id_++;
  pending_path_reqs_[id] = stream;
  path_request_sent_[stream] = net_->loop()->now();
  auto req = sim::make_message<PathRequest>();
  req->request_id = id;
  req->stream_id = stream;
  req->consumer = node_id();
  net_->send(node_id(), svc, std::move(req));

  // A request (or its response) lost on the wire — a controller outage,
  // a flapping link — would otherwise wedge the stream forever: the
  // in-flight guard above dedupes every later attempt against a lookup
  // that can no longer complete. Time the request out and retry while
  // anything still wants the stream.
  net_->loop()->schedule_after(cfg_.path_request_timeout, [this, id, stream] {
    const auto idit = pending_path_reqs_.find(id);
    if (idit == pending_path_reqs_.end() || idit->second != stream) {
      return;  // answered (or wiped by a crash) in the meantime
    }
    pending_path_reqs_.erase(idit);
    path_request_sent_.erase(stream);
    if (!stream_still_wanted(stream)) return;
    request_path(stream);
  });
}

bool OverlayNode::stream_still_wanted(StreamId stream) const {
  if (pending_views_.count(stream) != 0 ||
      pending_switch_.count(stream) != 0 ||
      pending_costream_.count(stream) != 0) {
    return true;
  }
  const StreamFib::Entry* e = fib_.find(stream);
  return e != nullptr && !e->locally_produced && e->has_subscribers() &&
         e->upstream == sim::kNoNode;
}

void OverlayNode::handle_path_response(const PathResponse& resp) {
  const auto idit = pending_path_reqs_.find(resp.request_id);
  if (idit == pending_path_reqs_.end()) return;
  const StreamId stream = idit->second;
  pending_path_reqs_.erase(idit);

  Duration rtt = kNever;
  const auto sentit = path_request_sent_.find(stream);
  if (sentit != path_request_sent_.end()) {
    rtt = net_->loop()->now() - sentit->second;
    path_request_sent_.erase(sentit);
  }

  auto& st = stream_state(stream);
  auto pvit = pending_views_.find(stream);

  if (resp.paths.empty()) {
    // No viable path: fail all waiting views.
    if (pvit != pending_views_.end()) {
      for (auto& pv : pvit->second) {
        pv.session->failed = true;
        pv.session->path_response_rtt = rtt;
        auto ack = sim::make_message<ViewAck>();
        ack->stream_id = stream;
        ack->ok = false;
        net_->send(node_id(), pv.client, std::move(ack));
      }
      pending_views_.erase(pvit);
    }
    maybe_release_stream(stream);
    return;
  }

  st.cached_paths = resp.paths;
  st.paths_fetched = net_->loop()->now();
  st.next_backup = 1;

  // A quality-triggered switch was waiting for fresh candidates; the
  // new best path (index 0) is considered too.
  if (pending_switch_.erase(stream) != 0) {
    st.next_backup = 0;
    st.last_switch = kNever;  // the cooldown was consumed pre-lookup
    switch_path(stream);
    if (pending_switch_.count(stream) != 0 && !st.cached_paths.empty()) {
      // Even the refreshed candidates all funnel through the current
      // upstream, so switch_path skipped every one of them. If the feed
      // died because that hop lost its state (crash + restart), only a
      // re-subscription through it can revive the stream — re-establish
      // over the best path; a healthy upstream treats it as a refresh.
      pending_switch_.erase(stream);
      st.last_switch = net_->loop()->now();
      establish_via_path(stream, st.cached_paths.front());
    }
  }

  if (pvit != pending_views_.end()) {
    for (auto& pv : pvit->second) {
      pv.session->path_response_rtt = rtt;
      pv.session->last_resort = resp.last_resort;
      attach_client(pv.client, stream, pv.session);
    }
    pending_views_.erase(pvit);
  }
  if (!carries_stream(stream) && !st.establishing) {
    try_establish(stream);
  }
}

void OverlayNode::handle_path_push(const PathPush& push) {
  auto& st = stream_state(push.stream_id);
  st.cached_paths = push.paths;
  st.paths_fetched = net_->loop()->now();
  st.next_backup = 1;
}

bool OverlayNode::paths_fresh(const StreamState& st) const {
  return st.paths_fetched != kNever &&
         net_->loop()->now() - st.paths_fetched <= cfg_.path_cache_ttl;
}

// --------------------------------------------------------- establishment

bool OverlayNode::try_establish(StreamId stream) {
  auto& st = stream_state(stream);
  if (!paths_fresh(st) || st.cached_paths.empty()) return false;
  establish_via_path(stream, st.cached_paths.front());
  return true;
}

void OverlayNode::establish_via_path(StreamId stream, const Path& path) {
  if (path.size() < 2) {
    // 0-length path: this node is the producer; nothing to establish.
    return;
  }
  if (path.back() != node_id()) {
    LIVENET_LOG(kWarn) << "node " << node_id()
                       << ": path does not end here: " << to_string(path);
    return;
  }
  auto& entry = fib_.entry(stream);
  auto& st = stream_state(stream);
  const NodeId upstream = path[path.size() - 2];
  entry.upstream = upstream;
  st.establishing = true;

  auto req = sim::make_message<SubscribeRequest>();
  req->stream_id = stream;
  // Remaining reverse route for the upstream hop: next hops toward the
  // producer, nearest first.
  for (std::size_t i = path.size() - 2; i-- > 0;) {
    req->remaining_reverse_path.push_back(path[i]);
  }
  net_->send(node_id(), upstream, std::move(req));
}

void OverlayNode::handle_subscribe(NodeId from, const SubscribeRequest& req) {
  fib_.add_node_subscriber(req.stream_id, from);
  sender_for(from);  // make sure the hop sender exists

  auto& entry = fib_.entry(req.stream_id);
  const bool anchored = entry.locally_produced ||
                        entry.upstream != sim::kNoNode;

  auto ack = sim::make_message<SubscribeAck>();
  ack->stream_id = req.stream_id;
  ack->ok = true;

  if (anchored) {
    // Cache hit (§4.4): stop backtracking; serve from here. This is the
    // source of the long-chain problem when our own upstream chain is
    // longer than the path the Brain returned to the requester.
    ack->cache_hit = !entry.locally_produced;
    net_->send(node_id(), from, std::move(ack));

    // Burst cached content so the downstream node fills its GoP cache.
    if (packet_cache_.has_content(req.stream_id)) {
      LinkSender& snd = sender_for(from);
      const Time now = net_->loop()->now();
      for (const auto& pkt : packet_cache_.startup_packets(req.stream_id)) {
        auto clone = pkt->fork();
        clone->cdn_ingress_time = kNever;  // cached: not a path-delay sample
        clone->cdn_hops = static_cast<std::uint8_t>(pkt->cdn_hops + 1);
        egress_meter_.add(now, clone->wire_size());
        telemetry::handles().cache_hits->add();
        telemetry::record_hop(pkt->trace_id(), now, pkt->stream_id(),
                              pkt->producer_seq(), node_id(), from,
                              telemetry::HopEvent::kCacheHit);
        snd.send_media(std::move(clone));
      }
    }
    return;
  }

  // Not carrying the stream: continue backtracking toward the producer.
  if (req.remaining_reverse_path.empty()) {
    ack->ok = false;
    net_->send(node_id(), from, std::move(ack));
    fib_.remove_node_subscriber(req.stream_id, from);
    maybe_release_stream(req.stream_id);
    return;
  }
  net_->send(node_id(), from, std::move(ack));

  auto& st = stream_state(req.stream_id);
  const NodeId upstream = req.remaining_reverse_path.front();
  entry.upstream = upstream;
  st.establishing = true;
  auto fwd = sim::make_message<SubscribeRequest>();
  fwd->stream_id = req.stream_id;
  fwd->remaining_reverse_path.assign(req.remaining_reverse_path.begin() + 1,
                                     req.remaining_reverse_path.end());
  net_->send(node_id(), upstream, std::move(fwd));
}

void OverlayNode::handle_subscribe_ack(NodeId from, const SubscribeAck& ack) {
  (void)from;
  auto& st = stream_state(ack.stream_id);
  st.establishing = false;
  if (!ack.ok) {
    // Upstream could not anchor the subscription; retry via lookup.
    auto& entry = fib_.entry(ack.stream_id);
    entry.upstream = sim::kNoNode;
    if (fib_.find(ack.stream_id) != nullptr &&
        fib_.find(ack.stream_id)->has_subscribers()) {
      request_path(ack.stream_id);
    }
  }
}

void OverlayNode::handle_unsubscribe(NodeId from,
                                     const UnsubscribeRequest& req) {
  fib_.remove_node_subscriber(req.stream_id, from);
  maybe_release_stream(req.stream_id);
}

void OverlayNode::maybe_release_stream(StreamId stream) {
  const StreamFib::Entry* entry = fib_.find(stream);
  if (entry == nullptr || entry->locally_produced) return;
  if (entry->has_subscribers()) return;

  auto& st = stream_state(stream);
  if (st.linger_timer != sim::kInvalidEvent) return;  // already scheduled
  st.linger_timer = net_->loop()->schedule_after(
      cfg_.unsubscribe_linger, [this, stream] {
        auto stit = streams_.find(stream);
        if (stit != streams_.end()) {
          stit->second.linger_timer = sim::kInvalidEvent;
        }
        const StreamFib::Entry* e = fib_.find(stream);
        if (e == nullptr || e->locally_produced || e->has_subscribers()) {
          return;  // a subscriber came back during the linger window
        }
        release_stream(stream);
      });
}

void OverlayNode::release_stream(StreamId stream) {
  const StreamFib::Entry* entry = fib_.find(stream);
  if (entry != nullptr && entry->upstream != sim::kNoNode) {
    auto unsub = sim::make_message<UnsubscribeRequest>();
    unsub->stream_id = stream;
    net_->send(node_id(), entry->upstream, std::move(unsub));
    const auto rit = receivers_.find(entry->upstream);
    if (rit != receivers_.end()) rit->second->forget_stream(stream);
  }
  for (auto& [peer, snd] : senders_) snd->forget_stream(stream);
  packet_cache_.forget_stream(stream);
  fib_.erase(stream);
  const auto stit = streams_.find(stream);
  if (stit != streams_.end()) {
    if (stit->second.linger_timer != sim::kInvalidEvent) {
      net_->loop()->cancel(stit->second.linger_timer);
    }
    streams_.erase(stit);
  }
  pending_views_.erase(stream);
}

void OverlayNode::switch_path(StreamId stream) {
  auto stit = streams_.find(stream);
  if (stit == streams_.end()) return;
  auto& st = stit->second;
  const StreamFib::Entry* entry = fib_.find(stream);
  if (entry == nullptr || entry->locally_produced) return;

  // Hysteresis: switching tears the stream down and back up; never flap
  // faster than the cooldown.
  const Time now = net_->loop()->now();
  if (st.last_switch != kNever && now - st.last_switch < cfg_.switch_cooldown) {
    return;
  }

  // Find the next backup candidate that actually changes the upstream
  // hop (candidates sharing the bad upstream gain nothing).
  if (paths_fresh(st)) {
    const NodeId old_upstream = entry->upstream;
    while (st.next_backup < st.cached_paths.size()) {
      const Path next = st.cached_paths[st.next_backup++];
      if (next.size() >= 2 && next[next.size() - 2] == old_upstream) {
        continue;
      }
      st.last_switch = now;
      // Make-before-break (§7.1): establish the new path first; the old
      // subscription lingers for a grace period so content never gaps.
      establish_via_path(stream, next);
      if (old_upstream != sim::kNoNode) {
        net_->loop()->schedule_after(3 * kSec, [this, stream, old_upstream] {
          const StreamFib::Entry* e = fib_.find(stream);
          if (e == nullptr || e->upstream == old_upstream) return;
          auto unsub = sim::make_message<UnsubscribeRequest>();
          unsub->stream_id = stream;
          net_->send(node_id(), old_upstream, std::move(unsub));
          const auto rit = receivers_.find(old_upstream);
          if (rit != receivers_.end()) rit->second->forget_stream(stream);
        });
      }
      for (auto& [client, view] : client_views_) {
        if (view.stream == stream && view.session != nullptr) {
          ++view.session->path_switches;
        }
      }
      return;
    }
  }
  // Out of usable candidates: ask the Brain for the current best and
  // complete the switch when the response lands.
  pending_switch_.insert(stream);
  request_path(stream);
}

// ---------------------------------------------------------- node plumbing

LinkSender& OverlayNode::sender_for(NodeId peer) {
  auto it = senders_.find(peer);
  if (it == senders_.end()) {
    it = senders_
             .emplace(peer, std::make_unique<LinkSender>(net_, node_id(),
                                                         peer, cfg_.sender))
             .first;
  }
  return *it->second;
}

LinkReceiver& OverlayNode::receiver_for(NodeId peer) {
  auto it = receivers_.find(peer);
  if (it == receivers_.end()) {
    it = receivers_
             .emplace(peer,
                      std::make_unique<LinkReceiver>(
                          net_, node_id(), peer,
                          [this](const RtpPacketPtr& pkt) {
                            on_slow_path_delivery(pkt);
                          },
                          [this](StreamId stream) {
                            auto stit = streams_.find(stream);
                            if (stit != streams_.end() &&
                                stit->second.framer) {
                              stit->second.framer->on_gap();
                            }
                          },
                          cfg_.receiver))
             .first;
  }
  return *it->second;
}

OverlayNode::StreamState& OverlayNode::stream_state(StreamId s) {
  auto it = streams_.find(s);
  if (it == streams_.end()) {
    it = streams_.emplace(s, StreamState{}).first;
    auto& st = it->second;
    st.gop_cache = media::GopCache(cfg_.frame_cache_gops);
    st.framer = std::make_unique<media::Framer>(
        [this, s](const media::Frame& f) {
          auto stit = streams_.find(s);
          if (stit != streams_.end()) stit->second.gop_cache.add_frame(f);
        });
  }
  return it->second;
}

Duration OverlayNode::half_rtt_to(NodeId peer) const {
  const sim::Link* l = net_->link(node_id(), peer);
  return l != nullptr ? l->base_rtt() / 2 : 0;
}

bool OverlayNode::carries_stream(StreamId s) const {
  const StreamFib::Entry* e = fib_.find(s);
  if (e == nullptr) return false;
  if (e->locally_produced) return true;
  return e->upstream != sim::kNoNode && packet_cache_.has_content(s);
}

const media::GopCache* OverlayNode::gop_cache(StreamId s) const {
  const auto it = streams_.find(s);
  return it != streams_.end() ? &it->second.gop_cache : nullptr;
}

double OverlayNode::node_load() const {
  const double rate_load =
      egress_meter_.rate_bps(net_->loop()->now()) / cfg_.node_capacity_bps;
  const double stream_load = static_cast<double>(fib_.stream_count()) /
                             static_cast<double>(cfg_.max_streams);
  return std::min(1.0, std::max(rate_load, stream_load));
}

// ------------------------------------------------------ discovery reports

void OverlayNode::report_state() {
  report_timer_ = net_->loop()->schedule_after(cfg_.report_interval,
                                               [this] { report_state(); });
  if (brain_ == sim::kNoNode) return;
  if (!rng_seeded_) {
    rng_.reseed(0xD15C0 + static_cast<std::uint64_t>(node_id()));
    rng_seeded_ = true;
  }
  auto report = sim::make_message<NodeStateReport>();
  report->node = node_id();
  report->node_load = node_load();
  report->links.reserve(overlay_peers_.size());
  for (const NodeId peer : overlay_peers_) {
    if (peer == node_id()) continue;
    const sim::Link* l = net_->link(node_id(), peer);
    if (l == nullptr) continue;
    LinkReport lr;
    lr.to = peer;
    // §4.2: links that carried traffic recently report transport-layer
    // statistics (near ground truth); idle links are actively probed
    // with a few UDP-ping packets, a noisier estimate.
    lr.actively_measured = l->stats().packets_sent == 0;
    const double rtt_noise =
        lr.actively_measured ? rng_.uniform(0.95, 1.08) : 1.0;
    lr.rtt = static_cast<Duration>(
        static_cast<double>(l->base_rtt()) * rtt_noise);
    // A few-packet ping cannot observe sub-percent loss at all. Loaded
    // links report what the wire currently does to packets — including
    // any injected degradation — not the nominal configuration.
    lr.loss_rate = lr.actively_measured ? 0.0 : l->effective_loss_rate();
    lr.utilization = l->utilization();
    report->links.push_back(lr);
  }
  net_->send(node_id(), brain_, std::move(report));
}

void OverlayNode::check_overload() {
  overload_timer_ = net_->loop()->schedule_after(
      cfg_.overload_check_interval, [this] { check_overload(); });
  if (brain_ == sim::kNoNode) return;

  const double load = node_load();
  std::vector<NodeId> hot_links;
  for (const NodeId peer : overlay_peers_) {
    if (peer == node_id()) continue;
    const sim::Link* l = net_->link(node_id(), peer);
    if (l != nullptr && l->utilization() >= cfg_.overload_threshold) {
      hot_links.push_back(peer);
    }
  }
  const bool overloaded =
      load >= cfg_.overload_threshold || !hot_links.empty();
  if (overloaded && !overload_alarm_active_) {
    overload_alarm_active_ = true;
    auto alarm = sim::make_message<OverloadAlarm>();
    alarm->node = node_id();
    alarm->node_load = load;
    alarm->overloaded_links = std::move(hot_links);
    net_->send(node_id(), brain_, std::move(alarm));
  } else if (!overloaded && load < 0.9 * cfg_.overload_threshold) {
    overload_alarm_active_ = false;  // hysteresis re-arm
  }
}

}  // namespace livenet::overlay
