#include "overlay/overlay_node.h"

#include "telemetry/trace.h"
#include "util/logging.h"

namespace livenet::overlay {

using media::RtpPacket;
using media::RtpPacketPtr;
using media::StreamId;
using sim::NodeId;

OverlayNode::OverlayNode(sim::Network* net, OverlayMetrics* metrics,
                         const OverlayNodeConfig& cfg)
    : net_(net),
      metrics_(metrics),
      cfg_(cfg),
      senders_(net, this, cfg_.sender),
      recovery_(net, this,
                RecoveryEngine::Config{cfg_.receiver, cfg_.packet_cache_gops,
                                       cfg_.packet_cache_max_packets,
                                       /*telemetry=*/true,
                                       cfg_.multi_supplier_rtx}),
      forwarding_(&cfg_, &env_, &senders_),
      session_(net, this, metrics,
               SessionConfig{cfg_.fast_proc_delay, cfg_.switch_stall_threshold,
                             cfg_.switch_skip_threshold,
                             /*downgrade_pressure_packets=*/150,
                             /*eager_view_state=*/true},
               &streams_),
      control_(&cfg_, &env_, &streams_, &senders_, &recovery_, &session_,
               &forwarding_) {
  env_.net = net;
  env_.owner = this;
  wire_engines();
}

void OverlayNode::wire_engines() {
  forwarding_.set_session(&session_);
  session_.wire_data_plane(&senders_, &recovery_,
                           &forwarding_.egress_meter());
  SessionLayer::Hooks hooks;
  hooks.carries_stream = [this](StreamId s) {
    return control_.carries_stream(s);
  };
  hooks.maybe_release = [this](StreamId s) { control_.maybe_release_stream(s); };
  hooks.want_stream = [this](StreamId s) { control_.request_path(s); };
  hooks.acquire_local = [this](StreamId s) {
    return control_.acquire_for_view(s);
  };
  hooks.want_stream_for_switch = [this](StreamId s) {
    control_.fetch_for_switch(s);
  };
  hooks.quality_switch = [this](StreamId s) { control_.switch_path(s); };
  hooks.downstream_mask_changed = [this](StreamId s) {
    control_.update_upstream_mask(s);
  };
  session_.set_hooks(std::move(hooks));

  recovery_.set_hooks(
      [this](const RtpPacketPtr& pkt) { on_slow_path_delivery(pkt); },
      [this](StreamId stream) {
        StreamContext* ctx = streams_.find_context(stream);
        if (ctx != nullptr && ctx->framer) ctx->framer->on_gap();
      });
  recovery_.set_supplier_source(
      [this](StreamId s) -> const std::vector<NodeId>* {
        const StreamContext* ctx = streams_.find_context(s);
        return ctx != nullptr ? &ctx->suppliers : nullptr;
      });
}

OverlayNode::~OverlayNode() {
  auto* loop = net_->loop();
  control_.cancel_timers();
  streams_.for_each_context([loop](StreamId, StreamContext& ctx) {
    if (ctx.linger_timer != sim::kInvalidEvent) loop->cancel(ctx.linger_timer);
  });
}

void OverlayNode::set_overlay_peers(std::vector<NodeId> peers) {
  env_.peers = std::move(peers);
  env_.peer_set.clear();
  env_.peer_set.insert(env_.peers.begin(), env_.peers.end());
}

// ----------------------------------------------------------- fault hooks

void OverlayNode::crash() {
  auto* loop = net_->loop();
  control_.crash_reset();
  streams_.for_each_context([loop](StreamId, StreamContext& ctx) {
    if (ctx.linger_timer != sim::kInvalidEvent) loop->cancel(ctx.linger_timer);
  });
  // Everything below is in-memory process state and dies with the
  // process. Downstream nodes notice the silence through their own
  // quality loops and re-route; they are not notified explicitly.
  // (Counters and the egress meter survive, as a node's lifetime
  // totals did before.)
  streams_.clear();
  recovery_.reset();
  forwarding_.reset_fec();
  senders_.clear();
  session_.clear();
}

// --------------------------------------------------------------- dispatch

void OverlayNode::on_message(NodeId from, const sim::MessagePtr& msg) {
  if (const auto rtp = sim::msg_cast<const RtpPacket>(msg)) {
    handle_rtp(from, rtp);
    return;
  }
  if (const auto nack =
          sim::msg_cast<const media::NackMessage>(msg)) {
    LinkSender& snd = senders_.sender_for(from);
    const auto unserved =
        snd.on_nack(nack->stream_id, nack->audio, nack->missing);
    // Paper §3: serve remaining holes from the slow path's cached copy
    // (covers packets this node recovered but never fast-forwarded).
    // Only for overlay peers: client-facing flows use rewritten seq
    // numbers that do not index the cache.
    if (!nack->audio && env_.peer_set.count(from) != 0) {
      const StreamFib::Entry* e = streams_.find(nack->stream_id);
      recovery_.serve_nack_fallback(
          snd, from, nack->stream_id, unserved,
          e != nullptr ? e->node_mask(from) : media::kAllLayers);
    }
    return;
  }
  if (const auto nv = sim::msg_cast<const media::NackVoidMessage>(msg)) {
    // A supplier's answer for holes its mask-filtering created on
    // purpose: convert them to voids on the owning pipeline so the
    // in-order drain stops waiting for an RTX that will never come.
    recovery_.on_void_notice(from, nv->stream_id, nv->audio, nv->voided);
    return;
  }
  if (const auto fb =
          sim::msg_cast<const media::CcFeedbackMessage>(msg)) {
    senders_.sender_for(from).on_cc_feedback(fb->remb_bps, fb->loss_fraction);
    return;
  }
  if (const auto view = sim::msg_cast<const ViewRequest>(msg)) {
    session_.handle_view_request(from, *view);
    return;
  }
  if (const auto stop = sim::msg_cast<const ViewStop>(msg)) {
    session_.handle_view_stop(from, *stop);
    return;
  }
  if (const auto pub = sim::msg_cast<const PublishRequest>(msg)) {
    control_.handle_publish(from, *pub);
    return;
  }
  if (const auto resp = sim::msg_cast<const PathResponse>(msg)) {
    control_.handle_path_response(*resp);
    return;
  }
  if (const auto push = sim::msg_cast<const PathPush>(msg)) {
    control_.handle_path_push(*push);
    return;
  }
  if (const auto sub = sim::msg_cast<const SubscribeRequest>(msg)) {
    control_.handle_subscribe(from, *sub);
    return;
  }
  if (const auto ack = sim::msg_cast<const SubscribeAck>(msg)) {
    control_.handle_subscribe_ack(from, *ack);
    return;
  }
  if (const auto unsub =
          sim::msg_cast<const UnsubscribeRequest>(msg)) {
    control_.handle_unsubscribe(from, *unsub);
    return;
  }
  if (const auto lmu = sim::msg_cast<const LayerMaskUpdate>(msg)) {
    // From a downstream peer: fold into the FIB's node masks; from a
    // viewer: a client-side quality flip handled by the session layer.
    if (env_.peer_set.count(from) != 0) {
      control_.handle_layer_mask_update(from, *lmu);
    } else {
      session_.handle_layer_mask_request(from, *lmu);
    }
    return;
  }
  if (const auto qrep =
          sim::msg_cast<const ClientQualityReport>(msg)) {
    session_.handle_quality_report(from, *qrep);
    return;
  }
  if (const auto pstop = sim::msg_cast<const PublishStop>(msg)) {
    control_.handle_publish_stop(from, *pstop);
    return;
  }
  if (const auto notice =
          sim::msg_cast<const StreamSwitchNotice>(msg)) {
    control_.handle_switch_notice(from, *notice);
    return;
  }
  if (const auto mig = sim::msg_cast<const ProducerMigrate>(msg)) {
    // Arrived from the (re-homed) broadcaster: relay to the Brain.
    if (env_.brain != sim::kNoNode) net_->send(node_id(), env_.brain, mig);
    return;
  }
  if (const auto relay =
          sim::msg_cast<const ProducerRelayInstruction>(msg)) {
    control_.handle_producer_relay(*relay);
    return;
  }
  LIVENET_LOG(kWarn) << "node " << node_id() << ": unhandled "
                     << msg->describe();
}

void OverlayNode::on_message_batch(NodeId from, const sim::MessagePtr* msgs,
                                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    // Bursts are overwhelmingly RTP; probe that once and fall back to
    // the full dispatch ladder for everything else. The context is
    // re-probed per packet: an earlier packet in the burst may create
    // or release the stream's entry.
    if (const auto rtp = sim::msg_cast<const RtpPacket>(msgs[i])) {
      handle_rtp(from, rtp);
    } else {
      on_message(from, msgs[i]);
    }
  }
}

// -------------------------------------------------------------- data path

void OverlayNode::handle_rtp(NodeId from, const RtpPacketPtr& pkt_in) {
  // The single per-packet table probe: the resolved context rides along
  // the whole fast path (the old split maps paid a second FIB probe
  // inside the forwarding step).
  StreamContext* ctx = streams_.find_context(pkt_in->stream_id());
  if (ctx == nullptr || !ctx->fib_active) {
    return;  // late packet for a released stream
  }

  // Parity packets are link-local redundancy: they feed only the slow
  // path's FEC decoder (which may hand reconstructed media back to the
  // receive buffer). They are never forwarded, stamped, or cached.
  if (pkt_in->is_fec_parity()) {
    recovery_.ingest(from, pkt_in);
    return;
  }

  RtpPacketPtr pkt = pkt_in;
  if (pkt->cdn_ingress_time == kNever && ctx->fib.locally_produced) {
    // CDN ingress (producer role): stamp entry time and reset hop count.
    auto stamped = pkt_in->fork();
    stamped->cdn_ingress_time = net_->loop()->now();
    stamped->cdn_hops = 0;
    pkt = std::move(stamped);
    telemetry::record_hop(pkt->trace_id(), net_->loop()->now(),
                          pkt->stream_id(), pkt->producer_seq(), node_id(),
                          from, telemetry::HopEvent::kIngress);
  }

  if (cfg_.fast_path_enabled) {
    forwarding_.fast_forward(from, pkt, ctx);
  }
  recovery_.ingest(from, pkt);
}

void OverlayNode::on_slow_path_delivery(const RtpPacketPtr& pkt) {
  recovery_.cache().add(pkt);
  StreamContext& st = control_.ensure_stream(pkt->stream_id());
  if (st.framer) st.framer->on_packet(*pkt);
  session_.maybe_flip_costream(pkt->stream_id());

  // Views that were queued while a locally-cached path was being
  // established attach as soon as content lands (the lookup-based path
  // attaches via handle_path_response instead).
  session_.flush_pending_attach(pkt->stream_id());

  if (!cfg_.fast_path_enabled) {
    // Ablation mode: forward from the ordered output only.
    const StreamContext* ctx = streams_.find_context(pkt->stream_id());
    const NodeId from = ctx != nullptr && ctx->fib_active
                            ? ctx->fib.upstream
                            : sim::kNoNode;
    forwarding_.fast_forward(from, pkt, ctx);
  }
}

const media::GopCache* OverlayNode::gop_cache(StreamId s) const {
  const StreamContext* ctx = streams_.find_context(s);
  return ctx != nullptr && ctx->has_media() ? &ctx->gop_cache : nullptr;
}

}  // namespace livenet::overlay
