#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "media/framer.h"
#include "media/gop_cache.h"
#include "media/rtp.h"
#include "overlay/frame_dropper.h"
#include "overlay/link_receiver.h"
#include "overlay/link_sender.h"
#include "overlay/messages.h"
#include "overlay/packet_cache.h"
#include "overlay/records.h"
#include "overlay/stream_fib.h"
#include "sim/network.h"
#include "sim/sim_node.h"
#include "transport/gcc.h"
#include "util/rng.h"

// A LiveNet overlay CDN node (paper §3, §5). Every node implements the
// full role set — producer (ingests broadcaster uploads), relay
// (forwards and caches), consumer (serves viewers, runs Algorithm 1 and
// fine-grained stream control) — with the role decided per stream by
// how traffic reaches it, exactly as in the flat-CDN design.
//
// The data plane is the paper's fast/slow path split:
//  * fast path: RTP in -> Stream FIB lookup -> per-subscriber clone ->
//    pacer. No reliability work, no reordering, no caching.
//  * slow path: a copy of the packet enters the per-upstream receive
//    buffer (hole detection -> NACK every 50 ms; GCC receiver feeding
//    rate feedback upstream), is delivered in order to framing, and
//    lands in the GoP caches. Slow-path copies are never forwarded.
namespace livenet::overlay {

struct OverlayNodeConfig {
  /// Ablation switch: when false, packets are forwarded only from the
  /// slow path's ordered output (store-and-forward, like a full-stack
  /// hop) instead of immediately on receipt. Used by the fast/slow-path
  /// ablation benchmark.
  bool fast_path_enabled = true;
  Duration fast_proc_delay = 2 * kMs;  ///< fast-path per-packet processing
  double node_capacity_bps = 2e9;      ///< egress capacity for load calc
  std::size_t max_streams = 1000;      ///< stream-count load normalizer
  double overload_threshold = 0.8;     ///< the paper's 80% target
  Duration report_interval = 60 * kSec;    ///< Global Discovery reports
  Duration overload_check_interval = 5 * kSec;
  Duration unsubscribe_linger = 5 * kSec;  ///< idle time before unsub
  std::size_t packet_cache_gops = 2;
  std::size_t frame_cache_gops = 3;
  std::uint32_t switch_stall_threshold = 2;  ///< stalls/report triggering switch
  std::uint32_t switch_skip_threshold = 8;  ///< frame gaps/report likewise
  Duration path_cache_ttl = 10 * kMin;  ///< pushed/cached path validity
  Duration switch_cooldown = 5 * kSec;  ///< min gap between re-routes
  Duration path_request_timeout = 2 * kSec;  ///< lookup retry (lost request)
  std::size_t packet_cache_max_packets = 4096;  ///< per-stream hard cap
  LinkSender::Config sender;
  LinkReceiver::Config receiver;
};

class OverlayNode final : public sim::SimNode {
 public:
  OverlayNode(sim::Network* net, OverlayMetrics* metrics)
      : OverlayNode(net, metrics, OverlayNodeConfig()) {}
  OverlayNode(sim::Network* net, OverlayMetrics* metrics,
              const OverlayNodeConfig& cfg);
  ~OverlayNode() override;

  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override;

  // ------------------------------------------------------------- wiring

  /// Brain endpoint for registrations / reports / alarms.
  void set_brain(sim::NodeId brain) { brain_ = brain; }

  /// Endpoint serving path lookups: the primary Brain by default, or a
  /// nearby Path Decision replica (§7.1).
  void set_path_service(sim::NodeId svc) { path_service_ = svc; }

  /// The other overlay CDN nodes (for state reports over the mesh).
  void set_overlay_peers(std::vector<sim::NodeId> peers);

  /// Geographic location tag (country index) used by the evaluation.
  void set_location(int country) { country_ = country; }
  int location() const { return country_; }

  /// Starts the periodic Global Discovery reporting loop.
  void start_reporting();

  /// Fault injection: wipes all soft state (streams, FIB, caches,
  /// per-peer pipelines, pending views and lookups) as a process crash
  /// would. The node object stays registered in the network; restart()
  /// brings it back.
  void crash();

  /// Fault injection: restarts a crashed node. It re-registers with the
  /// Brain (state report) and re-learns paths on demand, exactly like a
  /// freshly provisioned node.
  void restart();

  // ----------------------------------------------------------- obervers

  const StreamFib& fib() const { return fib_; }
  double node_load() const;
  std::uint64_t fast_path_forwards() const { return fast_forwards_; }
  std::uint64_t view_requests() const { return view_requests_; }
  const PacketGopCache& packet_cache() const { return packet_cache_; }
  const media::GopCache* gop_cache(media::StreamId s) const;
  const OverlayNodeConfig& config() const { return cfg_; }

  /// Whether this node currently carries the stream (producer or
  /// established subscription).
  bool carries_stream(media::StreamId s) const;

  /// Sender pipeline toward a peer (node or client); nullptr if none.
  const LinkSender* sender_to(sim::NodeId peer) const {
    const auto it = senders_.find(peer);
    return it != senders_.end() ? it->second.get() : nullptr;
  }

 private:
  struct StreamState {
    std::unique_ptr<media::Framer> framer;
    media::GopCache gop_cache;
    bool establishing = false;
    std::vector<Path> cached_paths;  ///< local path cache (lookup or push)
    Time paths_fetched = kNever;
    Time last_switch = kNever;       ///< re-route cooldown
    std::size_t next_backup = 1;     ///< next candidate on quality switch
    sim::EventId linger_timer = sim::kInvalidEvent;
  };

  struct ClientViewState {
    ViewSession* session = nullptr;  ///< owned by OverlayMetrics
    media::StreamId stream = media::kNoStream;
    FrameDropper dropper;
    std::uint32_t stalls_in_window = 0;
    int bad_quality_windows = 0;  ///< consecutive poor quality reports
    std::uint64_t dropper_total_at_report = 0;  ///< for skip discounting
    std::vector<media::StreamId> ladder;  ///< simulcast versions, best first
    std::size_t ladder_pos = 0;
    int pressure_count = 0;  ///< consecutive under-pressure packets

    /// Client-facing RTP seq spaces (video/audio are separate flows).
    /// The consumer rewrites sequence numbers per client so that
    /// proactive frame drops and cache-burst seams do not look like
    /// wire loss to the client's NACK machinery.
    media::Seq next_video_seq = 1;
    media::Seq next_audio_seq = 1;

    media::Seq take_seq(bool audio) {
      return audio ? next_audio_seq++ : next_video_seq++;
    }
  };

  struct PendingView {
    sim::NodeId client = sim::kNoNode;
    ViewSession* session = nullptr;
  };

  // Message handlers.
  void handle_rtp(sim::NodeId from, const media::RtpPacketPtr& pkt);
  void handle_view_request(sim::NodeId client, const ViewRequest& req);
  void handle_view_stop(sim::NodeId client, const ViewStop& msg);
  void handle_publish(sim::NodeId client, const PublishRequest& req);
  void handle_path_response(const PathResponse& resp);
  void handle_path_push(const PathPush& push);
  void handle_subscribe(sim::NodeId from, const SubscribeRequest& req);
  void handle_subscribe_ack(sim::NodeId from, const SubscribeAck& ack);
  void handle_unsubscribe(sim::NodeId from, const UnsubscribeRequest& req);
  void handle_quality_report(sim::NodeId client,
                             const ClientQualityReport& rep);
  void handle_publish_stop(sim::NodeId client, const PublishStop& msg);
  void handle_producer_relay(const ProducerRelayInstruction& msg);
  void handle_switch_notice(sim::NodeId from, const StreamSwitchNotice& msg);

  /// Moves a client to another stream (bitrate downgrade or co-stream
  /// switch), reusing its session record.
  void switch_client_stream(sim::NodeId client, media::StreamId new_stream);

  /// Flips waiting co-stream viewers once a complete GoP of the new
  /// stream is cached.
  void maybe_flip_costream(media::StreamId new_stream);

  // Fast/slow path internals.
  void fast_path_forward(sim::NodeId from, const media::RtpPacketPtr& pkt);
  void slow_path_ingest(sim::NodeId from, const media::RtpPacketPtr& pkt);
  void on_slow_path_delivery(const media::RtpPacketPtr& pkt);
  void send_to_client(sim::NodeId client, ClientViewState& view,
                      const media::RtpPacketPtr& pkt);

  // Control internals.
  void attach_client(sim::NodeId client, media::StreamId stream,
                     ViewSession* session);
  void serve_startup_burst(sim::NodeId client, ClientViewState& view);
  bool try_establish(media::StreamId stream);
  void establish_via_path(media::StreamId stream, const Path& path);
  void request_path(media::StreamId stream);
  bool stream_still_wanted(media::StreamId stream) const;
  void maybe_release_stream(media::StreamId stream);
  void release_stream(media::StreamId stream);
  void switch_path(media::StreamId stream);
  void report_state();
  void check_overload();

  LinkSender& sender_for(sim::NodeId peer);
  LinkReceiver& receiver_for(sim::NodeId peer);
  StreamState& stream_state(media::StreamId s);
  Duration half_rtt_to(sim::NodeId peer) const;
  bool paths_fresh(const StreamState& st) const;

  sim::Network* net_;
  OverlayMetrics* metrics_;
  OverlayNodeConfig cfg_;
  sim::NodeId brain_ = sim::kNoNode;
  sim::NodeId path_service_ = sim::kNoNode;  ///< defaults to brain_
  std::vector<sim::NodeId> overlay_peers_;
  std::unordered_set<sim::NodeId> overlay_peer_set_;
  int country_ = -1;

  StreamFib fib_;
  PacketGopCache packet_cache_;
  std::unordered_map<media::StreamId, StreamState> streams_;
  std::unordered_map<sim::NodeId, std::unique_ptr<LinkSender>> senders_;
  std::unordered_map<sim::NodeId, std::unique_ptr<LinkReceiver>> receivers_;
  std::unordered_map<sim::NodeId, ClientViewState> client_views_;
  std::unordered_map<media::StreamId, std::vector<PendingView>>
      pending_views_;
  std::unordered_map<std::uint64_t, media::StreamId> pending_path_reqs_;
  std::unordered_map<media::StreamId, Time> path_request_sent_;
  std::unordered_map<media::StreamId, media::StreamId> pending_costream_;
  std::unordered_set<media::StreamId> pending_switch_;
  std::uint32_t downgrade_pressure_packets_ = 150;  ///< ~1.5 s of video

  transport::RateMeter egress_meter_{1 * kSec};
  Rng rng_{0xD15C0};  ///< reseeded per node id on first report
  bool rng_seeded_ = false;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t fast_forwards_ = 0;
  std::uint64_t view_requests_ = 0;
  sim::EventId report_timer_ = sim::kInvalidEvent;
  sim::EventId overload_timer_ = sim::kInvalidEvent;
  bool overload_alarm_active_ = false;
};

}  // namespace livenet::overlay
