#pragma once

#include <vector>

#include "media/gop_cache.h"
#include "media/rtp.h"
#include "overlay/control_agent.h"
#include "overlay/forwarding_engine.h"
#include "overlay/link_receiver.h"
#include "overlay/link_sender.h"
#include "overlay/messages.h"
#include "overlay/node_env.h"
#include "overlay/packet_cache.h"
#include "overlay/peer_senders.h"
#include "overlay/records.h"
#include "overlay/recovery_engine.h"
#include "overlay/session_layer.h"
#include "overlay/stream_context.h"
#include "sim/network.h"
#include "sim/sim_node.h"

// A LiveNet overlay CDN node (paper §3, §5). Every node implements the
// full role set — producer (ingests broadcaster uploads), relay
// (forwards and caches), consumer (serves viewers, runs Algorithm 1 and
// fine-grained stream control) — with the role decided per stream by
// how traffic reaches it, exactly as in the flat-CDN design.
//
// OverlayNode itself is a thin façade: it owns the wiring and the
// message dispatch, and delegates to four collaborating layers (see
// DESIGN.md "Node architecture"):
//  * ForwardingEngine — the fast path: RTP in -> one StreamContext
//    probe -> per-subscriber clone -> pacer.
//  * RecoveryEngine — the slow path: per-upstream receive buffers
//    (hole detection -> NACK every 50 ms; GCC receiver feedback),
//    packet-granularity GoP cache, retransmit serving.
//  * ControlAgent — the Brain protocol and timers: path lookups,
//    subscriptions, path switches, stream lifecycle, state reports.
//  * SessionLayer — client views, startup bursts, the simulcast
//    ladder, quality-driven switching, per-client seq rewrite.
// All per-stream state lives in one StreamContext per stream, behind
// the single StreamTable lookup the engines share.
namespace livenet::overlay {

struct OverlayNodeConfig {
  /// Ablation switch: when false, packets are forwarded only from the
  /// slow path's ordered output (store-and-forward, like a full-stack
  /// hop) instead of immediately on receipt. Used by the fast/slow-path
  /// ablation benchmark.
  bool fast_path_enabled = true;
  Duration fast_proc_delay = 2 * kMs;  ///< fast-path per-packet processing
  double node_capacity_bps = 2e9;      ///< egress capacity for load calc
  std::size_t max_streams = 1000;      ///< stream-count load normalizer
  double overload_threshold = 0.8;     ///< the paper's 80% target
  Duration report_interval = 60 * kSec;    ///< Global Discovery reports
  Duration overload_check_interval = 5 * kSec;
  Duration unsubscribe_linger = 5 * kSec;  ///< idle time before unsub
  std::size_t packet_cache_gops = 2;
  std::size_t frame_cache_gops = 3;
  std::uint32_t switch_stall_threshold = 2;  ///< stalls/report triggering switch
  std::uint32_t switch_skip_threshold = 8;  ///< frame gaps/report likewise
  Duration path_cache_ttl = 10 * kMin;  ///< pushed/cached path validity
  Duration switch_cooldown = 5 * kSec;  ///< min gap between re-routes
  Duration path_request_timeout = 2 * kSec;  ///< lookup retry (lost request)
  std::size_t packet_cache_max_packets = 4096;  ///< per-stream hard cap
  LinkSender::Config sender;
  LinkReceiver::Config receiver;

  // ---- Loss-recovery tier (all default-off: byte-identical legacy
  // ---- behaviour until a scenario opts in). ----
  /// Fixed FEC probe rate: fraction of parity groups actually emitted
  /// per (stream, link). 0 = FEC off; 1 = one parity packet per
  /// fec_group_packets media packets.
  double fec_rate = 0.0;
  /// Adaptive probe rate driven by the link's last reported loss
  /// fraction (>=2% loss -> 1.0, >0 -> 0.5, 0 -> 0). Overrides
  /// fec_rate when set.
  bool fec_adaptive = false;
  std::uint32_t fec_group_packets = 10;  ///< K media packets per parity
  /// Parity bandwidth clamp: parity output on a link may not exceed
  /// this fraction of the link's current pacing rate.
  double fec_budget_fraction = 0.05;
  /// Multi-supplier RTX: race NACKs to the lowest-RTT established
  /// supplier with staggered fallback to the next.
  bool multi_supplier_rtx = false;
  /// Extra standby (RTX-only) suppliers the control agent subscribes
  /// beyond the primary upstream. A standby registers this node as an
  /// RTX-only subscriber: it pulls + caches the stream itself (so its
  /// GoP cache can answer) but sends no media fan-out here.
  std::uint32_t standby_suppliers = 0;
};

class OverlayNode final : public sim::SimNode {
 public:
  OverlayNode(sim::Network* net, OverlayMetrics* metrics)
      : OverlayNode(net, metrics, OverlayNodeConfig()) {}
  OverlayNode(sim::Network* net, OverlayMetrics* metrics,
              const OverlayNodeConfig& cfg);
  ~OverlayNode() override;

  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override;

  /// Batched delivery: media bursts skip the full dispatch ladder (RTP
  /// is checked first and dominates a burst); the ForwardingEngine then
  /// fuses their deferred fan-outs into one event per burst.
  void on_message_batch(sim::NodeId from, const sim::MessagePtr* msgs,
                        std::size_t n) override;

  // ------------------------------------------------------------- wiring

  /// Brain endpoint for registrations / reports / alarms.
  void set_brain(sim::NodeId brain) { env_.brain = brain; }

  /// Endpoint serving path lookups: the primary Brain by default, or a
  /// nearby Path Decision replica (§7.1).
  void set_path_service(sim::NodeId svc) { env_.path_service = svc; }

  /// The other overlay CDN nodes (for state reports over the mesh).
  void set_overlay_peers(std::vector<sim::NodeId> peers);

  /// Geographic location tag (country index) used by the evaluation.
  void set_location(int country) { env_.country = country; }
  int location() const { return env_.country; }

  /// Starts the periodic Global Discovery reporting loop.
  void start_reporting() { control_.start_reporting(); }

  /// Fault injection: wipes all soft state (stream contexts incl. the
  /// FIB, caches, per-peer pipelines, client views, pending views and
  /// lookups) as a process crash would. The node object stays
  /// registered in the network; restart() brings it back.
  void crash();

  /// Fault injection: restarts a crashed node. It re-registers with the
  /// Brain (state report) and re-learns paths on demand, exactly like a
  /// freshly provisioned node.
  void restart() { control_.start_reporting(); }

  // ----------------------------------------------------------- observers

  /// FIB view of the stream table (find/contains/stream_count see only
  /// streams with an active forwarding entry).
  const StreamTable& fib() const { return streams_; }
  double node_load() const { return control_.node_load(); }
  std::uint64_t fast_path_forwards() const {
    return forwarding_.fast_forwards();
  }
  std::uint64_t view_requests() const { return session_.view_requests(); }
  const PacketGopCache& packet_cache() const { return recovery_.cache(); }
  const media::GopCache* gop_cache(media::StreamId s) const;
  const OverlayNodeConfig& config() const { return cfg_; }

  /// Whether this node currently carries the stream (producer or
  /// established subscription).
  bool carries_stream(media::StreamId s) const {
    return control_.carries_stream(s);
  }

  /// Sender pipeline toward a peer (node or client); nullptr if none.
  const LinkSender* sender_to(sim::NodeId peer) const {
    return senders_.find(peer);
  }

 private:
  void handle_rtp(sim::NodeId from, const media::RtpPacketPtr& pkt);
  void on_slow_path_delivery(const media::RtpPacketPtr& pkt);
  void wire_engines();

  sim::Network* net_;
  OverlayMetrics* metrics_;
  OverlayNodeConfig cfg_;
  NodeEnv env_;

  StreamTable streams_;
  PeerSenders senders_;
  RecoveryEngine recovery_;
  ForwardingEngine forwarding_;
  SessionLayer session_;
  ControlAgent control_;
};

}  // namespace livenet::overlay
