#include "overlay/packet_cache.h"

#include <algorithm>

namespace livenet::overlay {

void PacketGopCache::add(const media::RtpPacketPtr& pkt) {
  if (pkt->is_audio()) return;  // only video is GoP-cached
  auto& sc = streams_[pkt->stream_id];
  if (pkt->is_keyframe_packet() && pkt->frag_index == 0) {
    sc.keyframe_starts.push_back(sc.packets.size());
  }
  sc.packets.push_back(pkt);
  prune(sc);
}

void PacketGopCache::prune(StreamCache& sc) {
  while (sc.keyframe_starts.size() > max_gops_) {
    // Drop everything before the second-oldest keyframe boundary.
    sc.keyframe_starts.pop_front();
    const std::size_t cut = sc.keyframe_starts.front();
    sc.packets.erase(sc.packets.begin(),
                     sc.packets.begin() + static_cast<std::ptrdiff_t>(cut));
    for (auto& idx : sc.keyframe_starts) idx -= cut;
  }
}

bool PacketGopCache::has_content(media::StreamId stream) const {
  const auto it = streams_.find(stream);
  return it != streams_.end() && !it->second.keyframe_starts.empty();
}

std::vector<media::RtpPacketPtr> PacketGopCache::startup_packets(
    media::StreamId stream) const {
  const auto it = streams_.find(stream);
  if (it == streams_.end() || it->second.keyframe_starts.empty()) return {};
  const auto& sc = it->second;
  const std::size_t start = sc.keyframe_starts.back();
  return {sc.packets.begin() + static_cast<std::ptrdiff_t>(start),
          sc.packets.end()};
}

media::RtpPacketPtr PacketGopCache::find_packet(media::StreamId stream,
                                                media::Seq seq) const {
  const auto it = streams_.find(stream);
  if (it == streams_.end()) return nullptr;
  const auto& pkts = it->second.packets;
  const auto pit = std::lower_bound(
      pkts.begin(), pkts.end(), seq,
      [](const media::RtpPacketPtr& p, media::Seq s) { return p->seq < s; });
  if (pit == pkts.end() || (*pit)->seq != seq) return nullptr;
  return *pit;
}

std::size_t PacketGopCache::cached_packets(media::StreamId stream) const {
  const auto it = streams_.find(stream);
  return it != streams_.end() ? it->second.packets.size() : 0;
}

}  // namespace livenet::overlay
