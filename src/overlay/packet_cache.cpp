#include "overlay/packet_cache.h"

#include <algorithm>

namespace livenet::overlay {

void PacketGopCache::add(const media::RtpPacketPtr& pkt) {
  if (pkt->is_audio()) return;  // only video is GoP-cached
  // Parity is link-local redundancy: serving it in startup bursts would
  // hand a joiner mid-group XOR state it cannot use (and double-count
  // the seq space). Only real media is cached.
  if (pkt->is_fec_parity()) return;
  auto& sc = streams_[pkt->stream_id()];
  const bool boundary = pkt->is_keyframe_packet() && pkt->frag_index() == 0;
  if (sc.packets.empty() || sc.packets.back()->seq < pkt->seq) {
    // Fast path: in-order delivery appends.
    if (boundary) sc.keyframe_starts.push_back(sc.packets.size());
    sc.packets.push_back(pkt);
  } else {
    // Reordered arrival: keep `packets` sorted by seq (find_packet
    // binary-searches it) and drop exact duplicates.
    const auto pit = std::lower_bound(
        sc.packets.begin(), sc.packets.end(), pkt->seq,
        [](const media::RtpPacketPtr& p, media::Seq s) { return p->seq < s; });
    if (pit != sc.packets.end() && (*pit)->seq == pkt->seq) return;
    const auto pos =
        static_cast<std::size_t>(std::distance(sc.packets.begin(), pit));
    sc.packets.insert(pit, pkt);
    for (auto& idx : sc.keyframe_starts) {
      if (idx >= pos) ++idx;
    }
    if (boundary) {
      const auto kit = std::lower_bound(sc.keyframe_starts.begin(),
                                        sc.keyframe_starts.end(), pos);
      sc.keyframe_starts.insert(kit, pos);
    }
  }
  prune(sc);
}

void PacketGopCache::drop_front(StreamCache& sc, std::size_t n) {
  sc.packets.erase(sc.packets.begin(),
                   sc.packets.begin() + static_cast<std::ptrdiff_t>(n));
  while (!sc.keyframe_starts.empty() && sc.keyframe_starts.front() < n) {
    sc.keyframe_starts.pop_front();
  }
  for (auto& idx : sc.keyframe_starts) idx -= n;
}

void PacketGopCache::prune(StreamCache& sc) {
  while (sc.keyframe_starts.size() > max_gops_) {
    // Drop everything before the second-oldest keyframe boundary.
    const std::size_t cut = sc.keyframe_starts[1];
    drop_front(sc, cut);
  }
  // Hard cap, independent of GoP structure: a stream joined mid-GoP may
  // never see a keyframe boundary, so the GoP rule alone cannot bound
  // memory. Evicting from the front keeps the newest content (what
  // startup bursts and NACK repair actually want).
  if (max_packets_ > 0 && sc.packets.size() > max_packets_) {
    drop_front(sc, sc.packets.size() - max_packets_);
  }
}

bool PacketGopCache::has_content(media::StreamId stream) const {
  const auto it = streams_.find(stream);
  return it != streams_.end() && !it->second.keyframe_starts.empty();
}

std::vector<media::RtpPacketPtr> PacketGopCache::startup_packets(
    media::StreamId stream) const {
  const auto it = streams_.find(stream);
  if (it == streams_.end() || it->second.keyframe_starts.empty()) return {};
  const auto& sc = it->second;
  const std::size_t start = sc.keyframe_starts.back();
  return {sc.packets.begin() + static_cast<std::ptrdiff_t>(start),
          sc.packets.end()};
}

media::RtpPacketPtr PacketGopCache::find_packet(media::StreamId stream,
                                                media::Seq seq) const {
  const auto it = streams_.find(stream);
  if (it == streams_.end()) return nullptr;
  const auto& pkts = it->second.packets;
  const auto pit = std::lower_bound(
      pkts.begin(), pkts.end(), seq,
      [](const media::RtpPacketPtr& p, media::Seq s) { return p->seq < s; });
  if (pit == pkts.end() || (*pit)->seq != seq) return nullptr;
  return *pit;
}

std::size_t PacketGopCache::cached_packets(media::StreamId stream) const {
  const auto it = streams_.find(stream);
  return it != streams_.end() ? it->second.packets.size() : 0;
}

}  // namespace livenet::overlay
