#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "media/rtp.h"

// Packet-granularity GoP cache. The frame-level media::GopCache answers
// "what content do we have"; this cache holds the actual RTP packets
// (in seq order, as delivered by the slow path) so that a node can
// burst everything from the latest I-frame boundary to a new subscriber
// — the fast-startup mechanism of §5.1 and the cache-hit response
// during path establishment in §4.4.
namespace livenet::overlay {

class PacketGopCache {
 public:
  /// Keeps packets covering at most `max_gops` GoP boundaries, and never
  /// more than `max_packets` per stream (the hard cap protects against
  /// mid-GoP joins where no keyframe boundary has been cached yet, which
  /// would otherwise grow without bound).
  explicit PacketGopCache(std::size_t max_gops = 2,
                          std::size_t max_packets = 4096)
      : max_gops_(max_gops), max_packets_(max_packets) {}

  /// Adds a packet. Delivery is normally in seq order (slow path), but
  /// reordered arrivals are inserted at their sorted position and exact
  /// duplicates dropped, preserving the invariant find_packet's binary
  /// search depends on.
  void add(const media::RtpPacketPtr& pkt);

  /// True once at least one keyframe boundary is cached for the stream.
  bool has_content(media::StreamId stream) const;

  /// Packets from the newest I-frame start through the newest packet.
  std::vector<media::RtpPacketPtr> startup_packets(
      media::StreamId stream) const;

  /// Looks up a cached packet by sequence number (binary search over
  /// the seq-ordered cache). Serves NACK-recovery fallbacks.
  media::RtpPacketPtr find_packet(media::StreamId stream,
                                  media::Seq seq) const;

  void forget_stream(media::StreamId stream) { streams_.erase(stream); }

  std::size_t cached_packets(media::StreamId stream) const;

 private:
  struct StreamCache {
    std::deque<media::RtpPacketPtr> packets;  // seq order
    std::deque<std::size_t> keyframe_starts;  // indices into packets
  };

  void prune(StreamCache& sc);
  static void drop_front(StreamCache& sc, std::size_t n);

  std::size_t max_gops_;
  std::size_t max_packets_;
  std::unordered_map<media::StreamId, StreamCache> streams_;
};

}  // namespace livenet::overlay
