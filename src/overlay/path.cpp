#include "overlay/path.h"

#include <sstream>

namespace livenet::overlay {

std::string to_string(const Path& p) {
  std::ostringstream ss;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i > 0) ss << "->";
    ss << p[i];
  }
  return ss.str();
}

}  // namespace livenet::overlay
