#pragma once

#include <string>
#include <vector>

#include "sim/message.h"

// Overlay path representation shared by the data plane and the
// Streaming Brain. A path lists the overlay nodes from the producer to
// the consumer, both endpoints included. "Path length" in the paper is
// the hop count, i.e. nodes - 1 (a 0-length path is a single node that
// is both producer and consumer).
namespace livenet::overlay {

using Path = std::vector<sim::NodeId>;

/// Hop count of a path (0 for a single-node path; -1 for an empty one).
inline int path_length(const Path& p) {
  return static_cast<int>(p.size()) - 1;
}

std::string to_string(const Path& p);

}  // namespace livenet::overlay
