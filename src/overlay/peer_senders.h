#pragma once

#include <memory>
#include <unordered_map>

#include "overlay/link_sender.h"
#include "sim/network.h"
#include "sim/sim_node.h"
#include "util/hash_seed.h"

// Per-peer sender pipelines (this node -> peer), shared plumbing for
// the LiveNet ForwardingEngine and the Hier baseline: lazily creates
// one LinkSender per downstream peer (overlay node or client) and
// fans stream-teardown notifications across all of them.
namespace livenet::overlay {

class PeerSenders {
 public:
  /// `owner` provides node_id() lazily — the node is registered with
  /// the network after construction. `cfg` is the default per-hop
  /// transport config; call sites may override per peer at creation
  /// (Hier's bandwidth-adaptive last mile vs TCP-like node hops).
  PeerSenders(sim::Network* net, const sim::SimNode* owner,
              const LinkSender::Config& cfg)
      : net_(net), owner_(owner), cfg_(cfg) {}

  LinkSender& sender_for(sim::NodeId peer) { return sender_for(peer, cfg_); }

  LinkSender& sender_for(sim::NodeId peer, const LinkSender::Config& cfg) {
    auto it = map_.find(peer);
    if (it == map_.end()) {
      it = map_.emplace(peer, std::make_unique<LinkSender>(
                                  net_, owner_->node_id(), peer, cfg))
               .first;
    }
    return *it->second;
  }

  const LinkSender* find(sim::NodeId peer) const {
    const auto it = map_.find(peer);
    return it != map_.end() ? it->second.get() : nullptr;
  }

  /// Drops send history for a released stream on every pipeline.
  /// Iteration order is behaviour-neutral (independent per-sender
  /// state, no events emitted); the map is seed-hashed so the golden
  /// re-run under a different LIVENET_HASH_SEED proves it.
  void forget_stream(media::StreamId stream) {
    for (auto& [peer, snd] : map_) snd->forget_stream(stream);
  }

  void clear() { map_.clear(); }

 private:
  sim::Network* net_;
  const sim::SimNode* owner_;
  LinkSender::Config cfg_;
  std::unordered_map<sim::NodeId, std::unique_ptr<LinkSender>,
                     SeededHash<sim::NodeId>>
      map_;
};

}  // namespace livenet::overlay
