#pragma once

#include <cstdint>
#include <deque>

#include "media/frame.h"
#include "sim/message.h"
#include "util/stats.h"
#include "util/time.h"

// Measurement records produced by the data plane, mirroring the paper's
// evaluation data sources (§6.1): the first source is "logged at CDN
// consumer nodes, where each log corresponds to a stream [view]" with
// path length, CDN path delay, first-packet delay and a local-hit
// indicator. (The client-side QoE log lives in client/records.h; the
// Brain's path-request log lives with the Path Decision module.)
namespace livenet::overlay {

struct ViewSession {
  // Identity.
  media::StreamId stream = media::kNoStream;
  sim::NodeId consumer = sim::kNoNode;
  sim::NodeId client = sim::kNoNode;

  // Consumer-node log fields (paper's first data source).
  Time request_time = kNever;
  bool local_hit = false;    ///< path info already on the node
  bool last_resort = false;  ///< served via a last-resort path
  Time first_packet_time = kNever;
  int path_length = -1;      ///< overlay hops actually traversed (latest)
  OnlineStats cdn_delay_ms;  ///< per-packet ingress->egress delay samples
  Duration path_response_rtt = kNever;  ///< consumer-observed lookup RTT
  int path_switches = 0;     ///< quality-triggered re-routes
  int bitrate_downgrades = 0;  ///< consumer-delegated simulcast switches
  int costream_switches = 0;   ///< seamless co-stream flips
  bool failed = false;
  Time end_time = kNever;

  Duration first_packet_delay() const {
    return (first_packet_time == kNever || request_time == kNever)
               ? kNever
               : first_packet_time - request_time;
  }
};

/// Append-only collector shared by all overlay nodes of one experiment.
/// Deque: records keep stable addresses, so consumer nodes hold a
/// pointer to the session they are updating.
class OverlayMetrics {
 public:
  ViewSession& new_session() { return sessions_.emplace_back(); }
  const std::deque<ViewSession>& sessions() const { return sessions_; }
  std::deque<ViewSession>& sessions() { return sessions_; }

 private:
  std::deque<ViewSession> sessions_;
};

}  // namespace livenet::overlay
