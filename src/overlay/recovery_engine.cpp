#include "overlay/recovery_engine.h"

#include <algorithm>
#include <limits>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace livenet::overlay {

LinkReceiver& RecoveryEngine::receiver_for(sim::NodeId peer) {
  auto it = receivers_.find(peer);
  if (it == receivers_.end()) {
    LinkReceiver::Config rc = cfg_.receiver;
    rc.telemetry = cfg_.telemetry;
    rc.buffer.telemetry = cfg_.telemetry;
    it = receivers_
             .emplace(peer, std::make_unique<LinkReceiver>(
                                net_, owner_->node_id(), peer, deliver_,
                                gap_, rc))
             .first;
    if (cfg_.multi_supplier) {
      LinkReceiver* rx = it->second.get();
      rx->set_nack_route([this, peer](media::StreamId stream, bool audio,
                                      const std::vector<media::Seq>& m) {
        route_nack(peer, stream, audio, m);
      });
    }
  }
  return *it->second;
}

void RecoveryEngine::note_alt_rtx_arrival(
    sim::NodeId from, const media::RtpPacketPtr& pkt) const {
  if (!cfg_.telemetry) return;
  telemetry::record_hop(pkt->trace_id(), net_->loop()->now(),
                        pkt->stream_id(), pkt->producer_seq(), from,
                        owner_->node_id(), telemetry::HopEvent::kAltRtx);
}

Duration RecoveryEngine::rtt_to(sim::NodeId peer) const {
  const sim::Link* l = net_->link(peer, owner_->node_id());
  return l != nullptr ? l->base_rtt()
                      : std::numeric_limits<Duration>::max() / 4;
}

void RecoveryEngine::send_nack_to(sim::NodeId target, sim::NodeId primary,
                                  media::StreamId stream, bool audio,
                                  const std::vector<media::Seq>& seqs) {
  if (target != primary) {
    // The alternate's RTX must land in the primary pipeline whose holes
    // it fills; register redirects before the NACK leaves.
    for (const media::Seq s : seqs) {
      rtx_redirects_[{stream, s}] = primary;
    }
    while (rtx_redirects_.size() > cfg_.max_redirects) {
      rtx_redirects_.erase(rtx_redirects_.begin());
    }
    if (cfg_.telemetry) {
      telemetry::handles().alt_supplier_rtx->add(seqs.size());
    }
  }
  auto nack = sim::make_message<media::NackMessage>();
  nack->stream_id = stream;
  nack->audio = audio;
  nack->missing = seqs;
  net_->send(owner_->node_id(), target, std::move(nack));
}

void RecoveryEngine::route_nack(sim::NodeId primary, media::StreamId stream,
                                bool audio,
                                const std::vector<media::Seq>& missing) {
  const std::vector<sim::NodeId>* sup =
      suppliers_ ? suppliers_(stream) : nullptr;
  if (!cfg_.multi_supplier || sup == nullptr || sup->size() < 2) {
    send_nack_to(primary, primary, stream, audio, missing);
    return;
  }
  // Race to the lowest-RTT supplier; remember the runner-up for the
  // staggered escalation.
  std::vector<sim::NodeId> order(*sup);
  std::sort(order.begin(), order.end(),
            [this](sim::NodeId a, sim::NodeId b) {
              const Duration ra = rtt_to(a), rb = rtt_to(b);
              return ra != rb ? ra < rb : a < b;
            });
  const sim::NodeId best = order.front();
  const sim::NodeId next = order[1];
  send_nack_to(best, primary, stream, audio, missing);

  // Staggered fallback: if the holes survive a best-supplier round trip
  // (plus slack), escalate the survivors to the next supplier.
  const Duration stagger = rtt_to(best) + cfg_.stagger_extra;
  const sim::EventId id = net_->loop()->schedule_after(
      stagger, [this, primary, next, stream, audio, missing] {
        const LinkReceiver* rx = find_receiver(primary);
        if (rx == nullptr) return;
        const std::vector<media::Seq> still =
            rx->missing_subset(stream, audio, missing);
        if (!still.empty()) {
          send_nack_to(next, primary, stream, audio, still);
        }
      });
  stagger_timers_.insert(id);
  // Bound the timer set: drop bookkeeping for long-fired events (the
  // loop ignores cancel() of an already-fired id, so stale entries are
  // harmless but unbounded growth is not).
  if (stagger_timers_.size() > 4096) {
    stagger_timers_.clear();
    stagger_timers_.insert(id);
  }
}

void RecoveryEngine::cancel_staggers() {
  for (const sim::EventId id : stagger_timers_) {
    net_->loop()->cancel(id);
  }
  stagger_timers_.clear();
}

void RecoveryEngine::serve_nack_fallback(
    LinkSender& snd, sim::NodeId to, media::StreamId stream,
    const std::vector<media::Seq>& unserved) {
  for (const media::Seq seq : unserved) {
    const auto cached = packet_cache_.find_packet(stream, seq);
    if (!cached) continue;
    if (cfg_.telemetry) {
      telemetry::handles().cache_hits->add();
      telemetry::record_hop(cached->trace_id(), net_->loop()->now(),
                            cached->stream_id(), cached->producer_seq(),
                            owner_->node_id(), to,
                            telemetry::HopEvent::kCacheHit);
    }
    snd.send_rtx(cached);
  }
}

}  // namespace livenet::overlay
