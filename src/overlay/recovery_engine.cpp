#include "overlay/recovery_engine.h"

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace livenet::overlay {

LinkReceiver& RecoveryEngine::receiver_for(sim::NodeId peer) {
  auto it = receivers_.find(peer);
  if (it == receivers_.end()) {
    it = receivers_
             .emplace(peer, std::make_unique<LinkReceiver>(
                                net_, owner_->node_id(), peer, deliver_,
                                gap_, cfg_.receiver))
             .first;
  }
  return *it->second;
}

void RecoveryEngine::serve_nack_fallback(
    LinkSender& snd, sim::NodeId to, media::StreamId stream,
    const std::vector<media::Seq>& unserved) {
  for (const media::Seq seq : unserved) {
    const auto cached = packet_cache_.find_packet(stream, seq);
    if (!cached) continue;
    if (cfg_.telemetry) {
      telemetry::handles().cache_hits->add();
      telemetry::record_hop(cached->trace_id(), net_->loop()->now(),
                            cached->stream_id(), cached->producer_seq(),
                            owner_->node_id(), to,
                            telemetry::HopEvent::kCacheHit);
    }
    snd.send_rtx(cached);
  }
}

}  // namespace livenet::overlay
