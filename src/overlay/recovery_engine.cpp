#include "overlay/recovery_engine.h"

#include <algorithm>
#include <limits>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace livenet::overlay {

LinkReceiver& RecoveryEngine::receiver_for(sim::NodeId peer) {
  auto it = receivers_.find(peer);
  if (it == receivers_.end()) {
    LinkReceiver::Config rc = cfg_.receiver;
    rc.telemetry = cfg_.telemetry;
    rc.buffer.telemetry = cfg_.telemetry;
    it = receivers_
             .emplace(peer, std::make_unique<LinkReceiver>(
                                net_, owner_->node_id(), peer, deliver_,
                                gap_, rc))
             .first;
    if (cfg_.multi_supplier) {
      LinkReceiver* rx = it->second.get();
      rx->set_nack_route([this, peer](media::StreamId stream, bool audio,
                                      const std::vector<media::Seq>& m) {
        route_nack(peer, stream, audio, m);
      });
    }
  }
  return *it->second;
}

void RecoveryEngine::note_alt_rtx_arrival(
    sim::NodeId from, const media::RtpPacketPtr& pkt) const {
  if (!cfg_.telemetry) return;
  telemetry::record_hop(pkt->trace_id(), net_->loop()->now(),
                        pkt->stream_id(), pkt->producer_seq(), from,
                        owner_->node_id(), telemetry::HopEvent::kAltRtx);
}

Duration RecoveryEngine::rtt_to(sim::NodeId peer) const {
  const sim::Link* l = net_->link(peer, owner_->node_id());
  return l != nullptr ? l->base_rtt()
                      : std::numeric_limits<Duration>::max() / 4;
}

void RecoveryEngine::send_nack_to(sim::NodeId target, sim::NodeId primary,
                                  media::StreamId stream, bool audio,
                                  const std::vector<media::Seq>& seqs) {
  if (target != primary) {
    // The alternate's RTX must land in the primary pipeline whose holes
    // it fills; register redirects before the NACK leaves.
    for (const media::Seq s : seqs) {
      rtx_redirects_[{stream, s}] = primary;
    }
    while (rtx_redirects_.size() > cfg_.max_redirects) {
      rtx_redirects_.erase(rtx_redirects_.begin());
    }
    if (cfg_.telemetry) {
      telemetry::handles().alt_supplier_rtx->add(seqs.size());
    }
  }
  auto nack = sim::make_message<media::NackMessage>();
  nack->stream_id = stream;
  nack->audio = audio;
  nack->missing = seqs;
  net_->send(owner_->node_id(), target, std::move(nack));
}

void RecoveryEngine::route_nack(sim::NodeId primary, media::StreamId stream,
                                bool audio,
                                const std::vector<media::Seq>& missing) {
  const std::vector<sim::NodeId>* sup =
      suppliers_ ? suppliers_(stream) : nullptr;
  if (!cfg_.multi_supplier || sup == nullptr || sup->size() < 2) {
    send_nack_to(primary, primary, stream, audio, missing);
    return;
  }
  // Race to the lowest-RTT supplier; remember the runner-up for the
  // staggered escalation.
  std::vector<sim::NodeId> order(*sup);
  std::sort(order.begin(), order.end(),
            [this](sim::NodeId a, sim::NodeId b) {
              const Duration ra = rtt_to(a), rb = rtt_to(b);
              return ra != rb ? ra < rb : a < b;
            });
  const sim::NodeId best = order.front();
  const sim::NodeId next = order[1];
  send_nack_to(best, primary, stream, audio, missing);

  // Staggered fallback: if the holes survive a best-supplier round trip
  // (plus slack), escalate the survivors to the next supplier.
  const Duration stagger = rtt_to(best) + cfg_.stagger_extra;
  const sim::EventId id = net_->loop()->schedule_after(
      stagger, [this, primary, next, stream, audio, missing] {
        const LinkReceiver* rx = find_receiver(primary);
        if (rx == nullptr) return;
        const std::vector<media::Seq> still =
            rx->missing_subset(stream, audio, missing);
        if (!still.empty()) {
          send_nack_to(next, primary, stream, audio, still);
        }
      });
  stagger_timers_.insert(id);
  // Bound the timer set: drop bookkeeping for long-fired events (the
  // loop ignores cancel() of an already-fired id, so stale entries are
  // harmless but unbounded growth is not).
  if (stagger_timers_.size() > 4096) {
    stagger_timers_.clear();
    stagger_timers_.insert(id);
  }
}

void RecoveryEngine::on_void_notice(sim::NodeId from, media::StreamId stream,
                                    bool audio,
                                    const std::vector<media::Seq>& voided) {
  // Group per owning pipeline: each seq belongs to the pipeline the
  // NACK named (the redirect registered when it was raced to an
  // alternate supplier), defaulting to the notice's sender.
  for (const media::Seq s : voided) {
    sim::NodeId origin = from;
    if (!rtx_redirects_.empty()) {
      const auto it = rtx_redirects_.find({stream, s});
      if (it != rtx_redirects_.end()) {
        origin = it->second;
        rtx_redirects_.erase(it);
      }
    }
    const auto rx = receivers_.find(origin);
    if (rx != receivers_.end()) {
      rx->second->void_seqs(stream, audio, {s});
    }
  }
}

void RecoveryEngine::cancel_staggers() {
  for (const sim::EventId id : stagger_timers_) {
    net_->loop()->cancel(id);
  }
  stagger_timers_.clear();
}

void RecoveryEngine::serve_nack_fallback(
    LinkSender& snd, sim::NodeId to, media::StreamId stream,
    const std::vector<media::Seq>& unserved, media::LayerMask mask) {
  // Collect cache hits first so base-layer holes can be served before
  // enhancement-layer ones (the stable sort is a no-op for non-SVC
  // content, whose packets all sit at layer {0,0}).
  std::vector<media::RtpPacketPtr> hits;
  std::vector<media::Seq> voided;
  hits.reserve(unserved.size());
  for (const media::Seq seq : unserved) {
    auto cached = packet_cache_.find_packet(stream, seq);
    if (!cached) {
      // Not in history, not in cache — but if an ingress pipeline
      // recorded the seq as a void, it was layer-filtered before it
      // ever reached this node: vouch for the void downstream, the
      // relay is the only one who still knows.
      for (const auto& [peer, rx] : receivers_) {
        if (rx->buffer().was_voided(stream, /*audio=*/false, seq)) {
          voided.push_back(seq);
          break;
        }
      }
      continue;
    }
    // Never retransmit a layer the requester's mask filters out: the
    // hole is intentional on that link, not a loss — vouch for the void
    // instead so the requester stops hoping (and NACKing) for it.
    if ((mask & cached->layer_mask_bit()) == 0) {
      voided.push_back(seq);
      continue;
    }
    hits.push_back(std::move(cached));
  }
  if (!voided.empty()) {
    if (cfg_.telemetry) {
      telemetry::handles().svc_nack_voids->add(voided.size());
    }
    auto notice = sim::make_message<media::NackVoidMessage>();
    notice->stream_id = stream;
    notice->audio = false;
    notice->voided = std::move(voided);
    net_->send(owner_->node_id(), to, std::move(notice));
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const media::RtpPacketPtr& a,
                      const media::RtpPacketPtr& b) {
                     return media::layer_bit(a->layer()) <
                            media::layer_bit(b->layer());
                   });
  for (const auto& cached : hits) {
    if (cfg_.telemetry) {
      telemetry::handles().cache_hits->add();
      telemetry::record_hop(cached->trace_id(), net_->loop()->now(),
                            cached->stream_id(), cached->producer_seq(),
                            owner_->node_id(), to,
                            telemetry::HopEvent::kCacheHit);
    }
    snd.send_rtx(cached);
  }
}

}  // namespace livenet::overlay
