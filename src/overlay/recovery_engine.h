#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "overlay/link_receiver.h"
#include "overlay/link_sender.h"
#include "overlay/packet_cache.h"
#include "sim/network.h"
#include "sim/sim_node.h"
#include "util/hash_seed.h"

// Slow-path loss recovery of one node (paper §3): the per-upstream
// receive buffers (ordering, hole detection, NACK emission, GCC
// receiver feedback) and the packet-granularity GoP cache fed by their
// ordered output, plus retransmit serving from that cache when a
// downstream NACK cannot be answered from send history. Shared by the
// LiveNet overlay node and the Hier baseline (Hier runs it with
// telemetry off — its cache hits are not LiveNet data-plane metrics).
namespace livenet::overlay {

class RecoveryEngine {
 public:
  struct Config {
    LinkReceiver::Config receiver;
    std::size_t cache_gops = 2;
    std::size_t cache_max_packets = 4096;
    bool telemetry = true;  ///< record cache-hit counters + trace hops
    /// Multi-supplier RTX (AutoRec-style): route each NACK to the
    /// lowest-RTT established supplier of the stream instead of the
    /// pipeline's own upstream, with a staggered fallback to the next
    /// supplier if the holes survive a round trip. Off = the NACK goes
    /// straight to the upstream peer (bit-identical legacy behaviour).
    bool multi_supplier = false;
    /// Slack added to the best supplier's RTT before escalating to the
    /// next supplier.
    Duration stagger_extra = 20 * kMs;
    /// Bound on outstanding (stream, seq) -> origin-pipeline redirects.
    std::size_t max_redirects = 1024;
  };

  RecoveryEngine(sim::Network* net, const sim::SimNode* owner,
                 const Config& cfg)
      : net_(net),
        owner_(owner),
        cfg_(cfg),
        packet_cache_(cfg.cache_gops, cfg.cache_max_packets) {}

  ~RecoveryEngine() { cancel_staggers(); }

  /// Ordered-delivery and gap upcalls shared by every receiver the
  /// engine creates. Set once at wiring time, before any RTP arrives.
  void set_hooks(LinkReceiver::DeliverFn deliver, LinkReceiver::GapFn gap) {
    deliver_ = std::move(deliver);
    gap_ = std::move(gap);
  }

  /// Supplier lookup for multi-supplier NACK routing: returns the
  /// established upstreams of a stream (nullptr / empty = single
  /// upstream, no racing). Fed by the control agent's StreamContext.
  using SupplierFn =
      std::function<const std::vector<sim::NodeId>*(media::StreamId)>;
  void set_supplier_source(SupplierFn fn) { suppliers_ = std::move(fn); }

  /// Slow-path ingress: a copy of every received packet enters the
  /// per-upstream receive pipeline. A retransmission served by an
  /// alternate supplier is redirected into the pipeline of the upstream
  /// whose holes it fills — otherwise it would open a phantom seq space
  /// on the alternate's (media-less) pipeline.
  void ingest(sim::NodeId from, const media::RtpPacketPtr& pkt) {
    if (pkt->is_rtx && !rtx_redirects_.empty()) {
      const auto it =
          rtx_redirects_.find({pkt->stream_id(), pkt->producer_seq()});
      if (it != rtx_redirects_.end()) {
        const sim::NodeId origin = it->second;
        rtx_redirects_.erase(it);
        note_alt_rtx_arrival(from, pkt);
        receiver_for(origin).on_rtp(pkt);
        return;
      }
    }
    receiver_for(from).on_rtp(pkt);
  }

  /// Multi-supplier NACK routing (installed as every receiver's
  /// NackRouteFn when cfg.multi_supplier): race the NACK to the
  /// lowest-RTT supplier, schedule a staggered re-check that escalates
  /// surviving holes to the next-best supplier.
  void route_nack(sim::NodeId primary, media::StreamId stream, bool audio,
                  const std::vector<media::Seq>& missing);

  LinkReceiver& receiver_for(sim::NodeId peer);
  const LinkReceiver* find_receiver(sim::NodeId peer) const {
    const auto it = receivers_.find(peer);
    return it != receivers_.end() ? it->second.get() : nullptr;
  }

  PacketGopCache& cache() { return packet_cache_; }
  const PacketGopCache& cache() const { return packet_cache_; }

  /// Serves NACKed seqs the sender's history could not answer from the
  /// slow path's cached copy (§3: covers packets this node recovered
  /// but never fast-forwarded). `mask` is the requester's SVC layer
  /// mask: filtered-layer seqs are never served (no stale-layer
  /// resurrection), and base-layer holes are served first. Seqs whose
  /// cached copy the mask excludes are answered with a NackVoid notice
  /// instead — the hole is intentional, and without the answer the
  /// requester's drain would block on it until the NACK give-up.
  void serve_nack_fallback(LinkSender& snd, sim::NodeId to,
                           media::StreamId stream,
                           const std::vector<media::Seq>& unserved,
                           media::LayerMask mask = media::kAllLayers);

  /// A NackVoid answer from a supplier: fold the vouched seqs into the
  /// owning pipeline's void set. Multi-supplier NACKs may have been
  /// raced to an alternate; the redirect table maps each seq back to
  /// the primary pipeline whose hole it names, exactly as RTX arrivals
  /// are redirected in ingest().
  void on_void_notice(sim::NodeId from, media::StreamId stream, bool audio,
                      const std::vector<media::Seq>& voided);

  /// Packets received for `stream` but still blocked behind a recovery
  /// hole at `peer` (startup-burst seam shrinking).
  std::vector<media::RtpPacketPtr> buffered_packets(
      sim::NodeId peer, media::StreamId stream) const {
    const LinkReceiver* rx = find_receiver(peer);
    return rx != nullptr ? rx->buffered_packets(stream)
                         : std::vector<media::RtpPacketPtr>{};
  }

  /// Stream teardown: drop the cached packets and, if an upstream is
  /// named, the receive-buffer state on that pipeline.
  void forget_stream(media::StreamId stream,
                     sim::NodeId upstream = sim::kNoNode) {
    if (upstream != sim::kNoNode) {
      const auto it = receivers_.find(upstream);
      if (it != receivers_.end()) it->second->forget_stream(stream);
    }
    packet_cache_.forget_stream(stream);
  }

  /// Receive-buffer teardown only (make-before-break grace expiry).
  void forget_upstream(sim::NodeId peer, media::StreamId stream) {
    const auto it = receivers_.find(peer);
    if (it != receivers_.end()) it->second->forget_stream(stream);
  }

  /// Crash: all in-memory recovery state dies with the process.
  void reset() {
    cancel_staggers();
    rtx_redirects_.clear();
    receivers_.clear();
    packet_cache_ = PacketGopCache(cfg_.cache_gops, cfg_.cache_max_packets);
  }

 private:
  void cancel_staggers();
  void note_alt_rtx_arrival(sim::NodeId from,
                            const media::RtpPacketPtr& pkt) const;
  void send_nack_to(sim::NodeId target, sim::NodeId primary,
                    media::StreamId stream, bool audio,
                    const std::vector<media::Seq>& seqs);
  Duration rtt_to(sim::NodeId peer) const;

  sim::Network* net_;
  const sim::SimNode* owner_;
  Config cfg_;
  LinkReceiver::DeliverFn deliver_;
  LinkReceiver::GapFn gap_;
  SupplierFn suppliers_;
  PacketGopCache packet_cache_;
  std::unordered_map<sim::NodeId, std::unique_ptr<LinkReceiver>,
                     SeededHash<sim::NodeId>>
      receivers_;
  /// (stream, producer seq) -> pipeline (upstream peer) whose hole an
  /// alternate supplier's RTX fills. FIFO-bounded at max_redirects.
  std::map<std::pair<media::StreamId, media::Seq>, sim::NodeId>
      rtx_redirects_;
  std::unordered_set<sim::EventId> stagger_timers_;
};

}  // namespace livenet::overlay
