#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "overlay/link_receiver.h"
#include "overlay/link_sender.h"
#include "overlay/packet_cache.h"
#include "sim/network.h"
#include "sim/sim_node.h"
#include "util/hash_seed.h"

// Slow-path loss recovery of one node (paper §3): the per-upstream
// receive buffers (ordering, hole detection, NACK emission, GCC
// receiver feedback) and the packet-granularity GoP cache fed by their
// ordered output, plus retransmit serving from that cache when a
// downstream NACK cannot be answered from send history. Shared by the
// LiveNet overlay node and the Hier baseline (Hier runs it with
// telemetry off — its cache hits are not LiveNet data-plane metrics).
namespace livenet::overlay {

class RecoveryEngine {
 public:
  struct Config {
    LinkReceiver::Config receiver;
    std::size_t cache_gops = 2;
    std::size_t cache_max_packets = 4096;
    bool telemetry = true;  ///< record cache-hit counters + trace hops
  };

  RecoveryEngine(sim::Network* net, const sim::SimNode* owner,
                 const Config& cfg)
      : net_(net),
        owner_(owner),
        cfg_(cfg),
        packet_cache_(cfg.cache_gops, cfg.cache_max_packets) {}

  /// Ordered-delivery and gap upcalls shared by every receiver the
  /// engine creates. Set once at wiring time, before any RTP arrives.
  void set_hooks(LinkReceiver::DeliverFn deliver, LinkReceiver::GapFn gap) {
    deliver_ = std::move(deliver);
    gap_ = std::move(gap);
  }

  /// Slow-path ingress: a copy of every received packet enters the
  /// per-upstream receive pipeline.
  void ingest(sim::NodeId from, const media::RtpPacketPtr& pkt) {
    receiver_for(from).on_rtp(pkt);
  }

  LinkReceiver& receiver_for(sim::NodeId peer);
  const LinkReceiver* find_receiver(sim::NodeId peer) const {
    const auto it = receivers_.find(peer);
    return it != receivers_.end() ? it->second.get() : nullptr;
  }

  PacketGopCache& cache() { return packet_cache_; }
  const PacketGopCache& cache() const { return packet_cache_; }

  /// Serves NACKed seqs the sender's history could not answer from the
  /// slow path's cached copy (§3: covers packets this node recovered
  /// but never fast-forwarded).
  void serve_nack_fallback(LinkSender& snd, sim::NodeId to,
                           media::StreamId stream,
                           const std::vector<media::Seq>& unserved);

  /// Packets received for `stream` but still blocked behind a recovery
  /// hole at `peer` (startup-burst seam shrinking).
  std::vector<media::RtpPacketPtr> buffered_packets(
      sim::NodeId peer, media::StreamId stream) const {
    const LinkReceiver* rx = find_receiver(peer);
    return rx != nullptr ? rx->buffered_packets(stream)
                         : std::vector<media::RtpPacketPtr>{};
  }

  /// Stream teardown: drop the cached packets and, if an upstream is
  /// named, the receive-buffer state on that pipeline.
  void forget_stream(media::StreamId stream,
                     sim::NodeId upstream = sim::kNoNode) {
    if (upstream != sim::kNoNode) {
      const auto it = receivers_.find(upstream);
      if (it != receivers_.end()) it->second->forget_stream(stream);
    }
    packet_cache_.forget_stream(stream);
  }

  /// Receive-buffer teardown only (make-before-break grace expiry).
  void forget_upstream(sim::NodeId peer, media::StreamId stream) {
    const auto it = receivers_.find(peer);
    if (it != receivers_.end()) it->second->forget_stream(stream);
  }

  /// Crash: all in-memory recovery state dies with the process.
  void reset() {
    receivers_.clear();
    packet_cache_ = PacketGopCache(cfg_.cache_gops, cfg_.cache_max_packets);
  }

 private:
  sim::Network* net_;
  const sim::SimNode* owner_;
  Config cfg_;
  LinkReceiver::DeliverFn deliver_;
  LinkReceiver::GapFn gap_;
  PacketGopCache packet_cache_;
  std::unordered_map<sim::NodeId, std::unique_ptr<LinkReceiver>,
                     SeededHash<sim::NodeId>>
      receivers_;
};

}  // namespace livenet::overlay
