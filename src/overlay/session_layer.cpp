#include "overlay/session_layer.h"

#include "overlay/node_env.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace livenet::overlay {

using media::LayerMask;
using media::RtpPacketPtr;
using media::StreamId;
using sim::NodeId;

namespace {

/// The base layer can never be masked off, and an empty request means
/// "everything".
LayerMask sanitize_mask(LayerMask mask) {
  if (mask == 0) return media::kAllLayers;
  return static_cast<LayerMask>(mask | media::layer_bit(0, 0));
}

}  // namespace

const std::vector<StreamId>* SessionLayer::intern_ladder(
    std::vector<StreamId> ladder) {
  auto it = ladder_table_.find(ladder);
  if (it == ladder_table_.end()) {
    auto copy = std::make_unique<const std::vector<StreamId>>(ladder);
    it = ladder_table_.emplace(std::move(ladder), std::move(copy)).first;
  }
  return it->second.get();
}

void SessionLayer::handle_view_request(NodeId client, const ViewRequest& req) {
  ++view_requests_;
  ViewSession& session = metrics_->new_session();
  session.stream = req.stream_id;
  session.consumer = owner_->node_id();
  session.client = client;
  session.request_time = net_->loop()->now();

  if (cfg_.eager_view_state) {
    // The per-client state is created up front so that the simulcast
    // ladder survives a deferred (pending) attach.
    auto& view = views_[client];
    view.stream = req.stream_id;
    std::vector<StreamId> ladder;
    ladder.reserve(1 + req.fallback_versions.size());
    ladder.push_back(req.stream_id);
    ladder.insert(ladder.end(), req.fallback_versions.begin(),
                  req.fallback_versions.end());
    view.ladder = intern_ladder(std::move(ladder));
    view.ladder_pos = 0;
    view.pressure_count = 0;
    view.layer_mask = sanitize_mask(req.layer_mask);
    view.pending_mask = 0;
    view.pending_since = kNever;
    view.good_windows = 0;
  }

  // Algorithm 1, line 1: already serving or producing this stream (or a
  // valid path is already cached locally) -> local hit.
  if (hooks_.carries_stream(req.stream_id)) {
    session.local_hit = true;
    attach_client(client, req.stream_id, &session);
    return;
  }
  if (hooks_.acquire_local && hooks_.acquire_local(req.stream_id)) {
    // Path info already on the node (pushed or previously fetched).
    session.local_hit = true;
    table_->context(req.stream_id)
        .pending_views.push_back(PendingView{client, &session});
    return;
  }

  // Miss: queue the view and fetch the stream (overlay: look the path
  // up at the Streaming Brain — concurrent requests for the same
  // stream share a single lookup; Hier: subscribe up the tree).
  table_->context(req.stream_id)
      .pending_views.push_back(PendingView{client, &session});
  hooks_.want_stream(req.stream_id);
}

void SessionLayer::attach_client(NodeId client, StreamId stream,
                                 ViewSession* session) {
  auto& view = views_[client];
  // Seamless switch: the client stays on its previous stream until the
  // new one is actually being served; detach the old one only now.
  if (view.stream != media::kNoStream && view.stream != stream) {
    const StreamId old_stream = view.stream;
    table_->remove_client_subscriber(old_stream, client);
    hooks_.maybe_release(old_stream);
    if (hooks_.downstream_mask_changed) {
      hooks_.downstream_mask_changed(old_stream);
    }
  }
  table_->add_client_subscriber(stream, client);
  if (session != nullptr) view.session = session;
  view.stream = stream;
  sync_fib_client_mask(client, view);
  auto ack = sim::make_message<ViewAck>();
  ack->stream_id = stream;
  ack->ok = true;
  net_->send(owner_->node_id(), client, std::move(ack));
  if (hooks_.serve_burst) {
    hooks_.serve_burst(client, view);
  } else {
    serve_startup_burst(client, view);
  }
}

void SessionLayer::serve_startup_burst(NodeId client, ClientViewState& view) {
  auto burst = recovery_->cache().startup_packets(view.stream);
  // Shrink the seam between the cache head and the live stream: packets
  // already received but blocked behind a recovery hole join the burst
  // (the client's jitter buffer tolerates the remaining holes, which
  // upstream retransmission fills via the fast path).
  const StreamFib::Entry* entry = table_->find(view.stream);
  if (entry != nullptr && entry->upstream != sim::kNoNode) {
    for (auto& pkt : recovery_->buffered_packets(entry->upstream,
                                                 view.stream)) {
      burst.push_back(std::move(pkt));
    }
  }
  if (burst.empty()) return;
  LinkSender& snd = senders_->sender_for(client);
  const Time now = net_->loop()->now();
  for (const auto& pkt : burst) {
    // SVC: the burst honours the client's committed mask — a filtered
    // packet is simply not part of this client's flow (no fork).
    if (view.layer_mask != media::kAllLayers &&
        (view.layer_mask & pkt->layer_mask_bit()) == 0) {
      telemetry::handles().layer_filtered->add();
      continue;
    }
    auto clone = pkt->fork();
    // Cached content: exclude from CDN-path-delay sampling (its transit
    // time is dominated by cache residency, not path quality).
    clone->cdn_ingress_time = kNever;
    clone->seq = view.take_seq(clone->is_audio());  // client-facing seq
    egress_meter_->add(now, clone->wire_size());
    telemetry::handles().cache_hits->add();
    telemetry::record_hop(pkt->trace_id(), now, pkt->stream_id(),
                          pkt->producer_seq(), owner_->node_id(), client,
                          telemetry::HopEvent::kCacheHit);
    snd.send_media(std::move(clone));
  }
  if (view.session != nullptr && view.session->first_packet_time == kNever) {
    view.session->first_packet_time = now;
  }
}

void SessionLayer::handle_view_stop(NodeId client, const ViewStop& msg) {
  StreamId current = msg.stream_id;
  const auto it = views_.find(client);
  if (it != views_.end()) {
    if (it->second.session != nullptr) {
      it->second.session->end_time = net_->loop()->now();
    }
    // The consumer may have moved the client to another simulcast
    // version or co-stream; detach whatever is actually being served.
    if (it->second.stream != media::kNoStream) current = it->second.stream;
    views_.erase(it);
  }
  table_->remove_client_subscriber(current, client);
  hooks_.maybe_release(current);
  if (hooks_.downstream_mask_changed) hooks_.downstream_mask_changed(current);
  if (current != msg.stream_id) {
    table_->remove_client_subscriber(msg.stream_id, client);
    hooks_.maybe_release(msg.stream_id);
    if (hooks_.downstream_mask_changed) {
      hooks_.downstream_mask_changed(msg.stream_id);
    }
  }
}

void SessionLayer::handle_quality_report(NodeId client,
                                         const ClientQualityReport& rep) {
  const auto it = views_.find(client);
  if (it == views_.end()) return;
  auto& view = it->second;
  view.stalls_in_window = rep.stalls_since_last;

  // The client cannot tell intentional frame drops (this node's own
  // proactive dropper) from network damage; discount them before using
  // the skip count as a path-quality signal.
  const std::uint64_t dropper_total = view.dropper.total_dropped();
  const std::uint64_t dropped_window =
      dropper_total - view.dropper_total_at_report;
  view.dropper_total_at_report = dropper_total;
  const std::uint32_t net_skips =
      rep.skips_since_last > dropped_window
          ? rep.skips_since_last - static_cast<std::uint32_t>(dropped_window)
          : 0;

  // Poor quality — stalls or unrecoverable network gaps — triggers a
  // switch to an alternative path (§4.4): a burst immediately,
  // sustained degradation after consecutive bad windows.
  const bool bad = rep.stalls_since_last > 0 ||
                   net_skips >= cfg_.switch_skip_threshold;
  view.bad_quality_windows = bad ? view.bad_quality_windows + 1 : 0;
  if (rep.stalls_since_last >= cfg_.switch_stall_threshold ||
      net_skips >= cfg_.switch_skip_threshold ||
      view.bad_quality_windows >= 5) {
    view.bad_quality_windows = 0;
    if (hooks_.quality_switch) hooks_.quality_switch(view.stream);
  }

  // SVC up-switch: after enough consecutive clean windows, request the
  // lowest missing lattice layer back. The widen only *commits* at a
  // decodable anchor (maybe_commit_mask), so this is safe to request
  // optimistically.
  const bool clean = rep.stalls_since_last == 0 && net_skips == 0 &&
                     !view.dropper.under_pressure();
  if (clean && !view.client_driven && (view.svc_s > 1 || view.svc_t > 1)) {
    if (++view.good_windows >= 3) {
      view.good_windows = 0;
      const LayerMask lattice = media::lattice_mask(view.svc_s, view.svc_t);
      const LayerMask have = static_cast<LayerMask>(
          (view.layer_mask | view.pending_mask) & lattice);
      const LayerMask missing = static_cast<LayerMask>(lattice & ~have);
      if (missing != 0) {
        const LayerMask lowest = static_cast<LayerMask>(
            missing & static_cast<LayerMask>(-missing));
        set_client_layer_mask(client, view,
                              static_cast<LayerMask>(have | lowest));
      }
    }
  } else if (!clean) {
    view.good_windows = 0;
  }
}

void SessionLayer::handle_layer_mask_request(NodeId client,
                                             const LayerMaskUpdate& msg) {
  const auto it = views_.find(client);
  if (it == views_.end() || it->second.stream != msg.stream_id) return;
  it->second.client_driven = true;
  set_client_layer_mask(client, it->second, msg.layer_mask);
}

void SessionLayer::set_client_layer_mask(NodeId client, ClientViewState& view,
                                         LayerMask mask) {
  mask = sanitize_mask(mask);
  // Narrowing takes effect immediately: dropping layers can never break
  // decodability. Widening goes pending until a decodable anchor.
  const LayerMask narrowed = static_cast<LayerMask>(view.layer_mask & mask);
  const bool changed = narrowed != view.layer_mask;
  if (changed) {
    view.layer_mask = narrowed;
    telemetry::handles().svc_mask_flips->add();
  }
  const LayerMask widen = static_cast<LayerMask>(mask & ~view.layer_mask);
  if (widen != 0) {
    if (view.pending_mask != mask) {
      view.pending_mask = mask;
      view.pending_since = net_->loop()->now();
    }
  } else if (view.pending_mask != 0) {
    view.pending_mask = 0;
    view.pending_since = kNever;
  }
  sync_fib_client_mask(client, view);
  if (changed) notify_client_mask(client, view);
}

bool SessionLayer::narrow_mask_step(NodeId client, ClientViewState& view) {
  if (view.svc_s <= 1 && view.svc_t <= 1) return false;
  const LayerMask lattice = media::lattice_mask(view.svc_s, view.svc_t);
  const LayerMask base = media::layer_bit(0, 0);
  const LayerMask candidates =
      static_cast<LayerMask>(view.layer_mask & lattice & ~base);
  if (candidates == 0) return false;  // already base-only
  int hi = 15;
  while (((candidates >> hi) & 1u) == 0) --hi;
  view.layer_mask = static_cast<LayerMask>(
      ((view.layer_mask & lattice) & ~(LayerMask{1} << hi)) | base);
  // Pressure overrides any widen in flight.
  view.pending_mask = 0;
  view.pending_since = kNever;
  telemetry::handles().svc_mask_flips->add();
  sync_fib_client_mask(client, view);
  notify_client_mask(client, view);
  return true;
}

void SessionLayer::maybe_commit_mask(NodeId client, ClientViewState& view,
                                     const media::RtpPacket& pkt) {
  if (pkt.is_rtx || pkt.is_audio() || pkt.is_fec_parity()) return;
  const LayerMask target = view.pending_mask;
  const LayerMask widen = static_cast<LayerMask>(target & ~view.layer_mask);
  if (widen == 0) {
    view.pending_mask = 0;
    view.pending_since = kNever;
    return;
  }
  // A new spatial column only decodes from a keyframe; a temporal-only
  // widen decodes from any T0 frame of the layers we already have.
  bool new_spatial = false;
  for (std::uint8_t s = 0; s < media::kMaxSpatialLayers; ++s) {
    const LayerMask col = static_cast<LayerMask>(LayerMask{0xF} << (s * 4));
    if ((widen & col) != 0 && (view.layer_mask & col) == 0) new_spatial = true;
  }
  const bool anchored =
      new_spatial ? pkt.is_keyframe_packet() : pkt.layer().temporal == 0;
  if (!anchored) return;
  view.layer_mask = sanitize_mask(target);
  view.pending_mask = 0;
  auto& h = telemetry::handles();
  h.svc_mask_flips->add();
  if (view.pending_since != kNever) {
    h.svc_upswitch_wait_ms->observe(
        to_ms(net_->loop()->now() - view.pending_since));
  }
  view.pending_since = kNever;
  notify_client_mask(client, view);
}

void SessionLayer::notify_client_mask(NodeId client,
                                      const ClientViewState& view) {
  if (view.stream == media::kNoStream) return;
  auto upd = sim::make_message<LayerMaskUpdate>();
  upd->stream_id = view.stream;
  upd->layer_mask = view.layer_mask;
  net_->send(owner_->node_id(), client, std::move(upd));
}

void SessionLayer::sync_fib_client_mask(NodeId client,
                                        const ClientViewState& view) {
  if (view.stream == media::kNoStream || table_->find(view.stream) == nullptr) {
    return;
  }
  // The FIB carries committed|pending: upstream starts shipping the
  // wanted layers early so the anchor this client is waiting on can
  // actually arrive.
  const LayerMask want =
      view.pending_mask != 0
          ? static_cast<LayerMask>(view.layer_mask | view.pending_mask)
          : view.layer_mask;
  table_->fib_entry(view.stream).set_client_mask(client, want);
  if (hooks_.downstream_mask_changed) hooks_.downstream_mask_changed(view.stream);
}

void SessionLayer::switch_client_stream(NodeId client, StreamId new_stream) {
  auto it = views_.find(client);
  if (it == views_.end()) return;
  const StreamId old_stream = it->second.stream;
  if (old_stream == new_stream) return;

  if (hooks_.carries_stream(new_stream)) {
    // attach_client performs the seamless old->new handover.
    attach_client(client, new_stream, it->second.session);
    return;
  }
  // Fetch the new stream first; the client keeps receiving the old one
  // until content lands (the pending-view attach does the handover).
  table_->context(new_stream)
      .pending_views.push_back(PendingView{client, it->second.session});
  if (hooks_.want_stream_for_switch) hooks_.want_stream_for_switch(new_stream);
}

void SessionLayer::maybe_flip_costream(StreamId new_stream) {
  StreamContext* ctx = table_->find_context(new_stream);
  if (ctx == nullptr || ctx->costream_from == media::kNoStream) return;
  if (recovery_ == nullptr || !recovery_->cache().has_content(new_stream)) {
    return;  // wait for a GoP
  }
  const StreamId old_stream = ctx->costream_from;
  ctx->costream_from = media::kNoStream;

  std::vector<NodeId> to_flip;
  const StreamFib::Entry* old_entry = table_->find(old_stream);
  if (old_entry != nullptr) {
    to_flip.assign(old_entry->subscriber_clients.begin(),
                   old_entry->subscriber_clients.end());
  }
  for (const NodeId c : to_flip) {
    const auto cv = views_.find(c);
    if (cv != views_.end() && cv->second.session != nullptr) {
      ++cv->second.session->costream_switches;
    }
    switch_client_stream(c, new_stream);
  }
}

void SessionLayer::flush_pending_attach(StreamId stream) {
  StreamContext* ctx = table_->find_context(stream);
  if (ctx == nullptr || ctx->pending_views.empty()) return;
  if (!hooks_.carries_stream(stream)) return;
  auto waiting = std::move(ctx->pending_views);
  ctx->pending_views.clear();
  for (auto& pv : waiting) {
    attach_client(pv.client, stream, pv.session);
  }
}

void SessionLayer::fail_pending(StreamId stream, Duration rtt) {
  StreamContext* ctx = table_->find_context(stream);
  if (ctx == nullptr || ctx->pending_views.empty()) return;
  auto waiting = std::move(ctx->pending_views);
  ctx->pending_views.clear();
  for (auto& pv : waiting) {
    pv.session->failed = true;
    pv.session->path_response_rtt = rtt;
    auto ack = sim::make_message<ViewAck>();
    ack->stream_id = stream;
    ack->ok = false;
    net_->send(owner_->node_id(), pv.client, std::move(ack));
  }
}

void SessionLayer::attach_pending(StreamId stream, Duration rtt,
                                  bool last_resort) {
  StreamContext* ctx = table_->find_context(stream);
  if (ctx == nullptr || ctx->pending_views.empty()) return;
  auto waiting = std::move(ctx->pending_views);
  ctx->pending_views.clear();
  for (auto& pv : waiting) {
    pv.session->path_response_rtt = rtt;
    pv.session->last_resort = last_resort;
    attach_client(pv.client, stream, pv.session);
  }
}

void SessionLayer::deliver_to_client(NodeId client, const RtpPacketPtr& pkt) {
  const auto cv = views_.find(client);
  if (cv == views_.end()) return;
  send_to_client(client, cv->second, pkt);
}

void SessionLayer::send_to_client(NodeId client, ClientViewState& view,
                                  const RtpPacketPtr& pkt) {
  LinkSender& snd = senders_->sender_for(client);

  // SVC: latch the stream's lattice shape, commit any pending widen at
  // its decodable anchor, then apply the committed mask. A filtered
  // packet is never forked — the client's seq space skips it entirely,
  // so its NACK machinery never asks for it.
  if (pkt->is_svc() && !pkt->is_audio()) {
    view.svc_s = pkt->spatial_layers();
    view.svc_t = pkt->temporal_layers();
    if (view.pending_mask != 0) maybe_commit_mask(client, view, *pkt);
  }
  if (view.layer_mask != media::kAllLayers &&
      (view.layer_mask & pkt->layer_mask_bit()) == 0) {
    telemetry::handles().layer_filtered->add();
    telemetry::record_hop(pkt->trace_id(), net_->loop()->now(),
                          pkt->stream_id(), pkt->producer_seq(),
                          owner_->node_id(), client,
                          telemetry::HopEvent::kDrop,
                          telemetry::DropReason::kLayerFiltered);
    return;
  }

  const telemetry::DropReason drop_reason =
      view.dropper.decide(*pkt, snd.queue_drain_time());
  const bool forward = drop_reason == telemetry::DropReason::kNone;

  // Delegated bitrate selection (§5.2): a consistently building queue
  // means the last mile cannot sustain this version. For SVC streams
  // the first response is a mask flip — shed the highest enhancement
  // layer; only when the client is already at base-only does the
  // simulcast ladder take over. Pressure accrues on every packet
  // offered (dropped ones included — sustained dropping IS pressure).
  if (view.dropper.under_pressure()) {
    if (++view.pressure_count >
        static_cast<int>(cfg_.downgrade_pressure_packets)) {
      view.pressure_count = 0;
      if (!narrow_mask_step(client, view) && view.ladder != nullptr &&
          view.ladder_pos + 1 < view.ladder->size()) {
        ++view.ladder_pos;
        if (view.session != nullptr) ++view.session->bitrate_downgrades;
        switch_client_stream(client, (*view.ladder)[view.ladder_pos]);
        return;
      }
    }
  } else {
    view.pressure_count = 0;
  }
  if (!forward) {
    // Proactively dropped (B -> P -> GoP escalation).
    telemetry::record_hop(pkt->trace_id(), net_->loop()->now(),
                          pkt->stream_id(), pkt->producer_seq(),
                          owner_->node_id(), client,
                          telemetry::HopEvent::kDrop, drop_reason);
    return;
  }
  auto clone = pkt->fork();
  clone->delay_ext_us +=
      cfg_.client_extra_delay + half_rtt_between(net_, owner_->node_id(),
                                                 client);
  clone->seq = view.take_seq(clone->is_audio());  // client-facing seq space
  telemetry::handles().client_forwards->add();
  telemetry::record_hop(pkt->trace_id(), net_->loop()->now(),
                        pkt->stream_id(), pkt->producer_seq(),
                        owner_->node_id(), client,
                        telemetry::HopEvent::kClientForward);

  // Consumer-node log: per-packet CDN path delay + observed path length.
  if (view.session != nullptr) {
    if (pkt->cdn_ingress_time != kNever) {
      const double delay_ms =
          to_ms(net_->loop()->now() - pkt->cdn_ingress_time);
      view.session->cdn_delay_ms.add(delay_ms);
      telemetry::handles().cdn_path_delay_ms->observe(delay_ms);
      view.session->path_length = pkt->cdn_hops;
    }
    if (view.session->first_packet_time == kNever) {
      view.session->first_packet_time = net_->loop()->now();
    }
  }
  egress_meter_->add(net_->loop()->now(), clone->wire_size());
  snd.send_media(std::move(clone));
}

void SessionLayer::note_path_switch(StreamId stream) {
  for (auto& [client, view] : views_) {
    if (view.stream == stream && view.session != nullptr) {
      ++view.session->path_switches;
    }
  }
}

}  // namespace livenet::overlay
