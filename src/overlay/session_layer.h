#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "media/rtp.h"
#include "overlay/frame_dropper.h"
#include "overlay/messages.h"
#include "overlay/peer_senders.h"
#include "overlay/records.h"
#include "overlay/recovery_engine.h"
#include "overlay/stream_context.h"
#include "sim/network.h"
#include "sim/sim_node.h"
#include "transport/gcc.h"
#include "util/hash_seed.h"

// Client-facing session layer of a CDN node (paper §5): view request
// admission (Algorithm 1's local-hit checks), deferred (pending)
// attaches, the startup burst, per-client delivery with the proactive
// frame dropper and per-client sequence rewrite, the simulcast ladder
// with delegated bitrate selection (§5.2), quality-report evaluation
// and seamless stream switching (co-stream / downgrade handovers).
//
// Shared between the LiveNet OverlayNode and the Hier baseline: the
// node-specific halves — how a missing stream is fetched, when an idle
// stream is released, what a startup burst looks like — are injected
// through Hooks. Hier wires only the subset it needs (no quality loop,
// no simulcast, its own plain burst).
namespace livenet::overlay {

/// Per-client consumer state. Owned by the session layer; the FIB's
/// subscriber_clients set holds the forwarding-side view of the same
/// membership (see DESIGN.md "Node architecture").
struct ClientViewState {
  ViewSession* session = nullptr;  ///< owned by OverlayMetrics
  media::StreamId stream = media::kNoStream;
  FrameDropper dropper;
  std::uint32_t stalls_in_window = 0;
  int bad_quality_windows = 0;  ///< consecutive poor quality reports
  std::uint64_t dropper_total_at_report = 0;  ///< for skip discounting
  /// Simulcast versions, best first. Points into the session layer's
  /// interned ladder table: every viewer of the same broadcast shares
  /// one immutable copy instead of carrying its own vector.
  const std::vector<media::StreamId>* ladder = nullptr;
  std::size_t ladder_pos = 0;
  int pressure_count = 0;  ///< consecutive under-pressure packets

  // ---- SVC layer switching (DESIGN.md "SVC layered forwarding") ----
  /// Committed mask: gates per-packet delivery right now.
  media::LayerMask layer_mask = media::kAllLayers;
  /// Widen in flight: the full target mask, committed only at a
  /// decodable anchor (keyframe for new spatial layers, T0 frame for
  /// temporal-only widens). 0 = nothing pending.
  media::LayerMask pending_mask = 0;
  Time pending_since = kNever;
  /// Stream lattice as observed from delivered packets.
  std::uint8_t svc_s = 1;
  std::uint8_t svc_t = 1;
  int good_windows = 0;  ///< consecutive clean reports (up-switch signal)
  /// The client sent an explicit LayerMaskUpdate: it is driving its own
  /// layer selection, so the consumer's automatic up-switch stands down
  /// (the pressure narrow still protects the last mile).
  bool client_driven = false;

  /// Client-facing RTP seq spaces (video/audio are separate flows).
  /// The consumer rewrites sequence numbers per client so that
  /// proactive frame drops and cache-burst seams do not look like
  /// wire loss to the client's NACK machinery.
  media::Seq next_video_seq = 1;
  media::Seq next_audio_seq = 1;

  media::Seq take_seq(bool audio) {
    return audio ? next_audio_seq++ : next_video_seq++;
  }
};

struct SessionConfig {
  Duration client_extra_delay = 2 * kMs;  ///< per-packet processing delay
  std::uint32_t switch_stall_threshold = 2;
  std::uint32_t switch_skip_threshold = 8;
  std::uint32_t downgrade_pressure_packets = 150;  ///< ~1.5 s of video
  /// Create the ClientViewState (with its simulcast ladder) at request
  /// time so it survives a deferred attach. LiveNet does; Hier creates
  /// it only when the client actually attaches.
  bool eager_view_state = true;
};

class SessionLayer {
 public:
  struct Hooks {
    /// Does this node currently carry the stream (Algorithm 1 line 1)?
    std::function<bool(media::StreamId)> carries_stream;
    /// A client detached from the stream; release it if now idle.
    std::function<void(media::StreamId)> maybe_release;
    /// Fetch a stream this node does not carry (view-request miss):
    /// overlay = Brain path lookup, Hier = subscribe up the tree.
    std::function<void(media::StreamId)> want_stream;
    /// Overlay only: try to establish from locally cached path info
    /// (pushed or previously fetched). Returns true when the local
    /// info suffices, i.e. the request counts as a local hit.
    std::function<bool(media::StreamId)> acquire_local;
    /// Overlay only: fetch for a stream *switch* (downgrade/co-stream),
    /// which establishes from fresh cached paths or falls back to a
    /// lookup — deliberately stricter than the view-request variant.
    std::function<void(media::StreamId)> want_stream_for_switch;
    /// Override the built-in startup burst (Hier's plain cache burst).
    std::function<void(sim::NodeId, ClientViewState&)> serve_burst;
    /// Overlay only: quality-triggered path switch (§4.4).
    std::function<void(media::StreamId)> quality_switch;
    /// SVC: a client's layer mask changed — re-aggregate the stream's
    /// downstream mask and propagate upstream if it moved.
    std::function<void(media::StreamId)> downstream_mask_changed;
  };

  SessionLayer(sim::Network* net, const sim::SimNode* owner,
               OverlayMetrics* metrics, const SessionConfig& cfg,
               StreamTable* table)
      : net_(net), owner_(owner), metrics_(metrics), cfg_(cfg),
        table_(table) {}

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Wires the built-in burst + per-packet delivery (overlay only):
  /// sender pipelines, the recovery engine's caches/buffers, and the
  /// node-wide egress meter.
  void wire_data_plane(PeerSenders* senders, RecoveryEngine* recovery,
                       transport::RateMeter* egress_meter) {
    senders_ = senders;
    recovery_ = recovery;
    egress_meter_ = egress_meter;
  }

  // ----------------------------------------------------- client control
  void handle_view_request(sim::NodeId client, const ViewRequest& req);
  void handle_view_stop(sim::NodeId client, const ViewStop& msg);
  void handle_quality_report(sim::NodeId client,
                             const ClientQualityReport& rep);
  /// Viewer-initiated SVC layer flip: narrows commit immediately,
  /// widens go pending until a decodable anchor.
  void handle_layer_mask_request(sim::NodeId client,
                                 const LayerMaskUpdate& msg);

  /// Serves `stream` to the client (seamless handover if it was on
  /// another stream): subscribe, ack, startup burst.
  void attach_client(sim::NodeId client, media::StreamId stream,
                     ViewSession* session);

  /// Moves a client to another stream (bitrate downgrade or co-stream
  /// switch), reusing its session record.
  void switch_client_stream(sim::NodeId client, media::StreamId new_stream);

  /// Flips waiting co-stream viewers once a complete GoP of the new
  /// stream is cached.
  void maybe_flip_costream(media::StreamId new_stream);

  /// Attaches views queued on `stream` once content lands and the node
  /// carries it (the lookup-based path attaches via attach_pending).
  void flush_pending_attach(media::StreamId stream);

  /// Path lookup failed: fail every queued view with a nack.
  void fail_pending(media::StreamId stream, Duration rtt);

  /// Path lookup succeeded: attach every queued view, recording the
  /// observed lookup RTT and the last-resort flag on each session.
  void attach_pending(media::StreamId stream, Duration rtt,
                      bool last_resort);

  // ------------------------------------------------------ data delivery
  /// Built-in startup burst (§5.1): GoP cache content plus packets
  /// still blocked behind a recovery hole upstream (seam shrinking).
  void serve_startup_burst(sim::NodeId client, ClientViewState& view);

  /// Fast-path fan-out entry: delivers to the client if it is attached.
  void deliver_to_client(sim::NodeId client, const media::RtpPacketPtr& pkt);

  void send_to_client(sim::NodeId client, ClientViewState& view,
                      const media::RtpPacketPtr& pkt);

  // -------------------------------------------------------- bookkeeping
  /// Credits a path switch on every session viewing `stream`.
  /// Iteration order over the view map is behaviour-neutral (counter
  /// increments only) — the map is seed-hashed to prove it.
  void note_path_switch(media::StreamId stream);

  ClientViewState* find_view(sim::NodeId client) {
    const auto it = views_.find(client);
    return it != views_.end() ? &it->second : nullptr;
  }

  std::uint64_t view_requests() const { return view_requests_; }

  /// Distinct simulcast ladders interned so far (telemetry/tests).
  std::size_t interned_ladders() const { return ladder_table_.size(); }

  /// Crash: drops all per-client state (the request counter survives,
  /// as node counters did before).
  void clear() { views_.clear(); }

 private:
  /// Returns the shared immutable copy of `ladder`, creating it on
  /// first sight. Pointers stay valid for the session layer's lifetime.
  const std::vector<media::StreamId>* intern_ladder(
      std::vector<media::StreamId> ladder);

  /// Applies a requested mask to the view: narrowing commits now,
  /// widening goes pending; mirrors the wanted set into the FIB.
  void set_client_layer_mask(sim::NodeId client, ClientViewState& view,
                             media::LayerMask mask);
  /// Pressure response for SVC streams: shed the highest enhancement
  /// bit. Returns false when already at base-only (ladder takes over).
  bool narrow_mask_step(sim::NodeId client, ClientViewState& view);
  /// Commits a pending widen when `pkt` is its decodable anchor.
  void maybe_commit_mask(sim::NodeId client, ClientViewState& view,
                         const media::RtpPacket& pkt);
  /// Pushes committed|pending into the FIB's client mask and notifies
  /// the control plane.
  void sync_fib_client_mask(sim::NodeId client, const ClientViewState& view);
  /// Tells the client its *committed* mask (so its skip expectation
  /// tracks exactly what this node filters).
  void notify_client_mask(sim::NodeId client, const ClientViewState& view);

  sim::Network* net_;
  const sim::SimNode* owner_;
  OverlayMetrics* metrics_;
  SessionConfig cfg_;
  StreamTable* table_;
  Hooks hooks_;
  PeerSenders* senders_ = nullptr;
  RecoveryEngine* recovery_ = nullptr;
  transport::RateMeter* egress_meter_ = nullptr;
  std::unordered_map<sim::NodeId, ClientViewState, SeededHash<sim::NodeId>>
      views_;
  /// Interned simulcast ladders (see ClientViewState::ladder).
  std::map<std::vector<media::StreamId>,
           std::unique_ptr<const std::vector<media::StreamId>>>
      ladder_table_;
  std::uint64_t view_requests_ = 0;
};

}  // namespace livenet::overlay
