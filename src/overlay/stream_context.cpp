#include "overlay/stream_context.h"

namespace livenet::overlay {

std::vector<media::StreamId> StreamTable::streams() const {
  std::vector<media::StreamId> out;
  out.reserve(fib_active_);
  for (const auto& [s, ctx] : map_) {
    if (ctx.fib_active) out.push_back(s);
  }
  return out;
}

void StreamTable::remove_node_subscriber(media::StreamId s, sim::NodeId n) {
  const auto it = map_.find(s);
  if (it == map_.end() || !it->second.fib_active) return;
  it->second.fib.subscriber_nodes.erase(n);
  it->second.fib.node_layer_masks.erase(n);
}

void StreamTable::remove_client_subscriber(media::StreamId s, ClientId c) {
  const auto it = map_.find(s);
  if (it == map_.end() || !it->second.fib_active) return;
  it->second.fib.subscriber_clients.erase(c);
  it->second.fib.client_layer_masks.erase(c);
}

}  // namespace livenet::overlay
