#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "media/framer.h"
#include "media/gop_cache.h"
#include "overlay/path.h"
#include "overlay/records.h"
#include "overlay/stream_fib.h"
#include "sim/event_loop.h"
#include "sim/message.h"
#include "util/hash_seed.h"
#include "util/time.h"

// The unified per-stream state of an overlay (or Hier) node. The old
// OverlayNode kept eight parallel per-stream hash maps (`streams_`,
// the FIB, `pending_views_`, `path_request_sent_`, `pending_costream_`,
// `pending_switch_`, plus the cache handles inside them); the fast path
// paid one hash probe per map it touched, and teardown had to remember
// to sweep every map by hand (it didn't — see release_stream's history
// of stale-retry leaks). StreamContext folds all of it into a single
// struct behind one lookup:
//
//  * the per-packet hot path probes the table exactly once per RTP
//    packet and carries the context pointer through fast/slow path,
//  * release/crash erase the whole context, so no per-stream state can
//    outlive the stream by omission.
//
// Ownership rules (see DESIGN.md "Node architecture"):
//  * StreamTable owns every StreamContext; contexts are created on
//    demand and erased only by release_stream()/crash().
//  * The FIB portion (`fib`) has its own activation flag: a context
//    created for path caching or pending bookkeeping is NOT yet a
//    forwarding entry, exactly as the old separate StreamFib map would
//    not have contained it. The hot path and the public fib() view
//    consult only fib-active contexts.
//  * Engines share the table by reference; no engine holds per-stream
//    state of its own outside the context (the per-*peer* pipelines —
//    LinkSender/LinkReceiver — stay with their engines).
namespace livenet::overlay {

/// A viewer whose attach is deferred until content (or path info)
/// arrives for the stream it requested.
struct PendingView {
  sim::NodeId client = sim::kNoNode;
  ViewSession* session = nullptr;
};

struct StreamContext {
  // ------------------------------------------------ forwarding (hot)
  /// Forwarding entry: subscriber sets + upstream + producer flag.
  /// Valid only while `fib_active` (see ownership rules above).
  StreamFib::Entry fib;
  bool fib_active = false;

  // ------------------------------------------------- recovery / media
  /// Frame reassembly + frame-granularity GoP cache. Created lazily by
  /// the node's ensure-media step (the packet-granularity GoP cache is
  /// per-node, inside RecoveryEngine). Null until then.
  std::unique_ptr<media::Framer> framer;
  media::GopCache gop_cache;

  // ----------------------------------------------------------- control
  bool establishing = false;       ///< subscribe sent, ack outstanding
  std::vector<Path> cached_paths;  ///< local path cache (lookup or push)
  Time paths_fetched = kNever;
  Time last_switch = kNever;       ///< re-route cooldown
  std::size_t next_backup = 1;     ///< next candidate on quality switch
  sim::EventId linger_timer = sim::kInvalidEvent;
  Time path_request_sent = kNever;  ///< kNever = no lookup in flight
  bool switch_pending = false;      ///< quality switch awaits fresh paths
  /// Co-stream handover: this stream is the *new* stream some viewers
  /// of `costream_from` are waiting to flip to.
  media::StreamId costream_from = media::kNoStream;
  /// Hier only: the upstream node this stream is subscribed through.
  sim::NodeId upstream_sub = sim::kNoNode;
  /// Established suppliers of this stream (primary upstream first, then
  /// standby RTX-only upstreams, make-before-break grace upstreams...).
  /// Multi-supplier RTX races NACKs across this set; the control agent
  /// keeps it swept of released/crashed upstreams.
  std::vector<sim::NodeId> suppliers;
  /// Standby subscribe requests in flight (ack outstanding), so crash /
  /// release can tell live standbys from half-established ones.
  std::vector<sim::NodeId> pending_standbys;
  /// Last SVC layer mask propagated to the primary upstream (the OR of
  /// our subscribers' masks). Lets the control agent send a
  /// LayerMaskUpdate only when the aggregate actually changes.
  media::LayerMask upstream_mask_sent = media::kAllLayers;

  // ----------------------------------------------------------- session
  std::vector<PendingView> pending_views;

  bool has_media() const { return framer != nullptr; }
};

/// The single per-stream lookup. Exposes two views:
///  * a FIB view (find/contains/stream_count) that is a drop-in for the
///    old StreamFib observers — it sees only fib-active contexts, and
///  * a context view (find_context/context) for the engines.
class StreamTable {
 public:
  // ------------------------------------------------------- FIB view
  const StreamFib::Entry* find(media::StreamId s) const {
    const auto it = map_.find(s);
    return it != map_.end() && it->second.fib_active ? &it->second.fib
                                                     : nullptr;
  }
  bool contains(media::StreamId s) const { return find(s) != nullptr; }
  std::size_t stream_count() const { return fib_active_; }
  std::vector<media::StreamId> streams() const;

  /// Creates (and activates) the forwarding entry, like the old
  /// StreamFib::entry().
  StreamFib::Entry& fib_entry(media::StreamId s) {
    StreamContext& ctx = context(s);
    activate_fib(ctx);
    return ctx.fib;
  }

  void add_node_subscriber(media::StreamId s, sim::NodeId n) {
    fib_entry(s).subscriber_nodes.insert(n);
  }
  void add_client_subscriber(media::StreamId s, ClientId c) {
    fib_entry(s).subscriber_clients.insert(c);
  }
  /// No-ops on streams without an active forwarding entry (matching
  /// the old StreamFib, which never created entries on removal).
  void remove_node_subscriber(media::StreamId s, sim::NodeId n);
  void remove_client_subscriber(media::StreamId s, ClientId c);

  // --------------------------------------------------- context view
  StreamContext* find_context(media::StreamId s) {
    const auto it = map_.find(s);
    return it != map_.end() ? &it->second : nullptr;
  }
  const StreamContext* find_context(media::StreamId s) const {
    const auto it = map_.find(s);
    return it != map_.end() ? &it->second : nullptr;
  }
  /// Creates the context on demand (without activating the FIB part).
  StreamContext& context(media::StreamId s) { return map_[s]; }

  /// Erases the whole context: forwarding entry, media state, path
  /// cache, pending views, switch/costream flags — everything.
  void erase(media::StreamId s) {
    const auto it = map_.find(s);
    if (it == map_.end()) return;
    if (it->second.fib_active) --fib_active_;
    map_.erase(it);
  }

  void clear() {
    map_.clear();
    fib_active_ = 0;
  }

  std::size_t context_count() const { return map_.size(); }

  /// Iteration (timer sweeps on crash/teardown only). Iteration order
  /// is hash-order and MUST stay behaviour-neutral: the map is keyed
  /// with SeededHash, and CI re-runs the golden scenario under a
  /// different LIVENET_HASH_SEED to prove no order leak.
  template <class F>
  void for_each_context(F&& f) {
    for (auto& [s, ctx] : map_) f(s, ctx);
  }
  template <class F>
  void for_each_context(F&& f) const {
    for (const auto& [s, ctx] : map_) f(s, ctx);
  }

 private:
  void activate_fib(StreamContext& ctx) {
    if (!ctx.fib_active) {
      ctx.fib_active = true;
      ++fib_active_;
    }
  }

  std::unordered_map<media::StreamId, StreamContext,
                     SeededHash<media::StreamId>>
      map_;
  std::size_t fib_active_ = 0;
};

}  // namespace livenet::overlay
