#include "overlay/stream_fib.h"

namespace livenet::overlay {

void StreamFib::remove_node_subscriber(media::StreamId s, sim::NodeId n) {
  const auto it = map_.find(s);
  if (it == map_.end()) return;
  it->second.subscriber_nodes.erase(n);
  it->second.node_layer_masks.erase(n);
}

void StreamFib::remove_client_subscriber(media::StreamId s, ClientId c) {
  const auto it = map_.find(s);
  if (it == map_.end()) return;
  it->second.subscriber_clients.erase(c);
  it->second.client_layer_masks.erase(c);
}

std::vector<media::StreamId> StreamFib::streams() const {
  std::vector<media::StreamId> out;
  out.reserve(map_.size());
  for (const auto& [s, e] : map_) out.push_back(s);
  return out;
}

}  // namespace livenet::overlay
