#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "media/frame.h"
#include "overlay/messages.h"
#include "sim/message.h"

// Stream Forwarding Information Base (paper §5.1): for each stream, the
// set of downstream overlay nodes and locally attached clients that
// subscribed to it. Updated by subscription/unsubscription requests;
// consulted by the fast path on every packet.
namespace livenet::overlay {

class StreamFib {
 public:
  struct Entry {
    std::unordered_set<sim::NodeId> subscriber_nodes;
    std::unordered_set<ClientId> subscriber_clients;
    /// Standby-supplier downstreams: nodes that may NACK this stream
    /// here (served from history/cache) but receive NO media fan-out.
    /// Kept out of subscriber_nodes so the fast path never iterates
    /// them — multi-supplier RTX costs the hot loop nothing.
    std::unordered_set<sim::NodeId> rtx_only_nodes;
    /// SVC layer masks, kept as SIDE maps holding only non-default
    /// entries: a subscriber absent here wants every layer. The fast
    /// path's fan-out loop stays untouched for the all-layers world —
    /// it pays one `any_layer_filter()` bool before consulting masks.
    std::unordered_map<sim::NodeId, media::LayerMask> node_layer_masks;
    std::unordered_map<ClientId, media::LayerMask> client_layer_masks;
    sim::NodeId upstream = sim::kNoNode;  ///< where we receive it from
    bool locally_produced = false;        ///< this node is the producer

    bool has_subscribers() const {
      return !subscriber_nodes.empty() || !subscriber_clients.empty() ||
             !rtx_only_nodes.empty();
    }

    bool any_layer_filter() const { return !node_layer_masks.empty(); }
    media::LayerMask node_mask(sim::NodeId n) const {
      const auto it = node_layer_masks.find(n);
      return it != node_layer_masks.end() ? it->second : media::kAllLayers;
    }
    media::LayerMask client_mask(ClientId c) const {
      const auto it = client_layer_masks.find(c);
      return it != client_layer_masks.end() ? it->second : media::kAllLayers;
    }
    void set_node_mask(sim::NodeId n, media::LayerMask m) {
      if (m == media::kAllLayers) {
        node_layer_masks.erase(n);
      } else {
        node_layer_masks[n] = m;
      }
    }
    void set_client_mask(ClientId c, media::LayerMask m) {
      if (m == media::kAllLayers) {
        client_layer_masks.erase(c);
      } else {
        client_layer_masks[c] = m;
      }
    }
  };

  bool contains(media::StreamId s) const { return map_.count(s) != 0; }

  Entry& entry(media::StreamId s) { return map_[s]; }
  const Entry* find(media::StreamId s) const {
    const auto it = map_.find(s);
    return it != map_.end() ? &it->second : nullptr;
  }

  void add_node_subscriber(media::StreamId s, sim::NodeId n) {
    map_[s].subscriber_nodes.insert(n);
  }
  void add_client_subscriber(media::StreamId s, ClientId c) {
    map_[s].subscriber_clients.insert(c);
  }
  void remove_node_subscriber(media::StreamId s, sim::NodeId n);
  void remove_client_subscriber(media::StreamId s, ClientId c);
  void erase(media::StreamId s) { map_.erase(s); }

  std::size_t stream_count() const { return map_.size(); }

  std::vector<media::StreamId> streams() const;

 private:
  std::unordered_map<media::StreamId, Entry> map_;
};

}  // namespace livenet::overlay
