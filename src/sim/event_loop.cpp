#include "sim/event_loop.h"

#include "util/logging.h"

namespace livenet::sim {

std::uint32_t EventLoop::acquire_slot() {
  if (free_slots_.empty()) {
    const std::uint32_t base =
        static_cast<std::uint32_t>(chunks_.size() * kChunkSize);
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
    free_slots_.reserve(free_slots_.size() + kChunkSize);
    // Push in reverse so the lowest new slot is handed out first.
    for (std::uint32_t i = kChunkSize; i > 0; --i) {
      free_slots_.push_back(base + i - 1);
    }
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

void EventLoop::release_slot(std::uint32_t slot) {
  // Bump the generation so every outstanding handle/queue entry for
  // this slot is now stale. Generations are per-slot, 32-bit; skipping
  // 0 keeps (gen << 32 | slot) != kInvalidEvent even for slot 0.
  Node& n = node(slot);
  if (++n.gen == 0) n.gen = 1;
  free_slots_.push_back(slot);
}

EventId EventLoop::schedule_at(Time when, Callback cb) {
  if (when < now_) when = now_;
  const std::uint32_t slot = acquire_slot();
  Node& n = node(slot);
  n.cb = std::move(cb);
  queue_.push(Entry{when, next_seq_++, slot, n.gen});
  ++schedule_count_;
  ++live_count_;
  if (live_count_ > peak_live_) peak_live_ = live_count_;
  return (static_cast<EventId>(n.gen) << 32) | slot;
}

EventId EventLoop::schedule_after(Duration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(cb));
}

EventId EventLoop::schedule_at_seq(Time when, std::uint64_t seq, Callback cb) {
  if (when < now_) when = now_;
  const std::uint32_t slot = acquire_slot();
  Node& n = node(slot);
  n.cb = std::move(cb);
  queue_.push(Entry{when, seq, slot, n.gen});
  ++schedule_count_;
  ++live_count_;
  if (live_count_ > peak_live_) peak_live_ = live_count_;
  return (static_cast<EventId>(n.gen) << 32) | slot;
}

bool EventLoop::next_is_after(Time when, std::uint64_t seq) {
  prune();
  if (queue_.empty()) return true;
  const Entry& top = queue_.top();
  if (top.when != when) return top.when > when;
  return top.seq > seq;
}

void EventLoop::advance_to(Time t) {
  if (t <= now_) return;
  now_ = t;
  Logger::set_now(now_);
}

void EventLoop::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= chunks_.size() * kChunkSize) return;
  Node& n = node(slot);
  if (n.gen != gen) return;  // already ran or already cancelled
  n.cb.reset();              // release captures *now*
  release_slot(slot);
  --live_count_;
  // The queue entry stays behind as a zombie; prune()/dispatch drop it
  // when it reaches the top, recognising the stale generation.
  ++zombies_;
}

void EventLoop::prune() {
  // Zombies exist only after a cancel(); the counter lets the hot
  // next_is_after/idle_at guards skip the slab lookup entirely.
  if (zombies_ == 0) return;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (node(top.slot).gen == top.gen) break;
    queue_.pop();
    --zombies_;
  }
}

bool EventLoop::dispatch_next() {
  prune();
  if (queue_.empty()) return false;
  const Entry top = queue_.top();
  queue_.pop();
  Node& n = node(top.slot);
  // Move the callback out before releasing the slot: the callback may
  // itself schedule (reusing this slot) or cancel other events.
  Callback cb = std::move(n.cb);
  n.cb.reset();
  release_slot(top.slot);
  --live_count_;
  now_ = top.when;
  Logger::set_now(now_);
  ++dispatched_;
  cb();
  return true;
}

void EventLoop::run_until(Time until_time) {
  // Publish the bound so callbacks that fuse future work (batched
  // delivery) stop exactly where separate events would have stopped.
  // Saved/restored to keep nested run_until calls correct.
  const Time saved_horizon = horizon_;
  horizon_ = until_time;
  for (;;) {
    prune();
    if (queue_.empty() || queue_.top().when > until_time) break;
    dispatch_next();
  }
  if (now_ < until_time) {
    now_ = until_time;
    Logger::set_now(now_);
  }
  horizon_ = saved_horizon;
}

void EventLoop::run() {
  while (dispatch_next()) {
  }
}

bool EventLoop::step() { return dispatch_next(); }

}  // namespace livenet::sim
