#include "sim/event_loop.h"

#include "util/logging.h"

namespace livenet::sim {

EventId EventLoop::schedule_at(Time when, Callback cb) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(cb)});
  live_.insert(id);
  return id;
}

EventId EventLoop::schedule_after(Duration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(cb));
}

void EventLoop::cancel(EventId id) { live_.erase(id); }

void EventLoop::prune() {
  while (!queue_.empty() && live_.find(queue_.top().id) == live_.end()) {
    queue_.pop();
  }
}

bool EventLoop::dispatch_next() {
  prune();
  if (queue_.empty()) return false;
  // Moving out of top() requires const_cast; the element is popped
  // immediately afterwards so the moved-from state is never observed.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  live_.erase(ev.id);
  now_ = ev.when;
  Logger::set_now(now_);
  ++dispatched_;
  ev.cb();
  return true;
}

void EventLoop::run_until(Time until_time) {
  for (;;) {
    prune();
    if (queue_.empty() || queue_.top().when > until_time) break;
    dispatch_next();
  }
  if (now_ < until_time) {
    now_ = until_time;
    Logger::set_now(now_);
  }
}

void EventLoop::run() {
  while (dispatch_next()) {
  }
}

bool EventLoop::step() { return dispatch_next(); }

}  // namespace livenet::sim
