#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.h"

// Discrete-event simulation core.
//
// The event loop owns virtual time. Components schedule callbacks at
// absolute times or after delays; run() dispatches them in (time, FIFO)
// order. Events scheduled for the same instant run in the order they
// were scheduled, which keeps whole-system runs deterministic.
namespace livenet::sim {

/// Handle used to cancel a scheduled event. Cancellation is O(1): the
/// event stays in the queue but is skipped on pop.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules cb at absolute time `when` (clamped to >= now). Returns a
  /// handle usable with cancel().
  EventId schedule_at(Time when, Callback cb);

  /// Schedules cb `delay` after now (delay clamped to >= 0).
  EventId schedule_after(Duration delay, Callback cb);

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Runs until the queue drains or until_time is passed (whichever is
  /// first). Events at exactly until_time still run, and now() advances
  /// to until_time even if the queue drains earlier.
  void run_until(Time until_time);

  /// Runs until the queue is empty.
  void run();

  /// Dispatches at most one event; returns false if the queue is empty.
  bool step();

  /// Number of events dispatched so far (for tests / sanity checks).
  std::uint64_t dispatched() const { return dispatched_; }

  /// Pending (non-cancelled) events.
  std::size_t pending() const { return live_.size(); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;  // tie-breaker: FIFO within the same instant
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool dispatch_next();
  void prune();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> live_;  // scheduled and not yet run/cancelled
};

}  // namespace livenet::sim
