#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "util/inline_function.h"
#include "util/time.h"

// Discrete-event simulation core.
//
// The event loop owns virtual time. Components schedule callbacks at
// absolute times or after delays; run() dispatches them in (time, FIFO)
// order. Events scheduled for the same instant run in the order they
// were scheduled, which keeps whole-system runs deterministic.
//
// The hot path is allocation-free: callbacks with captures up to 48 B
// live inline in a slab node (util::InlineFunction), slab nodes are
// recycled through a free list, and the priority queue holds POD
// entries only. Cancellation is generation-stamped: cancel() destroys
// the callback immediately — releasing any shared_ptrs it captured —
// bumps the slot's generation so the handle dies, and leaves a zombie
// queue entry that is discarded when it surfaces.
namespace livenet::sim {

/// Handle used to cancel a scheduled event: (generation << 32) | slot.
/// Generations start at 1, so no valid handle equals kInvalidEvent.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventLoop {
 public:
  using Callback = util::InlineFunction;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules cb at absolute time `when` (clamped to >= now). Returns a
  /// handle usable with cancel().
  EventId schedule_at(Time when, Callback cb);

  /// Schedules cb `delay` after now (delay clamped to >= 0).
  EventId schedule_after(Duration delay, Callback cb);

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  /// The callback (and anything it captured) is destroyed before this
  /// returns, not when the event's timestamp comes up.
  void cancel(EventId id);

  // ---- Batched-delivery support (see DESIGN.md "Batched delivery").
  //
  // Batching must not change dispatch order: a component that wants to
  // process several items inside one callback has to prove each extra
  // item would have run next anyway had it been a separate event. The
  // four hooks below give it the pieces: reserve the item's FIFO
  // position at creation time, later materialise an event at exactly
  // that (time, seq) slot, peek whether a hypothetical entry would beat
  // everything still queued, and advance the clock between fused items.

  /// Reserves the next FIFO sequence number without scheduling. The
  /// caller owns the slot in the global (time, seq) order and may later
  /// attach an event to it with schedule_at_seq() — or never, if the
  /// item gets fused into an earlier callback.
  std::uint64_t reserve_seq() { return next_seq_++; }

  /// The seq the next schedule/reservation would take. Two equal reads
  /// bracket a window in which nothing was scheduled — which proves no
  /// event can order between items created in that window.
  std::uint64_t seq_cursor() const { return next_seq_; }

  /// Schedules cb at `when` under a seq previously obtained from
  /// reserve_seq(). The event dispatches exactly where a schedule_at()
  /// issued at reservation time would have. `when` must be >= now().
  EventId schedule_at_seq(Time when, std::uint64_t seq, Callback cb);

  /// True if a hypothetical entry (when, seq) would dispatch before
  /// every pending event (zombies pruned). when must be >= now().
  bool next_is_after(Time when, std::uint64_t seq);

  /// True if nothing pending (zombies pruned) is due at or before t —
  /// i.e. a freshly scheduled event at t would dispatch next.
  bool idle_at(Time t) { return next_is_after(t, kMaxSeq); }

  /// Count of schedule_at/schedule_at_seq calls so far. Unlike
  /// seq_cursor(), reserve_seq() does not move it: an unchanged value
  /// proves nothing new entered the queue (a cached idle_at() verdict
  /// is still valid; cancels only make the loop more idle).
  std::uint64_t schedule_count() const { return schedule_count_; }

  /// Peeks the next live event's (when, seq) without dispatching;
  /// false if nothing is pending. Lets a caller that knows the queue
  /// cannot change (no dispatch, no scheduling) hoist the comparison
  /// out of a loop instead of calling next_is_after per element.
  bool peek_next(Time* when, std::uint64_t* seq) {
    prune();
    if (queue_.empty()) return false;
    *when = queue_.top().when;
    *seq = queue_.top().seq;
    return true;
  }

  /// Moves virtual time forward from inside a callback (fused items at
  /// later instants). t must satisfy now() <= t <= horizon() and must
  /// not overtake any pending event (callers prove this with
  /// next_is_after before fusing).
  void advance_to(Time t);

  /// Upper bound of the innermost active run_until() — events fused
  /// past it must be deferred, exactly as run_until() would have left
  /// them queued. kNoHorizon while in run()/step() or outside the loop.
  static constexpr Time kNoHorizon = std::numeric_limits<Time>::max();
  Time horizon() const { return horizon_; }

  /// Runs until the queue drains or until_time is passed (whichever is
  /// first). Events at exactly until_time still run, and now() advances
  /// to until_time even if the queue drains earlier.
  void run_until(Time until_time);

  /// Runs until the queue is empty.
  void run();

  /// Dispatches at most one event; returns false if the queue is empty.
  bool step();

  /// Number of events dispatched so far (for tests / sanity checks).
  std::uint64_t dispatched() const { return dispatched_; }

  /// Pending (non-cancelled) events.
  std::size_t pending() const { return live_count_; }

  /// High-water mark of pending events over the loop's lifetime — the
  /// telemetry gauge for event-queue headroom (one compare per
  /// schedule; no allocation).
  std::size_t peak_pending() const { return peak_live_; }

 private:
  // Slab node: the callback plus the slot's current generation. Nodes
  // live in fixed 256-entry chunks so pointers stay stable while the
  // slab grows; freed slots are recycled LIFO via free_slots_.
  struct Node {
    Callback cb;
    std::uint32_t gen = 1;
  };
  static constexpr std::size_t kChunkSize = 256;

  // Priority-queue entry: POD, 24 B. The (slot, gen) pair revalidates
  // against the slab on pop; a stale gen marks a cancelled event.
  struct Entry {
    Time when;
    std::uint64_t seq;  // tie-breaker: FIFO within the same instant
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Node& node(std::uint32_t slot) {
    return chunks_[slot / kChunkSize][slot % kChunkSize];
  }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  bool dispatch_next();
  void prune();

  static constexpr std::uint64_t kMaxSeq =
      std::numeric_limits<std::uint64_t>::max();

  Time now_ = 0;
  Time horizon_ = kNoHorizon;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t live_count_ = 0;
  std::uint64_t schedule_count_ = 0;
  std::size_t peak_live_ = 0;
  /// Stale queue entries left behind by cancel(); prune() is a no-op
  /// while this is zero.
  std::size_t zombies_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace livenet::sim
