#include "sim/fault_injector.h"

#include <algorithm>
#include <memory>

#include "util/rng.h"

namespace livenet::sim {

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkFlap: return "link_flap";
    case FaultKind::kLinkDegrade: return "link_degrade";
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kControlOutage: return "control_outage";
  }
  return "unknown";
}

FaultInjector::FaultInjector(Network* net, const Config& cfg)
    : net_(net), cfg_(cfg) {}

FaultInjector::~FaultInjector() {
  for (const EventId id : pending_) net_->loop()->cancel(id);
}

void FaultInjector::schedule(Time when, std::function<void()> fn) {
  // Events self-deregister so the destructor can cancel the rest (an
  // injector may die before the loop drains; its callbacks must not).
  auto holder = std::make_shared<EventId>(kInvalidEvent);
  *holder = net_->loop()->schedule_at(
      when, [this, holder, f = std::move(fn)] {
        pending_.erase(*holder);
        f();
      });
  pending_.insert(*holder);
}

void FaultInjector::inject(const FaultSpec& spec) {
  const std::size_t idx = records_.size();
  records_.push_back(FaultRecord{spec, kNever, kNever, kNever});
  const Time at = std::max(spec.at, net_->loop()->now());
  schedule(at, [this, idx] { apply(idx); });
}

std::vector<Link*> FaultInjector::fault_links(const FaultSpec& spec) const {
  std::vector<Link*> out;
  auto push = [&out, this](NodeId s, NodeId d) {
    if (Link* l = const_cast<Network*>(net_)->link(s, d)) out.push_back(l);
  };
  switch (spec.kind) {
    case FaultKind::kLinkFlap:
    case FaultKind::kLinkDegrade:
      push(spec.a, spec.b);
      if (spec.bidirectional) push(spec.b, spec.a);
      break;
    case FaultKind::kNodeCrash:
    case FaultKind::kControlOutage:
      for (const NodeId peer : net_->neighbors(spec.a)) {
        push(spec.a, peer);
        push(peer, spec.a);
      }
      break;
  }
  return out;
}

void FaultInjector::apply(std::size_t idx) {
  auto& rec = records_[idx];
  rec.injected_at = net_->loop()->now();
  ++active_;
  const auto links = fault_links(rec.spec);
  switch (rec.spec.kind) {
    case FaultKind::kLinkFlap:
    case FaultKind::kNodeCrash:
    case FaultKind::kControlOutage:
      for (Link* l : links) {
        ++down_count_[link_key(l)];
        l->set_down(true);
      }
      break;
    case FaultKind::kLinkDegrade:
      for (Link* l : links) {
        ++degrade_count_[link_key(l)];
        l->set_loss_override(rec.spec.loss);
        l->set_extra_delay(rec.spec.extra_delay);
      }
      break;
  }
  if ((rec.spec.kind == FaultKind::kNodeCrash ||
       rec.spec.kind == FaultKind::kControlOutage) &&
      on_crash_) {
    on_crash_(rec.spec.a);
  }
  if (rec.spec.duration > 0) {
    schedule(rec.injected_at + rec.spec.duration,
             [this, idx] { repair(idx); });
  }
}

void FaultInjector::repair(std::size_t idx) {
  auto& rec = records_[idx];
  rec.repaired_at = net_->loop()->now();
  if (active_ > 0) --active_;
  const auto links = fault_links(rec.spec);
  switch (rec.spec.kind) {
    case FaultKind::kLinkFlap:
    case FaultKind::kNodeCrash:
    case FaultKind::kControlOutage:
      for (Link* l : links) {
        if (--down_count_[link_key(l)] <= 0) {
          down_count_.erase(link_key(l));
          l->set_down(false);
        }
      }
      break;
    case FaultKind::kLinkDegrade:
      for (Link* l : links) {
        if (--degrade_count_[link_key(l)] <= 0) {
          degrade_count_.erase(link_key(l));
          l->set_loss_override(-1.0);
          l->set_extra_delay(0);
        }
      }
      break;
  }
  if ((rec.spec.kind == FaultKind::kNodeCrash ||
       rec.spec.kind == FaultKind::kControlOutage) &&
      on_restart_) {
    on_restart_(rec.spec.a);
  }
  watch_recovery(idx);
}

void FaultInjector::watch_recovery(std::size_t idx) {
  std::vector<std::pair<Link*, std::uint64_t>> watch;
  for (Link* l : fault_links(records_[idx].spec)) {
    watch.emplace_back(l, l->stats().packets_delivered);
  }
  if (watch.empty()) return;
  const Time deadline = net_->loop()->now() + cfg_.recovery_timeout;
  poll_recovery(idx, std::move(watch), deadline);
}

void FaultInjector::poll_recovery(
    std::size_t idx, std::vector<std::pair<Link*, std::uint64_t>> watch,
    Time deadline) {
  schedule(net_->loop()->now() + cfg_.recovery_poll,
           [this, idx, watch = std::move(watch), deadline] {
             for (const auto& [l, baseline] : watch) {
               if (l->stats().packets_delivered > baseline) {
                 records_[idx].recovered_at = net_->loop()->now();
                 return;
               }
             }
             if (net_->loop()->now() >= deadline) return;  // stays kNever
             poll_recovery(idx, watch, deadline);
           });
}

void FaultInjector::load_plan(
    const FaultPlan& plan, Time horizon,
    const std::vector<std::pair<NodeId, NodeId>>& links,
    const std::vector<NodeId>& crashable, NodeId control) {
  for (const FaultSpec& s : plan.scripted) inject(s);

  // Random schedules are drawn up front, category by category, from a
  // generator seeded only by the plan: the chaos is a pure function of
  // (plan, candidates), independent of anything the workload does.
  Rng rng(plan.seed);
  const Time start = net_->loop()->now();
  auto expand = [&](double per_min, auto make_spec) {
    if (per_min <= 0.0) return;
    const double mean_gap_sec = 60.0 / per_min;
    Time t = start +
             static_cast<Duration>(rng.exponential(mean_gap_sec) *
                                   static_cast<double>(kSec));
    while (t < horizon) {
      FaultSpec spec = make_spec(rng);
      spec.at = t;
      inject(spec);
      t += static_cast<Duration>(rng.exponential(mean_gap_sec) *
                                 static_cast<double>(kSec));
    }
  };
  auto draw_outage = [this](Rng& rng_ref, Duration mean) {
    const auto d = static_cast<Duration>(
        rng_ref.exponential(to_sec(mean)) * static_cast<double>(kSec));
    return std::max(d, cfg_.min_outage);
  };

  if (!links.empty()) {
    expand(plan.link_flaps_per_min, [&](Rng& r) {
      const auto& [a, b] = links[r.index(links.size())];
      FaultSpec s;
      s.kind = FaultKind::kLinkFlap;
      s.a = a;
      s.b = b;
      s.duration = draw_outage(r, plan.flap_outage_mean);
      return s;
    });
    expand(plan.degrades_per_min, [&](Rng& r) {
      const auto& [a, b] = links[r.index(links.size())];
      FaultSpec s;
      s.kind = FaultKind::kLinkDegrade;
      s.a = a;
      s.b = b;
      s.loss = plan.degrade_loss;
      s.extra_delay = plan.degrade_extra_delay;
      s.duration = draw_outage(r, plan.degrade_outage_mean);
      return s;
    });
  }
  if (!crashable.empty()) {
    expand(plan.node_crashes_per_min, [&](Rng& r) {
      FaultSpec s;
      s.kind = FaultKind::kNodeCrash;
      s.a = crashable[r.index(crashable.size())];
      s.duration = draw_outage(r, plan.crash_downtime_mean);
      return s;
    });
  }
  if (control != kNoNode) {
    expand(plan.control_outages_per_min, [&](Rng& r) {
      FaultSpec s;
      s.kind = FaultKind::kControlOutage;
      s.a = control;
      s.duration = draw_outage(r, plan.control_outage_mean);
      return s;
    });
  }
}

}  // namespace livenet::sim
