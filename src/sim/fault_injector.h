#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/network.h"
#include "util/time.h"

// Deterministic fault injection against a live simulated network.
//
// The injector schedules faults on the event loop — scripted ones from
// a FaultPlan plus pseudo-random ones drawn from the plan's seed — and
// applies them through the Link fault hooks (set_down / loss override /
// extra delay). Node-level faults (overlay-node crash, controller
// outage) additionally invoke caller-registered handlers so the layer
// that owns the node objects can wipe and restore their software state;
// the injector itself stays below that layer and only touches links.
//
// Every fault is recorded with its injection time, repair time, and the
// measured recovery time: the delay from repair until the first packet
// is delivered again on any of the fault's links (polled at a fixed
// cadence, so the measurement itself is deterministic). The whole
// schedule is a pure function of (plan, candidates, loop state): the
// same seed replays the same chaos, bit for bit.
namespace livenet::sim {

enum class FaultKind {
  kLinkFlap,       ///< link(s) down for `duration`, then back up
  kLinkDegrade,    ///< loss-rate override + extra delay for `duration`
  kNodeCrash,      ///< all links of node `a` down + crash/restart handlers
  kControlOutage,  ///< controller isolation: same mechanics, labeled apart
};

std::string to_string(FaultKind k);

struct FaultSpec {
  FaultKind kind = FaultKind::kLinkFlap;
  Time at = 0;                ///< injection time (clamped to >= now)
  Duration duration = 1 * kSec;  ///< outage length; 0 = never repaired
  NodeId a = kNoNode;         ///< link src, or the crashed node
  NodeId b = kNoNode;         ///< link dst (link faults only)
  bool bidirectional = true;  ///< link faults hit both directions
  double loss = 0.3;          ///< degrade: loss-rate override
  Duration extra_delay = 0;   ///< degrade: added one-way delay
};

struct FaultRecord {
  FaultSpec spec;
  Time injected_at = kNever;
  Time repaired_at = kNever;
  Time recovered_at = kNever;  ///< first packet delivered after repair

  bool repaired() const { return repaired_at != kNever; }
  bool recovered() const { return recovered_at != kNever; }
  /// Repair -> first-packet delay; kNever until both ends are observed.
  Duration recovery_time() const {
    return repaired() && recovered() ? recovered_at - repaired_at : kNever;
  }
};

/// Declarative chaos configuration: a scripted fault list plus per-kind
/// Poisson processes expanded deterministically from `seed`.
struct FaultPlan {
  std::vector<FaultSpec> scripted;
  std::uint64_t seed = 1;

  double link_flaps_per_min = 0.0;
  Duration flap_outage_mean = 2 * kSec;

  double degrades_per_min = 0.0;
  double degrade_loss = 0.25;
  Duration degrade_extra_delay = 30 * kMs;
  Duration degrade_outage_mean = 5 * kSec;

  double node_crashes_per_min = 0.0;
  Duration crash_downtime_mean = 5 * kSec;

  double control_outages_per_min = 0.0;
  Duration control_outage_mean = 10 * kSec;

  bool enabled() const {
    return !scripted.empty() || link_flaps_per_min > 0.0 ||
           degrades_per_min > 0.0 || node_crashes_per_min > 0.0 ||
           control_outages_per_min > 0.0;
  }
};

class FaultInjector {
 public:
  struct Config {
    Duration recovery_poll = 10 * kMs;     ///< first-packet poll cadence
    Duration recovery_timeout = 30 * kSec; ///< give up watching after this
    Duration min_outage = 250 * kMs;       ///< floor on random durations
  };

  /// Node-fault upcall (crash at injection, restart at repair).
  using NodeHandler = std::function<void(NodeId)>;

  explicit FaultInjector(Network* net) : FaultInjector(net, Config{}) {}
  FaultInjector(Network* net, const Config& cfg);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void set_node_handlers(NodeHandler on_crash, NodeHandler on_restart) {
    on_crash_ = std::move(on_crash);
    on_restart_ = std::move(on_restart);
  }

  /// Schedules one fault (injection at spec.at, repair after duration).
  void inject(const FaultSpec& spec);

  /// Expands a plan: scripted faults verbatim, plus random faults drawn
  /// over [now, horizon). `links` are the (src, dst) pairs eligible for
  /// flaps/degradation, `crashable` the nodes eligible for crashes,
  /// `control` the controller for control outages (kNoNode disables
  /// them). Same plan + same candidates => same schedule.
  void load_plan(const FaultPlan& plan, Time horizon,
                 const std::vector<std::pair<NodeId, NodeId>>& links,
                 const std::vector<NodeId>& crashable,
                 NodeId control = kNoNode);

  const std::vector<FaultRecord>& records() const { return records_; }
  /// Faults currently applied (injected, not yet repaired).
  std::size_t faults_active() const { return active_; }

 private:
  static std::uint64_t link_key(const Link* l) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(l->src()))
            << 32) |
           static_cast<std::uint32_t>(l->dst());
  }

  void schedule(Time when, std::function<void()> fn);
  void apply(std::size_t idx);
  void repair(std::size_t idx);
  void watch_recovery(std::size_t idx);
  void poll_recovery(std::size_t idx,
                     std::vector<std::pair<Link*, std::uint64_t>> watch,
                     Time deadline);
  /// Links a fault manipulates: the configured pair (and reverse) for
  /// link faults, every link touching the node for node faults.
  std::vector<Link*> fault_links(const FaultSpec& spec) const;

  Network* net_;
  Config cfg_;
  NodeHandler on_crash_;
  NodeHandler on_restart_;
  std::vector<FaultRecord> records_;
  std::size_t active_ = 0;
  // Overlap guards: a link stays down / degraded until the last fault
  // holding it is repaired.
  std::unordered_map<std::uint64_t, int> down_count_;
  std::unordered_map<std::uint64_t, int> degrade_count_;
  std::unordered_set<EventId> pending_;  ///< cancelled on destruction
};

}  // namespace livenet::sim
