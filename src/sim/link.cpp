#include "sim/link.h"

#include <algorithm>
#include <cmath>

#include "telemetry/metrics.h"

namespace livenet::sim {

Link::Link(EventLoop* loop, NodeId src, NodeId dst, const LinkConfig& cfg,
           Rng rng)
    : loop_(loop), src_(src), dst_(dst), cfg_(cfg), rng_(rng) {}

std::size_t Link::backlog_bytes() const {
  const Time now = loop_->now();
  if (busy_until_ <= now) return 0;
  const double secs = to_sec(busy_until_ - now);
  return static_cast<std::size_t>(secs * cfg_.bandwidth_bps / 8.0);
}

SendResult Link::send(std::size_t bytes) {
  const Time now = loop_->now();
  roll_bin(now);
  ++stats_.packets_sent;

  // A downed link black-holes everything without occupying the
  // transmitter (the packet dies at the broken segment, not the NIC).
  if (down_) {
    ++stats_.packets_lost;
    telemetry::handles().link_drops_down->add();
    return SendResult{false, kNever, SendDrop::kDown};
  }

  // Tail drop when the transmit queue is over the configured limit.
  if (busy_until_ > now && backlog_bytes() > cfg_.queue_limit_bytes) {
    ++stats_.packets_dropped;
    telemetry::handles().link_drops_queue->add();
    return SendResult{false, kNever, SendDrop::kQueue};
  }

  // Memoized serialization delay: back-to-back packets usually share
  // (size, bandwidth), so the divide only runs when either changes.
  // Bit-identical — a miss runs the exact same expression.
  Duration serialization;
  if (bytes == memo_bytes_ && cfg_.bandwidth_bps == memo_bw_) {
    serialization = memo_serialization_;
  } else {
    serialization =
        static_cast<Duration>(static_cast<double>(bytes) * 8.0 /
                              cfg_.bandwidth_bps * static_cast<double>(kSec));
    memo_bytes_ = bytes;
    memo_bw_ = cfg_.bandwidth_bps;
    memo_serialization_ = serialization;
  }
  busy_until_ = std::max(busy_until_, now) + serialization;
  stats_.bytes_sent += bytes;
  bin_bytes_ += bytes;

  // Random wire loss (applied after the packet occupied the transmitter,
  // as a real lost packet would). A degradation fault's override wins
  // over the configured base loss.
  const double loss =
      loss_override_ >= 0.0 ? loss_override_ : cfg_.loss_rate;
  if (loss > 0.0 && rng_.chance(loss)) {
    ++stats_.packets_lost;
    telemetry::handles().link_drops_wire->add();
    return SendResult{false, kNever, SendDrop::kWire};
  }

  Duration jitter = 0;
  if (cfg_.jitter_stddev > 0) {
    jitter = static_cast<Duration>(
        std::abs(rng_.normal(0.0, static_cast<double>(cfg_.jitter_stddev))));
  }
  ++stats_.packets_delivered;
  return SendResult{
      true, busy_until_ + cfg_.propagation_delay + extra_delay_ + jitter};
}

void Link::roll_bin(Time now) const {
  while (now - bin_start_ >= kBin) {
    const double capacity_bytes = cfg_.bandwidth_bps / 8.0 * to_sec(kBin);
    const double bin_util =
        capacity_bytes > 0.0 ? static_cast<double>(bin_bytes_) / capacity_bytes
                             : 0.0;
    util_ewma_ = 0.5 * util_ewma_ + 0.5 * std::min(1.0, bin_util);
    bin_bytes_ = 0;
    bin_start_ += kBin;
    // Fast-forward over long idle gaps instead of iterating bin by bin.
    if (now - bin_start_ >= 32 * kBin) {
      util_ewma_ = 0.0;
      bin_start_ = now - (now % kBin);
    }
  }
}

double Link::utilization() const {
  roll_bin(loop_->now());
  return util_ewma_;
}

}  // namespace livenet::sim
