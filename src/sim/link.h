#pragma once

#include <cstdint>

#include "sim/event_loop.h"
#include "sim/message.h"
#include "util/rng.h"
#include "util/time.h"

// A unidirectional network link between two simulated nodes.
//
// The link models the three delay components that matter to an overlay
// transport: serialization (size / bandwidth), queueing (a busy
// transmitter delays subsequent packets; a finite buffer tail-drops),
// and propagation (configured one-way delay plus small jitter). Random
// loss models the backbone's residual loss (the paper observes < 0.175%
// even at peak), and is settable over time so workloads can create
// diurnal loss patterns.
namespace livenet::sim {

struct LinkConfig {
  Duration propagation_delay = 10 * kMs;  ///< one-way, excluding jitter
  double bandwidth_bps = 1e9;             ///< transmit rate
  double loss_rate = 0.0;                 ///< independent drop probability
  Duration jitter_stddev = 200 * kUs;     ///< per-packet delay jitter (>= 0)
  std::size_t queue_limit_bytes = 3 * 1024 * 1024;  ///< tail-drop threshold
};

struct LinkStats {
  std::uint64_t packets_sent = 0;      ///< accepted for transmission
  std::uint64_t packets_delivered = 0; ///< scheduled for delivery
  std::uint64_t packets_lost = 0;      ///< random wire loss
  std::uint64_t packets_dropped = 0;   ///< queue overflow (tail drop)
  std::uint64_t bytes_sent = 0;
};

/// Why a link refused (or lost) a packet; telemetry keys on this.
enum class SendDrop : std::uint8_t {
  kNone,     ///< delivered
  kDown,     ///< black-holed on an administratively downed link
  kQueue,    ///< tail drop (transmit queue over limit)
  kWire,     ///< random wire loss
  kNoRoute,  ///< no link for the (src, dst) pair (misroute / bad partition)
};

/// Outcome of offering a packet to the link.
struct SendResult {
  bool delivered = false;  ///< false: dropped (queue) or lost (wire)
  Time arrival_time = kNever;
  SendDrop drop = SendDrop::kNone;
};

class Link {
 public:
  Link(EventLoop* loop, NodeId src, NodeId dst, const LinkConfig& cfg,
       Rng rng);

  NodeId src() const { return src_; }
  NodeId dst() const { return dst_; }

  /// Offers a packet of the given size; computes drop/loss and, on
  /// success, the virtual arrival time at dst.
  SendResult send(std::size_t bytes);

  /// Ground-truth round-trip propagation delay (both directions assumed
  /// symmetric); used by the UDP-ping measurement model.
  Duration base_rtt() const { return 2 * cfg_.propagation_delay; }

  /// Configured one-way propagation delay.
  Duration propagation_delay() const { return cfg_.propagation_delay; }

  double loss_rate() const { return cfg_.loss_rate; }
  void set_loss_rate(double p) { cfg_.loss_rate = p; }

  // Fault-injection hooks. They layer on top of the configured loss so
  // that periodic re-writes of the base loss (diurnal scaling calls
  // set_loss_rate every timeline sample) never silently clear an
  // injected fault.

  /// Administratively downs the link: packets are still offered (and
  /// counted as sent) but black-holed without occupying the transmitter.
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Loss-rate override (degradation fault); takes precedence over the
  /// configured loss while >= 0. Negative clears the override.
  void set_loss_override(double p) { loss_override_ = p; }
  double loss_override() const { return loss_override_; }

  /// Extra one-way delay added while a degradation fault is active.
  void set_extra_delay(Duration d) { extra_delay_ = d > 0 ? d : 0; }
  Duration extra_delay() const { return extra_delay_; }

  /// Drop probability currently applied to the wire (down = certain
  /// loss; otherwise the override, else the configured loss). This is
  /// what transport-layer measurement observes.
  double effective_loss_rate() const {
    if (down_) return 1.0;
    return loss_override_ >= 0.0 ? loss_override_ : cfg_.loss_rate;
  }

  double bandwidth_bps() const { return cfg_.bandwidth_bps; }
  void set_bandwidth_bps(double bps) { cfg_.bandwidth_bps = bps; }

  /// Smoothed utilization in [0, 1]: bytes sent over the last full
  /// accounting bin divided by link capacity.
  double utilization() const;

  /// Current queueing backlog in bytes (what a new packet would wait
  /// behind).
  std::size_t backlog_bytes() const;

  const LinkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = LinkStats{}; }

 private:
  void roll_bin(Time now) const;

  // Member order is send()-hot first: everything the per-packet fast
  // path loads sits in the first cache line or two; cold/config state
  // follows.
  EventLoop* loop_;
  NodeId src_;
  NodeId dst_;
  Time busy_until_ = 0;
  /// Last computed serialization delay and its inputs (see send()).
  std::size_t memo_bytes_ = 0;
  double memo_bw_ = 0.0;
  Duration memo_serialization_ = 0;
  bool down_ = false;
  double loss_override_ = -1.0;
  // Utilization accounting: fixed 1-second bins, last completed bin's
  // utilization is reported (smoothed with EWMA).
  static constexpr Duration kBin = 1 * kSec;
  mutable Time bin_start_ = 0;
  mutable std::uint64_t bin_bytes_ = 0;
  LinkConfig cfg_;
  LinkStats stats_;
  Duration extra_delay_ = 0;
  Rng rng_;
  mutable double util_ewma_ = 0.0;
};

}  // namespace livenet::sim
