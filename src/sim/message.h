#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

#include "util/pool.h"

// Messages exchanged between simulated nodes.
//
// The simulator treats payloads as opaque: a Message carries only its
// wire size (which drives serialization delay and bandwidth accounting)
// and a runtime type used by receivers to dispatch. Higher layers
// subclass Message (RtpPacket, NackMessage, SubscribeRequest, ...).
//
// Messages are immutable once sent and are shared by reference count:
// the fast path forwards the *same* packet object to many subscribers,
// mirroring the zero-copy forwarding the paper's nodes implement. The
// count is intrusive and non-atomic — the simulator is single-threaded
// by construction (one EventLoop, one virtual clock), so the fan-out
// path pays a plain increment, not an atomic RMW, per subscriber.
// Allocation goes through make_message(), which draws from a per-size
// freelist arena and records the matching deleter, so steady-state
// message traffic never touches the system allocator.
namespace livenet::sim {

/// Node identifier within a Network. Dense, assigned at registration.
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

template <typename T>
class IntrusivePtr;

class Message {
 public:
  Message() = default;
  virtual ~Message() = default;
  /// Copying a message never copies its identity as a refcounted
  /// object: the copy starts unreferenced and unpooled.
  Message(const Message&) noexcept {}
  Message& operator=(const Message&) noexcept { return *this; }

  /// Wire size in bytes (headers + payload), used for link transmission
  /// time and utilization accounting.
  virtual std::size_t wire_size() const = 0;

  /// Human-readable type tag for logs and traces.
  virtual std::string describe() const = 0;

  /// Telemetry identity for sampled per-hop tracing. A zero trace_id
  /// means "untraced"; only RtpPacket overrides this (control messages
  /// are not traced). The network layer consults it solely when the
  /// tracer is active, so untraced runs never pay the virtual call.
  struct TraceTag {
    std::uint64_t trace_id = 0;
    std::uint64_t stream = 0;
    std::uint64_t seq = 0;
  };
  virtual TraceTag trace_tag() const { return {}; }

  // ---- Shard-boundary support (see DESIGN.md "Sharded simulation").
  //
  // A message crossing from one shard's thread to another must not
  // share mutable state (the non-atomic refcount, pooled sub-objects)
  // with anything the sending shard retains. Two safe transfers exist:
  //   - move-through: the handoff queue holds the *only* reference and
  //     the subclass owns all of its state exclusively
  //     (transfer_safe() == true) — the pointer itself migrates;
  //   - deep copy: clone_message() builds an independent replica on the
  //     sending thread; the original stays behind.
  // The base defaults are maximally conservative: not transfer-safe and
  // not cloneable (a nullptr clone makes the boundary drop the message
  // loudly). Plain-data messages opt in via CloneableMessage<T> below;
  // RtpPacket implements a counted deep-body clone of its own.

  /// True if handing the sole reference to another thread shares no
  /// state with the originating shard. False for anything holding a
  /// refcounted sub-object (RtpPacket's shared body).
  virtual bool transfer_safe() const { return false; }

  /// Independent deep replica allocated from the calling thread's pool;
  /// a null pointer means "not cloneable" (the shard boundary drops the
  /// message and logs).
  virtual IntrusivePtr<const Message> clone_message() const;

  // Intrusive refcount plumbing (used by IntrusivePtr; not part of the
  // message API proper).
  void msg_add_ref() const noexcept { ++refs_; }
  void msg_release() const noexcept {
    if (--refs_ == 0) {
      if (deleter_ != nullptr) {
        deleter_(this);
      } else {
        delete this;
      }
    }
  }

  /// Installed by make_message() so release returns the object to the
  /// pool it came from; not for general use.
  void msg_set_deleter(void (*d)(const Message*) noexcept) noexcept {
    deleter_ = d;
  }

  /// Current reference count (shard-boundary move-through is legal only
  /// at exactly one reference — the handoff queue's own).
  std::uint32_t msg_ref_count() const noexcept { return refs_; }

 private:
  mutable std::uint32_t refs_ = 0;
  /// Returns the object to its pool; nullptr means plain `delete`.
  void (*deleter_)(const Message*) noexcept = nullptr;
};

/// Non-atomic intrusive smart pointer for Message subclasses. Mirrors
/// the shared_ptr surface the codebase used before (copy/move, get,
/// ->, bool, ==), minus weak pointers and aliasing, which nothing
/// needed. T may be const-qualified; the refcount is mutable.
template <typename T>
class IntrusivePtr {
 public:
  using element_type = T;

  IntrusivePtr() = default;
  IntrusivePtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Wraps a raw pointer, taking one reference.
  explicit IntrusivePtr(T* p) : p_(p) {
    if (p_ != nullptr) p_->msg_add_ref();
  }

  IntrusivePtr(const IntrusivePtr& o) : p_(o.p_) {
    if (p_ != nullptr) p_->msg_add_ref();
  }
  IntrusivePtr(IntrusivePtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }

  /// Converting copy/move (derived-to-base, non-const to const).
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  IntrusivePtr(const IntrusivePtr<U>& o)  // NOLINT
      : p_(o.get()) {
    if (p_ != nullptr) p_->msg_add_ref();
  }
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  IntrusivePtr(IntrusivePtr<U>&& o) noexcept  // NOLINT
      : p_(o.detach()) {}

  ~IntrusivePtr() {
    if (p_ != nullptr) p_->msg_release();
  }

  IntrusivePtr& operator=(const IntrusivePtr& o) {
    IntrusivePtr(o).swap(*this);
    return *this;
  }
  IntrusivePtr& operator=(IntrusivePtr&& o) noexcept {
    IntrusivePtr(std::move(o)).swap(*this);
    return *this;
  }
  IntrusivePtr& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  void swap(IntrusivePtr& o) noexcept { std::swap(p_, o.p_); }
  void reset() {
    if (p_ != nullptr) p_->msg_release();
    p_ = nullptr;
  }

  T* get() const { return p_; }
  T* operator->() const { return p_; }
  T& operator*() const { return *p_; }
  explicit operator bool() const { return p_ != nullptr; }

  /// Releases ownership of the raw pointer without dropping the ref.
  T* detach() noexcept {
    T* p = p_;
    p_ = nullptr;
    return p;
  }

  friend bool operator==(const IntrusivePtr& a, const IntrusivePtr& b) {
    return a.p_ == b.p_;
  }
  friend bool operator!=(const IntrusivePtr& a, const IntrusivePtr& b) {
    return a.p_ != b.p_;
  }
  friend bool operator==(const IntrusivePtr& a, std::nullptr_t) {
    return a.p_ == nullptr;
  }
  friend bool operator!=(const IntrusivePtr& a, std::nullptr_t) {
    return a.p_ != nullptr;
  }

 private:
  T* p_ = nullptr;
};

using MessagePtr = IntrusivePtr<const Message>;

/// Allocates a message from the per-size freelist arena (replacement
/// for std::make_shared at every message construction site).
template <typename T, typename... Args>
auto make_message(Args&&... args) {
  static_assert(std::is_base_of_v<Message, T>);
  T* p = util::pool_new<T>(std::forward<Args>(args)...);
  p->msg_set_deleter([](const Message* m) noexcept {
    util::pool_delete(const_cast<T*>(static_cast<const T*>(m)));
  });
  return IntrusivePtr<T>(p);
}

/// dynamic_cast across IntrusivePtr (replacement for
/// std::dynamic_pointer_cast in receiver dispatch switches).
template <typename To, typename From>
IntrusivePtr<To> msg_cast(const IntrusivePtr<From>& m) {
  return IntrusivePtr<To>(dynamic_cast<To*>(m.get()));
}

inline IntrusivePtr<const Message> Message::clone_message() const {
  return {};
}

/// CRTP base for plain-data messages (no refcounted sub-objects): gives
/// the subclass a pooled copy-constructor clone and marks it safe to
/// move through a shard boundary when the handoff holds the only
/// reference. All control-plane messages derive from this; RtpPacket
/// does not (its body is shared and needs a counted deep copy).
template <typename Derived>
class CloneableMessage : public Message {
 public:
  IntrusivePtr<const Message> clone_message() const override {
    return make_message<Derived>(static_cast<const Derived&>(*this));
  }
  bool transfer_safe() const override { return true; }
};

}  // namespace livenet::sim
