#pragma once

#include <cstdint>
#include <memory>
#include <string>

// Messages exchanged between simulated nodes.
//
// The simulator treats payloads as opaque: a Message carries only its
// wire size (which drives serialization delay and bandwidth accounting)
// and a runtime type used by receivers to dispatch. Higher layers
// subclass Message (RtpPacket, NackMessage, SubscribeRequest, ...).
//
// Messages are immutable once sent and are shared by reference count:
// the fast path forwards the *same* packet object to many subscribers,
// mirroring the zero-copy forwarding the paper's nodes implement.
namespace livenet::sim {

/// Node identifier within a Network. Dense, assigned at registration.
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

class Message {
 public:
  virtual ~Message() = default;

  /// Wire size in bytes (headers + payload), used for link transmission
  /// time and utilization accounting.
  virtual std::size_t wire_size() const = 0;

  /// Human-readable type tag for logs and traces.
  virtual std::string describe() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace livenet::sim
