#include "sim/network.h"

#include <algorithm>

#include "telemetry/trace.h"
#include "util/logging.h"

namespace livenet::sim {

NodeId Network::add_node(SimNode* node) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  node->set_node_id(id);
  return id;
}

std::size_t Network::index_pos(NodeId src, NodeId dst) const {
  const auto& row = rows_[static_cast<std::size_t>(src)];
  const auto& idx = row_index_[static_cast<std::size_t>(src)];
  return static_cast<std::size_t>(
      std::lower_bound(idx.begin(), idx.end(), dst,
                       [&row](std::uint32_t pos, NodeId d) {
                         return row[pos].dst < d;
                       }) -
      idx.begin());
}

Link* Network::lookup(NodeId src, NodeId dst) const {
  if (src < 0 || static_cast<std::size_t>(src) >= rows_.size()) return nullptr;
  const auto& row = rows_[static_cast<std::size_t>(src)];
  const auto& idx = row_index_[static_cast<std::size_t>(src)];
  const std::size_t p = index_pos(src, dst);
  if (p == idx.size() || row[idx[p]].dst != dst) return nullptr;
  return row[idx[p]].link.get();
}

Link* Network::add_link(NodeId src, NodeId dst, const LinkConfig& cfg) {
  // Fork the per-link rng before anything else so the stream a link
  // receives depends only on the add_link call order.
  auto link_ptr = std::make_unique<Link>(loop_, src, dst, cfg, rng_.fork());
  Link* raw = link_ptr.get();
  if (src >= 0 && static_cast<std::size_t>(src) >= rows_.size()) {
    rows_.resize(static_cast<std::size_t>(src) + 1);
    row_index_.resize(static_cast<std::size_t>(src) + 1);
  }
  auto& row = rows_[static_cast<std::size_t>(src)];
  auto& idx = row_index_[static_cast<std::size_t>(src)];
  const std::size_t p = index_pos(src, dst);
  if (p < idx.size() && row[idx[p]].dst == dst) {
    row[idx[p]].link = std::move(link_ptr);  // replace in place
  } else {
    idx.insert(idx.begin() + static_cast<std::ptrdiff_t>(p),
               static_cast<std::uint32_t>(row.size()));
    row.push_back(Edge{dst, std::move(link_ptr)});
  }
  if (src < frozen_n_ && dst >= 0 && dst < frozen_n_) {
    matrix_[static_cast<std::size_t>(src) * static_cast<std::size_t>(frozen_n_) +
            static_cast<std::size_t>(dst)] = raw;
  }
  return raw;
}

void Network::add_bidi_link(NodeId a, NodeId b, const LinkConfig& cfg) {
  add_link(a, b, cfg);
  add_link(b, a, cfg);
}

void Network::freeze_topology() {
  frozen_n_ = static_cast<NodeId>(nodes_.size());
  const auto n = static_cast<std::size_t>(frozen_n_);
  matrix_.assign(n * n, nullptr);
  for (std::size_t src = 0; src < rows_.size() && src < n; ++src) {
    for (const auto& e : rows_[src]) {
      if (e.dst >= 0 && static_cast<std::size_t>(e.dst) < n) {
        matrix_[src * n + static_cast<std::size_t>(e.dst)] = e.link.get();
      }
    }
  }
}

bool Network::send(NodeId src, NodeId dst, MessagePtr msg) {
  // Hot path: frozen core pairs resolve with one indexed load.
  Link* l;
  if (static_cast<std::uint32_t>(src) < static_cast<std::uint32_t>(frozen_n_) &&
      static_cast<std::uint32_t>(dst) < static_cast<std::uint32_t>(frozen_n_)) {
    l = matrix_[static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(frozen_n_) +
                static_cast<std::size_t>(dst)];
  } else {
    l = lookup(src, dst);
  }
  if (l == nullptr) {
    LIVENET_LOG(kWarn) << "send: no link " << src << "->" << dst << " for "
                       << msg->describe();
    return false;
  }
  const SendResult res = l->send(msg->wire_size());
  // Sampled per-hop tracing: record the link transit (or its loss) for
  // traced packets. The tag extraction is a virtual call, so it is
  // gated on the tracer having handed out any ids at all this run.
  if (telemetry::Tracer::active()) {
    const Message::TraceTag tag = msg->trace_tag();
    if (tag.trace_id != 0) {
      if (res.delivered) {
        // Both ends of the wire, stamped with their own virtual times
        // (the dequeue record is written now but dated at arrival; the
        // exporter orders by time, not by append order).
        telemetry::record_hop(tag.trace_id, loop_->now(), tag.stream, tag.seq,
                              src, dst, telemetry::HopEvent::kLinkEnqueue);
        telemetry::record_hop(tag.trace_id, res.arrival_time, tag.stream,
                              tag.seq, dst, src,
                              telemetry::HopEvent::kLinkDequeue);
      } else {
        telemetry::DropReason reason = telemetry::DropReason::kWireLoss;
        if (res.drop == SendDrop::kDown) {
          reason = telemetry::DropReason::kLinkDown;
        } else if (res.drop == SendDrop::kQueue) {
          reason = telemetry::DropReason::kQueueOverflow;
        }
        telemetry::record_hop(tag.trace_id, loop_->now(), tag.stream, tag.seq,
                              src, dst, telemetry::HopEvent::kDrop, reason);
      }
    }
  }
  if (!res.delivered) return false;
  SimNode* receiver = node(dst);
  loop_->schedule_at(res.arrival_time,
                     [receiver, src, msg = std::move(msg)]() {
                       receiver->on_message(src, msg);
                     });
  return true;
}

Link* Network::link(NodeId src, NodeId dst) { return lookup(src, dst); }

const Link* Network::link(NodeId src, NodeId dst) const {
  return lookup(src, dst);
}

std::vector<NodeId> Network::neighbors(NodeId src) const {
  std::vector<NodeId> out;
  if (src < 0 || static_cast<std::size_t>(src) >= rows_.size()) return out;
  const auto& row = rows_[static_cast<std::size_t>(src)];
  out.reserve(row.size());
  for (const auto& e : row) out.push_back(e.dst);
  return out;
}

std::uint64_t Network::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& row : rows_) {
    for (const auto& e : row) total += e.link->stats().bytes_sent;
  }
  return total;
}

}  // namespace livenet::sim
