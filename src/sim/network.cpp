#include "sim/network.h"

#include <algorithm>

#include "util/logging.h"

namespace livenet::sim {

NodeId Network::add_node(SimNode* node) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  node->set_node_id(id);
  return id;
}

Link* Network::add_link(NodeId src, NodeId dst, const LinkConfig& cfg) {
  auto link_ptr = std::make_unique<Link>(loop_, src, dst, cfg, rng_.fork());
  Link* raw = link_ptr.get();
  const auto k = key(src, dst);
  const bool existed = links_.find(k) != links_.end();
  links_[k] = std::move(link_ptr);
  if (!existed) adjacency_[src].push_back(dst);
  return raw;
}

void Network::add_bidi_link(NodeId a, NodeId b, const LinkConfig& cfg) {
  add_link(a, b, cfg);
  add_link(b, a, cfg);
}

bool Network::send(NodeId src, NodeId dst, MessagePtr msg) {
  Link* l = link(src, dst);
  if (l == nullptr) {
    LIVENET_LOG(kWarn) << "send: no link " << src << "->" << dst << " for "
                       << msg->describe();
    return false;
  }
  const SendResult res = l->send(msg->wire_size());
  if (!res.delivered) return false;
  SimNode* receiver = node(dst);
  loop_->schedule_at(res.arrival_time,
                     [receiver, src, msg = std::move(msg)]() {
                       receiver->on_message(src, msg);
                     });
  return true;
}

Link* Network::link(NodeId src, NodeId dst) {
  const auto it = links_.find(key(src, dst));
  return it != links_.end() ? it->second.get() : nullptr;
}

const Link* Network::link(NodeId src, NodeId dst) const {
  const auto it = links_.find(key(src, dst));
  return it != links_.end() ? it->second.get() : nullptr;
}

std::vector<NodeId> Network::neighbors(NodeId src) const {
  const auto it = adjacency_.find(src);
  return it != adjacency_.end() ? it->second : std::vector<NodeId>{};
}

std::uint64_t Network::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& [k, l] : links_) total += l->stats().bytes_sent;
  return total;
}

}  // namespace livenet::sim
