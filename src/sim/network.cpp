#include "sim/network.h"

#include <algorithm>
#include <cassert>

#include "telemetry/trace.h"
#include "util/logging.h"

namespace livenet::sim {

NodeId Network::add_node(SimNode* node) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  node->set_node_id(id);
  return id;
}

NodeId Network::add_remote_node() {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(nullptr);
  return id;
}

std::size_t Network::index_pos(NodeId src, NodeId dst) const {
  const auto& row = rows_[static_cast<std::size_t>(src)];
  const auto& idx = row_index_[static_cast<std::size_t>(src)];
  return static_cast<std::size_t>(
      std::lower_bound(idx.begin(), idx.end(), dst,
                       [&row](std::uint32_t pos, NodeId d) {
                         return row[pos].dst < d;
                       }) -
      idx.begin());
}

const Network::Edge* Network::find_edge(NodeId src, NodeId dst) const {
  if (src < 0 || static_cast<std::size_t>(src) >= rows_.size()) return nullptr;
  const auto& row = rows_[static_cast<std::size_t>(src)];
  const auto& idx = row_index_[static_cast<std::size_t>(src)];
  const std::size_t p = index_pos(src, dst);
  if (p == idx.size() || row[idx[p]].dst != dst) return nullptr;
  return &row[idx[p]];
}

Network::Edge* Network::find_edge(NodeId src, NodeId dst) {
  return const_cast<Edge*>(
      static_cast<const Network*>(this)->find_edge(src, dst));
}

Link* Network::lookup(NodeId src, NodeId dst) const {
  const Edge* e = find_edge(src, dst);
  return e != nullptr ? e->link.get() : nullptr;
}

Link* Network::add_link(NodeId src, NodeId dst, const LinkConfig& cfg) {
  // Fork the per-link rng before anything else so the stream a link
  // receives depends only on the add_link call order.
  return add_link_impl(src, dst, cfg, rng_.fork());
}

Link* Network::add_link(NodeId src, NodeId dst, const LinkConfig& cfg,
                        std::uint64_t rng_seed) {
  return add_link_impl(src, dst, cfg, Rng(rng_seed));
}

Link* Network::add_link_impl(NodeId src, NodeId dst, const LinkConfig& cfg,
                             Rng rng) {
  if (src < 0 || dst < 0) {
    // Reject loudly: a negative id would previously index rows_ with a
    // huge size_t (UB) or create a link the frozen matrix can never
    // see, silently shadowed behind the sorted-row fallback.
    LIVENET_LOG(kError) << "add_link: invalid node pair " << src << "->"
                        << dst;
    return nullptr;
  }
  auto link_ptr = std::make_unique<Link>(loop_, src, dst, cfg, rng);
  Link* raw = link_ptr.get();
  if (static_cast<std::size_t>(src) >= rows_.size()) {
    rows_.resize(static_cast<std::size_t>(src) + 1);
    row_index_.resize(static_cast<std::size_t>(src) + 1);
  }
  auto& row = rows_[static_cast<std::size_t>(src)];
  auto& idx = row_index_[static_cast<std::size_t>(src)];
  const std::size_t p = index_pos(src, dst);
  if (p < idx.size() && row[idx[p]].dst == dst) {
    // Replace in place; the inbox (and any in-flight deliveries) stays,
    // matching the old behaviour where already-scheduled deliveries
    // were unaffected by a link swap.
    row[idx[p]].link = std::move(link_ptr);
  } else {
    idx.insert(idx.begin() + static_cast<std::ptrdiff_t>(p),
               static_cast<std::uint32_t>(row.size()));
    auto inbox = std::make_unique<Inbox>();
    inbox->src = src;
    inbox->dst = dst;
    row.push_back(Edge{dst, std::move(link_ptr), std::move(inbox)});
  }
  if (src < frozen_n_ && dst < frozen_n_) {
    const Edge& e = row[idx[index_pos(src, dst)]];
    matrix_[static_cast<std::size_t>(src) * static_cast<std::size_t>(frozen_n_) +
            static_cast<std::size_t>(dst)] = Route{raw, e.inbox.get()};
  }
  return raw;
}

void Network::add_bidi_link(NodeId a, NodeId b, const LinkConfig& cfg) {
  add_link(a, b, cfg);
  add_link(b, a, cfg);
}

void Network::freeze_topology() {
  frozen_n_ = static_cast<NodeId>(nodes_.size());
  const auto n = static_cast<std::size_t>(frozen_n_);
  matrix_.assign(n * n, Route{});
  for (std::size_t src = 0; src < rows_.size() && src < n; ++src) {
    for (const auto& e : rows_[src]) {
      if (e.dst >= 0 && static_cast<std::size_t>(e.dst) < n) {
        matrix_[src * n + static_cast<std::size_t>(e.dst)] =
            Route{e.link.get(), e.inbox.get()};
      }
    }
  }
}

SendResult Network::send_ex(NodeId src, NodeId dst, MessagePtr msg) {
  // Hot path: frozen core pairs resolve with one indexed load.
  Link* l;
  Inbox* ib;
  if (static_cast<std::uint32_t>(src) < static_cast<std::uint32_t>(frozen_n_) &&
      static_cast<std::uint32_t>(dst) < static_cast<std::uint32_t>(frozen_n_)) {
    const Route& r = matrix_[static_cast<std::size_t>(src) *
                                 static_cast<std::size_t>(frozen_n_) +
                             static_cast<std::size_t>(dst)];
    l = r.link;
    ib = r.inbox;
    // The dense matrix must never shadow the authoritative rows: every
    // add_link on a frozen pair updates both.
    assert(l == lookup(src, dst) &&
           "frozen matrix out of sync with sorted-row index");
  } else {
    Edge* e = find_edge(src, dst);
    l = e != nullptr ? e->link.get() : nullptr;
    ib = e != nullptr ? e->inbox.get() : nullptr;
  }
  if (l == nullptr) {
    // Routing miss: reason-coded drop, never an abort. A bad partition
    // map (or any post-freeze misroute) shows up as kNoRoute drops that
    // tests can count; Release runs keep going.
    ++route_misses_;
    if (route_miss_policy_ == RouteMissPolicy::kStrict) {
      LIVENET_LOG(kError) << "send: no link " << src << "->" << dst << " for "
                          << msg->describe();
    } else {
      LIVENET_LOG(kDebug) << "send: no link " << src << "->" << dst;
    }
    return SendResult{false, kNever, SendDrop::kNoRoute};
  }
  const SendResult res = l->send(msg->wire_size());
  // Sampled per-hop tracing: record the link transit (or its loss) for
  // traced packets. The tag extraction is a virtual call, so it is
  // gated on the tracer having handed out any ids at all this run.
  if (telemetry::Tracer::active()) {
    const Message::TraceTag tag = msg->trace_tag();
    if (tag.trace_id != 0) {
      if (res.delivered) {
        // Both ends of the wire, stamped with their own virtual times
        // (the dequeue record is written now but dated at arrival; the
        // exporter orders by time, not by append order).
        telemetry::record_hop(tag.trace_id, loop_->now(), tag.stream, tag.seq,
                              src, dst, telemetry::HopEvent::kLinkEnqueue);
        telemetry::record_hop(tag.trace_id, res.arrival_time, tag.stream,
                              tag.seq, dst, src,
                              telemetry::HopEvent::kLinkDequeue);
      } else {
        telemetry::DropReason reason = telemetry::DropReason::kWireLoss;
        if (res.drop == SendDrop::kDown) {
          reason = telemetry::DropReason::kLinkDown;
        } else if (res.drop == SendDrop::kQueue) {
          reason = telemetry::DropReason::kQueueOverflow;
        }
        telemetry::record_hop(tag.trace_id, loop_->now(), tag.stream, tag.seq,
                              src, dst, telemetry::HopEvent::kDrop, reason);
      }
    }
  }
  if (!res.delivered) return res;
  const Time arrival = std::max(res.arrival_time, loop_->now());
  if (region_of_ != nullptr && region_of_[src] != region_of_[dst]) {
    // Region boundary: hand the delivered packet to the sharded runtime
    // instead of the local inbox. Taken for *every* cross-region send,
    // in single-shard runs too — the delivery path must not depend on
    // the shard count or the goldens would.
    xregion_(src, dst, arrival, std::move(msg));
    return res;
  }
  // Reserve the packet's dispatch slot now — exactly the seq the old
  // per-packet schedule_at would have consumed — and park it in the
  // link's inbox.
  enqueue_delivery(ib, arrival, loop_->reserve_seq(), std::move(msg));
  return res;
}

void Network::deliver_remote(NodeId src, NodeId dst, Time arrival,
                             MessagePtr msg) {
  SimNode* receiver = node(dst);
  if (receiver == nullptr) {
    LIVENET_LOG(kError) << "deliver_remote: no node " << dst << " for "
                        << src << "->" << dst;
    return;
  }
  loop_->schedule_at(arrival, [receiver, src, m = std::move(msg)] {
    MessagePtr one = m;
    receiver->on_message_batch(src, &one, 1);
  });
}

void Network::schedule_flush(Inbox* ib, Time when, std::uint64_t seq) {
  ib->flush = loop_->schedule_at_seq(when, seq, [this, ib] {
    ib->flush = kInvalidEvent;
    drain(ib);
  });
  ib->flush_at = when;
  ib->flush_seq = seq;
}

void Network::Inbox::push(Time arrival, std::uint64_t seq, MessagePtr msg) {
  if (!heaped) {
    if (!draining && head != 0 && ms.size() == ms.capacity()) {
      // Amortized compaction: a never-quite-empty inbox must not grow
      // its consumed prefix without bound. (Never while a drain slice
      // of this inbox is live in an upcall — it would move under it.)
      key.erase(key.begin(), key.begin() + head);
      ms.erase(ms.begin(), ms.begin() + head);
      head = 0;
    }
    const bool in_order = ms.size() == head || key.back().at < arrival ||
                          (key.back().at == arrival && key.back().seq < seq);
    if (in_order && !(draining && ms.size() == ms.capacity())) {
      key.push_back(Key{arrival, seq});
      ms.push_back(std::move(msg));
      return;
    }
    // Out-of-order arrival (jitter reorder) — or an append that would
    // reallocate while this inbox's drain slice is live in an upcall:
    // move the live suffix into the heap and stay there until the
    // inbox drains empty. The consumed prefix [0, head) — including a
    // mid-upcall slice — stays in place.
    for (std::size_t i = head; i < ms.size(); ++i) {
      hq.push_back(Pending{key[i].at, key[i].seq, std::move(ms[i])});
    }
    key.resize(head);
    ms.resize(head);
    hq.push_back(Pending{arrival, seq, std::move(msg)});
    std::make_heap(hq.begin(), hq.end(), PendingAfter{});
    heaped = true;
    return;
  }
  hq.push_back(Pending{arrival, seq, std::move(msg)});
  std::push_heap(hq.begin(), hq.end(), PendingAfter{});
}

MessagePtr Network::Inbox::pop_min() {
  std::pop_heap(hq.begin(), hq.end(), PendingAfter{});
  MessagePtr m = std::move(hq.back().msg);
  hq.pop_back();
  if (hq.empty()) heaped = false;  // re-enter the sorted fast path
  return m;
}

void Network::enqueue_delivery(Inbox* ib, Time arrival, std::uint64_t seq,
                               MessagePtr msg) {
  ib->push(arrival, seq, std::move(msg));
  const Time head_at = ib->front_arrival();
  const std::uint64_t head_seq = ib->front_seq();
  if (ib->flush != kInvalidEvent) {
    if (head_at == ib->flush_at && head_seq == ib->flush_seq) return;
    // Jitter reordering put a new packet ahead of the scheduled head:
    // move the flush event to the new head's dispatch slot.
    loop_->cancel(ib->flush);
  }
  schedule_flush(ib, head_at, head_seq);
}

void Network::drain(Inbox* ib) {
  SimNode* receiver = node(ib->dst);
  if (receiver == nullptr) {
    // A link to an unregistered node: drop the traffic loudly rather
    // than crash on the upcall.
    LIVENET_LOG(kError) << "drain: no node " << ib->dst << " for link "
                        << ib->src << "->" << ib->dst;
    ib->clear();
    return;
  }
  const Time start = loop_->now();
  std::uint32_t budget = std::max<std::uint32_t>(batch_.max_packets, 1);
  for (;;) {
    // Take the maximal fusable run at the front entry's instant. The
    // first entry of a run needs no proof: the flush event is
    // dispatching at exactly its (arrival, seq) slot (first run), or
    // the loop bottom just proved it next (later runs). Every other
    // entry is taken only if the loop proves a dedicated event at its
    // (arrival, seq) would run next anyway.
    const Time t = ib->front_arrival();
    loop_->advance_to(t);
    if (!ib->heaped) {
      // Sorted fast path: the run [begin, end) is a contiguous
      // MessagePtr slice — hand it to the receiver in place, no pops,
      // no element moves. head advances first so a push() from inside
      // the upcall cannot disturb the slice.
      const std::uint32_t begin = ib->head;
      std::uint32_t end = begin + 1;
      --budget;
      if (budget != 0 && end < ib->ms.size() && ib->key[end].at == t) {
        // The event queue cannot change during the scan (no dispatch,
        // no scheduling): hoist its top out of the per-entry guard.
        // Keys are sorted, so the scan stops exactly where per-entry
        // next_is_after(t, seq) calls would have.
        Time top_at;
        std::uint64_t top_seq;
        if (!loop_->peek_next(&top_at, &top_seq) || top_at > t) {
          while (budget != 0 && end < ib->ms.size() &&
                 ib->key[end].at == t) {
            ++end;
            --budget;
          }
        } else if (top_at == t) {
          while (budget != 0 && end < ib->ms.size() &&
                 ib->key[end].at == t && ib->key[end].seq < top_seq) {
            ++end;
            --budget;
          }
        }
      }
      ib->head = end;
      ib->draining = true;
      ++batch_upcalls_;
      batch_packets_ += end - begin;
      receiver->on_message_batch(ib->src, ib->ms.data() + begin, end - begin);
      ib->draining = false;
      // Release the slice refs now, not at the next drain.
      for (std::uint32_t i = begin; i < end; ++i) ib->ms[i].reset();
      if (!ib->heaped && ib->head == ib->ms.size()) {
        ib->key.clear();
        ib->ms.clear();
        ib->head = 0;
      }
    } else {
      while (budget != 0 && !ib->empty() && ib->front_arrival() == t) {
        if (!scratch_.empty() && !loop_->next_is_after(t, ib->front_seq())) {
          break;
        }
        scratch_.push_back(ib->pop_min());
        --budget;
      }
      ++batch_upcalls_;
      batch_packets_ += scratch_.size();
      receiver->on_message_batch(ib->src, scratch_.data(), scratch_.size());
      scratch_.clear();  // release the refs now, not at the next drain
    }
    if (ib->empty()) return;
    // Continue into the next arrival instant only while within the
    // batch bounds, inside the active run horizon, and provably next in
    // the global dispatch order. Re-read the front: the upcall may have
    // pushed new packets.
    const Time na = ib->front_arrival();
    const std::uint64_t ns = ib->front_seq();
    if (budget == 0 || na - start > batch_.quantum || na > loop_->horizon() ||
        !loop_->next_is_after(na, ns)) {
      schedule_flush(ib, na, ns);
      return;
    }
  }
}

Link* Network::link(NodeId src, NodeId dst) {
  return const_cast<Link*>(
      static_cast<const Network*>(this)->link(src, dst));
}

const Link* Network::link(NodeId src, NodeId dst) const {
  // Same fast path as send(): frozen pairs resolve through the matrix.
  if (static_cast<std::uint32_t>(src) < static_cast<std::uint32_t>(frozen_n_) &&
      static_cast<std::uint32_t>(dst) < static_cast<std::uint32_t>(frozen_n_)) {
    const Route& r = matrix_[static_cast<std::size_t>(src) *
                                 static_cast<std::size_t>(frozen_n_) +
                             static_cast<std::size_t>(dst)];
    assert(r.link == lookup(src, dst) &&
           "frozen matrix out of sync with sorted-row index");
    return r.link;
  }
  return lookup(src, dst);
}

std::vector<NodeId> Network::neighbors(NodeId src) const {
  std::vector<NodeId> out;
  if (src < 0 || static_cast<std::size_t>(src) >= rows_.size()) return out;
  const auto& row = rows_[static_cast<std::size_t>(src)];
  out.reserve(row.size());
  for (const auto& e : row) out.push_back(e.dst);
  return out;
}

std::uint64_t Network::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& row : rows_) {
    for (const auto& e : row) total += e.link->stats().bytes_sent;
  }
  return total;
}

}  // namespace livenet::sim
