#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/event_loop.h"
#include "sim/link.h"
#include "sim/message.h"
#include "sim/sim_node.h"
#include "util/rng.h"

// The simulated network: a registry of nodes and directed links plus the
// delivery machinery. send() runs the packet through the link model and
// schedules the receiver's on_message() upcall at the computed arrival
// time.
namespace livenet::sim {

class Network {
 public:
  explicit Network(EventLoop* loop, std::uint64_t seed = 1)
      : loop_(loop), rng_(seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node; assigns and returns its NodeId. The Network does
  /// not own the node; callers keep it alive for the Network's lifetime.
  NodeId add_node(SimNode* node);

  /// Creates a directed link src -> dst. Replaces any existing link on
  /// that pair.
  Link* add_link(NodeId src, NodeId dst, const LinkConfig& cfg);

  /// Creates both directions with the same configuration.
  void add_bidi_link(NodeId a, NodeId b, const LinkConfig& cfg);

  /// Sends msg from src to dst over the configured link. Returns false
  /// if no link exists or the packet was dropped/lost. On success the
  /// receiver's on_message runs at the arrival time.
  bool send(NodeId src, NodeId dst, MessagePtr msg);

  /// Link accessor (nullptr if absent).
  Link* link(NodeId src, NodeId dst);
  const Link* link(NodeId src, NodeId dst) const;

  /// Neighbors reachable via an outgoing link from `src`.
  std::vector<NodeId> neighbors(NodeId src) const;

  SimNode* node(NodeId id) { return id >= 0 && static_cast<std::size_t>(id) < nodes_.size() ? nodes_[static_cast<std::size_t>(id)] : nullptr; }
  std::size_t node_count() const { return nodes_.size(); }

  EventLoop* loop() { return loop_; }

  /// Total bytes accepted across all links (throughput accounting).
  std::uint64_t total_bytes_sent() const;

 private:
  static std::uint64_t key(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(dst);
  }

  EventLoop* loop_;
  Rng rng_;
  std::vector<SimNode*> nodes_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Link>> links_;
  std::unordered_map<NodeId, std::vector<NodeId>> adjacency_;
};

}  // namespace livenet::sim
