#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_loop.h"
#include "sim/link.h"
#include "sim/message.h"
#include "sim/sim_node.h"
#include "util/rng.h"

// The simulated network: a registry of nodes and directed links plus the
// delivery machinery. send() runs the packet through the link model and
// hands it to the per-link delivery inbox; the receiver's upcall runs at
// the computed arrival time.
//
// Delivery is *batched*: each link keeps an inbox of in-flight packets
// ordered by (arrival, seq) and the loop carries one flush event per
// non-empty inbox, pinned at the head packet's exact dispatch slot.
// When the flush fires, consecutive packets are handed to the receiver
// through on_message_batch() — fused into the same callback only when
// the event loop proves a dedicated event for them would have run next
// anyway (EventLoop::next_is_after), so the global dispatch order is
// bit-identical to one-event-per-packet delivery for every quantum
// setting. See DESIGN.md "Batched delivery".
//
// Link lookup is structured for the per-packet hot path. Links live in
// per-source rows (insertion-ordered, so neighbors() is deterministic)
// with a per-row index sorted by destination for O(log n) lookup. Once
// the static topology is built, freeze_topology() snapshots a dense
// (src, dst) -> {Link*, Inbox*} matrix over the first N node ids: every
// core-to-core send after that is a single indexed load, no hashing.
// Nodes and links added later (clients attach at runtime) fall back to
// the row index transparently.
namespace livenet::sim {

/// Delivery batching bounds. `quantum` is how far past the batch head's
/// arrival a later packet on the same link may still be fused into the
/// same flush callback; `max_packets` caps one callback's packet count.
/// The bounds limit *callback granularity only* — upcall times and
/// order are invariant across settings. {0, 1} degenerates to one
/// upcall per packet (the pre-batching behaviour).
struct DeliveryBatch {
  Duration quantum = 1 * kMs;
  std::uint32_t max_packets = 64;
};

class Network {
 public:
  explicit Network(EventLoop* loop, std::uint64_t seed = 1)
      : loop_(loop), rng_(seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node; assigns and returns its NodeId. The Network does
  /// not own the node; callers keep it alive for the Network's lifetime.
  NodeId add_node(SimNode* node);

  /// Reserves the next NodeId without a local receiver — the node lives
  /// in another shard's Network. Keeps the global id space identical
  /// across shards; traffic toward a remote id must be intercepted by
  /// the cross-region handler (delivering to it locally error-drops).
  NodeId add_remote_node();

  /// Creates a directed link src -> dst. Replaces any existing link on
  /// that pair (in-flight deliveries survive the replacement). Invalid
  /// (negative) node ids are rejected loudly: error log + nullptr.
  Link* add_link(NodeId src, NodeId dst, const LinkConfig& cfg);

  /// Same, but with an explicitly seeded per-link RNG instead of a fork
  /// of the Network's stream. Sharded builds use this: the fork order
  /// differs per shard (each shard only adds the links it owns), so a
  /// link's randomness must be a pure function of (seed, src, dst) for
  /// the shard sweep to stay bit-identical.
  Link* add_link(NodeId src, NodeId dst, const LinkConfig& cfg,
                 std::uint64_t rng_seed);

  /// Creates both directions with the same configuration.
  void add_bidi_link(NodeId a, NodeId b, const LinkConfig& cfg);

  /// Builds the dense (src, dst) -> Link* index over all node ids
  /// registered so far. Call once the static (core) topology is
  /// complete; later nodes/links still work via the sorted-row path,
  /// and later links between frozen nodes update the matrix in place.
  void freeze_topology();

  /// Node-id bound covered by the dense index (0 = never frozen).
  NodeId frozen_nodes() const { return frozen_n_; }

  /// Sends msg from src to dst over the configured link. Returns false
  /// if no link exists or the packet was dropped/lost. On success the
  /// receiver's upcall runs at the arrival time (possibly fused with
  /// same-link neighbours into one on_message_batch call).
  bool send(NodeId src, NodeId dst, MessagePtr msg) {
    return send_ex(src, dst, std::move(msg)).delivered;
  }

  /// send() with the full reason-coded outcome. A missing link is a
  /// SendDrop::kNoRoute drop (arrival kNever), not an abort: a bad
  /// partition map must fail loudly in tests without killing Release
  /// runs. See RouteMissPolicy.
  SendResult send_ex(NodeId src, NodeId dst, MessagePtr msg);

  /// How loudly a routing miss (send with no link) complains. kStrict —
  /// the default, and what tests run under — error-logs every miss;
  /// kLenient demotes them to debug chatter for Release-scale runs
  /// where the count is the signal. Both count and reason-code the
  /// drop identically.
  enum class RouteMissPolicy : std::uint8_t { kStrict, kLenient };
  void set_route_miss_policy(RouteMissPolicy p) { route_miss_policy_ = p; }
  RouteMissPolicy route_miss_policy() const { return route_miss_policy_; }
  /// Total sends that found no link.
  std::uint64_t route_miss_count() const { return route_misses_; }

  /// Sharded-run hook: a delivered send whose endpoints live in
  /// different regions is handed to `handoff` (with its computed
  /// arrival time) instead of the local inbox — the sharded runtime
  /// ferries it to the owning shard at the next window barrier.
  /// `region_of` must cover every NodeId and outlive the Network.
  /// Installed in every mode including single-shard runs, so the
  /// delivery path (and therefore the golden) is shard-count-invariant.
  using CrossRegionHandoff =
      std::function<void(NodeId src, NodeId dst, Time arrival, MessagePtr)>;
  void set_cross_region(const std::int32_t* region_of,
                        CrossRegionHandoff handoff) {
    region_of_ = region_of;
    xregion_ = std::move(handoff);
  }

  /// Delivers a ferried cross-region message: schedules the receiver
  /// upcall at `arrival` with the given dispatch seq (reserved by the
  /// caller in deterministic order). Bypasses inbox fusion in every
  /// mode — cross-region traffic is rare and the bypass keeps S=1 and
  /// S=N dispatch identical.
  void deliver_remote(NodeId src, NodeId dst, Time arrival, MessagePtr msg);

  /// Delivery batching bounds (defaults on; {0, 1} restores one upcall
  /// per packet). Takes effect for packets sent after the call.
  void set_delivery_batch(const DeliveryBatch& b) { batch_ = b; }
  const DeliveryBatch& delivery_batch() const { return batch_; }

  /// Batching effectiveness counters (not in MetricsRegistry: they are
  /// mechanical and intentionally vary across quantum settings, which
  /// would defeat differential metrics comparisons).
  std::uint64_t batch_upcalls() const { return batch_upcalls_; }
  std::uint64_t batch_packets() const { return batch_packets_; }

  /// Link accessor (nullptr if absent).
  Link* link(NodeId src, NodeId dst);
  const Link* link(NodeId src, NodeId dst) const;

  /// Neighbors reachable via an outgoing link from `src`, in link
  /// creation order (deterministic: fault schedules key on this).
  std::vector<NodeId> neighbors(NodeId src) const;

  SimNode* node(NodeId id) { return id >= 0 && static_cast<std::size_t>(id) < nodes_.size() ? nodes_[static_cast<std::size_t>(id)] : nullptr; }
  std::size_t node_count() const { return nodes_.size(); }

  EventLoop* loop() { return loop_; }

  /// Total bytes accepted across all links (throughput accounting).
  std::uint64_t total_bytes_sent() const;

 private:
  /// One in-flight packet: its arrival time and the loop seq reserved
  /// at send time (= the dispatch slot the pre-batching code's
  /// schedule_at would have consumed).
  struct Pending {
    Time arrival;
    std::uint64_t seq;
    MessagePtr msg;
  };
  /// Min-heap order on (arrival, seq). A heap, not FIFO: per-packet
  /// jitter means later sends can arrive earlier.
  struct PendingAfter {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.seq > b.seq;
    }
  };
  /// Per-link delivery inbox. At most one flush event is pending per
  /// inbox, pinned at the front entry's (arrival, seq).
  ///
  /// Storage is mostly-sorted-aware: arrivals on one link are almost
  /// always pushed in (arrival, seq) order — per-packet jitter is the
  /// only reorder source — so entries live in append-sorted parallel
  /// arrays (SoA) with a consumed-prefix cursor. A same-instant run is
  /// then a contiguous MessagePtr slice handed to the receiver upcall
  /// directly: no per-packet pops, no element moves. The first
  /// out-of-order push converts the live suffix into an (arrival, seq)
  /// min-heap (AoS); heap mode sticks until the inbox drains empty.
  /// Pop order is identical in both modes.
  /// (arrival, seq) dispatch key of one in-flight packet.
  struct Key {
    Time at;
    std::uint64_t seq;
  };
  struct Inbox {
    NodeId src = kNoNode;
    NodeId dst = kNoNode;
    // Sorted mode: parallel arrays, live entries in [head, size).
    std::vector<Key> key;
    std::vector<MessagePtr> ms;
    std::uint32_t head = 0;
    // Heap mode: (arrival, seq) min-heap; the sorted arrays hold only
    // an already-consumed prefix while it is active.
    std::vector<Pending> hq;
    bool heaped = false;
    /// True while a sorted-mode slice of this inbox is live in a
    /// receiver upcall; push() then must not move it (no compaction,
    /// no reallocation — a growth that would reallocate converts to
    /// heap mode instead, which leaves the consumed prefix in place).
    bool draining = false;
    EventId flush = kInvalidEvent;
    Time flush_at = 0;
    std::uint64_t flush_seq = 0;

    bool empty() const { return heaped ? hq.empty() : ms.size() == head; }
    Time front_arrival() const {
      return heaped ? hq.front().arrival : key[head].at;
    }
    std::uint64_t front_seq() const {
      return heaped ? hq.front().seq : key[head].seq;
    }
    void push(Time arrival, std::uint64_t seq, MessagePtr msg);
    /// Heap-mode pop (sorted-mode runs are consumed as slices in drain).
    MessagePtr pop_min();
    void clear() {
      key.clear();
      ms.clear();
      head = 0;
      hq.clear();
      heaped = false;
    }
  };
  struct Edge {
    NodeId dst;
    std::unique_ptr<Link> link;
    /// unique_ptr: the row vector reallocates as links are added, but
    /// flush events and the matrix hold raw Inbox pointers.
    std::unique_ptr<Inbox> inbox;
  };
  /// Dense matrix cell (one indexed load resolves both).
  struct Route {
    Link* link = nullptr;
    Inbox* inbox = nullptr;
  };

  /// Finds src's edge to dst via the sorted row index; returns the
  /// position in row_index_[src] where dst is (or would be inserted).
  std::size_t index_pos(NodeId src, NodeId dst) const;
  Link* add_link_impl(NodeId src, NodeId dst, const LinkConfig& cfg, Rng rng);
  Link* lookup(NodeId src, NodeId dst) const;
  Edge* find_edge(NodeId src, NodeId dst);
  const Edge* find_edge(NodeId src, NodeId dst) const;
  void enqueue_delivery(Inbox* ib, Time arrival, std::uint64_t seq,
                        MessagePtr msg);
  void schedule_flush(Inbox* ib, Time when, std::uint64_t seq);
  void drain(Inbox* ib);

  EventLoop* loop_;
  Rng rng_;
  DeliveryBatch batch_;
  std::vector<SimNode*> nodes_;
  std::vector<std::vector<Edge>> rows_;  ///< per-src, insertion order
  /// Per-src positions into rows_[src], sorted by Edge::dst.
  std::vector<std::vector<std::uint32_t>> row_index_;
  /// Dense frozen-core index: matrix_[src * frozen_n_ + dst].
  std::vector<Route> matrix_;
  NodeId frozen_n_ = 0;
  /// Scratch for one batch upcall (single-threaded; drains never nest:
  /// an upcall can enqueue new deliveries but those only schedule
  /// events, they never re-enter drain synchronously).
  std::vector<MessagePtr> scratch_;
  std::uint64_t batch_upcalls_ = 0;
  std::uint64_t batch_packets_ = 0;
  RouteMissPolicy route_miss_policy_ = RouteMissPolicy::kStrict;
  std::uint64_t route_misses_ = 0;
  /// Sharded-run region map + boundary handoff (null when unsharded).
  const std::int32_t* region_of_ = nullptr;
  CrossRegionHandoff xregion_;
};

}  // namespace livenet::sim
