#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_loop.h"
#include "sim/link.h"
#include "sim/message.h"
#include "sim/sim_node.h"
#include "util/rng.h"

// The simulated network: a registry of nodes and directed links plus the
// delivery machinery. send() runs the packet through the link model and
// schedules the receiver's on_message() upcall at the computed arrival
// time.
//
// Link lookup is structured for the per-packet hot path. Links live in
// per-source rows (insertion-ordered, so neighbors() is deterministic)
// with a per-row index sorted by destination for O(log n) lookup. Once
// the static topology is built, freeze_topology() snapshots a dense
// (src, dst) -> Link* matrix over the first N node ids: every
// core-to-core send after that is a single indexed load, no hashing.
// Nodes and links added later (clients attach at runtime) fall back to
// the row index transparently.
namespace livenet::sim {

class Network {
 public:
  explicit Network(EventLoop* loop, std::uint64_t seed = 1)
      : loop_(loop), rng_(seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node; assigns and returns its NodeId. The Network does
  /// not own the node; callers keep it alive for the Network's lifetime.
  NodeId add_node(SimNode* node);

  /// Creates a directed link src -> dst. Replaces any existing link on
  /// that pair.
  Link* add_link(NodeId src, NodeId dst, const LinkConfig& cfg);

  /// Creates both directions with the same configuration.
  void add_bidi_link(NodeId a, NodeId b, const LinkConfig& cfg);

  /// Builds the dense (src, dst) -> Link* index over all node ids
  /// registered so far. Call once the static (core) topology is
  /// complete; later nodes/links still work via the sorted-row path,
  /// and later links between frozen nodes update the matrix in place.
  void freeze_topology();

  /// Node-id bound covered by the dense index (0 = never frozen).
  NodeId frozen_nodes() const { return frozen_n_; }

  /// Sends msg from src to dst over the configured link. Returns false
  /// if no link exists or the packet was dropped/lost. On success the
  /// receiver's on_message runs at the arrival time.
  bool send(NodeId src, NodeId dst, MessagePtr msg);

  /// Link accessor (nullptr if absent).
  Link* link(NodeId src, NodeId dst);
  const Link* link(NodeId src, NodeId dst) const;

  /// Neighbors reachable via an outgoing link from `src`, in link
  /// creation order (deterministic: fault schedules key on this).
  std::vector<NodeId> neighbors(NodeId src) const;

  SimNode* node(NodeId id) { return id >= 0 && static_cast<std::size_t>(id) < nodes_.size() ? nodes_[static_cast<std::size_t>(id)] : nullptr; }
  std::size_t node_count() const { return nodes_.size(); }

  EventLoop* loop() { return loop_; }

  /// Total bytes accepted across all links (throughput accounting).
  std::uint64_t total_bytes_sent() const;

 private:
  struct Edge {
    NodeId dst;
    std::unique_ptr<Link> link;
  };

  /// Finds src's edge to dst via the sorted row index; returns the
  /// position in row_index_[src] where dst is (or would be inserted).
  std::size_t index_pos(NodeId src, NodeId dst) const;
  Link* lookup(NodeId src, NodeId dst) const;

  EventLoop* loop_;
  Rng rng_;
  std::vector<SimNode*> nodes_;
  std::vector<std::vector<Edge>> rows_;  ///< per-src, insertion order
  /// Per-src positions into rows_[src], sorted by Edge::dst.
  std::vector<std::vector<std::uint32_t>> row_index_;
  /// Dense frozen-core index: matrix_[src * frozen_n_ + dst].
  std::vector<Link*> matrix_;
  NodeId frozen_n_ = 0;
};

}  // namespace livenet::sim
