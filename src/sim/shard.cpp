#include "sim/shard.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace livenet::sim {

namespace {
/// Window width used when no cross-region link exists: one window
/// covers any horizon (the shards never need to talk).
constexpr Time kUnbounded = std::numeric_limits<Time>::max() / 2;
}  // namespace

ShardedSim::ShardedSim(std::size_t shards, std::size_t regions)
    : shards_(std::clamp<std::size_t>(shards, 1, regions > 0 ? regions : 1)),
      regions_(regions),
      loops_(shards_),
      region_out_seq_(regions, 0),
      queues_(shards_ * shards_),
      integrate_scratch_(shards_) {
  nets_.reserve(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    nets_.push_back(std::make_unique<Network>(&loops_[s]));
  }
}

void ShardedSim::set_node_region(NodeId id, std::int32_t region) {
  const auto i = static_cast<std::size_t>(id);
  if (region_of_.size() <= i) region_of_.resize(i + 1, 0);
  region_of_[i] = region;
}

void ShardedSim::start() {
  // Lookahead = min propagation delay over cross-region links. Only
  // propagation is a sound bound: serialization, queueing, fault extra
  // delay and |jitter| all delay arrival further, never advance it.
  // Cross-region links added after start() must respect it (checked at
  // integration in debug builds).
  Time w = kUnbounded;
  for (std::size_t s = 0; s < shards_; ++s) {
    Network& n = *nets_[s];
    const auto count = static_cast<NodeId>(n.node_count());
    for (NodeId src = 0; src < count; ++src) {
      for (NodeId dst : n.neighbors(src)) {
        if (region_of_[static_cast<std::size_t>(src)] ==
            region_of_[static_cast<std::size_t>(dst)]) {
          continue;
        }
        const Link* l = n.link(src, dst);
        if (l != nullptr) w = std::min(w, l->propagation_delay());
      }
    }
  }
  if (w <= 0) {
    LIVENET_LOG(kError) << "ShardedSim: zero-delay cross-region link; "
                           "clamping lookahead to 1";
    w = 1;
  }
  lookahead_ = w;
  for (std::size_t s = 0; s < shards_; ++s) {
    nets_[s]->set_cross_region(
        region_of_.data(),
        [this, s](NodeId src, NodeId dst, Time arrival, MessagePtr msg) {
          on_cross(s, src, dst, arrival, std::move(msg));
        });
  }
  started_ = true;
}

void ShardedSim::on_cross(std::size_t src_shard, NodeId src, NodeId dst,
                          Time arrival, MessagePtr msg) {
  cross_count_.fetch_add(1, std::memory_order_relaxed);
  MessagePtr out;
  if (msg->msg_ref_count() == 1 && msg->transfer_safe()) {
    // Sole reference to a self-contained message: the pointer itself
    // migrates (the block later frees into the receiving thread's
    // arena, which is safe — chunks are never unmapped).
    out = std::move(msg);
  } else {
    out = msg->clone_message();
    if (!out) {
      drop_count_.fetch_add(1, std::memory_order_relaxed);
      LIVENET_LOG(kError) << "ShardedSim: uncloneable message dropped at "
                          << src << "->" << dst << ": " << msg->describe();
      return;
    }
    clone_count_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto sr = region_of_[static_cast<std::size_t>(src)];
  const std::size_t ds =
      shard_of_region(region_of_[static_cast<std::size_t>(dst)]);
  queues_[src_shard * shards_ + ds].push_back(
      CrossEntry{arrival, sr, region_out_seq_[static_cast<std::size_t>(sr)]++,
                 src, dst, std::move(out)});
}

void ShardedSim::integrate(std::size_t shard) {
  auto& batch = integrate_scratch_[shard];
  for (std::size_t src = 0; src < shards_; ++src) {
    auto& q = queues_[src * shards_ + shard];
    for (auto& e : q) batch.push_back(std::move(e));
    q.clear();
  }
  if (batch.empty()) return;
  // The sort key carries no shard- or loop-level identity, so the
  // delivery order — and the seqs the deliveries draw from this loop —
  // depends only on the partition-invariant region histories.
  std::sort(batch.begin(), batch.end(),
            [](const CrossEntry& a, const CrossEntry& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              if (a.src_region != b.src_region) {
                return a.src_region < b.src_region;
              }
              return a.out_seq < b.out_seq;
            });
  Network& n = *nets_[shard];
  for (auto& e : batch) {
    // Conservative-window invariant: the message was emitted in an
    // earlier window, so it arrives at or after this barrier's
    // boundary, i.e. strictly after the loop's current time.
    assert(e.arrival > loops_[shard].now() &&
           "cross-region arrival inside the emitting window");
    n.deliver_remote(e.src, e.dst, e.arrival, std::move(e.msg));
  }
  batch.clear();
}

void ShardedSim::window_loop(std::size_t shard, Time end, Barrier* bar) {
  EventLoop& loop = loops_[shard];
  Time cursor = loop.now();
  const Time w = lookahead_;
  while (cursor < end) {
    // (guarded subtraction: w may be the huge no-cross-links sentinel)
    const Time boundary = end - cursor <= w ? end : cursor + w;
    // Events at exactly `boundary` belong to the next window (they may
    // race integrated deliveries at the same instant), except at `end`,
    // which run_until treats inclusively in every mode alike.
    loop.run_until(boundary == end ? end : boundary - 1);
    if (bar != nullptr) bar->arrive_and_wait();
    integrate(shard);
    if (bar != nullptr) bar->arrive_and_wait();
    cursor = boundary;
  }
  // Deliveries integrated at the final barrier can land at exactly
  // `end`; anything later stays queued for a future run_until.
  loop.run_until(end);
}

void ShardedSim::run_until(Time end) {
  assert(started_ && "ShardedSim::run_until before start()");
  if (shards_ == 1) {
    window_loop(0, end, nullptr);
    return;
  }
  Barrier bar(static_cast<std::ptrdiff_t>(shards_));
  // Workers fold their thread-local metrics into the caller's registry
  // before exiting; the caller runs shard 0, so its metrics are already
  // home. The mutex serializes the folds (main is blocked in join).
  telemetry::MetricsRegistry* home = &telemetry::MetricsRegistry::instance();
  std::mutex merge_mu;
  std::vector<std::thread> workers;
  workers.reserve(shards_ - 1);
  for (std::size_t s = 1; s < shards_; ++s) {
    workers.emplace_back([this, s, end, &bar, home, &merge_mu] {
      window_loop(s, end, &bar);
      std::lock_guard<std::mutex> lk(merge_mu);
      home->merge_from(telemetry::MetricsRegistry::instance());
    });
  }
  window_loop(0, end, &bar);
  for (auto& t : workers) t.join();
}

}  // namespace livenet::sim
