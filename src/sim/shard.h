#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/event_loop.h"
#include "sim/network.h"

// Sharded conservative parallel simulation (ROADMAP open item 1).
//
// The simulated world is partitioned by *region* (a country/node-group;
// the harness assigns every node one), regions are mapped onto S shards
// (shard = region % S), and each shard owns a private EventLoop +
// Network pair running on its own thread. The only inter-shard coupling
// is message traffic on cross-region links, and those links have real
// propagation delay — which buys lookahead, the classical conservative
// synchronization argument (Chandy/Misra):
//
//   Let W = min propagation delay over all cross-region links, computed
//   at start(). A link guarantees arrival >= send_time + propagation
//   (serialization, queueing, fault extra delay and |jitter| only add).
//   Run every shard independently over the window [kW, (k+1)W): any
//   cross-region message it emits has arrival >= kW + W = (k+1)W, i.e.
//   lands at or after the *next* window. So parking boundary traffic in
//   per-(src,dst)-shard queues during the window and integrating it at
//   a full barrier between windows delivers every message before the
//   window that could observe it — no shard ever receives an event in
//   its past, with zero rollback machinery.
//
// Determinism across shard counts: the partition must not leak into the
// goldens, so the boundary path is taken for every cross-REGION message
// in every mode — including S = 1 — and integration is keyed purely on
// region-level identities: entries sort by (arrival, src region,
// per-region emission counter) before delivery, and delivered messages
// bypass inbox fusion (one plain event each). Within a window regions
// are causally independent, so each region's dispatch sequence — and
// therefore its emission counters and all of its state — is identical
// whether its loop hosts one region or many. See DESIGN.md "Sharded
// simulation" for the full argument and the pool-safety rules.
//
// Message handoff: a shard's pools, refcounts and metrics are
// thread-local, so a message crossing the boundary is either *moved*
// (sole reference + Message::transfer_safe()) or *deep-copied* via
// Message::clone_message() on the sending thread; unclonable messages
// are dropped loudly and counted.
namespace livenet::sim {

class ShardedSim {
 public:
  /// `shards` loops/threads over `regions` partition groups. shards is
  /// clamped to [1, regions] (an empty shard would just idle).
  ShardedSim(std::size_t shards, std::size_t regions);

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  std::size_t shards() const { return shards_; }
  std::size_t regions() const { return regions_; }
  std::size_t shard_of_region(std::int32_t region) const {
    return static_cast<std::size_t>(region) % shards_;
  }

  EventLoop& loop(std::size_t shard) { return loops_[shard]; }
  Network& net(std::size_t shard) { return *nets_[shard]; }

  /// Declares node `id`'s region. Every shard's Network must register
  /// the same global id space (local nodes via add_node, foreign ones
  /// via add_remote_node), and every node needs a region before
  /// start().
  void set_node_region(NodeId id, std::int32_t region);
  std::int32_t node_region(NodeId id) const {
    return region_of_[static_cast<std::size_t>(id)];
  }

  /// Call once after the topology is built and frozen: computes the
  /// lookahead window from the cross-region links present and installs
  /// the boundary intercept on every shard's Network.
  void start();

  /// Runs all shards to `end` (inclusive, like EventLoop::run_until) in
  /// conservative windows. S = 1 runs inline on the caller's thread;
  /// otherwise the caller runs shard 0 and S-1 workers run the rest,
  /// with worker telemetry merged into the caller's registry at join.
  void run_until(Time end);

  /// The conservative window width (min cross-region propagation).
  Time lookahead() const { return lookahead_; }

  // Boundary diagnostics (totals across shards).
  std::uint64_t cross_messages() const { return cross_count_.load(std::memory_order_relaxed); }
  std::uint64_t cross_clones() const { return clone_count_.load(std::memory_order_relaxed); }
  /// Messages dropped at the boundary for lacking a clone path.
  std::uint64_t cross_drops() const { return drop_count_.load(std::memory_order_relaxed); }

 private:
  /// One parked boundary message. Sort key (arrival, src_region,
  /// out_seq) is shard-count-invariant: the emission counter is per
  /// region, and a region's send order never depends on loop co-tenancy.
  struct CrossEntry {
    Time arrival;
    std::int32_t src_region;
    std::uint64_t out_seq;
    NodeId src;
    NodeId dst;
    MessagePtr msg;
  };
  using Barrier = std::barrier<>;

  void on_cross(std::size_t src_shard, NodeId src, NodeId dst, Time arrival,
                MessagePtr msg);
  /// Drains every queue targeting `shard`, sorts, schedules deliveries.
  void integrate(std::size_t shard);
  void window_loop(std::size_t shard, Time end, Barrier* bar);

  std::size_t shards_;
  std::size_t regions_;
  std::deque<EventLoop> loops_;  ///< deque: loops are not movable
  std::vector<std::unique_ptr<Network>> nets_;
  std::vector<std::int32_t> region_of_;       ///< by NodeId
  std::vector<std::uint64_t> region_out_seq_; ///< by region; owner-shard only
  /// queues_[src_shard * shards_ + dst_shard]: written by src during a
  /// window, drained by dst between the two barriers — the barrier is
  /// the only synchronization the handoff needs.
  std::vector<std::vector<CrossEntry>> queues_;
  std::vector<std::vector<CrossEntry>> integrate_scratch_;  ///< per shard
  Time lookahead_ = 0;
  bool started_ = false;
  std::atomic<std::uint64_t> cross_count_{0};
  std::atomic<std::uint64_t> clone_count_{0};
  std::atomic<std::uint64_t> drop_count_{0};
};

}  // namespace livenet::sim
