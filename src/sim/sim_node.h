#pragma once

#include "sim/message.h"

// Interface implemented by anything attached to the simulated network:
// overlay CDN nodes, the Streaming Brain, broadcasters and viewers.
namespace livenet::sim {

class SimNode {
 public:
  virtual ~SimNode() = default;

  /// Delivery upcall: `msg` arrived from `from` over the connecting link.
  virtual void on_message(NodeId from, const MessagePtr& msg) = 0;

  NodeId node_id() const { return id_; }

  /// Set once by Network::add_node; nodes must not change it.
  void set_node_id(NodeId id) { id_ = id; }

 private:
  NodeId id_ = kNoNode;
};

}  // namespace livenet::sim
