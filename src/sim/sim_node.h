#pragma once

#include "sim/message.h"

// Interface implemented by anything attached to the simulated network:
// overlay CDN nodes, the Streaming Brain, broadcasters and viewers.
namespace livenet::sim {

class SimNode {
 public:
  virtual ~SimNode() = default;

  /// Delivery upcall: `msg` arrived from `from` over the connecting link.
  virtual void on_message(NodeId from, const MessagePtr& msg) = 0;

  /// Batched delivery upcall: `n` messages from `from` over one link,
  /// in arrival order, all due at the current virtual time. The default
  /// processes them one by one; nodes with a per-packet hot path may
  /// override to amortise per-burst work. Overrides must preserve the
  /// per-message semantics of on_message in order (the network layer
  /// guarantees the grouping itself is order-neutral — see DESIGN.md
  /// "Batched delivery").
  virtual void on_message_batch(NodeId from, const MessagePtr* msgs,
                                std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) on_message(from, msgs[i]);
  }

  NodeId node_id() const { return id_; }

  /// Set once by Network::add_node; nodes must not change it.
  void set_node_id(NodeId id) { id_ = id; }

 private:
  NodeId id_ = kNoNode;
};

}  // namespace livenet::sim
