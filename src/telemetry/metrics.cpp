#include "telemetry/metrics.h"

#include <algorithm>

namespace livenet::telemetry {

MetricsRegistry& MetricsRegistry::instance() {
  // Per-thread: each shard records lock-free into its own registry and
  // the sharded runtime merges workers into the main thread's copy.
  static thread_local MetricsRegistry reg;
  return reg;
}

namespace {

template <typename T>
T* find_named(std::vector<std::pair<std::string, T*>>& names,
              const std::string& name) {
  for (auto& [n, p] : names) {
    if (n == name) return p;
  }
  return nullptr;
}

}  // namespace

Counter* MetricsRegistry::counter(const std::string& name) {
  if (Counter* c = find_named(counter_names_, name)) return c;
  counters_.emplace_back();
  counter_names_.emplace_back(name, &counters_.back());
  return &counters_.back();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  if (Gauge* g = find_named(gauge_names_, name)) return g;
  gauges_.emplace_back();
  gauge_names_.emplace_back(name, &gauges_.back());
  return &gauges_.back();
}

LatencyStat* MetricsRegistry::latency(const std::string& name, double lo,
                                      double hi, std::size_t buckets) {
  if (LatencyStat* l = find_named(latency_names_, name)) return l;
  latencies_.emplace_back(lo, hi, buckets);
  latency_names_.emplace_back(name, &latencies_.back());
  return &latencies_.back();
}

void MetricsRegistry::reset() {
  for (auto& c : counters_) c.reset();
  for (auto& g : gauges_) g.reset();
  for (auto& l : latencies_) l.reset();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counter_names_) {
    counter(name)->add(c->value());
  }
  for (const auto& [name, g] : other.gauge_names_) {
    gauge(name)->set_max(g->value());
  }
  for (const auto& [name, l] : other.latency_names_) {
    latency(name, l->lo(), l->hi(), l->buckets())->merge(*l);
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  auto sorted_names = [](const auto& names) {
    auto copy = names;
    std::sort(copy.begin(), copy.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return copy;
  };

  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : sorted_names(counter_names_)) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : sorted_names(gauge_names_)) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << g->value();
    first = false;
  }
  os << "\n  },\n  \"latencies\": {";
  first = true;
  for (const auto& [name, l] : sorted_names(latency_names_)) {
    const auto& h = l->histogram();
    const auto& s = l->stats();
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {"
       << "\"count\": " << s.count() << ", \"mean\": " << s.mean()
       << ", \"p50\": " << h.quantile(0.5) << ", \"p90\": " << h.quantile(0.9)
       << ", \"p99\": " << h.quantile(0.99) << ", \"max\": " << s.max() << "}";
    first = false;
  }
  os << "\n  }\n}\n";
}

const Handles& handles() {
  // thread_local so every handle points into the calling thread's
  // registry (built once per thread; the simulator's per-packet sites
  // hit only the pointer loads after that).
  static thread_local const Handles h = [] {
    auto& reg = MetricsRegistry::instance();
    Handles out;
    out.fast_forwards = reg.counter("overlay.fast_forwards");
    out.client_forwards = reg.counter("overlay.client_forwards");
    out.drops_b = reg.counter("overlay.drops_b");
    out.drops_p = reg.counter("overlay.drops_p");
    out.drops_gop = reg.counter("overlay.drops_gop");
    out.drops_layer = reg.counter("overlay.drops_layer");
    out.layer_filtered = reg.counter("overlay.layer_filtered");
    out.cache_hits = reg.counter("overlay.cache_hits");
    out.rtx_sent = reg.counter("overlay.rtx_sent");
    out.fec_parity_sent = reg.counter("overlay.fec_parity_sent");
    out.fec_recovered = reg.counter("overlay.fec_recovered");
    out.alt_supplier_rtx = reg.counter("overlay.alt_supplier_rtx");
    out.link_drops_queue = reg.counter("link.drops_queue");
    out.link_drops_wire = reg.counter("link.drops_wire");
    out.link_drops_down = reg.counter("link.drops_down");
    out.jitter_frames_released = reg.counter("client.jitter_frames_released");
    out.path_requests_served = reg.counter("brain.path_requests_served");
    out.brain_pairs_solved = reg.counter("brain.recompute_pairs_solved");
    out.brain_pairs_skipped =
        reg.counter("brain.recompute_pairs_skipped_dirty");
    out.brain_last_resort_pairs =
        reg.counter("brain.recompute_last_resort_pairs");
    out.brain_recompute_ms =
        reg.latency("brain.recompute_ms", 0.0, 10000.0, 200);
    out.brain_graph_build_ms =
        reg.latency("brain.recompute_graph_build_ms", 0.0, 10000.0, 200);
    out.brain_solve_ms =
        reg.latency("brain.recompute_solve_ms", 0.0, 10000.0, 200);
    out.brain_install_ms =
        reg.latency("brain.recompute_install_ms", 0.0, 10000.0, 200);
    out.brain_threads = reg.gauge("brain.threads");
    out.traced_packets = reg.counter("telemetry.traced_packets");
    out.trace_records = reg.counter("telemetry.trace_records");
    out.peak_pending_events = reg.gauge("sim.peak_pending_events");
    out.concurrent_viewers = reg.gauge("scenario.concurrent_viewers");
    out.modeled_viewers = reg.gauge("client.modeled_viewers");
    out.cdn_path_delay_ms =
        reg.latency("overlay.cdn_path_delay_ms", 0.0, 2000.0, 200);
    out.recovery_ms = reg.latency("overlay.recovery_ms", 0.0, 1000.0, 200);
    out.recovery_fec_ms =
        reg.latency("overlay.recovery_fec_ms", 0.0, 1000.0, 200);
    out.recovery_rtx_ms =
        reg.latency("overlay.recovery_rtx_ms", 0.0, 1000.0, 200);
    out.svc_mask_flips = reg.counter("svc.mask_flips");
    out.svc_nack_voids = reg.counter("svc.nack_voids");
    out.svc_upswitch_wait_ms =
        reg.latency("svc.upswitch_wait_ms", 0.0, 5000.0, 200);
    return out;
  }();
  return h;
}

}  // namespace livenet::telemetry
