#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/stats.h"

// Process-wide metrics registry (paper §4.2: every node continuously
// reports fine-grained statistics upward; here the whole simulated CDN
// lives in one process, so one registry stands in for the monitoring
// plane's collection endpoint).
//
// Design constraints, in order:
//   1. Hot-path updates are a single indexed increment through a
//      pre-registered handle — no map lookup, no allocation, no
//      locking (the simulator is single-threaded by construction).
//   2. Registration is by name and idempotent, so independent
//      subsystems can share a metric without coordinating.
//   3. Handles are stable pointers (deque-backed), valid for the
//      process lifetime; reset() zeroes values but never invalidates
//      a handle.
namespace livenet::telemetry {

/// Monotonic event count. Hot-path `add` is one integer add through a
/// stable pointer.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (queue depths, loads, viewers).
/// Cross-shard merges keep the maximum across shards, which is exact
/// for peak-style gauges and a conservative summary for the rest.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  /// Keeps the running maximum (for peak-style gauges).
  void set_max(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Histogram-backed latency distribution. Fixed buckets chosen at
/// registration; `observe` is Histogram::add (one bucket increment).
class LatencyStat {
 public:
  LatencyStat(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), buckets_(buckets), hist_(lo, hi, buckets) {}

  void observe(double v) {
    hist_.add(v);
    stats_.add(v);
  }
  void merge(const LatencyStat& other) {
    hist_.merge(other.hist_);
    stats_.merge(other.stats_);
  }
  const Histogram& histogram() const { return hist_; }
  const OnlineStats& stats() const { return stats_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t buckets() const { return buckets_; }
  void reset() {
    hist_ = Histogram(lo_, hi_, buckets_);
    stats_ = OnlineStats();
  }

 private:
  double lo_, hi_;
  std::size_t buckets_;
  Histogram hist_;
  OnlineStats stats_;
};

class MetricsRegistry {
 public:
  /// The calling thread's registry. One registry per thread (not per
  /// process): every shard of a sharded run records into its own
  /// registry lock-free, and the runtime folds worker registries into
  /// the main thread's via merge_from() at teardown. Single-threaded
  /// runs see exactly the old process-wide behaviour.
  static MetricsRegistry& instance();

  /// Idempotent by name: the first call registers, later calls return
  /// the same handle. Registration is cold-path only (map lookup).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  LatencyStat* latency(const std::string& name, double lo, double hi,
                       std::size_t buckets);

  /// Zeroes every value; handles stay valid (per-run isolation in
  /// tests and repeated scenario runs in one process).
  void reset();

  /// Folds another thread's registry into this one by metric name:
  /// counters add, gauges keep the max, latency stats merge histogram
  /// and moments. Metrics only the other registry knows are registered
  /// here first. The caller serializes access (the sharded runtime
  /// merges under its teardown mutex).
  void merge_from(const MetricsRegistry& other);

  /// metrics.json: {"counters": {...}, "gauges": {...},
  /// "latencies": {name: {count, mean, p50, p90, p99, max}}}.
  /// Names are emitted sorted so the output is deterministic.
  void write_json(std::ostream& os) const;

 private:
  MetricsRegistry() = default;

  // deques give stable element addresses across registration.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<LatencyStat> latencies_;
  std::vector<std::pair<std::string, Counter*>> counter_names_;
  std::vector<std::pair<std::string, Gauge*>> gauge_names_;
  std::vector<std::pair<std::string, LatencyStat*>> latency_names_;
};

/// Pre-registered well-known handles: the data plane's per-packet
/// sites grab these once (function-local static) and pay only the
/// increment afterwards.
struct Handles {
  // Overlay data path.
  Counter* fast_forwards;        ///< node->node fan-out copies
  Counter* client_forwards;      ///< node->client copies (post-dropper)
  Counter* drops_b;              ///< proactive dropper, by escalation
  Counter* drops_p;
  Counter* drops_gop;
  Counter* drops_layer;          ///< proactive dropper: SVC enhancement
  Counter* layer_filtered;       ///< packets excluded by a layer mask
                                 ///< (not forked — never copies)
  Counter* cache_hits;           ///< GoP-cache serves (NACK + bursts)
  Counter* rtx_sent;             ///< retransmissions enqueued
  // Loss-recovery tier (FEC + multi-supplier RTX).
  Counter* fec_parity_sent;      ///< parity packets enqueued on links
  Counter* fec_recovered;        ///< packets reconstructed from parity
  Counter* alt_supplier_rtx;     ///< NACKs raced to a non-primary supplier
  // Link layer.
  Counter* link_drops_queue;     ///< tail drops
  Counter* link_drops_wire;      ///< random wire loss
  Counter* link_drops_down;      ///< black-holed on a downed link
  // Client edge.
  Counter* jitter_frames_released;  ///< frames completed by jitter buffers
  // Control plane.
  Counter* path_requests_served;    ///< Brain/replica path lookups answered
  Counter* brain_pairs_solved;      ///< pairs re-solved by Global Routing
  Counter* brain_pairs_skipped;     ///< pairs skipped via the dirty set
  Counter* brain_last_resort_pairs; ///< pairs left on a last-resort path
  LatencyStat* brain_recompute_ms;  ///< wall time of a routing cycle
  /// Routing-cycle phase split (Parallel Brain): view->graph build,
  /// KSP solve (fan-out wall time when threaded), ordered install.
  LatencyStat* brain_graph_build_ms;
  LatencyStat* brain_solve_ms;
  LatencyStat* brain_install_ms;
  Gauge* brain_threads;             ///< configured solver fan-out width
  // Tracing itself.
  Counter* traced_packets;       ///< bodies stamped with a trace_id
  Counter* trace_records;        ///< hop records appended
  // Simulator.
  Gauge* peak_pending_events;    ///< high-water mark of event-loop queue
  Gauge* concurrent_viewers;     ///< last timeline sample
  Gauge* modeled_viewers;        ///< cohort-weighted viewer population peak
  LatencyStat* cdn_path_delay_ms;   ///< per-forwarded-packet CDN delay
  /// Hole-to-fill recovery time, overall and split by the tier that
  /// filled the hole (FEC reconstruction vs RTX arrival).
  LatencyStat* recovery_ms;
  LatencyStat* recovery_fec_ms;
  LatencyStat* recovery_rtx_ms;
  // SVC layer switching (queryable via trace_query --metrics svc.).
  Counter* svc_mask_flips;          ///< per-client layer-mask changes
  Counter* svc_nack_voids;          ///< filtered-seq NACKs answered as voids
  LatencyStat* svc_upswitch_wait_ms; ///< widen commit gating delay
};

/// The shared handle set (registered on first use).
const Handles& handles();

}  // namespace livenet::telemetry
