#include "telemetry/trace.h"

#include "telemetry/metrics.h"

namespace livenet::telemetry {

namespace {
constexpr std::size_t kDefaultCapacity = 64 * 1024;
}

bool Tracer::active_ = false;

Tracer::Tracer() { ring_.resize(kDefaultCapacity); }

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::next_trace_id() {
  active_ = true;
  handles().traced_packets->add();
  return ++last_id_;
}

void Tracer::set_capacity(std::size_t n) {
  ring_.assign(n > 0 ? n : 1, HopRecord{});
  next_slot_ = 0;
  appended_ = 0;
}

void Tracer::record(const HopRecord& r) {
  ring_[next_slot_] = r;
  next_slot_ = next_slot_ + 1 == ring_.size() ? 0 : next_slot_ + 1;
  ++appended_;
  handles().trace_records->add();
}

std::vector<HopRecord> Tracer::snapshot() const {
  std::vector<HopRecord> out;
  const std::size_t kept =
      appended_ < ring_.size() ? static_cast<std::size_t>(appended_)
                               : ring_.size();
  out.reserve(kept);
  // Oldest surviving record first: when wrapped, that is next_slot_.
  const std::size_t start = appended_ < ring_.size() ? 0 : next_slot_;
  for (std::size_t i = 0; i < kept; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Tracer::write_csv(std::ostream& os) const {
  os << "trace_id,t_us,stream,seq,node,peer,event,reason\n";
  for (const HopRecord& r : snapshot()) {
    os << r.trace_id << ',' << r.t << ',' << r.stream << ',' << r.seq << ','
       << r.node << ',' << r.peer << ',' << to_string(r.event) << ','
       << to_string(r.reason) << '\n';
  }
}

void Tracer::reset() {
  ring_.assign(ring_.size(), HopRecord{});
  next_slot_ = 0;
  appended_ = 0;
  last_id_ = 0;
  active_ = false;
}

const char* to_string(HopEvent e) {
  switch (e) {
    case HopEvent::kIngress: return "ingress";
    case HopEvent::kLinkEnqueue: return "link_enqueue";
    case HopEvent::kLinkDequeue: return "link_dequeue";
    case HopEvent::kForward: return "forward";
    case HopEvent::kClientForward: return "client_forward";
    case HopEvent::kDrop: return "drop";
    case HopEvent::kCacheHit: return "cache_hit";
    case HopEvent::kRtx: return "rtx";
    case HopEvent::kJitterRelease: return "jitter_release";
    case HopEvent::kFecRecovered: return "fec_recovered";
    case HopEvent::kAltRtx: return "alt_rtx";
  }
  return "unknown";
}

const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kNone: return "none";
    case DropReason::kBFrame: return "b_frame";
    case DropReason::kPFrame: return "p_frame";
    case DropReason::kPoisonedGop: return "poisoned_gop";
    case DropReason::kGopThreshold: return "gop_threshold";
    case DropReason::kGopSuppressed: return "gop_suppressed";
    case DropReason::kQueueOverflow: return "queue_overflow";
    case DropReason::kWireLoss: return "wire_loss";
    case DropReason::kLinkDown: return "link_down";
    case DropReason::kTemporalLayer: return "temporal_layer";
    case DropReason::kSpatialLayer: return "spatial_layer";
    case DropReason::kLayerFiltered: return "layer_filtered";
  }
  return "unknown";
}

}  // namespace livenet::telemetry
