#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "util/time.h"

// Sampled per-hop packet tracing (the per-packet half of the paper's
// monitoring plane). A trace_id is stamped on a configurable fraction
// of packet bodies at the broadcaster; every hop the packet touches —
// link enqueue/dequeue, overlay forward or drop (with reason), cache
// hit, retransmission, jitter-buffer release — appends one fixed-size
// HopRecord to a per-run ring buffer. Tracing is strictly
// observational: nothing in the data plane reads a trace_id to make a
// decision, and sampling uses a deterministic accumulator (no RNG), so
// enabling it cannot perturb simulated behaviour.
namespace livenet::telemetry {

enum class HopEvent : std::uint8_t {
  kIngress = 0,        ///< producer stamped CDN entry
  kLinkEnqueue = 1,    ///< accepted by a link transmitter
  kLinkDequeue = 2,    ///< delivered by a link (t = arrival time)
  kForward = 3,        ///< overlay fan-out copy toward a peer node
  kClientForward = 4,  ///< copy toward a viewing client (post-dropper)
  kDrop = 5,           ///< dropped; reason says where and why
  kCacheHit = 6,       ///< served from a node's GoP packet cache
  kRtx = 7,            ///< retransmission enqueued for this packet
  kJitterRelease = 8,  ///< completed a frame in a client jitter buffer
  kFecRecovered = 9,   ///< reconstructed from a link-local parity group
  kAltRtx = 10,        ///< NACK raced to a non-primary supplier
};

enum class DropReason : std::uint8_t {
  kNone = 0,
  kBFrame = 1,         ///< proactive dropper: unreferenced B frame
  kPFrame = 2,         ///< proactive dropper: P frame over threshold
  kPoisonedGop = 3,    ///< follows a dropped P frame in the same GoP
  kGopThreshold = 4,   ///< drain time over the whole-GoP threshold
  kGopSuppressed = 5,  ///< GoP already being suppressed
  kQueueOverflow = 6,  ///< link tail drop
  kWireLoss = 7,       ///< random wire loss
  kLinkDown = 8,       ///< black-holed on a downed link
  kTemporalLayer = 9,  ///< proactive dropper: SVC temporal enhancement
  kSpatialLayer = 10,  ///< proactive dropper: SVC spatial enhancement
  kLayerFiltered = 11, ///< subscriber's layer mask excluded the packet
};

const char* to_string(HopEvent e);
const char* to_string(DropReason r);

/// One hop observation. Fixed 48-byte layout; the ring buffer is a
/// flat array of these, so recording is a copy plus an index bump.
struct HopRecord {
  std::uint64_t trace_id = 0;
  Time t = 0;                ///< virtual time of the event
  std::uint64_t stream = 0;
  std::uint64_t seq = 0;     ///< producer-assigned sequence number
  std::int32_t node = -1;    ///< node where the event happened
  std::int32_t peer = -1;    ///< other party (link dst, fan-out target)
  HopEvent event = HopEvent::kIngress;
  DropReason reason = DropReason::kNone;
};

/// Per-run trace sink: a bounded ring buffer of HopRecords. When the
/// ring wraps, the oldest records are overwritten (a run that outgrows
/// the ring keeps its tail, which is what post-mortem queries want).
class Tracer {
 public:
  static Tracer& instance();

  /// True once any trace_id has been handed out this run; per-packet
  /// sites use this to skip tag extraction entirely in untraced runs.
  static bool active() { return active_; }

  /// Hands out the next nonzero trace id (0 means "untraced").
  std::uint64_t next_trace_id();

  /// Ring capacity in records (default 64Ki). Resets the buffer.
  void set_capacity(std::size_t n);
  std::size_t capacity() const { return ring_.size(); }

  void record(const HopRecord& r);

  std::uint64_t records_total() const { return appended_; }
  std::uint64_t records_dropped() const {
    return appended_ > ring_.size() ? appended_ - ring_.size() : 0;
  }

  /// Retained records in append order (oldest surviving first).
  std::vector<HopRecord> snapshot() const;

  /// telemetry.csv: trace_id,t_us,stream,seq,node,peer,event,reason.
  void write_csv(std::ostream& os) const;

  /// Clears records and the id counter (per-run isolation).
  void reset();

 private:
  Tracer();

  static bool active_;
  std::vector<HopRecord> ring_;
  std::size_t next_slot_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t last_id_ = 0;
};

/// Appends one hop record for a traced packet; no-op for trace_id 0,
/// so call sites stay branch-cheap without their own guard.
inline void record_hop(std::uint64_t trace_id, Time t, std::uint64_t stream,
                       std::uint64_t seq, std::int32_t node, std::int32_t peer,
                       HopEvent event, DropReason reason = DropReason::kNone) {
  if (trace_id == 0) return;
  Tracer::instance().record(
      HopRecord{trace_id, t, stream, seq, node, peer, event, reason});
}

/// Deterministic fractional sampler: stamps `fraction` of packets with
/// fresh trace ids using an error accumulator — no RNG draw, so the
/// simulation's random streams are untouched whether or not tracing is
/// on (the golden bit-reproducibility test runs with fraction = 1).
class TraceSampler {
 public:
  void set_fraction(double f) {
    fraction_ = f < 0.0 ? 0.0 : (f > 1.0 ? 1.0 : f);
  }
  double fraction() const { return fraction_; }

  /// Returns a fresh trace id for sampled packets, 0 otherwise.
  std::uint64_t sample() {
    if (fraction_ <= 0.0) return 0;
    acc_ += fraction_;
    if (acc_ < 1.0) return 0;
    acc_ -= 1.0;
    return Tracer::instance().next_trace_id();
  }

 private:
  double fraction_ = 0.0;
  double acc_ = 0.0;
};

}  // namespace livenet::telemetry
