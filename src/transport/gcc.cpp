#include "transport/gcc.h"

#include <algorithm>
#include <cmath>

namespace livenet::transport {

// ---------------------------------------------------------------- RateMeter

void RateMeter::add(Time now, std::size_t bytes) {
  if (first_sample_ == kNever) first_sample_ = now;
  samples_.emplace_back(now, bytes);
  bytes_in_window_ += bytes;
  evict(now);
}

void RateMeter::evict(Time now) const {
  // Guard the cutoff computation against now < window_ (the first
  // window of a run): every sample timestamp is >= 0, so nothing can
  // be stale yet, and an unsigned Time representation would wrap
  // `now - window_` here and evict the entire window at sim start.
  if (now < window_) return;
  const Time cutoff = now - window_;
  while (!samples_.empty() && samples_.front().first < cutoff) {
    bytes_in_window_ -= samples_.front().second;
    samples_.pop_front();
  }
}

double RateMeter::rate_bps(Time now) const {
  evict(now);
  if (samples_.empty()) return 0.0;
  // During ramp-up the nominal window is mostly empty, and dividing by
  // all of it underestimates throughput (which AIMD then latches onto
  // when it caps the send rate against the incoming rate). Divide by
  // the span observed since the meter first saw traffic instead, capped
  // at the window; once a full window has elapsed the divisor is the
  // window itself, so gaps inside it still read as silence. The floor
  // guards the first few closely-spaced packets from producing absurd
  // rates.
  const Duration floor_span = std::max<Duration>(window_ / 8, 1 * kMs);
  const Duration span = std::clamp(now - first_sample_, floor_span, window_);
  return static_cast<double>(bytes_in_window_) * 8.0 / to_sec(span);
}

bool RateMeter::valid(Time now) const {
  evict(now);
  return samples_.size() >= 8 &&
         samples_.back().first - samples_.front().first >= window_ / 2;
}

// ------------------------------------------------------------- InterArrival

std::optional<InterArrival::Deltas> InterArrival::on_packet(
    Time send_time, Time arrival_time) {
  if (!has_group_) {
    has_group_ = true;
    group_first_send_ = group_last_send_ = send_time;
    group_last_arrival_ = arrival_time;
    return std::nullopt;
  }
  // A reordered packet (sent before the current group opened) belongs
  // to an earlier burst: fold it into the current group rather than
  // letting it open a new one. The explicit `<` guard keeps this
  // correct even under an unsigned Time representation, where the
  // subtraction would wrap to a huge positive value and falsely close
  // the group.
  if (send_time < group_first_send_ ||
      send_time - group_first_send_ <= kGroupSpan) {
    // Same burst: extend the current group.
    group_last_send_ = std::max(group_last_send_, send_time);
    group_last_arrival_ = std::max(group_last_arrival_, arrival_time);
    return std::nullopt;
  }
  // New group begins; emit deltas w.r.t. the previous complete group.
  std::optional<Deltas> out;
  if (has_prev_group_) {
    out = Deltas{group_last_send_ - prev_group_last_send_,
                 group_last_arrival_ - prev_group_last_arrival_};
  }
  has_prev_group_ = true;
  prev_group_last_send_ = group_last_send_;
  prev_group_last_arrival_ = group_last_arrival_;
  group_first_send_ = group_last_send_ = send_time;
  group_last_arrival_ = arrival_time;
  return out;
}

// ------------------------------------------------------ TrendlineEstimator

void TrendlineEstimator::update(Duration send_delta, Duration arrival_delta,
                                Time arrival_time) {
  if (first_arrival_ == kNever) {
    first_arrival_ = arrival_time;
    threshold_ = cfg_.initial_threshold;
    threshold_init_ = true;
  }
  const double delay_delta_ms = to_ms(arrival_delta - send_delta);
  acc_delay_ms_ += delay_delta_ms;
  smoothed_delay_ms_ = cfg_.smoothing * smoothed_delay_ms_ +
                       (1.0 - cfg_.smoothing) * acc_delay_ms_;

  samples_.emplace_back(to_ms(arrival_time - first_arrival_),
                        smoothed_delay_ms_);
  if (samples_.size() > cfg_.window_size) samples_.pop_front();

  if (samples_.size() < cfg_.window_size) {
    return;  // not enough history for a stable slope
  }

  // Least-squares slope of smoothed delay vs. arrival time.
  double mean_x = 0.0, mean_y = 0.0;
  for (const auto& [x, y] : samples_) {
    mean_x += x;
    mean_y += y;
  }
  mean_x /= static_cast<double>(samples_.size());
  mean_y /= static_cast<double>(samples_.size());
  double num = 0.0, den = 0.0;
  for (const auto& [x, y] : samples_) {
    num += (x - mean_x) * (y - mean_y);
    den += (x - mean_x) * (x - mean_x);
  }
  const double slope = den > 0.0 ? num / den : 0.0;
  smoothed_trend_ = slope;
  detect(slope, send_delta, arrival_time);
}

void TrendlineEstimator::detect(double trend, Duration send_delta, Time now) {
  // Scale the dimensionless slope into comparable "ms" units the same
  // way WebRTC does: multiply by the number of samples and a gain.
  const double modified_trend = trend *
                                static_cast<double>(samples_.size()) *
                                cfg_.threshold_gain;
  if (modified_trend > threshold_) {
    if (overuse_start_ == kNever) {
      overuse_start_ = now;
      consecutive_overuses_ = 0;
    }
    ++consecutive_overuses_;
    // Require sustained overuse (in time and count) before signalling.
    if (now - overuse_start_ >= cfg_.overuse_time_th &&
        consecutive_overuses_ > 1) {
      state_ = BandwidthUsage::kOverusing;
    }
  } else if (modified_trend < -threshold_) {
    overuse_start_ = kNever;
    state_ = BandwidthUsage::kUnderusing;
  } else {
    overuse_start_ = kNever;
    state_ = BandwidthUsage::kNormal;
  }
  (void)send_delta;
  adapt_threshold(modified_trend, now);
}

void TrendlineEstimator::adapt_threshold(double modified_trend, Time now) {
  if (last_update_ == kNever) last_update_ = now;
  const double abs_trend = std::abs(modified_trend);
  // Ignore wild outliers (per the GCC paper, cap at threshold + 15 ms).
  if (abs_trend > threshold_ + 15.0) {
    last_update_ = now;
    return;
  }
  const double k = abs_trend < threshold_ ? cfg_.k_down : cfg_.k_up;
  const double dt_ms = std::min(to_ms(now - last_update_), 100.0);
  threshold_ += k * (abs_trend - threshold_) * dt_ms;
  threshold_ = std::clamp(threshold_, 6.0, 600.0);
  last_update_ = now;
}

// --------------------------------------------------------- AimdRateControl

double AimdRateControl::update(BandwidthUsage usage,
                               double incoming_rate_bps,
                               bool incoming_valid, Time now) {
  if (last_change_ == kNever) last_change_ = now;

  switch (usage) {
    case BandwidthUsage::kOverusing:
      state_ = State::kDecrease;
      break;
    case BandwidthUsage::kUnderusing:
      // The queues are draining: hold to let them empty.
      state_ = State::kHold;
      break;
    case BandwidthUsage::kNormal:
      if (state_ == State::kDecrease || state_ == State::kHold) {
        state_ = State::kIncrease;
      }
      break;
  }

  switch (state_) {
    case State::kDecrease: {
      if (incoming_valid) {
        rate_bps_ = cfg_.decrease_factor * incoming_rate_bps;
        // Track the incoming rate near saturation (additive regime).
        if (avg_max_rate_bps_ < 0.0) {
          avg_max_rate_bps_ = incoming_rate_bps;
        } else {
          avg_max_rate_bps_ =
              0.95 * avg_max_rate_bps_ + 0.05 * incoming_rate_bps;
        }
      } else {
        rate_bps_ *= cfg_.decrease_factor;
      }
      state_ = State::kHold;
      last_change_ = now;
      last_decrease_ = now;
      break;
    }
    case State::kIncrease: {
      const double elapsed = to_sec(now - last_change_);
      last_change_ = now;
      const bool near_max =
          avg_max_rate_bps_ > 0.0 && rate_bps_ > 0.9 * avg_max_rate_bps_;
      if (near_max) {
        // Additive increase: about one packet per response interval.
        const double packets_per_sec = 1.0 / to_sec(cfg_.rtt);
        rate_bps_ += 8.0 * 1200.0 * packets_per_sec * elapsed;
      } else {
        // Multiplicative increase, capped per update.
        const double factor =
            std::pow(cfg_.increase_factor, std::min(elapsed, 1.0));
        rate_bps_ *= factor;
      }
      // Near a recent congestion episode, never run far ahead of what
      // is actually arriving. Outside that window the cap is lifted:
      // this node may be relaying a stream whose rate it does not
      // control (the consumer drops frames under pressure), so a
      // latched cap at the starved throughput would deadlock recovery.
      const bool near_congestion =
          last_decrease_ != kNever && now - last_decrease_ <= 5 * kSec;
      if (near_congestion && incoming_valid && incoming_rate_bps > 0.0) {
        rate_bps_ = std::min(rate_bps_, 1.5 * incoming_rate_bps + 10e3);
      }
      break;
    }
    case State::kHold:
      last_change_ = now;
      break;
  }
  rate_bps_ = std::clamp(rate_bps_, cfg_.min_rate_bps, cfg_.max_rate_bps);
  return rate_bps_;
}

// -------------------------------------------------------------- GccReceiver

void GccReceiver::on_packet(Time send_time, Time arrival_time,
                            std::size_t bytes) {
  meter_.add(arrival_time, bytes);
  const auto deltas = inter_arrival_.on_packet(send_time, arrival_time);
  if (deltas.has_value()) {
    trendline_.update(deltas->send_delta, deltas->arrival_delta,
                      arrival_time);
  }
  remb_bps_ = aimd_.update(trendline_.state(), meter_.rate_bps(arrival_time),
                           meter_.valid(arrival_time), arrival_time);
}

// ---------------------------------------------------------------- GccSender

void GccSender::on_feedback(double remb_bps, double loss_fraction) {
  if (remb_bps > 0.0) remb_bps_ = remb_bps;
  if (loss_fraction > cfg_.loss_high) {
    loss_based_bps_ *= (1.0 - 0.5 * loss_fraction);
  } else if (loss_fraction < cfg_.loss_low) {
    loss_based_bps_ *= 1.05;
  }
  loss_based_bps_ =
      std::clamp(loss_based_bps_, cfg_.min_rate_bps, cfg_.max_rate_bps);
}

double GccSender::pacing_rate_bps() const {
  return std::clamp(std::min(loss_based_bps_, remb_bps_), cfg_.min_rate_bps,
                    cfg_.max_rate_bps);
}

}  // namespace livenet::transport
