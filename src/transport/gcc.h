#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "util/time.h"

// Google Congestion Control (GCC), as used on the slow path between
// overlay nodes (paper §5.1: "the slow path adopts GCC for congestion
// control: the sender rate control decides the pacing rate based on
// both the delay-based receiver-side control and the loss-based
// sender-side control. This pacing rate will then be passed to the
// pacer in the fast path").
//
// The implementation follows Carlucci et al., "Analysis and Design of
// the Google Congestion Control for WebRTC" (the paper's reference
// [13]): a receiver-side delay-gradient estimator (trendline filter +
// adaptive-threshold overuse detector + AIMD remote rate controller,
// REMB-style) and a sender-side loss-based controller; the sender rate
// is the minimum of the two.
namespace livenet::transport {

/// Sliding-window rate meter: bytes observed over the last `window`.
class RateMeter {
 public:
  explicit RateMeter(Duration window = 500 * kMs) : window_(window) {}

  void add(Time now, std::size_t bytes);
  double rate_bps(Time now) const;

  /// True once the window holds enough history for the rate to be
  /// trustworthy (WebRTC gates its throughput-based caps the same way —
  /// acting on a cold meter collapses the estimate at startup).
  bool valid(Time now) const;

 private:
  void evict(Time now) const;

  Duration window_;
  Time first_sample_ = kNever;  ///< when the meter first saw traffic
  mutable std::deque<std::pair<Time, std::size_t>> samples_;
  mutable std::uint64_t bytes_in_window_ = 0;
};

enum class BandwidthUsage { kNormal, kOverusing, kUnderusing };

/// Delay-gradient trendline estimator with adaptive-threshold overuse
/// detection (the receiver-side heart of GCC).
class TrendlineEstimator {
 public:
  struct Config {
    std::size_t window_size = 20;     ///< regression window (samples)
    double smoothing = 0.9;           ///< EWMA on accumulated delay
    double threshold_gain = 4.0;      ///< scales the modified trend
    double initial_threshold = 12.5;  ///< ms, gamma in the GCC paper
    double k_up = 0.0087;             ///< threshold adaptation (raise)
    double k_down = 0.039;            ///< threshold adaptation (decay)
    Duration overuse_time_th = 10 * kMs;  ///< sustained overuse required
  };

  TrendlineEstimator() : TrendlineEstimator(Config()) {}
  explicit TrendlineEstimator(const Config& cfg) : cfg_(cfg) {}

  /// Feeds one packet-group sample: the change in one-way delay between
  /// consecutive groups. `send_delta`/`arrival_delta` in microseconds.
  void update(Duration send_delta, Duration arrival_delta, Time arrival_time);

  BandwidthUsage state() const { return state_; }
  double trend() const { return smoothed_trend_; }
  double threshold_ms() const { return threshold_; }

 private:
  void detect(double trend_ms, Duration send_delta, Time now);
  void adapt_threshold(double modified_trend_ms, Time now);

  Config cfg_;
  std::deque<std::pair<double, double>> samples_;  // (time ms, smoothed delay)
  double acc_delay_ms_ = 0.0;
  double smoothed_delay_ms_ = 0.0;
  double smoothed_trend_ = 0.0;
  double threshold_;
  bool threshold_init_ = false;
  Time first_arrival_ = kNever;
  Time last_update_ = kNever;
  Time overuse_start_ = kNever;
  int consecutive_overuses_ = 0;
  BandwidthUsage state_ = BandwidthUsage::kNormal;
};

/// Groups packets into ~5 ms bursts and produces the inter-group deltas
/// fed to the trendline estimator (WebRTC's InterArrival).
class InterArrival {
 public:
  struct Deltas {
    Duration send_delta = 0;
    Duration arrival_delta = 0;
  };

  /// Returns deltas once a group completes; nullopt while accumulating.
  std::optional<Deltas> on_packet(Time send_time, Time arrival_time);

 private:
  static constexpr Duration kGroupSpan = 5 * kMs;

  bool has_group_ = false;
  Time group_first_send_ = 0, group_last_send_ = 0, group_last_arrival_ = 0;
  bool has_prev_group_ = false;
  Time prev_group_last_send_ = 0, prev_group_last_arrival_ = 0;
};

/// AIMD remote-rate controller (receiver side): turns overuse signals
/// into a REMB estimate.
class AimdRateControl {
 public:
  struct Config {
    double min_rate_bps = 64e3;
    double max_rate_bps = 500e6;
    double decrease_factor = 0.85;  ///< beta on overuse
    double increase_factor = 1.25;  ///< multiplicative increase per second
    Duration rtt = 50 * kMs;        ///< assumed response interval
  };

  explicit AimdRateControl(double start_rate_bps)
      : AimdRateControl(start_rate_bps, Config()) {}
  AimdRateControl(double start_rate_bps, const Config& cfg)
      : cfg_(cfg), rate_bps_(start_rate_bps) {}

  /// Updates the estimate given the detector state and the measured
  /// incoming rate. `incoming_valid` gates the throughput-based caps
  /// (cold meters must not clamp the estimate).
  double update(BandwidthUsage usage, double incoming_rate_bps,
                bool incoming_valid, Time now);

  double rate_bps() const { return rate_bps_; }

 private:
  enum class State { kHold, kIncrease, kDecrease };

  Config cfg_;
  State state_ = State::kIncrease;
  double rate_bps_;
  Time last_change_ = kNever;
  Time last_decrease_ = kNever;
  double avg_max_rate_bps_ = -1.0;  ///< EWMA of rate at decrease time
};

/// Receiver half of GCC for one incoming link: feed packets, read the
/// REMB to report back to the sender.
class GccReceiver {
 public:
  explicit GccReceiver(double start_rate_bps = 10e6)
      : aimd_(start_rate_bps) {}

  void on_packet(Time send_time, Time arrival_time, std::size_t bytes);

  /// Latest receiver-side estimate (REMB) in bps.
  double remb_bps() const { return remb_bps_; }
  BandwidthUsage usage() const { return trendline_.state(); }
  double incoming_rate_bps(Time now) const { return meter_.rate_bps(now); }

 private:
  InterArrival inter_arrival_;
  TrendlineEstimator trendline_;
  AimdRateControl aimd_;
  RateMeter meter_;
  double remb_bps_ = 10e6;
};

/// Sender half of GCC for one outgoing link: combines the loss-based
/// controller with the receiver's REMB; exposes the pacing rate.
class GccSender {
 public:
  struct Config {
    double start_rate_bps = 10e6;
    double min_rate_bps = 64e3;
    double max_rate_bps = 500e6;
    double loss_high = 0.10;  ///< above: multiplicative decrease
    double loss_low = 0.02;   ///< below: gentle probe upward
  };

  GccSender() : GccSender(Config()) {}
  explicit GccSender(const Config& cfg)
      : cfg_(cfg), loss_based_bps_(cfg.start_rate_bps),
        remb_bps_(cfg.max_rate_bps) {}

  /// Feedback from the receiver (REMB + loss fraction).
  void on_feedback(double remb_bps, double loss_fraction);

  /// Current pacing rate: min(loss-based, delay-based).
  double pacing_rate_bps() const;

  double loss_based_bps() const { return loss_based_bps_; }
  double remb_bps() const { return remb_bps_; }

 private:
  Config cfg_;
  double loss_based_bps_;
  double remb_bps_;
};

}  // namespace livenet::transport
