#include "transport/pacer.h"

#include <algorithm>

namespace livenet::transport {

using media::RtpPacketPtr;

void Pacer::PacketFifo::grow() {
  const std::size_t n = tail_ - head_;
  std::vector<Queued> next(buf_.empty() ? 16 : buf_.size() * 2);
  for (std::size_t i = 0; i < n; ++i) {
    next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
  }
  buf_.swap(next);
  head_ = 0;
  tail_ = n;
}

Pacer::Pacer(sim::EventLoop* loop, SendFn send, const Config& cfg)
    : loop_(loop), send_(std::move(send)), cfg_(cfg) {}

Pacer::~Pacer() {
  if (timer_ != sim::kInvalidEvent) loop_->cancel(timer_);
}

void Pacer::enqueue(RtpPacketPtr pkt) {
  const std::size_t sz = pkt->wire_size();
  const bool parity = pkt->is_fec_parity();
  if (parity && queue_bytes_ + sz > cfg_.max_queue_bytes * 3 / 4) {
    // Redundancy is shed first: a congested link keeps its media budget.
    ++parity_dropped_;
    return;
  }
  if (queue_bytes_ + sz > cfg_.max_queue_bytes && !pkt->is_audio()) {
    // Overflow: video (and rtx) beyond the cap is dropped; loss recovery
    // upstream of the receiver deals with the hole.
    ++packets_dropped_;
    return;
  }
  queue_bytes_ += sz;
  Queued q{std::move(pkt), static_cast<std::uint32_t>(sz)};
  if (parity) {
    ++parity_enqueued_;
    parity_q_.push_back(std::move(q));
  } else if (q.pkt->is_audio()) {
    audio_q_.push_back(std::move(q));
  } else if (q.pkt->is_rtx) {
    rtx_q_.push_back(std::move(q));
  } else {
    video_q_.push_back(std::move(q));
  }
  arm();
}

void Pacer::set_rate_bps(double bps) {
  cfg_.rate_bps = std::max(bps, 1e3);
}

Duration Pacer::drain_time() const {
  return static_cast<Duration>(static_cast<double>(queue_bytes_) * 8.0 /
                               cfg_.rate_bps * static_cast<double>(kSec));
}

Pacer::Queued Pacer::pop_next() {
  auto take = [this](PacketFifo& q) {
    Queued e = q.pop_front();
    queue_bytes_ -= e.bytes;
    return e;
  };
  if (!audio_q_.empty()) return take(audio_q_);
  if (!rtx_q_.empty()) return take(rtx_q_);
  if (!video_q_.empty()) return take(video_q_);
  if (!parity_q_.empty()) return take(parity_q_);
  return Queued{};
}

void Pacer::arm() {
  if (timer_ != sim::kInvalidEvent) return;
  if (queue_packets() == 0) return;
  timer_ = loop_->schedule_at(std::max(next_send_ok_, loop_->now()), [this] {
    timer_ = sim::kInvalidEvent;
    fire();
  });
}

void Pacer::fire() {
  const Time now = loop_->now();
  // Bound the idle credit *here*, where it is actually spent: the send
  // clock may lag `now` by at most max_burst, so a long-quiet pacer
  // catches up with a bounded back-to-back burst instead of either an
  // unbounded one or (the old accidental behaviour) none at all.
  if (next_send_ok_ < now - cfg_.max_burst) {
    next_send_ok_ = now - cfg_.max_burst;
  }
  std::uint32_t sent = 0;
  const std::uint32_t burst_cap = std::max<std::uint32_t>(cfg_.max_burst_packets, 1);
  // Cached idleness probe for the fusion guard below. A true verdict
  // stays valid while the loop's schedule count is unchanged (only a
  // schedule can add pending work; a cancel can only make the loop
  // *more* idle, and a stale false merely stops the fused drain early
  // — safe, and identical to re-arming per packet).
  bool idle = false;
  std::uint64_t idle_stamp = 0;
  bool idle_known = false;
  while (next_send_ok_ <= now && sent < burst_cap) {
    Queued e = pop_next();
    RtpPacketPtr& pkt = e.pkt;
    if (!pkt) return;  // queue drained; nothing to re-arm
    const double gain =
        pkt->frame_type() == media::FrameType::kI ? cfg_.i_frame_gain : 1.0;
    // Memoized pacing interval: consecutive packets almost always share
    // (wire size, gain, rate), so the divide chain is replaced by three
    // compares on the hot path. Bit-identical — a miss runs the exact
    // same expression.
    const std::size_t wsz = e.bytes;
    Duration interval;
    if (wsz == memo_bytes_ && gain == memo_gain_ &&
        cfg_.rate_bps == memo_rate_) {
      interval = memo_interval_;
    } else {
      interval = static_cast<Duration>(
          static_cast<double>(wsz) * 8.0 /
          (cfg_.rate_bps * gain) * static_cast<double>(kSec));
      memo_bytes_ = wsz;
      memo_gain_ = gain;
      memo_rate_ = cfg_.rate_bps;
      memo_interval_ = interval;
    }
    next_send_ok_ += interval;  // credit carries: no max() with now
    ++packets_sent_;
    ++sent;
    if (net_ != nullptr) {
      // Direct wire: stamp the per-hop departure time for the peer's
      // GCC delay estimator, then hand the packet to the network.
      pkt->hop_send_time = now;
      net_->send(wire_src_, wire_dst_, std::move(pkt));
    } else {
      send_(std::move(pkt));
    }
    // Drain the next credit-covered packet in this same callback only
    // if the loop is idle at `now` — otherwise a dedicated re-armed
    // event (scheduled at now with a fresh, largest seq) would have
    // dispatched *after* the pending work, so stop and re-arm to keep
    // the batched drain order-identical to one-event-per-packet.
    if (next_send_ok_ <= now && sent < burst_cap) {
      if (!idle_known || loop_->schedule_count() != idle_stamp) {
        idle_stamp = loop_->schedule_count();
        idle = loop_->idle_at(now);
        idle_known = true;
      }
      if (!idle) break;
    }
  }
  arm();
}

}  // namespace livenet::transport
