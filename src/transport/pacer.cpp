#include "transport/pacer.h"

#include <algorithm>

namespace livenet::transport {

using media::RtpPacketPtr;

Pacer::Pacer(sim::EventLoop* loop, SendFn send, const Config& cfg)
    : loop_(loop), send_(std::move(send)), cfg_(cfg) {}

Pacer::~Pacer() {
  if (timer_ != sim::kInvalidEvent) loop_->cancel(timer_);
}

void Pacer::enqueue(RtpPacketPtr pkt) {
  const std::size_t sz = pkt->wire_size();
  if (queue_bytes_ + sz > cfg_.max_queue_bytes && !pkt->is_audio()) {
    // Overflow: video (and rtx) beyond the cap is dropped; loss recovery
    // upstream of the receiver deals with the hole.
    ++packets_dropped_;
    return;
  }
  queue_bytes_ += sz;
  if (pkt->is_audio()) {
    audio_q_.push_back(std::move(pkt));
  } else if (pkt->is_rtx) {
    rtx_q_.push_back(std::move(pkt));
  } else {
    video_q_.push_back(std::move(pkt));
  }
  arm();
}

void Pacer::set_rate_bps(double bps) {
  cfg_.rate_bps = std::max(bps, 1e3);
}

Duration Pacer::drain_time() const {
  return static_cast<Duration>(static_cast<double>(queue_bytes_) * 8.0 /
                               cfg_.rate_bps * static_cast<double>(kSec));
}

media::RtpPacketPtr Pacer::pop_next() {
  auto take = [this](std::deque<RtpPacketPtr>& q) {
    RtpPacketPtr p = std::move(q.front());
    q.pop_front();
    queue_bytes_ -= p->wire_size();
    return p;
  };
  if (!audio_q_.empty()) return take(audio_q_);
  if (!rtx_q_.empty()) return take(rtx_q_);
  if (!video_q_.empty()) return take(video_q_);
  return nullptr;
}

void Pacer::arm() {
  if (timer_ != sim::kInvalidEvent) return;
  if (queue_packets() == 0) return;
  const Time now = loop_->now();
  // Allow a bounded idle credit so a long-quiet pacer does not burst.
  next_send_ok_ = std::max(next_send_ok_, now - cfg_.max_burst);
  timer_ = loop_->schedule_at(std::max(next_send_ok_, now), [this] {
    timer_ = sim::kInvalidEvent;
    fire();
  });
}

void Pacer::fire() {
  RtpPacketPtr pkt = pop_next();
  if (!pkt) return;
  const double gain =
      pkt->frame_type() == media::FrameType::kI ? cfg_.i_frame_gain : 1.0;
  const auto interval = static_cast<Duration>(
      static_cast<double>(pkt->wire_size()) * 8.0 /
      (cfg_.rate_bps * gain) * static_cast<double>(kSec));
  const Time now = loop_->now();
  next_send_ok_ = std::max(next_send_ok_, now) + interval;
  ++packets_sent_;
  send_(pkt);
  arm();
}

}  // namespace livenet::transport
