#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "media/rtp.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "util/time.h"

// Priority-aware pacer (paper §5.2, "Priority-Aware Data Sending").
//
// One pacer drives each outgoing link of an overlay node. The fast path
// enqueues packets here; the slow path's GCC instance sets the pacing
// rate. Priorities: audio first (avoids head-of-line blocking behind
// large video frames), then retransmissions ("retransmitted packets
// have a higher sending priority than the packets in the send queue"),
// then video. I-frame packets are sent with a pacing gain of 1.5 to
// drain the large keyframe quickly.
namespace livenet::transport {

class Pacer {
 public:
  struct Config {
    double rate_bps = 10e6;
    double i_frame_gain = 1.5;  ///< pacing gain while sending I frames
    std::size_t max_queue_bytes = 8 * 1024 * 1024;  ///< hard cap; drops video
    /// Idle credit the pacer may burn as a back-to-back burst. Applied
    /// as a clamp on the virtual send clock *at drain time* — clamping
    /// at arm time (as the pre-batching code did) was dead: the fire
    /// path immediately erased the credit with max(clock, now), so any
    /// configured value behaved like 0. The default is 0 to keep that
    /// effective behaviour; set > 0 to actually allow catch-up bursts.
    Duration max_burst = 0;
    /// Packet cap for one drain callback; a burst with remaining credit
    /// beyond this re-arms at the same instant instead of looping on.
    std::uint32_t max_burst_packets = 64;
  };

  /// By-value so the drain path can move the packet all the way to the
  /// wire (fire() relinquishes its reference; a callee that forwards
  /// with std::move pays zero refcount traffic per packet). Callables
  /// taking `const RtpPacketPtr&` still wrap fine.
  using SendFn = std::function<void(media::RtpPacketPtr)>;

  /// A queued packet plus its wire size, captured at enqueue so the
  /// drain path never re-derives it (wire_size() chases the shared
  /// body pointer).
  struct Queued {
    media::RtpPacketPtr pkt;
    std::uint32_t bytes = 0;
  };

  /// Power-of-two ring-buffer FIFO. A std::deque here paid a malloc /
  /// free every block crossing on the enqueue→send cycle; the ring
  /// reallocates only on growth and stays allocation-free in steady
  /// state.
  class PacketFifo {
   public:
    bool empty() const { return head_ == tail_; }
    std::size_t size() const { return tail_ - head_; }
    void push_back(Queued q) {
      if (tail_ - head_ == buf_.size()) grow();
      buf_[tail_++ & (buf_.size() - 1)] = std::move(q);
    }
    Queued pop_front() {
      Queued q = std::move(buf_[head_++ & (buf_.size() - 1)]);
      if (head_ == tail_) head_ = tail_ = 0;
      return q;
    }

   private:
    void grow();
    std::vector<Queued> buf_;
    std::size_t head_ = 0;  ///< monotonic; masked into buf_
    std::size_t tail_ = 0;
  };

  Pacer(sim::EventLoop* loop, SendFn send) : Pacer(loop, std::move(send), Config()) {}
  Pacer(sim::EventLoop* loop, SendFn send, const Config& cfg);
  ~Pacer();
  Pacer(const Pacer&) = delete;
  Pacer& operator=(const Pacer&) = delete;

  /// Enqueues a packet; priority class is derived from the packet
  /// (audio / rtx / video).
  void enqueue(media::RtpPacketPtr pkt);

  /// Wires the pacer straight into the network: fire() stamps the
  /// packet's hop departure time and calls net->send(src, dst, ...)
  /// directly instead of going through the SendFn std::function — one
  /// predicted branch instead of a double-indirect call per packet.
  void set_wire(sim::Network* net, sim::NodeId src, sim::NodeId dst) {
    net_ = net;
    wire_src_ = src;
    wire_dst_ = dst;
  }

  /// Updates the pacing rate (called by the GCC sender on feedback).
  void set_rate_bps(double bps);
  double rate_bps() const { return cfg_.rate_bps; }

  /// Total bytes waiting across all priority queues.
  std::size_t queue_bytes() const { return queue_bytes_; }
  std::size_t queue_packets() const {
    return audio_q_.size() + rtx_q_.size() + video_q_.size() +
           parity_q_.size();
  }

  /// Time to drain the current queue at the current rate — the signal
  /// the consumer's frame dropper watches.
  Duration drain_time() const;

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  std::uint64_t parity_enqueued() const { return parity_enqueued_; }
  std::uint64_t parity_dropped() const { return parity_dropped_; }

 private:
  void arm();
  void fire();
  Queued pop_next();

  sim::EventLoop* loop_;
  SendFn send_;
  sim::Network* net_ = nullptr;  ///< non-null: direct wire (set_wire)
  sim::NodeId wire_src_ = sim::kNoNode;
  sim::NodeId wire_dst_ = sim::kNoNode;
  Config cfg_;
  PacketFifo audio_q_;
  PacketFifo rtx_q_;
  PacketFifo video_q_;
  /// FEC parity rides below video: redundancy must never displace the
  /// media it protects. Parity is also rejected early (at 3/4 of the
  /// byte cap) so a congested link sheds redundancy first.
  PacketFifo parity_q_;
  std::size_t queue_bytes_ = 0;
  Time next_send_ok_ = 0;
  /// Last computed pacing interval and its inputs (see fire()).
  std::size_t memo_bytes_ = 0;
  double memo_gain_ = 0.0;
  double memo_rate_ = 0.0;
  Duration memo_interval_ = 0;
  sim::EventId timer_ = sim::kInvalidEvent;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t parity_enqueued_ = 0;
  std::uint64_t parity_dropped_ = 0;
};

}  // namespace livenet::transport
