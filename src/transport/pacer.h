#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "media/rtp.h"
#include "sim/event_loop.h"
#include "util/time.h"

// Priority-aware pacer (paper §5.2, "Priority-Aware Data Sending").
//
// One pacer drives each outgoing link of an overlay node. The fast path
// enqueues packets here; the slow path's GCC instance sets the pacing
// rate. Priorities: audio first (avoids head-of-line blocking behind
// large video frames), then retransmissions ("retransmitted packets
// have a higher sending priority than the packets in the send queue"),
// then video. I-frame packets are sent with a pacing gain of 1.5 to
// drain the large keyframe quickly.
namespace livenet::transport {

class Pacer {
 public:
  struct Config {
    double rate_bps = 10e6;
    double i_frame_gain = 1.5;  ///< pacing gain while sending I frames
    std::size_t max_queue_bytes = 8 * 1024 * 1024;  ///< hard cap; drops video
    Duration max_burst = 1 * kMs;  ///< idle credit the pacer may burn
  };

  using SendFn = std::function<void(const media::RtpPacketPtr&)>;

  Pacer(sim::EventLoop* loop, SendFn send) : Pacer(loop, std::move(send), Config()) {}
  Pacer(sim::EventLoop* loop, SendFn send, const Config& cfg);
  ~Pacer();
  Pacer(const Pacer&) = delete;
  Pacer& operator=(const Pacer&) = delete;

  /// Enqueues a packet; priority class is derived from the packet
  /// (audio / rtx / video).
  void enqueue(media::RtpPacketPtr pkt);

  /// Updates the pacing rate (called by the GCC sender on feedback).
  void set_rate_bps(double bps);
  double rate_bps() const { return cfg_.rate_bps; }

  /// Total bytes waiting across all priority queues.
  std::size_t queue_bytes() const { return queue_bytes_; }
  std::size_t queue_packets() const {
    return audio_q_.size() + rtx_q_.size() + video_q_.size();
  }

  /// Time to drain the current queue at the current rate — the signal
  /// the consumer's frame dropper watches.
  Duration drain_time() const;

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }

 private:
  void arm();
  void fire();
  media::RtpPacketPtr pop_next();

  sim::EventLoop* loop_;
  SendFn send_;
  Config cfg_;
  std::deque<media::RtpPacketPtr> audio_q_;
  std::deque<media::RtpPacketPtr> rtx_q_;
  std::deque<media::RtpPacketPtr> video_q_;
  std::size_t queue_bytes_ = 0;
  Time next_send_ok_ = 0;
  sim::EventId timer_ = sim::kInvalidEvent;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
};

}  // namespace livenet::transport
